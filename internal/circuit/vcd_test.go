package circuit

import (
	"bytes"
	"strings"
	"testing"
)

func TestVCDRecorder(t *testing.T) {
	b := NewBuilder()
	en := b.Input("en", 1)
	cnt := b.Register("cnt", 4, 0)
	flag := b.Register("flag", 1, 1)
	b.SetNext("cnt", b.MuxW(en[0], b.Inc(cnt), cnt))
	b.SetNext("flag", flag)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSim(c)
	var buf bytes.Buffer
	rec, err := NewVCDRecorder(&buf, sim, "top")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		sim.Step(Inputs{"en": 1})
		if err := rec.Sample(); err != nil {
			t.Fatal(err)
		}
	}
	// Two quiet cycles: no changes should be emitted.
	for i := 0; i < 2; i++ {
		sim.Step(Inputs{"en": 0})
		if err := rec.Sample(); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module top $end",
		"$var wire 4 ",
		"$var wire 1 ",
		"$enddefinitions $end",
		"$dumpvars",
		"#0", "#1", "#4",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("VCD missing %q:\n%s", want, text)
		}
	}
	// cnt changes each of the first 4 cycles; the quiet cycles must not
	// emit timestamps 5 or 6 for value changes (only the trailing #7).
	if strings.Contains(text, "#5\nb") || strings.Contains(text, "#6\nb") {
		t.Fatalf("quiet cycles emitted changes:\n%s", text)
	}
	// Counter value 4 (b100) must appear.
	if !strings.Contains(text, "b100 ") {
		t.Fatalf("expected b100 in dump:\n%s", text)
	}
	// Sampling after Close must error.
	if err := rec.Sample(); err == nil {
		t.Fatal("Sample after Close should fail")
	}
	if err := rec.Close(); err != nil {
		t.Fatal("double Close should be a no-op")
	}
}

func TestVCDCodeUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		code := vcdCode(i)
		if code == "" || seen[code] {
			t.Fatalf("code %d: %q duplicate or empty", i, code)
		}
		for j := 0; j < len(code); j++ {
			if code[j] < 33 || code[j] > 126 {
				t.Fatalf("code %d contains non-printable byte %d", i, code[j])
			}
		}
		seen[code] = true
	}
}

func TestVCDSafeName(t *testing.T) {
	if got := vcdSafeName("l::rf1"); got != "l__rf1" {
		t.Fatalf("got %q", got)
	}
	if got := vcdSafeName("plain"); got != "plain" {
		t.Fatalf("got %q", got)
	}
}
