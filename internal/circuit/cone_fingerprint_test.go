package circuit

import (
	"reflect"
	"strings"
	"testing"
)

// buildEmbedded builds a fixed two-register cone ("a", "b" over input "in"),
// optionally embedded in a larger design: junk registers and logic declared
// first (shifting every global node id) and the real registers declared in
// the opposite order. The cone itself — structure, widths, resets — is
// identical in both variants.
func buildEmbedded(t *testing.T, junk bool) *Circuit {
	t.Helper()
	b := NewBuilder()
	in := b.Input("in", 4)
	if junk {
		// Unrelated state machine in front of the cone: different global
		// node ids and declaration order for everything that follows.
		z := b.Register("zz", 6, 33)
		b.SetNext("zz", b.Add(z, b.ZeroExt(in[:2], 6)))
		b.Name("zzodd", Word{b.Bit(z, 0)})
	}
	var a, bw Word
	if junk {
		bw = b.Register("b", 4, 0)
		a = b.Register("a", 4, 5)
	} else {
		a = b.Register("a", 4, 5)
		bw = b.Register("b", 4, 0)
	}
	b.SetNext("a", b.Add(a, in))
	b.SetNext("b", b.MuxW(b.Eq(a, bw), a, b.XorW(bw, a)))
	if junk {
		j := b.Register("junk2", 4, 9)
		b.SetNext("junk2", b.AndW(j, a)) // reads the cone; not in the cone
	}
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return c
}

func TestConeFingerprintInvariantToEmbedding(t *testing.T) {
	plain := buildEmbedded(t, false)
	embedded := buildEmbedded(t, true)
	if plain.Fingerprint() == embedded.Fingerprint() {
		t.Fatal("whole-circuit fingerprints should differ (junk state present)")
	}
	sup := []string{"a", "b"}
	if got, want := embedded.ConeFingerprint(sup), plain.ConeFingerprint(sup); got != want {
		t.Fatalf("cone fingerprint not invariant to embedding: %s vs %s", got.Hex(), want.Hex())
	}
	// Support order and duplicates must not matter.
	if plain.ConeFingerprint([]string{"b", "a", "b"}) != plain.ConeFingerprint(sup) {
		t.Fatal("cone fingerprint depends on support order/duplicates")
	}
	// Canonical AND names coincide across the embeddings even though the
	// underlying global node ids differ.
	collect := func(c *Circuit) map[string]bool {
		out := make(map[string]bool)
		for _, nm := range c.ConeNames(sup) {
			if strings.HasPrefix(nm, "c:") {
				out[nm] = true
			}
		}
		return out
	}
	n1, n2 := collect(plain), collect(embedded)
	if len(n1) == 0 || !reflect.DeepEqual(n1, n2) {
		t.Fatalf("canonical AND names differ across embeddings: %d vs %d names", len(n1), len(n2))
	}
}

func TestConeFingerprintPerturbations(t *testing.T) {
	base := buildEmbedded(t, false)
	sup := []string{"a", "b"}
	fp := base.ConeFingerprint(sup)

	build := func(mutate func(b *Builder, a, bw, in Word)) *Circuit {
		b := NewBuilder()
		in := b.Input("in", 4)
		a := b.Register("a", 4, 5)
		bw := b.Register("b", 4, 0)
		mutate(b, a, bw, in)
		c, err := b.Build()
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		return c
	}

	oneGate := build(func(b *Builder, a, bw, in Word) {
		b.SetNext("a", b.Add(a, in))
		// Eq → Ne: a single gate's polarity in the select cone.
		b.SetNext("b", b.MuxW(b.Ne(a, bw), a, b.XorW(bw, a)))
	})
	if oneGate.ConeFingerprint(sup) == fp {
		t.Fatal("one-gate perturbation not detected")
	}

	b2 := NewBuilder()
	in := b2.Input("in", 4)
	a := b2.Register("a", 4, 7) // reset 5 → 7
	bw := b2.Register("b", 4, 0)
	b2.SetNext("a", b2.Add(a, in))
	b2.SetNext("b", b2.MuxW(b2.Eq(a, bw), a, b2.XorW(bw, a)))
	oneReset, err := b2.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if oneReset.ConeFingerprint(sup) == fp {
		t.Fatal("one-reset-value perturbation not detected")
	}

	// A changed input interface (environment surface) must miss too, even
	// with an identical cone.
	b3 := NewBuilder()
	in = b3.Input("in", 4)
	b3.Input("extra", 2)
	a = b3.Register("a", 4, 5)
	bw = b3.Register("b", 4, 0)
	b3.SetNext("a", b3.Add(a, in))
	b3.SetNext("b", b3.MuxW(b3.Eq(a, bw), a, b3.XorW(bw, a)))
	extraIn, err := b3.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if extraIn.ConeFingerprint(sup) == fp {
		t.Fatal("changed input interface not detected")
	}
}

func TestConeNamesForms(t *testing.T) {
	c := buildEmbedded(t, false)
	names := c.ConeNames([]string{"a", "b"})
	hex := c.ConeFingerprint([]string{"a", "b"}).Hex()
	if len(hex) != 32 {
		t.Fatalf("Hex() length = %d, want 32", len(hex))
	}
	var sawGate, sawLatch, sawInput bool
	for id, nm := range names {
		switch {
		case strings.HasPrefix(nm, "c:"):
			sawGate = true
			if !strings.HasPrefix(nm, "c:"+hex+":") {
				t.Fatalf("gate name %q does not embed cone fp %s", nm, hex)
			}
		case strings.HasPrefix(nm, "r:"):
			sawLatch = true
		case strings.HasPrefix(nm, "i:"):
			sawInput = true
		default:
			t.Fatalf("unexpected canonical name %q for node %d", nm, id)
		}
	}
	if !sawGate || !sawLatch || !sawInput {
		t.Fatalf("missing name class: gate=%v latch=%v input=%v", sawGate, sawLatch, sawInput)
	}
}

// TestDuplicateInheritsFingerprint is the regression test for the
// fpState-lost-on-duplicate fix. A first replay normalizes node numbering
// (registers, then inputs, then gates), so its whole-circuit fingerprint is
// recomputed — deterministically. Once normalized, further pure replays are
// node-identical and inherit the memoized fingerprint and cone table
// outright; post-replay builder mutations disable the inheritance. Cone
// fingerprints are numbering-invariant, so they transfer across every
// replay, prefixed or not.
func TestDuplicateInheritsFingerprint(t *testing.T) {
	src := buildEmbedded(t, true)
	sup := []string{"a", "b"}
	src.ConeFingerprint(sup) // warm the memo before duplicating

	replay := func(c *Circuit) *Circuit {
		t.Helper()
		b := NewBuilder()
		if err := DuplicateInto(b, c, "", nil); err != nil {
			t.Fatalf("DuplicateInto: %v", err)
		}
		d, err := b.Build()
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		return d
	}

	// First replay renumbers nodes; recompute must be deterministic and the
	// numbering-invariant cone fingerprint must survive the renumbering.
	dup1, dup2 := replay(src), replay(src)
	if dup1.Fingerprint() != dup2.Fingerprint() {
		t.Fatal("independent pure replays disagree on recomputed fingerprint")
	}
	if dup1.ConeFingerprint(sup) != src.ConeFingerprint(sup) {
		t.Fatal("cone fingerprint not invariant to replay renumbering")
	}

	// Replay of a replay is node-identical: inheritance kicks in, observable
	// as sharing — the memoized cone-name map is the very same object.
	dup1.ConeNames(sup)
	dup3 := replay(dup1)
	if dup3.Fingerprint() != dup1.Fingerprint() {
		t.Fatalf("normalized replay fingerprint mismatch: %x vs %x", dup3.Fingerprint(), dup1.Fingerprint())
	}
	n1 := dup1.ConeNames(sup)
	n2 := dup3.ConeNames(sup)
	if reflect.ValueOf(n1).Pointer() != reflect.ValueOf(n2).Pointer() {
		t.Fatal("normalized pure duplicate did not inherit the cone memo table")
	}

	// Mutating the builder after the replay must fall back to recompute —
	// and the recomputed fingerprint must differ (the circuit differs).
	b2 := NewBuilder()
	if err := DuplicateInto(b2, dup1, "", nil); err != nil {
		t.Fatalf("DuplicateInto: %v", err)
	}
	extra := b2.Register("added", 2, 0)
	b2.SetNext("added", b2.NotW(extra))
	mut, err := b2.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if mut.Fingerprint() == dup1.Fingerprint() {
		t.Fatal("mutated duplicate wrongly inherited the source fingerprint")
	}

	// Prefixed miter-style replays: two independently built products of the
	// same source agree with each other, and their prefixed cones transfer.
	mk := func() *Circuit {
		mb := NewBuilder()
		shared := map[string]Word{"in": mb.Input("in", 4)}
		if err := DuplicateInto(mb, src, "l::", shared); err != nil {
			t.Fatalf("DuplicateInto: %v", err)
		}
		if err := DuplicateInto(mb, src, "r::", shared); err != nil {
			t.Fatalf("DuplicateInto: %v", err)
		}
		c, err := mb.Build()
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		return c
	}
	m1, m2 := mk(), mk()
	if m1.Fingerprint() != m2.Fingerprint() {
		t.Fatal("identical miters disagree on whole-circuit fingerprint")
	}
	psup := []string{"l::a", "l::b", "r::a", "r::b"}
	if m1.ConeFingerprint(psup) != m2.ConeFingerprint(psup) {
		t.Fatal("identical miters disagree on cone fingerprint")
	}
	if m1.ConeFingerprint(psup) == src.ConeFingerprint(sup) {
		t.Fatal("prefixed cone should not collide with the unprefixed source cone")
	}
}
