package circuit

import (
	"testing"
)

// buildSpecCircuit deterministically interprets spec as a tiny program
// building nRegs one-bit registers whose next-state functions are random
// expressions over the inputs and register bits. With junk=true the same
// cone is embedded in a larger design: an unrelated register and its logic
// are declared first and the real registers are declared in reverse order,
// so every global node id and declaration index differs while the cone is
// structurally unchanged.
func buildSpecCircuit(spec []byte, junk bool) (c *Circuit, support []string, ok bool) {
	if len(spec) < 6 {
		return nil, nil, false
	}
	nRegs := 1 + int(spec[0])%3
	inW := 1 + int(spec[1])%3
	inits := spec[2]
	body := spec[3:]
	if len(body) < nRegs {
		return nil, nil, false
	}
	opBytes, nextBytes := body[:len(body)-nRegs], body[len(body)-nRegs:]

	b := NewBuilder()
	in := b.Input("in", inW)
	if junk {
		z := b.Register("zzjunk", 3, 6)
		b.SetNext("zzjunk", b.Inc(z))
		b.And2(in[0], z[1]) // stray logic shifting node ids
	}
	names := make([]string, nRegs)
	for i := 0; i < nRegs; i++ {
		names[i] = "r" + itoa(i)
	}
	regBits := make([]Word, nRegs)
	if junk {
		for i := nRegs - 1; i >= 0; i-- {
			regBits[i] = b.Register(names[i], 1, uint64(inits>>i)&1)
		}
	} else {
		for i := 0; i < nRegs; i++ {
			regBits[i] = b.Register(names[i], 1, uint64(inits>>i)&1)
		}
	}

	pool := []Signal{False, True}
	pool = append(pool, in...)
	for i := 0; i < nRegs; i++ {
		pool = append(pool, regBits[i][0])
	}
	// Bounded op count: the brute-force isomorphism check unfolds the DAG
	// into expression trees, which can grow geometrically with depth.
	for i, n := 0, 0; i+1 < len(opBytes) && n < 12; i, n = i+2, n+1 {
		x := pool[int(opBytes[i+1]&0xf)%len(pool)]
		y := pool[int(opBytes[i+1]>>4)%len(pool)]
		var s Signal
		switch opBytes[i] % 5 {
		case 0:
			s = b.And2(x, y)
		case 1:
			s = b.Or2(x, y)
		case 2:
			s = b.Xor2(x, y)
		case 3:
			s = b.And2(x, y.Not())
		case 4:
			s = b.Mux2(x, y, pool[(int(opBytes[i])/5)%len(pool)])
		}
		pool = append(pool, s)
	}
	for i := 0; i < nRegs; i++ {
		b.SetNext(names[i], Word{pool[int(nextBytes[i])%len(pool)]})
	}
	c, err := b.Build()
	if err != nil {
		return nil, nil, false
	}
	return c, names, true
}

// bruteConeCanon is the brute-force structural-isomorphism reference: it
// unfolds each support register's next-state DAG into a canonical
// expression string (the builder hash-conses AND nodes, so tree equality
// coincides with DAG isomorphism) together with the register and input
// interfaces. Returns ok=false when the unfolding exceeds a size cap.
func bruteConeCanon(c *Circuit, support []string) (string, bool) {
	const cap = 1 << 20
	memo := make(map[int32]string)
	sizeOK := true
	var expr func(id int32) string
	expr = func(id int32) string {
		if s, ok := memo[id]; ok {
			return s
		}
		nd := c.nodes[id]
		var s string
		switch nd.kind {
		case kConst:
			s = "0"
		case kLatch:
			l := c.latches[nd.a]
			s = "R(" + c.regs[l.reg].Name + "," + itoa(l.bit) + ")"
		case kInput:
			p, off := c.inputBitRef(int32(nd.a))
			s = "I(" + c.inputs[p].Name + "," + itoa(int(off)) + ")"
		case kAnd:
			sa, sb := expr(nd.a.Node()), expr(nd.b.Node())
			if nd.a.Inverted() {
				sa = "~" + sa
			}
			if nd.b.Inverted() {
				sb = "~" + sb
			}
			// AND is commutative and the builder's operand order depends on
			// global signal numbering — canonicalize by sorting.
			if sb < sa {
				sa, sb = sb, sa
			}
			s = "(" + sa + "&" + sb + ")"
		}
		if len(s) > cap {
			sizeOK = false
			s = s[:cap]
		}
		memo[id] = s
		return s
	}

	var sb []byte
	for _, p := range c.inputs {
		sb = append(sb, "in "+p.Name+" "+itoa(p.Width)+";"...)
	}
	for _, name := range support {
		ri, ok := c.regIdx[name]
		if !ok {
			sb = append(sb, "reg? "+name+";"...)
			continue
		}
		r := c.regs[ri]
		sb = append(sb, "reg "+r.Name+" "+itoa(r.Width)+" "+itoa(int(r.Init))+"["...)
		for _, root := range r.Next {
			e := expr(root.Node())
			if root.Inverted() {
				e = "~" + e
			}
			sb = append(sb, e...)
			sb = append(sb, ';')
		}
		sb = append(sb, ']')
		if !sizeOK || len(sb) > 4*cap {
			return "", false
		}
	}
	return string(sb), sizeOK
}

// FuzzConeFingerprint checks two properties on random small cones:
// embedding invariance (the same cone in a larger, reordered design hashes
// equal) and agreement with the brute-force isomorphism reference under
// single-byte spec mutations — a mutation changes the fingerprint exactly
// when it changes the cone's canonical structure (some mutations are
// no-ops after constant folding and structural hashing; the reference
// catches those).
func FuzzConeFingerprint(f *testing.F) {
	f.Add([]byte{2, 1, 3, 0, 0x21, 2, 0x35, 4, 0x17, 1, 5}, uint8(4), uint8(1))
	f.Add([]byte{0, 2, 0xff, 1, 0x42, 3, 0x66, 0, 0x0f, 9}, uint8(7), uint8(0x80))
	f.Add([]byte{5, 0, 0, 2, 0x99, 2, 0x9a, 4, 0x21, 0, 0x13, 7, 3}, uint8(0), uint8(0xff))
	f.Fuzz(func(t *testing.T, spec []byte, mutPos, mutXor uint8) {
		c1, sup, ok := buildSpecCircuit(spec, false)
		if !ok {
			t.Skip()
		}
		c2, _, ok2 := buildSpecCircuit(spec, true)
		if !ok2 {
			t.Skip()
		}
		if c1.ConeFingerprint(sup) != c2.ConeFingerprint(sup) {
			t.Fatalf("cone fingerprint varies with embedding:\n  plain    %s\n  embedded %s",
				c1.ConeFingerprint(sup).Hex(), c2.ConeFingerprint(sup).Hex())
		}
		if len(spec) == 0 || mutXor == 0 {
			return
		}
		m := append([]byte(nil), spec...)
		m[int(mutPos)%len(m)] ^= mutXor
		c3, sup3, ok3 := buildSpecCircuit(m, false)
		if !ok3 || len(sup3) != len(sup) {
			return
		}
		b1, okB1 := bruteConeCanon(c1, sup)
		b3, okB3 := bruteConeCanon(c3, sup)
		if !okB1 || !okB3 {
			return
		}
		fpEq := c1.ConeFingerprint(sup) == c3.ConeFingerprint(sup)
		if fpEq != (b1 == b3) {
			t.Fatalf("fingerprint disagrees with brute-force isomorphism: fpEq=%v isoEq=%v\nspec=%x\nmut =%x",
				fpEq, b1 == b3, spec, m)
		}
	})
}
