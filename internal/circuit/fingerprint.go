package circuit

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
	"sync"
)

// Fingerprint returns a structural identity hash of the circuit: every AIG
// node (kind and operands), every input port, every register (name, width,
// reset value, next-state function) and every named wire participate. Two
// circuits with equal fingerprints are structurally identical transition
// systems, so solver work derived from one — cone encodings, learnt
// clauses, abduction verdicts — is sound to reuse on the other.
//
// The fingerprint is the top half of the cross-run verification cache key
// (the other half is the environment-assumption identity, System.EnvKey in
// internal/hhoudini): it is what makes "same design, new Learner" cache
// hits safe and "changed design" runs miss. The hash is computed once per
// Circuit and memoized; Circuit is immutable, so the value never changes.
func (c *Circuit) Fingerprint() uint64 {
	c.fpOnce.Do(func() { c.fp = c.computeFingerprint() })
	return c.fp
}

func (c *Circuit) computeFingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	str := func(s string) {
		u64(uint64(len(s)))
		h.Write([]byte(s))
	}
	sig := func(s Signal) { u64(uint64(int64(s))) }
	word := func(w Word) {
		u64(uint64(len(w)))
		for _, s := range w {
			sig(s)
		}
	}

	str("hhoudini-circuit-fp/v1")

	// AIG structure. Node ids are assigned in construction order, so the
	// (kind, a, b) stream pins the whole graph.
	u64(uint64(len(c.nodes)))
	for _, n := range c.nodes {
		u64(uint64(n.kind))
		sig(n.a)
		sig(n.b)
	}

	// Interface: input ports and registers with resets and next-state
	// functions (declaration order is part of the identity).
	u64(uint64(len(c.inputs)))
	for _, p := range c.inputs {
		str(p.Name)
		word(p.Bits)
	}
	u64(uint64(len(c.regs)))
	for _, r := range c.regs {
		str(r.Name)
		u64(r.Init)
		word(r.Bits)
		word(r.Next)
	}

	// Named wires (predicates may encode through them).
	names := make([]string, 0, len(c.wires))
	for name := range c.wires {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		str(name)
		word(c.wires[name])
	}
	return h.Sum64()
}

// fpState is embedded in Circuit (see circuit.go); split out here so the
// fingerprint machinery stays in one file.
type fpState struct {
	fpOnce sync.Once
	fp     uint64
}
