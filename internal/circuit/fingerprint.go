package circuit

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Fingerprint returns a structural identity hash of the circuit: every AIG
// node (kind and operands), every input port, every register (name, width,
// reset value, next-state function) and every named wire participate. Two
// circuits with equal fingerprints are structurally identical transition
// systems, so solver work derived from one — cone encodings, learnt
// clauses, abduction verdicts — is sound to reuse on the other.
//
// The fingerprint is the top half of the cross-run verification cache key
// (the other half is the environment-assumption identity, System.EnvKey in
// internal/hhoudini): it is what makes "same design, new Learner" cache
// hits safe and "changed design" runs miss. The hash is computed once per
// Circuit and memoized; Circuit is immutable, so the value never changes.
func (c *Circuit) Fingerprint() uint64 {
	c.fpOnce.Do(func() { c.fp = c.computeFingerprint() })
	return c.fp
}

func (c *Circuit) computeFingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	str := func(s string) {
		u64(uint64(len(s)))
		h.Write([]byte(s))
	}
	sig := func(s Signal) { u64(uint64(int64(s))) }
	word := func(w Word) {
		u64(uint64(len(w)))
		for _, s := range w {
			sig(s)
		}
	}

	str("hhoudini-circuit-fp/v1")

	// AIG structure. Node ids are assigned in construction order, so the
	// (kind, a, b) stream pins the whole graph.
	u64(uint64(len(c.nodes)))
	for _, n := range c.nodes {
		u64(uint64(n.kind))
		sig(n.a)
		sig(n.b)
	}

	// Interface: input ports and registers with resets and next-state
	// functions (declaration order is part of the identity).
	u64(uint64(len(c.inputs)))
	for _, p := range c.inputs {
		str(p.Name)
		word(p.Bits)
	}
	u64(uint64(len(c.regs)))
	for _, r := range c.regs {
		str(r.Name)
		u64(r.Init)
		word(r.Bits)
		word(r.Next)
	}

	// Named wires (predicates may encode through them).
	names := make([]string, 0, len(c.wires))
	for name := range c.wires {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		str(name)
		word(c.wires[name])
	}
	return h.Sum64()
}

// fpState is embedded in Circuit (see circuit.go); split out here so the
// fingerprint machinery stays in one file.
type fpState struct {
	fpOnce sync.Once
	fp     uint64

	coneOnce sync.Once
	cones    *coneTable

	inRefOnce sync.Once
	inBitPort []int32 // global input-bit index → input port index
	inBitOff  []int32 // global input-bit index → bit offset within the port
}

// adoptIdentity shares the memoized structural identity of an equal circuit:
// the whole-circuit fingerprint and the cone-fingerprint memo table. Only
// valid when the two circuits are structurally identical (same node array,
// interface, registers and wires) — callers must verify that first.
func (c *Circuit) adoptIdentity(src *Circuit) {
	c.fpOnce.Do(func() { c.fp = src.Fingerprint() })
	c.coneOnce.Do(func() { c.cones = src.coneTab() })
}

// ConeFP is a 128-bit canonical fingerprint of a register fan-in cone. Two
// cones with equal fingerprints are structurally isomorphic under the
// canonical local numbering, so solver artifacts derived from one — learnt
// clauses over canonical names, abduction verdicts — are sound to reuse on
// the other even when the surrounding designs differ. 128 bits because a
// collision would be unsound, not merely slow (same reasoning as the
// verification cache's dual-hash verdict keys).
type ConeFP struct {
	A, B uint64
}

// Hex renders the fingerprint as a fixed-width 32-character hex string —
// the form embedded in cache keys and canonical gate names.
func (f ConeFP) Hex() string {
	var b [32]byte
	hexPut(b[:16], f.A)
	hexPut(b[16:], f.B)
	return string(b[:])
}

func hexPut(dst []byte, v uint64) {
	const digits = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		dst[i] = digits[v&0xf]
		v >>= 4
	}
}

// coneInfo is the memoized result of one canonical cone traversal: the
// fingerprint plus the canonical node-name map handed to encoders.
type coneInfo struct {
	fp    ConeFP
	names map[int32]string
}

// coneTable memoizes cone traversals per support set. It is shared between
// a circuit and its pure duplicates (see adoptIdentity): node ids are
// identical across a pure replay, so the memo transfers verbatim.
type coneTable struct {
	mu sync.Mutex
	m  map[string]*coneInfo
}

func (c *Circuit) coneTab() *coneTable {
	c.coneOnce.Do(func() {
		if c.cones == nil {
			c.cones = &coneTable{m: make(map[string]*coneInfo)}
		}
	})
	return c.cones
}

// canonSupport sorts, dedups and joins a support-register list into the
// cone memo key. Empty names are dropped.
func canonSupport(support []string) string {
	s := make([]string, 0, len(support))
	for _, name := range support {
		if name != "" {
			s = append(s, name)
		}
	}
	sort.Strings(s)
	out := s[:0]
	var prev string
	for i, name := range s {
		if i == 0 || name != prev {
			out = append(out, name)
		}
		prev = name
	}
	return strings.Join(out, "\x00")
}

// ConeFingerprint returns the canonical fingerprint of the union fan-in
// cone of the named registers: for each register (sorted by name) it hashes
// the register interface (name, width, reset value) and the structure of
// its next-state functions under a local topological numbering, with latch
// and input leaves identified by (register, bit) and (port, bit) rather
// than global node id. The hash is therefore invariant to global node ids,
// declaration order, and any part of the design outside the cone. The full
// primary-input interface (sorted names and widths) also participates:
// environment assumptions encode over input ports, so cones are only
// interchangeable between designs that agree on the inputs.
//
// Results are memoized per support set; repeated cones cost one traversal.
// Safe for concurrent use.
func (c *Circuit) ConeFingerprint(support []string) ConeFP {
	return c.coneInfoFor(support).fp
}

// ConeNames returns the canonical variable names of every node in the union
// fan-in cone of the named registers: AND gates are named
// "c:<coneFP.Hex()>:<local-id>" (the name embeds the cone identity, so an
// equal name implies an equal Tseitin definition across designs), latch
// leaves "r:<reg>:<bit>", and input leaves "i:<port>:<bit>". The returned
// map is shared and memoized — callers must not mutate it.
func (c *Circuit) ConeNames(support []string) map[int32]string {
	return c.coneInfoFor(support).names
}

func (c *Circuit) coneInfoFor(support []string) *coneInfo {
	key := canonSupport(support)
	t := c.coneTab()
	t.mu.Lock()
	if ci, ok := t.m[key]; ok {
		t.mu.Unlock()
		return ci
	}
	t.mu.Unlock()

	var names []string
	if key != "" {
		names = strings.Split(key, "\x00")
	}
	ci := c.computeCone(names)

	t.mu.Lock()
	if prev, ok := t.m[key]; ok {
		ci = prev // lost a benign race; keep the canonical entry
	} else {
		t.m[key] = ci
	}
	t.mu.Unlock()
	return ci
}

// ch128 is a per-node canonical structure hash: a 128-bit digest of the
// node's unfolded expression tree with AND operands combined in an
// order-insensitive way. The builder normalizes AND operand order by global
// signal value (And2 swaps), so stored operand order varies with
// declaration order; canonicalization must therefore not depend on it —
// g ↔ a∧b is symmetric, so commuting operands preserves the Tseitin
// definition a canonical name stands for.
type ch128 struct{ a, b uint64 }

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// chWriter feeds one byte stream to the FNV-1 and FNV-1a variants at once.
type chWriter ch128

func newCHWriter() chWriter { return chWriter{a: fnvOffset64, b: fnvOffset64} }

func (w *chWriter) byte(c byte) {
	w.a = (w.a ^ uint64(c)) * fnvPrime64 // FNV-1a
	w.b = w.b*fnvPrime64 ^ uint64(c)     // FNV-1
}

func (w *chWriter) u64(v uint64) {
	for i := 0; i < 8; i++ {
		w.byte(byte(v))
		v >>= 8
	}
}

func (w *chWriter) bool(b bool) {
	if b {
		w.byte(1)
	} else {
		w.byte(0)
	}
}

func (w *chWriter) str(s string) {
	w.u64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		w.byte(s[i])
	}
}

func (w *chWriter) sum() ch128 { return ch128(*w) }

// chLess orders (structure hash, inversion) operand pairs canonically.
func chLess(x ch128, xi bool, y ch128, yi bool) bool {
	if x.a != y.a {
		return x.a < y.a
	}
	if x.b != y.b {
		return x.b < y.b
	}
	return !xi && yi
}

// computeCone performs the canonical traversal in two passes over the union
// next-state cone of the (already sorted) support registers. Pass one
// computes a per-node canonical structure hash bottom-up, insensitive to
// AND operand order. Pass two walks the cone again visiting AND operands in
// canonical (structure-hash) order, assigns dense local ids in discovery
// order, and hashes each node's structure — expressed over local ids —
// exactly once. The same byte stream feeds two independent FNV variants to
// form the 128-bit fingerprint.
func (c *Circuit) computeCone(support []string) *coneInfo {
	h1 := fnv.New64a()
	h2 := fnv.New64()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h1.Write(buf[:])
		h2.Write(buf[:])
	}
	str := func(s string) {
		u64(uint64(len(s)))
		h1.Write([]byte(s))
		h2.Write([]byte(s))
	}
	boolBit := func(b bool) {
		if b {
			u64(1)
		} else {
			u64(0)
		}
	}

	str("hhoudini-cone-fp/v1")

	// Primary-input interface (sorted): pins the environment-encoding
	// determinism across designs sharing this cone.
	inNames := make([]string, len(c.inputs))
	for i, p := range c.inputs {
		inNames[i] = p.Name
	}
	sort.Strings(inNames)
	u64(uint64(len(inNames)))
	for _, nm := range inNames {
		p := c.inputs[c.inIdx[nm]]
		str("in")
		str(p.Name)
		u64(uint64(p.Width))
	}

	// Pass one: order-insensitive per-node structure hashes, bottom-up.
	ch := make(map[int32]ch128)
	type frame struct {
		id       int32
		expanded bool
	}
	var stack []frame
	chVisit := func(root int32) {
		if _, ok := ch[root]; ok {
			return
		}
		stack = append(stack[:0], frame{id: root})
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if _, ok := ch[f.id]; ok {
				continue
			}
			nd := c.nodes[f.id]
			if nd.kind == kAnd && !f.expanded {
				stack = append(stack, frame{id: f.id, expanded: true},
					frame{id: nd.a.Node()}, frame{id: nd.b.Node()})
				continue
			}
			w := newCHWriter()
			switch nd.kind {
			case kAnd:
				pa, pb := ch[nd.a.Node()], ch[nd.b.Node()]
				ia, ib := nd.a.Inverted(), nd.b.Inverted()
				if chLess(pb, ib, pa, ia) {
					pa, pb, ia, ib = pb, pa, ib, ia
				}
				w.byte('a')
				w.u64(pa.a)
				w.u64(pa.b)
				w.bool(ia)
				w.u64(pb.a)
				w.u64(pb.b)
				w.bool(ib)
			case kLatch:
				l := c.latches[nd.a]
				w.byte('r')
				w.str(c.regs[l.reg].Name)
				w.u64(uint64(l.bit))
			case kInput:
				port, off := c.inputBitRef(int32(nd.a))
				w.byte('i')
				w.str(c.inputs[port].Name)
				w.u64(uint64(off))
			case kConst:
				w.byte('k')
			}
			ch[f.id] = w.sum()
		}
	}

	// Pass two: canonical-order DFS assigning local ids and hashing the
	// stream. AND operands are visited and emitted smaller-structure-hash
	// first; ties (isomorphic operand subtrees) fall back to ascending
	// local id, which both orders agree on up to isomorphism.
	local := make(map[int32]int32)
	names := make(map[int32]string)
	nextLocal := int32(0)
	assign := func(id int32) int32 {
		lid := nextLocal
		local[id] = lid
		nextLocal++
		return lid
	}
	type andRef struct{ node, lid int32 }
	var ands []andRef

	visit := func(root int32) {
		if _, ok := local[root]; ok {
			return
		}
		chVisit(root)
		stack = append(stack[:0], frame{id: root})
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if _, ok := local[f.id]; ok {
				continue
			}
			nd := c.nodes[f.id]
			if nd.kind == kAnd && !f.expanded {
				first, second := nd.a.Node(), nd.b.Node()
				if chLess(ch[second], nd.b.Inverted(), ch[first], nd.a.Inverted()) {
					first, second = second, first
				}
				// LIFO: push the canonical-second child first so the
				// canonical-first child is discovered (and numbered) first.
				stack = append(stack, frame{id: f.id, expanded: true},
					frame{id: second}, frame{id: first})
				continue
			}
			switch nd.kind {
			case kAnd:
				la, lb := local[nd.a.Node()], local[nd.b.Node()]
				ia, ib := nd.a.Inverted(), nd.b.Inverted()
				pa, pb := ch[nd.a.Node()], ch[nd.b.Node()]
				if chLess(pb, ib, pa, ia) || (pa == pb && ia == ib && lb < la) {
					la, lb, ia, ib = lb, la, ib, ia
				}
				lid := assign(f.id)
				str("a")
				u64(uint64(la))
				boolBit(ia)
				u64(uint64(lb))
				boolBit(ib)
				ands = append(ands, andRef{node: f.id, lid: lid})
			case kLatch:
				l := c.latches[nd.a]
				assign(f.id)
				str("r")
				str(c.regs[l.reg].Name)
				u64(uint64(l.bit))
				names[f.id] = c.leafName(f.id)
			case kInput:
				assign(f.id)
				port, off := c.inputBitRef(int32(nd.a))
				str("i")
				str(c.inputs[port].Name)
				u64(uint64(off))
				names[f.id] = c.leafName(f.id)
			case kConst:
				assign(f.id)
				str("k")
			}
		}
	}

	u64(uint64(len(support)))
	for _, name := range support {
		ri, ok := c.regIdx[name]
		if !ok {
			// Unknown register: hash its absence so the key stays total and
			// distinct from any real cone.
			str("reg?")
			str(name)
			continue
		}
		r := c.regs[ri]
		str("reg")
		str(r.Name)
		u64(uint64(r.Width))
		u64(r.Init)
		for bit, root := range r.Next {
			visit(root.Node())
			str("root")
			u64(uint64(bit))
			u64(uint64(local[root.Node()]))
			boolBit(root.Inverted())
		}
	}

	ci := &coneInfo{fp: ConeFP{A: h1.Sum64(), B: h2.Sum64()}, names: names}
	hex := ci.fp.Hex()
	for _, a := range ands {
		names[a.node] = "c:" + hex + ":" + strconv.Itoa(int(a.lid))
	}
	return ci
}

// inputBitRef resolves a global input-bit index to (port index, bit offset
// within the port). The lookup tables are built lazily once per circuit.
func (c *Circuit) inputBitRef(g int32) (port, off int32) {
	c.inRefOnce.Do(func() {
		c.inBitPort = make([]int32, c.nInBits)
		c.inBitOff = make([]int32, c.nInBits)
		bit := 0
		for pi, p := range c.inputs {
			for o := 0; o < p.Width; o++ {
				c.inBitPort[bit] = int32(pi)
				c.inBitOff[bit] = int32(o)
				bit++
			}
		}
	})
	return c.inBitPort[g], c.inBitOff[g]
}

// leafName returns the canonical structural name of a latch or input node
// ("r:<reg>:<bit>" / "i:<port>:<bit>"), or "" for other node kinds. These
// names are free variables of the transition encoding: they carry no
// Tseitin definition, so sharing them across designs is unconditionally
// sound, and a design that lacks the referenced register or port simply
// fails the import name lookup.
func (c *Circuit) leafName(id int32) string {
	nd := c.nodes[id]
	switch nd.kind {
	case kLatch:
		l := c.latches[nd.a]
		return "r:" + c.regs[l.reg].Name + ":" + itoa(l.bit)
	case kInput:
		port, off := c.inputBitRef(int32(nd.a))
		return "i:" + c.inputs[port].Name + ":" + itoa(int(off))
	}
	return ""
}
