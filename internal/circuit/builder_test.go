package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// combo builds a combinational test harness: two 16-bit inputs a, b and one
// single-bit input s, with every operation under test exposed as a wire.
func combo(t *testing.T) (*Circuit, *Sim) {
	t.Helper()
	b := NewBuilder()
	a := b.Input("a", 16)
	bb := b.Input("b", 16)
	sel := b.Input("s", 1)
	amt := b.Input("amt", 5)

	b.Name("and", b.AndW(a, bb))
	b.Name("or", b.OrW(a, bb))
	b.Name("xor", b.XorW(a, bb))
	b.Name("not", b.NotW(a))
	b.Name("add", b.Add(a, bb))
	b.Name("sub", b.Sub(a, bb))
	b.Name("inc", b.Inc(a))
	b.Name("mul", b.Mul(a, bb))
	b.Name("mux", b.MuxW(sel[0], a, bb))
	b.Name("eq", Word{b.Eq(a, bb)})
	b.Name("ne", Word{b.Ne(a, bb)})
	b.Name("ult", Word{b.Ult(a, bb)})
	b.Name("ule", Word{b.Ule(a, bb)})
	b.Name("slt", Word{b.Slt(a, bb)})
	b.Name("iszero", Word{b.IsZero(a)})
	b.Name("shl3", b.ShlC(a, 3))
	b.Name("lshr3", b.LshrC(a, 3))
	b.Name("ashr3", b.AshrC(a, 3))
	b.Name("shl", b.Shl(a, amt))
	b.Name("lshr", b.Lshr(a, amt))
	b.Name("ashr", b.Ashr(a, amt))
	b.Name("zext", b.ZeroExt(b.Extract(a, 7, 0), 16))
	b.Name("sext", b.SignExt(b.Extract(a, 7, 0), 16))
	b.Name("redor", Word{b.RedOr(a)})
	b.Name("redand", Word{b.RedAnd(a)})
	b.Name("redxor", Word{b.RedXor(a)})
	b.Name("concat", b.Concat(b.Extract(a, 7, 0), b.Extract(bb, 7, 0)))
	b.Name("eqconst", Word{b.EqConst(a, 0x1234)})

	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c, NewSim(c)
}

func TestWordOpsAgainstGoSemantics(t *testing.T) {
	_, sim := combo(t)
	rng := rand.New(rand.NewSource(42))
	const mask16 = 0xffff
	for iter := 0; iter < 500; iter++ {
		a := rng.Uint64() & mask16
		bb := rng.Uint64() & mask16
		s := rng.Uint64() & 1
		amt := rng.Uint64() & 31
		if err := sim.SetInputs(Inputs{"a": a, "b": bb, "s": s, "amt": amt}); err != nil {
			t.Fatal(err)
		}
		peek := func(name string) uint64 {
			v, err := sim.PeekWire(name)
			if err != nil {
				t.Fatal(err)
			}
			return v
		}
		b2u := func(cond bool) uint64 {
			if cond {
				return 1
			}
			return 0
		}
		sext8 := func(v uint64) uint64 {
			v &= 0xff
			if v&0x80 != 0 {
				v |= 0xff00
			}
			return v
		}
		shl := func(v, k uint64) uint64 {
			if k >= 16 {
				return 0
			}
			return (v << k) & mask16
		}
		lshr := func(v, k uint64) uint64 {
			if k >= 16 {
				return 0
			}
			return v >> k
		}
		ashr := func(v, k uint64) uint64 {
			sv := int64(int16(v))
			if k >= 16 {
				k = 15
				if sv < 0 {
					return mask16
				}
				return 0
			}
			return uint64(sv>>k) & mask16
		}
		parity := func(v uint64) uint64 {
			var p uint64
			for i := 0; i < 16; i++ {
				p ^= (v >> uint(i)) & 1
			}
			return p
		}
		cases := map[string]uint64{
			"and":     a & bb,
			"or":      a | bb,
			"xor":     a ^ bb,
			"not":     ^a & mask16,
			"add":     (a + bb) & mask16,
			"sub":     (a - bb) & mask16,
			"inc":     (a + 1) & mask16,
			"mul":     (a * bb) & mask16,
			"mux":     map[uint64]uint64{1: a, 0: bb}[s],
			"eq":      b2u(a == bb),
			"ne":      b2u(a != bb),
			"ult":     b2u(a < bb),
			"ule":     b2u(a <= bb),
			"slt":     b2u(int16(a) < int16(bb)),
			"iszero":  b2u(a == 0),
			"shl3":    (a << 3) & mask16,
			"lshr3":   a >> 3,
			"ashr3":   uint64(int16(a)>>3) & mask16,
			"shl":     shl(a, amt),
			"lshr":    lshr(a, amt),
			"ashr":    ashr(a, amt),
			"zext":    a & 0xff,
			"sext":    sext8(a),
			"redor":   b2u(a != 0),
			"redand":  b2u(a == mask16),
			"redxor":  parity(a),
			"concat":  (a & 0xff) | ((bb & 0xff) << 8),
			"eqconst": b2u(a == 0x1234),
		}
		for name, want := range cases {
			if got := peek(name); got != want {
				t.Fatalf("iter %d (a=%#x b=%#x s=%d amt=%d): %s = %#x, want %#x",
					iter, a, bb, s, amt, name, got, want)
			}
		}
	}
}

func TestCounterCircuit(t *testing.T) {
	b := NewBuilder()
	en := b.Input("en", 1)
	cnt := b.Register("cnt", 8, 0)
	b.SetNext("cnt", b.MuxW(en[0], b.Inc(cnt), cnt))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSim(c)
	for i := 0; i < 5; i++ {
		if err := sim.Step(Inputs{"en": 1}); err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := sim.PeekReg("cnt"); v != 5 {
		t.Fatalf("cnt = %d, want 5", v)
	}
	for i := 0; i < 3; i++ {
		sim.Step(Inputs{"en": 0})
	}
	if v, _ := sim.PeekReg("cnt"); v != 5 {
		t.Fatalf("cnt = %d, want 5 (disabled)", v)
	}
	// Wraparound.
	sim.PokeReg("cnt", 255)
	sim.Step(Inputs{"en": 1})
	if v, _ := sim.PeekReg("cnt"); v != 0 {
		t.Fatalf("cnt = %d, want 0 after wrap", v)
	}
}

func TestRegisterInitValues(t *testing.T) {
	b := NewBuilder()
	r := b.Register("r", 16, 0xBEEF)
	b.SetNext("r", r)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSim(c)
	if v, _ := sim.PeekReg("r"); v != 0xBEEF {
		t.Fatalf("init = %#x, want 0xBEEF", v)
	}
	sim.Step(nil)
	if v, _ := sim.PeekReg("r"); v != 0xBEEF {
		t.Fatalf("held = %#x, want 0xBEEF", v)
	}
}

func TestBuilderErrors(t *testing.T) {
	check := func(name string, f func(b *Builder)) {
		b := NewBuilder()
		f(b)
		if _, err := b.Build(); err == nil {
			t.Errorf("%s: expected Build error", name)
		}
	}
	check("missing next", func(b *Builder) { b.Register("r", 4, 0) })
	check("duplicate register", func(b *Builder) {
		b.Register("r", 4, 0)
		r := b.Register("r", 4, 0)
		b.SetNext("r", r)
	})
	check("duplicate input", func(b *Builder) {
		b.Input("i", 4)
		b.Input("i", 4)
	})
	check("width mismatch", func(b *Builder) {
		r := b.Register("r", 4, 0)
		b.SetNext("r", b.Concat(r, r))
	})
	check("double SetNext", func(b *Builder) {
		r := b.Register("r", 4, 0)
		b.SetNext("r", r)
		b.SetNext("r", r)
	})
	check("unknown SetNext", func(b *Builder) { b.SetNext("ghost", Word{False}) })
	check("reg/input collision", func(b *Builder) {
		b.Input("x", 4)
		r := b.Register("x", 4, 0)
		b.SetNext("x", r)
	})
	check("zero width register", func(b *Builder) {
		r := b.Register("r", 0, 0)
		b.SetNext("r", r)
	})
	check("bad extract", func(b *Builder) {
		r := b.Register("r", 4, 0)
		b.SetNext("r", r)
		b.Extract(r, 9, 0)
	})
}

func TestStructuralHashing(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 1)
	y := b.Input("y", 1)
	g1 := b.And2(x[0], y[0])
	g2 := b.And2(y[0], x[0]) // commuted
	if g1 != g2 {
		t.Fatal("structural hashing failed on commuted AND")
	}
	if b.And2(x[0], False) != False {
		t.Fatal("And(x, false) should fold")
	}
	if b.And2(x[0], True) != x[0] {
		t.Fatal("And(x, true) should fold")
	}
	if b.And2(x[0], x[0]) != x[0] {
		t.Fatal("And(x, x) should fold")
	}
	if b.And2(x[0], x[0].Not()) != False {
		t.Fatal("And(x, ¬x) should fold")
	}
}

func TestRegSupportChain(t *testing.T) {
	b := NewBuilder()
	in := b.Input("in", 4)
	a := b.Register("a", 4, 0)
	bb := b.Register("b", 4, 0)
	cc := b.Register("c", 4, 0)
	b.SetNext("a", in)
	b.SetNext("b", a)
	b.SetNext("c", b.Add(bb, cc)) // c depends on b and itself
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sup := func(name string) []string {
		s, err := c.RegSupport(name)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if got := sup("a"); len(got) != 0 {
		t.Fatalf("support(a) = %v, want empty (input only)", got)
	}
	if got := sup("b"); len(got) != 1 || got[0] != "a" {
		t.Fatalf("support(b) = %v, want [a]", got)
	}
	if got := sup("c"); len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("support(c) = %v, want [b c]", got)
	}
	fan, err := c.FanoutRegs("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(fan) != 1 || fan[0] != "b" {
		t.Fatalf("fanout(a) = %v, want [b]", fan)
	}
	c.WarmSupports()
}

// TestRegSupportSoundness: mutating a register outside the computed support
// of r must never change r's next value (support over-approximates; here we
// check the complement direction with random probing).
func TestRegSupportSoundness(t *testing.T) {
	b := NewBuilder()
	in := b.Input("in", 8)
	x := b.Register("x", 8, 0)
	y := b.Register("y", 8, 0)
	z := b.Register("z", 8, 0)
	w := b.Register("w", 8, 0)
	b.SetNext("x", b.Add(x, in))
	b.SetNext("y", b.XorW(x, z))
	b.SetNext("z", z)
	b.SetNext("w", b.MuxW(b.Eq(x, z), y, w))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	regs := []string{"x", "y", "z", "w"}
	for _, target := range regs {
		supList, _ := c.RegSupport(target)
		sup := map[string]bool{}
		for _, s := range supList {
			sup[s] = true
		}
		for iter := 0; iter < 50; iter++ {
			sim1, sim2 := NewSim(c), NewSim(c)
			base := Snapshot{rng.Uint64() & 255, rng.Uint64() & 255, rng.Uint64() & 255, rng.Uint64() & 255}
			sim1.LoadSnapshot(base)
			mod := base.Clone()
			// Perturb only registers outside the support.
			changed := false
			for i, name := range regs {
				if !sup[name] {
					mod[i] = rng.Uint64() & 255
					changed = changed || mod[i] != base[i]
				}
			}
			if !changed {
				continue
			}
			sim2.LoadSnapshot(mod)
			inv := rng.Uint64() & 255
			sim1.Step(Inputs{"in": inv})
			sim2.Step(Inputs{"in": inv})
			v1, _ := sim1.PeekReg(target)
			v2, _ := sim2.PeekReg(target)
			if v1 != v2 {
				t.Fatalf("register %s changed (%d vs %d) under out-of-support perturbation %v→%v",
					target, v1, v2, base, mod)
			}
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	b := NewBuilder()
	x := b.Register("x", 8, 3)
	y := b.Register("y", 16, 9)
	b.SetNext("x", b.Inc(x))
	b.SetNext("y", y)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSim(c)
	sim.Step(nil)
	sim.Step(nil)
	snap := sim.Snapshot()
	if snap[0] != 5 || snap[1] != 9 {
		t.Fatalf("snapshot = %v", snap)
	}
	sim2 := NewSim(c)
	if err := sim2.LoadSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if !sim2.Snapshot().Equal(snap) {
		t.Fatal("load/snapshot mismatch")
	}
	if sim2.Snapshot().Equal(InitSnapshot(c)) {
		t.Fatal("snapshot should differ from init")
	}
	if err := sim2.LoadSnapshot(Snapshot{1}); err == nil {
		t.Fatal("expected width-mismatch error")
	}
}

func TestSimErrors(t *testing.T) {
	b := NewBuilder()
	r := b.Register("r", 4, 0)
	b.SetNext("r", r)
	c, _ := b.Build()
	sim := NewSim(c)
	if err := sim.Step(Inputs{"ghost": 1}); err == nil {
		t.Fatal("expected unknown-input error")
	}
	if _, err := sim.PeekReg("ghost"); err == nil {
		t.Fatal("expected unknown-register error")
	}
	if _, err := sim.PeekWire("ghost"); err == nil {
		t.Fatal("expected unknown-wire error")
	}
	if err := sim.PokeReg("ghost", 1); err == nil {
		t.Fatal("expected unknown-register error")
	}
}

func TestQuickAddCommutes(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 12)
	y := b.Input("y", 12)
	b.Name("xy", b.Add(x, y))
	b.Name("yx", b.Add(y, x))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSim(c)
	f := func(a, bv uint16) bool {
		sim.SetInputs(Inputs{"x": uint64(a & 0xfff), "y": uint64(bv & 0xfff)})
		v1, _ := sim.PeekWire("xy")
		v2, _ := sim.PeekWire("yx")
		return v1 == v2 && v1 == uint64(a&0xfff+bv&0xfff)&0xfff
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
