// Package circuit models synchronous sequential hardware as an
// and-inverter graph (AIG) with registers, together with a word-level
// construction API, a cycle-accurate simulator, cone-of-influence slicing
// and a Tseitin CNF encoder.
//
// A circuit is the paper's transition system TS = (S, T, s0): the registers
// are the state variables V, simulating one clock cycle applies T, and the
// register reset values form s0 (Definition 2.1). The 1-step
// cone-of-influence computation implements the slicing oracle O_slice of
// Algorithm 1, and the CNF encoder produces the formulas behind every
// inductivity and abduction query.
package circuit

import (
	"fmt"
	"sort"
)

// Signal identifies a boolean signal in the circuit: a node together with
// an optional negation. The encoding is 2*node for the plain signal and
// 2*node+1 for its complement. Node 0 is the constant-false node, so
// False==0 and True==1.
type Signal int32

// Constant signals.
const (
	False Signal = 0
	True  Signal = 1
)

// Node returns the underlying node index.
func (s Signal) Node() int32 { return int32(s >> 1) }

// Inverted reports whether the signal is the complement of its node.
func (s Signal) Inverted() bool { return s&1 == 1 }

// Not returns the complement signal.
func (s Signal) Not() Signal { return s ^ 1 }

func (s Signal) xorSign(b bool) Signal {
	if b {
		return s ^ 1
	}
	return s
}

// Word is a little-endian vector of signals (index 0 is the LSB).
type Word []Signal

// Width returns the number of bits in the word.
func (w Word) Width() int { return len(w) }

type nodeKind uint8

const (
	kConst nodeKind = iota
	kInput          // a = global input-bit index
	kLatch          // a = latch index
	kAnd            // a, b = operand signals
)

type node struct {
	kind nodeKind
	a, b Signal
}

// Port describes a named input or register as a word of node signals.
type Port struct {
	Name  string
	Width int
	Bits  Word // positive signals of the underlying nodes
}

type regDef struct {
	Port
	init uint64
	next Word // nil until SetNext
}

// Builder constructs a Circuit. Create with NewBuilder, declare inputs and
// registers, wire up next-state logic, then call Build.
//
// The builder performs structural hashing and constant folding on AND
// nodes, so equivalent subterms share nodes.
type Builder struct {
	nodes    []node
	hash     map[[2]Signal]Signal
	inputs   []Port
	regs     []regDef
	regIdx   map[string]int
	inIdx    map[string]int
	wires    map[string]Word
	nInBits  int
	nLatches int
	err      error

	// dupSrc records pure-replay provenance: DuplicateInto sets it when it
	// replays a finalized circuit verbatim (no prefix, no shared inputs)
	// into an empty builder. Build then verifies structural equality and
	// lets the new circuit inherit the source's memoized fingerprint and
	// cone-fingerprint table instead of recomputing them.
	dupSrc *Circuit
}

// NewBuilder returns an empty builder containing only the constant node.
func NewBuilder() *Builder {
	return &Builder{
		nodes:  []node{{kind: kConst}},
		hash:   make(map[[2]Signal]Signal),
		regIdx: make(map[string]int),
		inIdx:  make(map[string]int),
		wires:  make(map[string]Word),
	}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

func (b *Builder) newNode(n node) Signal {
	id := int32(len(b.nodes))
	b.nodes = append(b.nodes, n)
	return Signal(id << 1)
}

// Input declares a primary input word.
func (b *Builder) Input(name string, width int) Word {
	if _, dup := b.inIdx[name]; dup {
		b.fail("circuit: duplicate input %q", name)
	}
	if _, dup := b.regIdx[name]; dup {
		b.fail("circuit: input %q collides with register", name)
	}
	w := make(Word, width)
	for i := range w {
		w[i] = b.newNode(node{kind: kInput, a: Signal(b.nInBits)})
		b.nInBits++
	}
	b.inIdx[name] = len(b.inputs)
	b.inputs = append(b.inputs, Port{Name: name, Width: width, Bits: w})
	return w
}

// Register declares a state-holding register with the given reset value and
// returns its current-state word. The next-state function must be assigned
// later with SetNext; registers may be referenced before their next-state
// logic exists, which is how feedback loops are built.
func (b *Builder) Register(name string, width int, init uint64) Word {
	if _, dup := b.regIdx[name]; dup {
		b.fail("circuit: duplicate register %q", name)
	}
	if _, dup := b.inIdx[name]; dup {
		b.fail("circuit: register %q collides with input", name)
	}
	if width <= 0 {
		b.fail("circuit: register %q has width %d", name, width)
		width = 1
	}
	w := make(Word, width)
	for i := range w {
		w[i] = b.newNode(node{kind: kLatch, a: Signal(b.nLatches)})
		b.nLatches++
	}
	b.regIdx[name] = len(b.regs)
	b.regs = append(b.regs, regDef{
		Port: Port{Name: name, Width: width, Bits: w},
		init: init,
	})
	return w
}

// SetNext assigns the next-state function of a register declared with
// Register. The width must match.
func (b *Builder) SetNext(name string, next Word) {
	i, ok := b.regIdx[name]
	if !ok {
		b.fail("circuit: SetNext of unknown register %q", name)
		return
	}
	r := &b.regs[i]
	if len(next) != r.Width {
		b.fail("circuit: SetNext(%q): width %d, want %d", name, len(next), r.Width)
		return
	}
	if r.next != nil {
		b.fail("circuit: SetNext(%q) called twice", name)
		return
	}
	r.next = append(Word(nil), next...)
}

// KeepNext is shorthand for a register that holds its value: SetNext(name,
// current value). Useful for configuration state.
func (b *Builder) KeepNext(name string) {
	i, ok := b.regIdx[name]
	if !ok {
		b.fail("circuit: KeepNext of unknown register %q", name)
		return
	}
	b.SetNext(name, b.regs[i].Bits)
}

// RegWord returns the current-state word of a declared register, for use
// while still building (e.g. constructing monitor logic over a duplicated
// circuit).
func (b *Builder) RegWord(name string) (Word, bool) {
	i, ok := b.regIdx[name]
	if !ok {
		return nil, false
	}
	return b.regs[i].Bits, true
}

// InputWord returns the word of a declared input while still building.
func (b *Builder) InputWord(name string) (Word, bool) {
	i, ok := b.inIdx[name]
	if !ok {
		return nil, false
	}
	return b.inputs[i].Bits, true
}

// Name tags a word as a named wire, making it observable in simulation and
// look-ups. Wires carry no state.
func (b *Builder) Name(name string, w Word) {
	if _, dup := b.wires[name]; dup {
		b.fail("circuit: duplicate wire %q", name)
	}
	b.wires[name] = append(Word(nil), w...)
}

// --- Bit-level operations -------------------------------------------------

// And2 returns the conjunction of two signals, with constant folding and
// structural hashing.
func (b *Builder) And2(x, y Signal) Signal {
	// Folding rules.
	switch {
	case x == False || y == False || x == y.Not():
		return False
	case x == True:
		return y
	case y == True:
		return x
	case x == y:
		return x
	}
	if x > y {
		x, y = y, x
	}
	key := [2]Signal{x, y}
	if s, ok := b.hash[key]; ok {
		return s
	}
	s := b.newNode(node{kind: kAnd, a: x, b: y})
	b.hash[key] = s
	return s
}

// Not returns the complement of a signal.
func (b *Builder) Not(x Signal) Signal { return x.Not() }

// Or2 returns the disjunction of two signals.
func (b *Builder) Or2(x, y Signal) Signal { return b.And2(x.Not(), y.Not()).Not() }

// Xor2 returns the exclusive-or of two signals.
func (b *Builder) Xor2(x, y Signal) Signal {
	return b.Or2(b.And2(x, y.Not()), b.And2(x.Not(), y))
}

// Xnor2 returns the equivalence of two signals.
func (b *Builder) Xnor2(x, y Signal) Signal { return b.Xor2(x, y).Not() }

// Mux2 returns sel ? t : f.
func (b *Builder) Mux2(sel, t, f Signal) Signal {
	if t == f {
		return t
	}
	return b.Or2(b.And2(sel, t), b.And2(sel.Not(), f))
}

// AndN folds And2 over any number of signals (True for none).
func (b *Builder) AndN(xs ...Signal) Signal {
	acc := True
	for _, x := range xs {
		acc = b.And2(acc, x)
	}
	return acc
}

// OrN folds Or2 over any number of signals (False for none).
func (b *Builder) OrN(xs ...Signal) Signal {
	acc := False
	for _, x := range xs {
		acc = b.Or2(acc, x)
	}
	return acc
}

// --- Word-level operations ------------------------------------------------

// Const returns a constant word of the given width holding val's low bits.
func (b *Builder) Const(val uint64, width int) Word {
	w := make(Word, width)
	for i := range w {
		if i < 64 && val&(1<<uint(i)) != 0 {
			w[i] = True
		} else {
			w[i] = False
		}
	}
	return w
}

func (b *Builder) checkSameWidth(op string, x, y Word) {
	if len(x) != len(y) {
		b.fail("circuit: %s: width mismatch %d vs %d", op, len(x), len(y))
	}
}

// NotW complements each bit.
func (b *Builder) NotW(x Word) Word {
	out := make(Word, len(x))
	for i, s := range x {
		out[i] = s.Not()
	}
	return out
}

// AndW is the bitwise conjunction of two equal-width words.
func (b *Builder) AndW(x, y Word) Word {
	b.checkSameWidth("AndW", x, y)
	out := make(Word, len(x))
	for i := range x {
		out[i] = b.And2(x[i], y[i])
	}
	return out
}

// OrW is the bitwise disjunction of two equal-width words.
func (b *Builder) OrW(x, y Word) Word {
	b.checkSameWidth("OrW", x, y)
	out := make(Word, len(x))
	for i := range x {
		out[i] = b.Or2(x[i], y[i])
	}
	return out
}

// XorW is the bitwise exclusive-or of two equal-width words.
func (b *Builder) XorW(x, y Word) Word {
	b.checkSameWidth("XorW", x, y)
	out := make(Word, len(x))
	for i := range x {
		out[i] = b.Xor2(x[i], y[i])
	}
	return out
}

// MuxW returns sel ? t : f, bitwise over equal-width words.
func (b *Builder) MuxW(sel Signal, t, f Word) Word {
	b.checkSameWidth("MuxW", t, f)
	out := make(Word, len(t))
	for i := range t {
		out[i] = b.Mux2(sel, t[i], f[i])
	}
	return out
}

// MaskW ands every bit of x with en (replication gate).
func (b *Builder) MaskW(en Signal, x Word) Word {
	out := make(Word, len(x))
	for i := range x {
		out[i] = b.And2(en, x[i])
	}
	return out
}

// Add returns x + y (truncating, ripple-carry).
func (b *Builder) Add(x, y Word) Word {
	b.checkSameWidth("Add", x, y)
	out := make(Word, len(x))
	carry := False
	for i := range x {
		s := b.Xor2(b.Xor2(x[i], y[i]), carry)
		carry = b.Or2(b.And2(x[i], y[i]), b.And2(carry, b.Xor2(x[i], y[i])))
		out[i] = s
	}
	return out
}

// Sub returns x - y (two's complement).
func (b *Builder) Sub(x, y Word) Word {
	b.checkSameWidth("Sub", x, y)
	out := make(Word, len(x))
	carry := True
	ny := b.NotW(y)
	for i := range x {
		s := b.Xor2(b.Xor2(x[i], ny[i]), carry)
		carry = b.Or2(b.And2(x[i], ny[i]), b.And2(carry, b.Xor2(x[i], ny[i])))
		out[i] = s
	}
	return out
}

// Inc returns x + 1.
func (b *Builder) Inc(x Word) Word { return b.Add(x, b.Const(1, len(x))) }

// Eq returns the single-bit equality of two equal-width words.
func (b *Builder) Eq(x, y Word) Signal {
	b.checkSameWidth("Eq", x, y)
	acc := True
	for i := range x {
		acc = b.And2(acc, b.Xnor2(x[i], y[i]))
	}
	return acc
}

// EqConst compares a word against a constant.
func (b *Builder) EqConst(x Word, val uint64) Signal {
	return b.Eq(x, b.Const(val, len(x)))
}

// Ne returns the single-bit disequality of two words.
func (b *Builder) Ne(x, y Word) Signal { return b.Eq(x, y).Not() }

// IsZero tests a word against zero.
func (b *Builder) IsZero(x Word) Signal { return b.RedOr(x).Not() }

// Ult returns the unsigned x < y.
func (b *Builder) Ult(x, y Word) Signal {
	b.checkSameWidth("Ult", x, y)
	lt := False
	for i := 0; i < len(x); i++ {
		bitLt := b.And2(x[i].Not(), y[i])
		bitEq := b.Xnor2(x[i], y[i])
		lt = b.Or2(bitLt, b.And2(bitEq, lt))
	}
	return lt
}

// Ule returns the unsigned x <= y.
func (b *Builder) Ule(x, y Word) Signal { return b.Ult(y, x).Not() }

// Slt returns the signed x < y.
func (b *Builder) Slt(x, y Word) Signal {
	n := len(x)
	if n == 0 {
		return False
	}
	sx, sy := x[n-1], y[n-1]
	// x<y signed: (sx ∧ ¬sy) ∨ (sx==sy ∧ ult(x,y)).
	return b.Or2(b.And2(sx, sy.Not()), b.And2(b.Xnor2(sx, sy), b.Ult(x, y)))
}

// ShlC shifts left by a constant amount, filling with zeros.
func (b *Builder) ShlC(x Word, k int) Word {
	out := make(Word, len(x))
	for i := range out {
		if i-k >= 0 && i-k < len(x) {
			out[i] = x[i-k]
		} else {
			out[i] = False
		}
	}
	return out
}

// LshrC shifts right logically by a constant amount.
func (b *Builder) LshrC(x Word, k int) Word {
	out := make(Word, len(x))
	for i := range out {
		if i+k < len(x) {
			out[i] = x[i+k]
		} else {
			out[i] = False
		}
	}
	return out
}

// AshrC shifts right arithmetically by a constant amount.
func (b *Builder) AshrC(x Word, k int) Word {
	out := make(Word, len(x))
	sign := False
	if len(x) > 0 {
		sign = x[len(x)-1]
	}
	for i := range out {
		if i+k < len(x) {
			out[i] = x[i+k]
		} else {
			out[i] = sign
		}
	}
	return out
}

// Shl is a barrel shifter: x << amt, where amt is a word.
func (b *Builder) Shl(x Word, amt Word) Word { return b.barrel(x, amt, b.ShlC, False) }

// Lshr is a barrel shifter: logical x >> amt.
func (b *Builder) Lshr(x Word, amt Word) Word { return b.barrel(x, amt, b.LshrC, False) }

// Ashr is a barrel shifter: arithmetic x >> amt.
func (b *Builder) Ashr(x Word, amt Word) Word {
	sign := False
	if len(x) > 0 {
		sign = x[len(x)-1]
	}
	return b.barrel(x, amt, b.AshrC, sign)
}

func (b *Builder) barrel(x Word, amt Word, shift func(Word, int) Word, fill Signal) Word {
	res := append(Word(nil), x...)
	overflow := False
	for i, bit := range amt {
		if 1<<uint(i) < len(x) && i < 31 {
			res = b.MuxW(bit, shift(res, 1<<uint(i)), res)
		} else {
			overflow = b.Or2(overflow, bit)
		}
	}
	fillW := make(Word, len(x))
	for i := range fillW {
		fillW[i] = fill
	}
	return b.MuxW(overflow, fillW, res)
}

// Mul returns the truncating product of two equal-width words (shift-add).
func (b *Builder) Mul(x, y Word) Word {
	b.checkSameWidth("Mul", x, y)
	acc := b.Const(0, len(x))
	for i := range y {
		part := b.MaskW(y[i], b.ShlC(x, i))
		acc = b.Add(acc, part)
	}
	return acc
}

// ZeroExt widens x to the given width with zeros (or truncates).
func (b *Builder) ZeroExt(x Word, width int) Word {
	out := make(Word, width)
	for i := range out {
		if i < len(x) {
			out[i] = x[i]
		} else {
			out[i] = False
		}
	}
	return out
}

// SignExt widens x to the given width replicating the sign bit.
func (b *Builder) SignExt(x Word, width int) Word {
	out := make(Word, width)
	sign := False
	if len(x) > 0 {
		sign = x[len(x)-1]
	}
	for i := range out {
		if i < len(x) {
			out[i] = x[i]
		} else {
			out[i] = sign
		}
	}
	return out
}

// Extract returns bits hi..lo inclusive (little-endian indices).
func (b *Builder) Extract(x Word, hi, lo int) Word {
	if lo < 0 || hi >= len(x) || lo > hi {
		b.fail("circuit: Extract[%d:%d] out of range for width %d", hi, lo, len(x))
		return make(Word, 1)
	}
	return append(Word(nil), x[lo:hi+1]...)
}

// Bit returns bit i of x as a signal.
func (b *Builder) Bit(x Word, i int) Signal {
	if i < 0 || i >= len(x) {
		b.fail("circuit: Bit(%d) out of range for width %d", i, len(x))
		return False
	}
	return x[i]
}

// Concat joins words, lowest word first.
func (b *Builder) Concat(lo Word, rest ...Word) Word {
	out := append(Word(nil), lo...)
	for _, w := range rest {
		out = append(out, w...)
	}
	return out
}

// RedOr returns the OR-reduction of a word.
func (b *Builder) RedOr(x Word) Signal { return b.OrN(x...) }

// RedAnd returns the AND-reduction of a word.
func (b *Builder) RedAnd(x Word) Signal { return b.AndN(x...) }

// RedXor returns the XOR-reduction of a word.
func (b *Builder) RedXor(x Word) Signal {
	acc := False
	for _, s := range x {
		acc = b.Xor2(acc, s)
	}
	return acc
}

// --- Finalization -----------------------------------------------------------

// Build finalizes the circuit. Every register must have a next-state
// function. The builder must not be used afterwards.
func (b *Builder) Build() (*Circuit, error) {
	if b.err != nil {
		return nil, b.err
	}
	for i := range b.regs {
		if b.regs[i].next == nil {
			return nil, fmt.Errorf("circuit: register %q has no next-state function", b.regs[i].Name)
		}
	}
	c := &Circuit{
		nodes:    b.nodes,
		inputs:   b.inputs,
		inIdx:    b.inIdx,
		regIdx:   b.regIdx,
		wires:    b.wires,
		nInBits:  b.nInBits,
		latches:  make([]latch, b.nLatches),
		regs:     make([]Reg, len(b.regs)),
		supports: make(map[string][]string),
	}
	for i, rd := range b.regs {
		c.regs[i] = Reg{Port: rd.Port, Init: rd.init, Next: rd.next}
		for bit, sig := range rd.Bits {
			li := int(c.nodes[sig.Node()].a)
			c.latches[li] = latch{
				node: sig.Node(),
				next: rd.next[bit],
				init: bit < 64 && rd.init&(1<<uint(bit)) != 0,
				reg:  i,
				bit:  bit,
			}
		}
	}
	// Sanity: AND node operands must precede the node (needed by the
	// simulator's single forward pass).
	for id, n := range c.nodes {
		if n.kind == kAnd {
			if n.a.Node() >= int32(id) || n.b.Node() >= int32(id) {
				return nil, fmt.Errorf("circuit: node ordering violated at %d", id)
			}
		}
	}
	if b.dupSrc != nil && structurallyEqual(c, b.dupSrc) {
		c.adoptIdentity(b.dupSrc)
	}
	return c, nil
}

// structurallyEqual reports whether two circuits are identical transition
// systems with identical node numbering — the condition under which
// memoized fingerprints and cone tables transfer verbatim. It guards the
// pure-duplicate inheritance path against builder mutations made after the
// DuplicateInto replay.
func structurallyEqual(a, b *Circuit) bool {
	if len(a.nodes) != len(b.nodes) || len(a.inputs) != len(b.inputs) ||
		len(a.regs) != len(b.regs) || len(a.wires) != len(b.wires) {
		return false
	}
	for i, n := range a.nodes {
		if n != b.nodes[i] {
			return false
		}
	}
	wordEq := func(x, y Word) bool {
		if len(x) != len(y) {
			return false
		}
		for i, s := range x {
			if s != y[i] {
				return false
			}
		}
		return true
	}
	for i, p := range a.inputs {
		q := b.inputs[i]
		if p.Name != q.Name || p.Width != q.Width || !wordEq(p.Bits, q.Bits) {
			return false
		}
	}
	for i, r := range a.regs {
		s := b.regs[i]
		if r.Name != s.Name || r.Width != s.Width || r.Init != s.Init ||
			!wordEq(r.Bits, s.Bits) || !wordEq(r.Next, s.Next) {
			return false
		}
	}
	for name, w := range a.wires {
		v, ok := b.wires[name]
		if !ok || !wordEq(w, v) {
			return false
		}
	}
	return true
}

// sortedNames returns map keys in deterministic order (test helper shared
// across the package).
func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
