package circuit

import (
	"math/rand"
	"testing"

	"hhoudini/internal/sat"
)

// assumeWord returns assumption literals pinning a literal word to a value.
func assumeWord(lits []sat.Lit, val uint64) []sat.Lit {
	out := make([]sat.Lit, len(lits))
	for i, l := range lits {
		if i < 64 && val&(1<<uint(i)) != 0 {
			out[i] = l
		} else {
			out[i] = l.Not()
		}
	}
	return out
}

func modelWord(s *sat.Solver, lits []sat.Lit) uint64 {
	var v uint64
	for i, l := range lits {
		if i < 64 && s.ModelValue(l) {
			v |= 1 << uint(i)
		}
	}
	return v
}

// TestEncoderAgreesWithSimulator is the Tseitin-consistency property: for
// random states and inputs, the CNF encoding of every register's next-state
// function must produce exactly the values the simulator computes.
func TestEncoderAgreesWithSimulator(t *testing.T) {
	b := NewBuilder()
	in := b.Input("in", 8)
	sel := b.Input("sel", 1)
	x := b.Register("x", 8, 0)
	y := b.Register("y", 8, 0)
	z := b.Register("z", 8, 1)
	b.SetNext("x", b.Add(x, in))
	b.SetNext("y", b.MuxW(sel[0], b.XorW(x, z), b.Sub(y, x)))
	b.SetNext("z", b.MuxW(b.Ult(x, y), b.Mul(z, in), z))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(2024))
	for iter := 0; iter < 60; iter++ {
		solver := sat.New()
		enc := NewEncoder(c, solver)
		xL, _ := enc.RegLits("x")
		yL, _ := enc.RegLits("y")
		zL, _ := enc.RegLits("z")
		inL, _ := enc.InputLits("in")
		selL, _ := enc.InputLits("sel")
		xN, _ := enc.RegNextLits("x")
		yN, _ := enc.RegNextLits("y")
		zN, _ := enc.RegNextLits("z")

		xv, yv, zv := rng.Uint64()&255, rng.Uint64()&255, rng.Uint64()&255
		iv, sv := rng.Uint64()&255, rng.Uint64()&1

		var as []sat.Lit
		as = append(as, assumeWord(xL, xv)...)
		as = append(as, assumeWord(yL, yv)...)
		as = append(as, assumeWord(zL, zv)...)
		as = append(as, assumeWord(inL, iv)...)
		as = append(as, assumeWord(selL, sv)...)
		if st := solver.Solve(as...); st != sat.Sat {
			t.Fatalf("iter %d: encoding unsat under concrete assignment", iter)
		}

		sim := NewSim(c)
		sim.LoadSnapshot(Snapshot{xv, yv, zv})
		sim.Step(Inputs{"in": iv, "sel": sv})
		wantX, _ := sim.PeekReg("x")
		wantY, _ := sim.PeekReg("y")
		wantZ, _ := sim.PeekReg("z")

		if got := modelWord(solver, xN); got != wantX {
			t.Fatalf("iter %d: next(x) = %#x, want %#x", iter, got, wantX)
		}
		if got := modelWord(solver, yN); got != wantY {
			t.Fatalf("iter %d: next(y) = %#x, want %#x", iter, got, wantY)
		}
		if got := modelWord(solver, zN); got != wantZ {
			t.Fatalf("iter %d: next(z) = %#x, want %#x", iter, got, wantZ)
		}
	}
}

func TestEncoderGateHelpers(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 4)
	b.Name("out", x)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	solver := sat.New()
	enc := NewEncoder(c, solver)
	xL, _ := enc.InputLits("x")

	andL := enc.AndLits(xL...)
	orL := enc.OrLits(xL...)
	eqc := enc.EqConstLits(xL, 0b1010)
	match := enc.MatchLits(xL, 0b1100, 0b0100)
	xnor := enc.XnorLit(xL[0], xL[1])
	eqw := enc.EqLits(xL[:2], xL[2:])

	for v := uint64(0); v < 16; v++ {
		as := assumeWord(xL, v)
		if st := solver.Solve(as...); st != sat.Sat {
			t.Fatalf("v=%d: unsat", v)
		}
		check := func(name string, l sat.Lit, want bool) {
			if got := solver.ModelValue(l); got != want {
				t.Fatalf("v=%#b: %s = %v, want %v", v, name, got, want)
			}
		}
		check("and", andL, v == 15)
		check("or", orL, v != 0)
		check("eqconst", eqc, v == 0b1010)
		check("match", match, v&0b1100 == 0b0100)
		check("xnor", xnor, (v&1 != 0) == (v&2 != 0))
		check("eqlits", eqw, v&3 == (v>>2)&3)
	}

	// Degenerate helper cases.
	if l := enc.AndLits(); !mustSat(solver, l) {
		t.Fatal("empty AndLits should be true")
	}
	if l := enc.OrLits(); mustSat(solver, l) {
		t.Fatal("empty OrLits should be false")
	}
	if enc.AndLits(xL[0]) != xL[0] || enc.OrLits(xL[3]) != xL[3] {
		t.Fatal("single-literal helpers should pass through")
	}
	if !mustSat(solver, enc.TrueLit()) || mustSat(solver, enc.FalseLit()) {
		t.Fatal("constant literals wrong")
	}
}

// mustSat reports whether l can be true under the current clause database.
func mustSat(s *sat.Solver, l sat.Lit) bool {
	return s.Solve(l) == sat.Sat
}

func TestEncoderUnknownNames(t *testing.T) {
	b := NewBuilder()
	r := b.Register("r", 2, 0)
	b.SetNext("r", r)
	c, _ := b.Build()
	enc := NewEncoder(c, sat.New())
	if _, err := enc.RegLits("ghost"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := enc.RegNextLits("ghost"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := enc.InputLits("ghost"); err == nil {
		t.Fatal("expected error")
	}
}

// TestEncoderConeLocality: encoding one small register's cone must not
// encode the rest of a large design.
func TestEncoderConeLocality(t *testing.T) {
	b := NewBuilder()
	small := b.Register("small", 1, 0)
	b.SetNext("small", b.NotW(small))
	// A large unrelated multiplier cone.
	x := b.Register("x", 32, 0)
	y := b.Register("y", 32, 0)
	b.SetNext("x", b.Mul(x, y))
	b.SetNext("y", y)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	solver := sat.New()
	enc := NewEncoder(c, solver)
	if _, err := enc.RegNextLits("small"); err != nil {
		t.Fatal(err)
	}
	if n := solver.NumVars(); n > 10 {
		t.Fatalf("encoding small cone created %d vars; locality broken", n)
	}
}
