package circuit

import (
	"fmt"
	"sort"
	"sync"
)

// Reg is a finalized register: its current-state word, reset value, and
// next-state word.
type Reg struct {
	Port
	Init uint64
	Next Word
}

type latch struct {
	node int32  // node id of the latch output
	next Signal // next-state function
	init bool
	reg  int // register index
	bit  int // bit position within the register
}

// Circuit is a finalized synchronous circuit (a transition system). It is
// immutable and safe for concurrent use by simulators and encoders.
type Circuit struct {
	nodes   []node
	inputs  []Port
	regs    []Reg
	latches []latch
	inIdx   map[string]int
	regIdx  map[string]int
	wires   map[string]Word
	nInBits int

	supports map[string][]string // memoized per-register 1-step COI
	supMu    sync.Mutex

	fpState // memoized structural fingerprint (see fingerprint.go)
}

// NumNodes returns the number of AIG nodes (including constants and leaves).
func (c *Circuit) NumNodes() int { return len(c.nodes) }

// NumStateBits returns the total number of register bits — the paper's
// "design size in # of state bits" (Table 1).
func (c *Circuit) NumStateBits() int { return len(c.latches) }

// NumInputBits returns the total number of primary input bits.
func (c *Circuit) NumInputBits() int { return c.nInBits }

// Inputs returns the declared input ports in declaration order.
func (c *Circuit) Inputs() []Port { return c.inputs }

// Regs returns the registers in declaration order.
func (c *Circuit) Regs() []Reg { return c.regs }

// Reg looks a register up by name.
func (c *Circuit) Reg(name string) (Reg, bool) {
	i, ok := c.regIdx[name]
	if !ok {
		return Reg{}, false
	}
	return c.regs[i], true
}

// RegIndex returns the dense index of a register, or -1.
func (c *Circuit) RegIndex(name string) int {
	i, ok := c.regIdx[name]
	if !ok {
		return -1
	}
	return i
}

// Input looks an input port up by name.
func (c *Circuit) Input(name string) (Port, bool) {
	i, ok := c.inIdx[name]
	if !ok {
		return Port{}, false
	}
	return c.inputs[i], true
}

// Wire looks a named wire up.
func (c *Circuit) Wire(name string) (Word, bool) {
	w, ok := c.wires[name]
	return w, ok
}

// WireNames returns the declared wire names, sorted.
func (c *Circuit) WireNames() []string { return sortedNames(c.wires) }

// RegNames returns all register names, sorted.
func (c *Circuit) RegNames() []string { return sortedNames(c.regIdx) }

// String summarizes the circuit.
func (c *Circuit) String() string {
	return fmt.Sprintf("circuit{regs: %d, state bits: %d, input bits: %d, nodes: %d}",
		len(c.regs), len(c.latches), c.nInBits, len(c.nodes))
}

// VisitAnds calls fn for every AND gate in topological order (operands are
// always visited before the gates that use them). Used by exporters.
func (c *Circuit) VisitAnds(fn func(node int32, a, b Signal)) {
	for id, n := range c.nodes {
		if n.kind == kAnd {
			fn(int32(id), n.a, n.b)
		}
	}
}

// RegSupport computes the 1-step cone of influence of a register at
// register granularity: the names of all registers whose current value can
// affect the register's next value. This is the slicing oracle O_slice of
// Algorithm 1 specialized to sequential circuits (footnote 3 of the paper).
// Results are memoized; the method is safe for concurrent use.
func (c *Circuit) RegSupport(name string) ([]string, error) {
	i, ok := c.regIdx[name]
	if !ok {
		return nil, fmt.Errorf("circuit: unknown register %q", name)
	}
	c.supMu.Lock()
	defer c.supMu.Unlock()
	if s, ok := c.supports[name]; ok {
		return s, nil
	}
	seen := make(map[int32]bool)
	regSet := make(map[int]bool)
	var stack []int32
	push := func(s Signal) {
		n := s.Node()
		if !seen[n] {
			seen[n] = true
			stack = append(stack, n)
		}
	}
	for _, s := range c.regs[i].Next {
		push(s)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := c.nodes[n]
		switch nd.kind {
		case kAnd:
			push(nd.a)
			push(nd.b)
		case kLatch:
			regSet[c.latches[nd.a].reg] = true
		}
	}
	out := make([]string, 0, len(regSet))
	for ri := range regSet {
		out = append(out, c.regs[ri].Name)
	}
	sort.Strings(out)
	c.supports[name] = out
	return out, nil
}

// WarmSupports precomputes the 1-step COI of every register. Call once
// before sharing the circuit across goroutines.
func (c *Circuit) WarmSupports() {
	for _, r := range c.regs {
		c.RegSupport(r.Name) //nolint:errcheck // name is known-valid
	}
}

// FanoutRegs returns the inverse of RegSupport: the registers whose next
// state the named register can influence in one step. Computed from the
// full support relation; call WarmSupports first for deterministic cost.
func (c *Circuit) FanoutRegs(name string) ([]string, error) {
	if _, ok := c.regIdx[name]; !ok {
		return nil, fmt.Errorf("circuit: unknown register %q", name)
	}
	var out []string
	for _, r := range c.regs {
		sup, err := c.RegSupport(r.Name)
		if err != nil {
			return nil, err
		}
		for _, s := range sup {
			if s == name {
				out = append(out, r.Name)
				break
			}
		}
	}
	sort.Strings(out)
	return out, nil
}
