package circuit

import "fmt"

// Inputs maps input port names to the value driven on them for one cycle.
// Missing inputs default to zero.
type Inputs map[string]uint64

// Snapshot is a value of the full architectural state: one uint64 per
// register, indexed by register declaration order. Registers wider than 64
// bits keep only their low 64 bits in a snapshot; the designs in this
// repository keep registers at 64 bits or less.
type Snapshot []uint64

// Clone returns a deep copy of the snapshot.
func (s Snapshot) Clone() Snapshot { return append(Snapshot(nil), s...) }

// Equal reports whether two snapshots agree on every register.
func (s Snapshot) Equal(t Snapshot) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Sim is a cycle-accurate simulator for a Circuit. It implements the
// transition relation T: each Step applies one clock edge. A Sim is not
// safe for concurrent use; create one per goroutine.
type Sim struct {
	c     *Circuit
	vals  []bool // per-node combinational values for the current cycle
	state []bool // per-latch registered values
	inBuf []bool // per-input-bit values
	dirty bool   // vals stale relative to state/in
	cycle int
}

// NewSim creates a simulator with the circuit in its reset state.
func NewSim(c *Circuit) *Sim {
	s := &Sim{
		c:     c,
		vals:  make([]bool, len(c.nodes)),
		state: make([]bool, len(c.latches)),
		inBuf: make([]bool, c.nInBits),
	}
	s.Reset()
	return s
}

// Reset restores all registers to their reset values.
func (s *Sim) Reset() {
	for i, l := range s.c.latches {
		s.state[i] = l.init
	}
	s.cycle = 0
	s.dirty = true
}

// Cycle returns the number of Steps since Reset.
func (s *Sim) Cycle() int { return s.cycle }

// SetInputs drives the primary inputs for the current cycle (before Step).
func (s *Sim) SetInputs(in Inputs) error {
	for i := range s.inBuf {
		s.inBuf[i] = false
	}
	for name, val := range in {
		p, ok := s.c.Input(name)
		if !ok {
			return fmt.Errorf("circuit: unknown input %q", name)
		}
		for bit, sig := range p.Bits {
			idx := int(s.c.nodes[sig.Node()].a)
			s.inBuf[idx] = bit < 64 && val&(1<<uint(bit)) != 0
		}
	}
	s.dirty = true
	return nil
}

// eval computes all combinational node values for the current state and
// inputs with a single forward pass (node ids are topologically ordered).
func (s *Sim) eval() {
	if !s.dirty {
		return
	}
	vals := s.vals
	for id, n := range s.c.nodes {
		switch n.kind {
		case kConst:
			vals[id] = false
		case kInput:
			vals[id] = s.inBuf[n.a]
		case kLatch:
			vals[id] = s.state[n.a]
		case kAnd:
			va := vals[n.a.Node()] != n.a.Inverted()
			vb := vals[n.b.Node()] != n.b.Inverted()
			vals[id] = va && vb
		}
	}
	s.dirty = false
}

// Step applies one clock edge with the given inputs.
func (s *Sim) Step(in Inputs) error {
	if err := s.SetInputs(in); err != nil {
		return err
	}
	s.eval()
	next := make([]bool, len(s.state))
	for i, l := range s.c.latches {
		next[i] = s.SignalValue(l.next)
	}
	copy(s.state, next)
	s.cycle++
	s.dirty = true
	return nil
}

// SignalValue returns the current combinational value of a signal
// (evaluating the circuit if necessary).
func (s *Sim) SignalValue(sig Signal) bool {
	s.eval()
	return s.vals[sig.Node()] != sig.Inverted()
}

// WordValue evaluates a word to an integer (low 64 bits for wider words).
func (s *Sim) WordValue(w Word) uint64 {
	var out uint64
	for i, sig := range w {
		if i >= 64 {
			break
		}
		if s.SignalValue(sig) {
			out |= 1 << uint(i)
		}
	}
	return out
}

// PeekReg returns the registered (pre-edge) value of a register.
func (s *Sim) PeekReg(name string) (uint64, error) {
	r, ok := s.c.Reg(name)
	if !ok {
		return 0, fmt.Errorf("circuit: unknown register %q", name)
	}
	var out uint64
	for bit, sig := range r.Bits {
		if bit >= 64 {
			break
		}
		if s.state[s.c.nodes[sig.Node()].a] {
			out |= 1 << uint(bit)
		}
	}
	return out, nil
}

// PokeReg overwrites the current value of a register.
func (s *Sim) PokeReg(name string, val uint64) error {
	r, ok := s.c.Reg(name)
	if !ok {
		return fmt.Errorf("circuit: unknown register %q", name)
	}
	for bit, sig := range r.Bits {
		s.state[s.c.nodes[sig.Node()].a] = bit < 64 && val&(1<<uint(bit)) != 0
	}
	s.dirty = true
	return nil
}

// PeekWire evaluates a named wire under the currently driven inputs.
func (s *Sim) PeekWire(name string) (uint64, error) {
	w, ok := s.c.Wire(name)
	if !ok {
		return 0, fmt.Errorf("circuit: unknown wire %q", name)
	}
	return s.WordValue(w), nil
}

// Snapshot captures the current architectural state.
func (s *Sim) Snapshot() Snapshot {
	out := make(Snapshot, len(s.c.regs))
	for i, r := range s.c.regs {
		var v uint64
		for bit, sig := range r.Bits {
			if bit >= 64 {
				break
			}
			if s.state[s.c.nodes[sig.Node()].a] {
				v |= 1 << uint(bit)
			}
		}
		out[i] = v
	}
	return out
}

// LoadSnapshot restores architectural state captured by Snapshot.
func (s *Sim) LoadSnapshot(snap Snapshot) error {
	if len(snap) != len(s.c.regs) {
		return fmt.Errorf("circuit: snapshot has %d regs, circuit has %d", len(snap), len(s.c.regs))
	}
	for i, r := range s.c.regs {
		for bit, sig := range r.Bits {
			s.state[s.c.nodes[sig.Node()].a] = bit < 64 && snap[i]&(1<<uint(bit)) != 0
		}
	}
	s.dirty = true
	return nil
}

// InitSnapshot returns the reset-state snapshot of a circuit.
func InitSnapshot(c *Circuit) Snapshot {
	out := make(Snapshot, len(c.regs))
	for i, r := range c.regs {
		out[i] = r.Init
	}
	return out
}
