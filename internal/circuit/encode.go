package circuit

import (
	"fmt"

	"hhoudini/internal/sat"
)

// Encoder lazily Tseitin-encodes the combinational cone of requested
// signals into a SAT solver. Only the logic actually reachable from the
// requested signals is encoded — this locality is what makes the paper's
// incremental relative-induction queries cheap compared to a monolithic
// encoding of the whole design.
//
// The encoding covers a single transition: current-state register bits and
// input bits become free variables, and the next-state value of a register
// bit is the encoding of its next-state function over those variables.
//
// An Encoder is built for reuse across queries on the same solver: the
// node→literal memoization is persistent, so a cone (or a predicate
// encoding cached via Memo) is Tseitin-encoded at most once per Encoder
// lifetime. Query-specific facts should be scoped with assumption
// literals — either directly, or through selector-guarded clauses added
// with AssertLitWhen — rather than asserted destructively with AssertLit.
type Encoder struct {
	S *sat.Solver
	c *Circuit

	lits       []sat.Lit // per node; litUnset until encoded
	constFalse sat.Lit
	memo       map[string]sat.Lit
	stats      EncoderStats

	// Canonical variable naming for cross-solver clause exchange. A name
	// denotes the same boolean function of the circuit state in every
	// encoder over the same circuit fingerprint: node variables are named
	// by node id ("n:<id>"), and auxiliary gates built inside a named scope
	// (a Memo build or InScope region, which runs at most once per encoder
	// and is a deterministic function of its key) are named positionally
	// ("g:<scope>\x00<seq>"). Selector variables and gates built outside
	// any scope stay unnamed and are never exchanged.
	varNames  []string           // var index → canonical name ("" = unnamed)
	nameToVar map[string]sat.Var // canonical name → var
	scope     string
	scopeSeq  int

	// Cone-canonical naming (cross-design clause exchange). When coneNames
	// is installed the encoder abandons global-node-id names: nodes in the
	// map use their canonical cone names ("c:<coneFP>:<k>"), latch and input
	// leaves outside the map fall back to structural names ("r:<reg>:<bit>",
	// "i:<port>:<bit>"), and AND gates outside the cone stay unnamed — their
	// identity is not pinned by the cone fingerprint, so clauses touching
	// them must never be exported.
	coneMode  bool
	coneNames map[int32]string
}

// NamedLit is a literal expressed over canonical variable names instead of
// solver variable indices — the portable form used to move learnt clauses
// between solvers that encode the same system.
type NamedLit struct {
	Name string
	Neg  bool
}

// EncoderStats counts the encoding work an Encoder has performed. The
// incremental abduction backend reads per-query deltas off these counters
// to demonstrate the encode-work drop from solver pooling.
type EncoderStats struct {
	Gates    int64 // auxiliary (Tseitin gate) variables introduced
	Clauses  int64 // clauses added through the encoder
	MemoHits int64 // Memo calls served from cache without re-encoding
	// Imported counts clauses replayed in from a cross-run clause store via
	// ImportNamedClause. They are deliberately not charged to Clauses:
	// replayed clauses are reused work, not fresh encode work.
	Imported int64
}

const litUnset sat.Lit = -2

// NewEncoder creates an encoder targeting the given solver. Multiple
// encoders must not share a solver.
func NewEncoder(c *Circuit, s *sat.Solver) *Encoder {
	e := &Encoder{S: s, c: c, lits: make([]sat.Lit, len(c.nodes)),
		memo: make(map[string]sat.Lit), nameToVar: make(map[string]sat.Var)}
	for i := range e.lits {
		e.lits[i] = litUnset
	}
	e.constFalse = sat.PosLit(s.NewVar())
	e.setName(e.constFalse.Var(), "n:0")
	e.addClause(e.constFalse.Not())
	e.lits[0] = e.constFalse
	return e
}

// SetConeNames switches the encoder to cone-canonical naming using a name
// map from Circuit.ConeNames. Must be called before any encoding (right
// after NewEncoder); the map is borrowed and must not be mutated.
func (e *Encoder) SetConeNames(names map[int32]string) {
	e.coneMode = true
	e.coneNames = names
}

// setName records the canonical name of a variable in both directions.
// Empty names are ignored: the variable stays local to this encoder.
func (e *Encoder) setName(v sat.Var, name string) {
	if name == "" {
		return
	}
	for int(v) >= len(e.varNames) {
		e.varNames = append(e.varNames, "")
	}
	e.varNames[v] = name
	e.nameToVar[name] = v
}

// VarName returns the canonical name of a variable, or "" if it is local
// to this encoder (selectors, unscoped helper gates).
func (e *Encoder) VarName(v sat.Var) string {
	if int(v) < len(e.varNames) {
		return e.varNames[v]
	}
	return ""
}

// NamedVarCount returns the number of canonically named variables; the
// cross-run replay loop uses it as a cheap "new encodings appeared" probe.
func (e *Encoder) NamedVarCount() int { return len(e.nameToVar) }

// InScope runs fn with gate naming scoped under key. The build must run at
// most once per encoder per key and be a deterministic function of the key
// and the circuit, so that the k-th gate created under the scope denotes
// the same boolean function in every encoder of the same system. Memo
// applies the same scoping automatically; InScope exists for non-memoized
// deterministic regions such as the environment assumption.
func (e *Encoder) InScope(key string, fn func() error) error {
	prevScope, prevSeq := e.scope, e.scopeSeq
	e.scope, e.scopeSeq = key, 0
	err := fn()
	e.scope, e.scopeSeq = prevScope, prevSeq
	return err
}

// Stats returns the cumulative encode-work counters.
func (e *Encoder) Stats() EncoderStats { return e.stats }

// newGate allocates a fresh auxiliary (gate) variable. Inside a named
// scope the gate is canonically named by its position in the scope's
// deterministic build; outside any scope it stays local to this encoder.
func (e *Encoder) newGate() sat.Lit {
	e.stats.Gates++
	l := sat.PosLit(e.S.NewVar())
	if e.scope != "" {
		e.setName(l.Var(), "g:"+e.scope+"\x00"+itoa(e.scopeSeq))
		e.scopeSeq++
	}
	return l
}

// newNodeVar allocates the variable of a circuit node. In the default mode
// it is named by global node id ("n:<id>") — stable across encoders of the
// same circuit regardless of the order cones are encoded in. In cone mode
// the canonical cone name (or structural leaf name) is used instead, and
// AND gates outside the installed cone stay unnamed.
func (e *Encoder) newNodeVar(id int32, gate bool) sat.Lit {
	if gate {
		e.stats.Gates++
	}
	l := sat.PosLit(e.S.NewVar())
	e.setName(l.Var(), e.nodeVarName(id))
	return l
}

func (e *Encoder) nodeVarName(id int32) string {
	if !e.coneMode {
		return "n:" + itoa(int(id))
	}
	if id == 0 {
		return "n:0" // constant false means the same thing in every design
	}
	if nm, ok := e.coneNames[id]; ok {
		return nm
	}
	return e.c.leafName(id) // "" for out-of-cone AND gates: stays unnamed
}

// itoa is strconv.Itoa without the import weight on the hot path.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	pos := len(b)
	neg := i < 0
	if neg {
		i = -i
	}
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		pos--
		b[pos] = '-'
	}
	return string(b[pos:])
}

// addClause adds a clause through the encoder, counting the encode work.
func (e *Encoder) addClause(ls ...sat.Lit) {
	e.stats.Clauses++
	e.S.AddClause(ls...)
}

// Memo returns the literal cached under key, building and caching it on
// first use. It is the reuse hook for predicate encodings: encodings are
// deterministic functions of the (persistent) encoder state, so a cached
// literal stays equivalent for the lifetime of the encoder.
func (e *Encoder) Memo(key string, build func() (sat.Lit, error)) (sat.Lit, error) {
	if l, ok := e.memo[key]; ok {
		e.stats.MemoHits++
		return l, nil
	}
	var l sat.Lit
	err := e.InScope(key, func() error {
		var err error
		l, err = build()
		return err
	})
	if err != nil {
		return 0, err
	}
	e.memo[key] = l
	return l, nil
}

// ExportNamedLearnts translates the solver's exportable learnt clauses
// (sat.Solver.ExportLearnts) into canonical named form. Clauses touching
// any unnamed variable are dropped: their meaning is not portable.
func (e *Encoder) ExportNamedLearnts(maxLen int) [][]NamedLit {
	raw := e.S.ExportLearnts(maxLen)
	out := make([][]NamedLit, 0, len(raw))
clauses:
	for _, cl := range raw {
		named := make([]NamedLit, len(cl))
		for i, l := range cl {
			name := e.VarName(l.Var())
			if name == "" {
				continue clauses
			}
			named[i] = NamedLit{Name: name, Neg: l.Neg()}
		}
		out = append(out, named)
	}
	return out
}

// NameClause translates one clause of solver literals into canonical named
// form, or returns nil when any variable is unnamed (selector or unscoped
// gate) — such a clause is local to this encoder and not portable. The
// input is borrowed: the result shares nothing with it, so it is safe to
// call from the solver's mid-run export hook, whose argument is only valid
// for the duration of the call.
func (e *Encoder) NameClause(lits []sat.Lit) []NamedLit {
	named := make([]NamedLit, len(lits))
	for i, l := range lits {
		name := e.VarName(l.Var())
		if name == "" {
			return nil
		}
		named[i] = NamedLit{Name: name, Neg: l.Neg()}
	}
	return named
}

// ImportNamedClause replays one canonical clause into this encoder's
// solver, translating names back to local literals. It reports false —
// without touching the solver — when any name is not (yet) allocated here;
// the caller may retry after more encodings appear.
func (e *Encoder) ImportNamedClause(cl []NamedLit) bool {
	lits := make([]sat.Lit, len(cl))
	for i, nl := range cl {
		v, ok := e.nameToVar[nl.Name]
		if !ok {
			return false
		}
		l := sat.PosLit(v)
		if nl.Neg {
			l = l.Not()
		}
		lits[i] = l
	}
	e.stats.Imported++
	e.S.ImportClause(lits...)
	return true
}

// FalseLit returns a literal constrained to false.
func (e *Encoder) FalseLit() sat.Lit { return e.constFalse }

// TrueLit returns a literal constrained to true.
func (e *Encoder) TrueLit() sat.Lit { return e.constFalse.Not() }

// SignalLit returns the solver literal representing a circuit signal,
// encoding its cone on first use.
func (e *Encoder) SignalLit(sig Signal) sat.Lit {
	return e.nodeLit(sig.Node()).XorSign(sig.Inverted())
}

func (e *Encoder) nodeLit(id int32) sat.Lit {
	if l := e.lits[id]; l != litUnset {
		return l
	}
	// Iterative DFS to avoid deep recursion on big cones.
	stack := []int32{id}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		if e.lits[n] != litUnset {
			stack = stack[:len(stack)-1]
			continue
		}
		nd := e.c.nodes[n]
		switch nd.kind {
		case kInput, kLatch:
			e.lits[n] = e.newNodeVar(n, false)
			stack = stack[:len(stack)-1]
		case kAnd:
			la, lb := e.lits[nd.a.Node()], e.lits[nd.b.Node()]
			if la == litUnset || lb == litUnset {
				if la == litUnset {
					stack = append(stack, nd.a.Node())
				}
				if lb == litUnset {
					stack = append(stack, nd.b.Node())
				}
				continue
			}
			g := e.newNodeVar(n, true)
			a := la.XorSign(nd.a.Inverted())
			b := lb.XorSign(nd.b.Inverted())
			// g ↔ a ∧ b
			e.addClause(g.Not(), a)
			e.addClause(g.Not(), b)
			e.addClause(a.Not(), b.Not(), g)
			e.lits[n] = g
			stack = stack[:len(stack)-1]
		default: // kConst handled in NewEncoder
			stack = stack[:len(stack)-1]
		}
	}
	return e.lits[id]
}

// WordLits encodes each bit of a word.
func (e *Encoder) WordLits(w Word) []sat.Lit {
	out := make([]sat.Lit, len(w))
	for i, s := range w {
		out[i] = e.SignalLit(s)
	}
	return out
}

// RegLits returns the current-state literals of a register.
func (e *Encoder) RegLits(name string) ([]sat.Lit, error) {
	r, ok := e.c.Reg(name)
	if !ok {
		return nil, fmt.Errorf("circuit: unknown register %q", name)
	}
	return e.WordLits(r.Bits), nil
}

// RegNextLits returns the next-state literals of a register (the encoding
// of its next-state function over current-state and input variables).
func (e *Encoder) RegNextLits(name string) ([]sat.Lit, error) {
	r, ok := e.c.Reg(name)
	if !ok {
		return nil, fmt.Errorf("circuit: unknown register %q", name)
	}
	return e.WordLits(r.Next), nil
}

// WireLits returns the literals of a named wire (encoding its cone).
func (e *Encoder) WireLits(name string) ([]sat.Lit, error) {
	w, ok := e.c.Wire(name)
	if !ok {
		return nil, fmt.Errorf("circuit: unknown wire %q", name)
	}
	return e.WordLits(w), nil
}

// InputLits returns the literals of an input port.
func (e *Encoder) InputLits(name string) ([]sat.Lit, error) {
	p, ok := e.c.Input(name)
	if !ok {
		return nil, fmt.Errorf("circuit: unknown input %q", name)
	}
	return e.WordLits(p.Bits), nil
}

// --- Gate helpers over already-encoded literals ----------------------------

// AndLits returns a literal equivalent to the conjunction of ls.
func (e *Encoder) AndLits(ls ...sat.Lit) sat.Lit {
	switch len(ls) {
	case 0:
		return e.TrueLit()
	case 1:
		return ls[0]
	}
	g := e.newGate()
	long := make([]sat.Lit, 0, len(ls)+1)
	for _, l := range ls {
		e.addClause(g.Not(), l)
		long = append(long, l.Not())
	}
	long = append(long, g)
	e.addClause(long...)
	return g
}

// OrLits returns a literal equivalent to the disjunction of ls.
func (e *Encoder) OrLits(ls ...sat.Lit) sat.Lit {
	switch len(ls) {
	case 0:
		return e.FalseLit()
	case 1:
		return ls[0]
	}
	neg := make([]sat.Lit, len(ls))
	for i, l := range ls {
		neg[i] = l.Not()
	}
	return e.AndLits(neg...).Not()
}

// XnorLit returns a literal equivalent to a ↔ b.
func (e *Encoder) XnorLit(a, b sat.Lit) sat.Lit {
	g := e.newGate()
	e.addClause(g.Not(), a.Not(), b)
	e.addClause(g.Not(), a, b.Not())
	e.addClause(g, a, b)
	e.addClause(g, a.Not(), b.Not())
	return g
}

// EqLits returns a literal asserting bitwise equality of two literal words.
func (e *Encoder) EqLits(a, b []sat.Lit) sat.Lit {
	if len(a) != len(b) {
		panic("circuit: EqLits width mismatch")
	}
	bits := make([]sat.Lit, len(a))
	for i := range a {
		bits[i] = e.XnorLit(a[i], b[i])
	}
	return e.AndLits(bits...)
}

// EqConstLits returns a literal asserting that the literal word equals a
// constant value.
func (e *Encoder) EqConstLits(a []sat.Lit, val uint64) sat.Lit {
	bits := make([]sat.Lit, len(a))
	for i := range a {
		if i < 64 && val&(1<<uint(i)) != 0 {
			bits[i] = a[i]
		} else {
			bits[i] = a[i].Not()
		}
	}
	return e.AndLits(bits...)
}

// MatchLits returns a literal asserting (word & mask) == match.
func (e *Encoder) MatchLits(a []sat.Lit, mask, match uint64) sat.Lit {
	var bits []sat.Lit
	for i := range a {
		if i >= 64 || mask&(1<<uint(i)) == 0 {
			continue
		}
		if match&(1<<uint(i)) != 0 {
			bits = append(bits, a[i])
		} else {
			bits = append(bits, a[i].Not())
		}
	}
	return e.AndLits(bits...)
}

// AssertLit adds a unit clause fixing l true. The assertion is permanent;
// on a pooled (reused) encoder prefer assumptions or AssertLitWhen.
func (e *Encoder) AssertLit(l sat.Lit) { e.addClause(l) }

// AssertLitWhen adds the selector-guarded clause sel → l: the assertion is
// active only in Solve calls that assume sel, making it retractable — the
// guarded clause can later be permanently discharged by releasing sel
// (sat.Solver.Release).
func (e *Encoder) AssertLitWhen(sel, l sat.Lit) { e.addClause(sel.Not(), l) }

// NewSelector allocates a fresh activation literal for guarded assertions.
func (e *Encoder) NewSelector() sat.Lit { return e.S.NewSelector() }
