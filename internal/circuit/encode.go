package circuit

import (
	"fmt"

	"hhoudini/internal/sat"
)

// Encoder lazily Tseitin-encodes the combinational cone of requested
// signals into a SAT solver. Only the logic actually reachable from the
// requested signals is encoded — this locality is what makes the paper's
// incremental relative-induction queries cheap compared to a monolithic
// encoding of the whole design.
//
// The encoding covers a single transition: current-state register bits and
// input bits become free variables, and the next-state value of a register
// bit is the encoding of its next-state function over those variables.
type Encoder struct {
	S *sat.Solver
	c *Circuit

	lits       []sat.Lit // per node; litUnset until encoded
	constFalse sat.Lit
}

const litUnset sat.Lit = -2

// NewEncoder creates an encoder targeting the given solver. Multiple
// encoders must not share a solver.
func NewEncoder(c *Circuit, s *sat.Solver) *Encoder {
	e := &Encoder{S: s, c: c, lits: make([]sat.Lit, len(c.nodes))}
	for i := range e.lits {
		e.lits[i] = litUnset
	}
	e.constFalse = sat.PosLit(s.NewVar())
	s.AddClause(e.constFalse.Not())
	e.lits[0] = e.constFalse
	return e
}

// FalseLit returns a literal constrained to false.
func (e *Encoder) FalseLit() sat.Lit { return e.constFalse }

// TrueLit returns a literal constrained to true.
func (e *Encoder) TrueLit() sat.Lit { return e.constFalse.Not() }

// SignalLit returns the solver literal representing a circuit signal,
// encoding its cone on first use.
func (e *Encoder) SignalLit(sig Signal) sat.Lit {
	return e.nodeLit(sig.Node()).XorSign(sig.Inverted())
}

func (e *Encoder) nodeLit(id int32) sat.Lit {
	if l := e.lits[id]; l != litUnset {
		return l
	}
	// Iterative DFS to avoid deep recursion on big cones.
	stack := []int32{id}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		if e.lits[n] != litUnset {
			stack = stack[:len(stack)-1]
			continue
		}
		nd := e.c.nodes[n]
		switch nd.kind {
		case kInput, kLatch:
			e.lits[n] = sat.PosLit(e.S.NewVar())
			stack = stack[:len(stack)-1]
		case kAnd:
			la, lb := e.lits[nd.a.Node()], e.lits[nd.b.Node()]
			if la == litUnset || lb == litUnset {
				if la == litUnset {
					stack = append(stack, nd.a.Node())
				}
				if lb == litUnset {
					stack = append(stack, nd.b.Node())
				}
				continue
			}
			g := sat.PosLit(e.S.NewVar())
			a := la.XorSign(nd.a.Inverted())
			b := lb.XorSign(nd.b.Inverted())
			// g ↔ a ∧ b
			e.S.AddClause(g.Not(), a)
			e.S.AddClause(g.Not(), b)
			e.S.AddClause(a.Not(), b.Not(), g)
			e.lits[n] = g
			stack = stack[:len(stack)-1]
		default: // kConst handled in NewEncoder
			stack = stack[:len(stack)-1]
		}
	}
	return e.lits[id]
}

// WordLits encodes each bit of a word.
func (e *Encoder) WordLits(w Word) []sat.Lit {
	out := make([]sat.Lit, len(w))
	for i, s := range w {
		out[i] = e.SignalLit(s)
	}
	return out
}

// RegLits returns the current-state literals of a register.
func (e *Encoder) RegLits(name string) ([]sat.Lit, error) {
	r, ok := e.c.Reg(name)
	if !ok {
		return nil, fmt.Errorf("circuit: unknown register %q", name)
	}
	return e.WordLits(r.Bits), nil
}

// RegNextLits returns the next-state literals of a register (the encoding
// of its next-state function over current-state and input variables).
func (e *Encoder) RegNextLits(name string) ([]sat.Lit, error) {
	r, ok := e.c.Reg(name)
	if !ok {
		return nil, fmt.Errorf("circuit: unknown register %q", name)
	}
	return e.WordLits(r.Next), nil
}

// WireLits returns the literals of a named wire (encoding its cone).
func (e *Encoder) WireLits(name string) ([]sat.Lit, error) {
	w, ok := e.c.Wire(name)
	if !ok {
		return nil, fmt.Errorf("circuit: unknown wire %q", name)
	}
	return e.WordLits(w), nil
}

// InputLits returns the literals of an input port.
func (e *Encoder) InputLits(name string) ([]sat.Lit, error) {
	p, ok := e.c.Input(name)
	if !ok {
		return nil, fmt.Errorf("circuit: unknown input %q", name)
	}
	return e.WordLits(p.Bits), nil
}

// --- Gate helpers over already-encoded literals ----------------------------

// AndLits returns a literal equivalent to the conjunction of ls.
func (e *Encoder) AndLits(ls ...sat.Lit) sat.Lit {
	switch len(ls) {
	case 0:
		return e.TrueLit()
	case 1:
		return ls[0]
	}
	g := sat.PosLit(e.S.NewVar())
	long := make([]sat.Lit, 0, len(ls)+1)
	for _, l := range ls {
		e.S.AddClause(g.Not(), l)
		long = append(long, l.Not())
	}
	long = append(long, g)
	e.S.AddClause(long...)
	return g
}

// OrLits returns a literal equivalent to the disjunction of ls.
func (e *Encoder) OrLits(ls ...sat.Lit) sat.Lit {
	switch len(ls) {
	case 0:
		return e.FalseLit()
	case 1:
		return ls[0]
	}
	neg := make([]sat.Lit, len(ls))
	for i, l := range ls {
		neg[i] = l.Not()
	}
	return e.AndLits(neg...).Not()
}

// XnorLit returns a literal equivalent to a ↔ b.
func (e *Encoder) XnorLit(a, b sat.Lit) sat.Lit {
	g := sat.PosLit(e.S.NewVar())
	e.S.AddClause(g.Not(), a.Not(), b)
	e.S.AddClause(g.Not(), a, b.Not())
	e.S.AddClause(g, a, b)
	e.S.AddClause(g, a.Not(), b.Not())
	return g
}

// EqLits returns a literal asserting bitwise equality of two literal words.
func (e *Encoder) EqLits(a, b []sat.Lit) sat.Lit {
	if len(a) != len(b) {
		panic("circuit: EqLits width mismatch")
	}
	bits := make([]sat.Lit, len(a))
	for i := range a {
		bits[i] = e.XnorLit(a[i], b[i])
	}
	return e.AndLits(bits...)
}

// EqConstLits returns a literal asserting that the literal word equals a
// constant value.
func (e *Encoder) EqConstLits(a []sat.Lit, val uint64) sat.Lit {
	bits := make([]sat.Lit, len(a))
	for i := range a {
		if i < 64 && val&(1<<uint(i)) != 0 {
			bits[i] = a[i]
		} else {
			bits[i] = a[i].Not()
		}
	}
	return e.AndLits(bits...)
}

// MatchLits returns a literal asserting (word & mask) == match.
func (e *Encoder) MatchLits(a []sat.Lit, mask, match uint64) sat.Lit {
	var bits []sat.Lit
	for i := range a {
		if i >= 64 || mask&(1<<uint(i)) == 0 {
			continue
		}
		if match&(1<<uint(i)) != 0 {
			bits = append(bits, a[i])
		} else {
			bits = append(bits, a[i].Not())
		}
	}
	return e.AndLits(bits...)
}

// AssertLit adds a unit clause fixing l true.
func (e *Encoder) AssertLit(l sat.Lit) { e.S.AddClause(l) }
