package circuit

import (
	"testing"

	"hhoudini/internal/sat"
)

// portabilityCircuit builds a small two-register design used by the
// named-clause portability tests.
func portabilityCircuit(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder()
	in := b.Input("in", 4)
	x := b.Register("x", 4, 0)
	y := b.Register("y", 4, 0)
	b.SetNext("x", b.Add(x, in))
	b.SetNext("y", b.XorW(y, x))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestNodeVarNamesStableAcrossEncodingOrder is the portability contract for
// state variables: the canonical name of a register bit's SAT variable must
// not depend on the order in which an encoder materialized cones, so a
// clause exported from one encoder names the same state bits everywhere.
func TestNodeVarNamesStableAcrossEncodingOrder(t *testing.T) {
	c := portabilityCircuit(t)

	encA := NewEncoder(c, sat.New())
	// A encodes x's cone first, then y's.
	if _, err := encA.RegNextLits("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := encA.RegNextLits("y"); err != nil {
		t.Fatal(err)
	}

	encB := NewEncoder(c, sat.New())
	// B encodes in the opposite order.
	if _, err := encB.RegNextLits("y"); err != nil {
		t.Fatal(err)
	}
	if _, err := encB.RegNextLits("x"); err != nil {
		t.Fatal(err)
	}

	for _, reg := range []string{"x", "y"} {
		la, err := encA.RegLits(reg)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := encB.RegLits(reg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range la {
			na, nb := encA.VarName(la[i].Var()), encB.VarName(lb[i].Var())
			if na == "" || na != nb {
				t.Fatalf("%s[%d]: name %q (A) vs %q (B)", reg, i, na, nb)
			}
		}
	}
}

// TestMemoScopedGateNamesStable checks the scoped half of the naming scheme:
// Tseitin gates allocated under the same Memo key get identical canonical
// names in both encoders even when the surrounding allocation order differs,
// because the scope sequence counter restarts per key.
func TestMemoScopedGateNamesStable(t *testing.T) {
	c := portabilityCircuit(t)

	build := func(e *Encoder) (sat.Lit, error) {
		xs, err := e.RegLits("x")
		if err != nil {
			return 0, err
		}
		return e.AndLits(xs...), nil
	}

	encA := NewEncoder(c, sat.New())
	la, err := encA.Memo("allx", func() (sat.Lit, error) { return build(encA) })
	if err != nil {
		t.Fatal(err)
	}

	encB := NewEncoder(c, sat.New())
	// Skew B's variable allocation before the memoized build: extra cones
	// shift raw variable indices, but scoped names must not move.
	if _, err := encB.RegNextLits("y"); err != nil {
		t.Fatal(err)
	}
	lb, err := encB.Memo("allx", func() (sat.Lit, error) { return build(encB) })
	if err != nil {
		t.Fatal(err)
	}

	na, nb := encA.VarName(la.Var()), encB.VarName(lb.Var())
	if na == "" || na != nb {
		t.Fatalf("memo gate names differ: %q (A) vs %q (B)", na, nb)
	}
	if la.Var() == lb.Var() && encA.S.NumVars() == encB.S.NumVars() {
		t.Log("note: allocation skew did not move raw indices; name check still meaningful")
	}
}

// TestImportNamedClauseSemantics replays a clause authored in one encoder
// into a second encoder over the same circuit and checks it constrains the
// second solver: a unit clause forcing x[0] false must make assuming x[0]
// true Unsat, while leaving the rest of the space satisfiable.
func TestImportNamedClauseSemantics(t *testing.T) {
	c := portabilityCircuit(t)

	encA := NewEncoder(c, sat.New())
	xa, err := encA.RegLits("x")
	if err != nil {
		t.Fatal(err)
	}
	name := encA.VarName(xa[0].Var())
	if name == "" {
		t.Fatal("register bit has no canonical name")
	}
	clause := []NamedLit{{Name: name, Neg: true}} // ¬x[0]

	encB := NewEncoder(c, sat.New())
	xb, err := encB.RegLits("x")
	if err != nil {
		t.Fatal(err)
	}
	clausesBefore := encB.Stats().Clauses
	if !encB.ImportNamedClause(clause) {
		t.Fatal("import of known name rejected")
	}
	if got := encB.Stats().Imported; got != 1 {
		t.Fatalf("Imported stat = %d, want 1", got)
	}
	if got := encB.Stats().Clauses; got != clausesBefore {
		t.Fatalf("imported clause charged to Clauses (%d -> %d); replay must not count as fresh encode work", clausesBefore, got)
	}
	if st := encB.S.Solve(xb[0]); st != sat.Unsat {
		t.Fatalf("assuming x[0] after importing ¬x[0]: %v, want Unsat", st)
	}
	if st := encB.S.Solve(xb[0].Not()); st != sat.Sat {
		t.Fatalf("assuming ¬x[0]: %v, want Sat", st)
	}
}

// TestImportNamedClauseUnknownName checks the retry contract: a clause
// naming a variable this encoder has not allocated is rejected wholesale,
// leaving solver and stats untouched.
func TestImportNamedClauseUnknownName(t *testing.T) {
	c := portabilityCircuit(t)
	enc := NewEncoder(c, sat.New())
	xs, err := enc.RegLits("x")
	if err != nil {
		t.Fatal(err)
	}
	known := enc.VarName(xs[0].Var())
	before := enc.S.NumClauses()

	if enc.ImportNamedClause([]NamedLit{{Name: known}, {Name: "n:999999"}}) {
		t.Fatal("clause with unknown name was accepted")
	}
	if got := enc.Stats().Imported; got != 0 {
		t.Fatalf("Imported stat = %d after rejected import, want 0", got)
	}
	if got := enc.S.NumClauses(); got != before {
		t.Fatalf("solver clause count moved %d -> %d on rejected import", before, got)
	}
}

// TestExportNamedLearntsDropsUnnamed checks that exported clauses never
// mention unnamed (selector or out-of-scope aux) variables: every literal in
// every exported clause must resolve through VarName.
func TestExportNamedLearntsDropsUnnamed(t *testing.T) {
	c := portabilityCircuit(t)
	s := sat.New()
	enc := NewEncoder(c, s)
	xn, err := enc.RegNextLits("x")
	if err != nil {
		t.Fatal(err)
	}
	// Force some search with selector-guarded contradictory assumptions so
	// learnt clauses (and selector-tainted ones) exist.
	sel := enc.NewSelector()
	enc.AssertLitWhen(sel, xn[0])
	enc.AssertLitWhen(sel, xn[0].Not())
	if st := s.Solve(sel); st != sat.Unsat {
		t.Fatalf("contradiction under selector: %v, want Unsat", st)
	}
	for _, cl := range enc.ExportNamedLearnts(8) {
		if len(cl) == 0 {
			t.Fatal("empty exported clause")
		}
		for _, nl := range cl {
			if nl.Name == "" {
				t.Fatalf("exported clause %v carries an unnamed literal", cl)
			}
		}
	}
}
