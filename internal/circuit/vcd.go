package circuit

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// VCDRecorder dumps simulation activity as a Value Change Dump file, the
// standard waveform format readable by GTKWave and every RTL debugger.
// Attach it to a simulator, call Sample after each Step, and Close at the
// end.
//
//	rec, _ := circuit.NewVCDRecorder(file, sim, "top")
//	for ... {
//	    sim.Step(in)
//	    rec.Sample()
//	}
//	rec.Close()
type VCDRecorder struct {
	w    *bufio.Writer
	sim  *Sim
	time int

	names []string // register names in dump order
	codes []string // VCD identifier codes
	width []int
	last  []uint64
	open  bool
}

// NewVCDRecorder writes the VCD header for every register of the
// simulator's circuit and records the initial state at time 0.
func NewVCDRecorder(w io.Writer, sim *Sim, module string) (*VCDRecorder, error) {
	r := &VCDRecorder{w: bufio.NewWriter(w), sim: sim, open: true}
	regs := sim.c.Regs()
	names := make([]string, 0, len(regs))
	for _, reg := range regs {
		names = append(names, reg.Name)
	}
	sort.Strings(names)

	fmt.Fprintf(r.w, "$date reproduction run $end\n")
	fmt.Fprintf(r.w, "$version hhoudini circuit simulator $end\n")
	fmt.Fprintf(r.w, "$timescale 1ns $end\n")
	fmt.Fprintf(r.w, "$scope module %s $end\n", module)
	for i, name := range names {
		reg, _ := sim.c.Reg(name)
		code := vcdCode(i)
		r.names = append(r.names, name)
		r.codes = append(r.codes, code)
		r.width = append(r.width, reg.Width)
		fmt.Fprintf(r.w, "$var wire %d %s %s $end\n", reg.Width, code, vcdSafeName(name))
	}
	fmt.Fprintf(r.w, "$upscope $end\n$enddefinitions $end\n")

	fmt.Fprintf(r.w, "#0\n$dumpvars\n")
	r.last = make([]uint64, len(r.names))
	for i, name := range r.names {
		v, err := sim.PeekReg(name)
		if err != nil {
			return nil, err
		}
		r.last[i] = v
		r.emit(i, v)
	}
	fmt.Fprintf(r.w, "$end\n")
	return r, nil
}

// Sample records the current register values as the next timestep,
// emitting only changed signals.
func (r *VCDRecorder) Sample() error {
	if !r.open {
		return fmt.Errorf("circuit: VCD recorder is closed")
	}
	r.time++
	headerWritten := false
	for i, name := range r.names {
		v, err := r.sim.PeekReg(name)
		if err != nil {
			return err
		}
		if v == r.last[i] {
			continue
		}
		if !headerWritten {
			fmt.Fprintf(r.w, "#%d\n", r.time)
			headerWritten = true
		}
		r.last[i] = v
		r.emit(i, v)
	}
	return nil
}

// Close flushes the dump.
func (r *VCDRecorder) Close() error {
	if !r.open {
		return nil
	}
	r.open = false
	fmt.Fprintf(r.w, "#%d\n", r.time+1)
	return r.w.Flush()
}

func (r *VCDRecorder) emit(i int, v uint64) {
	if r.width[i] == 1 {
		fmt.Fprintf(r.w, "%d%s\n", v&1, r.codes[i])
		return
	}
	fmt.Fprintf(r.w, "b%b %s\n", v, r.codes[i])
}

// vcdCode produces a short printable identifier (VCD uses chars '!'..'~').
func vcdCode(i int) string {
	const lo, hi = 33, 127
	var out []byte
	for {
		out = append(out, byte(lo+i%(hi-lo)))
		i /= hi - lo
		if i == 0 {
			break
		}
		i--
	}
	return string(out)
}

// vcdSafeName replaces characters VCD tools reject in identifiers.
func vcdSafeName(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == ':' || c == ' ':
			out = append(out, '_')
		default:
			out = append(out, c)
		}
	}
	return string(out)
}
