package circuit

import "fmt"

// DuplicateInto replays a finalized circuit inside a builder, renaming every
// register and wire with the given prefix. Inputs listed in shared are
// connected to the provided words instead of fresh inputs; all other inputs
// are recreated with the prefix. This is the primitive underlying miter
// (product-circuit) construction for relational 2-safety properties.
func DuplicateInto(b *Builder, c *Circuit, prefix string, shared map[string]Word) error {
	// A verbatim replay into an empty builder reproduces the source node
	// for node (the builder's structural hashing is deterministic), so the
	// result may inherit the source's memoized fingerprint and cone table.
	// Record the provenance; Build re-verifies structural equality before
	// adopting, so later builder mutations simply disable the inheritance.
	pure := prefix == "" && len(shared) == 0 && len(b.nodes) == 1 &&
		len(b.inputs) == 0 && len(b.regs) == 0 && len(b.wires) == 0
	if pure {
		b.dupSrc = c
	} else {
		b.dupSrc = nil
	}

	m := make([]Signal, len(c.nodes))
	m[0] = False

	conv := func(s Signal) Signal { return m[s.Node()].xorSign(s.Inverted()) }

	// Registers first so feedback cones resolve.
	for _, r := range c.regs {
		w := b.Register(prefix+r.Name, r.Width, r.Init)
		for i, sig := range r.Bits {
			m[sig.Node()] = w[i]
		}
	}
	for _, in := range c.inputs {
		w, ok := shared[in.Name]
		if !ok {
			w = b.Input(prefix+in.Name, in.Width)
		} else if len(w) != in.Width {
			return fmt.Errorf("circuit: shared input %q has width %d, want %d",
				in.Name, len(w), in.Width)
		}
		for i, sig := range in.Bits {
			m[sig.Node()] = w[i]
		}
	}
	for id, n := range c.nodes {
		if n.kind == kAnd {
			m[id] = b.And2(conv(n.a), conv(n.b))
		}
	}
	for _, r := range c.regs {
		next := make(Word, r.Width)
		for i, s := range r.Next {
			next[i] = conv(s)
		}
		b.SetNext(prefix+r.Name, next)
	}
	for _, name := range sortedNames(c.wires) {
		w := c.wires[name]
		nw := make(Word, len(w))
		for i, s := range w {
			nw[i] = conv(s)
		}
		b.Name(prefix+name, nw)
	}
	return nil
}
