// Package flusherr is the golden-file fixture for hhlint's flusherr pass.
// The package name contains "flusherr", which places every file here inside
// the pass's durability scope (mirroring internal/proofdb and persist.go).
package flusherr

type file struct{ dirty bool }

func (f *file) Close() error { return nil }
func (f *file) Sync() error  { return nil }
func (f *file) Flush() error { return nil }

// Rotate seals the current segment and opens the next one; its error is in
// the flush family because the seal includes the segment's final fsync.
func (f *file) Rotate() error { return nil }

// note returns no error: flush-family names without an error result are
// never flagged.
type buf struct{}

func (b *buf) Flush() {}

func Rename(oldpath, newpath string) error { return nil }

func bare(f *file) {
	f.Close() // want "discarded error from Close"
}

func deferred(f *file) {
	defer f.Sync() // want "deferred Sync discards its error"
}

func goroutine(f *file) {
	go f.Flush() // want "go Flush discards its error"
}

func blank(f *file) {
	_ = f.Sync() // want "error from Sync assigned to blank identifier in durable path"
}

func plainFunc() {
	Rename("a", "b") // want "discarded error from Rename"
}

func rotated(f *file) {
	f.Rotate() // want "discarded error from Rotate"
}

// --- handled forms are clean ----------------------------------------------

func handled(f *file) error {
	if err := f.Flush(); err != nil {
		return err
	}
	if err := f.Rotate(); err != nil {
		return err
	}
	return f.Close()
}

func capturedDefer(f *file) (err error) {
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return f.Sync()
}

func noError(b *buf) {
	b.Flush() // no error result: not flagged
}
