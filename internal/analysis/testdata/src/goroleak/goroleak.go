// Package goroleak is the golden fixture for the goroleak pass: two
// signal-less spawned goroutines (a named function and a `go func` literal,
// both looping unboundedly with no ctx observation, done channel, or
// WaitGroup.Done on any path), plus the guarded shapes that must stay
// silent — a ctx-observing worker, a WaitGroup-scoped helper, and a
// straight-line goroutine that terminates by returning.
package goroleak

import (
	"context"
	"sync"
)

var sink int

// spin loops forever and reaches no termination signal anywhere.
func spin() {
	for {
		sink++
	}
}

// step is plain compute: no signal, no loop.
func step() {
	sink++
}

func spawnNamed() {
	go spin() // want "goroutine goroleak.spin loops unboundedly \\(goroleak.go:[0-9]+\\) but reaches no termination signal"
}

func spawnLit() {
	go func() { // want "goroutine goroleak.spawnLit·go1 loops unboundedly \\(goroleak.go:[0-9]+\\) but reaches no termination signal"
		for {
			step()
		}
	}()
}

// spawnCtx observes ctx.Done each iteration: no finding.
func spawnCtx(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
			step()
		}
	}()
}

// spawnWG is loop-free and marks completion on a WaitGroup: no finding.
func spawnWG(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		step()
	}()
}

var _ = []any{spawnNamed, spawnLit, spawnCtx, spawnWG}
