// Package suppress is the golden-file fixture for hhlint's suppression
// comments: well-formed ignores silence the named pass on their line (or
// the next line), wrong-pass ignores do not, and malformed or unknown-pass
// ignores are themselves diagnostics under the "hhlint" pseudo-pass.
package suppress

import (
	"sync"
	"sync/atomic"
)

// Stats mirrors the engine's annotated counter block.
//
// hhlint:atomic-counters
type Stats struct {
	N int64
}

// standaloneOK: a standalone ignore suppresses the next line.
func standaloneOK(s *Stats) {
	//hhlint:ignore atomicstats test fixture exercises standalone suppression
	s.N++
}

// trailingOK: a trailing ignore suppresses its own line.
func trailingOK(s *Stats) {
	s.N = 7 //hhlint:ignore atomicstats test fixture exercises trailing suppression
}

// allOK: the "all" wildcard silences every pass on the target line.
func allOK(s *Stats) int64 {
	//hhlint:ignore all test fixture exercises the all wildcard
	return s.N
}

// multiOK: comma-separated pass lists are honoured.
func multiOK(s *Stats) {
	s.N += 2 //hhlint:ignore atomicstats,lockscope test fixture exercises multi-pass suppression
}

// wrongPass: suppressing a different pass leaves the finding intact.
func wrongPass(s *Stats) {
	//hhlint:ignore flusherr this names the wrong pass so atomicstats still fires
	s.N++ // want "plain write to atomic counter Stats.N"
}

// missingReason: a suppression without a justification is malformed and is
// reported itself; it suppresses nothing, so the write below still fires.
func missingReason(s *Stats) {
	/*hhlint:ignore atomicstats*/ // want "malformed suppression"
	s.N++                         // want "plain write to atomic counter Stats.N"
}

// unknownPass: typos must not silently disable enforcement.
func unknownPass(s *Stats) {
	/*hhlint:ignore nosuchpass the pass name is a typo*/ // want "suppression names unknown pass"
	s.N++                                                // want "plain write to atomic counter Stats.N"
}

// good needs no suppression at all.
func good(s *Stats) int64 {
	atomic.AddInt64(&s.N, 1)
	return atomic.LoadInt64(&s.N)
}

// --- two passes firing on one line ------------------------------------------
//
// `e.N = e.hook()` under a held lock triggers both atomicstats (plain write
// to an annotated counter) and lockscope (callback under lock), which pins
// how multi-pass lines interact with each suppression spelling.

// lockedStats carries an annotated counter, a mutex, and an agent hook.
//
// hhlint:atomic-counters
type lockedStats struct {
	mu   sync.Mutex
	hook func() int64
	N    int64
}

// twoPassSpace: everything after the first space-separated token is reason
// text, NOT a second pass name — so only atomicstats is silenced and
// lockscope still fires.
func twoPassSpace(e *lockedStats) {
	e.mu.Lock()
	defer e.mu.Unlock()
	//hhlint:ignore atomicstats the word lockscope below is reason text, not a pass list
	e.N = e.hook() // want "call through function value e.hook while holding e.mu"
}

// twoPassComma: the comma-separated list silences both passes with one
// comment.
func twoPassComma(e *lockedStats) {
	e.mu.Lock()
	defer e.mu.Unlock()
	//hhlint:ignore atomicstats,lockscope one comma-separated ignore covers both passes on the next line
	e.N = e.hook()
}

// twoPassTwoComments: a standalone ignore (scoping to the next line) and a
// trailing ignore (scoping to its own line) stack on one target line.
func twoPassTwoComments(e *lockedStats) {
	e.mu.Lock()
	defer e.mu.Unlock()
	//hhlint:ignore lockscope stacked with the trailing ignore on the next line
	e.N = e.hook() //hhlint:ignore atomicstats the two comments together silence both passes
}

// --- ignore on a closing-brace line -----------------------------------------

// braceLine: an ignore on the closing brace scopes to the brace line and
// the line after it — never backward into the block, so the write above
// still fires.
func braceLine(s *Stats) {
	s.N++ // want "plain write to atomic counter Stats.N"
} //hhlint:ignore atomicstats brace-line scope is the brace line and the next line only
