// Package suppress is the golden-file fixture for hhlint's suppression
// comments: well-formed ignores silence the named pass on their line (or
// the next line), wrong-pass ignores do not, and malformed or unknown-pass
// ignores are themselves diagnostics under the "hhlint" pseudo-pass.
package suppress

import "sync/atomic"

// Stats mirrors the engine's annotated counter block.
//
// hhlint:atomic-counters
type Stats struct {
	N int64
}

// standaloneOK: a standalone ignore suppresses the next line.
func standaloneOK(s *Stats) {
	//hhlint:ignore atomicstats test fixture exercises standalone suppression
	s.N++
}

// trailingOK: a trailing ignore suppresses its own line.
func trailingOK(s *Stats) {
	s.N = 7 //hhlint:ignore atomicstats test fixture exercises trailing suppression
}

// allOK: the "all" wildcard silences every pass on the target line.
func allOK(s *Stats) int64 {
	//hhlint:ignore all test fixture exercises the all wildcard
	return s.N
}

// multiOK: comma-separated pass lists are honoured.
func multiOK(s *Stats) {
	s.N += 2 //hhlint:ignore atomicstats,lockscope test fixture exercises multi-pass suppression
}

// wrongPass: suppressing a different pass leaves the finding intact.
func wrongPass(s *Stats) {
	//hhlint:ignore flusherr this names the wrong pass so atomicstats still fires
	s.N++ // want "plain write to atomic counter Stats.N"
}

// missingReason: a suppression without a justification is malformed and is
// reported itself; it suppresses nothing, so the write below still fires.
func missingReason(s *Stats) {
	/*hhlint:ignore atomicstats*/ // want "malformed suppression"
	s.N++                         // want "plain write to atomic counter Stats.N"
}

// unknownPass: typos must not silently disable enforcement.
func unknownPass(s *Stats) {
	/*hhlint:ignore nosuchpass the pass name is a typo*/ // want "suppression names unknown pass"
	s.N++                                                // want "plain write to atomic counter Stats.N"
}

// good needs no suppression at all.
func good(s *Stats) int64 {
	atomic.AddInt64(&s.N, 1)
	return atomic.LoadInt64(&s.N)
}
