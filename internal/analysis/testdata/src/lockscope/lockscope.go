// Package lockscope is the golden-file fixture for hhlint's lockscope
// pass: engine mirrors the learner's lock + agent-visible callback shape
// (a function-typed field like a user clock, an oracle interface), and
// each violation carries a `// want` expectation.
package lockscope

import "sync"

type oracle interface {
	Mine(n int) []int
}

type engine struct {
	mu     sync.Mutex
	hook   func() int
	oracle oracle
	n      int
}

// badFieldHook invokes an agent-supplied function value while holding mu.
func badFieldHook(e *engine) {
	e.mu.Lock()
	e.hook() // want "call through function value e.hook while holding e.mu"
	e.mu.Unlock()
}

// badOracle re-enters the oracle under the lock: if Mine calls back into
// the engine, it deadlocks on mu.
func badOracle(e *engine) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.oracle.Mine(1) // want "call to Mine while holding e.mu"
}

// badParamHook: caller-injected callbacks are agent-visible too.
func badParamHook(e *engine, report func() int) {
	e.mu.Lock()
	report() // want "call through function value report while holding e.mu"
	e.mu.Unlock()
}

// evalLocked follows the …Locked convention: the caller holds the lock,
// so the same rule applies to the whole body.
func evalLocked(e *engine) int {
	return e.hook() // want "call through function value e.hook while holding a caller-held lock"
}

// badRelock defers the unlock and then locks again in the same body: the
// deferred Unlock only runs at return, so the second Lock self-deadlocks.
func badRelock(e *engine) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := e.n
	e.mu.Lock() // want "Lock of e.mu while it is still held in this function"
	return n
}

// --- locks copied by value -------------------------------------------------

func copyParam(e engine) int { // want "parameter of copyParam passes a lock by value"
	return e.n
}

func (e engine) copyRecv() int { // want "receiver of copyRecv passes a lock by value"
	return e.n
}

func copyResult() (e engine) { // want "result of copyResult passes a lock by value"
	return
}

// --- clean shapes ----------------------------------------------------------

// okOutside releases the lock before calling out.
func okOutside(e *engine) int {
	e.mu.Lock()
	n := e.n
	e.mu.Unlock()
	return e.hook() + n
}

// okLocal: calls to local closures (not caller-injected) are fine under
// the lock — they are engine code.
func okLocal(e *engine) int {
	double := func(v int) int { return 2 * v }
	e.mu.Lock()
	defer e.mu.Unlock()
	return double(e.n)
}
