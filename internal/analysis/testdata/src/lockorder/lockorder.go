// Package lockorder is the golden fixture for the lockorder pass: two
// deliberate acquisition-order cycles, one purely intra-procedural (two
// methods nesting the same pair of struct mutexes in opposite orders) and
// one interprocedural (the second lock acquired inside a callee while the
// first is held).
package lockorder

import "sync"

// Pair carries two mutexes locked in opposite orders by ab and ba.
type Pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *Pair) ab() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock() // want "potential deadlock: lock-order cycle lockorder.Pair.a -> lockorder.Pair.b -> lockorder.Pair.a"
	p.b.Unlock()
}

func (p *Pair) ba() {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock()
	p.a.Unlock()
}

// Package-level pair: the mu1 -> mu2 edge comes from a call made while
// holding mu1, composed with the callee's transitive acquisitions.
var (
	mu1 sync.Mutex
	mu2 sync.Mutex
)

func lock2() {
	mu2.Lock()
	mu2.Unlock()
}

func first() {
	mu1.Lock()
	lock2() // want "potential deadlock: lock-order cycle lockorder.mu1 -> lockorder.mu2 -> lockorder.mu1"
	mu1.Unlock()
}

func second() {
	mu2.Lock()
	mu1.Lock()
	mu1.Unlock()
	mu2.Unlock()
}

// nested is consistent ordering only (a before b everywhere): no finding.
type nested struct {
	a sync.Mutex
	b sync.Mutex
}

func (n *nested) both() {
	n.a.Lock()
	defer n.a.Unlock()
	n.b.Lock()
	defer n.b.Unlock()
}

var _ = []any{(*Pair).ab, (*Pair).ba, first, second, (*nested).both}
