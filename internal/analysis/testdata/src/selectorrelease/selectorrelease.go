// Package selectorrelease is the golden-file fixture for hhlint's
// selectorrelease pass: solver/sel mirror the incremental SAT backend's
// Solver.NewSelector/Release protocol, and each leak carries a `// want`
// expectation.
package selectorrelease

type sel int

type solver struct {
	groups map[sel][]int
}

func (s *solver) NewSelector() sel {
	v := sel(len(s.groups) + 1)
	s.groups[v] = nil
	return v
}

func (s *solver) Release(v sel) { delete(s.groups, v) }

func (s *solver) assume(v sel) bool { return len(s.groups[v]) == 0 }

func work() (bool, error) { return false, nil }

// leakNoRelease acquires and never covers the selector on any path.
func leakNoRelease(s *solver) {
	v := s.NewSelector() // want "selector v is neither Released, stored, nor returned before the function ends"
	s.assume(v)
}

// leakEarlyReturn is the canonical bug: the error path returns between
// acquisition and the eventual Release.
func leakEarlyReturn(s *solver) error {
	v := s.NewSelector()
	ok, err := work()
	if err != nil {
		return err // want "return leaks selector v acquired at"
	}
	_ = ok
	s.Release(v)
	return nil
}

func dropped(s *solver) {
	s.NewSelector() // want "NewSelector result dropped"
}

func blank(s *solver) {
	_ = s.NewSelector() // want "NewSelector result assigned to blank identifier"
}

// --- the sanctioned shapes -------------------------------------------------

func releaseOK(s *solver) {
	v := s.NewSelector()
	s.assume(v)
	s.Release(v)
}

// deferReleaseOK: a deferred Release covers every return path, including
// the early error return.
func deferReleaseOK(s *solver) error {
	v := s.NewSelector()
	defer s.Release(v)
	if _, err := work(); err != nil {
		return err
	}
	s.assume(v)
	return nil
}

type owner struct {
	sels  map[uint64]sel
	bySel map[sel]uint64
	order []sel
	ch    chan sel
}

// storeOK: an ownership escape (map value, map key, field, append, send)
// means some owner now tracks the selector.
func storeOK(s *solver, o *owner) {
	a := s.NewSelector()
	o.sels[1] = a
	b := s.NewSelector()
	o.bySel[b] = 2
	c := s.NewSelector()
	o.order = append(o.order, c)
	d := s.NewSelector()
	o.ch <- d
}

// returnedOK: ownership transfers to the caller.
func returnedOK(s *solver) sel {
	v := s.NewSelector()
	return v
}
