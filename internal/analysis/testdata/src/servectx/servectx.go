// Package servectx pins the service-handler idiom the serve package must
// follow (the panicscope contract at the HTTP layer): a request context is
// threaded into the learner as the first parameter and never parked in a
// struct field — a stored context outlives its cancellation scope, which
// breaks the drain protocol (cancel must reach live solvers). Storing the
// CancelFunc is the sanctioned alternative and must stay clean.
package servectx

import "context"

// learner stands in for the core learner API the handlers drive.
type learner struct{}

// LearnCtx models the deadline-threading entry point: context first.
func (l *learner) LearnCtx(ctx context.Context, preds []string) error {
	_ = ctx
	_ = preds
	return nil
}

// goodServer is the sanctioned shape: no context fields; the drain path
// keeps CancelFuncs (not contexts) so cancellation can be fired later.
type goodServer struct {
	cancels map[string]context.CancelFunc // ok: CancelFunc storage is sanctioned
}

// goodExecute creates the deadline context on the executor's stack and
// threads it straight into LearnCtx.
func goodExecute(ctx context.Context, s *goodServer, l *learner) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	s.cancels["job"] = cancel
	return l.LearnCtx(ctx, nil)
}

// badJob parks the request context for a later goroutine — exactly the
// shape that detaches a running job from the drain's cancellation.
type badJob struct {
	ctx context.Context // want "context.Context stored in a struct field"
	id  string
}

// badHandler takes its context in the wrong slot, so the idiom "first arg
// flows to LearnCtx" silently breaks at every call site.
func badHandler(j *badJob, ctx context.Context) error { // want "context.Context must be the first parameter"
	l := &learner{}
	return l.LearnCtx(ctx, []string{j.id})
}

// badRecover: handlers are not panic boundaries; only the marked executor
// entry point may contain the recover.
func badRecover(ctx context.Context, l *learner) (err error) {
	defer func() {
		if r := recover(); r != nil { // want "recover\\(\\) outside a designated panic boundary"
			err = nil
		}
	}()
	return l.LearnCtx(ctx, nil)
}

// runJob is the one sanctioned boundary, mirroring the executor's worker
// entry point. (hhlint:panic-boundary)
func runJob(ctx context.Context, l *learner) (err error) {
	defer func() {
		if r := recover(); r != nil { // ok: the decl carries the marker
			err = nil
		}
	}()
	return l.LearnCtx(ctx, nil)
}
