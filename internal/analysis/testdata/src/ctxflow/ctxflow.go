// Package ctxflow is the golden fixture for the ctxflow pass: a direct
// ctx-less block inside a ctx-bearing function, a dropped-ctx chain
// (context.Background handed to a ctx-accepting callee), and a blocking
// operation reached through a ctx-less callee path. The guarded shapes —
// select with a ctx.Done case or a default — stay silent.
package ctxflow

import (
	"context"
	"time"
)

// ok blocks only under a select guarded by ctx.Done: no finding.
func ok(ctx context.Context) {
	select {
	case <-ctx.Done():
	case <-time.After(time.Millisecond):
	}
}

// sleepy receives a ctx but sleeps without observing it.
func sleepy(ctx context.Context) {
	time.Sleep(time.Millisecond) // want "ctxflow.sleepy receives a ctx but blocks here without observing it"
}

// drop severs the cancellation chain with a fresh background context.
func drop(ctx context.Context) {
	ok(context.Background()) // want "ctxflow.drop receives a ctx but ok\\(context.Background\\(\\), …\\) drops the caller's ctx"
}

// wait is ctx-less and blocks on a bare receive; on its own that is fine —
// the finding belongs to the ctx-bearing caller that reaches it.
func wait(ch chan int) {
	<-ch // want "ctxflow.caller receives a ctx but reaches this blocking channel receive through ctx-less path ctxflow.wait"
}

// caller receives a ctx but funnels control into wait's ctx-less receive.
func caller(ctx context.Context, ch chan int) {
	wait(ch)
}

// polling uses a default case, which never blocks: no finding.
func polling(ctx context.Context, ch chan int) {
	select {
	case <-ch:
	default:
	}
}

var _ = []any{ok, sleepy, drop, caller, polling}
