// Package atomicstats is the golden-file fixture for hhlint's atomicstats
// pass: the annotated Stats struct below mirrors hhoudini.Stats, and each
// flagged line carries a `// want` expectation.
package atomicstats

import "sync/atomic"

// Stats mirrors the engine's hot-path counter block.
//
// hhlint:atomic-counters
type Stats struct {
	Tasks   int64
	Queries int64

	Label string // not a counter: wrong type
	Small int    // not a counter: not a fixed-width atomic type
}

// good uses the sanctioned sync/atomic forms.
func good(s *Stats) int64 {
	atomic.AddInt64(&s.Tasks, 1)
	atomic.StoreInt64(&s.Queries, 7)
	return atomic.LoadInt64(&s.Queries)
}

func plainWrites(s *Stats) {
	s.Tasks++      // want "plain write to atomic counter Stats.Tasks"
	s.Queries = 4  // want "plain write to atomic counter Stats.Queries"
	s.Tasks += 2   // want "plain write to atomic counter Stats.Tasks"
	s.Label = "ok" // not a counter
	s.Small = 1    // not a counter
}

func plainRead(s *Stats) int64 {
	return s.Queries // want "plain read of atomic counter Stats.Queries"
}

func addressEscape(s *Stats) *int64 {
	return &s.Tasks // want "address of atomic counter Stats.Tasks escapes"
}

// construction is not access: the value is unpublished.
func construct() *Stats {
	return &Stats{Label: "fresh"}
}
