// Package panicscope exercises the panicscope pass: recover() containment
// at marked boundaries, context-first parameters, and the stored-context ban.
package panicscope

import "context"

// runTask is the designated worker boundary: it converts worker panics into
// errors for the scheduler. (hhlint:panic-boundary)
func runTask() (err error) {
	defer func() {
		if r := recover(); r != nil { // ok: literal inherits the decl's marker
			err = nil
		}
	}()
	return nil
}

// drain has no marker, so neither its body nor its deferred literal may
// call recover.
func drain() {
	defer func() {
		recover() // want "recover\\(\\) outside a designated panic boundary"
	}()
}

func inline() {
	if r := recover(); r != nil { // want "recover\\(\\) outside a designated panic boundary"
		_ = r
	}
}

// shadowed recover: a local function value named recover is not the builtin
// and must not be flagged.
func shadowed() {
	recover := func() any { return nil }
	_ = recover() // ok: resolves to the local var, not the builtin
}

// goodCtx follows the convention: context first.
func goodCtx(ctx context.Context, n int) { _ = ctx; _ = n }

func badCtx(n int, ctx context.Context) { // want "context.Context must be the first parameter"
	_ = n
	_ = ctx
}

// badCallback: the rule applies to function types anywhere, including
// callback fields and type declarations.
type badCallback func(name string, ctx context.Context) // want "context.Context must be the first parameter"

type session struct {
	ctx context.Context // want "context.Context stored in a struct field"
	n   int
}

type okSession struct {
	n int
}

var _ = session{}
var _ = okSession{}
var _ badCallback
