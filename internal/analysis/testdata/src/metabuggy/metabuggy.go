// Package metabuggy is a deliberately buggy fixture with NO `// want`
// comments: the harness meta-test asserts that running the default passes
// over it yields exactly the expected diagnostic set — no more, no less.
// harness_test.go locates each bug by the marker substring on its line.
package metabuggy

import "sync"

// hhlint:atomic-counters
type stats struct {
	Hits int64
}

func bumpPlain(s *stats) {
	s.Hits++ // BUG(atomicstats): plain write
}

type enc struct{ n int }

type cache struct{ m map[uint64]*enc }

func (c *cache) checkout(key string, cone uint64) *enc {
	e := c.m[cone]
	delete(c.m, cone)
	return e
}

func (c *cache) checkin(key string, cone uint64, e *enc) { c.m[cone] = e }

func dropCheckout(c *cache) {
	c.checkout("k", 1) // BUG(pooledowner): discarded checkout
}

type sel int

type solver struct{ groups map[sel]bool }

func (s *solver) NewSelector() sel { return sel(len(s.groups)) }
func (s *solver) Release(v sel)    { delete(s.groups, v) }

func dropSelector(s *solver) {
	s.NewSelector() // BUG(selectorrelease): dropped result
}

type engine struct {
	mu   sync.Mutex
	hook func() int
}

func hookUnderLock(e *engine) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hook() // BUG(lockscope): callback under lock
}
