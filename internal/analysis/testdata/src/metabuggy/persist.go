package metabuggy

// This file is named persist.go so it falls inside the flusherr pass's
// durability scope (mirroring internal/hhoudini/persist.go).

type store struct{ open bool }

func (s *store) Close() error { s.open = false; return nil }

func shutdown(s *store) {
	s.Close() // BUG(flusherr): discarded error
}
