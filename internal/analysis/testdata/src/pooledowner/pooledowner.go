// Package pooledowner is the golden-file fixture for hhlint's pooledowner
// pass: enc/pool/cache mirror the engine's pooledEncoder/encoderPool/
// VerifyCache ownership protocol (checkout → single owner → checkin).
package pooledowner

type enc struct{ n int }

type cache struct{ m map[uint64]*enc }

// checkout removes and returns the cached encoder — the pass self-
// configures its "owned" type set from this signature.
func (c *cache) checkout(key string, cone uint64) *enc {
	if e, ok := c.m[cone]; ok {
		delete(c.m, cone)
		return e
	}
	return nil
}

func (c *cache) checkin(key string, cone uint64, e *enc) { c.m[cone] = e }

type pool struct {
	entries map[uint64]*enc
	cache   *cache
}

// retire mirrors encoderPool.retire: checking each encoder in inside the
// loop is fine (no textual use after the hand-off).
func (p *pool) retire() {
	for ck, e := range p.entries {
		p.cache.checkin("k", ck, e)
	}
	p.entries = nil
}

func useAfterRetire(p *pool) int {
	p.retire()
	return len(p.entries) // want "use of p after it was handed to retire"
}

func useAfterCheckin(c *cache, e *enc) int {
	c.checkin("k", 1, e)
	return e.n // want "use of e after it was handed to checkin"
}

// deferredRetireOK mirrors the worker loop: a deferred retire runs at
// function end, so later uses are fine.
func deferredRetireOK(p *pool) int {
	defer p.retire()
	return len(p.entries)
}

func dropCheckout(c *cache) {
	c.checkout("k", 1) // want "checkout result discarded"
}

func blankCheckout(c *cache) {
	_ = c.checkout("k", 2) // want "checkout result assigned to blank identifier"
}

func leakCheckout(c *cache) bool {
	e := c.checkout("k", 3) // want "checked-out value e is neither stored, returned, nor checked back in"
	return e != nil
}

// The sanctioned ownership paths: store into a pool map, return to the
// caller, or hand straight back.
func storeOK(p *pool, c *cache) {
	e := c.checkout("k", 4)
	p.entries[4] = e
}

func returnOK(c *cache) *enc {
	e := c.checkout("k", 5)
	return e
}

func bounceOK(c *cache) {
	e := c.checkout("k", 6)
	c.checkin("k", 6, e)
}

// --- Cone-keyed checkout -----------------------------------------------------
//
// With cone-level cache keys the pool resolves a per-target key before
// checkout and the entry must be checked back in under that same key
// (pooledEncoder.cacheKey in the engine). The ownership rules are
// identical; these shapes pin the pass on the key-threading idiom.

// coneBounceOK mirrors encoderPool.get/retire under cone keys: checkout
// under a resolved per-target key, remember it, check in under it.
func coneBounceOK(c *cache, coneIdent func() (string, uint64)) {
	key, ck := coneIdent()
	e := c.checkout(key, ck)
	c.checkin(key, ck, e)
}

// coneStoreOK threads the checked-out entry into the pool map keyed by the
// resolved cone key — the engine's local-entry path.
func coneStoreOK(p *pool, c *cache, coneIdent func() (string, uint64)) {
	key, ck := coneIdent()
	e := c.checkout(key, ck)
	_ = key
	p.entries[ck] = e
}

// A per-entry key does not soften the single-owner rule: once the entry is
// checked in under its cone key it may belong to another worker.
func coneUseAfterCheckin(c *cache, coneIdent func() (string, uint64)) int {
	key, ck := coneIdent()
	e := c.checkout(key, ck)
	c.checkin(key, ck, e)
	return e.n // want "use of e after it was handed to checkin"
}

// Resolving a fancy key is not an ownership path either.
func coneLeakCheckout(c *cache, coneIdent func() (string, uint64)) bool {
	key, ck := coneIdent()
	e := c.checkout(key, ck) // want "checked-out value e is neither stored, returned, nor checked back in"
	return e != nil
}
