// Package pooledowner is the golden-file fixture for hhlint's pooledowner
// pass: enc/pool/cache mirror the engine's pooledEncoder/encoderPool/
// VerifyCache ownership protocol (checkout → single owner → checkin).
package pooledowner

type enc struct{ n int }

type cache struct{ m map[uint64]*enc }

// checkout removes and returns the cached encoder — the pass self-
// configures its "owned" type set from this signature.
func (c *cache) checkout(key string, cone uint64) *enc {
	if e, ok := c.m[cone]; ok {
		delete(c.m, cone)
		return e
	}
	return nil
}

func (c *cache) checkin(key string, cone uint64, e *enc) { c.m[cone] = e }

type pool struct {
	entries map[uint64]*enc
	cache   *cache
}

// retire mirrors encoderPool.retire: checking each encoder in inside the
// loop is fine (no textual use after the hand-off).
func (p *pool) retire() {
	for ck, e := range p.entries {
		p.cache.checkin("k", ck, e)
	}
	p.entries = nil
}

func useAfterRetire(p *pool) int {
	p.retire()
	return len(p.entries) // want "use of p after it was handed to retire"
}

func useAfterCheckin(c *cache, e *enc) int {
	c.checkin("k", 1, e)
	return e.n // want "use of e after it was handed to checkin"
}

// deferredRetireOK mirrors the worker loop: a deferred retire runs at
// function end, so later uses are fine.
func deferredRetireOK(p *pool) int {
	defer p.retire()
	return len(p.entries)
}

func dropCheckout(c *cache) {
	c.checkout("k", 1) // want "checkout result discarded"
}

func blankCheckout(c *cache) {
	_ = c.checkout("k", 2) // want "checkout result assigned to blank identifier"
}

func leakCheckout(c *cache) bool {
	e := c.checkout("k", 3) // want "checked-out value e is neither stored, returned, nor checked back in"
	return e != nil
}

// The sanctioned ownership paths: store into a pool map, return to the
// caller, or hand straight back.
func storeOK(p *pool, c *cache) {
	e := c.checkout("k", 4)
	p.entries[4] = e
}

func returnOK(c *cache) *enc {
	e := c.checkout("k", 5)
	return e
}

func bounceOK(c *cache) {
	e := c.checkout("k", 6)
	c.checkin("k", 6, e)
}
