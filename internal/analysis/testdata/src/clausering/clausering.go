// Package clausering is the golden-file fixture for hhlint's clausering
// pass: Ring mirrors sat.ShareRing's single-producer multi-consumer shape,
// and each flagged line carries a `// want` expectation.
package clausering

import "sync/atomic"

// entry is one published value tagged with its sequence position.
type entry[T any] struct {
	pos uint64
	val T
}

// Ring is a bounded single-producer multi-consumer ring.
//
// hhlint:clause-ring
type Ring[T any] struct {
	slots []atomic.Pointer[entry[T]]
	head  atomic.Uint64
	name  string // want "field name of clause-ring struct Ring is not a sync/atomic type"
}

// Publish is the single producer's write point: slot and head stores here
// are the sanctioned ones.
func (r *Ring[T]) Publish(v T) {
	h := r.head.Load()
	e := &entry[T]{pos: h, val: v}
	r.slots[h%uint64(len(r.slots))].Store(e)
	r.head.Store(h + 1)
}

// Drain delivers entries newer than *cur to fn.
func (r *Ring[T]) Drain(cur *uint64, fn func(T) bool) {
	h := r.head.Load()
	for ; *cur < h; *cur++ {
		e := r.slots[*cur%uint64(len(r.slots))].Load()
		if e == nil || e.pos != *cur {
			continue
		}
		if !fn(e.val) {
			return
		}
	}
}

// sneakyStore bypasses Publish: slot writes are producer-only.
func sneakyStore(r *Ring[[]int], v []int) {
	e := &entry[[]int]{val: v}
	r.slots[0].Store(e) // want "slot write Ring.slots"
}

// reset mutates the head counter from outside the ring's own methods.
func reset(r *Ring[[]int]) {
	r.head.Store(0) // want "clause-ring counter Ring.head mutated outside"
}

// goodConsumer only reads the drained value: no findings.
func goodConsumer(r *Ring[[]int]) int {
	var cur uint64
	sum := 0
	r.Drain(&cur, func(v []int) bool {
		for _, x := range v {
			sum += x
		}
		return true
	})
	return sum
}

// badConsumer writes through the drained value, racing other consumers.
func badConsumer(r *Ring[[]int]) {
	var cur uint64
	r.Drain(&cur, func(v []int) bool {
		v[0] = 9         // want "drained clause-ring value v mutated in consumer callback"
		v = append(v, 1) // want "append to drained clause-ring value v"
		return len(v) > 0
	})
}
