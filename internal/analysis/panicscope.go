package analysis

import (
	"go/ast"
	"go/types"
)

// The panicscope pass guards the fault-isolation protocol around worker
// panics and cancellation (DESIGN.md "Robustness & fault isolation"):
//
//  1. recover() may appear only inside functions whose doc comment carries
//     the `hhlint:panic-boundary` marker. The learner's containment story
//     depends on panics crossing exactly one boundary — the worker task
//     runner — where they are converted into *PanicError values with the
//     stack attached. A stray recover() anywhere else either swallows a
//     panic the boundary was supposed to see (losing the stack and the
//     failed-task accounting) or masks a real bug as silent success.
//     Function literals nested inside a marked function (the idiomatic
//     `defer func() { recover() }()` form) inherit the marker.
//
//  2. context.Context must be the first parameter of any function that
//     accepts one (the standard library convention, load-bearing here:
//     cancellation flows LearnCtx → workers → solvers through call
//     parameters, and a ctx hidden mid-signature is a ctx reviewers miss).
//
//  3. context.Context must never be stored in a struct field. A stored
//     context outlives the call it scoped, so cancellation either fires
//     long after the caller has moved on or never reaches the work it was
//     meant to stop (see the context package's own documentation).
//     Package-level variables (e.g. a process-lifetime root context in a
//     main package) are deliberately not flagged.
//
// All three rules are syntactic and intra-procedural; genuinely exceptional
// sites take an `//hhlint:ignore panicscope <reason>`.

// panicBoundaryMarker designates a function as a sanctioned recover() site.
const panicBoundaryMarker = "hhlint:panic-boundary"

// PanicScopePass returns the panicscope pass.
func PanicScopePass() *Pass {
	return &Pass{
		Name: "panicscope",
		Doc:  "recover() only at marked panic boundaries; context.Context first-parameter only, never stored in a field",
		Run:  runPanicScope,
	}
}

func runPanicScope(c *Context) {
	for _, file := range c.Pkg.Files {
		for _, decl := range file.Decls {
			fd, _ := decl.(*ast.FuncDecl)
			marked := fd != nil && docContains(panicBoundaryMarker, fd.Doc)
			boundary := "the enclosing function"
			if fd != nil {
				boundary = fd.Name.Name
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.CallExpr:
					if !marked && isBuiltinRecover(c, node) {
						c.Reportf(node.Pos(), "recover() outside a designated panic boundary (add %q to %s's doc comment if it is a worker entry point)", panicBoundaryMarker, boundary)
					}
				case *ast.FuncType:
					checkCtxParams(c, node)
				case *ast.StructType:
					for _, field := range node.Fields.List {
						if isContextType(c.TypeOf(field.Type)) {
							c.Reportf(field.Pos(), "context.Context stored in a struct field (thread it through call parameters instead; stored contexts outlive their cancellation scope)")
						}
					}
				}
				return true
			})
		}
	}
}

// checkCtxParams reports context.Context parameters that are not in the
// leading position of the (receiver-excluded) parameter list.
func checkCtxParams(c *Context, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter still occupies a position
		}
		if isContextType(c.TypeOf(field.Type)) {
			if idx > 0 {
				c.Reportf(field.Pos(), "context.Context must be the first parameter (found at position %d)", idx+1)
			} else if n > 1 {
				c.Reportf(field.Pos(), "only one leading context.Context parameter is allowed")
			}
		}
		idx += n
	}
}

// isBuiltinRecover reports whether call invokes the builtin recover (a
// shadowing local named recover resolves to a *types.Var and is exempt).
func isBuiltinRecover(c *Context, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "recover" {
		return false
	}
	_, ok = c.ObjectOf(id).(*types.Builtin)
	return ok
}

// isContextType reports whether t is context.Context (through aliases).
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
