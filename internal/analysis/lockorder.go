package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// lockorder builds the module-global mutex acquisition-order graph from the
// function summaries and reports every cycle as a potential deadlock, with
// the witness chain (which acquisition, where, while holding what) printed.
//
// Nodes are lock classes — "pkg.Type.field" for struct-field mutexes,
// "pkg.var" for package-level ones — so two goroutines locking different
// *instances* of the same class still count: the class-level cycle is the
// shape that deadlocks once any two instances are shared. Edges come from
// two sources:
//
//   - a direct nested acquisition inside one function body
//     (summary.LockEdges);
//   - a call made while holding a lock, composed with the callee's
//     transitive acquisition closure (summary.HeldCalls × TransAcquires).
//
// Same-class nesting (A → A) is excluded: locking two instances of one
// class in sequence is ubiquitous and ordering within a class needs
// instance identity the summary abstraction deliberately drops.

// LockOrderPass returns the lockorder pass.
func LockOrderPass() *Pass {
	return &Pass{
		Name: "lockorder",
		Doc:  "mutex acquisition-order graph must be acyclic (cycle = potential deadlock)",
		Run:  runLockOrder,
	}
}

// lockOrderEdge is one witnessed ordered acquisition.
type lockOrderEdge struct {
	from, to string
	file     string // absolute path
	line     int
	fn       string // function whose body witnessed the edge
	viaCall  string // callee whose closure supplied the acquisition ("" for direct)
}

func (e lockOrderEdge) describe() string {
	if e.viaCall == "" {
		return fmt.Sprintf("%s acquired at %s:%d (in %s) while holding %s", e.to, e.file, e.line, e.fn, e.from)
	}
	return fmt.Sprintf("%s acquired via call to %s at %s:%d (in %s) while holding %s", e.to, e.viaCall, e.file, e.line, e.fn, e.from)
}

func runLockOrder(ctx *Context) {
	// Module-global pass: the runner invokes every pass once per package,
	// but the acquisition-order graph spans the load — run once.
	if ctx.Facts["lockorder.ran"] != nil {
		return
	}
	ctx.Facts["lockorder.ran"] = true
	set := moduleSummaries(ctx)
	if set == nil {
		return
	}

	// Collect edges in deterministic (summary key) order; keep the first
	// witness per (from, to) pair.
	keys := make([]string, 0, len(set.Funcs))
	for k := range set.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	adj := map[string]map[string]lockOrderEdge{}
	addEdge := func(e lockOrderEdge) {
		if e.from == e.to {
			return
		}
		m := adj[e.from]
		if m == nil {
			m = map[string]lockOrderEdge{}
			adj[e.from] = m
		}
		if _, dup := m[e.to]; !dup {
			m[e.to] = e
		}
	}
	for _, k := range keys {
		fs := set.Funcs[k]
		for _, le := range fs.LockEdges {
			addEdge(lockOrderEdge{from: le.Held, to: le.Acq, file: set.AbsPath(le.File), line: le.Line, fn: k})
		}
		for _, hc := range fs.HeldCalls {
			cs := set.Funcs[hc.Callee]
			if cs == nil {
				continue
			}
			for _, ta := range cs.TransAcquires {
				for _, held := range hc.Held {
					addEdge(lockOrderEdge{from: held, to: ta.Lock, file: set.AbsPath(hc.File), line: hc.Line, fn: k, viaCall: hc.Callee})
				}
			}
		}
	}

	// A cycle exists iff some strongly connected component of the lock
	// graph has ≥2 nodes (self-edges were excluded above). Report one
	// representative cycle per component, reconstructed by BFS inside the
	// component from its smallest node, so the finding is stable run to
	// run.
	for _, scc := range lockSCCs(adj) {
		if len(scc) < 2 {
			continue
		}
		sort.Strings(scc)
		cycle := cycleThrough(scc[0], scc, adj)
		if cycle == nil {
			continue
		}
		var hops []string
		var witness []string
		for i := 0; i < len(cycle)-1; i++ {
			e := adj[cycle[i]][cycle[i+1]]
			hops = append(hops, cycle[i])
			witness = append(witness, e.describe())
		}
		hops = append(hops, cycle[len(cycle)-1])
		first := adj[cycle[0]][cycle[1]]
		ctx.ReportAt(first.file, first.line,
			"potential deadlock: lock-order cycle %s; %s",
			strings.Join(hops, " -> "), strings.Join(witness, "; "))
	}
}

// lockSCCs is Tarjan over the string lock graph, components emitted with
// deterministic membership (iteration over sorted node names).
func lockSCCs(adj map[string]map[string]lockOrderEdge) [][]string {
	nodes := map[string]bool{}
	for from, tos := range adj {
		nodes[from] = true
		for to := range tos {
			nodes[to] = true
		}
	}
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0
	var strong func(n string)
	strong = func(n string) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		succs := make([]string, 0, len(adj[n]))
		for to := range adj[n] {
			succs = append(succs, to)
		}
		sort.Strings(succs)
		for _, m := range succs {
			if _, seen := index[m]; !seen {
				strong(m)
				if low[m] < low[n] {
					low[n] = low[m]
				}
			} else if onStack[m] && index[m] < low[n] {
				low[n] = index[m]
			}
		}
		if low[n] == index[n] {
			var scc []string
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, n := range names {
		if _, seen := index[n]; !seen {
			strong(n)
		}
	}
	return sccs
}

// cycleThrough finds a shortest cycle start → ... → start staying inside
// the component, by BFS (deterministic: sorted successor order).
func cycleThrough(start string, scc []string, adj map[string]map[string]lockOrderEdge) []string {
	inSCC := map[string]bool{}
	for _, n := range scc {
		inSCC[n] = true
	}
	prev := map[string]string{}
	queue := []string{start}
	seen := map[string]bool{start: true}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		succs := make([]string, 0, len(adj[n]))
		for to := range adj[n] {
			succs = append(succs, to)
		}
		sort.Strings(succs)
		for _, m := range succs {
			if m == start {
				// Reconstruct start → ... → n → start.
				path := []string{start}
				var rev []string
				for cur := n; cur != start; cur = prev[cur] {
					rev = append(rev, cur)
				}
				for i := len(rev) - 1; i >= 0; i-- {
					path = append(path, rev[i])
				}
				return append(path, start)
			}
			if !inSCC[m] || seen[m] {
				continue
			}
			seen[m] = true
			prev[m] = n
			queue = append(queue, m)
		}
	}
	return nil
}
