package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The pooledowner pass enforces the single-owner lifecycle of pooled
// solver/encoder values. The engine's pooling protocol (pool.go, cache.go)
// is:
//
//   - `checkout` hands a cached value to exactly one owner, removing it
//     from the cache — the returned value must be stored (into a pool map
//     or field), returned to a caller, or checked back in; a checkout
//     whose result is dropped or merely inspected leaks the value out of
//     circulation and breaks the budget accounting;
//   - `checkin` / `retire` transfer ownership away — using the value (or
//     the pool) after it flowed into a check-in is a use-after-retire: the
//     solver may now be owned by a concurrent Learner, and sat.Solver is
//     not safe for concurrent use.
//
// The pass self-configures from the code: the pointer result types of any
// method named `checkout` are the "owned" types. Kills are textual
// (statement order within one function body); a kill inside a `defer` runs
// at function end and therefore never precedes a use. This is an
// intra-procedural approximation — values smuggled through fields or
// goroutines need the race detector — but it mechanically pins the
// convention the pooling code is written against.

// PooledOwnerPass returns the pooledowner pass.
func PooledOwnerPass() *Pass {
	return &Pass{
		Name: "pooledowner",
		Doc:  "pooled solver/encoder values are single-owner after retire()/checkin, and checkouts must not leak",
		Run:  runPooledOwner,
	}
}

// ownedTypes collects the pointer result types of every function or method
// named "checkout" across the load.
func ownedTypes(c *Context) []types.Type {
	const key = "pooledowner.owned"
	if f, ok := c.Facts[key]; ok {
		return f.([]types.Type)
	}
	var owned []types.Type
	for _, pkg := range c.All {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Name.Name != "checkout" || fd.Type.Results == nil {
					continue
				}
				for _, res := range fd.Type.Results.List {
					t := pkg.Info.TypeOf(res.Type)
					if t == nil {
						continue
					}
					if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
						owned = append(owned, t)
					}
				}
			}
		}
	}
	c.Facts[key] = owned
	return owned
}

func isOwnedType(owned []types.Type, t types.Type) bool {
	if t == nil {
		return false
	}
	for _, o := range owned {
		if types.Identical(o, t) {
			return true
		}
	}
	return false
}

func runPooledOwner(c *Context) {
	owned := ownedTypes(c)
	for _, file := range c.Pkg.Files {
		for _, unit := range funcUnits(file) {
			checkUseAfterRetire(c, unit, owned)
			checkCheckoutLeak(c, unit)
		}
	}
}

// checkUseAfterRetire flags textual uses of an object after it flowed into
// retire()/checkin within the same function body.
func checkUseAfterRetire(c *Context, unit funcUnit, owned []types.Type) {
	// killed: object → end position of the (earliest) killing statement.
	killed := make(map[types.Object]token.Pos)
	killedBy := make(map[types.Object]string)

	kill := func(obj types.Object, at token.Pos, how string) {
		if obj == nil {
			return
		}
		if prev, ok := killed[obj]; !ok || at < prev {
			killed[obj] = at
			killedBy[obj] = how
		}
	}

	walkUnit(unit.body, func(n ast.Node, parents []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if inDefer(parents) {
			return true // runs at function end: cannot precede a use
		}
		switch calleeName(call) {
		case "retire":
			// x.retire(): the receiver itself is dead afterwards.
			if recv := calleeRecv(call); recv != nil {
				kill(identObj(c, recv), call.End(), "retire()")
			}
		case "checkin":
			// checkin(..., pe, ...): every owned-typed ident argument
			// transfers ownership into the cache.
			for _, arg := range call.Args {
				obj := identObj(c, arg)
				if obj != nil && isOwnedType(owned, obj.Type()) {
					kill(obj, call.End(), "checkin")
				}
			}
		}
		return true
	})
	if len(killed) == 0 {
		return
	}

	walkUnit(unit.body, func(n ast.Node, parents []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.Pkg.Info.Uses[id]
		if obj == nil {
			return true
		}
		at, wasKilled := killed[obj]
		if wasKilled && id.Pos() > at {
			c.Reportf(id.Pos(), "use of %s after it was handed to %s (single-owner value; it may now belong to another worker)",
				id.Name, killedBy[obj])
		}
		return true
	})
}

// checkCheckoutLeak flags checkout results that escape no ownership path:
// dropped outright, or bound to a variable that is never stored, returned,
// or checked back in.
func checkCheckoutLeak(c *Context, unit funcUnit) {
	walkUnit(unit.body, func(n ast.Node, parents []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || calleeName(call) != "checkout" {
			return true
		}
		// Direct statement: result dropped on the floor.
		if len(parents) > 0 {
			if _, isStmt := parents[len(parents)-1].(*ast.ExprStmt); isStmt {
				c.Reportf(call.Pos(), "checkout result discarded: the checked-out value leaves the cache and leaks")
				return true
			}
		}
		obj := checkoutBinding(c, call, parents)
		if obj == nil {
			return true // flows into a larger expression; give it the benefit of the doubt
		}
		if obj.Name() == "_" {
			c.Reportf(call.Pos(), "checkout result assigned to blank identifier: the checked-out value leaks")
			return true
		}
		if !ownershipEscapes(c, unit, obj) {
			c.Reportf(call.Pos(), "checked-out value %s is neither stored, returned, nor checked back in on any path (leaks from the pool)", obj.Name())
		}
		return true
	})
}

// checkoutBinding returns the variable object a `x := recv.checkout(...)`
// result is bound to (single-assignment forms only).
func checkoutBinding(c *Context, call *ast.CallExpr, parents []ast.Node) types.Object {
	if len(parents) == 0 {
		return nil
	}
	as, ok := parents[len(parents)-1].(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 || ast.Unparen(as.Rhs[0]) != call || len(as.Lhs) != 1 {
		return nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	if id.Name == "_" {
		return types.NewVar(id.Pos(), nil, "_", nil)
	}
	return c.ObjectOf(id)
}

// ownershipEscapes reports whether obj is stored into a field/map/slice,
// returned, or passed back into checkin/retire somewhere in the unit.
func ownershipEscapes(c *Context, unit funcUnit, obj types.Object) bool {
	escapes := false
	walkUnit(unit.body, func(n ast.Node, parents []ast.Node) bool {
		if escapes {
			return false
		}
		switch t := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range t.Rhs {
				if identObj(c, rhs) != obj {
					continue
				}
				// Stored into an index or selector target (pool map, field).
				li := i
				if len(t.Lhs) != len(t.Rhs) {
					li = 0
				}
				switch ast.Unparen(t.Lhs[li]).(type) {
				case *ast.IndexExpr, *ast.SelectorExpr:
					escapes = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range t.Results {
				if identObj(c, r) == obj {
					escapes = true
				}
			}
		case *ast.CallExpr:
			if name := calleeName(t); name == "checkin" || name == "append" {
				for _, a := range t.Args {
					if identObj(c, a) == obj {
						escapes = true
					}
				}
			}
		}
		return true
	})
	return escapes
}
