package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// fakeTB records harness failures instead of failing the enclosing test, so
// the harness's own failure modes can be asserted.
type fakeTB struct{ errs []string }

func (f *fakeTB) Helper() {}
func (f *fakeTB) Errorf(format string, args ...any) {
	f.errs = append(f.errs, fmt.Sprintf(format, args...))
}

// lineOf returns the 1-based line number of the first line of path that
// contains marker.
func lineOf(t *testing.T, path, marker string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, marker) {
			return i + 1
		}
	}
	t.Fatalf("marker %q not found in %s", marker, path)
	return 0
}

// TestMetaBuggyExactDiagnosticSet is the harness meta-test the ISSUE asks
// for: the deliberately buggy metabuggy package (which carries NO `// want`
// comments) must produce exactly the expected diagnostic set — one finding
// per planted bug, no more, no less.
func TestMetaBuggyExactDiagnosticSet(t *testing.T) {
	dir := filepath.Join("testdata", "src", "metabuggy")
	pkg, err := LoadPackage(dir)
	if err != nil {
		t.Fatalf("LoadPackage: %v", err)
	}
	diags := Run([]*Package{pkg}, DefaultPasses())

	main := filepath.Join(dir, "metabuggy.go")
	persist := filepath.Join(dir, "persist.go")
	want := []string{
		fmt.Sprintf("metabuggy.go:%d: [atomicstats] plain write to atomic counter stats.Hits (use sync/atomic)",
			lineOf(t, main, "BUG(atomicstats)")),
		fmt.Sprintf("metabuggy.go:%d: [pooledowner] checkout result discarded: the checked-out value leaves the cache and leaks",
			lineOf(t, main, "BUG(pooledowner)")),
		fmt.Sprintf("metabuggy.go:%d: [selectorrelease] NewSelector result dropped: the selector can never be Released",
			lineOf(t, main, "BUG(selectorrelease)")),
		fmt.Sprintf("metabuggy.go:%d: [lockscope] call through function value e.hook while holding e.mu (agent-visible callback under lock)",
			lineOf(t, main, "BUG(lockscope)")),
		fmt.Sprintf("persist.go:%d: [flusherr] discarded error from Close (durable-path errors must be handled, or suppressed with a reason)",
			lineOf(t, persist, "BUG(flusherr)")),
	}
	got := make([]string, 0, len(diags))
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%s:%d: [%s] %s", filepath.Base(d.File), d.Line, d.Pass, d.Msg))
	}
	sort.Strings(want)
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("diagnostic count: got %d, want %d\ngot:\n\t%s\nwant:\n\t%s",
			len(got), len(want), strings.Join(got, "\n\t"), strings.Join(want, "\n\t"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diagnostic mismatch:\n\tgot:  %s\n\twant: %s", got[i], want[i])
		}
	}
}

// TestHarnessFlagsUnexpected: every metabuggy finding must be reported as
// unexpected when the package has no want comments — the harness cannot be
// silently lenient in either direction.
func TestHarnessFlagsUnexpected(t *testing.T) {
	ft := &fakeTB{}
	diags := CheckPackage(ft, filepath.Join("testdata", "src", "metabuggy"), DefaultPasses()...)
	if len(diags) == 0 {
		t.Fatalf("metabuggy produced no diagnostics")
	}
	if len(ft.errs) != len(diags) {
		t.Fatalf("want %d harness failures (one per finding), got %d:\n\t%s",
			len(diags), len(ft.errs), strings.Join(ft.errs, "\n\t"))
	}
	for _, e := range ft.errs {
		if !strings.Contains(e, "unexpected diagnostic") {
			t.Errorf("failure is not an unexpected-diagnostic report: %s", e)
		}
	}
}

// mustExpect builds one expectation from its parts.
func mustExpect(t *testing.T, file string, line int, re string) *expectation {
	t.Helper()
	compiled, err := regexp.Compile(re)
	if err != nil {
		t.Fatalf("bad test regexp %q: %v", re, err)
	}
	return &expectation{file: file, line: line, re: compiled, raw: re}
}

// TestMatchExpectations covers the exact-set matcher's outcomes directly: a
// clean match, an unexpected diagnostic, an unconsumed expectation, and a
// line mismatch (which must fail in both directions).
func TestMatchExpectations(t *testing.T) {
	d := Diagnostic{Pass: "p", File: "f.go", Line: 3, Col: 1, Msg: "boom happened"}

	t.Run("clean", func(t *testing.T) {
		ft := &fakeTB{}
		MatchExpectations(ft, []Diagnostic{d}, []*expectation{mustExpect(t, "f.go", 3, `\[p\] boom`)})
		if len(ft.errs) != 0 {
			t.Errorf("clean match produced failures: %v", ft.errs)
		}
	})
	t.Run("unexpected", func(t *testing.T) {
		ft := &fakeTB{}
		MatchExpectations(ft, []Diagnostic{d}, nil)
		if len(ft.errs) != 1 || !strings.Contains(ft.errs[0], "unexpected diagnostic") {
			t.Errorf("want one unexpected-diagnostic failure, got %v", ft.errs)
		}
	})
	t.Run("unmatched", func(t *testing.T) {
		ft := &fakeTB{}
		MatchExpectations(ft, nil, []*expectation{mustExpect(t, "f.go", 3, "boom")})
		if len(ft.errs) != 1 || !strings.Contains(ft.errs[0], "expected diagnostic not reported") {
			t.Errorf("want one unmatched-expectation failure, got %v", ft.errs)
		}
	})
	t.Run("wrong-line", func(t *testing.T) {
		ft := &fakeTB{}
		MatchExpectations(ft, []Diagnostic{d}, []*expectation{mustExpect(t, "f.go", 4, "boom")})
		if len(ft.errs) != 2 {
			t.Errorf("line mismatch must fail both directions, got %v", ft.errs)
		}
	})
}
