package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The clausering pass enforces the lock-free ring discipline: a struct
// whose doc comment carries the `hhlint:clause-ring` annotation declares a
// single-producer multi-consumer ring (sat.ShareRing) whose correctness
// rests on three rules the type system cannot express:
//
//   - every field must be a sync/atomic type, or a slice of one (the slot
//     array): plain fields on the ring invite torn reads across the
//     producer/consumer boundary;
//   - slot-array elements are written (Store/Swap/CompareAndSwap, or plain
//     assignment) only inside the ring's own method named Publish — the
//     single-producer publish point. Counter fields (head/tail) are mutated
//     only inside the ring's own methods;
//   - a consumer callback passed to the ring's Drain method must treat the
//     delivered value as read-only: the entry is shared by every consumer,
//     so writing through the callback parameter (element assignment, or
//     append, which can write into shared backing capacity) is a data race.
const ringMarker = "hhlint:clause-ring"

// ClauseRingPass returns the clausering pass.
func ClauseRingPass() *Pass {
	return &Pass{
		Name: "clausering",
		Doc:  "hhlint:clause-ring structs: atomic fields, slot writes only in Publish, drained values read-only",
		Run:  runClauseRing,
	}
}

// ringInfo describes one annotated ring type: which field names are slot
// arrays and which are counters. Fields are tracked by name because the
// ring types are generic — a use site's *types.Var is the instantiated
// field, not the one collected from the generic declaration.
type ringInfo struct {
	slots    map[string]bool
	counters map[string]bool
}

// ringFacts maps the TypeName of every annotated ring struct to its info.
type ringFacts map[*types.TypeName]*ringInfo

func clauseRings(c *Context) ringFacts {
	const key = "clausering.rings"
	if f, ok := c.Facts[key]; ok {
		return f.(ringFacts)
	}
	facts := make(ringFacts)
	for _, pkg := range c.All {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !docContains(ringMarker, gd.Doc, ts.Doc, ts.Comment) {
						continue
					}
					obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					st, ok := obj.Type().Underlying().(*types.Struct)
					if !ok {
						continue
					}
					info := &ringInfo{slots: map[string]bool{}, counters: map[string]bool{}}
					for i := 0; i < st.NumFields(); i++ {
						fld := st.Field(i)
						switch {
						case isAtomicSlice(fld.Type()):
							info.slots[fld.Name()] = true
						case isAtomicType(fld.Type()):
							info.counters[fld.Name()] = true
						}
					}
					facts[obj] = info
				}
			}
		}
	}
	c.Facts[key] = facts
	return facts
}

// isAtomicType reports whether t is a named type of package sync/atomic
// (including instantiated generics such as atomic.Pointer[T]).
func isAtomicType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// isAtomicSlice reports whether t is a slice (or array) of sync/atomic
// elements — the shape of a ring's slot array.
func isAtomicSlice(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isAtomicType(u.Elem())
	case *types.Array:
		return isAtomicType(u.Elem())
	}
	return false
}

// ringTypeName resolves a type to the TypeName of an annotated ring (after
// pointer stripping), or nil.
func ringTypeName(rings ringFacts, t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := rings[n.Obj()]; ok {
		return n.Obj()
	}
	return nil
}

func runClauseRing(c *Context) {
	rings := clauseRings(c)
	if len(rings) == 0 {
		return
	}

	for _, file := range c.Pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				c.checkRingFieldTypes(rings, d)
			case *ast.FuncDecl:
				c.checkRingAccess(rings, d)
			}
		}
	}
}

// checkRingFieldTypes reports plain-typed fields on annotated ring structs
// (rule 1), at the declaration site.
func (c *Context) checkRingFieldTypes(rings ringFacts, gd *ast.GenDecl) {
	if gd.Tok != token.TYPE {
		return
	}
	for _, spec := range gd.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		obj, ok := c.Pkg.Info.Defs[ts.Name].(*types.TypeName)
		if !ok {
			continue
		}
		if _, marked := rings[obj]; !marked {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, fld := range st.Fields.List {
			t := c.TypeOf(fld.Type)
			if isAtomicType(t) || isAtomicSlice(t) {
				continue
			}
			for _, name := range fld.Names {
				c.Reportf(name.Pos(),
					"field %s of clause-ring struct %s is not a sync/atomic type (or slice of one); ring state crosses the producer/consumer boundary",
					name.Name, obj.Name())
			}
		}
	}
}

// checkRingAccess enforces rules 2 and 3 inside one function declaration:
// slot/counter mutations only from the sanctioned methods, and drain
// callbacks read-only. Function literals nested in the declaration inherit
// its method context (they run on the owning goroutine).
func (c *Context) checkRingAccess(rings ringFacts, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	recv, name := methodOf(c, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			c.checkRingMutationCall(rings, node, recv, name)
			c.checkDrainCallback(rings, node)
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				c.checkSlotAssign(rings, lhs, recv, name)
			}
		}
		return true
	})
}

// methodOf returns the receiver's TypeName (nil for plain functions) and
// the declared name.
func methodOf(c *Context, fd *ast.FuncDecl) (*types.TypeName, string) {
	fn, ok := c.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil, fd.Name.Name
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, fd.Name.Name
	}
	t := sig.Recv().Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj(), fd.Name.Name
	}
	return nil, fd.Name.Name
}

// ringFieldOf classifies an expression as a field selection on an
// annotated ring, returning the ring's TypeName and the field name.
func ringFieldOf(c *Context, rings ringFacts, e ast.Expr) (*types.TypeName, string) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	s, ok := c.Pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, ""
	}
	tn := ringTypeName(rings, s.Recv())
	if tn == nil {
		return nil, ""
	}
	return tn, sel.Sel.Name
}

// atomicMutators are the sync/atomic methods that write.
var atomicMutators = map[string]bool{
	"Store": true, "Swap": true, "CompareAndSwap": true, "Add": true, "Or": true, "And": true,
}

// checkRingMutationCall flags mutating atomic calls on slot elements
// outside Publish and on counters outside the ring's own methods.
func (c *Context) checkRingMutationCall(rings ringFacts, call *ast.CallExpr, recv *types.TypeName, fnName string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !atomicMutators[sel.Sel.Name] {
		return
	}
	target := ast.Unparen(sel.X)
	if idx, ok := target.(*ast.IndexExpr); ok {
		// r.slots[i].Store(...): a slot write — producer-only.
		tn, field := ringFieldOf(c, rings, idx.X)
		if tn == nil || !rings[tn].slots[field] {
			return
		}
		if recv != tn || fnName != "Publish" {
			c.Reportf(call.Pos(),
				"slot write %s.%s[...].%s outside the producer's Publish method (single-producer ring)",
				tn.Name(), field, sel.Sel.Name)
		}
		return
	}
	// r.head.Store(...): a counter write — ring-methods-only.
	tn, field := ringFieldOf(c, rings, target)
	if tn == nil || !rings[tn].counters[field] {
		return
	}
	if recv != tn {
		c.Reportf(call.Pos(),
			"clause-ring counter %s.%s mutated outside the ring's own methods",
			tn.Name(), field)
	}
}

// checkSlotAssign flags plain assignment to a slot element (ws[i] = v)
// outside Publish — even through a non-atomic alias this is a slot write.
func (c *Context) checkSlotAssign(rings ringFacts, lhs ast.Expr, recv *types.TypeName, fnName string) {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	tn, field := ringFieldOf(c, rings, idx.X)
	if tn == nil || !rings[tn].slots[field] {
		return
	}
	if recv != tn || fnName != "Publish" {
		c.Reportf(lhs.Pos(),
			"plain write to clause-ring slot array %s.%s outside the producer's Publish method",
			tn.Name(), field)
	}
}

// checkDrainCallback enforces the read-only contract on consumer callbacks:
// inside a function literal passed to a marked ring's Drain method, the
// delivered parameter must not be written through (element assignment,
// increment, or append — append can write into shared backing capacity).
func (c *Context) checkDrainCallback(rings ringFacts, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Drain" {
		return
	}
	if ringTypeName(rings, c.TypeOf(sel.X)) == nil {
		return
	}
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.FuncLit)
		if !ok {
			continue
		}
		params := make(map[types.Object]bool)
		for _, fl := range lit.Type.Params.List {
			for _, name := range fl.Names {
				if obj := c.Pkg.Info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
		if len(params) == 0 {
			continue
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range node.Lhs {
					if obj := writeRootObj(c, lhs); obj != nil && params[obj] {
						c.Reportf(lhs.Pos(),
							"drained clause-ring value %s mutated in consumer callback (entries are shared read-only)",
							obj.Name())
					}
				}
			case *ast.IncDecStmt:
				if obj := writeRootObj(c, node.X); obj != nil && params[obj] {
					c.Reportf(node.X.Pos(),
						"drained clause-ring value %s mutated in consumer callback (entries are shared read-only)",
						obj.Name())
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok && id.Name == "append" && len(node.Args) > 0 {
					if obj := identObj(c, rootExpr(node.Args[0])); obj != nil && params[obj] {
						c.Reportf(node.Args[0].Pos(),
							"append to drained clause-ring value %s in consumer callback (may write into shared backing capacity)",
							obj.Name())
					}
				}
			}
			return true
		})
	}
}

// writeRootObj resolves the root object of a write target that goes
// *through* a value (p[i], *p, p[i].f, ...). A plain `p = x` rebinding is
// not a write through the shared entry and resolves to nil.
func writeRootObj(c *Context, e ast.Expr) types.Object {
	switch ast.Unparen(e).(type) {
	case *ast.IndexExpr, *ast.StarExpr, *ast.SelectorExpr:
		return identObj(c, rootExpr(e))
	}
	return nil
}

// rootExpr unwraps index/selector/star/paren chains to the base expression.
func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return e
		}
	}
}
