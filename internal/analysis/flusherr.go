package analysis

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// The flusherr pass guards the crash-safe persistence path: inside the
// durability-critical scope (package internal/proofdb, the persistence
// wiring in persist.go, and any package whose name contains "flusherr" —
// the pass's own testdata), an error returned by a flush-family function
// (Flush, Close, Sync, Fsync, Rename) must not be discarded. A dropped
// fsync error is precisely how "crash-safe" stores silently stop being
// crash-safe (cf. the fsyncgate postmortems): once the kernel reports the
// error it may clear the dirty state, so the only correct reactions are to
// propagate, retry from scratch, or consciously document best-effort
// semantics with an //hhlint:ignore reason.
//
// Flagged forms:
//
//	f.Close()            // bare call as a statement
//	defer f.Close()      // deferred, error unobservable
//	go f.Flush()         // goroutine, error unobservable
//	_ = f.Sync()         // explicitly discarded
//
// Only callees that actually return an error are flagged.

// FlushErrPass returns the flusherr pass.
func FlushErrPass() *Pass {
	return &Pass{
		Name: "flusherr",
		Doc:  "flush/close/sync/rename errors in the persistence scope must be handled",
		Run:  runFlushErr,
	}
}

var flushFamily = map[string]bool{
	"Flush":  true,
	"Close":  true,
	"Sync":   true,
	"Fsync":  true,
	"Rename": true,
	// Rotate closes-and-fsyncs the active journal segment before opening the
	// next one; dropping its error loses the same durability guarantee as a
	// dropped Sync (the records in the sealed segment may not be on disk).
	"Rotate": true,
}

// inFlushScope decides whether a file participates in the durability scope.
func inFlushScope(pkgPath, fileName string) bool {
	if strings.Contains(pkgPath, "proofdb") || strings.Contains(pkgPath, "flusherr") {
		return true
	}
	return filepath.Base(fileName) == "persist.go"
}

func runFlushErr(c *Context) {
	for _, file := range c.Pkg.Files {
		name := c.Pkg.Fset.Position(file.Pos()).Filename
		if !inFlushScope(c.Pkg.Path, name) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call := flushCall(c, st.X); call != nil {
					c.Reportf(call.Pos(), "discarded error from %s (durable-path errors must be handled, or suppressed with a reason)", calleeName(call))
				}
			case *ast.DeferStmt:
				if call := flushCall(c, st.Call); call != nil {
					c.Reportf(call.Pos(), "deferred %s discards its error (capture it in a named return or check explicitly)", calleeName(call))
				}
			case *ast.GoStmt:
				if call := flushCall(c, st.Call); call != nil {
					c.Reportf(call.Pos(), "go %s discards its error (the goroutine must observe and report it)", calleeName(call))
				}
			case *ast.AssignStmt:
				// `_ = f()` and `v, _ := f()` forms where a blank identifier
				// swallows the (sole) result set of a flush-family call.
				if len(st.Rhs) != 1 {
					return true
				}
				call := flushCall(c, st.Rhs[0])
				if call == nil {
					return true
				}
				allBlank := true
				for _, lhs := range st.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name != "_" {
						allBlank = false
					}
				}
				if allBlank {
					c.Reportf(call.Pos(), "error from %s assigned to blank identifier in durable path", calleeName(call))
				}
			}
			return true
		})
	}
}

// flushCall returns e as a flush-family call that returns an error, or nil.
func flushCall(c *Context, e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	if !flushFamily[calleeName(call)] {
		return nil
	}
	if !callResultsIncludeError(c, call) {
		return nil
	}
	return call
}
