package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one parsed and type-checked package of the load.
type Package struct {
	// Path is the import path ("hhoudini/internal/sat"; testdata packages
	// use their directory base name).
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset is the FileSet shared by every package of one load.
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types and Info are the go/types results for the package.
	Types *types.Package
	Info  *types.Info
	// Imports are the module-internal import paths (load-order deps);
	// empty for single-package harness loads.
	Imports []string
	// Hash is a hex content fingerprint over the package's source files
	// (names + bytes, in sorted-file order) — the raw material for the
	// summary memo's per-package cache key.
	Hash string
}

// LoadModule parses and type-checks every package under the module rooted
// at dir (the directory containing go.mod), using only the standard
// library: module-internal imports resolve against the packages being
// loaded (in topological order) and everything else — the standard library
// — through importer "source", which type-checks GOROOT sources directly
// and therefore needs no pre-compiled export data.
//
// Test files (*_test.go), testdata directories, hidden and underscore
// directories are skipped: the passes target the shipped engine, and
// analyzing the module's own lint testdata would be circular.
func LoadModule(dir string) ([]*Package, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	type rawPkg struct {
		path    string
		dir     string
		hash    string
		files   []*ast.File
		imports []string
	}

	// Parse every candidate directory concurrently; the shared FileSet is
	// safe for concurrent AddFile, and parsing is embarrassingly parallel.
	parsed := make([]*rawPkg, len(dirs))
	perr := make([]error, len(dirs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, d := range dirs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			files, hash, err := parseDir(fset, d)
			if err != nil {
				perr[i] = err
				return
			}
			if len(files) == 0 {
				return
			}
			rel, err := filepath.Rel(root, d)
			if err != nil {
				perr[i] = err
				return
			}
			path := modPath
			if rel != "." {
				path = modPath + "/" + filepath.ToSlash(rel)
			}
			parsed[i] = &rawPkg{path: path, dir: d, hash: hash, files: files}
		}()
	}
	wg.Wait()
	raws := make(map[string]*rawPkg)
	for i, rp := range parsed {
		if perr[i] != nil {
			return nil, perr[i]
		}
		if rp == nil {
			continue
		}
		seen := map[string]bool{}
		for _, f := range rp.files {
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if (p == modPath || strings.HasPrefix(p, modPath+"/")) && !seen[p] {
					seen[p] = true
					rp.imports = append(rp.imports, p)
				}
			}
		}
		raws[rp.path] = rp
	}

	order, err := topoSort(raws, func(p string) []string { return raws[p].imports })
	if err != nil {
		return nil, err
	}

	// Type-check in topological wavefronts: level(p) = 1 + max(level of
	// module-internal deps), and every package of one level type-checks
	// concurrently (bounded by GOMAXPROCS) — its dependencies were resolved
	// by earlier levels. The stdlib source importer is not concurrency-safe,
	// so it is serialized behind a mutex; module-internal resolution is a
	// lock-guarded map lookup.
	level := make(map[string]int, len(order))
	maxLevel := 0
	for _, path := range order {
		l := 0
		for _, d := range raws[path].imports {
			if _, ok := raws[d]; ok && level[d]+1 > l {
				l = level[d] + 1
			}
		}
		level[path] = l
		if l > maxLevel {
			maxLevel = l
		}
	}

	imp := &moduleImporter{
		std:  &lockedImporter{inner: newStdImporter(fset)},
		mods: make(map[string]*types.Package, len(order)),
	}
	checked := make(map[string]*Package, len(order))
	var cmu sync.Mutex
	for l := 0; l <= maxLevel; l++ {
		var wave []string
		for _, path := range order {
			if level[path] == l {
				wave = append(wave, path)
			}
		}
		errs := make([]error, len(wave))
		var wwg sync.WaitGroup
		for i, path := range wave {
			wwg.Add(1)
			go func() {
				defer wwg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				rp := raws[path]
				pkg, err := typeCheck(fset, path, rp.files, imp)
				if err != nil {
					errs[i] = fmt.Errorf("%s: %w", path, err)
					return
				}
				pkg.Dir = rp.dir
				pkg.Hash = rp.hash
				pkg.Imports = append([]string(nil), rp.imports...)
				imp.add(path, pkg.Types)
				cmu.Lock()
				checked[path] = pkg
				cmu.Unlock()
			}()
		}
		wwg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}

	out := make([]*Package, 0, len(order))
	for _, path := range order {
		out = append(out, checked[path])
	}
	return out, nil
}

// LoadPackage parses and type-checks the single package in dir (used by the
// golden-file test harness for self-contained testdata packages). Imports
// resolve through the stdlib source importer only. The import path is the
// directory base name.
func LoadPackage(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	files, hash, err := parseDir(fset, abs)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	pkg, err := typeCheck(fset, filepath.Base(abs), files, newStdImporter(fset))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	pkg.Dir = abs
	pkg.Hash = hash
	return pkg, nil
}

// parseDir parses every non-test .go file of one directory, in sorted
// order, with comments attached (suppressions and annotations live there).
// The returned hash fingerprints the parsed bytes (file names + contents),
// feeding the summary memo's per-package cache key.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") ||
			strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	h := sha256.New()
	for _, n := range names {
		path := filepath.Join(dir, n)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, "", err
		}
		fmt.Fprintf(h, "%s\x00%d\x00", n, len(src))
		h.Write(src)
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, "", err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, "", nil
	}
	return files, hex.EncodeToString(h.Sum(nil)), nil
}

// typeCheck runs go/types over one package's files.
func typeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var errs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(path, fset, files, info)
	if len(errs) > 0 {
		// Report the first few errors; a broken tree should fail loudly.
		msg := make([]string, 0, 3)
		for i, e := range errs {
			if i == 3 {
				msg = append(msg, fmt.Sprintf("... and %d more", len(errs)-3))
				break
			}
			msg = append(msg, e.Error())
		}
		return nil, fmt.Errorf("type errors:\n\t%s", strings.Join(msg, "\n\t"))
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// moduleImporter resolves module-internal import paths against the already
// type-checked packages of this load and everything else against the
// stdlib source importer. Safe for concurrent use by wavefront
// type-checkers: mods is mutex-guarded, and writes only happen for packages
// whose dependents have not started checking yet.
type moduleImporter struct {
	std  types.ImporterFrom
	mu   sync.RWMutex
	mods map[string]*types.Package
}

func (m *moduleImporter) add(path string, pkg *types.Package) {
	m.mu.Lock()
	m.mods[path] = pkg
	m.mu.Unlock()
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	m.mu.RLock()
	p, ok := m.mods[path]
	m.mu.RUnlock()
	if ok {
		return p, nil
	}
	return m.std.ImportFrom(path, dir, mode)
}

// lockedImporter serializes a non-concurrency-safe importer (the go/types
// source importer documents itself as single-goroutine).
type lockedImporter struct {
	mu    sync.Mutex
	inner types.ImporterFrom
}

func (l *lockedImporter) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

func (l *lockedImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.ImportFrom(path, dir, mode)
}

// newStdImporter builds the stdlib importer. The "source" compiler variant
// type-checks GOROOT sources, so it works on toolchains that ship no
// pre-compiled export data; it caches internally, so one instance is shared
// across the whole load.
func newStdImporter(fset *token.FileSet) types.ImporterFrom {
	return importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// packageDirs walks the module tree collecting candidate package
// directories, skipping hidden, underscore, vendor and testdata trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// topoSort orders package paths so every package follows its
// module-internal imports. Cycles are errors (they would be build errors
// anyway, but the message here is clearer than a type-check cascade).
func topoSort[T any](pkgs map[string]T, deps func(string) []string) ([]string, error) {
	names := make([]string, 0, len(pkgs))
	for p := range pkgs {
		names = append(names, p)
	}
	sort.Strings(names)
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(pkgs))
	var order []string
	var visit func(string) error
	visit = func(p string) error {
		switch state[p] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analysis: import cycle through %s", p)
		}
		state[p] = visiting
		ds := append([]string(nil), deps(p)...)
		sort.Strings(ds)
		for _, d := range ds {
			if _, ok := pkgs[d]; !ok {
				continue // not part of this load (stdlib or missing)
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		state[p] = done
		order = append(order, p)
		return nil
	}
	for _, p := range names {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}
