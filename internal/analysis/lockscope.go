package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// The lockscope pass enforces two lock-hygiene invariants:
//
//  1. No callbacks under a lock. Between x.Lock()/x.RLock() and the
//     matching Unlock (linearly approximated in source order; a deferred
//     Unlock holds to function end), the engine must not call out into
//     agent-visible code: calls through function-typed values (struct
//     fields, variables, parameters — e.g. a user-supplied clock or drop
//     hook) and calls to oracle/re-entry methods (Learn, Mine, Slice,
//     Eval, Encode, Verify) are flagged. Such calls can re-enter the
//     engine and deadlock on the very lock being held, or invert lock
//     order with agent-held locks. Functions whose name ends in "Locked"
//     follow this codebase's convention of being called with the lock
//     already held, so the same rule applies throughout their bodies.
//
//  2. No locks copied by value. A parameter, result or receiver whose type
//     contains a sync.Mutex/RWMutex by value copies the lock state,
//     silently splitting one critical section into two. (go vet's
//     copylocks catches general copies; this pass closes the
//     signature-level cases early and in the same report.)
//
// The linear approximation of (1) is deliberate: branches that unlock and
// return early simply end the held region at the Unlock, which matches how
// this codebase structures its critical sections.

// LockScopePass returns the lockscope pass.
func LockScopePass() *Pass {
	return &Pass{
		Name: "lockscope",
		Doc:  "no agent-visible callbacks under a lock; no locks copied by value",
		Run:  runLockScope,
	}
}

// reentrantNames are method names treated as agent-visible re-entry points:
// the learner's oracle interfaces and the public verification entry points.
var reentrantNames = map[string]bool{
	"Learn":  true,
	"Mine":   true,
	"Slice":  true,
	"Eval":   true,
	"Encode": true,
	"Verify": true,
}

func runLockScope(c *Context) {
	for _, file := range c.Pkg.Files {
		for _, unit := range funcUnits(file) {
			checkLockCopies(c, unit)
			checkHeldCallbacks(c, unit)
		}
	}
}

// checkLockCopies flags by-value lock types in a function's signature.
func checkLockCopies(c *Context, unit funcUnit) {
	if unit.decl == nil {
		return // literals: their signatures rarely carry locks; skip
	}
	report := func(fl *ast.Field, what string) {
		t := c.TypeOf(fl.Type)
		if t == nil {
			return
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			return
		}
		if containsLock(t) {
			c.Reportf(fl.Type.Pos(), "%s of %s passes a lock by value (type %s contains a sync mutex; use a pointer)",
				what, unit.name, t.String())
		}
	}
	if unit.decl.Recv != nil {
		for _, fl := range unit.decl.Recv.List {
			report(fl, "receiver")
		}
	}
	if unit.decl.Type.Params != nil {
		for _, fl := range unit.decl.Type.Params.List {
			report(fl, "parameter")
		}
	}
	if unit.decl.Type.Results != nil {
		for _, fl := range unit.decl.Type.Results.List {
			report(fl, "result")
		}
	}
}

// checkHeldCallbacks scans one function body in source order, tracking the
// set of held locks and flagging agent-visible calls inside held regions.
func checkHeldCallbacks(c *Context, unit funcUnit) {
	held := make(map[string]bool) // lock expr (e.g. "l.mu") → held
	lockedConvention := strings.HasSuffix(unit.name, "Locked")
	params := paramObjects(c, unit)
	heldAny := func() (string, bool) {
		if len(held) > 0 {
			keys := make([]string, 0, len(held))
			for k := range held {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			return keys[0], true
		}
		if lockedConvention {
			return "a caller-held lock (…Locked naming convention)", true
		}
		return "", false
	}

	walkUnit(unit.body, func(n ast.Node, parents []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		recv := calleeRecv(call)

		// Lock-state transitions.
		if recv != nil && mutexKind(c.TypeOf(recv)) != "" {
			key := types.ExprString(recv)
			switch name {
			case "Lock":
				// Re-locking a mutex that is still held in this body — the
				// classic `defer mu.Unlock()` followed by another Lock() —
				// self-deadlocks on a plain Mutex (the deferred Unlock only
				// runs at function end). RLock re-entry is left alone: shared
				// locks legitimately overlap.
				if held[key] {
					c.Reportf(call.Pos(), "Lock of %s while it is still held in this function (a deferred Unlock releases only at return): self-deadlock", key)
				}
				held[key] = true
			case "RLock":
				held[key] = true
			case "Unlock", "RUnlock":
				if !inDefer(parents) {
					delete(held, key)
				}
				// A deferred Unlock releases at function end: the lock
				// stays held for the rest of the scan, which is the point.
			}
			return true
		}

		lock, isHeld := heldAny()
		if !isHeld {
			return true
		}
		if isCallbackCall(c, call, params) {
			c.Reportf(call.Pos(), "call through function value %s while holding %s (agent-visible callback under lock)",
				types.ExprString(call.Fun), lock)
			return true
		}
		if reentrantNames[name] && isMethodCall(c, call) {
			c.Reportf(call.Pos(), "call to %s while holding %s (oracle/re-entry call under lock can deadlock)",
				name, lock)
		}
		return true
	})
}
