package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// callgraph.go builds the module-wide call graph the interprocedural passes
// (lockorder, ctxflow, goroleak) and the summary engine compose over.
//
// Nodes are the *declared* functions and methods of every loaded package,
// plus one anonymous node per `go func(){...}` literal (a spawned literal
// runs concurrently, so its facts must not be attributed to the spawning
// function's linear control flow). Every other function literal — deferred,
// immediately invoked, or stored — is inlined into its enclosing node at
// its lexical position, the same linear approximation the intra-procedural
// passes use.
//
// Edges are static only, biased toward precision:
//
//   - direct calls to package-level functions (same or imported module
//     package);
//   - method calls whose receiver's static type is concrete;
//   - interface method calls devirtualized when the receiver's concrete
//     type is locally evident (the variable is defined once in the same
//     body from a composite literal or its address);
//   - `go f(...)` and `defer f(...)` produce the same resolution, tagged
//     with the spawn/defer kind.
//
// Unresolvable callees (dynamic dispatch through stored function values,
// unexported interface plumbing, stdlib calls) produce no edge: the
// consuming passes treat a missing edge as "no facts", never as a finding.

// CallKind tags how an edge's call site executes.
type CallKind uint8

const (
	// KindCall is an ordinary synchronous call.
	KindCall CallKind = iota
	// KindGo is a `go` statement: the callee runs concurrently.
	KindGo
	// KindDefer is a `defer` statement: the callee runs at function exit.
	KindDefer
)

func (k CallKind) String() string {
	switch k {
	case KindGo:
		return "go"
	case KindDefer:
		return "defer"
	}
	return "call"
}

// CallEdge is one resolved call site.
type CallEdge struct {
	Caller *CGNode
	Callee *CGNode
	Kind   CallKind
	Pos    token.Pos
}

// CGNode is one analyzable function body: a declared function/method, or an
// anonymous `go func` literal.
type CGNode struct {
	// Key is the stable identity used by summaries and the disk memo:
	// (*types.Func).FullName() for declarations (init functions are
	// disambiguated with #n), and "<enclosing>·go<n>" for the n-th spawned
	// literal inside the enclosing node.
	Key string
	// Fn is the declared function object (nil for spawned literals).
	Fn *types.Func
	// Pkg is the defining package.
	Pkg *Package
	// Decl/Lit carry the syntax: exactly one is non-nil.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Out is the node's outgoing edges, in source order.
	Out []CallEdge
	// goBodies are the spawned-literal child nodes, in source order.
	goBodies []*CGNode
}

// Name returns a short human-readable name for diagnostics.
func (n *CGNode) Name() string { return shortFunc(n.Key) }

// Body returns the node's block statement.
func (n *CGNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Pos returns the node's declaration position.
func (n *CGNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// CallGraph is the module-wide graph.
type CallGraph struct {
	// Nodes in deterministic order: package load order, then file/source
	// order within a package.
	Nodes []*CGNode
	// ByKey resolves a summary key back to its node.
	ByKey map[string]*CGNode

	byFn map[*types.Func]*CGNode
}

// NodeFor resolves a declared function object to its node (nil for
// functions outside the load, e.g. stdlib).
func (g *CallGraph) NodeFor(fn *types.Func) *CGNode { return g.byFn[fn] }

// BuildCallGraph constructs the graph over the loaded packages. pkgs must
// be in load order (dependencies first), as produced by LoadModule.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{ByKey: map[string]*CGNode{}, byFn: map[*types.Func]*CGNode{}}
	// First pass: create declaration nodes so cross-package edges resolve.
	for _, pkg := range pkgs {
		initSeq := 0
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				key := obj.FullName()
				if fd.Name.Name == "init" && fd.Recv == nil {
					initSeq++
					key = fmt.Sprintf("%s#%d", key, initSeq)
				}
				n := &CGNode{Key: key, Fn: obj, Pkg: pkg, Decl: fd}
				g.Nodes = append(g.Nodes, n)
				g.ByKey[key] = n
				g.byFn[obj] = n
			}
		}
	}
	// Second pass: edges and spawned-literal child nodes.
	for _, n := range append([]*CGNode(nil), g.Nodes...) {
		buildEdges(g, n)
	}
	return g
}

// buildEdges walks one node's body, resolving call sites and splitting off
// `go func` literals into child nodes (which are then walked themselves).
func buildEdges(g *CallGraph, n *CGNode) {
	goSeq := 0
	// handled marks go/defer call expressions already edged with their kind
	// tag, so the generic CallExpr case below does not re-add them as
	// ordinary calls when the walk descends into their argument lists.
	handled := map[*ast.CallExpr]bool{}
	// inlined marks function literals whose bodies execute within this
	// node's own dynamic extent — deferred literals and immediately invoked
	// ones. Literals that escape (stored in a variable, passed as a
	// callback) run in an unknown context, so their facts are not
	// attributed to the definer.
	inlined := map[*ast.FuncLit]bool{}
	var walk func(ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(nd ast.Node) bool {
			switch stmt := nd.(type) {
			case *ast.FuncLit:
				return inlined[stmt]
			case *ast.GoStmt:
				// Spawned literal: a child node, walked independently.
				if lit, ok := stmt.Call.Fun.(*ast.FuncLit); ok {
					goSeq++
					child := &CGNode{
						Key: fmt.Sprintf("%s·go%d", n.Key, goSeq),
						Pkg: n.Pkg,
						Lit: lit,
					}
					g.Nodes = append(g.Nodes, child)
					g.ByKey[child.Key] = child
					n.goBodies = append(n.goBodies, child)
					n.Out = append(n.Out, CallEdge{Caller: n, Callee: child, Kind: KindGo, Pos: stmt.Pos()})
					buildEdges(g, child)
					// Arguments to the literal still evaluate in the
					// caller; they rarely contain calls worth an edge, so
					// the subtree is handled entirely by the child walk.
					return false
				}
				handled[stmt.Call] = true
				if callee := resolveCallee(n, stmt.Call); callee != nil {
					if t := g.byFn[callee]; t != nil {
						n.Out = append(n.Out, CallEdge{Caller: n, Callee: t, Kind: KindGo, Pos: stmt.Pos()})
					}
				}
				return true
			case *ast.DeferStmt:
				handled[stmt.Call] = true
				if lit, ok := stmt.Call.Fun.(*ast.FuncLit); ok {
					inlined[lit] = true
				}
				if callee := resolveCallee(n, stmt.Call); callee != nil {
					if t := g.byFn[callee]; t != nil {
						n.Out = append(n.Out, CallEdge{Caller: n, Callee: t, Kind: KindDefer, Pos: stmt.Pos()})
					}
				}
				return true
			case *ast.CallExpr:
				if lit, ok := stmt.Fun.(*ast.FuncLit); ok {
					inlined[lit] = true // immediately invoked
				}
				if handled[stmt] {
					return true
				}
				if callee := resolveCallee(n, stmt); callee != nil {
					if t := g.byFn[callee]; t != nil {
						n.Out = append(n.Out, CallEdge{Caller: n, Callee: t, Kind: KindCall, Pos: stmt.Pos()})
					}
				}
				return true
			}
			return true
		})
	}
	walk(n.Body())
}

// resolveCallee resolves a call expression to a declared function object,
// or nil when the callee is dynamic/external.
func resolveCallee(n *CGNode, call *ast.CallExpr) *types.Func {
	info := n.Pkg.Info
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fn].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok && sel.Kind() == types.MethodVal {
			f, _ := sel.Obj().(*types.Func)
			if f == nil {
				return nil
			}
			if types.IsInterface(sel.Recv()) {
				return devirtualize(n, fn.X, f)
			}
			return f
		}
		// Package-qualified function: pkg.F(...).
		if f, ok := info.Uses[fn.Sel].(*types.Func); ok && f.Type() != nil {
			if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() == nil {
				return f
			}
		}
	}
	return nil
}

// devirtualize resolves an interface method call when the receiver's
// concrete type is locally evident: the receiver is an identifier defined
// exactly once in the enclosing body, from a composite literal T{...} or
// &T{...}. Anything less evident stays dynamic (no edge).
func devirtualize(n *CGNode, recv ast.Expr, ifaceMethod *types.Func) *types.Func {
	id, ok := ast.Unparen(recv).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := n.Pkg.Info.Uses[id]
	if obj == nil {
		return nil
	}
	var concrete types.Type
	defs := 0
	ast.Inspect(n.Body(), func(nd ast.Node) bool {
		as, ok := nd.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if n.Pkg.Info.Defs[lid] != obj && n.Pkg.Info.Uses[lid] != obj {
				continue // a different variable (or not this one at all)
			}
			defs++
			if i >= len(as.Rhs) {
				continue
			}
			rhs := ast.Unparen(as.Rhs[i])
			if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.AND {
				rhs = ast.Unparen(u.X)
			}
			if _, ok := rhs.(*ast.CompositeLit); ok {
				concrete = n.Pkg.Info.TypeOf(as.Rhs[i])
			}
		}
		return true
	})
	if defs != 1 || concrete == nil {
		return nil
	}
	m, _, _ := types.LookupFieldOrMethod(concrete, true, ifaceMethod.Pkg(), ifaceMethod.Name())
	f, _ := m.(*types.Func)
	return f
}

// DumpGraph renders the graph as stable text (one `caller -> callee [kind]`
// line per edge) for the -graph debug flag and tests.
func DumpGraph(g *CallGraph) string {
	var lines []string
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			lines = append(lines, fmt.Sprintf("%s -> %s [%s]", n.Key, e.Callee.Key, e.Kind))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
