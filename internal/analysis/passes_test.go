package analysis

import (
	"path/filepath"
	"reflect"
	"testing"
)

// TestGoldenPasses runs the full default pass set over every annotated
// testdata package and asserts each package's `// want` expectation set is
// matched exactly — every finding expected, every expectation consumed.
func TestGoldenPasses(t *testing.T) {
	cases := []struct {
		dir      string
		minDiags int // ISSUE floor: each pass fixture carries ≥2 expected diagnostics
	}{
		{"atomicstats", 2},
		{"clausering", 2},
		{"pooledowner", 2},
		{"selectorrelease", 2},
		{"flusherr", 2},
		{"lockscope", 2},
		{"panicscope", 2},
		{"servectx", 3},
		{"suppress", 2},
		{"lockorder", 2},
		{"ctxflow", 3},
		{"goroleak", 2},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			diags := CheckPackage(t, filepath.Join("testdata", "src", tc.dir), DefaultPasses()...)
			if len(diags) < tc.minDiags {
				t.Errorf("want at least %d diagnostics from %s, got %d", tc.minDiags, tc.dir, len(diags))
			}
		})
	}
}

// TestSuppressionScope pins the suppression semantics the suppress fixture
// relies on: the surviving diagnostic set must contain the malformed and
// unknown-pass reports (pseudo-pass "hhlint") and nothing from the lines
// with well-formed ignores.
func TestSuppressionScope(t *testing.T) {
	diags := CheckPackage(t, filepath.Join("testdata", "src", "suppress"), DefaultPasses()...)
	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Pass]++
	}
	if counts[SuppressionPass] != 2 {
		t.Errorf("want 2 %q diagnostics (malformed + unknown pass), got %d", SuppressionPass, counts[SuppressionPass])
	}
	if counts["atomicstats"] != 4 {
		t.Errorf("want 4 surviving atomicstats diagnostics (wrong-pass, malformed, unknown-pass, brace-line targets), got %d", counts["atomicstats"])
	}
	// Two passes fire on the twoPassSpace line; only atomicstats is named by
	// the ignore (space-separated trailing tokens are reason text), so
	// exactly one lockscope finding must survive.
	if counts["lockscope"] != 1 {
		t.Errorf("want 1 surviving lockscope diagnostic (space-separated ignore names one pass), got %d", counts["lockscope"])
	}
}

func TestSplitIgnore(t *testing.T) {
	cases := []struct {
		in     string
		passes []string
		reason string
	}{
		{"atomicstats the reason", []string{"atomicstats"}, "the reason"},
		{"a,b two passes one reason", []string{"a", "b"}, "two passes one reason"},
		{"all everything silenced here", []string{"all"}, "everything silenced here"},
		{"atomicstats", []string{"atomicstats"}, ""},
		{"", nil, ""},
	}
	for _, tc := range cases {
		passes, reason := splitIgnore(tc.in)
		if !reflect.DeepEqual(passes, tc.passes) || reason != tc.reason {
			t.Errorf("splitIgnore(%q) = %v, %q; want %v, %q", tc.in, passes, reason, tc.passes, tc.reason)
		}
	}
}

func TestIgnoreText(t *testing.T) {
	if got, ok := ignoreText("//hhlint:ignore p r"); !ok || got != "p r" {
		t.Errorf("line comment: got %q, %v", got, ok)
	}
	if got, ok := ignoreText("/*hhlint:ignore p r*/"); !ok || got != "p r" {
		t.Errorf("block comment: got %q, %v", got, ok)
	}
	if _, ok := ignoreText("// plain comment"); ok {
		t.Errorf("plain comment treated as suppression")
	}
}

// TestSelfLint is the repo's own cleanliness gate in test form: the module
// at the repo root must produce zero findings (the `make lint` contract).
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	pkgs, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	diags := Run(pkgs, DefaultPasses())
	for _, d := range diags {
		t.Errorf("self-lint finding: %s", d.String())
	}
}
