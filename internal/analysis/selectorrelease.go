package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The selectorrelease pass tracks selector (activation) literals from the
// incremental SAT backend. A selector allocated with NewSelector() guards a
// clause group; the solver only reclaims the group when the selector is
// Release()d, so a selector that is acquired and then forgotten pins dead
// clauses in every pooled solver forever — a leak that compounds across the
// cross-run cache's check-in/checkout cycles.
//
// Within one function body, a freshly acquired selector must, on every
// return path, have met one of:
//
//   - a Release(sel) call (a deferred Release covers all paths);
//   - an ownership escape: stored into a map/field/slice (some owner now
//     tracks it — e.g. pe.sels[id] = s, bySel[s] = p, append(sels, s)) or
//     sent on a channel;
//   - being returned itself (ownership transfers to the caller).
//
// Early `return err` paths between acquisition and the eventual
// Release/store are exactly the leaks this pass exists for. The analysis
// is per-function and textual: a return statement is covered only by
// events that precede it in source order.

// SelectorReleasePass returns the selectorrelease pass.
func SelectorReleasePass() *Pass {
	return &Pass{
		Name: "selectorrelease",
		Doc:  "acquired selector literals must be Released, stored, or returned on every path",
		Run:  runSelectorRelease,
	}
}

func runSelectorRelease(c *Context) {
	for _, file := range c.Pkg.Files {
		for _, unit := range funcUnits(file) {
			checkSelectorLeaks(c, unit)
		}
	}
}

type selAcq struct {
	obj types.Object
	pos token.Pos // acquisition site
	// cover holds source positions after which the selector is safe:
	// Release calls, ownership escapes. A deferred Release covers
	// everything (coverAll).
	cover    []token.Pos
	coverAll bool
}

func checkSelectorLeaks(c *Context, unit funcUnit) {
	var acqs []*selAcq
	byObj := make(map[types.Object]*selAcq)

	// Phase 1: find acquisitions `s := X.NewSelector()` (and flag results
	// dropped outright).
	walkUnit(unit.body, func(n ast.Node, parents []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || calleeName(call) != "NewSelector" {
			return true
		}
		if len(parents) == 0 {
			return true
		}
		switch p := parents[len(parents)-1].(type) {
		case *ast.ExprStmt:
			c.Reportf(call.Pos(), "NewSelector result dropped: the selector can never be Released")
		case *ast.AssignStmt:
			if len(p.Rhs) == 1 && ast.Unparen(p.Rhs[0]) == call && len(p.Lhs) == 1 {
				if id, ok := p.Lhs[0].(*ast.Ident); ok {
					if id.Name == "_" {
						c.Reportf(call.Pos(), "NewSelector result assigned to blank identifier: the selector can never be Released")
						return true
					}
					if obj := c.ObjectOf(id); obj != nil {
						a := &selAcq{obj: obj, pos: call.Pos()}
						acqs = append(acqs, a)
						byObj[obj] = a
					}
				}
			}
		}
		return true
	})
	if len(acqs) == 0 {
		return
	}

	// Phase 2: collect covering events (Release, escape) per selector.
	walkUnit(unit.body, func(n ast.Node, parents []ast.Node) bool {
		switch t := n.(type) {
		case *ast.CallExpr:
			name := calleeName(t)
			if name == "Release" {
				for _, arg := range t.Args {
					if a := byObj[identObj(c, arg)]; a != nil {
						if inDefer(parents) {
							a.coverAll = true
						} else {
							a.cover = append(a.cover, t.End())
						}
					}
				}
			}
			if name == "append" {
				for _, arg := range t.Args[min(1, len(t.Args)):] {
					if a := byObj[identObj(c, arg)]; a != nil {
						a.cover = append(a.cover, t.End())
					}
				}
			}
		case *ast.AssignStmt:
			// Escapes: s stored via `container[k] = s`, `x.f = s`, or s
			// used as a map key on the LHS (`bySel[s] = p`).
			for _, rhs := range t.Rhs {
				if a := byObj[identObj(c, rhs)]; a != nil {
					for _, lhs := range t.Lhs {
						switch ast.Unparen(lhs).(type) {
						case *ast.IndexExpr, *ast.SelectorExpr:
							a.cover = append(a.cover, t.End())
						}
					}
				}
			}
			for _, lhs := range t.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if a := byObj[identObj(c, ix.Index)]; a != nil {
						a.cover = append(a.cover, t.End())
					}
				}
			}
		case *ast.SendStmt:
			if a := byObj[identObj(c, t.Value)]; a != nil {
				a.cover = append(a.cover, t.End())
			}
		}
		return true
	})

	coveredAt := func(a *selAcq, at token.Pos) bool {
		if a.coverAll {
			return true
		}
		for _, p := range a.cover {
			if p <= at {
				return true
			}
		}
		return false
	}

	// Phase 3: audit every return path after each acquisition.
	sawReturn := make(map[types.Object]bool)
	walkUnit(unit.body, func(n ast.Node, parents []ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, a := range acqs {
			if ret.Pos() < a.pos {
				continue // return before the selector exists
			}
			sawReturn[a.obj] = true
			returnsSel := false
			for _, r := range ret.Results {
				ast.Inspect(r, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && c.Pkg.Info.Uses[id] == a.obj {
						returnsSel = true
					}
					return true
				})
			}
			if returnsSel || coveredAt(a, ret.Pos()) {
				continue
			}
			c.Reportf(ret.Pos(), "return leaks selector %s acquired at %s (no Release, store, or hand-off on this path)",
				a.obj.Name(), c.Pkg.Fset.Position(a.pos))
		}
		return true
	})

	// Falling off the end of the body is a return path too.
	for _, a := range acqs {
		if !sawReturn[a.obj] && !coveredAt(a, unit.body.End()) {
			c.Reportf(a.pos, "selector %s is neither Released, stored, nor returned before the function ends", a.obj.Name())
		}
	}
}
