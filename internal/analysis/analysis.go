// Package analysis is hhlint's self-contained static-analysis framework:
// a stdlib-only (go/parser + go/types + go/importer, no external modules)
// pass runner that enforces the engine's concurrency and resource-ownership
// invariants at CI time.
//
// The paper's thesis — replace one monolithic check with many small,
// incremental, memoizable checks (H-Houdini §3) — applies to the codebase
// itself: each invariant the engine's correctness rests on (atomic-only
// Stats counters, single-owner pooled solvers, released selectors, durable
// flush errors, lock scopes) is encoded as one cheap per-package pass, run
// over ./... on every `make ci`, so later work builds on mechanically
// enforced ownership rules instead of tribal knowledge.
//
// Architecture:
//
//   - load.go     parses and type-checks every package of this module using
//     only the standard library (a topological type-check with
//     importer "source" for stdlib dependencies);
//   - suppress.go implements `//hhlint:ignore <pass> <reason>` line-scoped
//     suppressions (a missing reason is itself a diagnostic);
//   - harness.go  is the golden-file test harness: testdata packages carry
//     `// want "regexp"` expectation comments and the harness
//     asserts the diagnostic set matches exactly;
//   - one file per domain pass (atomicstats.go, pooledowner.go,
//     selectorrelease.go, flusherr.go, lockscope.go).
//
// All passes are heuristic, intra-procedural, and deliberately biased
// toward precision: a finding should either be fixed or carry an
// `//hhlint:ignore` with a reason that documents why the invariant holds
// anyway.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Pass is one named invariant checker run over a single package.
type Pass struct {
	// Name is the short pass identifier used in diagnostics and in
	// `//hhlint:ignore <name> <reason>` suppressions.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run inspects ctx.Pkg and reports findings via ctx.Reportf.
	Run func(ctx *Context)
}

// A Diagnostic is one finding: a position, the pass that produced it, and a
// human-readable message.
type Diagnostic struct {
	Pass string `json:"pass"`
	// File is the file path as recorded in the FileSet; Line/Col are
	// 1-based.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Msg  string `json:"msg"`
}

// String renders the conventional `file:line:col: [pass] message` form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Pass, d.Msg)
}

// Context is the per-(pass, package) view handed to Pass.Run.
type Context struct {
	// Pkg is the package under analysis.
	Pkg *Package
	// All is every package of the load (the whole module for hhlint runs, a
	// single testdata package under the test harness). Passes that need
	// module-global facts — e.g. which struct types carry the
	// `hhlint:atomic-counters` annotation — scan All and memoize in Facts.
	All []*Package
	// Facts is a scratch memo shared by every (pass, package) pair of one
	// Run invocation. Keys are pass-prefixed strings; the runner is
	// sequential, so no locking is needed.
	Facts map[string]any

	pass  *Pass
	diags *[]Diagnostic
}

// Reportf records a finding at pos. Suppression filtering happens in the
// runner, not here.
func (c *Context) Reportf(pos token.Pos, format string, args ...any) {
	p := c.Pkg.Fset.Position(pos)
	*c.diags = append(*c.diags, Diagnostic{
		Pass: c.pass.Name,
		File: p.Filename,
		Line: p.Line,
		Col:  p.Column,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// ReportAt records a finding at an explicit file/line (used by the
// interprocedural passes, whose facts may come from the disk memo rather
// than live AST positions). file must be the absolute path as the FileSet
// records it, so suppressions match.
func (c *Context) ReportAt(file string, line int, format string, args ...any) {
	*c.diags = append(*c.diags, Diagnostic{
		Pass: c.pass.Name,
		File: file,
		Line: line,
		Col:  1,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a shorthand for the package's types.Info.TypeOf.
func (c *Context) TypeOf(e ast.Expr) types.Type { return c.Pkg.Info.TypeOf(e) }

// ObjectOf resolves an identifier to its types.Object (Uses then Defs).
func (c *Context) ObjectOf(id *ast.Ident) types.Object {
	if o := c.Pkg.Info.Uses[id]; o != nil {
		return o
	}
	return c.Pkg.Info.Defs[id]
}

// DefaultPasses returns every registered domain pass, ordered by name.
func DefaultPasses() []*Pass {
	ps := []*Pass{
		AtomicStatsPass(),
		ClauseRingPass(),
		CtxFlowPass(),
		FlushErrPass(),
		GoroLeakPass(),
		LockOrderPass(),
		LockScopePass(),
		PanicScopePass(),
		PooledOwnerPass(),
		SelectorReleasePass(),
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Name < ps[j].Name })
	return ps
}

// Facts keys under which the runner publishes the interprocedural layer to
// passes (lockorder, ctxflow, goroleak read these instead of rebuilding).
const (
	factGraph     = "module.graph"
	factSummaries = "module.summaries"
)

// RunOptions configures the interprocedural layer of a Run.
type RunOptions struct {
	// ModuleRoot anchors relative paths in summaries and diagnostics; when
	// empty, the first package's directory is used.
	ModuleRoot string
	// SummaryFile is the on-disk memo path ("" disables the memo: summaries
	// are computed cold and not persisted — the harness mode).
	SummaryFile string
}

// RunStats reports memo effectiveness for one Run (hhlint -v and the CI
// warm/cold self-check read these).
type RunStats struct {
	PkgTotal  int
	PkgHits   int
	FuncTotal int
	FuncHits  int
}

// Run executes every pass over every package and returns the surviving
// diagnostics (suppressions applied, malformed suppressions reported) in
// deterministic file/line/col/pass order.
func Run(pkgs []*Package, passes []*Pass) []Diagnostic {
	diags, _ := RunOpts(pkgs, passes, nil)
	return diags
}

// RunOpts is Run with interprocedural options and memo statistics.
func RunOpts(pkgs []*Package, passes []*Pass, opts *RunOptions) ([]Diagnostic, RunStats) {
	known := make(map[string]bool, len(passes))
	for _, p := range passes {
		known[p.Name] = true
	}

	// Build the interprocedural layer once per Run: the call graph over the
	// whole load, then the summary table (memoized on disk when a summary
	// file is configured). Passes consume both through Facts.
	root := ""
	memoPath := ""
	if opts != nil {
		root = opts.ModuleRoot
		memoPath = opts.SummaryFile
	}
	if root == "" && len(pkgs) > 0 {
		root = pkgs[0].Dir
	}
	graph := BuildCallGraph(pkgs)
	summaries := BuildSummaries(pkgs, graph, root, memoPath)
	stats := RunStats{
		PkgTotal:  summaries.PkgTotal,
		PkgHits:   summaries.PkgHits,
		FuncTotal: summaries.FuncTotal,
		FuncHits:  summaries.FuncHits,
	}

	var raw []Diagnostic
	facts := make(map[string]any)
	facts[factGraph] = graph
	facts[factSummaries] = summaries
	for _, pass := range passes {
		for _, pkg := range pkgs {
			ctx := &Context{Pkg: pkg, All: pkgs, Facts: facts, pass: pass, diags: &raw}
			pass.Run(ctx)
		}
	}
	sup := collectSuppressions(pkgs, known)
	out := append([]Diagnostic(nil), sup.malformed...)
	for _, d := range raw {
		if !sup.matches(d) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Msg < b.Msg
	})
	return out, stats
}

// moduleGraph retrieves the call graph the runner published to Facts.
func moduleGraph(ctx *Context) *CallGraph {
	g, _ := ctx.Facts[factGraph].(*CallGraph)
	return g
}

// moduleSummaries retrieves the summary table the runner published.
func moduleSummaries(ctx *Context) *SummarySet {
	s, _ := ctx.Facts[factSummaries].(*SummarySet)
	return s
}
