package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// walk.go: small AST/type helpers shared by the domain passes. Everything
// here is deliberately simple — passes are intra-procedural and trade
// soundness-in-the-limit for precision on this codebase's idioms (the
// suppression mechanism covers the rest).

// funcUnit is one analyzable body: a FuncDecl or a FuncLit. Passes that
// reason about statement order, return paths or lock scopes analyze each
// unit independently (a closure has its own return paths and lock scope).
type funcUnit struct {
	name  string        // declared name, or "func literal"
	decl  *ast.FuncDecl // nil for literals
	ftype *ast.FuncType // signature (present for both decls and literals)
	body  *ast.BlockStmt
}

// funcUnits yields every function body in the file: each FuncDecl, and each
// FuncLit nested anywhere (including inside other functions).
func funcUnits(f *ast.File) []funcUnit {
	var units []funcUnit
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		units = append(units, funcUnit{name: fd.Name.Name, decl: fd, ftype: fd.Type, body: fd.Body})
	}
	ast.Inspect(f, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != nil {
			units = append(units, funcUnit{name: "func literal", ftype: fl.Type, body: fl.Body})
		}
		return true
	})
	return units
}

// paramObjects returns the set of a unit's parameter objects (the values a
// caller injects — for lockscope, the function values an agent controls).
func paramObjects(c *Context, unit funcUnit) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if unit.ftype == nil || unit.ftype.Params == nil {
		return out
	}
	for _, fl := range unit.ftype.Params.List {
		for _, name := range fl.Names {
			if obj := c.Pkg.Info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// walkUnit traverses a function body in source order with a parent stack,
// NOT descending into nested function literals (each literal is its own
// funcUnit: it has its own return paths, lock scope and defer semantics).
// fn's return value controls descent, as with ast.Inspect.
func walkUnit(body *ast.BlockStmt, fn func(n ast.Node, parents []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// inDefer reports whether the parent chain passes through a DeferStmt
// (i.e. the node executes at function exit, not in statement order).
func inDefer(parents []ast.Node) bool {
	for _, p := range parents {
		if _, ok := p.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// calleeName returns the bare name of a call's callee: "F" for F(...) and
// x.F(...), "" when the callee is not an identifier or selector.
func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// calleeRecv returns the receiver expression of a method-style call
// (x in x.F(...)), or nil.
func calleeRecv(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// isPkgFuncCall reports whether call invokes a package-level function of
// the package with the given import path (e.g. "sync/atomic").
func isPkgFuncCall(c *Context, call *ast.CallExpr, pkgPath string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := c.ObjectOf(id).(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// callResultsIncludeError reports whether the call's static callee has at
// least one result of type error.
func callResultsIncludeError(c *Context, call *ast.CallExpr) bool {
	sig, ok := c.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// isCallbackCall reports whether the call goes through a function-typed
// value an agent can inject: a function-typed parameter of the current
// unit, a struct field of function type, or a package-level function
// variable. Calls through *local* closures are not callbacks — the
// function body itself controls what they do. These are the
// "agent-visible callback" sites the lockscope pass cares about.
func isCallbackCall(c *Context, call *ast.CallExpr, params map[types.Object]bool) bool {
	if _, ok := c.TypeOf(call.Fun).(*types.Signature); !ok {
		return false // conversion, builtin, or type error
	}
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := c.ObjectOf(fn)
		if _, isVar := obj.(*types.Var); !isVar {
			return false
		}
		return params[obj]
	case *ast.SelectorExpr:
		if s, ok := c.Pkg.Info.Selections[fn]; ok {
			return s.Kind() == types.FieldVal
		}
		// Qualified identifier pkg.F: a package-level func variable is
		// mutable, agent-visible state; a declared function is not.
		_, isVar := c.ObjectOf(fn.Sel).(*types.Var)
		return isVar
	}
	// Immediately invoked literals, call results, index expressions: calls
	// through values, but not through *named* state an agent can replace;
	// the pass keeps its focus on stored callbacks.
	return false
}

// isMethodCall reports whether the call is a genuine method invocation
// (x.M(...) resolved through a method selection), as opposed to a
// package-qualified function call like sort.Slice(...).
func isMethodCall(c *Context, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := c.Pkg.Info.Selections[sel]
	return ok && s.Kind() == types.MethodVal
}

// mutexKind classifies a type as sync.Mutex / sync.RWMutex (after pointer
// dereference), returning "" otherwise.
func mutexKind(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	switch obj.Name() {
	case "Mutex", "RWMutex":
		return obj.Name()
	}
	return ""
}

// containsLock reports whether a value of type t embeds a sync lock
// (directly, via struct fields, or via arrays) — i.e. copying the value
// copies a lock.
func containsLock(t types.Type) bool {
	return containsLockRec(t, make(map[types.Type]bool))
}

func containsLockRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if mutexKind(t) != "" {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockRec(u.Elem(), seen)
	}
	return false
}

// docContains reports whether any of the given comment groups mentions the
// marker string (used for `hhlint:atomic-counters`-style annotations).
func docContains(marker string, docs ...*ast.CommentGroup) bool {
	for _, d := range docs {
		if d == nil {
			continue
		}
		for _, c := range d.List {
			if strings.Contains(c.Text, marker) {
				return true
			}
		}
	}
	return false
}

// identObj resolves an expression to the object of its root identifier
// (nil when the expression is not a plain identifier).
func identObj(c *Context, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return c.ObjectOf(id)
}
