package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
)

// summary.go is the interprocedural engine: one FuncSummary per call-graph
// node, computed bottom-up over strongly connected components and memoized
// on disk, mirroring the VerifyCache memo design — compute once, key by
// content fingerprint, answer warm runs from the store.
//
// A summary has two layers:
//
//   - direct facts read off the node's own body (locks acquired/released
//     in linear order, calls made while holding locks, blocking operations
//     on context-less paths, goroutine termination signals, spawned
//     goroutines);
//   - transitive facts composed from callee summaries over the call graph
//     (every lock the function may acquire, whether a blocking operation
//     is reachable with no context to observe, whether a termination
//     signal is reachable, whether an unbounded loop is reachable), with a
//     witness chain preserved for diagnostics.
//
// The memo (.hhcache/lintsumm.json by default) stores both layers keyed by
// a per-package fingerprint: a hash of the package's source bytes, the
// summary schema version, and the fingerprints of its module-internal
// dependencies — so any edit invalidates exactly the packages above it in
// the import DAG, and a warm `make lint` answers every summary below the
// edit from disk. File positions inside stored summaries are module-root-
// relative, so the memo survives checkouts at different paths.

// summaryVersion invalidates the memo when the fact schema or extraction
// rules change.
const summaryVersion = 1

// DefaultSummaryFile is the memo location relative to the module root.
const DefaultSummaryFile = ".hhcache/lintsumm.json"

// LockSite is one direct lock acquisition.
type LockSite struct {
	Lock string `json:"lock"`
	File string `json:"file"`
	Line int    `json:"line"`
}

// TransAcq is one lock in the transitive-acquisition closure, with the
// callee chain that reaches it.
type TransAcq struct {
	Lock string   `json:"lock"`
	File string   `json:"file"`
	Line int      `json:"line"`
	Via  []string `json:"via,omitempty"`
}

// LockEdge is one directly observed ordered pair: Acq was acquired while
// Held was held.
type LockEdge struct {
	Held string `json:"held"`
	Acq  string `json:"acq"`
	File string `json:"file"`
	Line int    `json:"line"`
}

// HeldCall is a resolved call made while holding locks.
type HeldCall struct {
	Callee string   `json:"callee"`
	Held   []string `json:"held"`
	File   string   `json:"file"`
	Line   int      `json:"line"`
}

// SpawnSite is one `go` statement with a resolved target.
type SpawnSite struct {
	Target string `json:"target"`
	File   string `json:"file"`
	Line   int    `json:"line"`
}

// BlockSite is one direct blocking operation (or other positioned fact).
type BlockSite struct {
	Op   string `json:"op"`
	File string `json:"file"`
	Line int    `json:"line"`
}

// Witness is a transitive fact with the callee chain that established it.
type Witness struct {
	Op   string   `json:"op"`
	File string   `json:"file"`
	Line int      `json:"line"`
	Via  []string `json:"via,omitempty"`
}

// FuncSummary is the per-function fact record, JSON-stable for the memo.
type FuncSummary struct {
	Key    string `json:"key"`
	HasCtx bool   `json:"has_ctx,omitempty"`

	// Direct facts.
	Acquires  []LockSite  `json:"acquires,omitempty"`
	LockEdges []LockEdge  `json:"lock_edges,omitempty"`
	HeldCalls []HeldCall  `json:"held_calls,omitempty"`
	Calls     []string    `json:"calls,omitempty"`
	Spawns    []SpawnSite `json:"spawns,omitempty"`
	Blocks    []BlockSite `json:"blocks,omitempty"`
	CtxDrops  []BlockSite `json:"ctx_drops,omitempty"`
	TermSig   string      `json:"term_sig,omitempty"` // "ctx" | "wg" | "chan" | ""
	Loop      *BlockSite  `json:"loop,omitempty"`     // first unbounded `for {}` loop

	// Transitive closure (stored, so memo hits skip recomputation).
	TransAcquires []TransAcq `json:"trans_acquires,omitempty"`
	BlocksNoCtx   *Witness   `json:"blocks_noctx,omitempty"`
	HasTerm       bool       `json:"has_term,omitempty"`
	MayLoop       *Witness   `json:"may_loop,omitempty"`
}

// SummarySet is the module-wide summary table plus memo bookkeeping.
type SummarySet struct {
	// Root is the directory summaries' file paths are relative to.
	Root string
	// Funcs maps summary key → summary for every node of the load.
	Funcs map[string]*FuncSummary

	// perPkg groups summaries by package path for the memo file.
	perPkg map[string]map[string]*FuncSummary
	// fps is the per-package composite fingerprint.
	fps map[string]string

	// Memo effectiveness counters (reported by hhlint -v and checked by
	// the CI warm/cold self-test).
	PkgTotal  int
	PkgHits   int
	FuncTotal int
	FuncHits  int
}

// AbsPath joins a summary-relative path back to an absolute one for
// diagnostics.
func (s *SummarySet) AbsPath(rel string) string {
	if rel == "" || filepath.IsAbs(rel) {
		return rel
	}
	return filepath.Join(s.Root, rel)
}

// memoFile is the on-disk schema.
type memoFile struct {
	Version  int                 `json:"version"`
	Packages map[string]*memoPkg `json:"packages"`
}

type memoPkg struct {
	Fingerprint string                  `json:"fingerprint"`
	Funcs       map[string]*FuncSummary `json:"funcs"`
}

// BuildSummaries computes (or restores) the summary table for the loaded
// packages. root anchors relative paths; memoPath, when non-empty, is the
// memo file to read and rewrite. pkgs must be in load order (dependencies
// first). Memo failures (missing, corrupt, version-skewed) degrade to a
// cold computation, never an error — same contract as the proofdb.
func BuildSummaries(pkgs []*Package, g *CallGraph, root, memoPath string) *SummarySet {
	set := &SummarySet{
		Root:   root,
		Funcs:  map[string]*FuncSummary{},
		perPkg: map[string]map[string]*FuncSummary{},
		fps:    map[string]string{},
	}
	var memo *memoFile
	if memoPath != "" {
		memo = readMemo(memoPath)
	}

	// Composite fingerprints, in dependency order.
	for _, pkg := range pkgs {
		h := sha256.New()
		fmt.Fprintf(h, "v%d\x00%s\x00%s\x00", summaryVersion, pkg.Path, pkg.Hash)
		deps := append([]string(nil), pkg.Imports...)
		sort.Strings(deps)
		for _, d := range deps {
			fmt.Fprintf(h, "%s=%s\x00", d, set.fps[d])
		}
		set.fps[pkg.Path] = hex.EncodeToString(h.Sum(nil))
	}

	// Partition packages into memo hits and fresh work.
	fresh := map[string]bool{}
	for _, pkg := range pkgs {
		set.PkgTotal++
		if memo != nil {
			if mp := memo.Packages[pkg.Path]; mp != nil && mp.Fingerprint == set.fps[pkg.Path] {
				set.PkgHits++
				set.perPkg[pkg.Path] = mp.Funcs
				for k, fs := range mp.Funcs {
					set.Funcs[k] = fs
					set.FuncHits++
					set.FuncTotal++
				}
				continue
			}
		}
		fresh[pkg.Path] = true
	}

	// Direct facts for every node of a fresh package.
	var freshNodes []*CGNode
	for _, n := range g.Nodes {
		if !fresh[n.Pkg.Path] {
			continue
		}
		fs := directFacts(n, g, root)
		set.Funcs[n.Key] = fs
		pp := set.perPkg[n.Pkg.Path]
		if pp == nil {
			pp = map[string]*FuncSummary{}
			set.perPkg[n.Pkg.Path] = pp
		}
		pp[n.Key] = fs
		freshNodes = append(freshNodes, n)
		set.FuncTotal++
	}

	// Transitive closure over the fresh subgraph, callee-first: Tarjan
	// emits SCCs in reverse topological order of the condensation, so each
	// popped component sees final callee facts; mutual recursion inside a
	// component iterates to a fixpoint.
	for _, scc := range tarjanSCC(freshNodes, func(n *CGNode) []*CGNode {
		var out []*CGNode
		for _, e := range n.Out {
			if e.Kind != KindGo && fresh[e.Callee.Pkg.Path] {
				out = append(out, e.Callee)
			}
		}
		return out
	}) {
		for changed := true; changed; {
			changed = false
			for _, n := range scc {
				if composeTransitive(set.Funcs[n.Key], set.Funcs) {
					changed = true
				}
			}
		}
	}

	if memoPath != "" {
		writeMemo(memoPath, set)
	}
	return set
}

// composeTransitive folds callee closures into fs, reporting whether
// anything changed (the SCC fixpoint condition).
func composeTransitive(fs *FuncSummary, all map[string]*FuncSummary) bool {
	changed := false

	// Seed the lock closure with the direct acquisitions.
	have := map[string]bool{}
	for _, ta := range fs.TransAcquires {
		have[ta.Lock] = true
	}
	for _, a := range fs.Acquires {
		if !have[a.Lock] {
			fs.TransAcquires = append(fs.TransAcquires, TransAcq{Lock: a.Lock, File: a.File, Line: a.Line})
			have[a.Lock] = true
			changed = true
		}
	}
	for _, callee := range fs.Calls {
		cs := all[callee]
		if cs == nil {
			continue
		}
		for _, ta := range cs.TransAcquires {
			if have[ta.Lock] {
				continue
			}
			via := append([]string{callee}, ta.Via...)
			if len(via) > 6 {
				via = via[:6] // cap witness depth; the head is what matters
			}
			fs.TransAcquires = append(fs.TransAcquires, TransAcq{Lock: ta.Lock, File: ta.File, Line: ta.Line, Via: via})
			have[ta.Lock] = true
			changed = true
		}
		// A context-less blocking path through a callee. Callees that take
		// a context account for their own blocking at their own report
		// sites, so the chain stops there.
		if fs.BlocksNoCtx == nil && !fs.HasCtx && cs.BlocksNoCtx != nil {
			via := append([]string{callee}, cs.BlocksNoCtx.Via...)
			if len(via) > 6 {
				via = via[:6]
			}
			fs.BlocksNoCtx = &Witness{Op: cs.BlocksNoCtx.Op, File: cs.BlocksNoCtx.File, Line: cs.BlocksNoCtx.Line, Via: via}
			changed = true
		}
		if !fs.HasTerm && cs.HasTerm {
			fs.HasTerm = true
			changed = true
		}
		if fs.MayLoop == nil && cs.MayLoop != nil {
			via := append([]string{callee}, cs.MayLoop.Via...)
			if len(via) > 6 {
				via = via[:6]
			}
			fs.MayLoop = &Witness{Op: cs.MayLoop.Op, File: cs.MayLoop.File, Line: cs.MayLoop.Line, Via: via}
			changed = true
		}
	}
	if fs.BlocksNoCtx == nil && !fs.HasCtx && len(fs.Blocks) > 0 {
		b := fs.Blocks[0]
		fs.BlocksNoCtx = &Witness{Op: b.Op, File: b.File, Line: b.Line}
		changed = true
	}
	if !fs.HasTerm && fs.TermSig != "" {
		fs.HasTerm = true
		changed = true
	}
	if fs.MayLoop == nil && fs.Loop != nil {
		fs.MayLoop = &Witness{Op: fs.Loop.Op, File: fs.Loop.File, Line: fs.Loop.Line}
		changed = true
	}
	return changed
}

// tarjanSCC computes strongly connected components over nodes, emitted in
// reverse topological order of the condensation (every component before
// its callers).
func tarjanSCC(nodes []*CGNode, succ func(*CGNode) []*CGNode) [][]*CGNode {
	index := map[*CGNode]int{}
	low := map[*CGNode]int{}
	onStack := map[*CGNode]bool{}
	var stack []*CGNode
	var sccs [][]*CGNode
	next := 0

	var strong func(n *CGNode)
	strong = func(n *CGNode) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, m := range succ(n) {
			if _, seen := index[m]; !seen {
				strong(m)
				if low[m] < low[n] {
					low[n] = low[m]
				}
			} else if onStack[m] && index[m] < low[n] {
				low[n] = index[m]
			}
		}
		if low[n] == index[n] {
			var scc []*CGNode
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strong(n)
		}
	}
	return sccs
}

// --- Memo I/O ----------------------------------------------------------------

// readMemo loads the memo file, returning nil (cold start) on any failure.
func readMemo(path string) *memoFile {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var m memoFile
	if json.Unmarshal(data, &m) != nil || m.Version != summaryVersion || m.Packages == nil {
		return nil
	}
	return &m
}

// writeMemo persists the full summary table atomically (temp file +
// rename, the proofdb flush discipline minus the fsync: a torn memo only
// costs a cold relint). Write failures are silently ignored — the memo is
// an accelerator, not a correctness dependency.
func writeMemo(path string, set *SummarySet) {
	m := memoFile{Version: summaryVersion, Packages: map[string]*memoPkg{}}
	for pkgPath, funcs := range set.perPkg {
		m.Packages[pkgPath] = &memoPkg{Fingerprint: set.fps[pkgPath], Funcs: funcs}
	}
	data, err := json.Marshal(&m)
	if err != nil {
		return
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".lintsumm-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if os.Rename(name, path) != nil {
		os.Remove(name)
	}
}

// --- Direct-fact extraction ---------------------------------------------------

// directFacts scans one node's body (go-spawned literals and escaping
// closures excluded — they are their own nodes or unknown contexts).
func directFacts(n *CGNode, g *CallGraph, root string) *FuncSummary {
	fs := &FuncSummary{Key: n.Key, HasCtx: nodeHasCtx(n)}
	relPos := func(p token.Pos) (string, int) {
		posn := n.Pkg.Fset.Position(p)
		file := posn.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) {
			file = rel
		}
		return filepath.ToSlash(file), posn.Line
	}

	// Calls and spawns come straight off the graph edges.
	for _, e := range n.Out {
		file, line := relPos(e.Pos)
		switch e.Kind {
		case KindGo:
			fs.Spawns = append(fs.Spawns, SpawnSite{Target: e.Callee.Key, File: file, Line: line})
		default:
			fs.Calls = append(fs.Calls, e.Callee.Key)
		}
	}
	sort.Strings(fs.Calls)
	fs.Calls = dedupStrings(fs.Calls)

	held := map[string]bool{}
	heldList := func() []string {
		out := make([]string, 0, len(held))
		for k := range held {
			out = append(out, k)
		}
		sort.Strings(out)
		return out
	}
	acquired := map[string]bool{}
	termCtx, termWG, termChan := false, false, false

	// selectInfo caches per-select classification; commExprs marks channel
	// operations that belong to a select's comm clauses (accounted at the
	// select level, not individually).
	guardedSelect := map[*ast.SelectStmt]bool{}
	commOps := map[ast.Node]bool{}

	walkNodeBody(n, func(nd ast.Node, parents []ast.Node) bool {
		switch x := nd.(type) {
		case *ast.SelectStmt:
			guarded, hasDefault := false, false
			for _, cl := range x.Body.List {
				comm, ok := cl.(*ast.CommClause)
				if !ok {
					continue
				}
				if comm.Comm == nil {
					hasDefault = true
					continue
				}
				for _, op := range commChanOps(comm.Comm) {
					commOps[op] = true
					if recv, ok := op.(*ast.UnaryExpr); ok {
						if isCtxDoneRecv(n.Pkg, recv) {
							guarded = true
							termCtx = true
						} else {
							termChan = true
						}
					}
				}
			}
			guardedSelect[x] = guarded || hasDefault
			if !guarded && !hasDefault {
				file, line := relPos(x.Pos())
				fs.Blocks = append(fs.Blocks, BlockSite{Op: "select with no ctx.Done case", File: file, Line: line})
			}
			return true

		case *ast.SendStmt:
			if !commOps[x] {
				file, line := relPos(x.Pos())
				fs.Blocks = append(fs.Blocks, BlockSite{Op: "channel send", File: file, Line: line})
			}
			return true

		case *ast.UnaryExpr:
			if x.Op != token.ARROW || commOps[x] {
				return true
			}
			if isCtxDoneRecv(n.Pkg, x) {
				termCtx = true
				return true
			}
			termChan = true
			file, line := relPos(x.Pos())
			fs.Blocks = append(fs.Blocks, BlockSite{Op: "channel receive", File: file, Line: line})
			return true

		case *ast.RangeStmt:
			if t := n.Pkg.Info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					termChan = true
					file, line := relPos(x.Pos())
					fs.Blocks = append(fs.Blocks, BlockSite{Op: "range over channel", File: file, Line: line})
				}
			}
			return true

		case *ast.ForStmt:
			if x.Init == nil && x.Cond == nil && x.Post == nil && fs.Loop == nil {
				file, line := relPos(x.Pos())
				fs.Loop = &BlockSite{Op: "for {} loop", File: file, Line: line}
			}
			return true

		case *ast.CallExpr:
			fileOf := func() (string, int) { return relPos(x.Pos()) }

			// Lock-state transitions (incl. methods promoted from an
			// embedded mutex).
			if class, op, ok := lockOp(n.Pkg, x); ok {
				if class == "" {
					return true // local mutex: no cross-function order
				}
				switch op {
				case "Lock", "RLock":
					file, line := fileOf()
					for _, h := range heldList() {
						if h != class {
							fs.LockEdges = append(fs.LockEdges, LockEdge{Held: h, Acq: class, File: file, Line: line})
						}
					}
					if !acquired[class] {
						acquired[class] = true
						fs.Acquires = append(fs.Acquires, LockSite{Lock: class, File: file, Line: line})
					}
					held[class] = true
				case "Unlock", "RUnlock":
					if !inDefer(parents) {
						delete(held, class)
					}
				}
				return true
			}

			// Blocking / termination stdlib calls.
			switch stdlibCallKind(n.Pkg, x) {
			case "time.Sleep":
				file, line := fileOf()
				fs.Blocks = append(fs.Blocks, BlockSite{Op: "time.Sleep", File: file, Line: line})
			case "cond.Wait":
				file, line := fileOf()
				fs.Blocks = append(fs.Blocks, BlockSite{Op: "sync.Cond.Wait", File: file, Line: line})
			case "wg.Done":
				termWG = true
			case "ctx.Done", "ctx.Err":
				termCtx = true
			}

			// Dropped context: a context-bearing function handing a callee
			// context.Background()/TODO() instead of its own ctx.
			if fs.HasCtx && len(x.Args) > 0 {
				if sig, ok := n.Pkg.Info.TypeOf(x.Fun).(*types.Signature); ok &&
					sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type()) {
					if bg := backgroundCtxCall(n.Pkg, x.Args[0]); bg != "" {
						file, line := fileOf()
						fs.CtxDrops = append(fs.CtxDrops, BlockSite{
							Op:   fmt.Sprintf("%s(context.%s(), …) drops the caller's ctx", callLabel(x), bg),
							File: file, Line: line,
						})
					}
				}
			}

			// Calls made while holding a lock.
			if len(held) > 0 {
				if callee := resolveCallee(n, x); callee != nil {
					if t := g.NodeFor(callee); t != nil {
						file, line := fileOf()
						fs.HeldCalls = append(fs.HeldCalls, HeldCall{Callee: t.Key, Held: heldList(), File: file, Line: line})
					}
				}
			}
			return true
		}
		return true
	})

	switch {
	case termCtx:
		fs.TermSig = "ctx"
	case termWG:
		fs.TermSig = "wg"
	case termChan:
		fs.TermSig = "chan"
	}
	return fs
}

// walkNodeBody traverses a node's body in source order with a parent
// stack, skipping go-spawned literals (their own nodes) and escaping
// literals (unknown execution context); deferred and immediately invoked
// literals are descended into.
func walkNodeBody(n *CGNode, fn func(nd ast.Node, parents []ast.Node) bool) {
	inlined := map[*ast.FuncLit]bool{}
	var stack []ast.Node
	ast.Inspect(n.Body(), func(nd ast.Node) bool {
		if nd == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		switch x := nd.(type) {
		case *ast.GoStmt:
			if _, ok := x.Call.Fun.(*ast.FuncLit); ok {
				// Spawned literal: its body is a child node. The spawn
				// itself is already in fs.Spawns via the graph.
				return false
			}
		case *ast.DeferStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				inlined[lit] = true
			}
		case *ast.CallExpr:
			if lit, ok := x.Fun.(*ast.FuncLit); ok {
				inlined[lit] = true
			}
		case *ast.FuncLit:
			if !inlined[x] {
				return false
			}
		}
		if !fn(nd, stack) {
			return false
		}
		stack = append(stack, nd)
		return true
	})
}

// nodeHasCtx reports whether the node's signature takes a context.Context
// parameter.
func nodeHasCtx(n *CGNode) bool {
	var sig *types.Signature
	if n.Fn != nil {
		sig, _ = n.Fn.Type().(*types.Signature)
	} else if t := n.Pkg.Info.TypeOf(n.Lit); t != nil {
		sig, _ = t.(*types.Signature)
	}
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// commChanOps extracts the channel operations of one select comm statement.
func commChanOps(s ast.Stmt) []ast.Node {
	var ops []ast.Node
	switch st := s.(type) {
	case *ast.SendStmt:
		ops = append(ops, st)
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(st.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			ops = append(ops, u)
		}
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			if u, ok := ast.Unparen(r).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				ops = append(ops, u)
			}
		}
	}
	return ops
}

// isCtxDoneRecv reports whether recv is `<-ctx.Done()` for a
// context.Context-typed ctx.
func isCtxDoneRecv(pkg *Package, recv *ast.UnaryExpr) bool {
	call, ok := ast.Unparen(recv.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	return isContextType(pkg.Info.TypeOf(sel.X))
}

// stdlibCallKind classifies the blocking / termination-signal stdlib calls
// the summary engine cares about.
func stdlibCallKind(pkg *Package, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	// Package-qualified: time.Sleep.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
			if pn.Imported().Path() == "time" && name == "Sleep" {
				return "time.Sleep"
			}
			return ""
		}
	}
	// Methods: resolve the receiver's type.
	recvT := pkg.Info.TypeOf(sel.X)
	switch {
	case name == "Wait" && isSyncType(recvT, "Cond"):
		return "cond.Wait"
	case name == "Done" && isSyncType(recvT, "WaitGroup"):
		return "wg.Done"
	case name == "Done" && isContextType(recvT):
		return "ctx.Done"
	case name == "Err" && isContextType(recvT):
		return "ctx.Err"
	}
	return ""
}

// isSyncType reports whether t is sync.<name> (after pointer deref).
func isSyncType(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

// backgroundCtxCall reports "Background"/"TODO" when e is a direct
// context.Background()/context.TODO() call, else "".
func backgroundCtxCall(pkg *Package, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "context" {
		return ""
	}
	if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
		return sel.Sel.Name
	}
	return ""
}

// callLabel renders a short source-ish label for a call's callee.
func callLabel(call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}

// lockOp classifies call as a mutex Lock/RLock/Unlock/RUnlock, returning
// the lock class ("" for locks with no cross-function identity, e.g.
// local variables) and the operation name. The class abstracts instances
// to their declaration site: "pkg.Type.field" for a mutex struct field,
// "pkg.Type" for a type with an embedded mutex, "pkg.var" for a
// package-level mutex variable.
func lockOp(pkg *Package, call *ast.CallExpr) (class, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	s, isMethod := pkg.Info.Selections[sel]
	if !isMethod || s.Kind() != types.MethodVal {
		return "", "", false
	}
	m, _ := s.Obj().(*types.Func)
	if m == nil || m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return "", "", false
	}
	return lockClass(pkg, sel.X), op, true
}

// lockClass names the lock an expression denotes, abstracted to its
// declaration site.
func lockClass(pkg *Package, expr ast.Expr) string {
	expr = ast.Unparen(expr)
	t := pkg.Info.TypeOf(expr)
	if mutexKind(t) == "" {
		// Promoted method from an embedded mutex: classify by the outer
		// named type.
		if name := namedTypeName(t); name != "" {
			return name
		}
		return ""
	}
	switch x := expr.(type) {
	case *ast.SelectorExpr:
		// A mutex struct field: owner type + field name.
		if owner := namedTypeName(pkg.Info.TypeOf(x.X)); owner != "" {
			return owner + "." + x.Sel.Name
		}
		// Package-qualified variable: pkg.Mu.
		if id, ok := x.X.(*ast.Ident); ok {
			if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
				return pn.Imported().Path() + "." + x.Sel.Name
			}
		}
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		if obj == nil {
			obj = pkg.Info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	return "" // locals and anonymous shapes: no stable identity
}

// namedTypeName renders a type's "pkgpath.Name" (after pointer deref), or
// "" for unnamed types.
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

func dedupStrings(in []string) []string {
	out := in[:0]
	var prev string
	for i, s := range in {
		if i == 0 || s != prev {
			out = append(out, s)
		}
		prev = s
	}
	return out
}

// DumpSummaries renders the summary table as indented JSON for the
// -summaries debug flag.
func DumpSummaries(set *SummarySet) string {
	keys := make([]string, 0, len(set.Funcs))
	for k := range set.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make([]*FuncSummary, 0, len(keys))
	for _, k := range keys {
		ordered = append(ordered, set.Funcs[k])
	}
	data, err := json.MarshalIndent(ordered, "", "  ")
	if err != nil {
		return ""
	}
	return string(data)
}
