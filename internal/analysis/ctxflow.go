package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// ctxflow enforces the module's cancellation contract interprocedurally: a
// function that receives a context.Context must actually let that context
// interrupt it. Two violation shapes, both read off the summaries:
//
//   - dropping the context: handing a ctx-accepting callee
//     context.Background() / context.TODO() instead of the caller's own
//     ctx severs the cancellation chain at that call;
//   - blocking without it: reaching a blocking operation — channel
//     send/receive, select with no ctx.Done case (a `default` case also
//     unblocks), sync.Cond.Wait, time.Sleep — either directly in the
//     ctx-bearing body or through a chain of ctx-less callees. A callee
//     that itself takes a context is the end of the caller's
//     responsibility: its own body is checked at its own site.
//
// This extends the servectx fixture's single-handler shape to the whole
// module: PR 8's serve layer threads one ctx from HTTP handler to job
// execution to solver, and a ctx-less sleep anywhere on that path turns
// graceful drain into a stall.

// CtxFlowPass returns the ctxflow pass.
func CtxFlowPass() *Pass {
	return &Pass{
		Name: "ctxflow",
		Doc:  "ctx-bearing functions must thread ctx to callees and not block on ctx-less paths",
		Run:  runCtxFlow,
	}
}

func runCtxFlow(ctx *Context) {
	// Module-global: summaries span the load; run once per Run.
	if ctx.Facts["ctxflow.ran"] != nil {
		return
	}
	ctx.Facts["ctxflow.ran"] = true
	set := moduleSummaries(ctx)
	if set == nil {
		return
	}

	keys := make([]string, 0, len(set.Funcs))
	for k := range set.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// reported dedups (site, caller) pairs: several call edges from one
	// ctx-bearing function into the same blocking chain collapse to one
	// finding.
	reported := map[string]bool{}
	for _, k := range keys {
		fs := set.Funcs[k]
		if !fs.HasCtx {
			continue
		}
		for _, drop := range fs.CtxDrops {
			ctx.ReportAt(set.AbsPath(drop.File), drop.Line,
				"%s receives a ctx but %s", shortFunc(k), drop.Op)
		}
		// Direct blocking operations in the ctx-bearing body itself.
		for _, b := range fs.Blocks {
			key := fmt.Sprintf("%s\x00%s\x00%d", k, b.File, b.Line)
			if reported[key] {
				continue
			}
			reported[key] = true
			ctx.ReportAt(set.AbsPath(b.File), b.Line,
				"%s receives a ctx but blocks here without observing it (%s)", shortFunc(k), b.Op)
		}
		// Blocking reached through ctx-less callees.
		for _, callee := range fs.Calls {
			cs := set.Funcs[callee]
			if cs == nil || cs.BlocksNoCtx == nil {
				continue
			}
			w := cs.BlocksNoCtx
			key := fmt.Sprintf("%s\x00%s\x00%d", k, w.File, w.Line)
			if reported[key] {
				continue
			}
			reported[key] = true
			chain := append([]string{callee}, w.Via...)
			short := make([]string, len(chain))
			for i, c := range chain {
				short[i] = shortFunc(c)
			}
			ctx.ReportAt(set.AbsPath(w.File), w.Line,
				"%s receives a ctx but reaches this blocking %s through ctx-less path %s",
				shortFunc(k), w.Op, strings.Join(short, " -> "))
		}
	}
}

// shortFunc strips the package path qualifier from a summary key —
// "(*hhoudini/internal/serve.Server).Drain" → "(*serve.Server).Drain" —
// enough for a human, short enough for a diagnostic line.
func shortFunc(key string) string {
	i := strings.LastIndex(key, "/")
	if i < 0 {
		return key
	}
	tail := key[i+1:]
	switch {
	case strings.HasPrefix(key, "(*"):
		return "(*" + tail
	case strings.HasPrefix(key, "("):
		return "(" + tail
	}
	return tail
}
