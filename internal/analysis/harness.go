package analysis

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// harness.go is the golden-file expectation harness: testdata packages
// annotate the lines where a pass must report with
//
//	// want "regexp"
//	// want "first" "second"        (two diagnostics expected on the line)
//
// and CheckPackage asserts the diagnostic set matches the expectation set
// exactly — every diagnostic must match a `want` on its line, every `want`
// must be consumed by exactly one diagnostic, no more, no less. The same
// mechanism golang.org/x/tools/go/analysis/analysistest uses, rebuilt here
// stdlib-only.

// wantRe matches one quoted expectation; several may follow one `// want`.
var wantRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// expectation is one `want` entry: a line and a regexp the diagnostic
// message (including its [pass] tag) must match.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	used bool
}

// collectWants parses every `// want ...` comment of a loaded package.
func collectWants(pkg *Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				matches := wantRe.FindAllString(rest, -1)
				if len(matches) == 0 {
					return nil, fmt.Errorf("%s:%d: malformed want comment (no quoted regexp)", pos.Filename, pos.Line)
				}
				for _, m := range matches {
					unq, err := strconv.Unquote(m)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, m, err)
					}
					re, err := regexp.Compile(unq)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, unq, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, re: re, raw: unq,
					})
				}
			}
		}
	}
	return wants, nil
}

// TB is the subset of *testing.T the harness needs (kept as an interface so
// the harness itself is testable).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// CheckPackage loads the testdata package in dir, runs the given passes
// over it, and asserts the diagnostics equal the package's `// want`
// expectations exactly. It returns the surviving diagnostics for further
// assertions.
func CheckPackage(t TB, dir string, passes ...*Pass) []Diagnostic {
	t.Helper()
	pkg, err := LoadPackage(dir)
	if err != nil {
		t.Errorf("load %s: %v", dir, err)
		return nil
	}
	diags := Run([]*Package{pkg}, passes)
	wants, err := collectWants(pkg)
	if err != nil {
		t.Errorf("%v", err)
		return diags
	}
	MatchExpectations(t, diags, wants)
	return diags
}

// MatchExpectations performs the exact-set comparison: every diagnostic
// consumes one matching expectation on its line; leftovers on either side
// are test failures.
func MatchExpectations(t TB, diags []Diagnostic, wants []*expectation) {
	t.Helper()
	for _, d := range diags {
		msg := "[" + d.Pass + "] " + d.Msg
		matched := false
		for _, w := range wants {
			if w.used || w.file != d.File || w.line != d.Line {
				continue
			}
			if w.re.MatchString(msg) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic:\n\t%s", d.String())
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.used {
			t.Errorf("expected diagnostic not reported:\n\t%s:%d: want %q", w.file, w.line, w.raw)
		}
	}
}
