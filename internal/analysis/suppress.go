package analysis

import (
	"strings"
)

// Suppression comments let a human assert that an invariant holds for
// reasons the heuristic passes cannot see. The syntax is
//
//	//hhlint:ignore <pass>[,<pass>...] <reason>
//
// and the scope is line-local: a trailing comment suppresses findings on
// its own line, a standalone comment suppresses findings on the next
// non-comment line. The reason is mandatory — a suppression without one is
// itself reported (pass name "hhlint"), so every silenced finding carries
// its justification in the source.
//
// `//hhlint:ignore all <reason>` silences every pass on the target line.

const (
	ignorePrefix = "hhlint:ignore"
	// SuppressionPass is the pseudo-pass name used for malformed
	// suppression diagnostics.
	SuppressionPass = "hhlint"
)

// suppressionIndex maps (file, line) to the set of suppressed pass names.
type suppressionIndex struct {
	// byLine: file → line → pass set ("all" suppresses everything).
	byLine    map[string]map[int]map[string]bool
	malformed []Diagnostic
}

func (s *suppressionIndex) matches(d Diagnostic) bool {
	lines := s.byLine[d.File]
	if lines == nil {
		return false
	}
	set := lines[d.Line]
	if set == nil {
		return false
	}
	return set["all"] || set[d.Pass]
}

// collectSuppressions scans every comment of every package once. known is
// the set of valid pass names: an ignore naming an unknown pass is
// malformed (typos must not silently disable enforcement).
func collectSuppressions(pkgs []*Package, known map[string]bool) *suppressionIndex {
	idx := &suppressionIndex{byLine: make(map[string]map[int]map[string]bool)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := ignoreText(c.Text)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Slash)
					passes, reason := splitIgnore(text)
					if len(passes) == 0 || reason == "" {
						idx.malformed = append(idx.malformed, Diagnostic{
							Pass: SuppressionPass,
							File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Msg: "malformed suppression: want //hhlint:ignore <pass>[,<pass>...] <reason>",
						})
						continue
					}
					bad := false
					for _, p := range passes {
						if p != "all" && !known[p] {
							idx.malformed = append(idx.malformed, Diagnostic{
								Pass: SuppressionPass,
								File: pos.Filename, Line: pos.Line, Col: pos.Column,
								Msg: "suppression names unknown pass " + quote(p),
							})
							bad = true
						}
					}
					if bad {
						continue
					}
					// Trailing comments suppress their own line; standalone
					// comments suppress the next line. Distinguishing the
					// two from the AST alone is fiddly, so both lines are
					// suppressed — the scope stays line-local either way.
					addLine(idx, pos.Filename, pos.Line, passes)
					addLine(idx, pos.Filename, pos.Line+1, passes)
				}
			}
		}
	}
	return idx
}

func addLine(idx *suppressionIndex, file string, line int, passes []string) {
	lines := idx.byLine[file]
	if lines == nil {
		lines = make(map[int]map[string]bool)
		idx.byLine[file] = lines
	}
	set := lines[line]
	if set == nil {
		set = make(map[string]bool)
		lines[line] = set
	}
	for _, p := range passes {
		set[p] = true
	}
}

// ignoreText extracts the payload after "hhlint:ignore" from a comment, or
// reports false if the comment is not a suppression.
func ignoreText(comment string) (string, bool) {
	text := strings.TrimPrefix(comment, "//")
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSuffix(text, "*/")
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, ignorePrefix)
	if !ok {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// splitIgnore splits "pass1,pass2 reason words" into pass names and reason.
func splitIgnore(text string) (passes []string, reason string) {
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return nil, ""
	}
	for _, p := range strings.Split(fields[0], ",") {
		if p = strings.TrimSpace(p); p != "" {
			passes = append(passes, p)
		}
	}
	reason = strings.TrimSpace(strings.TrimPrefix(text, fields[0]))
	return passes, reason
}

func quote(s string) string { return "\"" + s + "\"" }
