package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The atomicstats pass enforces the Stats counter discipline: a struct
// whose doc comment carries the `hhlint:atomic-counters` annotation
// declares that every plain-int64 field is a counter updated concurrently
// on the hot path. Mixing atomic and plain access to such a field is a real
// data race (the Go memory model gives a plain read racing an atomic.Add
// undefined meaning), so:
//
//   - every read and write must go through sync/atomic with &x.Field as the
//     address argument;
//   - plain reads are additionally allowed in package main — the
//     post-Learn accessor set: CLI drivers and experiment harnesses read
//     counters after Learn has returned and its workers have joined;
//   - plain writes are flagged everywhere, package main included;
//   - taking a counter's address outside a sync/atomic call is flagged
//     (the address could be used for plain access elsewhere).
//
// Fields whose type is a *named* int64 (e.g. time.Duration) are not
// counters; neither are fields of other widths. Composite literals do not
// count as access: construction happens before the value is published.
const atomicMarker = "hhlint:atomic-counters"

// AtomicStatsPass returns the atomicstats pass.
func AtomicStatsPass() *Pass {
	return &Pass{
		Name: "atomicstats",
		Doc:  "counter fields of hhlint:atomic-counters structs must use sync/atomic",
		Run:  runAtomicStats,
	}
}

// counterFacts maps the field object of every annotated counter to its
// "Struct.Field" display name.
type counterFacts map[*types.Var]string

func atomicCounters(c *Context) counterFacts {
	const key = "atomicstats.counters"
	if f, ok := c.Facts[key]; ok {
		return f.(counterFacts)
	}
	facts := make(counterFacts)
	for _, pkg := range c.All {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if !docContains(atomicMarker, gd.Doc, ts.Doc, ts.Comment) {
						continue
					}
					obj, ok := pkg.Info.Defs[ts.Name]
					if !ok {
						continue
					}
					st, ok := obj.Type().Underlying().(*types.Struct)
					if !ok {
						continue
					}
					for i := 0; i < st.NumFields(); i++ {
						fld := st.Field(i)
						if b, ok := fld.Type().(*types.Basic); ok && (b.Kind() == types.Int64 || b.Kind() == types.Uint64 || b.Kind() == types.Int32 || b.Kind() == types.Uint32) {
							facts[fld] = ts.Name.Name + "." + fld.Name()
						}
					}
				}
			}
		}
	}
	c.Facts[key] = facts
	return facts
}

func runAtomicStats(c *Context) {
	counters := atomicCounters(c)
	if len(counters) == 0 {
		return
	}
	isMain := c.Pkg.Types != nil && c.Pkg.Types.Name() == "main"

	for _, file := range c.Pkg.Files {
		// First: collect the selector expressions sanctioned by appearing
		// as &x.F inside a sync/atomic call.
		sanctioned := make(map[*ast.SelectorExpr]bool)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPkgFuncCall(c, call, "sync/atomic") {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
					sanctioned[sel] = true
				}
			}
			return true
		})

		// Second: classify every counter-field selector by its parent.
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if s, ok := c.Pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
					if name, isCounter := counters[fieldVarOf(s)]; isCounter && !sanctioned[sel] {
						reportCounterAccess(c, sel, name, stack, isMain)
					}
				}
			}
			stack = append(stack, n)
			return true
		})
	}
}

// fieldVarOf returns the field object a FieldVal selection resolves to.
func fieldVarOf(s *types.Selection) *types.Var {
	v, _ := s.Obj().(*types.Var)
	return v
}

// reportCounterAccess classifies an unsanctioned counter access from its
// parent chain and reports accordingly.
func reportCounterAccess(c *Context, sel *ast.SelectorExpr, name string, stack []ast.Node, isMain bool) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.UnaryExpr:
			if p.Op == token.AND && ast.Unparen(p.X) == sel {
				c.Reportf(sel.Pos(), "address of atomic counter %s escapes outside a sync/atomic call", name)
				return
			}
		case *ast.IncDecStmt:
			if ast.Unparen(p.X) == sel {
				c.Reportf(sel.Pos(), "plain write to atomic counter %s (use sync/atomic)", name)
				return
			}
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if ast.Unparen(lhs) == sel {
					c.Reportf(sel.Pos(), "plain write to atomic counter %s (use sync/atomic)", name)
					return
				}
			}
		case *ast.SelectorExpr:
			// sel is the X of a deeper selector (x.Stats.Field has the
			// counter as the outer selector, so this arm is for chains
			// where the counter itself is further selected — impossible
			// for basic fields, but stay conservative).
			continue
		}
		break
	}
	if isMain {
		return // post-Learn accessor set: reads from package main are fine
	}
	c.Reportf(sel.Pos(), "plain read of atomic counter %s (use atomic.Load*, or read from package main after Learn)", name)
}
