package analysis

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestCallGraphEdges pins the call-graph shapes the summary engine depends
// on: plain call edges, tagged go/defer edges, and spawned-literal child
// nodes with ·goN keys.
func TestCallGraphEdges(t *testing.T) {
	pkg, err := LoadPackage(filepath.Join("testdata", "src", "goroleak"))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	g := BuildCallGraph([]*Package{pkg})
	dump := DumpGraph(g)
	for _, want := range []string{
		"goroleak.spawnNamed -> goroleak.spin [go]",
		"goroleak.spawnLit -> goroleak.spawnLit·go1 [go]",
		"goroleak.spawnLit·go1 -> goroleak.step [call]",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("call graph missing edge %q;\ngraph:\n%s", want, dump)
		}
	}
	if g.ByKey["goroleak.spawnLit·go1"] == nil {
		t.Errorf("spawned literal did not become a child node")
	}
}

// TestSummaryMemo pins the disk-memo contract: a second build over
// unchanged sources answers every package from the memo and yields an
// identical summary table; an edit invalidates exactly the touched
// package.
func TestSummaryMemo(t *testing.T) {
	// Work on a throwaway copy so the edit step cannot dirty testdata.
	src := filepath.Join("testdata", "src", "lockorder")
	dir := t.TempDir()
	data, err := os.ReadFile(filepath.Join(src, "lockorder.go"))
	if err != nil {
		t.Fatalf("read fixture: %v", err)
	}
	work := filepath.Join(dir, "lockorder")
	if err := os.MkdirAll(work, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(work, "lockorder.go"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	memo := filepath.Join(dir, "lintsumm.json")

	load := func() (*Package, *CallGraph) {
		pkg, err := LoadPackage(work)
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		return pkg, BuildCallGraph([]*Package{pkg})
	}

	pkg, g := load()
	cold := BuildSummaries([]*Package{pkg}, g, work, memo)
	if cold.PkgHits != 0 || cold.FuncHits != 0 {
		t.Errorf("cold build reported hits: %d/%d pkgs, %d/%d funcs",
			cold.PkgHits, cold.PkgTotal, cold.FuncHits, cold.FuncTotal)
	}
	if _, err := os.Stat(memo); err != nil {
		t.Fatalf("memo not written: %v", err)
	}

	pkg2, g2 := load()
	warm := BuildSummaries([]*Package{pkg2}, g2, work, memo)
	if warm.PkgHits != warm.PkgTotal || warm.PkgHits == 0 {
		t.Errorf("warm build: %d/%d package hits, want full", warm.PkgHits, warm.PkgTotal)
	}
	if warm.FuncHits != warm.FuncTotal || warm.FuncHits == 0 {
		t.Errorf("warm build: %d/%d function hits, want full", warm.FuncHits, warm.FuncTotal)
	}
	if !reflect.DeepEqual(cold.Funcs, warm.Funcs) {
		t.Errorf("memo-restored summary table differs from cold computation")
	}

	// An edit (any content change) must invalidate the package fingerprint.
	edited := append([]byte("// edited\n"), data...)
	if err := os.WriteFile(filepath.Join(work, "lockorder.go"), edited, 0o644); err != nil {
		t.Fatal(err)
	}
	pkg3, g3 := load()
	after := BuildSummaries([]*Package{pkg3}, g3, work, memo)
	if after.PkgHits != 0 {
		t.Errorf("edited package still answered from memo (%d hits)", after.PkgHits)
	}
}

// TestSummaryMemoCorrupt pins the degradation contract: unreadable or
// version-skewed memo files mean a cold build, never an error.
func TestSummaryMemoCorrupt(t *testing.T) {
	pkg, err := LoadPackage(filepath.Join("testdata", "src", "ctxflow"))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	memo := filepath.Join(t.TempDir(), "lintsumm.json")
	if err := os.WriteFile(memo, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	g := BuildCallGraph([]*Package{pkg})
	set := BuildSummaries([]*Package{pkg}, g, pkg.Dir, memo)
	if set.PkgHits != 0 {
		t.Errorf("corrupt memo produced hits")
	}
	if len(set.Funcs) == 0 {
		t.Errorf("corrupt memo aborted the build")
	}
}

// TestSummaryFacts spot-checks the extracted facts driving the three
// interprocedural passes.
func TestSummaryFacts(t *testing.T) {
	pkg, err := LoadPackage(filepath.Join("testdata", "src", "ctxflow"))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	g := BuildCallGraph([]*Package{pkg})
	set := BuildSummaries([]*Package{pkg}, g, pkg.Dir, "")

	sleepy := set.Funcs["ctxflow.sleepy"]
	if sleepy == nil || !sleepy.HasCtx {
		t.Fatalf("ctxflow.sleepy summary missing or ctx-less: %+v", sleepy)
	}
	if len(sleepy.Blocks) != 1 || sleepy.Blocks[0].Op != "time.Sleep" {
		t.Errorf("sleepy blocks = %+v, want one time.Sleep", sleepy.Blocks)
	}
	if sleepy.BlocksNoCtx != nil {
		t.Errorf("ctx-bearing function must not carry BlocksNoCtx (callers are not responsible)")
	}

	wait := set.Funcs["ctxflow.wait"]
	if wait == nil || wait.BlocksNoCtx == nil || wait.BlocksNoCtx.Op != "channel receive" {
		t.Errorf("ctxflow.wait BlocksNoCtx = %+v, want channel receive", wait)
	}

	okFn := set.Funcs["ctxflow.ok"]
	if okFn == nil || len(okFn.Blocks) != 0 {
		t.Errorf("guarded select must not count as blocking: %+v", okFn)
	}
	if okFn.TermSig != "ctx" {
		t.Errorf("ctx.Done select case must set TermSig=ctx, got %q", okFn.TermSig)
	}

	drop := set.Funcs["ctxflow.drop"]
	if drop == nil || len(drop.CtxDrops) != 1 {
		t.Errorf("ctxflow.drop CtxDrops = %+v, want one", drop)
	}
}
