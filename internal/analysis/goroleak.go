package analysis

import (
	"sort"
	"strings"
)

// goroleak checks that every `go` statement whose target can run forever
// also has a way to stop: a goroutine whose body (transitively) contains an
// unbounded `for {}` loop must (transitively) reach a termination signal —
// a ctx observation (`<-ctx.Done()`, `ctx.Err()`, a select case on
// `ctx.Done()`), a channel receive that a closed done-channel unblocks, or
// a `WaitGroup.Done` marking structured completion. This is the property
// the serve/loadgen tests check dynamically (goroutine-count deltas); here
// it is enforced structurally at lint time.
//
// Straight-line goroutines (no unbounded loop anywhere in their call
// closure) are exempt: they terminate by falling off the end. Loops with
// any condition or range clause are treated as bounded — the pass is
// biased toward precision, catching the `for { select {...} }` worker
// shape that forgot its ctx case, not proving termination.

// GoroLeakPass returns the goroleak pass.
func GoroLeakPass() *Pass {
	return &Pass{
		Name: "goroleak",
		Doc:  "spawned goroutines with unbounded loops must reach a termination signal",
		Run:  runGoroLeak,
	}
}

func runGoroLeak(ctx *Context) {
	// Module-global: spawn targets may live in other packages; run once.
	if ctx.Facts["goroleak.ran"] != nil {
		return
	}
	ctx.Facts["goroleak.ran"] = true
	set := moduleSummaries(ctx)
	if set == nil {
		return
	}

	keys := make([]string, 0, len(set.Funcs))
	for k := range set.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fs := set.Funcs[k]
		for _, sp := range fs.Spawns {
			ts := set.Funcs[sp.Target]
			if ts == nil || ts.MayLoop == nil || ts.HasTerm {
				continue
			}
			loop := ts.MayLoop
			where := loop.File
			if i := strings.LastIndex(where, "/"); i >= 0 {
				where = where[i+1:]
			}
			ctx.ReportAt(set.AbsPath(sp.File), sp.Line,
				"goroutine %s loops unboundedly (%s:%d) but reaches no termination signal (ctx, done channel, or WaitGroup.Done)",
				shortFunc(sp.Target), where, loop.Line)
		}
	}
}
