package mc

import (
	"math/rand"
	"strings"
	"testing"

	"hhoudini/internal/btor2"
	"hhoudini/internal/circuit"
)

// counter builds an n-bit counter with a bad property "cnt == target".
func counter(t *testing.T, width int, target uint64, gated bool) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder()
	var en circuit.Signal = circuit.True
	if gated {
		en = b.Input("en", 1)[0]
	}
	cnt := b.Register("cnt", width, 0)
	b.SetNext("cnt", b.MuxW(en, b.Inc(cnt), cnt))
	b.Name("bad", circuit.Word{b.EqConst(cnt, target)})
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBMCFindsShortestCounterexample(t *testing.T) {
	c := counter(t, 4, 6, false)
	tr, err := BMC(c, "bad", 20)
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil {
		t.Fatal("expected counterexample")
	}
	if tr.Len() != 6 {
		t.Fatalf("cex length %d, want 6", tr.Len())
	}
	v, err := Replay(c, tr, "bad")
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatal("replayed trace does not hit the bad state")
	}
}

func TestBMCRespectsBound(t *testing.T) {
	c := counter(t, 4, 6, false)
	tr, err := BMC(c, "bad", 5)
	if err != nil {
		t.Fatal(err)
	}
	if tr != nil {
		t.Fatal("bad state must be unreachable within 5 steps")
	}
}

func TestBMCWithInputs(t *testing.T) {
	// The gated counter needs en=1 six times; BMC must synthesize the
	// input sequence.
	c := counter(t, 4, 6, true)
	tr, err := BMC(c, "bad", 10)
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil || tr.Len() != 6 {
		t.Fatalf("cex = %+v", tr)
	}
	enables := 0
	for i := 0; i < tr.Len(); i++ {
		enables += int(tr.Inputs[i]["en"])
	}
	if enables != 6 {
		t.Fatalf("cex enabled %d times, want 6", enables)
	}
	if v, err := Replay(c, tr, "bad"); err != nil || v != 1 {
		t.Fatalf("replay: v=%d err=%v", v, err)
	}
}

func TestKInductionProves(t *testing.T) {
	// A 4-bit counter that wraps at 9 (never reaching 12): cnt' =
	// (cnt==9) ? 0 : cnt+1. "cnt == 12" is unreachable but needs k>1
	// because a single arbitrary state (e.g. 11) can step into 12.
	b := circuit.NewBuilder()
	cnt := b.Register("cnt", 4, 0)
	wrap := b.EqConst(cnt, 9)
	b.SetNext("cnt", b.MuxW(wrap, b.Const(0, 4), b.Inc(cnt)))
	b.Name("bad", circuit.Word{b.EqConst(cnt, 12)})
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	proved, cex, err := KInduction(c, "bad", 1)
	if err != nil {
		t.Fatal(err)
	}
	if proved || cex != nil {
		t.Fatal("k=1 must be inconclusive (11 → 12 is a step-case model)")
	}
	// With a large enough k the property becomes k-inductive: any chain of
	// k good states starting above 9 runs off the wrap.
	proved, cex, err = KInduction(c, "bad", 7)
	if err != nil {
		t.Fatal(err)
	}
	if cex != nil {
		t.Fatal("no real counterexample exists")
	}
	if !proved {
		t.Fatal("k=7 should prove unreachability")
	}
}

func TestKInductionFindsRealCounterexample(t *testing.T) {
	c := counter(t, 4, 3, false)
	proved, cex, err := KInduction(c, "bad", 8)
	if err != nil {
		t.Fatal(err)
	}
	if proved {
		t.Fatal("property is violated; must not be proved")
	}
	if cex == nil || cex.Len() != 3 {
		t.Fatalf("cex = %+v", cex)
	}
}

func TestKInductionValidatesK(t *testing.T) {
	c := counter(t, 4, 3, false)
	if _, _, err := KInduction(c, "bad", 0); err == nil {
		t.Fatal("k=0 must be rejected")
	}
}

func TestBMCUnknownWire(t *testing.T) {
	c := counter(t, 4, 3, false)
	if _, err := BMC(c, "ghost", 3); err == nil {
		t.Fatal("expected error for unknown wire")
	}
}

func TestBMCWideBadWireRejected(t *testing.T) {
	b := circuit.NewBuilder()
	r := b.Register("r", 2, 0)
	b.SetNext("r", r)
	b.Name("wide", r)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BMC(c, "wide", 2); err == nil {
		t.Fatal("expected error for non-1-bit bad wire")
	}
}

// TestBMCOnBtor2Model: end-to-end over the btor2 bridge.
func TestBMCOnBtor2Model(t *testing.T) {
	model := `
1 sort bitvec 3
2 sort bitvec 1
3 state 1 cnt
4 zero 1
5 init 1 3 4
6 one 1
7 add 1 3 6
8 next 1 3 7
9 constd 1 5
10 eq 2 3 9
11 bad 10
`
	d, err := btor2.Parse(strings.NewReader(model))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := BMC(d.Circuit, d.Bads[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil || tr.Len() != 5 {
		t.Fatalf("cex = %+v", tr)
	}
}

// TestBMCAgreesWithRandomSimulation: if random simulation stumbles onto a
// bad state within k steps, BMC at depth k must find a counterexample too
// (it may be shorter).
func TestBMCAgreesWithRandomSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 10; iter++ {
		target := uint64(1 + rng.Intn(10))
		c := counter(t, 4, target, true)

		// Random simulation for 12 steps.
		sim := circuit.NewSim(c)
		hit := -1
		for step := 1; step <= 12; step++ {
			sim.Step(circuit.Inputs{"en": uint64(rng.Intn(2))})
			if v, _ := sim.PeekWire("bad"); v == 1 {
				hit = step
				break
			}
		}
		tr, err := BMC(c, "bad", 12)
		if err != nil {
			t.Fatal(err)
		}
		if hit >= 0 {
			if tr == nil {
				t.Fatalf("iter %d: simulation hit bad at %d but BMC found nothing", iter, hit)
			}
			if tr.Len() > hit {
				t.Fatalf("iter %d: BMC cex (%d) longer than simulated hit (%d)", iter, tr.Len(), hit)
			}
		}
		if tr != nil {
			if v, err := Replay(c, tr, "bad"); err != nil || v != 1 {
				t.Fatalf("iter %d: replay failed: v=%d err=%v", iter, v, err)
			}
		}
	}
}
