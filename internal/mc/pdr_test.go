package mc

import (
	"math/rand"
	"testing"

	"hhoudini/internal/circuit"
)

func TestPDRFindsCounterexample(t *testing.T) {
	c := counter(t, 4, 6, false)
	res, err := PDR(c, "bad", 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Proved {
		t.Fatal("reachable bad state must not be proved safe")
	}
	if res.Cex == nil || res.Cex.Len() != 6 {
		t.Fatalf("cex = %+v", res.Cex)
	}
	if v, err := Replay(c, res.Cex, "bad"); err != nil || v != 1 {
		t.Fatalf("replay: v=%d err=%v", v, err)
	}
}

func TestPDRProvesWrapCounter(t *testing.T) {
	// cnt wraps at 9; cnt==12 unreachable. k-induction needs k≈7 here;
	// PDR must prove it by learning blocking clauses.
	b := circuit.NewBuilder()
	cnt := b.Register("cnt", 4, 0)
	wrap := b.EqConst(cnt, 9)
	b.SetNext("cnt", b.MuxW(wrap, b.Const(0, 4), b.Inc(cnt)))
	b.Name("bad", circuit.Word{b.EqConst(cnt, 12)})
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := PDR(c, "bad", 32)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proved {
		t.Fatalf("expected proof, got %+v", res)
	}
	if len(res.Invariant) == 0 {
		t.Fatal("proof must carry the inductive clause set")
	}
	t.Logf("proved with %d blocked cubes in %d frames", len(res.Invariant), res.Frames)
}

func TestPDRBadAtReset(t *testing.T) {
	b := circuit.NewBuilder()
	r := b.Register("r", 1, 1)
	b.SetNext("r", r)
	b.Name("bad", r)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := PDR(c, "bad", 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Proved || res.Cex == nil || res.Cex.Len() != 0 {
		t.Fatalf("expected 0-step cex, got %+v", res)
	}
}

func TestPDRWithInputs(t *testing.T) {
	// Gated counter: bad reachable only if the environment raises en.
	c := counter(t, 4, 5, true)
	res, err := PDR(c, "bad", 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Proved || res.Cex == nil {
		t.Fatalf("expected cex, got %+v", res)
	}
	if v, err := Replay(c, res.Cex, "bad"); err != nil || v != 1 {
		t.Fatalf("replay: v=%d err=%v", v, err)
	}
}

func TestPDRProvesInvariantHoldProperty(t *testing.T) {
	// A register that can only shuffle among {0,3,5} can never be 4.
	b := circuit.NewBuilder()
	sel := b.Input("sel", 2)
	r := b.Register("r", 3, 0)
	next := b.Const(0, 3)
	next = b.MuxW(b.EqConst(sel, 1), b.Const(3, 3), next)
	next = b.MuxW(b.EqConst(sel, 2), b.Const(5, 3), next)
	b.SetNext("r", next)
	b.Name("bad", circuit.Word{b.EqConst(r, 4)})
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := PDR(c, "bad", 16)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proved {
		t.Fatalf("expected proof, got %+v", res)
	}
}

// TestPDRAgreesWithBMCAndKInduction cross-checks the three engines on
// random gated counters.
func TestPDRAgreesWithBMCAndKInduction(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 12; iter++ {
		width := 3
		target := uint64(rng.Intn(1 << width))
		wrapAt := uint64(1 + rng.Intn(1<<width-1))
		b := circuit.NewBuilder()
		cnt := b.Register("cnt", width, 0)
		wrap := b.EqConst(cnt, wrapAt)
		b.SetNext("cnt", b.MuxW(wrap, b.Const(0, width), b.Inc(cnt)))
		b.Name("bad", circuit.Word{b.EqConst(cnt, target)})
		c, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		reachable := target <= wrapAt // counts 0..wrapAt then wraps

		res, err := PDR(c, "bad", 40)
		if err != nil {
			t.Fatal(err)
		}
		if res.Proved == reachable {
			t.Fatalf("iter %d (target=%d wrap=%d): PDR says proved=%v, reachability=%v",
				iter, target, wrapAt, res.Proved, reachable)
		}
		cex, err := BMC(c, "bad", 1<<width)
		if err != nil {
			t.Fatal(err)
		}
		if (cex != nil) != reachable {
			t.Fatalf("iter %d: BMC disagrees with ground truth", iter)
		}
		if reachable && res.Cex.Len() != cex.Len() {
			t.Fatalf("iter %d: PDR cex depth %d vs BMC %d", iter, res.Cex.Len(), cex.Len())
		}
	}
}

func TestPDRBudgetExhaustion(t *testing.T) {
	// A 6-bit counter wrapping at 50 with target 60: needs ~tens of
	// frames; a budget of 2 must report "undecided".
	b := circuit.NewBuilder()
	cnt := b.Register("cnt", 6, 0)
	wrap := b.EqConst(cnt, 50)
	b.SetNext("cnt", b.MuxW(wrap, b.Const(0, 6), b.Inc(cnt)))
	b.Name("bad", circuit.Word{b.EqConst(cnt, 60)})
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PDR(c, "bad", 2); err == nil {
		t.Fatal("expected an undecided-within-budget error")
	}
}

// TestPDRUnderConstraints: with the enable input constrained low, the
// gated counter can never move, so the bad state becomes provably
// unreachable; unconstrained it is reachable.
func TestPDRUnderConstraints(t *testing.T) {
	b := circuit.NewBuilder()
	en := b.Input("en", 1)
	cnt := b.Register("cnt", 3, 0)
	b.SetNext("cnt", b.MuxW(en[0], b.Inc(cnt), cnt))
	b.Name("bad", circuit.Word{b.EqConst(cnt, 2)})
	b.Name("en_low", circuit.Word{en[0].Not()})
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := PDR(c, "bad", 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Proved || res.Cex == nil {
		t.Fatalf("unconstrained: expected cex, got %+v", res)
	}
	res2, err := PDRUnder(c, "bad", 16, []string{"en_low"})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Proved {
		t.Fatalf("constrained: expected proof, got %+v", res2)
	}
	// Cross-check with constrained BMC and k-induction.
	if tr, err := BMCUnder(c, "bad", 16, []string{"en_low"}); err != nil || tr != nil {
		t.Fatalf("constrained BMC: tr=%v err=%v", tr, err)
	}
	proved, _, err := KInductionUnder(c, "bad", 2, []string{"en_low"})
	if err != nil {
		t.Fatal(err)
	}
	if !proved {
		t.Fatal("constrained 2-induction should prove")
	}
}
