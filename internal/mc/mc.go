// Package mc provides bounded model checking (BMC) and k-induction over
// circuits — the conventional model-checking engines the paper's ecosystem
// (btor2/btormc) provides around invariant learning. They serve three
// roles in this repository: checking bad-state properties of imported
// btor2 designs, producing concrete counterexample traces, and
// cross-validating learned invariants (a k-inductive property must never
// contradict a BMC run).
package mc

import (
	"fmt"

	"hhoudini/internal/circuit"
	"hhoudini/internal/sat"
)

// Trace is a concrete counterexample. States[0] is the initial state;
// States[i+1] results from applying Inputs[i] to States[i]. Inputs has one
// more entry than there are steps: the final entry drives the
// combinational logic of the last frame (where the bad wire fires).
type Trace struct {
	States []circuit.Snapshot
	Inputs []circuit.Inputs
}

// Len returns the number of transition steps in the trace.
func (t *Trace) Len() int { return len(t.States) - 1 }

// unrolling ties k+1 encoder frames over one solver: frame t+1's
// current-state variables equal frame t's next-state functions.
// Environment constraints (1-bit wires) are asserted at every frame.
type unrolling struct {
	c           *circuit.Circuit
	solver      *sat.Solver
	frames      []*circuit.Encoder
	constraints []string
}

func newUnrolling(c *circuit.Circuit, constraints []string) *unrolling {
	return &unrolling{c: c, solver: sat.New(), constraints: constraints}
}

// frame returns the encoder for time step t, materializing frames as
// needed.
func (u *unrolling) frame(t int) (*circuit.Encoder, error) {
	for len(u.frames) <= t {
		enc := circuit.NewEncoder(u.c, u.solver)
		// Materialize every port's variables up front so trace extraction
		// never allocates fresh (model-less) variables after solving.
		for _, p := range u.c.Inputs() {
			if _, err := enc.InputLits(p.Name); err != nil {
				return nil, err
			}
		}
		for _, r := range u.c.Regs() {
			if _, err := enc.RegLits(r.Name); err != nil {
				return nil, err
			}
		}
		for _, name := range u.constraints {
			lits, err := enc.WireLits(name)
			if err != nil {
				return nil, err
			}
			if len(lits) != 1 {
				return nil, fmt.Errorf("mc: constraint wire %q has width %d, want 1", name, len(lits))
			}
			u.solver.AddClause(lits[0])
		}
		if len(u.frames) > 0 {
			prev := u.frames[len(u.frames)-1]
			for _, r := range u.c.Regs() {
				curLits, err := enc.RegLits(r.Name)
				if err != nil {
					return nil, err
				}
				nextLits, err := prev.RegNextLits(r.Name)
				if err != nil {
					return nil, err
				}
				for i := range curLits {
					// curLits[i] ↔ nextLits[i]
					u.solver.AddClause(curLits[i].Not(), nextLits[i])
					u.solver.AddClause(curLits[i], nextLits[i].Not())
				}
			}
		}
		u.frames = append(u.frames, enc)
	}
	return u.frames[t], nil
}

// constrainInit pins frame 0 to the reset state.
func (u *unrolling) constrainInit() error {
	enc, err := u.frame(0)
	if err != nil {
		return err
	}
	for _, r := range u.c.Regs() {
		lits, err := enc.RegLits(r.Name)
		if err != nil {
			return err
		}
		for bit, l := range lits {
			if bit < 64 && r.Init&(1<<uint(bit)) != 0 {
				u.solver.AddClause(l)
			} else {
				u.solver.AddClause(l.Not())
			}
		}
	}
	return nil
}

// badLit encodes the (1-bit) bad wire at frame t.
func (u *unrolling) badLit(bad string, t int) (sat.Lit, error) {
	enc, err := u.frame(t)
	if err != nil {
		return 0, err
	}
	lits, err := enc.WireLits(bad)
	if err != nil {
		return 0, err
	}
	if len(lits) != 1 {
		return 0, fmt.Errorf("mc: bad wire %q has width %d, want 1", bad, len(lits))
	}
	return lits[0], nil
}

// extractTrace reads the model of a satisfiable unrolling back into a
// concrete trace of length steps.
func (u *unrolling) extractTrace(steps int) (*Trace, error) {
	tr := &Trace{}
	for t := 0; t <= steps; t++ {
		enc := u.frames[t]
		snap := make(circuit.Snapshot, len(u.c.Regs()))
		for ri, r := range u.c.Regs() {
			lits, err := enc.RegLits(r.Name)
			if err != nil {
				return nil, err
			}
			var v uint64
			for bit, l := range lits {
				if bit < 64 && u.solver.ModelValue(l) {
					v |= 1 << uint(bit)
				}
			}
			snap[ri] = v
		}
		tr.States = append(tr.States, snap)
		in := circuit.Inputs{}
		for _, p := range u.c.Inputs() {
			lits, err := enc.InputLits(p.Name)
			if err != nil {
				return nil, err
			}
			var v uint64
			for bit, l := range lits {
				if bit < 64 && u.solver.ModelValue(l) {
					v |= 1 << uint(bit)
				}
			}
			in[p.Name] = v
		}
		tr.Inputs = append(tr.Inputs, in)
	}
	return tr, nil
}

// BMC searches for a reachable bad state within maxSteps transitions of the
// reset state. It returns a concrete counterexample trace, or nil if the
// bad wire is unreachable within the bound.
func BMC(c *circuit.Circuit, bad string, maxSteps int) (*Trace, error) {
	return BMCUnder(c, bad, maxSteps, nil)
}

// BMCUnder is BMC with environment constraints: each named 1-bit wire is
// assumed true at every step (the btor2 "constraint" semantics).
func BMCUnder(c *circuit.Circuit, bad string, maxSteps int, constraints []string) (*Trace, error) {
	u := newUnrolling(c, constraints)
	if err := u.constrainInit(); err != nil {
		return nil, err
	}
	for t := 0; t <= maxSteps; t++ {
		lit, err := u.badLit(bad, t)
		if err != nil {
			return nil, err
		}
		switch u.solver.Solve(lit) {
		case sat.Sat:
			return u.extractTrace(t)
		case sat.Unknown:
			return nil, fmt.Errorf("mc: BMC solver gave up at depth %d", t)
		}
	}
	return nil, nil
}

// KInduction attempts to prove the bad wire unreachable using k-induction
// (without path constraints, so it is sound but incomplete): the base case
// is a BMC run of depth k-1; the step case checks that k consecutive good
// states force a good successor. It returns (proved, counterexample,
// error); at most one of proved/counterexample is set.
func KInduction(c *circuit.Circuit, bad string, k int) (bool, *Trace, error) {
	return KInductionUnder(c, bad, k, nil)
}

// KInductionUnder is KInduction with environment constraints assumed at
// every step.
func KInductionUnder(c *circuit.Circuit, bad string, k int, constraints []string) (bool, *Trace, error) {
	if k < 1 {
		return false, nil, fmt.Errorf("mc: k must be >= 1")
	}
	// Base case.
	cex, err := BMCUnder(c, bad, k-1, constraints)
	if err != nil {
		return false, nil, err
	}
	if cex != nil {
		return false, cex, nil
	}
	// Step case: frames 0..k with ¬bad at 0..k-1 and bad at k, arbitrary
	// initial state.
	u := newUnrolling(c, constraints)
	for t := 0; t < k; t++ {
		lit, err := u.badLit(bad, t)
		if err != nil {
			return false, nil, err
		}
		u.solver.AddClause(lit.Not())
	}
	lit, err := u.badLit(bad, k)
	if err != nil {
		return false, nil, err
	}
	switch u.solver.Solve(lit) {
	case sat.Unsat:
		return true, nil, nil
	case sat.Unknown:
		return false, nil, fmt.Errorf("mc: induction step solver gave up")
	}
	return false, nil, nil // not k-inductive (inconclusive)
}

// Replay runs a trace's inputs on a fresh simulator from the trace's
// initial state and checks that the recorded states are reproduced; it
// returns the final value of the named wire. Used to validate
// counterexamples independently of the solver.
func Replay(c *circuit.Circuit, tr *Trace, wire string) (uint64, error) {
	sim := circuit.NewSim(c)
	if err := sim.LoadSnapshot(tr.States[0]); err != nil {
		return 0, err
	}
	for i := 0; i < tr.Len(); i++ {
		if err := sim.Step(tr.Inputs[i]); err != nil {
			return 0, err
		}
		if !sim.Snapshot().Equal(tr.States[i+1]) {
			return 0, fmt.Errorf("mc: trace diverges from simulation at step %d", i+1)
		}
	}
	// Drive the final frame's inputs to evaluate the combinational wire.
	if err := sim.SetInputs(tr.Inputs[len(tr.Inputs)-1]); err != nil {
		return 0, err
	}
	return sim.PeekWire(wire)
}
