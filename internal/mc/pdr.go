package mc

import (
	"fmt"

	"hhoudini/internal/circuit"
	"hhoudini/internal/sat"
)

// This file implements a bit-level IC3/PDR engine (Bradley VMCAI'11, Eén
// et al. FMCAD'11) — the SAT-based incremental invariant learner the paper
// positions H-Houdini against (§7: both use relative induction, but IC3
// generalizes from counterexamples to induction while H-Houdini abducts
// from positive examples). Having both engines in one repository lets the
// test suite cross-check verdicts and makes the contrast concrete.
//
// The implementation is deliberately plain: full-model cubes generalized
// by UNSAT cores, one incremental solver per frame, no ternary simulation.

// PDRResult is the outcome of a PDR run.
type PDRResult struct {
	// Proved is true when the bad wire is unreachable; Invariant then
	// holds the inductive clause set (each inner slice is a blocked cube:
	// the invariant is the conjunction of the cubes' negations).
	Proved bool
	// Cex is a concrete counterexample trace when the bad state is
	// reachable (extracted via BMC at the discovered depth).
	Cex *Trace
	// Frames is the number of frames explored.
	Frames int
	// Invariant holds the blocked cubes of the fixpoint frame when Proved.
	Invariant []BlockedCube
}

// stateLit is one literal of a cube over the flattened state bits.
type stateLit struct {
	bit int // flat state-bit index
	val bool
}

type pdrCube []stateLit

// pdr carries the engine state.
type pdr struct {
	c           *circuit.Circuit
	bad         string
	maxFrame    int
	constraints []string

	// flat state-bit metadata
	regOf []string // flat bit → register name
	bitOf []int    // flat bit → bit position
	init  []bool   // reset value per flat bit

	frames [][]pdrCube // frames[i] = cubes blocked at frame i
	rel    []*relSolver
}

// relSolver answers relative-induction and bad-intersection queries for
// one frame: its clause database holds the transition relation plus the
// (monotonically growing) blocked cubes of its frame.
type relSolver struct {
	enc      *circuit.Encoder
	cur      []sat.Lit // flat current-state literals
	next     []sat.Lit // flat next-state literals
	badLit   sat.Lit
	nClauses int // frame cubes already added
}

func newPDR(c *circuit.Circuit, bad string, maxFrame int, constraints []string) (*pdr, error) {
	p := &pdr{c: c, bad: bad, maxFrame: maxFrame, constraints: constraints}
	for _, r := range c.Regs() {
		for b := 0; b < r.Width; b++ {
			p.regOf = append(p.regOf, r.Name)
			p.bitOf = append(p.bitOf, b)
			p.init = append(p.init, b < 64 && r.Init&(1<<uint(b)) != 0)
		}
	}
	return p, nil
}

func (p *pdr) newRelSolver() (*relSolver, error) {
	enc := circuit.NewEncoder(p.c, sat.New())
	rs := &relSolver{enc: enc}
	for _, r := range p.c.Regs() {
		cur, err := enc.RegLits(r.Name)
		if err != nil {
			return nil, err
		}
		next, err := enc.RegNextLits(r.Name)
		if err != nil {
			return nil, err
		}
		rs.cur = append(rs.cur, cur...)
		rs.next = append(rs.next, next...)
	}
	bl, err := enc.WireLits(p.bad)
	if err != nil {
		return nil, err
	}
	if len(bl) != 1 {
		return nil, fmt.Errorf("mc: bad wire %q has width %d, want 1", p.bad, len(bl))
	}
	rs.badLit = bl[0]
	for _, name := range p.constraints {
		lits, err := enc.WireLits(name)
		if err != nil {
			return nil, err
		}
		if len(lits) != 1 {
			return nil, fmt.Errorf("mc: constraint wire %q has width %d, want 1", name, len(lits))
		}
		enc.S.AddClause(lits[0])
	}
	return rs, nil
}

// solverFor returns the relative solver whose clause database reflects
// frames[level], catching up on newly blocked cubes. Frame 0 is the
// initial state, pinned with unit clauses.
func (p *pdr) solverFor(level int) (*relSolver, error) {
	for len(p.rel) <= level {
		rs, err := p.newRelSolver()
		if err != nil {
			return nil, err
		}
		if len(p.rel) == 0 { // F_0 = I
			for bit, l := range rs.cur {
				rs.enc.S.AddClause(l.XorSign(!p.init[bit]))
			}
		}
		p.rel = append(p.rel, rs)
	}
	rs := p.rel[level]
	cubes := p.frames[level]
	for ; rs.nClauses < len(cubes); rs.nClauses++ {
		cl := make([]sat.Lit, 0, len(cubes[rs.nClauses]))
		for _, sl := range cubes[rs.nClauses] {
			cl = append(cl, rs.cur[sl.bit].XorSign(sl.val)) // ¬cube
		}
		rs.enc.S.AddClause(cl...)
	}
	return rs, nil
}

// cubeFromModel extracts the full current-state cube of the last model.
func (rs *relSolver) cubeFromModel() pdrCube {
	cube := make(pdrCube, len(rs.cur))
	for i, l := range rs.cur {
		cube[i] = stateLit{bit: i, val: rs.enc.S.ModelValue(l)}
	}
	return cube
}

// assumeNext returns assumptions pinning the cube in the next frame.
func (rs *relSolver) assumeNext(c pdrCube) []sat.Lit {
	out := make([]sat.Lit, len(c))
	for i, sl := range c {
		out[i] = rs.next[sl.bit].XorSign(!sl.val)
	}
	return out
}

// addBlocked records ¬cube into frames 1..level.
func (p *pdr) addBlocked(c pdrCube, level int) {
	for i := 1; i <= level; i++ {
		p.frames[i] = append(p.frames[i], c)
	}
}

// satisfiesInit reports whether the reset state satisfies the cube.
func (p *pdr) satisfiesInit(c pdrCube) bool {
	for _, sl := range c {
		if p.init[sl.bit] != sl.val {
			return false
		}
	}
	return true
}

// generalize shrinks a blocked cube using the UNSAT core of the relative
// induction query, keeping it disjoint from the initial state.
func (p *pdr) generalize(c pdrCube, core []sat.Lit, rs *relSolver) pdrCube {
	inCore := make(map[sat.Lit]bool, len(core))
	for _, l := range core {
		inCore[l] = true
	}
	var out pdrCube
	for _, sl := range c {
		if inCore[rs.next[sl.bit].XorSign(!sl.val)] {
			out = append(out, sl)
		}
	}
	if len(out) == 0 {
		return c
	}
	if p.satisfiesInit(out) {
		// Re-add a literal that distinguishes the cube from reset.
		for _, sl := range c {
			if p.init[sl.bit] != sl.val {
				out = append(out, sl)
				break
			}
		}
		if p.satisfiesInit(out) {
			return c // defensive: keep the full cube
		}
	}
	return out
}

// blockCube recursively removes a proof obligation: the cube must become
// unreachable at the given frame. Returns false when the recursion reaches
// frame 0 (a real counterexample).
func (p *pdr) blockCube(c pdrCube, level int) (bool, error) {
	if level == 0 {
		return false, nil
	}
	for {
		rs, err := p.solverFor(level - 1)
		if err != nil {
			return false, err
		}
		// Query: F_{level-1} ∧ ¬c ∧ T ∧ c'. The ¬c clause is activated
		// per query via a fresh selector.
		act := sat.PosLit(rs.enc.S.NewVar())
		cl := []sat.Lit{act.Not()}
		for _, sl := range c {
			cl = append(cl, rs.cur[sl.bit].XorSign(sl.val))
		}
		rs.enc.S.AddClause(cl...)
		assumptions := append([]sat.Lit{act}, rs.assumeNext(c)...)
		st, core := rs.enc.S.SolveWithCore(assumptions)
		switch st {
		case sat.Unknown:
			return false, fmt.Errorf("mc: PDR solver gave up at frame %d", level)
		case sat.Unsat:
			g := p.generalize(c, core, rs)
			p.addBlocked(g, level)
			return true, nil
		}
		// A predecessor inside F_{level-1} reaches c: block it first.
		pred := rs.cubeFromModel()
		ok, err := p.blockCube(pred, level-1)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
}

// PDR decides reachability of a 1-bit bad wire with the IC3/PDR algorithm,
// up to maxFrames major frames. It returns Proved with the inductive
// clause set, a counterexample trace, or an "undecided within budget"
// error.
func PDR(c *circuit.Circuit, bad string, maxFrames int) (*PDRResult, error) {
	return PDRUnder(c, bad, maxFrames, nil)
}

// PDRUnder is PDR with environment constraints assumed at every step.
func PDRUnder(c *circuit.Circuit, bad string, maxFrames int, constraints []string) (*PDRResult, error) {
	p, err := newPDR(c, bad, maxFrames, constraints)
	if err != nil {
		return nil, err
	}
	// Frame 0 is the initial state; bad at reset is a 0-step cex.
	sim := circuit.NewSim(c)
	if err := sim.SetInputs(nil); err != nil {
		return nil, err
	}
	// The bad wire may depend on inputs; check via BMC depth 0 for
	// uniformity.
	if cex, err := BMCUnder(c, bad, 0, constraints); err != nil {
		return nil, err
	} else if cex != nil {
		return &PDRResult{Cex: cex}, nil
	}

	p.frames = [][]pdrCube{nil, nil} // F_0 (init, implicit) and F_1
	for k := 1; k <= maxFrames; k++ {
		// Block all bad states reachable from F_k.
		for {
			rs, err := p.solverFor(k)
			if err != nil {
				return nil, err
			}
			st := rs.enc.S.Solve(rs.badLit)
			if st == sat.Unknown {
				return nil, fmt.Errorf("mc: PDR solver gave up at frame %d", k)
			}
			if st == sat.Unsat {
				break
			}
			cube := rs.cubeFromModel()
			ok, err := p.blockCube(cube, k)
			if err != nil {
				return nil, err
			}
			if !ok {
				// Real counterexample of depth ≤ k; extract via BMC.
				cex, err := BMCUnder(c, bad, k, constraints)
				if err != nil {
					return nil, err
				}
				if cex == nil {
					return nil, fmt.Errorf("mc: PDR found a cex BMC cannot reproduce within %d steps", k)
				}
				return &PDRResult{Cex: cex, Frames: k}, nil
			}
		}
		// Propagate blocked cubes forward and check for a fixpoint.
		p.frames = append(p.frames, nil)
		for i := 1; i <= k; i++ {
			rs, err := p.solverFor(i)
			if err != nil {
				return nil, err
			}
			for _, cube := range p.frames[i] {
				if containsCube(p.frames[i+1], cube) {
					continue
				}
				st := rs.enc.S.Solve(rs.assumeNext(cube)...)
				if st == sat.Unknown {
					return nil, fmt.Errorf("mc: PDR propagation solver gave up")
				}
				if st == sat.Unsat {
					p.frames[i+1] = append(p.frames[i+1], cube)
				}
			}
			if len(p.frames[i+1]) == len(p.frames[i]) {
				inv := make([][]stateLit, len(p.frames[i]))
				for j, cb := range p.frames[i] {
					inv[j] = append([]stateLit(nil), cb...)
				}
				return &PDRResult{Proved: true, Frames: k, Invariant: toInvariant(p, inv)}, nil
			}
		}
	}
	return nil, fmt.Errorf("mc: PDR undecided within %d frames", maxFrames)
}

// BlockedCube is one clause of a PDR invariant in readable form: the
// invariant asserts that the listed register bits never simultaneously
// take the listed values.
type BlockedCube []struct {
	Reg string
	Bit int
	Val bool
}

func toInvariant(p *pdr, cubes [][]stateLit) []BlockedCube {
	out := make([]BlockedCube, len(cubes))
	for i, cb := range cubes {
		bc := make(BlockedCube, len(cb))
		for j, sl := range cb {
			bc[j].Reg = p.regOf[sl.bit]
			bc[j].Bit = p.bitOf[sl.bit]
			bc[j].Val = sl.val
		}
		out[i] = bc
	}
	return out
}

func containsCube(set []pdrCube, c pdrCube) bool {
	for _, other := range set {
		if len(other) != len(c) {
			continue
		}
		same := true
		for i := range c {
			if other[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}
