package hhoudini

import (
	"sync/atomic"
)

// LearnRecursive is a direct transliteration of Algorithm 1: a sequential
// depth-first recursion with memoization, a global P_fail set and partial
// backtracking. It computes the same result as the worklist-based Learn
// (the tests cross-check them); Learn additionally parallelizes the inner
// loop as §3.2.4 describes. A Learner instance must be used for a single
// Learn or LearnRecursive call, not both.
func (l *Learner) LearnRecursive(targets []Pred) (*Invariant, error) {
	for _, t := range targets {
		ok, err := l.holdsAtInit(t)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
	}
	inProgress := make(map[string]bool)
	// The recursion is sequential, so one pooled-solver set serves every
	// abduction query; cones shared between predicates are encoded once. At
	// return the pool retires into the cross-run cache (when attached)
	// instead of being dropped, so later Learners inherit its solvers.
	pool := newEncoderPool(l.sys, l.stats)
	pool.attachCache(l.cache, l.cacheKey)
	defer pool.retire()

	var solve func(p Pred) (bool, error)
	solve = func(p Pred) (bool, error) {
		id := p.ID()
		if l.failed[id] {
			return false, nil
		}
		// Memoized early return (line 3), provided no abduct member has
		// failed since (soln ∩ P_fail = ∅).
		if e, ok := l.entries[id]; ok && (e.solved || inProgress[id]) {
			clean := true
			for _, m := range e.abduct {
				if l.failed[m.ID()] {
					clean = false
					break
				}
			}
			if clean {
				return true, nil
			}
			e.solved = false
			e.abduct = nil
			atomic.AddInt64(&l.stats.Backtracks, 1)
		}
		e := l.getOrCreateLocked(p)
		inProgress[id] = true
		defer delete(inProgress, id)

		for { // while not valid-solution (line 7)
			atomic.AddInt64(&l.stats.Tasks, 1)
			slice, err := l.slice.Slice(p)
			if err != nil {
				return false, err
			}
			cands, err := l.mine.Mine(p, slice)
			if err != nil {
				return false, err
			}
			live := make([]Pred, 0, len(cands))
			for _, c := range cands { // P_V \ P_fail (line 11)
				if !l.failed[c.ID()] {
					live = append(live, c)
				}
			}
			res, err := l.runAbduct(p, live, pool)
			if err != nil {
				return false, err
			}
			if !res.ok { // line 14-16
				l.failed[id] = true
				return false, nil
			}
			e.abduct = res.preds // memoize pending solution (line 13)
			valid := true
			for _, m := range res.preds { // line 18-26
				ok, err := solve(m)
				if err != nil {
					return false, err
				}
				if !ok {
					valid = false
					l.failed[m.ID()] = true
					break
				}
			}
			if valid {
				e.solved = true
				return true, nil
			}
			atomic.AddInt64(&l.stats.Backtracks, 1)
		}
	}

	for _, t := range targets {
		ok, err := solve(t)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
	}

	// Cycles may have ratified solutions against pending entries that
	// later failed; iterate to a clean fixpoint before assembling.
	for {
		dirty := false
		for id, e := range l.entries {
			if !e.solved || l.failed[id] {
				continue
			}
			for _, m := range e.abduct {
				if l.failed[m.ID()] {
					e.solved = false
					e.abduct = nil
					atomic.AddInt64(&l.stats.Backtracks, 1)
					ok, err := solve(e.pred)
					if err != nil {
						return nil, err
					}
					if !ok && inClosureOfTargets(l, targets, id) {
						return nil, nil
					}
					dirty = true
					break
				}
			}
		}
		if !dirty {
			break
		}
	}
	for _, t := range targets {
		if l.failed[t.ID()] {
			return nil, nil
		}
	}
	return l.assembleLocked(targets)
}

// inClosureOfTargets reports whether id is reachable from the targets via
// currently memoized abducts.
func inClosureOfTargets(l *Learner, targets []Pred, id string) bool {
	seen := make(map[string]bool)
	var stack []string
	for _, t := range targets {
		stack = append(stack, t.ID())
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		if cur == id {
			return true
		}
		if e := l.entries[cur]; e != nil {
			for _, m := range e.abduct {
				stack = append(stack, m.ID())
			}
		}
	}
	return false
}
