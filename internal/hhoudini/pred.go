// Package hhoudini implements the paper's core contribution: the
// H-Houdini scalable invariant-learning algorithm (Algorithm 1).
//
// H-Houdini replaces the monolithic inductivity checks of MLIS learners
// (Houdini/Sorcar) with a hierarchy of small relative-induction checks,
// one per predicate, that are property-directed, incremental, memoizable
// and parallelizable (§3). Each check is an abduction query answered by an
// UNSAT core over predicate selector literals (§3.2.3); the hierarchy of
// abducts composes into a monolithic inductive invariant that is correct
// by construction (§3.1) and never needs to be checked directly — though
// this package can audit it monolithically as well (as the paper did for
// Rocketchip).
//
// The package is generic over the predicate language: predicate mining is
// an oracle interface, so the VeloCT instantiation (package veloct) and
// the unit tests plug in different languages.
package hhoudini

import (
	"hhoudini/internal/circuit"
	"hhoudini/internal/sat"
)

// Pred is a predicate over the states of the transition system's circuit.
// Implementations must be immutable and comparable via ID.
type Pred interface {
	// ID is a canonical key used for memoization and failure tracking.
	// Two predicates with equal IDs must be semantically identical.
	ID() string
	// Vars lists the circuit register names the predicate ranges over.
	// The slicing oracle unions their 1-step cones of influence.
	Vars() []string
	// Encode returns a literal equivalent to the predicate evaluated on
	// the current state (next == false) or on the successor state
	// (next == true) of a single encoded transition.
	Encode(enc *circuit.Encoder, next bool) (sat.Lit, error)
	// Eval evaluates the predicate on a concrete state snapshot.
	Eval(c *circuit.Circuit, s circuit.Snapshot) (bool, error)
	// String renders the predicate for humans.
	String() string
}

// SliceOracle is O_slice of Algorithm 1: the state elements that can
// influence the inductivity of a predicate within one step.
type SliceOracle interface {
	Slice(p Pred) ([]string, error)
}

// MineOracle is O_mine of Algorithm 1: it translates a slice into the
// candidate predicates considered when synthesizing an abduct for the
// target. Implementations must only return predicates consistent with all
// positive examples (Contract 2); completeness of the returned set over
// the slice gives Contract 1.
type MineOracle interface {
	Mine(target Pred, slice []string) ([]Pred, error)
}

// coiSlicer is the default slicing oracle: the union of register-level
// 1-step cones of influence of the predicate's variables.
type coiSlicer struct {
	c *circuit.Circuit
}

func (s coiSlicer) Slice(p Pred) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	for _, v := range p.Vars() {
		sup, err := s.c.RegSupport(v)
		if err != nil {
			return nil, err
		}
		for _, r := range sup {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	return out, nil
}

// NewCOISlicer returns the default slicing oracle for a circuit.
func NewCOISlicer(c *circuit.Circuit) SliceOracle { return coiSlicer{c} }
