package hhoudini

import "testing"

// cache_pin_test.go: the key-pinning contract that makes whole-key LRU
// eviction safe under the service layer — a key with a live encoder
// checkout is never retired mid-job (retiring would reset the append-only
// clause store a checked-out encoder indexes by position), and the
// footprint/eviction counters the /v1/stats surface reports stay coherent.

func (vc *VerifyCache) hasKey(key string) bool {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	_, ok := vc.entries[key]
	return ok
}

func storeDummyVerdicts(vc *VerifyCache, n int) {
	vk := verdictKeyFor(regEq{reg: "A", val: 1}, nil, true)
	for i := 0; i < n; i++ {
		vc.storeVerdict(string(rune('a'+i%26))+string(rune('0'+i/26%10))+string(rune('0'+i/260)), vk, abductResult{ok: false})
	}
}

func TestVerifyCachePinBlocksEviction(t *testing.T) {
	vc := NewVerifyCache()
	vk := verdictKeyFor(regEq{reg: "A", val: 1}, nil, true)

	vc.storeVerdict("held", vk, abductResult{ok: false})
	vc.pin("held")

	// Flood far past maxKeys: LRU pressure must retire unpinned keys (the
	// counter proves it) while the pinned one — oldest of all — survives.
	storeDummyVerdicts(vc, defaultCacheMaxKeys*2)
	if !vc.hasKey("held") {
		t.Fatal("pinned key evicted under LRU pressure")
	}
	c := vc.Counters()
	if c.KeyEvictions == 0 {
		t.Fatal("flood past maxKeys evicted nothing")
	}

	// Unpin: the key becomes evictable again and (being least-recent) is
	// the next victim once pressure re-runs.
	vc.unpin("held")
	vc.mu.Lock()
	n := len(vc.entries)
	vc.mu.Unlock()
	if n > defaultCacheMaxKeys {
		t.Fatalf("cache holds %d keys after unpin, budget is %d", n, defaultCacheMaxKeys)
	}

	// Unpinning an unknown or already-unpinned key must be a no-op.
	vc.unpin("held")
	vc.unpin("never-seen")
}

func TestVerifyCachePinNests(t *testing.T) {
	vc := NewVerifyCache()
	vk := verdictKeyFor(regEq{reg: "A", val: 1}, nil, true)
	vc.storeVerdict("held", vk, abductResult{ok: false})
	vc.pin("held")
	vc.pin("held") // two sessions holding checkouts of the same key
	vc.unpin("held")
	storeDummyVerdicts(vc, defaultCacheMaxKeys*2)
	if !vc.hasKey("held") {
		t.Fatal("key with one remaining pin was evicted")
	}
	vc.unpin("held")
}

func TestVerifyCacheResetPreservesPinned(t *testing.T) {
	vc := NewVerifyCache()
	vk := verdictKeyFor(regEq{reg: "A", val: 1}, nil, true)
	vc.storeVerdict("held", vk, abductResult{ok: false})
	vc.storeVerdict("loose", vk, abductResult{ok: false})
	vc.pin("held")

	vc.Reset()
	if !vc.hasKey("held") {
		t.Fatal("Reset dropped a pinned key (a live checkout now indexes a reset store)")
	}
	if vc.hasKey("loose") {
		t.Fatal("Reset kept an unpinned key")
	}
	vc.unpin("held")
}

func TestVerifyCacheFootprintCounters(t *testing.T) {
	vc := NewVerifyCache()
	c0 := vc.Counters()
	if c0.ApproxBytes != 0 || c0.BytesHighWater != 0 || c0.Entries != 0 {
		t.Fatalf("fresh cache reports footprint %+v", c0)
	}

	storeDummyVerdicts(vc, 10)
	c1 := vc.Counters()
	if c1.Entries != 10 || c1.ApproxBytes <= 0 {
		t.Fatalf("after 10 keys: entries %d bytes %d", c1.Entries, c1.ApproxBytes)
	}
	if c1.BytesHighWater < c1.ApproxBytes {
		t.Fatalf("high-water %d below live footprint %d", c1.BytesHighWater, c1.ApproxBytes)
	}

	// Overwriting a verdict must not double-count its bytes.
	vk := verdictKeyFor(regEq{reg: "A", val: 1}, nil, true)
	vc.storeVerdict("a00", vk, abductResult{ok: true})
	c2 := vc.Counters()
	if c2.Entries != 10 || c2.ApproxBytes != c1.ApproxBytes {
		t.Fatalf("overwrite changed footprint: %d → %d bytes", c1.ApproxBytes, c2.ApproxBytes)
	}

	// Eviction debits the live footprint but never the high-water mark.
	storeDummyVerdicts(vc, defaultCacheMaxKeys*2)
	c3 := vc.Counters()
	if c3.KeyEvictions == 0 {
		t.Fatal("no evictions under flood")
	}
	if c3.BytesHighWater < c3.ApproxBytes {
		t.Fatalf("high-water %d below live %d after evictions", c3.BytesHighWater, c3.ApproxBytes)
	}
	if c3.BytesHighWater < c1.BytesHighWater {
		t.Fatalf("high-water went backwards: %d → %d", c1.BytesHighWater, c3.BytesHighWater)
	}
}
