package hhoudini

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"hhoudini/internal/faultinject"
)

// cancel_test.go: the cancellation half of the chaos tier. Every test here
// runs under `make chaos` (race-enabled) and asserts the LearnCtx contract:
// prompt return with ctx.Err(), workers drained, no goroutine leaks, pooled
// solvers checked back in, partial progress flushed and reloadable.

// TestCancelBeforeLearn: a context cancelled before LearnCtx starts must
// short-circuit without running any task.
func TestCancelBeforeLearn(t *testing.T) {
	sys, universe, target := backtrackSystem(t)
	l := NewLearner(sys, minerOf(universe...), coldOptions())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inv, err := l.LearnCtx(ctx, []Pred{target})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v (inv=%v), want context.Canceled", err, inv)
	}
	if got := l.Stats().Tasks; got != 0 {
		t.Fatalf("pre-cancelled LearnCtx executed %d tasks", got)
	}
}

// TestCancelMidLearnRepeated is the race sweep: many iterations at
// Workers=4, each cancelled at a different point of the run, with injected
// query latency widening the window. Every outcome must be either a clean
// result (cancel arrived after the drain) or exactly context.Canceled —
// and the goroutine count must return to baseline at the end.
func TestCancelMidLearnRepeated(t *testing.T) {
	before := runtime.NumGoroutine()
	sys, universe, target := backtrackSystem(t)

	faultinject.Arm(faultinject.QueryDelay, faultinject.Spec{Count: -1, Delay: time.Millisecond})
	defer faultinject.Reset()

	const iters = 25
	var cancelled, completed int
	for i := 0; i < iters; i++ {
		o := coldOptions()
		o.Workers = 4
		l := NewLearner(sys, minerOf(universe...), o)
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(time.Duration(i%10)*time.Millisecond/2, cancel)
		inv, err := l.LearnCtx(ctx, []Pred{target})
		timer.Stop()
		cancel()
		switch {
		case err == nil:
			completed++
			if inv == nil {
				t.Fatalf("iter %d: uncancelled run found no invariant", i)
			}
		case errors.Is(err, context.Canceled):
			cancelled++
		default:
			t.Fatalf("iter %d: err = %v, want nil or context.Canceled", i, err)
		}
	}
	t.Logf("iterations: %d cancelled, %d completed", cancelled, completed)
	checkNoGoroutineLeak(t, before)
}

// TestCancelSolversCheckedIn: a cancelled warm-cache run must check every
// pooled solver back in (the cancellation registry drains to empty), and
// the shared cache must stay usable — a later learner clears the sticky
// interrupt flags on checkout and completes normally.
func TestCancelSolversCheckedIn(t *testing.T) {
	sys, universe, target := backtrackSystem(t)
	cache := NewVerifyCache()

	faultinject.Arm(faultinject.QueryDelay, faultinject.Spec{Count: -1, Delay: 5 * time.Millisecond})

	o := warmOptions(cache)
	o.Workers = 4
	l := NewLearner(sys, minerOf(universe...), o)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := l.LearnCtx(ctx, []Pred{target}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	faultinject.Reset()

	l.mu.Lock()
	live := len(l.solvers)
	l.mu.Unlock()
	if live != 0 {
		t.Fatalf("%d solvers still registered after a cancelled LearnCtx", live)
	}

	// The cache the cancelled run populated is reusable: a fresh learner
	// over the same system must complete (stale interrupts cleared).
	l2 := NewLearner(sys, minerOf(universe...), warmOptions(cache))
	inv, err := l2.Learn([]Pred{target})
	if err != nil || inv == nil {
		t.Fatalf("post-cancel warm Learn: inv=%v err=%v", inv, err)
	}
	if err := Audit(sys, inv); err != nil {
		t.Fatal(err)
	}
}

// TestCancelFlushesProofStore: partial progress of a cancelled run reaches
// the on-disk store (finishPersist runs on every exit path), and the store
// warm-starts the next — completing — run.
func TestCancelFlushesProofStore(t *testing.T) {
	dir := t.TempDir()
	sys, universe, target := backtrackSystem(t)

	// Let a few queries land before cancelling so the flush has content.
	faultinject.Arm(faultinject.QueryDelay, faultinject.Spec{Skip: 2, Count: -1, Delay: 10 * time.Millisecond})

	o := warmOptions(NewVerifyCache())
	o.CacheDir = dir
	l := NewLearner(sys, minerOf(universe...), o)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	_, err := l.LearnCtx(ctx, []Pred{target})
	faultinject.Reset()
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want nil or DeadlineExceeded", err)
	}
	if err := CloseProofDBs(); err != nil {
		t.Fatalf("close after cancel: %v", err)
	}

	// Fresh process image (new cache, re-opened store): must complete.
	o2 := warmOptions(NewVerifyCache())
	o2.CacheDir = dir
	l2 := NewLearner(sys, minerOf(universe...), o2)
	inv, err := l2.Learn([]Pred{target})
	if err != nil || inv == nil {
		t.Fatalf("post-cancel reload Learn: inv=%v err=%v", inv, err)
	}
	if l2.pdb == nil {
		t.Fatal("second learner did not bind the proof store")
	}
	if err := CloseProofDBs(); err != nil {
		t.Fatalf("final close: %v", err)
	}
	checkNoGoroutineLeak(t, runtime.NumGoroutine())
}

// TestCancelReturnsPromptly: once cancel fires, LearnCtx must return within
// a bound far below the work remaining (the solver interrupt-check interval
// plus scheduling noise), even with many queued tasks.
func TestCancelReturnsPromptly(t *testing.T) {
	sys, universe, target := backtrackSystem(t)
	o := coldOptions()
	o.Workers = 2
	l := NewLearner(sys, minerOf(universe...), o)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := l.LearnCtx(ctx, []Pred{target})
	elapsed := time.Since(start)
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want nil or context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("LearnCtx took %v to honour cancellation", elapsed)
	}
}
