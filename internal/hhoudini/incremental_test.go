package hhoudini

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"hhoudini/internal/circuit"
)

// optsFresh / optsIncremental are the two abduction backends with the rest
// of the configuration held identical.
func optsFresh(workers int) Options {
	return Options{Workers: workers, MinimizeCores: true, IncrementalSolver: false}
}

func optsIncremental(workers int) Options {
	return Options{Workers: workers, MinimizeCores: true, IncrementalSolver: true}
}

// TestIncrementalMatchesFreshOnRandomSystems is the differential test for
// the pooled backend: on a corpus of random systems, the incremental and
// fresh-solver paths must return identical verdicts, every invariant must
// pass the monolithic audit, and the pool bookkeeping must balance
// (each query either reuses a pooled solver or allocates one).
func TestIncrementalMatchesFreshOnRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(20250806))
	found, none := 0, 0
	for iter := 0; iter < 50; iter++ {
		sys, universe := randomSystem(t, rng)
		target := universe[rng.Intn(len(universe))].(regEq)
		init := circuit.InitSnapshot(sys.Circuit)
		if ok, _ := target.Eval(sys.Circuit, init); !ok {
			continue
		}

		lf := NewLearner(sys, minerOf(universe...), optsFresh(1))
		invF, err := lf.Learn([]Pred{target})
		if err != nil {
			t.Fatal(err)
		}
		if lf.Stats().SolverAllocs != lf.Stats().Queries {
			t.Fatalf("iter %d: fresh path must allocate one solver per query: allocs=%d queries=%d",
				iter, lf.Stats().SolverAllocs, lf.Stats().Queries)
		}

		for _, workers := range []int{1, 3} {
			li := NewLearner(sys, minerOf(universe...), optsIncremental(workers))
			invI, err := li.Learn([]Pred{target})
			if err != nil {
				t.Fatal(err)
			}
			if (invF == nil) != (invI == nil) {
				t.Fatalf("iter %d workers=%d: backends disagree (fresh=%v incremental=%v)",
					iter, workers, invF != nil, invI != nil)
			}
			if invI != nil {
				if err := Audit(sys, invI); err != nil {
					t.Fatalf("iter %d workers=%d: incremental invariant fails audit: %v", iter, workers, err)
				}
			}
			st := li.Stats()
			queries := atomic.LoadInt64(&st.Queries)
			allocs := atomic.LoadInt64(&st.SolverAllocs)
			reuses := atomic.LoadInt64(&st.PoolReuses)
			if allocs+reuses != queries {
				t.Fatalf("iter %d workers=%d: pool accounting broken: allocs=%d reuses=%d queries=%d",
					iter, workers, allocs, reuses, queries)
			}
		}
		if invF != nil {
			found++
		} else {
			none++
		}
	}
	if found == 0 || none == 0 {
		t.Fatalf("test corpus unbalanced: found=%d none=%d", found, none)
	}
}

// TestIncrementalRecursiveMatchesFresh runs the same differential check
// through the recursive (Algorithm 1) engine.
func TestIncrementalRecursiveMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for iter := 0; iter < 30; iter++ {
		sys, universe := randomSystem(t, rng)
		target := universe[rng.Intn(len(universe))].(regEq)
		init := circuit.InitSnapshot(sys.Circuit)
		if ok, _ := target.Eval(sys.Circuit, init); !ok {
			continue
		}
		lf := NewLearner(sys, minerOf(universe...), optsFresh(1))
		invF, err := lf.LearnRecursive([]Pred{target})
		if err != nil {
			t.Fatal(err)
		}
		li := NewLearner(sys, minerOf(universe...), optsIncremental(1))
		invI, err := li.LearnRecursive([]Pred{target})
		if err != nil {
			t.Fatal(err)
		}
		if (invF == nil) != (invI == nil) {
			t.Fatalf("iter %d: recursive backends disagree (fresh=%v incremental=%v)",
				iter, invF != nil, invI != nil)
		}
		if invI != nil {
			if err := Audit(sys, invI); err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
		}
	}
}

// TestIncrementalBacktracking exercises selector release: the Figure 1
// scenario forces X==1 into P_fail, whose pooled selector must be retracted
// without corrupting later queries on the same cone.
func TestIncrementalBacktracking(t *testing.T) {
	sys, universe, target := backtrackSystem(t)
	for _, workers := range []int{1, 4} {
		l := NewLearner(sys, minerOf(universe...), optsIncremental(workers))
		inv, err := l.Learn([]Pred{target})
		if err != nil {
			t.Fatal(err)
		}
		if inv == nil {
			t.Fatalf("workers=%d: expected invariant via the {B,C} solution", workers)
		}
		got := ids(inv)
		if !got["B==1"] || !got["C==1"] || got["X==1"] {
			t.Fatalf("workers=%d: bad invariant %v", workers, got)
		}
		if err := Audit(sys, inv); err != nil {
			t.Fatal(err)
		}
		if l.Stats().Backtracks == 0 {
			t.Fatalf("workers=%d: scenario must backtrack", workers)
		}
	}
}

// TestEncoderPoolSharesCones checks the pooling policy directly:
// predicates over the same state variable share one pooled solver, and
// repeat queries on a warm cone add no new cone encoding work.
func TestEncoderPoolSharesCones(t *testing.T) {
	sys := andGateSystem(t)
	l := NewLearner(sys, minerOf(), DefaultOptions())
	pool := newEncoderPool(l.sys, l.stats)

	a0 := regEq{reg: "A", val: 0}
	a1 := regEq{reg: "A", val: 1}
	b1 := regEq{reg: "B", val: 1}

	if sig0, sig1 := coneKey(a0), coneKey(a1); sig0 != sig1 {
		t.Fatalf("same-variable predicates must share a cone: %x vs %x", sig0, sig1)
	}

	pe0, warm0, err := pool.get(a0)
	if err != nil {
		t.Fatal(err)
	}
	if warm0 {
		t.Fatal("first get must build a cold encoder")
	}
	pe1, warm1, err := pool.get(a1)
	if err != nil {
		t.Fatal(err)
	}
	if !warm1 || pe1 != pe0 {
		t.Fatal("same-cone predicate must reuse the pooled encoder")
	}
	if _, _, err := pool.get(b1); err != nil {
		t.Fatal(err)
	}
	if pool.size() != 2 {
		t.Fatalf("pool size = %d, want 2 (cones A and B)", pool.size())
	}

	// A warm cone encodes each predicate at most once: the second litFor of
	// the same predicate/frame is a memo hit with zero fresh clauses.
	if _, err := pe0.litFor(a1, false); err != nil {
		t.Fatal(err)
	}
	before := pe0.enc.Stats()
	if _, err := pe0.litFor(a1, false); err != nil {
		t.Fatal(err)
	}
	after := pe0.enc.Stats()
	if after.Clauses != before.Clauses || after.Gates != before.Gates {
		t.Fatal("repeat encoding of a memoized predicate must add no clauses")
	}
	if after.MemoHits != before.MemoHits+1 {
		t.Fatalf("MemoHits = %d, want %d", after.MemoHits, before.MemoHits+1)
	}

	// Selector release drops the predicate from the pooled index.
	selA, err := pe0.selectorFor(a1)
	if err != nil {
		t.Fatal(err)
	}
	if again, err := pe0.selectorFor(a1); err != nil || again != selA {
		t.Fatalf("selectorFor must be stable: %v %v", again, err)
	}
	pe0.releaseSelector(a1.ID())
	if _, ok := pe0.sels[a1.ID()]; ok {
		t.Fatal("released selector still indexed")
	}
}

// TestIncrementalEncodesLessThanFresh quantifies the tentpole's win on the
// backtracking scenario: the pooled backend must finish with strictly
// fewer encoded clauses and solver allocations than the fresh backend.
func TestIncrementalEncodesLessThanFresh(t *testing.T) {
	sys, universe, target := backtrackSystem(t)

	lf := NewLearner(sys, minerOf(universe...), optsFresh(1))
	if inv, err := lf.Learn([]Pred{target}); err != nil || inv == nil {
		t.Fatalf("fresh: inv=%v err=%v", inv, err)
	}
	li := NewLearner(sys, minerOf(universe...), optsIncremental(1))
	if inv, err := li.Learn([]Pred{target}); err != nil || inv == nil {
		t.Fatalf("incremental: inv=%v err=%v", inv, err)
	}

	sf, si := lf.Stats(), li.Stats()
	if si.SolverAllocs >= sf.SolverAllocs {
		t.Fatalf("pooling must allocate fewer solvers: incremental=%d fresh=%d",
			si.SolverAllocs, sf.SolverAllocs)
	}
	if si.EncodedClauses >= sf.EncodedClauses {
		t.Fatalf("pooling must encode fewer clauses: incremental=%d fresh=%d",
			si.EncodedClauses, sf.EncodedClauses)
	}
	if si.PoolReuses == 0 {
		t.Fatal("expected warm-cone reuse on the backtracking scenario")
	}
}
