package hhoudini

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"hhoudini/internal/circuit"
	"hhoudini/internal/proofdb"
)

// VerifyCache is the process-wide, concurrency-safe verification cache that
// outlives individual Learners. PR 1 made abduction incremental *within*
// one Learn call; this extends the paper's "small, incremental, memoizable"
// argument (§3.2) one level up, across Learner instances: safe-set
// synthesis and the experiment sweeps re-verify near-identical systems many
// times, and almost all of the solver work they rebuild is a pure function
// of the system identity.
//
// The cache is keyed at the top level by System.CacheKey — the circuit's
// structural fingerprint combined with the environment-assumption identity
// (EnvKey). Changing the safe set changes the EnvKey, so stale entries can
// never be consulted; that is the whole invalidation story, by
// construction. Under each key three layers of reuse live side by side:
//
//  1. pooled solver/encoder pairs, checked in at Learner retirement and
//     checked out (single-owner) by later Learners over the same system —
//     the cone encodings, predicate encodings, candidate selectors and the
//     solver's learnt clauses all survive;
//  2. a learnt-clause store holding base-system clauses (sat.Solver
//     ExportLearnts) in canonical named form, replayed into fresh or
//     pooled solvers of the same identity;
//  3. a verdict memo for whole relative-induction queries:
//     (target, candidate-set signature, minimize flag) → SAT/UNSAT + core,
//     which lets repeated Synthesize re-verification skip entire queries.
//
// Memory is bounded: cached encoders are evicted LRU once their summed
// encoded-clause footprint exceeds the budget (their learnt clauses are
// exported to the store first, so eviction degrades gracefully), the
// clause store and verdict memo are capped per key, and whole keys are
// evicted LRU beyond maxKeys.
type VerifyCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	useSeq  uint64 // global LRU clock

	// curRecords/curBytes are the durable-layer footprint (stored clauses,
	// verdicts, abducts), maintained incrementally by every mutation under
	// vc.mu so Len/Bytes are O(1); bytesHighWater tracks the largest
	// curBytes ever observed (never reset — the capacity-planning gauge the
	// service reports).
	curRecords     int
	curBytes       int64
	bytesHighWater int64

	clauseBudget int64 // max summed encoded clauses across cached encoders
	maxKeys      int
	maxStore     int // max clauses in one key's clause store
	maxVerdicts  int // max verdict memo entries per key

	// Process-lifetime counters (atomics; see Counters).
	encoderHits   int64
	encoderMisses int64
	checkins      int64
	evictions     int64
	keyEvictions  int64
	verdictHits   int64
	verdictMisses int64
	abductHits    int64
	clausesStored int64
	replayed      int64

	// Persistence counters (internal/proofdb wiring): records restored
	// from a disk snapshot, verdict hits answered by restored memos, and
	// flushes of this cache into a proof store.
	diskClausesLoaded  int64
	diskVerdictsLoaded int64
	diskVerdictHits    int64
	diskFlushes        int64

	// sinks receive the durable delta of every live mutation (new verdict,
	// new abduct, clauses harvested at check-in) — the write-ahead feed a
	// bound ProofDB journals as the facts land, so the crash-loss window is
	// the sync policy's, not the flush interval's. Registered under vc.mu;
	// invoked strictly outside it (a sink appends to a store whose own lock
	// ordering must stay independent of the cache's).
	sinks   []deltaSink
	sinkSeq int64
}

// deltaSink is one registered delta consumer.
type deltaSink struct {
	id int64
	fn func(*proofdb.Snapshot)
}

// Default sizing. The evaluated designs encode a few hundred to a few
// thousand clauses per pooled solver; a 4M-clause budget keeps every cone
// of a MegaOoO-scale sweep warm while bounding worst-case memory.
const (
	DefaultCacheClauseBudget = 4 << 20
	// Keys were design-global before cone-level keying (a handful per
	// process); with Options.ConeLevelCache every distinct target cone is
	// its own key, so the LRU must hold a design's worth of cones — the
	// evaluated OoO designs have a few hundred. Worst-case memory stays
	// bounded: pooled encoders by the global clause budget, clause stores
	// and verdict memos by the per-key caps below.
	defaultCacheMaxKeys     = 512
	defaultCacheMaxStore    = 4096
	defaultCacheMaxVerdicts = 1 << 16
	// exportMaxLen caps the length of learnt clauses admitted to the
	// clause store; long clauses rarely prune search enough to repay
	// replay cost.
	exportMaxLen = 8
	// maxAbductsPerTarget caps the subset-abduct memo per (key, target):
	// distinct proven abducts for one target are rare (candidate drift
	// yields near-identical cores), so a small cap bounds the containment
	// scan while keeping every useful answer.
	maxAbductsPerTarget = 8
)

type cacheEntry struct {
	lastUse uint64
	// pins counts live sessions holding solver state checked out under this
	// key (encoder pool attachments). A pinned entry is exempt from whole-
	// key LRU eviction: retiring it mid-job would reset the append-only
	// clause store a checked-out encoder indexes by position (silently
	// disabling replay for the rest of the job) and discard verdicts the
	// session is still warm on. Unpin happens at pool retirement.
	pins int
	// bytes/records mirror this entry's share of the cache's durable
	// footprint (clauses, verdicts, abducts, key string), maintained by the
	// add paths so whole-key eviction can decrement in O(1).
	bytes    int64
	records  int
	encoders map[uint64]*cachedEncoder // cone key → retired pooled encoder

	clauses   []storedClause
	clauseSet map[string]struct{}

	verdicts map[verdictKey]verdictVal

	// abducts is the subset-abduct memo: target predicate ID → proven
	// abducts (member ID lists). Unlike the verdict memo it is keyed by the
	// target alone, because a positive answer transfers to every candidate
	// superset of its members (see Learner.abduct). Negative (SAT) verdicts
	// never enter here — they are only meaningful for the exact candidate
	// set, which the verdict memo already covers.
	abducts map[string][]abductRec
}

// abductRec is one remembered proven abduct.
type abductRec struct {
	sig      string   // canonical member signature (sorted IDs) for dedup
	preds    []string // member IDs in solver-returned order
	fromDisk bool     // restored from a persistent proof store
}

type cachedEncoder struct {
	pe      *pooledEncoder
	size    int64 // encoded clauses at check-in (budget accounting)
	lastUse uint64
}

type storedClause struct {
	lits []circuit.NamedLit
}

// verdictKey identifies one abduction query up to semantics: the target,
// the candidate set (order-independent) and the core-minimization flag.
// Two independent 64-bit FNV hashes make accidental collisions — which
// would be unsound, unlike cone-key collisions — astronomically unlikely.
type verdictKey struct{ a, b uint64 }

type verdictVal struct {
	ok    bool
	preds []string // abduct member IDs (all drawn from the query's candidates)
	// fromDisk marks verdicts restored from a persistent proof store; hits
	// on them are additionally counted as disk hits (the warm-process
	// acceptance metric).
	fromDisk bool
}

// NewVerifyCache returns an empty cache with default bounds.
func NewVerifyCache() *VerifyCache {
	return NewVerifyCacheWithBudget(DefaultCacheClauseBudget)
}

// NewVerifyCacheWithBudget returns an empty cache whose pooled encoders
// are bounded by the given total encoded-clause budget (≤0 disables
// encoder caching entirely; the clause store and verdict memo still work).
func NewVerifyCacheWithBudget(clauseBudget int64) *VerifyCache {
	return &VerifyCache{
		entries:      make(map[string]*cacheEntry),
		clauseBudget: clauseBudget,
		maxKeys:      defaultCacheMaxKeys,
		maxStore:     defaultCacheMaxStore,
		maxVerdicts:  defaultCacheMaxVerdicts,
	}
}

// sharedCache is the process-global instance used when Options.CrossRunCache
// is on and no explicit Options.Cache is supplied.
var sharedCache = NewVerifyCache()

// SharedCache returns the process-global verification cache.
func SharedCache() *VerifyCache { return sharedCache }

// CacheCounters is a snapshot of cache effectiveness counters.
type CacheCounters struct {
	EncoderHits   int64 // pooled encoders served to a new Learner
	EncoderMisses int64 // checkout attempts that found no cached encoder
	Checkins      int64 // encoders retired into the cache
	Evictions     int64 // encoders dropped by LRU/budget pressure
	KeyEvictions  int64 // whole keys (clause store + memos) dropped by key-LRU pressure
	VerdictHits   int64 // whole abduction queries answered from the memo
	VerdictMisses int64
	AbductHits    int64 // queries answered by the subset-abduct memo
	ClausesStored int64 // learnt clauses admitted to clause stores
	Replayed      int64 // learnt clauses replayed into solvers

	// Persistence counters (zero unless a proof store is attached).
	DiskClausesLoaded  int64 // clauses restored from a disk snapshot
	DiskVerdictsLoaded int64 // verdicts restored from a disk snapshot
	DiskVerdictHits    int64 // verdict hits answered by restored memos
	DiskFlushes        int64 // snapshots of this cache merged into a store

	// Introspection (see Len and Bytes; maintained incrementally).
	Entries     int64 // durable records held: stored clauses + verdicts
	ApproxBytes int64 // approximate heap bytes of the durable layers
	// BytesHighWater is the largest ApproxBytes this cache ever reached —
	// eviction keeps the live figure bounded, so capacity planning needs
	// the peak, not the current value.
	BytesHighWater int64
}

// Counters returns a point-in-time snapshot of the cache counters.
func (vc *VerifyCache) Counters() CacheCounters {
	entries, bytes, hw := vc.footprint()
	return CacheCounters{
		EncoderHits:   atomic.LoadInt64(&vc.encoderHits),
		EncoderMisses: atomic.LoadInt64(&vc.encoderMisses),
		Checkins:      atomic.LoadInt64(&vc.checkins),
		Evictions:     atomic.LoadInt64(&vc.evictions),
		KeyEvictions:  atomic.LoadInt64(&vc.keyEvictions),
		VerdictHits:   atomic.LoadInt64(&vc.verdictHits),
		VerdictMisses: atomic.LoadInt64(&vc.verdictMisses),
		AbductHits:    atomic.LoadInt64(&vc.abductHits),
		ClausesStored: atomic.LoadInt64(&vc.clausesStored),
		Replayed:      atomic.LoadInt64(&vc.replayed),

		DiskClausesLoaded:  atomic.LoadInt64(&vc.diskClausesLoaded),
		DiskVerdictsLoaded: atomic.LoadInt64(&vc.diskVerdictsLoaded),
		DiskVerdictHits:    atomic.LoadInt64(&vc.diskVerdictHits),
		DiskFlushes:        atomic.LoadInt64(&vc.diskFlushes),

		Entries:        int64(entries),
		ApproxBytes:    bytes,
		BytesHighWater: hw,
	}
}

// Len returns the number of durable records the cache currently holds —
// stored learnt clauses plus memoized verdicts and abducts across every
// key. Pooled encoders are not counted: they are transient solver state,
// bounded separately by the clause budget. O(1): the figure is maintained
// incrementally by every mutation.
func (vc *VerifyCache) Len() int {
	n, _, _ := vc.footprint()
	return n
}

// Bytes returns an approximation of the heap footprint of the durable
// layers (clause stores, verdict and abduct memos). The estimate counts
// string payloads plus fixed per-record overheads; it exists so eviction
// behavior is observable, not as an accounting guarantee. O(1).
func (vc *VerifyCache) Bytes() int64 {
	_, b, _ := vc.footprint()
	return b
}

// Per-record byte-estimate overheads (see Bytes).
const (
	litOverhead     = 24 // NamedLit struct: string header + bool + pad
	clauseOverhead  = 32 // storedClause + slice header + map entry share
	verdictOverhead = 64 // verdictKey + verdictVal + map entry share
)

// clauseBytes estimates the heap footprint of one stored clause.
func clauseBytes(lits []circuit.NamedLit) int64 {
	b := int64(clauseOverhead)
	for _, nl := range lits {
		b += litOverhead + int64(len(nl.Name))
	}
	return b
}

// verdictBytes estimates the heap footprint of one memoized verdict.
func verdictBytes(val verdictVal) int64 {
	b := int64(verdictOverhead)
	for _, id := range val.preds {
		b += 16 + int64(len(id))
	}
	return b
}

// abductBytes estimates the heap footprint of one abduct record.
func abductBytes(r abductRec) int64 {
	b := verdictOverhead + int64(len(r.sig))
	for _, id := range r.preds {
		b += 16 + int64(len(id))
	}
	return b
}

// footprint reads the incrementally maintained aggregates under the lock.
func (vc *VerifyCache) footprint() (int, int64, int64) {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return vc.curRecords, vc.curBytes, vc.bytesHighWater
}

// creditLocked charges a footprint delta to an entry and the cache-wide
// aggregates, advancing the high-water mark on growth. Caller holds vc.mu.
// Deltas are negative on whole-key eviction.
func (vc *VerifyCache) creditLocked(e *cacheEntry, records int, bytes int64) {
	e.records += records
	e.bytes += bytes
	vc.curRecords += records
	vc.curBytes += bytes
	if vc.curBytes > vc.bytesHighWater {
		vc.bytesHighWater = vc.curBytes
	}
}

// --- Key pinning -------------------------------------------------------------

// pin marks key as held by a live session (an encoder pool that has solver
// state checked out, or freshly built, under it): the entry is exempt from
// whole-key LRU eviction until the matching unpin. Pins nest.
func (vc *VerifyCache) pin(key string) {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	e := vc.entryLocked(key)
	e.pins++
}

// unpin releases one pin on key. The entry becomes evictable again when
// every holder has released; the deferred key-budget check runs immediately
// so a burst of pinned keys beyond maxKeys drains as sessions retire.
func (vc *VerifyCache) unpin(key string) {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	e, ok := vc.entries[key]
	if !ok || e.pins == 0 {
		return
	}
	e.pins--
	if e.pins == 0 {
		vc.evictKeysLocked()
	}
}

// String renders the counters for tool output.
func (vc *VerifyCache) String() string {
	c := vc.Counters()
	s := fmt.Sprintf(
		"verify-cache{enc hit/miss %d/%d, checkins %d, evictions %d, verdict hit/miss %d/%d, abduct hits %d, clauses stored/replayed %d/%d, entries %d (~%dB)",
		c.EncoderHits, c.EncoderMisses, c.Checkins, c.Evictions,
		c.VerdictHits, c.VerdictMisses, c.AbductHits, c.ClausesStored, c.Replayed,
		c.Entries, c.ApproxBytes)
	if c.DiskClausesLoaded+c.DiskVerdictsLoaded+c.DiskVerdictHits+c.DiskFlushes > 0 {
		s += fmt.Sprintf(", disk loaded %d/%d hits %d flushes %d",
			c.DiskClausesLoaded, c.DiskVerdictsLoaded, c.DiskVerdictHits, c.DiskFlushes)
	}
	return s + "}"
}

// Reset drops every cached entry except those pinned by a live session
// (counters and the bytes high-water are preserved). Intended for tests and
// long-lived services that change workloads; dropping a pinned key would
// orphan checked-out solver state, so those survive until their sessions
// retire.
func (vc *VerifyCache) Reset() {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	for k, e := range vc.entries {
		if e.pins > 0 {
			continue
		}
		vc.curRecords -= e.records
		vc.curBytes -= e.bytes
		delete(vc.entries, k)
	}
}

// entryLocked returns (creating if needed) the entry for key and touches
// its LRU clock. Caller holds vc.mu.
func (vc *VerifyCache) entryLocked(key string) *cacheEntry {
	e, ok := vc.entries[key]
	if !ok {
		e = &cacheEntry{
			encoders:  make(map[uint64]*cachedEncoder),
			clauseSet: make(map[string]struct{}),
			verdicts:  make(map[verdictKey]verdictVal),
			abducts:   make(map[string][]abductRec),
		}
		vc.entries[key] = e
		vc.creditLocked(e, 0, int64(len(key))) // key string + map slot share
		vc.evictKeysLocked()
	}
	vc.useSeq++
	e.lastUse = vc.useSeq
	return e
}

// evictKeysLocked drops whole least-recently-used unpinned keys beyond
// maxKeys. Entries pinned by a live session are never victims — retiring
// one mid-job would reset the append-only clause store its checked-out
// encoders index by position (silently disabling replay for the rest of
// the job). If every entry is pinned the map is allowed to exceed maxKeys
// transiently; unpin re-runs this check as sessions retire.
func (vc *VerifyCache) evictKeysLocked() {
	for len(vc.entries) > vc.maxKeys {
		var victim string
		var victimE *cacheEntry
		var oldest uint64 = ^uint64(0)
		for k, e := range vc.entries {
			if e.pins > 0 {
				continue
			}
			if e.lastUse < oldest {
				oldest, victim, victimE = e.lastUse, k, e
			}
		}
		if victimE == nil {
			return
		}
		atomic.AddInt64(&vc.evictions, int64(len(victimE.encoders)))
		atomic.AddInt64(&vc.keyEvictions, 1)
		vc.curRecords -= victimE.records
		vc.curBytes -= victimE.bytes
		delete(vc.entries, victim)
	}
}

// --- Pooled-encoder checkout / check-in -------------------------------------

// checkout removes and returns the cached encoder for (key, cone), or nil.
// Removal preserves the single-owner invariant: a pooled solver is never
// shared between two live workers.
func (vc *VerifyCache) checkout(key string, cone uint64) *pooledEncoder {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	e, ok := vc.entries[key]
	if !ok {
		atomic.AddInt64(&vc.encoderMisses, 1)
		return nil
	}
	vc.useSeq++
	e.lastUse = vc.useSeq
	ce, ok := e.encoders[cone]
	if !ok {
		atomic.AddInt64(&vc.encoderMisses, 1)
		return nil
	}
	delete(e.encoders, cone)
	atomic.AddInt64(&vc.encoderHits, 1)
	return ce.pe
}

// checkin retires a pooled encoder into the cache at Learner shutdown. Its
// exportable learnt clauses are harvested into the clause store first, so
// even when the encoder itself is dropped (slot occupied, or budget
// pressure evicts it) the derived facts survive. stats may be nil.
func (vc *VerifyCache) checkin(key string, cone uint64, pe *pooledEncoder, stats *Stats) {
	exported := pe.enc.ExportNamedLearnts(exportMaxLen)

	vc.mu.Lock()
	e := vc.entryLocked(key)

	var admitted []proofdb.Clause
	for _, cl := range exported {
		if e.addClauseLocked(cl, vc.maxStore) {
			vc.creditLocked(e, 1, clauseBytes(cl))
			lits := make([]proofdb.Lit, len(cl))
			for i, nl := range cl {
				lits[i] = proofdb.Lit{Name: nl.Name, Neg: nl.Neg}
			}
			admitted = append(admitted, proofdb.Clause{Lits: lits})
		}
	}
	atomic.AddInt64(&vc.clausesStored, int64(len(admitted)))
	if stats != nil {
		atomic.AddInt64(&stats.CacheClausesExported, int64(len(admitted)))
	}

	atomic.AddInt64(&vc.checkins, 1)
	vc.checkinPoolLocked(e, cone, pe, stats)
	var sinks []func(*proofdb.Snapshot)
	if len(admitted) > 0 {
		sinks = vc.sinksLocked()
	}
	vc.mu.Unlock()

	if len(admitted) > 0 {
		emitDelta(sinks, proofdb.KeyRecord{Key: key, Clauses: admitted})
	}
}

// checkinPoolLocked pools the retired encoder under e, or drops it when the
// slot is occupied or pooling is disabled. Caller holds vc.mu.
func (vc *VerifyCache) checkinPoolLocked(e *cacheEntry, cone uint64, pe *pooledEncoder, stats *Stats) {
	if vc.clauseBudget <= 0 {
		return
	}
	if _, occupied := e.encoders[cone]; occupied {
		// First retiree wins; the newcomer's learnt clauses are already in
		// the store, so dropping the duplicate solver loses nothing
		// irreplaceable.
		atomic.AddInt64(&vc.evictions, 1)
		if stats != nil {
			atomic.AddInt64(&stats.CacheEvictions, 1)
		}
		return
	}
	vc.useSeq++
	e.encoders[cone] = &cachedEncoder{
		pe:      pe,
		size:    pe.enc.Stats().Clauses,
		lastUse: vc.useSeq,
	}
	vc.enforceBudgetLocked(stats)
}

// enforceBudgetLocked evicts least-recently-used encoders (across all keys)
// until the summed encoded-clause footprint fits the budget.
func (vc *VerifyCache) enforceBudgetLocked(stats *Stats) {
	for {
		var total int64
		var victimEntry *cacheEntry
		var victimCone uint64
		var oldest uint64 = ^uint64(0)
		n := 0
		for _, e := range vc.entries {
			for cone, ce := range e.encoders {
				total += ce.size
				n++
				if ce.lastUse < oldest {
					oldest, victimEntry, victimCone = ce.lastUse, e, cone
				}
			}
		}
		if total <= vc.clauseBudget || n == 0 {
			return
		}
		delete(victimEntry.encoders, victimCone)
		atomic.AddInt64(&vc.evictions, 1)
		if stats != nil {
			atomic.AddInt64(&stats.CacheEvictions, 1)
		}
	}
}

// --- Learnt-clause store ----------------------------------------------------

func clauseFingerprint(cl []circuit.NamedLit) string {
	// Canonical: sort by (name, sign) so permutations dedup.
	sorted := append([]circuit.NamedLit(nil), cl...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Name != sorted[j].Name {
			return sorted[i].Name < sorted[j].Name
		}
		return !sorted[i].Neg && sorted[j].Neg
	})
	var b []byte
	for _, nl := range sorted {
		if nl.Neg {
			b = append(b, '-')
		}
		b = append(b, nl.Name...)
		b = append(b, 0)
	}
	return string(b)
}

// addClauseLocked dedups and appends one clause; reports whether it was new.
func (e *cacheEntry) addClauseLocked(cl []circuit.NamedLit, maxStore int) bool {
	if len(e.clauses) >= maxStore {
		return false
	}
	fp := clauseFingerprint(cl)
	if _, dup := e.clauseSet[fp]; dup {
		return false
	}
	e.clauseSet[fp] = struct{}{}
	e.clauses = append(e.clauses, storedClause{lits: cl})
	return true
}

// storeLen returns the current clause-store length for key (the replay
// loop's cheap change probe).
func (vc *VerifyCache) storeLen(key string) int {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if e, ok := vc.entries[key]; ok {
		return len(e.clauses)
	}
	return 0
}

// replayInto imports every translatable, not-yet-imported stored clause
// into the pooled encoder. pe must be owned by the caller. Returns the
// number of clauses imported.
func (vc *VerifyCache) replayInto(key string, pe *pooledEncoder) int {
	vc.mu.Lock()
	e, ok := vc.entries[key]
	if !ok {
		vc.mu.Unlock()
		return 0
	}
	// Snapshot: the store is append-only (bounded), clauses are immutable.
	clauses := e.clauses
	vc.mu.Unlock()

	n := 0
	for i, sc := range clauses {
		if pe.imported[i] {
			continue
		}
		if pe.enc.ImportNamedClause(sc.lits) {
			pe.imported[i] = true
			n++
		}
	}
	if n > 0 {
		atomic.AddInt64(&vc.replayed, int64(n))
	}
	return n
}

// --- Verdict memo -----------------------------------------------------------

// verdictKeyFor hashes one abduction query identity. Candidate order is
// canonicalized by sorting IDs; the target is excluded from the candidate
// list by the abduction backends, so its ID participates separately.
func verdictKeyFor(target Pred, cands []Pred, minimize bool) verdictKey {
	ids := make([]string, 0, len(cands))
	for _, c := range cands {
		ids = append(ids, c.ID())
	}
	sort.Strings(ids)
	ha, hb := fnv.New64a(), fnv.New64()
	write := func(s string) {
		ha.Write([]byte(s))
		ha.Write([]byte{0})
		hb.Write([]byte(s))
		hb.Write([]byte{0xff})
	}
	if minimize {
		write("min")
	}
	write(target.ID())
	for _, id := range ids {
		write(id)
	}
	return verdictKey{ha.Sum64(), hb.Sum64()}
}

// lookupVerdict consults the memo and, on a hit, rebuilds the abduct from
// the current candidate instances (IDs are canonical within a fingerprint:
// equal IDs ⇒ semantically identical predicates). The second result
// reports whether the answering memo entry was restored from a persistent
// proof store (a "disk hit").
func (vc *VerifyCache) lookupVerdict(key string, vk verdictKey, target Pred, cands []Pred) (abductResult, bool, bool) {
	vc.mu.Lock()
	e, ok := vc.entries[key]
	if !ok {
		vc.mu.Unlock()
		atomic.AddInt64(&vc.verdictMisses, 1)
		return abductResult{}, false, false
	}
	vc.useSeq++
	e.lastUse = vc.useSeq
	val, ok := e.verdicts[vk]
	vc.mu.Unlock()
	if !ok {
		atomic.AddInt64(&vc.verdictMisses, 1)
		return abductResult{}, false, false
	}
	hit := func() {
		atomic.AddInt64(&vc.verdictHits, 1)
		if val.fromDisk {
			atomic.AddInt64(&vc.diskVerdictHits, 1)
		}
	}
	if !val.ok {
		hit()
		return abductResult{ok: false}, val.fromDisk, true
	}
	byID := make(map[string]Pred, len(cands)+1)
	for _, c := range cands {
		byID[c.ID()] = c
	}
	byID[target.ID()] = target
	preds := make([]Pred, len(val.preds))
	for i, id := range val.preds {
		p, ok := byID[id]
		if !ok {
			// Defensive: treat an unmappable memo entry as a miss rather
			// than fabricating predicates.
			atomic.AddInt64(&vc.verdictMisses, 1)
			return abductResult{}, false, false
		}
		preds[i] = p
	}
	hit()
	return abductResult{preds: preds, ok: true}, val.fromDisk, true
}

// storeVerdict records one computed abduction verdict.
func (vc *VerifyCache) storeVerdict(key string, vk verdictKey, res abductResult) {
	var val verdictVal
	val.ok = res.ok
	if res.ok {
		val.preds = make([]string, len(res.preds))
		for i, p := range res.preds {
			val.preds[i] = p.ID()
		}
	}
	vc.mu.Lock()
	e := vc.entryLocked(key)
	old, exists := e.verdicts[vk]
	if !exists && len(e.verdicts) >= vc.maxVerdicts {
		vc.mu.Unlock()
		return // memo full; favor the working set already present
	}
	if exists {
		vc.creditLocked(e, -1, -verdictBytes(old))
	}
	e.verdicts[vk] = val
	vc.creditLocked(e, 1, verdictBytes(val))
	sinks := vc.sinksLocked()
	vc.mu.Unlock()

	emitDelta(sinks, proofdb.KeyRecord{Key: key, Verdicts: []proofdb.Verdict{{
		A: vk.a, B: vk.b, OK: val.ok,
		Preds: append([]string(nil), val.preds...),
	}}})
}

// --- Subset-abduct memo -----------------------------------------------------

// abductSig canonicalizes an abduct's member-ID list (order-independent).
func abductSig(ids []string) string {
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	var b []byte
	for _, id := range sorted {
		b = append(b, id...)
		b = append(b, 0)
	}
	return string(b)
}

// lookupAbduct consults the subset-abduct memo: a remembered proven abduct
// for target whose members all appear in cands (or are the target itself)
// answers the query regardless of what else cands contains. When several
// remembered abducts qualify the smallest is returned — fewer members mean
// fewer downstream proof obligations. The second result reports whether the
// answering record was restored from a persistent proof store.
func (vc *VerifyCache) lookupAbduct(key string, target Pred, cands []Pred) ([]Pred, bool, bool) {
	byID := make(map[string]Pred, len(cands)+1)
	for _, c := range cands {
		byID[c.ID()] = c
	}
	byID[target.ID()] = target

	vc.mu.Lock()
	e, ok := vc.entries[key]
	if !ok {
		vc.mu.Unlock()
		return nil, false, false
	}
	vc.useSeq++
	e.lastUse = vc.useSeq
	var best *abductRec
	for i := range e.abducts[target.ID()] {
		r := &e.abducts[target.ID()][i]
		contained := true
		for _, id := range r.preds {
			if _, ok := byID[id]; !ok {
				contained = false
				break
			}
		}
		if !contained {
			continue
		}
		if best == nil || len(r.preds) < len(best.preds) {
			best = r
		}
	}
	if best == nil {
		vc.mu.Unlock()
		return nil, false, false
	}
	ids := append([]string(nil), best.preds...)
	fromDisk := best.fromDisk
	vc.mu.Unlock()

	preds := make([]Pred, len(ids))
	for i, id := range ids {
		preds[i] = byID[id]
	}
	atomic.AddInt64(&vc.abductHits, 1)
	if fromDisk {
		atomic.AddInt64(&vc.diskVerdictHits, 1)
	}
	return preds, fromDisk, true
}

// storeAbduct records one solver-proven abduct for target.
func (vc *VerifyCache) storeAbduct(key string, target Pred, res abductResult) {
	if !res.ok {
		return
	}
	ids := make([]string, len(res.preds))
	for i, p := range res.preds {
		ids[i] = p.ID()
	}
	vc.mu.Lock()
	e := vc.entryLocked(key)
	added := e.addAbductLocked(target.ID(), ids, false)
	if added {
		recs := e.abducts[target.ID()]
		vc.creditLocked(e, 1, abductBytes(recs[len(recs)-1]))
	}
	var sinks []func(*proofdb.Snapshot)
	if added {
		sinks = vc.sinksLocked()
	}
	vc.mu.Unlock()

	if added {
		emitDelta(sinks, proofdb.KeyRecord{Key: key, Abducts: []proofdb.Abduct{{
			Target: target.ID(),
			Preds:  append([]string(nil), ids...),
		}}})
	}
}

// addAbductLocked dedups and appends one abduct record; reports whether it
// was new. Caller holds vc.mu (via entryLocked).
func (e *cacheEntry) addAbductLocked(targetID string, ids []string, fromDisk bool) bool {
	recs := e.abducts[targetID]
	if len(recs) >= maxAbductsPerTarget {
		return false
	}
	sig := abductSig(ids)
	for _, r := range recs {
		if r.sig == sig {
			return false
		}
	}
	e.abducts[targetID] = append(recs, abductRec{
		sig:      sig,
		preds:    append([]string(nil), ids...),
		fromDisk: fromDisk,
	})
	return true
}

// --- Persistence (internal/proofdb exchange) --------------------------------

// SnapshotData exports the cache's durable layers — the per-key clause
// stores and verdict memos — as a portable proofdb snapshot. Pooled
// encoders are deliberately excluded: they are live solver state that
// cannot be serialized, and everything irreplaceable about them (their
// learnt clauses) is already harvested into the clause store at check-in.
// Keys are emitted in sorted order, so equal cache contents serialize
// identically. Safe to call concurrently with learners using the cache:
// the snapshot is assembled under the cache lock.
func (vc *VerifyCache) SnapshotData() *proofdb.Snapshot {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	keys := make([]string, 0, len(vc.entries))
	for k := range vc.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	snap := &proofdb.Snapshot{}
	for _, k := range keys {
		e := vc.entries[k]
		kr := proofdb.KeyRecord{Key: k}
		for _, sc := range e.clauses {
			lits := make([]proofdb.Lit, len(sc.lits))
			for i, nl := range sc.lits {
				lits[i] = proofdb.Lit{Name: nl.Name, Neg: nl.Neg}
			}
			kr.Clauses = append(kr.Clauses, proofdb.Clause{Lits: lits})
		}
		vks := make([]verdictKey, 0, len(e.verdicts))
		for vk := range e.verdicts {
			vks = append(vks, vk)
		}
		sort.Slice(vks, func(i, j int) bool {
			if vks[i].a != vks[j].a {
				return vks[i].a < vks[j].a
			}
			return vks[i].b < vks[j].b
		})
		for _, vk := range vks {
			val := e.verdicts[vk]
			kr.Verdicts = append(kr.Verdicts, proofdb.Verdict{
				A: vk.a, B: vk.b, OK: val.ok,
				Preds: append([]string(nil), val.preds...),
			})
		}
		tids := make([]string, 0, len(e.abducts))
		for tid := range e.abducts {
			tids = append(tids, tid)
		}
		sort.Strings(tids)
		for _, tid := range tids {
			recs := append([]abductRec(nil), e.abducts[tid]...)
			sort.Slice(recs, func(i, j int) bool { return recs[i].sig < recs[j].sig })
			for _, r := range recs {
				kr.Abducts = append(kr.Abducts, proofdb.Abduct{
					Target: tid,
					Preds:  append([]string(nil), r.preds...),
				})
			}
		}
		if len(kr.Clauses)+len(kr.Verdicts)+len(kr.Abducts) > 0 {
			snap.Keys = append(snap.Keys, kr)
		}
	}
	return snap
}

// Restore merges a proofdb snapshot into the cache: stored clauses join
// the per-key clause stores (deduped, up to the per-key cap) and verdicts
// are installed where absent, marked as disk-restored so hits on them are
// observable (CacheCounters.DiskVerdictHits, Stats.CacheDiskHits). In-memory
// entries always win over restored ones: a verdict this process computed is
// at least as fresh as anything on disk. Restoring more keys than the
// cache's key budget LRU-evicts the earliest restored ones, exactly as live
// insertion would. Returns the number of clauses and verdict-class records
// (exact verdicts plus cone abducts) admitted.
func (vc *VerifyCache) Restore(s *proofdb.Snapshot) (clauses, verdicts int) {
	if s == nil {
		return 0, 0
	}
	vc.mu.Lock()
	for _, kr := range s.Keys {
		e := vc.entryLocked(kr.Key)
		for _, cl := range kr.Clauses {
			if len(cl.Lits) == 0 {
				continue
			}
			lits := make([]circuit.NamedLit, len(cl.Lits))
			for i, l := range cl.Lits {
				lits[i] = circuit.NamedLit{Name: l.Name, Neg: l.Neg}
			}
			if e.addClauseLocked(lits, vc.maxStore) {
				clauses++
				vc.creditLocked(e, 1, clauseBytes(lits))
			}
		}
		for _, v := range kr.Verdicts {
			vk := verdictKey{a: v.A, b: v.B}
			if _, exists := e.verdicts[vk]; exists {
				continue
			}
			if len(e.verdicts) >= vc.maxVerdicts {
				continue
			}
			val := verdictVal{
				ok:       v.OK,
				preds:    append([]string(nil), v.Preds...),
				fromDisk: true,
			}
			e.verdicts[vk] = val
			vc.creditLocked(e, 1, verdictBytes(val))
			verdicts++
		}
		for _, a := range kr.Abducts {
			if a.Target == "" {
				continue
			}
			if e.addAbductLocked(a.Target, a.Preds, true) {
				recs := e.abducts[a.Target]
				vc.creditLocked(e, 1, abductBytes(recs[len(recs)-1]))
				verdicts++
			}
		}
	}
	vc.mu.Unlock()
	atomic.AddInt64(&vc.diskClausesLoaded, int64(clauses))
	atomic.AddInt64(&vc.diskVerdictsLoaded, int64(verdicts))
	return clauses, verdicts
}

// noteDiskFlush counts one merge of this cache into a persistent store.
func (vc *VerifyCache) noteDiskFlush() { atomic.AddInt64(&vc.diskFlushes, 1) }

// addDeltaSink registers fn to receive every future durable delta and
// returns its removal function. Restores from disk are not replayed into
// sinks (the store already holds them); only live derivations flow.
func (vc *VerifyCache) addDeltaSink(fn func(*proofdb.Snapshot)) (remove func()) {
	vc.mu.Lock()
	vc.sinkSeq++
	id := vc.sinkSeq
	vc.sinks = append(vc.sinks, deltaSink{id: id, fn: fn})
	vc.mu.Unlock()
	return func() {
		vc.mu.Lock()
		for i, s := range vc.sinks {
			if s.id == id {
				vc.sinks = append(vc.sinks[:i], vc.sinks[i+1:]...)
				break
			}
		}
		vc.mu.Unlock()
	}
}

// sinksLocked snapshots the registered sink functions (nil when none).
// Caller holds vc.mu; the returned copy is safe to invoke after unlocking.
func (vc *VerifyCache) sinksLocked() []func(*proofdb.Snapshot) {
	if len(vc.sinks) == 0 {
		return nil
	}
	fns := make([]func(*proofdb.Snapshot), len(vc.sinks))
	for i, s := range vc.sinks {
		fns[i] = s.fn
	}
	return fns
}

// emitDelta delivers one key's delta to the given sinks. Must be called
// with vc.mu released: sinks do I/O and take their own locks.
func emitDelta(sinks []func(*proofdb.Snapshot), kr proofdb.KeyRecord) {
	if len(sinks) == 0 {
		return
	}
	s := &proofdb.Snapshot{Keys: []proofdb.KeyRecord{kr}}
	for _, fn := range sinks {
		fn(s)
	}
}
