package hhoudini

import (
	"math/rand"
	"testing"

	"hhoudini/internal/circuit"
)

// coneOptions is warmOptions plus cone-level cache keys: every cache
// artifact (clause stores, verdict memos, abduct memos, retired encoders)
// is keyed by the target's fan-in-cone fingerprint instead of the
// whole-circuit fingerprint.
func coneOptions(c *VerifyCache) Options {
	o := warmOptions(c)
	o.ConeLevelCache = true
	return o
}

// embeddedBacktrackSystem builds the backtrack cone (T, A, B, C, X over the
// single input "in") either alone or surrounded by unrelated machinery that
// is declared FIRST — so global node ids, register order, and the
// whole-circuit fingerprint all differ between the two designs while the
// cone itself stays isomorphic. The input interface is identical (cone keys
// hash it), which is the realistic cross-design shape: same ports, more
// internal state.
func embeddedBacktrackSystem(t *testing.T, junk bool) (*System, []Pred, Pred) {
	t.Helper()
	b := circuit.NewBuilder()
	in := b.Input("in", 1)
	if junk {
		j0 := b.Register("zz_j0", 1, 0)
		j1 := b.Register("zz_j1", 1, 1)
		b.SetNext("zz_j0", circuit.Word{b.Xor2(j0[0], in[0])})
		b.SetNext("zz_j1", circuit.Word{b.Or2(j1[0], b.And2(j0[0], in[0]))})
	}
	b.Register("T", 1, 1)
	A := b.Register("A", 1, 1)
	B := b.Register("B", 1, 1)
	C := b.Register("C", 1, 1)
	X := b.Register("X", 1, 1)
	b.SetNext("T", circuit.Word{b.Or2(b.And2(A[0], B[0]), b.And2(B[0], C[0]))})
	b.SetNext("A", X)
	b.SetNext("B", B)
	b.SetNext("C", C)
	b.SetNext("X", in)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys := &System{Circuit: c}
	universe := []Pred{
		regEq{reg: "T", val: 1}, regEq{reg: "A", val: 1}, regEq{reg: "B", val: 1},
		regEq{reg: "C", val: 1}, regEq{reg: "X", val: 1},
	}
	return sys, universe, regEq{reg: "T", val: 1}
}

// TestConeCacheCrossDesignTransfer is the tentpole's behavioral contract:
// a cache populated by learning on one design answers queries on a second,
// structurally different design whose target cone is isomorphic — and the
// whole-circuit ablation, by construction, cannot.
func TestConeCacheCrossDesignTransfer(t *testing.T) {
	plain, universe, target := embeddedBacktrackSystem(t, false)
	junk, junkUniverse, junkTarget := embeddedBacktrackSystem(t, true)

	// Precondition: the designs must be distinguishable at whole-circuit
	// granularity, or the test proves nothing.
	if plain.Circuit.Fingerprint() == junk.Circuit.Fingerprint() {
		t.Fatal("designs share a whole-circuit fingerprint; the embedding is vacuous")
	}
	// And indistinguishable at cone granularity over the target's support.
	support := []string{"T", "A", "B", "C", "X"}
	kp, okP := plain.ConeCacheKey(support)
	kj, okJ := junk.ConeCacheKey(support)
	if !okP || !okJ {
		t.Fatal("cone keys must be cacheable for unconstrained systems")
	}
	if kp != kj {
		t.Fatalf("isomorphic cones keyed differently:\n plain %s\n junk  %s", kp, kj)
	}

	// Reference: what a cold learner finds on the junk design.
	cold := NewLearner(junk, minerOf(junkUniverse...), coldOptions())
	invCold, err := cold.Learn([]Pred{junkTarget})
	if err != nil {
		t.Fatal(err)
	}
	if invCold == nil {
		t.Fatal("cold run must find the {B,C} invariant")
	}

	// Warm path: populate the cache on the plain design...
	cache := NewVerifyCache()
	l1 := NewLearner(plain, minerOf(universe...), coneOptions(cache))
	if inv, err := l1.Learn([]Pred{target}); err != nil || inv == nil {
		t.Fatalf("plain-design run: inv=%v err=%v", inv, err)
	}
	if cache.Counters().Checkins == 0 {
		t.Fatal("plain-design learner retired no encoders into the cache")
	}

	// ...then learn the junk design from the same cache.
	l2 := NewLearner(junk, minerOf(junkUniverse...), coneOptions(cache))
	invWarm, err := l2.Learn([]Pred{junkTarget})
	if err != nil {
		t.Fatal(err)
	}
	if invWarm == nil {
		t.Fatal("warm run must find an invariant")
	}
	st := l2.Stats()
	if st.CacheVerdictHits+st.CacheAbductHits == 0 {
		t.Fatalf("no cross-design memo hits (verdicts=%d abducts=%d); cone transfer is dead",
			st.CacheVerdictHits, st.CacheAbductHits)
	}

	// Soundness: the transferred answers must reproduce the cold invariant
	// exactly and survive an independent audit on the junk design's own
	// encoder.
	gc, gw := ids(invCold), ids(invWarm)
	if len(gc) != len(gw) {
		t.Fatalf("invariants differ: cold %v warm %v", gc, gw)
	}
	for id := range gc {
		if !gw[id] {
			t.Fatalf("warm invariant %v missing %s (cold %v)", gw, id, gc)
		}
	}
	if err := Audit(junk, invWarm); err != nil {
		t.Fatalf("transferred invariant fails audit: %v", err)
	}

	// Ablation contrast: with whole-circuit keys (ConeLevelCache off), the
	// same pair of designs shares nothing.
	ablCache := NewVerifyCache()
	a1 := NewLearner(plain, minerOf(universe...), warmOptions(ablCache))
	if _, err := a1.Learn([]Pred{target}); err != nil {
		t.Fatal(err)
	}
	a2 := NewLearner(junk, minerOf(junkUniverse...), warmOptions(ablCache))
	if _, err := a2.Learn([]Pred{junkTarget}); err != nil {
		t.Fatal(err)
	}
	ast := a2.Stats()
	if ast.CacheVerdictHits+ast.CacheAbductHits+ast.CacheEncoderHits != 0 {
		t.Fatalf("whole-circuit ablation hit across designs (verdicts=%d abducts=%d encoders=%d); keys leaked",
			ast.CacheVerdictHits, ast.CacheAbductHits, ast.CacheEncoderHits)
	}
}

// TestConeCacheDifferentialRandomSystems repeats the cache soundness sweep
// with cone-level keys: on random tiny systems a cold learner and two warm
// cone-keyed learners must agree exactly, every invariant must audit, and
// aggregated over the sweep the second warm learner must actually hit the
// cone-keyed memos.
func TestConeCacheDifferentialRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(20250808))
	var hits int64
	checked := 0
	for iter := 0; iter < 40; iter++ {
		sys, universe := randomSystem(t, rng)
		target := universe[rng.Intn(len(universe))].(regEq)
		if ok, _ := target.Eval(sys.Circuit, circuit.InitSnapshot(sys.Circuit)); !ok {
			continue
		}
		checked++

		cold := NewLearner(sys, minerOf(universe...), coldOptions())
		invCold, err := cold.Learn([]Pred{target})
		if err != nil {
			t.Fatal(err)
		}

		cache := NewVerifyCache()
		var invWarm *Invariant
		for round := 0; round < 2; round++ {
			l := NewLearner(sys, minerOf(universe...), coneOptions(cache))
			invWarm, err = l.Learn([]Pred{target})
			if err != nil {
				t.Fatal(err)
			}
			if round == 1 {
				st := l.Stats()
				hits += st.CacheVerdictHits + st.CacheAbductHits
			}
		}

		if (invCold == nil) != (invWarm == nil) {
			t.Fatalf("iter %d: cold found=%v warm found=%v", iter, invCold != nil, invWarm != nil)
		}
		if invCold == nil {
			continue
		}
		gc, gw := ids(invCold), ids(invWarm)
		if len(gc) != len(gw) {
			t.Fatalf("iter %d: invariant sizes differ: cold %v warm %v", iter, gc, gw)
		}
		for id := range gc {
			if !gw[id] {
				t.Fatalf("iter %d: warm invariant %v missing %s (cold %v)", iter, gw, id, gc)
			}
		}
		if err := Audit(sys, invWarm); err != nil {
			t.Fatalf("iter %d: warm cone-keyed invariant fails audit: %v", iter, err)
		}
	}
	if checked < 10 {
		t.Fatalf("sweep too small: only %d usable systems", checked)
	}
	if hits == 0 {
		t.Fatal("second warm runs never hit a cone-keyed memo; differential is vacuous")
	}
	t.Logf("random systems: %d checked, %d cone-keyed memo hits", checked, hits)
}

// TestConeCachePersistenceAcrossDesigns drives the v2 coneabd records end
// to end: learn design A into an on-disk store, close every proof store
// (simulating process exit), then learn structurally different design B in
// a fresh cache bound to the same directory — the warm answers must come
// from disk.
func TestConeCachePersistenceAcrossDesigns(t *testing.T) {
	dir := t.TempDir()
	defer CloseProofDBs()

	plain, universe, target := embeddedBacktrackSystem(t, false)
	o1 := coneOptions(NewVerifyCache())
	o1.CacheDir = dir
	l1 := NewLearner(plain, minerOf(universe...), o1)
	if inv, err := l1.Learn([]Pred{target}); err != nil || inv == nil {
		t.Fatalf("first process: inv=%v err=%v", inv, err)
	}
	if err := CloseProofDBs(); err != nil {
		t.Fatal(err)
	}

	junk, junkUniverse, junkTarget := embeddedBacktrackSystem(t, true)
	o2 := coneOptions(NewVerifyCache())
	o2.CacheDir = dir
	l2 := NewLearner(junk, minerOf(junkUniverse...), o2)
	invWarm, err := l2.Learn([]Pred{junkTarget})
	if err != nil {
		t.Fatal(err)
	}
	if invWarm == nil {
		t.Fatal("warm-from-disk run must find an invariant")
	}
	st := l2.Stats()
	if st.CacheDiskLoads == 0 {
		t.Fatal("second process loaded nothing from the proof store")
	}
	if st.CacheDiskHits == 0 {
		t.Fatalf("no disk-backed hits on the second design (verdicts=%d abducts=%d)",
			st.CacheVerdictHits, st.CacheAbductHits)
	}
	if got := ids(invWarm); !got["B==1"] || !got["C==1"] {
		t.Fatalf("disk-warmed invariant %v must contain B==1 and C==1", got)
	}
	if err := Audit(junk, invWarm); err != nil {
		t.Fatalf("disk-warmed invariant fails audit: %v", err)
	}
}
