package hhoudini

import (
	"sync/atomic"

	"hhoudini/internal/circuit"
	"hhoudini/internal/sat"
)

// defaultShareRingSize is the per-worker ring capacity when
// Options.ShareRingSize is 0. Each entry is one low-LBD learnt clause in
// canonical named form; the ring overwrites oldest, so the size bounds
// memory and staleness, never throughput.
const defaultShareRingSize = 256

// clauseExchange is the intra-Learn clause-sharing fabric
// (Options.ShareClauses): one lock-free sat.ShareRing per worker. A
// worker's solver publishes its hottest learnt clauses (low LBD, short)
// into the worker's own ring from inside the CDCL conflict loop, and
// drains every sibling ring at its restart boundaries — so a lemma derived
// by one worker prunes its siblings' searches while their Learn tasks are
// still running, instead of only meeting them through the cross-run store
// at solver retirement.
//
// Clauses travel in canonical named form (circuit.NamedLit): names denote
// the same boolean function in every encoder over the same circuit, which
// makes a drained clause sound to add to any sibling solver regardless of
// variable numbering. Clauses touching unnamed (solver-local) variables
// are never published.
type clauseExchange struct {
	rings []*sat.ShareRing[[]circuit.NamedLit]
	stats *Stats
}

// newClauseExchange builds the fabric for the given worker count.
func newClauseExchange(workers, ringSize int, stats *Stats) *clauseExchange {
	if ringSize <= 0 {
		ringSize = defaultShareRingSize
	}
	x := &clauseExchange{rings: make([]*sat.ShareRing[[]circuit.NamedLit], workers), stats: stats}
	for i := range x.rings {
		x.rings[i] = sat.NewShareRing[[]circuit.NamedLit](ringSize)
	}
	return x
}

// install wires enc's solver into the exchange as worker w's producer and a
// consumer of every sibling ring. The single-producer invariant of
// ShareRing holds because a worker goroutine runs one solver at a time:
// every solver the worker owns publishes into the same ring, serially.
//
// Consumer cursors start at zero, so the first drain replays the rings'
// entire live window into the solver — deliberate: a freshly constructed or
// checked-out solver wants the current pool of hot lemmas. Re-imported
// duplicates are sound and short-lived (learnt-DB reduction removes them).
//
// The drain callback runs at a restart boundary with the solver at level 0
// and polls the solver's interrupt flag between clauses, so a cancelled
// LearnCtx stops the drain within one clause (the solver then returns
// Unknown and the worker surfaces ctx.Err(), per the PR 5 protocol).
func (x *clauseExchange) install(w int, enc *circuit.Encoder) {
	s := enc.S
	cursors := make([]sat.RingCursor, len(x.rings))
	export := func(lits []sat.Lit, lbd int) {
		named := enc.NameClause(lits)
		if named == nil {
			return
		}
		x.rings[w].Publish(named)
		atomic.AddInt64(&x.stats.ShareExported, 1)
	}
	drain := func() {
		for i := range x.rings {
			if i == w {
				continue
			}
			x.rings[i].Drain(&cursors[i], func(cl []circuit.NamedLit) bool {
				if s.Interrupted() {
					return false
				}
				if enc.ImportNamedClause(cl) {
					atomic.AddInt64(&x.stats.ShareImported, 1)
				}
				return true
			})
		}
	}
	s.SetExchangeHooks(export, drain)
}
