package hhoudini

import (
	"fmt"
	"math/rand"
	"testing"

	"hhoudini/internal/circuit"
)

// coldOptions is the PR 1 configuration: incremental solving with per-Learner
// pooling but no memoization across Learner instances.
func coldOptions() Options {
	return Options{Workers: 1, MinimizeCores: true, IncrementalSolver: true}
}

// warmOptions shares one private VerifyCache across Learners.
func warmOptions(c *VerifyCache) Options {
	o := coldOptions()
	o.CrossRunCache = true
	o.Cache = c
	return o
}

// TestCrossRunDifferentialRandomSystems is the cache soundness sweep: on
// random tiny systems, a cold learner and two warm learners sharing one
// cache (the second answering from the first's memo) must agree exactly —
// same verdict, same invariant predicate set — and every invariant must
// audit. Aggregated over the sweep the second warm learner must actually
// hit the verdict memo, or the test is vacuous.
func TestCrossRunDifferentialRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(20250806))
	var verdictHits, replayed int64
	checked := 0
	for iter := 0; iter < 40; iter++ {
		sys, universe := randomSystem(t, rng)
		target := universe[rng.Intn(len(universe))].(regEq)
		if ok, _ := target.Eval(sys.Circuit, circuit.InitSnapshot(sys.Circuit)); !ok {
			continue
		}
		checked++

		cold := NewLearner(sys, minerOf(universe...), coldOptions())
		invCold, err := cold.Learn([]Pred{target})
		if err != nil {
			t.Fatal(err)
		}

		cache := NewVerifyCache()
		var invWarm *Invariant
		for round := 0; round < 2; round++ {
			l := NewLearner(sys, minerOf(universe...), warmOptions(cache))
			invWarm, err = l.Learn([]Pred{target})
			if err != nil {
				t.Fatal(err)
			}
			if round == 1 {
				verdictHits += l.Stats().CacheVerdictHits
				replayed += l.Stats().CacheClausesReplayed
			}
		}

		if (invCold == nil) != (invWarm == nil) {
			t.Fatalf("iter %d: cold found=%v warm found=%v", iter, invCold != nil, invWarm != nil)
		}
		if invCold == nil {
			continue
		}
		gc, gw := ids(invCold), ids(invWarm)
		if len(gc) != len(gw) {
			t.Fatalf("iter %d: invariant sizes differ: cold %v warm %v", iter, gc, gw)
		}
		for id := range gc {
			if !gw[id] {
				t.Fatalf("iter %d: warm invariant %v missing %s (cold %v)", iter, gw, id, gc)
			}
		}
		if err := Audit(sys, invWarm); err != nil {
			t.Fatalf("iter %d: warm invariant fails audit: %v", iter, err)
		}
	}
	if checked < 10 {
		t.Fatalf("sweep too small: only %d usable systems", checked)
	}
	if verdictHits == 0 {
		t.Fatal("second warm runs never hit the verdict memo; differential is vacuous")
	}
	t.Logf("random systems: %d checked, %d verdict hits, %d clauses replayed", checked, verdictHits, replayed)
}

// TestCrossRunEncoderCheckoutAndClauseReplay forces the cache paths below
// the verdict memo: the second learner flips MinimizeCores, so every memo
// key differs and each query must actually solve — on encoders checked out
// of the cache, with the first run's learnt clauses replayed in.
func TestCrossRunEncoderCheckoutAndClauseReplay(t *testing.T) {
	sys, universe, target := backtrackSystem(t)
	cache := NewVerifyCache()

	l1 := NewLearner(sys, minerOf(universe...), warmOptions(cache))
	inv1, err := l1.Learn([]Pred{target})
	if err != nil {
		t.Fatal(err)
	}
	if inv1 == nil {
		t.Fatal("first run must find the {B,C} invariant")
	}
	if got := cache.Counters().Checkins; got == 0 {
		t.Fatal("first learner retired no encoders into the cache")
	}

	opts := warmOptions(cache)
	opts.MinimizeCores = false // different verdict keys: memo cannot answer
	l2 := NewLearner(sys, minerOf(universe...), opts)
	inv2, err := l2.Learn([]Pred{target})
	if err != nil {
		t.Fatal(err)
	}
	if inv2 == nil {
		t.Fatal("second run must find an invariant")
	}
	if err := Audit(sys, inv2); err != nil {
		t.Fatalf("invariant proved on a checked-out solver fails audit: %v", err)
	}
	st := l2.Stats()
	if st.CacheVerdictHits != 0 {
		t.Fatalf("MinimizeCores flip must miss the memo, got %d hits", st.CacheVerdictHits)
	}
	if st.CacheEncoderHits == 0 {
		t.Fatal("second learner never checked a pooled encoder out of the cache")
	}
	if got := ids(inv2); !got["B==1"] || !got["C==1"] {
		t.Fatalf("second run invariant %v must contain B==1 and C==1", got)
	}
}

// envSystem builds x' = x ∧ ¬in with x init 1: under the environment
// assumption in==0 the target x==1 is inductive; under in==1 it is not.
func envSystem(t *testing.T, pinInput uint64, envKey string) (*System, Pred) {
	t.Helper()
	b := circuit.NewBuilder()
	in := b.Input("in", 1)
	x := b.Register("x", 1, 1)
	b.SetNext("x", circuit.Word{b.And2(x[0], b.Not(in[0]))})
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys := &System{
		Circuit: c,
		Constrain: func(enc *circuit.Encoder) error {
			lits, err := enc.InputLits("in")
			if err != nil {
				return err
			}
			l := lits[0]
			if pinInput == 0 {
				l = l.Not()
			}
			enc.AssertLit(l)
			return nil
		},
		EnvKey: envKey,
	}
	return sys, regEq{reg: "x", val: 1}
}

// TestCrossRunEnvKeyInvalidation is the invalidation contract: a changed
// environment assumption (different EnvKey over the same circuit) must miss
// every layer of the cache, while returning to a previously seen EnvKey
// hits again. The two environments provably need different verdicts, so a
// stale hit would be unsound, not just slow.
func TestCrossRunEnvKeyInvalidation(t *testing.T) {
	cache := NewVerifyCache()
	learn := func(pin uint64, key string) (*Learner, *Invariant) {
		sys, target := envSystem(t, pin, key)
		l := NewLearner(sys, minerOf(target), warmOptions(cache))
		inv, err := l.Learn([]Pred{target})
		if err != nil {
			t.Fatal(err)
		}
		return l, inv
	}

	// Round 1: in==0, invariant exists. Populates the cache.
	l0, inv0 := learn(0, "in=0")
	if inv0 == nil {
		t.Fatal("x==1 must be inductive under in==0")
	}
	if l0.Stats().CacheVerdictHits != 0 || l0.Stats().CacheEncoderHits != 0 {
		t.Fatal("first run over an empty cache cannot hit")
	}

	// Round 2: in==1, a different EnvKey. Must miss everywhere — and the
	// fresh solve must reach the opposite verdict.
	l1, inv1 := learn(1, "in=1")
	if inv1 != nil {
		t.Fatal("x==1 must NOT be inductive under in==1; a stale cache hit leaked across environments")
	}
	st := l1.Stats()
	if st.CacheVerdictHits != 0 || st.CacheEncoderHits != 0 {
		t.Fatalf("changed EnvKey must miss: verdict hits %d, encoder hits %d",
			st.CacheVerdictHits, st.CacheEncoderHits)
	}
	if st.CacheEncoderMisses == 0 {
		t.Fatal("changed EnvKey run recorded no encoder misses; cache was never consulted")
	}

	// Round 3: back to in==0. The original entry must still be live.
	l2, inv2 := learn(0, "in=0")
	if inv2 == nil {
		t.Fatal("returning to in==0 must still find the invariant")
	}
	if l2.Stats().CacheVerdictHits == 0 {
		t.Fatal("repeat of a cached EnvKey must hit the verdict memo")
	}
}

// TestUncacheableSystemBypassesCache: a System with a non-nil Constrain but
// no EnvKey has no canonical identity, so the learner must run fully cold —
// no counters move, and the supplied cache stays untouched.
func TestUncacheableSystemBypassesCache(t *testing.T) {
	cache := NewVerifyCache()
	sys, target := envSystem(t, 0, "in=0")
	sys.EnvKey = "" // same constraint, but anonymous: not cacheable
	if _, ok := sys.CacheKey(); ok {
		t.Fatal("non-nil Constrain with empty EnvKey must not be cacheable")
	}
	l := NewLearner(sys, minerOf(target), warmOptions(cache))
	inv, err := l.Learn([]Pred{target})
	if err != nil {
		t.Fatal(err)
	}
	if inv == nil {
		t.Fatal("uncacheable learner must still learn")
	}
	st := l.Stats()
	if st.CacheVerdictHits+st.CacheEncoderHits+st.CacheEncoderMisses+st.CacheClausesReplayed != 0 {
		t.Fatalf("uncacheable system moved cache counters: verdict %d, enc hit/miss %d/%d, replayed %d",
			st.CacheVerdictHits, st.CacheEncoderHits, st.CacheEncoderMisses, st.CacheClausesReplayed)
	}
	if c := cache.Counters(); c != (CacheCounters{}) {
		t.Fatalf("uncacheable system touched the cache: %+v", c)
	}
}

// TestVerifyCacheEvictionBudget pins the budget semantics: a 1-clause
// budget admits no encoder (every check-in is immediately evicted), yet the
// verdict memo and clause store — which the budget does not govern — keep
// serving repeats. A zero budget disables encoder retention outright.
func TestVerifyCacheEvictionBudget(t *testing.T) {
	sys := andGateSystem(t)
	universe := []Pred{
		regEq{reg: "A", val: 1}, regEq{reg: "B", val: 1}, regEq{reg: "C", val: 1},
		regEq{reg: "D", val: 1}, regEq{reg: "E", val: 1},
	}
	target := regEq{reg: "A", val: 1}

	for _, budget := range []int64{1, 0} {
		cache := NewVerifyCacheWithBudget(budget)
		l1 := NewLearner(sys, minerOf(universe...), warmOptions(cache))
		if inv, err := l1.Learn([]Pred{target}); err != nil || inv == nil {
			t.Fatalf("budget %d: first run err=%v inv=%v", budget, err, inv)
		}
		c := cache.Counters()
		if budget == 1 && c.Evictions == 0 {
			t.Fatal("budget 1: retiring an encoder must trigger budget eviction")
		}
		if budget == 0 && c.Evictions != 0 {
			t.Fatalf("budget 0: nothing is retained, nothing to evict, got %d", c.Evictions)
		}

		l2 := NewLearner(sys, minerOf(universe...), warmOptions(cache))
		inv, err := l2.Learn([]Pred{target})
		if err != nil || inv == nil {
			t.Fatalf("budget %d: second run err=%v inv=%v", budget, err, inv)
		}
		st := l2.Stats()
		if st.CacheEncoderHits != 0 {
			t.Fatalf("budget %d: no encoder can survive, yet checkout hit %d times", budget, st.CacheEncoderHits)
		}
		if st.CacheVerdictHits == 0 {
			t.Fatalf("budget %d: verdict memo must survive encoder eviction", budget)
		}
		if err := Audit(sys, inv); err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
	}
}

// TestVerifyCacheMaxKeysEviction drives more distinct cache keys than
// maxKeys through the verdict store and checks whole-key LRU eviction keeps
// the table bounded.
func TestVerifyCacheMaxKeysEviction(t *testing.T) {
	vc := NewVerifyCache()
	p := regEq{reg: "A", val: 1}
	vk := verdictKeyFor(p, nil, true)
	for i := 0; i < defaultCacheMaxKeys*2; i++ {
		vc.storeVerdict(string(rune('a'+i%26))+string(rune('0'+i/26)), vk, abductResult{ok: false})
	}
	vc.mu.Lock()
	n := len(vc.entries)
	vc.mu.Unlock()
	if n > defaultCacheMaxKeys {
		t.Fatalf("cache holds %d keys, budget is %d", n, defaultCacheMaxKeys)
	}
}

// TestCrossRunConcurrentLearners stresses the concurrency contract: many
// Learners (each itself multi-worker) share one cache simultaneously over
// the same system. Under -race this pins the locking discipline; the
// checkout semantics guarantee no two live workers ever share a solver, so
// every goroutine must still converge on the same audited invariant.
func TestCrossRunConcurrentLearners(t *testing.T) {
	sys, universe, target := backtrackSystem(t)
	cache := NewVerifyCache()
	const goroutines = 8
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			opts := warmOptions(cache)
			opts.Workers = 2
			l := NewLearner(sys, minerOf(universe...), opts)
			inv, err := l.Learn([]Pred{target})
			if err != nil {
				errs <- err
				return
			}
			if inv == nil {
				errs <- fmt.Errorf("concurrent learner found no invariant")
				return
			}
			if got := ids(inv); !got["B==1"] || !got["C==1"] {
				errs <- fmt.Errorf("invariant %v missing B==1/C==1", got)
				return
			}
			errs <- Audit(sys, inv)
		}()
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestConeKeyMemoizedAndDeterministic: equal predicate IDs hash to equal
// cone keys on every call (the memo must be stable), and cones over
// different variable sets separate.
func TestConeKeyMemoizedAndDeterministic(t *testing.T) {
	a := regEq{reg: "A", val: 1}
	a2 := regEq{reg: "A", val: 1}
	bp := regEq{reg: "B", val: 0}
	if coneKey(a) != coneKey(a) || coneKey(a) != coneKey(a2) {
		t.Fatal("coneKey not stable across calls for equal predicates")
	}
	if coneKey(a) == coneKey(bp) {
		t.Fatal("distinct variable sets collided (FNV64 over different inputs)")
	}
}
