package hhoudini

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"hhoudini/internal/faultinject"
	"hhoudini/internal/sat"
)

// Escalation-ladder tuning (Options.InitialSolverConflicts documents the
// user-facing semantics).
const (
	// defaultInitialConflicts is the first-attempt budget when
	// Options.InitialSolverConflicts is 0. Small on purpose: H-Houdini's
	// whole premise (§3.2.4) is that relative-induction queries are
	// individually cheap, so the common case resolves on the first rung and
	// the ladder only pays for the rare hard query.
	defaultInitialConflicts = 2048
	// escalationFactor multiplies the budget after each Unknown.
	escalationFactor = 4
	// escalationUnboundedAfter: with no user limit, once the next rung would
	// exceed this many conflicts the final attempt runs unbounded — matching
	// the pre-ladder behaviour of never giving up, just with bounded
	// intermediate probes.
	escalationUnboundedAfter = 1 << 21
)

// solveAbduction answers one abduction query under the budget-escalation
// ladder: bounded attempts starting at the configured initial conflict
// budget, escalating ×escalationFactor per sat.Unknown (Stats.QueryRetries)
// until the query resolves, the learner is cancelled (errLearnInterrupted),
// or the ladder tops out at Options.MaxSolverConflicts (ErrBudgetExceeded,
// Stats.QueryBudgetAbandons). Budgets are armed relative to the solver's
// cumulative conflict count (sat.SetConflictBudget), so each rung grants
// fresh effort even on a long-lived pooled solver; an escalated re-solve is
// never wasted work either, since the solver keeps the learnt clauses of
// the abandoned attempt.
func (l *Learner) solveAbduction(s *sat.Solver, assumps []sat.Lit, target Pred) (sat.Status, []sat.Lit, error) {
	initial := l.opts.InitialSolverConflicts
	limit := l.opts.MaxSolverConflicts
	if initial < 0 {
		// Ladder disabled (the budget-escalation ablation): one attempt,
		// bounded only by the user limit.
		if limit > 0 {
			s.SetConflictBudget(limit)
		} else {
			s.SetConflictBudget(-1)
		}
		st, core := s.SolveWithCore(assumps)
		if st != sat.Unknown {
			return st, core, nil
		}
		if l.stop.Load() || s.Interrupted() {
			return st, nil, errLearnInterrupted
		}
		atomic.AddInt64(&l.stats.QueryBudgetAbandons, 1)
		return st, nil, fmt.Errorf("abduction query for %s (single attempt, limit %d): %w", target, limit, ErrBudgetExceeded)
	}
	if initial == 0 {
		initial = defaultInitialConflicts
	}
	budget := initial
	if limit > 0 && budget > limit {
		budget = limit
	}
	for {
		if l.stop.Load() {
			return sat.Unknown, nil, errLearnInterrupted
		}
		s.SetConflictBudget(budget) // budget<0 ⇒ unbounded final attempt
		st, core := s.SolveWithCore(assumps)
		if st != sat.Unknown {
			return st, core, nil
		}
		if l.stop.Load() || s.Interrupted() {
			return st, nil, errLearnInterrupted
		}
		atLimit := budget < 0 || (limit > 0 && budget >= limit)
		if atLimit {
			// An Unknown with no budget left and no interrupt is a solver
			// give-up (in practice: an injected fault or a user limit).
			atomic.AddInt64(&l.stats.QueryBudgetAbandons, 1)
			return st, nil, fmt.Errorf("abduction query for %s (limit %d conflicts): %w", target, limit, ErrBudgetExceeded)
		}
		atomic.AddInt64(&l.stats.QueryRetries, 1)
		budget *= escalationFactor
		if limit > 0 {
			if budget > limit {
				budget = limit
			}
		} else if budget > escalationUnboundedAfter {
			budget = -1 // final attempt unbounded
		}
	}
}

// armMinimizeBudget grants core minimization a fresh conflict allowance
// after the main query resolved. MinimizeCore treats an Unknown deletion
// probe as "keep the literal" — sound, merely less minimal — so a bounded
// budget here can cost minimality but never correctness.
func (l *Learner) armMinimizeBudget(s *sat.Solver) {
	if limit := l.opts.MaxSolverConflicts; limit > 0 {
		s.SetConflictBudget(limit)
	} else {
		s.SetConflictBudget(-1)
	}
}

// abductResult is the outcome of one O_abduct invocation.
type abductResult struct {
	// preds is the synthesized abduct (empty = target is inductive under
	// the environment assumption alone); nil together with ok==false means
	// no abduct exists over the candidate set.
	preds []Pred
	ok    bool
}

// abduct implements O_abduct (§3.2.3): it searches for a conjunction over
// the candidate predicates that makes target 1-step relatively inductive,
// using the paper's single UNSAT-core query
//
//	⋀_v P_V ∧ p_target ∧ ¬p'_target
//
// Candidates are attached through selector literals assumed at solve time;
// if the query is SAT there is no abduct; if UNSAT, the (locally
// minimized, mirroring cvc5's minimal-unsat-cores) core over the selectors
// is the abduct. Since ⋀P_V ∧ p_target is non-contradictory — every
// candidate and the target hold on the positive examples (P-S) — the
// UNSAT-ness must come from ¬p'_target, making the extraction sound.
//
// Two backends answer the query. The incremental backend (the default;
// Options.IncrementalSolver) runs it against a pooled per-worker solver
// keyed by target-cone signature: the cone encoding, the candidate
// encodings and the solver's learnt clauses persist across queries, and
// the query-specific facts p_target / ¬p'_target are scoped as assumptions
// rather than destructive unit clauses. The fresh backend re-encodes
// everything into a brand-new solver per query — the monolithic-restart
// behaviour the paper contrasts against, kept for the ablation benches.
// When a cross-run cache is attached, the whole query is additionally
// memoized by (target, candidate set, minimize flag): predicate IDs are
// canonical within one system identity, so an identical query re-issued by
// a later Learner — the common case in safe-set synthesis, which re-runs
// Verify after every mutation that leaves most cones untouched — is
// answered without touching a solver. A memoized abduct is one the solver
// really returned for this exact query on this exact system, so replaying
// it preserves soundness; it may differ from what a fresh solver would
// return now (cores are not unique), which is the same latitude the solver
// itself already has.
func (l *Learner) abduct(target Pred, cands []Pred, pool *encoderPool) (abductResult, error) {
	start := time.Now()
	defer func() {
		l.stats.recordQuery(time.Since(start))
	}()
	if faultinject.Enabled() {
		// Chaos tier: stretch the query to widen the cancellation races the
		// interrupt protocol must win.
		faultinject.Sleep(faultinject.QueryDelay)
	}
	var vk verdictKey
	var ckey string
	if l.cache != nil {
		ckey = l.cacheKeyFor(target)
	}
	if l.cache != nil && ckey != "" {
		vk = verdictKeyFor(target, cands, l.opts.MinimizeCores)
		if res, fromDisk, ok := l.cache.lookupVerdict(ckey, vk, target, cands); ok {
			atomic.AddInt64(&l.stats.CacheVerdictHits, 1)
			if fromDisk {
				atomic.AddInt64(&l.stats.CacheDiskHits, 1)
			}
			return res, nil
		}
		// Subset-abduct memo: a proven abduct A for this target remains a
		// valid answer for ANY candidate set containing A — adding selector
		// assumptions cannot make A ∧ t ∧ ¬t′ satisfiable, and A ⊆ cands is
		// exactly what qualifies it as this query's abduct. So even when the
		// exact verdict key misses (candidate sets drift across designs and
		// mining changes), a remembered positive answer is replayed for free.
		if preds, fromDisk, ok := l.cache.lookupAbduct(ckey, target, cands); ok {
			atomic.AddInt64(&l.stats.CacheAbductHits, 1)
			if fromDisk {
				atomic.AddInt64(&l.stats.CacheDiskHits, 1)
			}
			return abductResult{preds: preds, ok: true}, nil
		}
	}
	var res abductResult
	var err error
	if l.opts.IncrementalSolver && pool != nil {
		res, err = l.abductIncremental(target, cands, pool)
	} else {
		res, err = l.abductFresh(target, cands, pool)
	}
	if err == nil && l.cache != nil && ckey != "" {
		l.cache.storeVerdict(ckey, vk, res)
		if res.ok {
			l.cache.storeAbduct(ckey, target, res)
		}
	}
	return res, err
}

// abductFresh is the fresh-solver backend: one new solver and a from-
// scratch Tseitin encoding per query. pool (possibly nil) is only
// consulted for its clause-exchange attachment: even a throwaway solver
// publishes and drains shared lemmas while it runs.
func (l *Learner) abductFresh(target Pred, cands []Pred, pool *encoderPool) (abductResult, error) {
	enc, err := l.sys.newEncoder()
	if err != nil {
		return abductResult{}, err
	}
	atomic.AddInt64(&l.stats.SolverAllocs, 1)
	defer func() {
		es := enc.Stats()
		l.stats.addEncodeWork(es.Gates, es.Clauses)
	}()
	cur, err := target.Encode(enc, false)
	if err != nil {
		return abductResult{}, err
	}
	next, err := target.Encode(enc, true)
	if err != nil {
		return abductResult{}, err
	}
	enc.AssertLit(cur)
	enc.AssertLit(next.Not())

	sels := make([]sat.Lit, 0, len(cands))
	bySel := make(map[sat.Lit]Pred, len(cands))
	for _, p := range cands {
		if p.ID() == target.ID() {
			continue // already asserted unconditionally
		}
		lit, err := p.Encode(enc, false)
		if err != nil {
			return abductResult{}, err
		}
		s := enc.NewSelector()
		enc.AssertLitWhen(s, lit) // s → p
		sels = append(sels, s)
		bySel[s] = p
	}

	// The throwaway solver still registers with the cancellation registry
	// for the duration of the query: a cancelled LearnCtx must be able to
	// interrupt fresh-backend searches too.
	l.trackSolver(enc.S)
	defer l.untrackSolver(enc.S)
	if pool != nil && pool.exchange != nil {
		pool.exchange.install(pool.worker, enc)
	}

	st, core, err := l.solveAbduction(enc.S, sels, target)
	if err != nil {
		return abductResult{}, err
	}
	if st == sat.Sat {
		return abductResult{ok: false}, nil
	}
	if l.opts.MinimizeCores {
		orderCoreForMinimization(core, func(s sat.Lit) int { return tierOf(bySel[s]) })
		l.armMinimizeBudget(enc.S)
		core = enc.S.MinimizeCore(core)
	}
	out := make([]Pred, 0, len(core))
	for _, s := range core {
		p, ok := bySel[s]
		if !ok {
			return abductResult{}, fmt.Errorf("hhoudini: core literal %v is not a selector", s)
		}
		out = append(out, p)
	}
	return abductResult{preds: out, ok: true}, nil
}

// abductIncremental is the pooled backend: the query runs against the
// worker's long-lived solver for the target's cone. p_target and
// ¬p'_target join the candidate selectors as assumptions, so nothing
// destructive is ever asserted and the solver instance survives arbitrary
// further queries over the same cone.
func (l *Learner) abductIncremental(target Pred, cands []Pred, pool *encoderPool) (abductResult, error) {
	pe, _, err := pool.get(target)
	if err != nil {
		return abductResult{}, err
	}
	defer pe.chargeEncodeWork(l.stats)
	l.releaseDeadSelectors(pe)

	cur, err := pe.litFor(target, false)
	if err != nil {
		return abductResult{}, err
	}
	next, err := pe.litFor(target, true)
	if err != nil {
		return abductResult{}, err
	}
	assumps := make([]sat.Lit, 0, len(cands)+2)
	assumps = append(assumps, cur, next.Not())
	bySel := make(map[sat.Lit]Pred, len(cands))
	for _, p := range cands {
		if p.ID() == target.ID() {
			continue // already assumed via cur
		}
		s, err := pe.selectorFor(p)
		if err != nil {
			return abductResult{}, err
		}
		assumps = append(assumps, s)
		bySel[s] = p
	}

	// With every encoding for this query in place (and thus every canonical
	// name this solver will ever know for it), pull in any base-system
	// learnt clauses other solvers of the same identity have derived.
	pool.replayLearnts(pe)

	st, core, err := l.solveAbduction(pe.enc.S, assumps, target)
	if err != nil {
		return abductResult{}, err
	}
	if st == sat.Sat {
		return abductResult{ok: false}, nil
	}
	if l.opts.MinimizeCores {
		// cur/¬next may appear in the core; rank them below every
		// candidate tier so deletion-based minimization drops them only
		// when truly redundant (dropping them is sound: any UNSAT subset
		// of the assumptions stays UNSAT with them re-added).
		orderCoreForMinimization(core, func(s sat.Lit) int {
			if p, ok := bySel[s]; ok {
				return tierOf(p)
			}
			return -1
		})
		l.armMinimizeBudget(pe.enc.S)
		core = pe.enc.S.MinimizeCore(core)
	}
	out := make([]Pred, 0, len(core))
	for _, s := range core {
		p, ok := bySel[s]
		if !ok {
			// The target's own assumptions are always conceptually part
			// of the query; they carry no abduct member.
			if s == cur || s == next.Not() {
				continue
			}
			return abductResult{}, fmt.Errorf("hhoudini: core literal %v is not a selector", s)
		}
		out = append(out, p)
	}
	return abductResult{preds: out, ok: true}, nil
}

// orderCoreForMinimization orders a core for deletion-based minimization,
// biasing toward the weakest abduct (§3.2.3): deletion drops literals
// front-to-back, so the strongest (highest-tier) entries go first and are
// removed whenever the weaker ones suffice.
func orderCoreForMinimization(core []sat.Lit, rank func(sat.Lit) int) {
	sort.SliceStable(core, func(i, j int) bool {
		return rank(core[i]) > rank(core[j])
	})
}

// releaseDeadSelectors retracts pooled selectors whose predicates have
// entered P_fail since the encoder last ran: a failed predicate can never
// appear in any abduct again, so its guarded clause is dead weight the
// solver can garbage-collect.
func (l *Learner) releaseDeadSelectors(pe *pooledEncoder) {
	if len(pe.sels) == 0 {
		return
	}
	var dead []string
	l.mu.Lock()
	for id := range pe.sels {
		if l.failed[id] {
			dead = append(dead, id)
		}
	}
	l.mu.Unlock()
	for _, id := range dead {
		pe.releaseSelector(id)
	}
}
