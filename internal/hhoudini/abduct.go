package hhoudini

import (
	"fmt"
	"sort"
	"time"

	"hhoudini/internal/sat"
)

// abductResult is the outcome of one O_abduct invocation.
type abductResult struct {
	// preds is the synthesized abduct (empty = target is inductive under
	// the environment assumption alone); nil together with ok==false means
	// no abduct exists over the candidate set.
	preds []Pred
	ok    bool
}

// abduct implements O_abduct (§3.2.3): it searches for a conjunction over
// the candidate predicates that makes target 1-step relatively inductive,
// using the paper's single UNSAT-core query
//
//	⋀_v P_V ∧ p_target ∧ ¬p'_target
//
// Candidates are attached through selector literals assumed at solve time;
// if the query is SAT there is no abduct; if UNSAT, the (locally
// minimized, mirroring cvc5's minimal-unsat-cores) core over the selectors
// is the abduct. Since ⋀P_V ∧ p_target is non-contradictory — every
// candidate and the target hold on the positive examples (P-S) — the
// UNSAT-ness must come from ¬p'_target, making the extraction sound.
func (l *Learner) abduct(target Pred, cands []Pred) (abductResult, error) {
	start := time.Now()
	defer func() {
		l.stats.recordQuery(time.Since(start))
	}()

	enc, err := l.sys.newEncoder()
	if err != nil {
		return abductResult{}, err
	}
	cur, err := target.Encode(enc, false)
	if err != nil {
		return abductResult{}, err
	}
	next, err := target.Encode(enc, true)
	if err != nil {
		return abductResult{}, err
	}
	enc.AssertLit(cur)
	enc.AssertLit(next.Not())

	sels := make([]sat.Lit, 0, len(cands))
	bySel := make(map[sat.Lit]Pred, len(cands))
	for _, p := range cands {
		if p.ID() == target.ID() {
			continue // already asserted unconditionally
		}
		lit, err := p.Encode(enc, false)
		if err != nil {
			return abductResult{}, err
		}
		s := sat.PosLit(enc.S.NewVar())
		enc.S.AddClause(s.Not(), lit) // s → p
		sels = append(sels, s)
		bySel[s] = p
	}

	st, core := enc.S.SolveWithCore(sels)
	switch st {
	case sat.Sat:
		return abductResult{ok: false}, nil
	case sat.Unknown:
		return abductResult{}, fmt.Errorf("hhoudini: solver gave up on abduction query for %s", target)
	}
	if l.opts.MinimizeCores {
		// Bias toward the weakest abduct (§3.2.3): deletion-based
		// minimization drops literals front-to-back, so putting the
		// strongest (highest-tier) predicates first removes them whenever
		// the weaker ones suffice.
		sort.SliceStable(core, func(i, j int) bool {
			return tierOf(bySel[core[i]]) > tierOf(bySel[core[j]])
		})
		core = enc.S.MinimizeCore(core)
	}
	out := make([]Pred, 0, len(core))
	for _, s := range core {
		p, ok := bySel[s]
		if !ok {
			return abductResult{}, fmt.Errorf("hhoudini: core literal %v is not a selector", s)
		}
		out = append(out, p)
	}
	return abductResult{preds: out, ok: true}, nil
}
