package hhoudini

import (
	"fmt"
	"testing"
	"time"

	"hhoudini/internal/circuit"
	"hhoudini/internal/sat"
)

// regEq is a minimal test predicate: register == constant.
type regEq struct {
	reg  string
	val  uint64
	tier int
}

func (p regEq) ID() string     { return fmt.Sprintf("%s==%d", p.reg, p.val) }
func (p regEq) Vars() []string { return []string{p.reg} }
func (p regEq) String() string { return p.ID() }
func (p regEq) Tier() int      { return p.tier }

func (p regEq) Encode(enc *circuit.Encoder, next bool) (sat.Lit, error) {
	var lits []sat.Lit
	var err error
	if next {
		lits, err = enc.RegNextLits(p.reg)
	} else {
		lits, err = enc.RegLits(p.reg)
	}
	if err != nil {
		return 0, err
	}
	return enc.EqConstLits(lits, p.val), nil
}

func (p regEq) Eval(c *circuit.Circuit, s circuit.Snapshot) (bool, error) {
	i := c.RegIndex(p.reg)
	if i < 0 {
		return false, fmt.Errorf("unknown reg %q", p.reg)
	}
	return s[i] == p.val, nil
}

// tableMiner serves candidate predicates per register from a fixed table.
type tableMiner struct {
	byReg map[string][]Pred
}

func (m tableMiner) Mine(target Pred, slice []string) ([]Pred, error) {
	var out []Pred
	for _, r := range slice {
		out = append(out, m.byReg[r]...)
	}
	return out, nil
}

func minerOf(preds ...Pred) tableMiner {
	m := tableMiner{byReg: make(map[string][]Pred)}
	for _, p := range preds {
		r := p.Vars()[0]
		m.byReg[r] = append(m.byReg[r], p)
	}
	return m
}

func ids(inv *Invariant) map[string]bool {
	out := map[string]bool{}
	for _, p := range inv.Preds {
		out[p.ID()] = true
	}
	return out
}

// andGateSystem is the paper's introduction example: output A of an AND
// gate over state elements B and C, with B and C fed by further state D, E.
func andGateSystem(t *testing.T) *System {
	t.Helper()
	b := circuit.NewBuilder()
	A := b.Register("A", 1, 1)
	B := b.Register("B", 1, 1)
	C := b.Register("C", 1, 1)
	D := b.Register("D", 1, 1)
	E := b.Register("E", 1, 1)
	_ = A
	b.SetNext("A", circuit.Word{b.And2(B[0], C[0])})
	b.SetNext("B", B)
	b.SetNext("C", circuit.Word{b.And2(D[0], E[0])})
	b.SetNext("D", D)
	b.SetNext("E", E)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return &System{Circuit: c}
}

func TestLearnAndGateExample(t *testing.T) {
	sys := andGateSystem(t)
	universe := []Pred{
		regEq{reg: "A", val: 1}, regEq{reg: "B", val: 1}, regEq{reg: "C", val: 1},
		regEq{reg: "D", val: 1}, regEq{reg: "E", val: 1},
	}
	target := regEq{reg: "A", val: 1}
	for _, workers := range []int{1, 4} {
		l := NewLearner(sys, minerOf(universe...), Options{Workers: workers, MinimizeCores: true})
		inv, err := l.Learn([]Pred{target})
		if err != nil {
			t.Fatal(err)
		}
		if inv == nil {
			t.Fatalf("workers=%d: expected an invariant", workers)
		}
		got := ids(inv)
		for _, want := range []string{"A==1", "B==1", "C==1", "D==1", "E==1"} {
			if !got[want] {
				t.Fatalf("workers=%d: invariant %v missing %s", workers, got, want)
			}
		}
		if err := Audit(sys, inv); err != nil {
			t.Fatalf("workers=%d: audit: %v", workers, err)
		}
		if l.Stats().Tasks == 0 || l.Stats().Queries == 0 {
			t.Fatal("stats not recorded")
		}
	}
}

func TestLearnPropertyFailsAtInit(t *testing.T) {
	sys := andGateSystem(t)
	l := NewLearner(sys, minerOf(), DefaultOptions())
	inv, err := l.Learn([]Pred{regEq{reg: "A", val: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if inv != nil {
		t.Fatal("property violated at init must yield None")
	}
}

// TestLearnNoInvariant: the target depends on an unconstrained input, so
// no invariant exists in the language.
func TestLearnNoInvariant(t *testing.T) {
	b := circuit.NewBuilder()
	in := b.Input("in", 1)
	b.Register("R", 1, 1)
	b.SetNext("R", in)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys := &System{Circuit: c}
	target := regEq{reg: "R", val: 1}
	l := NewLearner(sys, minerOf(target), DefaultOptions())
	inv, err := l.Learn([]Pred{target})
	if err != nil {
		t.Fatal(err)
	}
	if inv != nil {
		t.Fatal("expected None")
	}
}

// TestLearnWithInputConstraint: same circuit, but the environment pins the
// input, making the target a base case with an empty abduct.
func TestLearnWithInputConstraint(t *testing.T) {
	b := circuit.NewBuilder()
	in := b.Input("in", 1)
	b.Register("R", 1, 1)
	b.SetNext("R", in)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys := &System{
		Circuit: c,
		Constrain: func(enc *circuit.Encoder) error {
			lits, err := enc.InputLits("in")
			if err != nil {
				return err
			}
			enc.AssertLit(lits[0])
			return nil
		},
	}
	target := regEq{reg: "R", val: 1}
	l := NewLearner(sys, minerOf(target), DefaultOptions())
	inv, err := l.Learn([]Pred{target})
	if err != nil {
		t.Fatal(err)
	}
	if inv == nil {
		t.Fatal("expected an invariant under the input constraint")
	}
	if inv.Size() != 1 {
		t.Fatalf("invariant %v should be just the target", ids(inv))
	}
	if err := Audit(sys, inv); err != nil {
		t.Fatal(err)
	}
}

// TestLearnCycle: two registers latch each other (§3.2.2).
func TestLearnCycle(t *testing.T) {
	b := circuit.NewBuilder()
	r1 := b.Register("R1", 1, 1)
	r2 := b.Register("R2", 1, 1)
	b.SetNext("R1", r2)
	b.SetNext("R2", r1)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys := &System{Circuit: c}
	p1 := regEq{reg: "R1", val: 1}
	p2 := regEq{reg: "R2", val: 1}
	for _, workers := range []int{1, 4} {
		l := NewLearner(sys, minerOf(p1, p2), Options{Workers: workers, MinimizeCores: true})
		inv, err := l.Learn([]Pred{p1})
		if err != nil {
			t.Fatal(err)
		}
		if inv == nil || !inv.Contains("R1==1") || !inv.Contains("R2==1") {
			t.Fatalf("workers=%d: bad invariant", workers)
		}
		if err := Audit(sys, inv); err != nil {
			t.Fatal(err)
		}
	}
}

// backtrackSystem: T' = (A∧B) ∨ (B∧C); A' = X; X' = input; B,C stable.
// The {A,B} solution dies because X==1 has no abduct; the learner must
// backtrack and find {B,C} (the Figure 1 scenario).
func backtrackSystem(t *testing.T) (*System, []Pred, Pred) {
	t.Helper()
	b := circuit.NewBuilder()
	in := b.Input("in", 1)
	T := b.Register("T", 1, 1)
	A := b.Register("A", 1, 1)
	B := b.Register("B", 1, 1)
	C := b.Register("C", 1, 1)
	X := b.Register("X", 1, 1)
	_ = T
	b.SetNext("T", circuit.Word{b.Or2(b.And2(A[0], B[0]), b.And2(B[0], C[0]))})
	b.SetNext("A", X)
	b.SetNext("B", B)
	b.SetNext("C", C)
	b.SetNext("X", in)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys := &System{Circuit: c}
	universe := []Pred{
		regEq{reg: "T", val: 1}, regEq{reg: "A", val: 1}, regEq{reg: "B", val: 1},
		regEq{reg: "C", val: 1}, regEq{reg: "X", val: 1},
	}
	return sys, universe, regEq{reg: "T", val: 1}
}

func TestLearnBacktracking(t *testing.T) {
	sys, universe, target := backtrackSystem(t)
	for _, workers := range []int{1, 4} {
		l := NewLearner(sys, minerOf(universe...), Options{Workers: workers, MinimizeCores: true})
		inv, err := l.Learn([]Pred{target})
		if err != nil {
			t.Fatal(err)
		}
		if inv == nil {
			t.Fatalf("workers=%d: expected invariant via the {B,C} solution", workers)
		}
		got := ids(inv)
		if !got["B==1"] || !got["C==1"] {
			t.Fatalf("workers=%d: invariant %v must contain B==1 and C==1", workers, got)
		}
		if got["X==1"] {
			t.Fatalf("workers=%d: X==1 is not inductive and must be excluded", workers)
		}
		if err := Audit(sys, inv); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLearnRecursiveMatchesWorklist(t *testing.T) {
	build := []func(t *testing.T) (*System, []Pred, []Pred){
		func(t *testing.T) (*System, []Pred, []Pred) {
			sys := andGateSystem(t)
			universe := []Pred{
				regEq{reg: "A", val: 1}, regEq{reg: "B", val: 1}, regEq{reg: "C", val: 1},
				regEq{reg: "D", val: 1}, regEq{reg: "E", val: 1},
			}
			return sys, universe, []Pred{regEq{reg: "A", val: 1}}
		},
		func(t *testing.T) (*System, []Pred, []Pred) {
			sys, universe, target := backtrackSystem(t)
			return sys, universe, []Pred{target}
		},
	}
	for i, mk := range build {
		sys, universe, targets := mk(t)
		lw := NewLearner(sys, minerOf(universe...), DefaultOptions())
		invW, err := lw.Learn(targets)
		if err != nil {
			t.Fatal(err)
		}
		lr := NewLearner(sys, minerOf(universe...), DefaultOptions())
		invR, err := lr.LearnRecursive(targets)
		if err != nil {
			t.Fatal(err)
		}
		if (invW == nil) != (invR == nil) {
			t.Fatalf("case %d: worklist and recursive disagree on existence", i)
		}
		if invW != nil {
			if err := Audit(sys, invR); err != nil {
				t.Fatalf("case %d: recursive invariant fails audit: %v", i, err)
			}
		}
	}
}

func TestLearnStagedMining(t *testing.T) {
	sys := andGateSystem(t)
	universe := []Pred{
		regEq{reg: "A", val: 1}, regEq{reg: "B", val: 1, tier: 1}, regEq{reg: "C", val: 1},
		regEq{reg: "D", val: 1, tier: 2}, regEq{reg: "E", val: 1},
	}
	l := NewLearner(sys, minerOf(universe...), Options{Workers: 1, MinimizeCores: true, StagedMining: true})
	inv, err := l.Learn([]Pred{regEq{reg: "A", val: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if inv == nil {
		t.Fatal("staged mining should still find the invariant")
	}
	if err := Audit(sys, inv); err != nil {
		t.Fatal(err)
	}
}

func TestAuditRejectsNonInductive(t *testing.T) {
	// R' = ¬R: R==1 holds initially but is not inductive.
	b := circuit.NewBuilder()
	r := b.Register("R", 1, 1)
	b.SetNext("R", circuit.Word{r[0].Not()})
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys := &System{Circuit: c}
	p := regEq{reg: "R", val: 1}
	inv := &Invariant{Preds: []Pred{p}, Targets: []Pred{p}}
	if err := Audit(sys, inv); err == nil {
		t.Fatal("audit must reject a non-inductive invariant")
	}
	// And Learn must return None for it.
	l := NewLearner(sys, minerOf(p), DefaultOptions())
	got, err := l.Learn([]Pred{p})
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatal("expected None")
	}
}

func TestAuditRejectsBadInitiation(t *testing.T) {
	sys := andGateSystem(t)
	p := regEq{reg: "A", val: 0}
	inv := &Invariant{Preds: []Pred{p}, Targets: []Pred{p}}
	if err := Audit(sys, inv); err == nil {
		t.Fatal("audit must reject failing initiation")
	}
}

func TestCheckExamples(t *testing.T) {
	sys := andGateSystem(t)
	p := regEq{reg: "A", val: 1}
	inv := &Invariant{Preds: []Pred{p}, Targets: []Pred{p}}
	good := circuit.Snapshot{1, 1, 1, 1, 1}
	bad := circuit.Snapshot{0, 1, 1, 1, 1}
	if err := CheckExamples(sys, inv, []circuit.Snapshot{good}); err != nil {
		t.Fatal(err)
	}
	if err := CheckExamples(sys, inv, []circuit.Snapshot{good, bad}); err == nil {
		t.Fatal("expected rejection")
	}
}

func TestStatsPercentiles(t *testing.T) {
	s := &Stats{}
	if s.MedianQueryTime() != 0 {
		t.Fatal("empty stats should report zero")
	}
	for i := 1; i <= 100; i++ {
		s.recordQuery(time.Duration(i) * time.Millisecond)
	}
	med := s.MedianQueryTime()
	if med < 45*time.Millisecond || med > 55*time.Millisecond {
		t.Fatalf("median = %v", med)
	}
	p99 := s.QueryTimePercentile(0.99)
	if p99 < 95*time.Millisecond {
		t.Fatalf("p99 = %v", p99)
	}
	if s.TotalQueryTime() != 5050*time.Millisecond {
		t.Fatalf("total = %v", s.TotalQueryTime())
	}
}

// TestLearnMultiTargetSharesWork: learning two targets that share a cone
// must memoize the shared predicates (tasks < 2x single-target tasks).
func TestLearnMultiTargetSharesWork(t *testing.T) {
	b := circuit.NewBuilder()
	P1 := b.Register("P1", 1, 1)
	P2 := b.Register("P2", 1, 1)
	S := b.Register("S", 1, 1)
	_, _ = P1, P2
	b.SetNext("P1", S)
	b.SetNext("P2", S)
	b.SetNext("S", S)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys := &System{Circuit: c}
	universe := []Pred{
		regEq{reg: "P1", val: 1}, regEq{reg: "P2", val: 1}, regEq{reg: "S", val: 1},
	}
	l := NewLearner(sys, minerOf(universe...), DefaultOptions())
	inv, err := l.Learn([]Pred{regEq{reg: "P1", val: 1}, regEq{reg: "P2", val: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if inv == nil || inv.Size() != 3 {
		t.Fatalf("bad invariant: %+v", inv)
	}
	if l.Stats().Tasks != 3 {
		t.Fatalf("tasks = %d, want 3 (S analyzed once)", l.Stats().Tasks)
	}
	if err := Audit(sys, inv); err != nil {
		t.Fatal(err)
	}
}
