package hhoudini

import (
	"strconv"

	"hhoudini/internal/circuit"
	"hhoudini/internal/sat"
)

// System is the transition system under verification: a circuit plus an
// optional environment assumption constraining the primary inputs during
// every transition. For VeloCT the assumption restricts the instruction
// input to the proposed safe set plus ε (Definition 4.4 quantifies over
// sequences of safe instructions, so the transition relation is taken
// under safe inputs).
type System struct {
	Circuit *circuit.Circuit
	// Constrain asserts the environment assumption into an encoder, or is
	// nil when inputs are unconstrained.
	Constrain func(enc *circuit.Encoder) error
	// EnvKey is the canonical identity of the environment assumption: two
	// Systems over the same circuit with equal EnvKeys must install
	// logically identical assumptions, and Constrain must encode them as a
	// deterministic function of the key (same clauses, same gate order), so
	// that canonical gate names line up across encoders. A System with a
	// non-nil Constrain and an empty EnvKey is not cacheable: the cross-run
	// verification cache refuses to share any state for it. Changing the
	// safe set changes the key, which is the cache's invalidation story.
	EnvKey string
}

// envScope is the canonical gate-naming scope of the environment
// assumption. The \x01 prefix keeps it disjoint from predicate Memo keys.
const envScope = "\x01env"

// newEncoder builds a fresh solver+encoder pair with the environment
// assumption asserted. The assumption is encoded inside the canonical
// "env" naming scope so its auxiliary gates are portable across solvers of
// the same (fingerprint, EnvKey) identity.
func (s *System) newEncoder() (*circuit.Encoder, error) {
	enc := circuit.NewEncoder(s.Circuit, sat.New())
	if s.Constrain != nil {
		if err := enc.InScope(envScope, func() error { return s.Constrain(enc) }); err != nil {
			return nil, err
		}
	}
	return enc, nil
}

// CacheKey returns the cross-run cache identity of the system — the
// circuit's structural fingerprint combined with the environment-assumption
// key — and whether the system is cacheable at all. Systems with an
// anonymous environment assumption (Constrain set, EnvKey empty) are not:
// nothing identifies what was asserted into their solvers.
func (s *System) CacheKey() (string, bool) {
	if s.Constrain != nil && s.EnvKey == "" {
		return "", false
	}
	return strconv.FormatUint(s.Circuit.Fingerprint(), 16) + "|" + s.EnvKey, true
}
