package hhoudini

import (
	"hhoudini/internal/circuit"
	"hhoudini/internal/sat"
)

// System is the transition system under verification: a circuit plus an
// optional environment assumption constraining the primary inputs during
// every transition. For VeloCT the assumption restricts the instruction
// input to the proposed safe set plus ε (Definition 4.4 quantifies over
// sequences of safe instructions, so the transition relation is taken
// under safe inputs).
type System struct {
	Circuit *circuit.Circuit
	// Constrain asserts the environment assumption into an encoder, or is
	// nil when inputs are unconstrained.
	Constrain func(enc *circuit.Encoder) error
}

// newEncoder builds a fresh solver+encoder pair with the environment
// assumption asserted.
func (s *System) newEncoder() (*circuit.Encoder, error) {
	enc := circuit.NewEncoder(s.Circuit, sat.New())
	if s.Constrain != nil {
		if err := s.Constrain(enc); err != nil {
			return nil, err
		}
	}
	return enc, nil
}
