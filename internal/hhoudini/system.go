package hhoudini

import (
	"strconv"

	"hhoudini/internal/circuit"
	"hhoudini/internal/sat"
)

// System is the transition system under verification: a circuit plus an
// optional environment assumption constraining the primary inputs during
// every transition. For VeloCT the assumption restricts the instruction
// input to the proposed safe set plus ε (Definition 4.4 quantifies over
// sequences of safe instructions, so the transition relation is taken
// under safe inputs).
type System struct {
	Circuit *circuit.Circuit
	// Constrain asserts the environment assumption into an encoder, or is
	// nil when inputs are unconstrained.
	Constrain func(enc *circuit.Encoder) error
	// EnvKey is the canonical identity of the environment assumption: two
	// Systems over the same circuit with equal EnvKeys must install
	// logically identical assumptions, and Constrain must encode them as a
	// deterministic function of the key (same clauses, same gate order), so
	// that canonical gate names line up across encoders. A System with a
	// non-nil Constrain and an empty EnvKey is not cacheable: the cross-run
	// verification cache refuses to share any state for it. Changing the
	// safe set changes the key, which is the cache's invalidation story.
	EnvKey string
	// Namespace partitions every cache identity (CacheKey, ConeCacheKey) by
	// an opaque owner id — the multi-tenant service folds each tenant's id
	// in here. Soundness is inherited from the key discipline: two systems
	// with different namespaces never produce equal keys, so no pooled
	// solver, learnt clause, verdict or abduct can cross a tenant boundary;
	// within one namespace the keys (and thus warm transfer, including
	// cross-design cone transfer) behave exactly as without namespacing.
	// Empty means the default, shared namespace.
	Namespace string
}

// envScope is the canonical gate-naming scope of the environment
// assumption. The \x01 prefix keeps it disjoint from predicate Memo keys.
const envScope = "\x01env"

// newEncoder builds a fresh solver+encoder pair with the environment
// assumption asserted. The assumption is encoded inside the canonical
// "env" naming scope so its auxiliary gates are portable across solvers of
// the same (fingerprint, EnvKey) identity.
func (s *System) newEncoder() (*circuit.Encoder, error) {
	enc := circuit.NewEncoder(s.Circuit, sat.New())
	if s.Constrain != nil {
		if err := enc.InScope(envScope, func() error { return s.Constrain(enc) }); err != nil {
			return nil, err
		}
	}
	return enc, nil
}

// CacheKey returns the cross-run cache identity of the system — the
// circuit's structural fingerprint combined with the environment-assumption
// key — and whether the system is cacheable at all. Systems with an
// anonymous environment assumption (Constrain set, EnvKey empty) are not:
// nothing identifies what was asserted into their solvers.
func (s *System) CacheKey() (string, bool) {
	if s.Constrain != nil && s.EnvKey == "" {
		return "", false
	}
	return s.nsPrefix() + strconv.FormatUint(s.Circuit.Fingerprint(), 16) + "|" + s.EnvKey, true
}

// nsPrefix renders the namespace component of every cache key. The \x02
// separator cannot appear in a tenant id that came through the service's
// validation, and the prefix form keeps the un-namespaced keys byte-
// identical to their pre-namespace spelling (no cache invalidation on
// upgrade).
func (s *System) nsPrefix() string {
	if s.Namespace == "" {
		return ""
	}
	return "ns:" + s.Namespace + "\x02"
}

// newEncoderForCone is newEncoder with cone-canonical variable naming for
// the transitive fan-in cone of the given support registers: circuit nodes
// inside the cone are named by (cone fingerprint, canonical local id)
// instead of global node id, so learnt clauses exported from this encoder
// replay into any encoder over an isomorphic cone — including one belonging
// to a different circuit.
func (s *System) newEncoderForCone(support []string) (*circuit.Encoder, error) {
	enc := circuit.NewEncoder(s.Circuit, sat.New())
	enc.SetConeNames(s.Circuit.ConeNames(support))
	if s.Constrain != nil {
		if err := enc.InScope(envScope, func() error { return s.Constrain(enc) }); err != nil {
			return nil, err
		}
	}
	return enc, nil
}

// ConeCacheKey returns the cone-level cache identity for queries whose
// candidate universe is drawn from the given register support: the
// canonical fingerprint of the support's fan-in cone combined with the
// environment-assumption key. Unlike CacheKey it is invariant to everything
// outside the cone — the same cone embedded in a different design produces
// the same key, which is what makes cross-design cache transfer sound: an
// equal key pins the cone's structure, the support registers' names, widths
// and reset values, and the full input interface. Cacheability follows the
// same rule as CacheKey.
func (s *System) ConeCacheKey(support []string) (string, bool) {
	if s.Constrain != nil && s.EnvKey == "" {
		return "", false
	}
	return s.nsPrefix() + "cone:" + s.Circuit.ConeFingerprint(support).Hex() + "|" + s.EnvKey, true
}
