package hhoudini

import (
	"fmt"

	"hhoudini/internal/circuit"
	"hhoudini/internal/sat"
)

// DefaultAuditConflicts bounds Audit's monolithic consecution query. The
// audit is exactly the expensive whole-invariant check H-Houdini avoids
// during learning, so it gets a generous allowance — orders of magnitude
// above what the evaluated designs need — but no longer runs unbounded: a
// pathological instance surfaces as ErrBudgetExceeded instead of a hang.
const DefaultAuditConflicts = 50_000_000

// Audit monolithically verifies a learned invariant against Definition
// 2.2: initiation, consecution (one SAT query over the conjunction of all
// predicates — exactly the expensive check H-Houdini avoids during
// learning, used here as an independent soundness check, as the paper did
// for the Rocketchip invariant), and property inclusion. The consecution
// query runs under DefaultAuditConflicts; use AuditBudget to choose the
// budget (or lift it).
func Audit(sys *System, inv *Invariant) error {
	return AuditBudget(sys, inv, DefaultAuditConflicts)
}

// AuditBudget is Audit with an explicit conflict budget on the consecution
// query; conflicts <= 0 solves unbounded. A budget exhaustion returns an
// error wrapping ErrBudgetExceeded — a resource verdict, not a soundness
// one: callers may retry with a larger budget.
func AuditBudget(sys *System, inv *Invariant, conflicts int64) error {
	// (i) Initiation: every predicate holds in the initial state.
	init := circuit.InitSnapshot(sys.Circuit)
	for _, p := range inv.Preds {
		ok, err := p.Eval(sys.Circuit, init)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("hhoudini: initiation fails for %s", p)
		}
	}

	// (iii) Property: every target is part of the invariant, so H ⟹ P
	// trivially.
	for _, t := range inv.Targets {
		if !inv.Contains(t.ID()) {
			return fmt.Errorf("hhoudini: target %s missing from invariant", t)
		}
	}

	// (ii) Consecution: ⋀H ∧ T ∧ ¬⋀H' must be unsatisfiable.
	enc, err := sys.newEncoder()
	if err != nil {
		return err
	}
	var negNext []sat.Lit
	for _, p := range inv.Preds {
		cur, err := p.Encode(enc, false)
		if err != nil {
			return err
		}
		enc.AssertLit(cur)
		next, err := p.Encode(enc, true)
		if err != nil {
			return err
		}
		negNext = append(negNext, next.Not())
	}
	enc.S.AddClause(negNext...)
	if conflicts > 0 {
		enc.S.SetConflictBudget(conflicts)
	} else {
		enc.S.SetConflictBudget(-1)
	}
	switch enc.S.Solve() {
	case sat.Sat:
		return fmt.Errorf("hhoudini: consecution fails: invariant is not inductive")
	case sat.Unknown:
		return fmt.Errorf("hhoudini: consecution check (budget %d conflicts): %w", conflicts, ErrBudgetExceeded)
	}
	return nil
}

// CheckExamples verifies the P-S premise on a set of example states: every
// predicate of the invariant must admit every positive example.
func CheckExamples(sys *System, inv *Invariant, examples []circuit.Snapshot) error {
	for _, e := range examples {
		for _, p := range inv.Preds {
			ok, err := p.Eval(sys.Circuit, e)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("hhoudini: predicate %s rejects a positive example", p)
			}
		}
	}
	return nil
}
