package hhoudini

import (
	"errors"
	"fmt"
)

// ErrBudgetExceeded is the typed verdict for a solver query that exhausted
// its conflict budget without resolving. During learning it is an internal
// signal consumed by the escalation ladder (solveAbduction) and only
// escapes — wrapped with the query's context — when the ladder tops out at
// Options.MaxSolverConflicts; Audit/AuditBudget return it when the
// monolithic consecution check outgrows its budget. Callers test for it
// with errors.Is and may retry with a larger budget: budget exhaustion is
// a resource verdict, never a soundness one.
var ErrBudgetExceeded = errors.New("hhoudini: solver conflict budget exceeded")

// errLearnInterrupted is the internal marker a worker reports when it
// observes the learner's stop flag (or its solver's interrupt) mid-task.
// LearnCtx's epilogue translates it into the context's own error, so
// callers always see context.Canceled / context.DeadlineExceeded rather
// than a package-private sentinel.
var errLearnInterrupted = errors.New("hhoudini: learning interrupted")

// PanicError reports a panic captured at a worker's recover boundary: the
// task body (slicing, mining, predicate encoding or solving) for PredID
// panicked with Value, and Stack is the panicking goroutine's stack at
// recovery time. The Learn that owned the worker fails with this error
// while sibling workers drain cleanly and the process survives — fault
// isolation per the robustness tentpole.
type PanicError struct {
	// PredID identifies the obligation whose task body panicked.
	PredID string
	// Value is the value passed to panic.
	Value any
	// Stack is the formatted stack trace (runtime/debug.Stack) captured
	// inside the deferred recover.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("hhoudini: worker panic on task %s: %v\n%s", e.PredID, e.Value, e.Stack)
}
