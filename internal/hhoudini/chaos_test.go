package hhoudini

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"hhoudini/internal/faultinject"
)

// chaos_test.go is the learner half of the chaos tier (`make chaos`): every
// test arms faultinject points and asserts the engine *degrades* — never
// corrupts state, never deadlocks, never leaks goroutines. The solver half
// lives in internal/sat/interrupt_test.go; the cross-layer acceptance test
// on a real design lives in the root package (robustness_api_test.go).

// checkNoGoroutineLeak asserts the goroutine count returns to (near) the
// baseline captured before the test body ran. Retries absorb runtime
// bookkeeping goroutines that exit asynchronously.
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosForcedUnknownEscalates is the ISSUE's budget-escalation
// acceptance: with the first N abduction solves forced to Unknown, the
// learner must converge to the same invariant via the retry ladder.
func TestChaosForcedUnknownEscalates(t *testing.T) {
	sys, universe, target := backtrackSystem(t)

	clean := NewLearner(sys, minerOf(universe...), coldOptions())
	want, err := clean.Learn([]Pred{target})
	if err != nil || want == nil {
		t.Fatalf("clean run: inv=%v err=%v", want, err)
	}

	const forced = 3
	faultinject.Arm(faultinject.SolverUnknown, faultinject.Spec{Count: forced})
	defer faultinject.Reset()

	l := NewLearner(sys, minerOf(universe...), coldOptions())
	inv, err := l.Learn([]Pred{target})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if inv == nil {
		t.Fatal("chaos run found no invariant")
	}
	if !reflect.DeepEqual(ids(inv), ids(want)) {
		t.Fatalf("chaos invariant %v != clean invariant %v", ids(inv), ids(want))
	}
	if fired := faultinject.Fired(faultinject.SolverUnknown); fired != forced {
		t.Fatalf("expected %d forced Unknowns, fired %d", forced, fired)
	}
	if got := l.Stats().QueryRetries; got < forced {
		t.Fatalf("Stats.QueryRetries = %d, want >= %d (ladder must have escalated)", got, forced)
	}
	if got := l.Stats().QueryBudgetAbandons; got != 0 {
		t.Fatalf("Stats.QueryBudgetAbandons = %d, want 0 (uncapped ladder never abandons)", got)
	}
}

// TestChaosUnknownAtCapAbandons: with a hard conflict cap and a forever-
// Unknown solver, the ladder must abandon with the typed error rather than
// loop or hang.
func TestChaosUnknownAtCapAbandons(t *testing.T) {
	sys, universe, target := backtrackSystem(t)

	faultinject.Arm(faultinject.SolverUnknown, faultinject.Spec{Count: -1})
	defer faultinject.Reset()

	o := coldOptions()
	o.InitialSolverConflicts = 16
	o.MaxSolverConflicts = 64
	l := NewLearner(sys, minerOf(universe...), o)
	inv, err := l.Learn([]Pred{target})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v (inv=%v), want ErrBudgetExceeded", err, inv)
	}
	if got := l.Stats().QueryBudgetAbandons; got == 0 {
		t.Fatal("Stats.QueryBudgetAbandons = 0, want > 0")
	}
}

// TestChaosWorkerPanicContained: an injected worker panic must fail that
// Learn with a stack-carrying *PanicError while the process — and the next
// Learn — continues normally.
func TestChaosWorkerPanicContained(t *testing.T) {
	sys, universe, target := backtrackSystem(t)

	for _, workers := range []int{1, 4} {
		faultinject.Arm(faultinject.WorkerPanic, faultinject.Spec{Count: 1})
		o := coldOptions()
		o.Workers = workers
		l := NewLearner(sys, minerOf(universe...), o)
		inv, err := l.Learn([]Pred{target})
		faultinject.Reset()
		if inv != nil {
			t.Fatalf("workers=%d: panicked Learn returned an invariant", workers)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.PredID == "" || len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: PanicError missing context: id=%q stack=%d bytes",
				workers, pe.PredID, len(pe.Stack))
		}

		// The process survives: a fresh learner on the same system succeeds.
		l2 := NewLearner(sys, minerOf(universe...), coldOptions())
		inv2, err := l2.Learn([]Pred{target})
		if err != nil || inv2 == nil {
			t.Fatalf("workers=%d: post-panic Learn: inv=%v err=%v", workers, inv2, err)
		}
	}
}

// TestChaosProofDBWriteFailure: with every atomic rewrite failing, learning
// still succeeds, the previous on-disk store stays byte-identical
// (degrade, never corrupt), and the write error is observable on the
// store handle rather than swallowed.
func TestChaosProofDBWriteFailure(t *testing.T) {
	dir := t.TempDir()

	// Seed the store with a clean run.
	o1 := warmOptions(NewVerifyCache())
	o1.CacheDir = dir
	learnOnce(t, o1)
	if err := CloseProofDBs(); err != nil {
		t.Fatalf("seed close: %v", err)
	}
	path := filepath.Join(dir, "proof.db")
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("seed store unreadable: %v", err)
	}

	injected := fmt.Errorf("chaos: disk full")
	faultinject.Arm(faultinject.ProofDBWrite, faultinject.Spec{Count: -1, Err: injected})
	defer faultinject.Reset()

	o2 := warmOptions(NewVerifyCache())
	o2.CacheDir = dir
	sys, universe, target := backtrackSystem(t)
	l := NewLearner(sys, minerOf(universe...), o2)
	inv, err := l.Learn([]Pred{target})
	if err != nil || inv == nil {
		t.Fatalf("learning must not fail on store-write errors: inv=%v err=%v", inv, err)
	}
	if l.pdb == nil {
		t.Fatal("CacheDir learner has no bound proof store")
	}
	// The write-ahead journal keeps the run durable while snapshot rewrites
	// fail: Learn's shutdown Persist fsyncs the journal and succeeds, so no
	// flush error is recorded yet. The rewrite failure surfaces at Close,
	// whose final full flush is the first snapshot write of the run.
	if got := l.pdb.LastFlushErr(); got != nil {
		t.Fatalf("journal-backed shutdown persist failed: %v", got)
	}
	if err := CloseProofDBs(); !errors.Is(err, injected) {
		t.Fatalf("Close must surface the failed final flush; got %v", err)
	}
	if got := l.pdb.LastFlushErr(); !errors.Is(got, injected) {
		t.Fatalf("LastFlushErr = %v, want the injected error", got)
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("store unreadable after failed writes: %v", err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("failed atomic write corrupted the on-disk store")
	}

	// With the fault cleared, the store is still usable for a warm start.
	faultinject.Reset()
	o3 := warmOptions(NewVerifyCache())
	o3.CacheDir = dir
	l3, _ := learnOnce(t, o3)
	if err := CloseProofDBs(); err != nil {
		t.Fatalf("post-chaos close: %v", err)
	}
	c := o3.Cache.Counters()
	if c.DiskClausesLoaded+c.DiskVerdictsLoaded == 0 {
		t.Fatal("post-chaos learner did not warm-start from the surviving store")
	}
	_ = l3
}

// TestChaosQueryDelayCancellation: with every abduction query stretched,
// a deadline mid-Learn must surface context.DeadlineExceeded and leave no
// goroutines behind.
func TestChaosQueryDelayCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	sys, universe, target := backtrackSystem(t)

	faultinject.Arm(faultinject.QueryDelay, faultinject.Spec{Count: -1, Delay: 20 * time.Millisecond})
	defer faultinject.Reset()

	o := coldOptions()
	o.Workers = 4
	l := NewLearner(sys, minerOf(universe...), o)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	inv, err := l.LearnCtx(ctx, []Pred{target})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v (inv=%v), want DeadlineExceeded", err, inv)
	}
	checkNoGoroutineLeak(t, before)
}
