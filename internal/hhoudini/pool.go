package hhoudini

import (
	"sort"
	"strings"
	"sync/atomic"

	"hhoudini/internal/circuit"
	"hhoudini/internal/sat"
)

// encoderPool is a per-worker cache of live solver/encoder pairs keyed by
// target-cone signature. It is the substrate of the incremental abduction
// backend: predicates ranging over the same state variables share a
// next-state cone, so their relative-induction queries run against one
// long-lived solver whose cone encoding, candidate-predicate encodings and
// learnt clauses all persist across queries (§3.2's "small, incremental,
// memoizable" checks made literal at the solver level).
//
// A pool is owned by exactly one worker goroutine and must not be shared:
// the underlying sat.Solver is not safe for concurrent use. Parallel
// learners hold one pool per worker, mirroring the paper's per-task solver
// processes while still amortizing encode work within each worker.
type encoderPool struct {
	sys     *System
	stats   *Stats
	entries map[string]*pooledEncoder
}

// newEncoderPool creates an empty pool bound to a system. stats may be nil.
func newEncoderPool(sys *System, stats *Stats) *encoderPool {
	return &encoderPool{sys: sys, stats: stats, entries: make(map[string]*pooledEncoder)}
}

// coneSignature keys pooled solvers. Predicates over the same state
// variables (e.g. Eq(v), EqConst(v,c) and InSafeSet(v) for one v) share
// the 1-step cone of those variables, hence an encoder.
func coneSignature(p Pred) string {
	vars := append([]string(nil), p.Vars()...)
	sort.Strings(vars)
	return strings.Join(vars, "\x00")
}

// get returns the pooled encoder for the target's cone, constructing (and
// constraining) a fresh solver on first use. The second result reports
// whether the encoder was already warm.
func (pl *encoderPool) get(target Pred) (*pooledEncoder, bool, error) {
	sig := coneSignature(target)
	if pe, ok := pl.entries[sig]; ok {
		if pl.stats != nil {
			atomic.AddInt64(&pl.stats.PoolReuses, 1)
		}
		return pe, true, nil
	}
	enc, err := pl.sys.newEncoder()
	if err != nil {
		return nil, false, err
	}
	if pl.stats != nil {
		atomic.AddInt64(&pl.stats.SolverAllocs, 1)
	}
	pe := &pooledEncoder{enc: enc, sels: make(map[string]sat.Lit)}
	pl.entries[sig] = pe
	return pe, false, nil
}

// size returns the number of live solver/encoder pairs in the pool.
func (pl *encoderPool) size() int { return len(pl.entries) }

// pooledEncoder is one long-lived solver/encoder pair plus the caches that
// make repeat queries cheap: predicate encodings are memoized by predicate
// ID and frame (via the encoder's Memo), and each candidate predicate gets
// one persistent selector literal guarding its attachment clause.
type pooledEncoder struct {
	enc *circuit.Encoder
	// sels maps candidate predicate IDs to their persistent activation
	// literal (guarding sel → p). A selector absent from a query's
	// assumptions leaves its clause inactive at zero cost.
	sels map[string]sat.Lit
	// lastGates/lastClauses snapshot the encoder counters at the previous
	// query boundary so per-query deltas can be charged to Stats.
	lastGates, lastClauses int64
}

// litFor returns the memoized encoding of p in the chosen frame.
func (pe *pooledEncoder) litFor(p Pred, next bool) (sat.Lit, error) {
	key := p.ID()
	if next {
		key += "\x00next"
	} else {
		key += "\x00cur"
	}
	return pe.enc.Memo(key, func() (sat.Lit, error) { return p.Encode(pe.enc, next) })
}

// selectorFor returns the persistent activation literal attaching p as a
// candidate, encoding p and adding the guarded clause sel → p on first use.
func (pe *pooledEncoder) selectorFor(p Pred) (sat.Lit, error) {
	if s, ok := pe.sels[p.ID()]; ok {
		return s, nil
	}
	lit, err := pe.litFor(p, false)
	if err != nil {
		return 0, err
	}
	s := pe.enc.NewSelector()
	pe.enc.AssertLitWhen(s, lit)
	pe.sels[p.ID()] = s
	return s, nil
}

// releaseSelector permanently retracts the selector of a predicate proven
// globally unusable (P_fail): the solver pins it false and eventually
// garbage-collects the dead guarded clause.
func (pe *pooledEncoder) releaseSelector(id string) {
	if s, ok := pe.sels[id]; ok {
		pe.enc.S.Release(s)
		delete(pe.sels, id)
	}
}

// chargeEncodeWork adds the encoder's stat delta since the previous call
// to the learner-level counters.
func (pe *pooledEncoder) chargeEncodeWork(stats *Stats) {
	es := pe.enc.Stats()
	stats.addEncodeWork(es.Gates-pe.lastGates, es.Clauses-pe.lastClauses)
	pe.lastGates, pe.lastClauses = es.Gates, es.Clauses
}
