package hhoudini

import (
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"hhoudini/internal/circuit"
	"hhoudini/internal/sat"
)

// encoderPool is a per-worker cache of live solver/encoder pairs keyed by
// target-cone signature. It is the substrate of the incremental abduction
// backend: predicates ranging over the same state variables share a
// next-state cone, so their relative-induction queries run against one
// long-lived solver whose cone encoding, candidate-predicate encodings and
// learnt clauses all persist across queries (§3.2's "small, incremental,
// memoizable" checks made literal at the solver level).
//
// A pool is owned by exactly one worker goroutine and must not be shared:
// the underlying sat.Solver is not safe for concurrent use. Parallel
// learners hold one pool per worker, mirroring the paper's per-task solver
// processes while still amortizing encode work within each worker.
//
// A pool may additionally be attached to a cross-run VerifyCache
// (attachCache). Then cone misses first try to check a retired encoder out
// of the cache — checkout removes the entry, preserving the single-owner
// invariant — and retire() checks every live encoder back in at worker
// shutdown instead of dropping it, which is what makes solver state survive
// across Learner instances.
type encoderPool struct {
	sys     *System
	stats   *Stats
	entries map[uint64]*pooledEncoder

	// cache/key enable cross-run reuse; nil cache means the pool is
	// isolated (the pre-cache PR 1 behaviour).
	cache *VerifyCache
	key   string
	// pinned tracks every cache key this pool has live solver state under.
	// Each key is pinned in the cache on first use (checkout or fresh build)
	// so whole-key LRU eviction can never retire it mid-job — eviction would
	// reset the append-only clause store pe.imported indexes by position —
	// and unpinned in one batch at retire().
	pinned map[string]bool

	// coneIdent, when set (Options.ConeLevelCache), maps a target to its
	// cone-level cache key and the register support identifying the cone.
	// Pool entries are then checked out of, and retired into, the cache
	// under per-cone keys, and fresh encoders are built with cone-canonical
	// node naming so their learnt clauses transfer across designs. A nil
	// coneIdent keeps the whole-circuit key for everything (the ablation
	// baseline and the pre-cone behaviour).
	coneIdent func(Pred) (key string, support []string)

	// exchange/worker wire pooled solvers into the mid-run clause-sharing
	// fabric (attachExchange): worker is this pool's producer slot. A nil
	// exchange leaves sharing off.
	exchange *clauseExchange
	worker   int

	// onSolver/onRetire observe solvers entering and leaving the pool's
	// ownership (observeSolvers). The learner uses them to maintain its
	// cancellation registry: every live solver must be interruptible when
	// the owning LearnCtx is cancelled, and must drop out of the registry
	// when the pool retires it into the cross-run cache.
	onSolver func(*sat.Solver)
	onRetire func(*sat.Solver)

	retired bool
}

// newEncoderPool creates an empty pool bound to a system. stats may be nil.
func newEncoderPool(sys *System, stats *Stats) *encoderPool {
	return &encoderPool{sys: sys, stats: stats, entries: make(map[uint64]*pooledEncoder)}
}

// attachCache connects the pool to a cross-run cache under the given system
// cache key. A nil cache (or empty key) leaves the pool isolated.
func (pl *encoderPool) attachCache(c *VerifyCache, key string) {
	if c == nil || key == "" {
		return
	}
	pl.cache, pl.key = c, key
}

// attachConeIdents installs the cone-level identity oracle (see the
// coneIdent field). Call after attachCache; a nil fn is a no-op.
func (pl *encoderPool) attachConeIdents(fn func(Pred) (string, []string)) {
	if fn == nil {
		return
	}
	pl.coneIdent = fn
}

// attachExchange connects the pool to the learner's mid-run clause
// exchange, with w as this pool's (worker's) producer slot. A nil exchange
// is a no-op.
func (pl *encoderPool) attachExchange(x *clauseExchange, w int) {
	pl.exchange, pl.worker = x, w
}

// observeSolvers installs the ownership observers: onSolver fires for each
// solver the pool takes ownership of (fresh construction or cache
// checkout), onRetire for each solver it gives up at retire(). Either may
// be nil.
func (pl *encoderPool) observeSolvers(onSolver, onRetire func(*sat.Solver)) {
	pl.onSolver, pl.onRetire = onSolver, onRetire
}

// coneKeys memoizes coneKey by predicate ID. Cone membership is a pure
// function of the predicate (Vars() is fixed per ID), so the memo is sound
// process-wide and shared across all pools, caches and Learners.
var coneKeys sync.Map // pred ID (string) → uint64

// coneKey keys pooled solvers. Predicates over the same state variables
// (e.g. Eq(v), EqConst(v,c) and InSafeSet(v) for one v) share the 1-step
// cone of those variables, hence an encoder. The key is a fixed-width FNV
// hash of the sorted variable list, computed once per predicate ID: the
// previous string-concatenation signature allocated and hashed the full
// variable list on every query. A hash collision merely merges two cones
// into one solver — sound (the solver holds strictly more of the base
// system), just a different sharding.
func coneKey(p Pred) uint64 {
	id := p.ID()
	if v, ok := coneKeys.Load(id); ok {
		return v.(uint64)
	}
	vars := append([]string(nil), p.Vars()...)
	sort.Strings(vars)
	h := fnv.New64a()
	for _, v := range vars {
		h.Write([]byte(v))
		h.Write([]byte{0})
	}
	k := h.Sum64()
	coneKeys.Store(id, k)
	return k
}

// get returns the pooled encoder for the target's cone, constructing (and
// constraining) a fresh solver on first use. The second result reports
// whether the encoder was already warm (locally or from the cross-run
// cache).
func (pl *encoderPool) get(target Pred) (*pooledEncoder, bool, error) {
	ck := coneKey(target)
	if pe, ok := pl.entries[ck]; ok {
		if pl.stats != nil {
			atomic.AddInt64(&pl.stats.PoolReuses, 1)
		}
		return pe, true, nil
	}
	// Resolve the cache identity this entry lives under: the whole-circuit
	// key, or the target's cone-level key (with the support that drives
	// cone-canonical naming) when the cone oracle is attached.
	key := pl.key
	var support []string
	if pl.coneIdent != nil {
		if k, sup := pl.coneIdent(target); k != "" && sup != nil {
			key, support = k, sup
		}
	}
	if pl.cache != nil && key != "" && !pl.pinned[key] {
		pl.cache.pin(key)
		if pl.pinned == nil {
			pl.pinned = make(map[string]bool)
		}
		pl.pinned[key] = true
	}
	if pl.cache != nil {
		if pe := pl.cache.checkout(key, ck); pe != nil {
			if pl.stats != nil {
				atomic.AddInt64(&pl.stats.PoolReuses, 1)
				atomic.AddInt64(&pl.stats.CacheEncoderHits, 1)
			}
			pe.cacheKey = key
			pl.entries[ck] = pe
			if pl.onSolver != nil {
				pl.onSolver(pe.enc.S)
			}
			if pl.exchange != nil {
				pl.exchange.install(pl.worker, pe.enc)
			}
			return pe, true, nil
		}
		if pl.stats != nil {
			atomic.AddInt64(&pl.stats.CacheEncoderMisses, 1)
		}
	}
	var enc *circuit.Encoder
	var err error
	if support != nil {
		enc, err = pl.sys.newEncoderForCone(support)
	} else {
		enc, err = pl.sys.newEncoder()
	}
	if err != nil {
		return nil, false, err
	}
	if pl.stats != nil {
		atomic.AddInt64(&pl.stats.SolverAllocs, 1)
	}
	pe := &pooledEncoder{
		enc:      enc,
		cacheKey: key,
		sels:     make(map[string]sat.Lit),
		imported: make(map[int]bool),
	}
	pl.entries[ck] = pe
	if pl.onSolver != nil {
		pl.onSolver(enc.S)
	}
	if pl.exchange != nil {
		pl.exchange.install(pl.worker, enc)
	}
	return pe, false, nil
}

// size returns the number of live solver/encoder pairs in the pool.
func (pl *encoderPool) size() int { return len(pl.entries) }

// retire checks every live encoder into the cross-run cache (when one is
// attached) and empties the pool. Without a cache this is just the old
// end-of-Learn drop. Idempotent: the second call finds nothing to check in.
func (pl *encoderPool) retire() {
	if pl.retired {
		return
	}
	pl.retired = true
	for ck, pe := range pl.entries {
		// Disconnect from the exchange before the encoder can change hands:
		// a cached solver must never fire hooks into a retired Learner's
		// rings (the next owner installs its own).
		pe.enc.S.SetExchangeHooks(nil, nil)
		if pl.onRetire != nil {
			pl.onRetire(pe.enc.S)
		}
		if pl.cache != nil && pe.cacheKey != "" {
			pl.cache.checkin(pe.cacheKey, ck, pe, pl.stats)
		}
	}
	pl.entries = make(map[uint64]*pooledEncoder)
	// Release pins only after every encoder is checked back in: the keys
	// must stay eviction-exempt while their solver state is in flight.
	if pl.cache != nil {
		for key := range pl.pinned {
			pl.cache.unpin(key)
		}
		pl.pinned = nil
	}
}

// replayLearnts imports base-system learnt clauses from the cross-run
// clause store into pe. Called once per query after encoding (new predicate
// encodings may have introduced the names a stored clause needs), it keeps
// the hot path cheap with two change probes: a clause can only become
// importable when the store grows or the encoder allocates new named
// variables, so when neither counter moved since the last attempt the whole
// scan is skipped.
func (pl *encoderPool) replayLearnts(pe *pooledEncoder) {
	if pl.cache == nil || pe.cacheKey == "" {
		return
	}
	names := pe.enc.NamedVarCount()
	storeLen := pl.cache.storeLen(pe.cacheKey)
	if names == pe.lastNameCount && storeLen == pe.lastStoreLen {
		return
	}
	pe.lastNameCount, pe.lastStoreLen = names, storeLen
	if n := pl.cache.replayInto(pe.cacheKey, pe); n > 0 && pl.stats != nil {
		atomic.AddInt64(&pl.stats.CacheClausesReplayed, int64(n))
	}
}

// pooledEncoder is one long-lived solver/encoder pair plus the caches that
// make repeat queries cheap: predicate encodings are memoized by predicate
// ID and frame (via the encoder's Memo), and each candidate predicate gets
// one persistent selector literal guarding its attachment clause.
type pooledEncoder struct {
	enc *circuit.Encoder
	// cacheKey is the cross-run cache identity this entry was constructed
	// (or checked out) under — the whole-circuit key, or the target's
	// cone-level key in cone mode. retire() checks the entry back in under
	// the same key; empty means the entry is cache-isolated.
	cacheKey string
	// sels maps candidate predicate IDs to their persistent activation
	// literal (guarding sel → p). A selector absent from a query's
	// assumptions leaves its clause inactive at zero cost.
	sels map[string]sat.Lit
	// imported marks cross-run clause-store indices already replayed into
	// this solver. The store is append-only per cache key, so indices are
	// stable identities even across check-in/checkout cycles.
	imported map[int]bool
	// lastNameCount/lastStoreLen are replayLearnts's change probes.
	lastNameCount, lastStoreLen int
	// lastGates/lastClauses snapshot the encoder counters at the previous
	// query boundary so per-query deltas can be charged to Stats.
	lastGates, lastClauses int64
}

// litFor returns the memoized encoding of p in the chosen frame.
func (pe *pooledEncoder) litFor(p Pred, next bool) (sat.Lit, error) {
	key := p.ID()
	if next {
		key += "\x00next"
	} else {
		key += "\x00cur"
	}
	return pe.enc.Memo(key, func() (sat.Lit, error) { return p.Encode(pe.enc, next) })
}

// selectorFor returns the persistent activation literal attaching p as a
// candidate, encoding p and adding the guarded clause sel → p on first use.
func (pe *pooledEncoder) selectorFor(p Pred) (sat.Lit, error) {
	if s, ok := pe.sels[p.ID()]; ok {
		return s, nil
	}
	lit, err := pe.litFor(p, false)
	if err != nil {
		return 0, err
	}
	s := pe.enc.NewSelector()
	pe.enc.AssertLitWhen(s, lit)
	pe.sels[p.ID()] = s
	return s, nil
}

// releaseSelector permanently retracts the selector of a predicate proven
// globally unusable (P_fail): the solver pins it false and eventually
// garbage-collects the dead guarded clause.
func (pe *pooledEncoder) releaseSelector(id string) {
	if s, ok := pe.sels[id]; ok {
		pe.enc.S.Release(s)
		delete(pe.sels, id)
	}
}

// chargeEncodeWork adds the encoder's stat delta since the previous call
// to the learner-level counters.
func (pe *pooledEncoder) chargeEncodeWork(stats *Stats) {
	es := pe.enc.Stats()
	stats.addEncodeWork(es.Gates-pe.lastGates, es.Clauses-pe.lastClauses)
	pe.lastGates, pe.lastClauses = es.Gates, es.Clauses
}
