package hhoudini

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"hhoudini/internal/faultinject"
	"hhoudini/internal/proofdb"
)

// learnOnce runs one Learn of the backtracking scenario under opts and
// returns the learner (for stats) and the invariant.
func learnOnce(t *testing.T, opts Options) (*Learner, *Invariant) {
	t.Helper()
	sys, universe, target := backtrackSystem(t)
	l := NewLearner(sys, minerOf(universe...), opts)
	inv, err := l.Learn([]Pred{target})
	if err != nil {
		t.Fatal(err)
	}
	if inv == nil {
		t.Fatal("expected an invariant")
	}
	if err := Audit(sys, inv); err != nil {
		t.Fatal(err)
	}
	return l, inv
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	cache := NewVerifyCache()
	learnOnce(t, warmOptions(cache))

	snap := cache.SnapshotData()
	if snap.Len() == 0 {
		t.Fatal("Learn populated nothing durable")
	}

	fresh := NewVerifyCache()
	clauses, verdicts := fresh.Restore(snap)
	if clauses+verdicts != snap.Len() {
		t.Fatalf("Restore admitted %d+%d records, snapshot had %d", clauses, verdicts, snap.Len())
	}
	if got := fresh.SnapshotData(); !reflect.DeepEqual(got, snap) {
		t.Fatalf("restore round trip mismatch:\n got %+v\nwant %+v", got, snap)
	}
	if fresh.Len() != cache.Len() {
		t.Fatalf("Len: restored %d, original %d", fresh.Len(), cache.Len())
	}
	c := fresh.Counters()
	if c.DiskClausesLoaded != int64(clauses) || c.DiskVerdictsLoaded != int64(verdicts) {
		t.Fatalf("disk-load counters %d/%d, want %d/%d",
			c.DiskClausesLoaded, c.DiskVerdictsLoaded, clauses, verdicts)
	}

	// Restore is idempotent: everything is already present.
	if c2, v2 := fresh.Restore(snap); c2 != 0 || v2 != 0 {
		t.Fatalf("second Restore admitted %d/%d records", c2, v2)
	}
}

func TestLenBytesIntrospection(t *testing.T) {
	cache := NewVerifyCache()
	if cache.Len() != 0 || cache.Bytes() != 0 {
		t.Fatalf("empty cache reports Len=%d Bytes=%d", cache.Len(), cache.Bytes())
	}
	learnOnce(t, warmOptions(cache))
	if cache.Len() == 0 {
		t.Fatal("Len = 0 after a Learn")
	}
	if cache.Bytes() <= 0 {
		t.Fatal("Bytes <= 0 after a Learn")
	}
	c := cache.Counters()
	if c.Entries != int64(cache.Len()) || c.ApproxBytes != cache.Bytes() {
		t.Fatalf("Counters entries/bytes %d/%d disagree with Len/Bytes %d/%d",
			c.Entries, c.ApproxBytes, cache.Len(), cache.Bytes())
	}
}

// TestProofDBWarmProcessRestart is the core persistence property at the
// library level: a second "process" (fresh VerifyCache, same directory)
// must answer >= 90% of its abduction queries from restored memos.
func TestProofDBWarmProcessRestart(t *testing.T) {
	dir := t.TempDir()

	// Process 1: cold store, populate, close.
	cache1 := NewVerifyCache()
	p1, err := OpenProofDB(dir, cache1, ProofDBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_, inv1 := learnOnce(t, warmOptions(cache1))
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	// Process 2: brand-new cache restored from the same directory.
	cache2 := NewVerifyCache()
	p2, err := OpenProofDB(dir, cache2, ProofDBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	st := p2.Stats()
	if st.ClausesLoaded+st.VerdictsLoaded == 0 {
		t.Fatal("warm process restored nothing from disk")
	}
	l2, inv2 := learnOnce(t, warmOptions(cache2))
	if !reflect.DeepEqual(ids(inv1), ids(inv2)) {
		t.Fatalf("warm process learned a different invariant: %v vs %v", ids(inv2), ids(inv1))
	}
	s := l2.Stats()
	if s.Queries == 0 {
		t.Fatal("warm process made no queries; test is vacuous")
	}
	if s.CacheDiskHits < (s.Queries*9+9)/10 {
		t.Fatalf("disk hits %d / queries %d: below the 90%% warm-start bar",
			s.CacheDiskHits, s.Queries)
	}
	if cache2.Counters().DiskVerdictHits == 0 {
		t.Fatal("cache counters saw no disk-restored verdict hits")
	}
}

// TestOptionsCacheDirWarmRestart exercises the Options.CacheDir wiring end
// to end: learners bound to a directory flush at Learn shutdown, and after
// CloseProofDBs a fresh cache in the same directory starts warm.
func TestOptionsCacheDirWarmRestart(t *testing.T) {
	dir := t.TempDir()

	o1 := warmOptions(NewVerifyCache())
	o1.CacheDir = dir
	l1, inv1 := learnOnce(t, o1)
	if l1.Stats().CacheDiskFlushes == 0 {
		t.Fatal("Learn shutdown did not flush the proof store")
	}
	if err := CloseProofDBs(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, proofdb.FileName)); err != nil {
		t.Fatalf("store file missing after CloseProofDBs: %v", err)
	}

	o2 := warmOptions(NewVerifyCache())
	o2.CacheDir = dir
	l2, inv2 := learnOnce(t, o2)
	defer CloseProofDBs()
	if !reflect.DeepEqual(ids(inv1), ids(inv2)) {
		t.Fatalf("warm restart learned a different invariant: %v vs %v", ids(inv2), ids(inv1))
	}
	s := l2.Stats()
	if s.CacheDiskLoads == 0 {
		t.Fatal("warm restart loaded nothing from disk")
	}
	if s.Queries == 0 || s.CacheDiskHits < (s.Queries*9+9)/10 {
		t.Fatalf("disk hits %d / queries %d: below the 90%% warm-start bar",
			s.CacheDiskHits, s.Queries)
	}
}

// TestCacheDirCorruptStoreColdStart: a mangled store file must never fail a
// Learn — it degrades to a cold start and is rewritten at shutdown.
func TestCacheDirCorruptStoreColdStart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, proofdb.FileName)
	if err := os.WriteFile(path, []byte("\x00\xffnot a proof store at all\n\x01\x02"), 0o644); err != nil {
		t.Fatal(err)
	}

	o := warmOptions(NewVerifyCache())
	o.CacheDir = dir
	l, _ := learnOnce(t, o)
	if l.Stats().CacheDiskHits != 0 {
		t.Fatal("corrupt store somehow produced disk hits")
	}
	if err := CloseProofDBs(); err != nil {
		t.Fatal(err)
	}

	// The shutdown flush replaced the garbage with a valid store.
	db, err := proofdb.Open(dir, proofdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if db.Snapshot().Len() == 0 {
		t.Fatal("store not repopulated after the corrupt cold start")
	}
	if db.Stats().HeaderRejected || db.Stats().CorruptSkipped != 0 {
		t.Fatalf("rewritten store still unreadable: %+v", db.Stats())
	}
}

// TestCacheDirUnusableDirectoryDegrades: when the cache directory cannot be
// created (a file occupies the path), the learner silently runs with the
// in-memory cache only.
func TestCacheDirUnusableDirectoryDegrades(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	o := warmOptions(NewVerifyCache())
	o.CacheDir = blocker // MkdirAll over a regular file fails
	l, _ := learnOnce(t, o)
	if l.pdb != nil {
		t.Fatal("learner bound a proof store under an unusable path")
	}
	if err := CloseProofDBs(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSnapshotWhileLearn hammers SnapshotData/Restore/Len/Bytes
// from a background goroutine while a multi-worker Learn mutates the same
// cache — the -race tier for the persistence read path.
func TestConcurrentSnapshotWhileLearn(t *testing.T) {
	cache := NewVerifyCache()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		scratch := NewVerifyCache()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := cache.SnapshotData()
			scratch.Restore(snap)
			_ = cache.Len()
			_ = cache.Bytes()
			_ = cache.Counters()
		}
	}()
	o := warmOptions(cache)
	o.Workers = 4
	for i := 0; i < 3; i++ {
		learnOnce(t, o)
	}
	close(stop)
	<-done
}

// TestBackgroundFlusher: the interval flusher persists without explicit
// Flush calls and shuts down cleanly on Close.
func TestBackgroundFlusher(t *testing.T) {
	dir := t.TempDir()
	cache := NewVerifyCache()
	p, err := OpenProofDB(dir, cache, ProofDBConfig{FlushInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	learnOnce(t, warmOptions(cache))

	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Flushes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background flusher never flushed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	db, err := proofdb.Open(dir, proofdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if db.Snapshot().Len() == 0 {
		t.Fatal("background flushes persisted nothing")
	}
}

// TestConcurrentAttachFlushLastErr races the background flusher against
// explicit Flush calls, late Attach of fresh caches, and LastFlushErr polls:
// the binding's lock discipline must hold under the race detector, and a
// healthy store must never report a flush error.
func TestConcurrentAttachFlushLastErr(t *testing.T) {
	dir := t.TempDir()
	cache := NewVerifyCache()
	p, err := OpenProofDB(dir, cache, ProofDBConfig{FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	learnOnce(t, warmOptions(cache))

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 30; i++ {
			late := NewVerifyCache()
			p.Attach(late)
			if err := p.Flush(); err != nil {
				t.Errorf("Flush: %v", err)
			}
			_ = p.Stats()
		}
	}()
	for i := 0; i < 100; i++ {
		if err := p.LastFlushErr(); err != nil {
			t.Errorf("LastFlushErr on a healthy store: %v", err)
		}
	}
	<-done
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	db, err := proofdb.Open(dir, proofdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if db.Snapshot().Len() == 0 {
		t.Fatal("nothing persisted")
	}
}

// TestBoundProofDBRegistry: one ProofDB per directory per process, shared
// by every learner that names it.
func TestBoundProofDBRegistry(t *testing.T) {
	dir := t.TempDir()
	p1 := boundProofDB(dir, NewVerifyCache())
	p2 := boundProofDB(dir, NewVerifyCache())
	if p1 == nil || p1 != p2 {
		t.Fatalf("registry did not share: %p vs %p", p1, p2)
	}
	other := boundProofDB(t.TempDir(), NewVerifyCache())
	if other == p1 {
		t.Fatal("distinct directories share a ProofDB")
	}
	if err := CloseProofDBs(); err != nil {
		t.Fatal(err)
	}
	p3 := boundProofDB(dir, NewVerifyCache())
	if p3 == nil {
		t.Fatal("reopen after CloseProofDBs failed")
	}
	if err := CloseProofDBs(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalCrashWarmRestart proves the write-ahead journal end to end at
// the library level: a CacheDir-bound learner streams its deltas into the
// journal as they land and Learn's shutdown Persist fsyncs them — no
// snapshot flush ever runs. A simulated kill -9 (CrashProofDBs: abandon
// without flushing) must therefore lose nothing: a fresh cache bound to the
// same directory warm-starts from the journal alone.
func TestJournalCrashWarmRestart(t *testing.T) {
	dir := t.TempDir()

	o1 := warmOptions(NewVerifyCache())
	o1.CacheDir = dir
	_, inv1 := learnOnce(t, o1)
	CrashProofDBs()

	if _, err := os.Stat(filepath.Join(dir, "proof.db")); !os.IsNotExist(err) {
		t.Fatalf("no snapshot flush ran, yet proof.db exists (stat err=%v)", err)
	}

	o2 := warmOptions(NewVerifyCache())
	o2.CacheDir = dir
	l2, inv2 := learnOnce(t, o2)
	defer func() {
		if err := CloseProofDBs(); err != nil {
			t.Error(err)
		}
	}()
	if !reflect.DeepEqual(ids(inv1), ids(inv2)) {
		t.Fatalf("journal-recovered process learned a different invariant: %v vs %v",
			ids(inv2), ids(inv1))
	}
	if l2.pdb == nil {
		t.Fatal("CacheDir learner has no bound proof store")
	}
	st := l2.pdb.Stats()
	if st.JournalReplayed == 0 {
		t.Fatal("recovery replayed no journal records")
	}
	s := l2.Stats()
	if s.Queries == 0 {
		t.Fatal("recovered process made no queries; test is vacuous")
	}
	if s.CacheDiskHits < (s.Queries*9+9)/10 {
		t.Fatalf("disk hits %d / queries %d: below the 90%% warm-start bar after crash",
			s.CacheDiskHits, s.Queries)
	}
}

// TestJournalDegradedLearnerStillSucceeds: persistent journal I/O failure
// must never fail the learner — the store degrades to snapshot-only mode
// and the final Close still makes everything durable.
func TestJournalDegradedLearnerStillSucceeds(t *testing.T) {
	dir := t.TempDir()
	injected := fmt.Errorf("chaos: journal disk gone")
	faultinject.Arm(faultinject.JournalAppend, faultinject.Spec{Count: -1, Err: injected})
	defer faultinject.Reset()

	o1 := warmOptions(NewVerifyCache())
	o1.CacheDir = dir
	_, inv1 := learnOnce(t, o1)
	if l := len(ids(inv1)); l == 0 {
		t.Fatal("degraded-journal learner found no invariant")
	}
	st, ok := ProofDBStatsFor(dir)
	if !ok {
		t.Fatal("no registry entry for the CacheDir store")
	}
	if !st.JournalDegraded {
		t.Fatal("persistent append failure did not degrade the journal")
	}
	if err := CloseProofDBs(); err != nil {
		t.Fatalf("snapshot-only close failed: %v", err)
	}

	faultinject.Reset()
	o2 := warmOptions(NewVerifyCache())
	o2.CacheDir = dir
	l2, _ := learnOnce(t, o2)
	defer func() {
		if err := CloseProofDBs(); err != nil {
			t.Error(err)
		}
	}()
	if l2.Stats().CacheDiskLoads == 0 {
		t.Fatal("snapshot written by the degraded store restored nothing")
	}
}
