package hhoudini

import (
	"fmt"
	"math/rand"
	"testing"

	"hhoudini/internal/circuit"
)

// randomSystem builds a small random sequential circuit (1-bit registers,
// random 2-level next-state logic, up to 2 input bits) together with a
// regEq predicate universe.
func randomSystem(t *testing.T, rng *rand.Rand) (*System, []Pred) {
	t.Helper()
	nRegs := 3 + rng.Intn(3)
	nIns := rng.Intn(3)
	b := circuit.NewBuilder()
	var inBits []circuit.Signal
	for i := 0; i < nIns; i++ {
		inBits = append(inBits, b.Input(fmt.Sprintf("i%d", i), 1)[0])
	}
	regs := make([]circuit.Word, nRegs)
	inits := make([]uint64, nRegs)
	for i := 0; i < nRegs; i++ {
		inits[i] = uint64(rng.Intn(2))
		regs[i] = b.Register(fmt.Sprintf("r%d", i), 1, inits[i])
	}
	// Random leaf: a register, input, or constant.
	leaf := func() circuit.Signal {
		switch rng.Intn(4) {
		case 0:
			if len(inBits) > 0 {
				return inBits[rng.Intn(len(inBits))]
			}
			fallthrough
		case 1:
			return circuit.Signal(rng.Intn(2)) // False or True
		default:
			return regs[rng.Intn(nRegs)][0]
		}
	}
	expr := func() circuit.Signal {
		a, c := leaf(), leaf()
		switch rng.Intn(5) {
		case 0:
			return b.And2(a, c)
		case 1:
			return b.Or2(a, c)
		case 2:
			return b.Xor2(a, c)
		case 3:
			return b.Not(a)
		default:
			return b.Mux2(leaf(), a, c)
		}
	}
	for i := 0; i < nRegs; i++ {
		b.SetNext(fmt.Sprintf("r%d", i), circuit.Word{expr()})
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var universe []Pred
	for i := 0; i < nRegs; i++ {
		universe = append(universe, regEq{reg: fmt.Sprintf("r%d", i), val: 0})
		universe = append(universe, regEq{reg: fmt.Sprintf("r%d", i), val: 1})
	}
	return &System{Circuit: c}, universe
}

// allInputCombos enumerates every input assignment of a circuit with 1-bit
// inputs.
func allInputCombos(c *circuit.Circuit) []circuit.Inputs {
	ports := c.Inputs()
	n := len(ports)
	out := make([]circuit.Inputs, 0, 1<<n)
	for m := 0; m < 1<<n; m++ {
		in := circuit.Inputs{}
		for i, p := range ports {
			in[p.Name] = uint64(m>>i) & 1
		}
		out = append(out, in)
	}
	return out
}

// reachable enumerates the reachable state set by BFS over concrete
// simulation.
func reachable(t *testing.T, c *circuit.Circuit) []circuit.Snapshot {
	t.Helper()
	sim := circuit.NewSim(c)
	inputs := allInputCombos(c)
	key := func(s circuit.Snapshot) string { return fmt.Sprint(s) }
	seen := map[string]circuit.Snapshot{}
	frontier := []circuit.Snapshot{circuit.InitSnapshot(c)}
	seen[key(frontier[0])] = frontier[0]
	for len(frontier) > 0 {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, in := range inputs {
			sim.LoadSnapshot(cur)
			sim.Step(in)
			next := sim.Snapshot()
			if _, ok := seen[key(next)]; !ok {
				seen[key(next)] = next
				frontier = append(frontier, next)
			}
		}
	}
	out := make([]circuit.Snapshot, 0, len(seen))
	for _, s := range seen {
		out = append(out, s)
	}
	return out
}

// holdsOn evaluates a conjunction of predicates on a snapshot.
func holdsOn(t *testing.T, c *circuit.Circuit, preds []Pred, s circuit.Snapshot) bool {
	t.Helper()
	for _, p := range preds {
		ok, err := p.Eval(c, s)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return false
		}
	}
	return true
}

// bruteForceInvariantExists checks by enumeration whether any subset of
// the universe containing the target forms an inductive invariant
// (initiation + consecution over the full state space).
func bruteForceInvariantExists(t *testing.T, c *circuit.Circuit, universe []Pred, target Pred) bool {
	t.Helper()
	sim := circuit.NewSim(c)
	inputs := allInputCombos(c)
	nBits := c.NumStateBits()
	if nBits > 8 {
		t.Fatalf("brute force limited to 8 state bits, got %d", nBits)
	}
	// Enumerate all states once.
	var states []circuit.Snapshot
	for m := 0; m < 1<<nBits; m++ {
		s := make(circuit.Snapshot, len(c.Regs()))
		for i := range c.Regs() {
			s[i] = uint64(m>>i) & 1 // all registers are 1 bit here
		}
		states = append(states, s)
	}
	init := circuit.InitSnapshot(c)
	for mask := 0; mask < 1<<len(universe); mask++ {
		var subset []Pred
		hasTarget := false
		for i, p := range universe {
			if mask&(1<<i) != 0 {
				subset = append(subset, p)
				if p.ID() == target.ID() {
					hasTarget = true
				}
			}
		}
		if !hasTarget || !holdsOn(t, c, subset, init) {
			continue
		}
		inductive := true
	outer:
		for _, s := range states {
			if !holdsOn(t, c, subset, s) {
				continue
			}
			for _, in := range inputs {
				sim.LoadSnapshot(s)
				sim.Step(in)
				if !holdsOn(t, c, subset, sim.Snapshot()) {
					inductive = false
					break outer
				}
			}
		}
		if inductive {
			return true
		}
	}
	return false
}

// TestQuickLearnerSoundAndComplete cross-checks the learner against brute
// force on random tiny systems: when the learner returns an invariant it
// must audit and imply the property on every reachable state; when it
// returns None, no subset of the universe may form a proving invariant
// (the completeness guarantee of Appendix A.3).
func TestQuickLearnerSoundAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(20250704))
	found, none := 0, 0
	for iter := 0; iter < 60; iter++ {
		sys, universe := randomSystem(t, rng)
		target := universe[rng.Intn(len(universe))].(regEq)
		// Skip targets violated at init (trivially None; covered elsewhere).
		init := circuit.InitSnapshot(sys.Circuit)
		if ok, _ := target.Eval(sys.Circuit, init); !ok {
			continue
		}
		l := NewLearner(sys, minerOf(universe...), DefaultOptions())
		inv, err := l.Learn([]Pred{target})
		if err != nil {
			t.Fatal(err)
		}
		exists := bruteForceInvariantExists(t, sys.Circuit, universe, target)
		if inv != nil {
			found++
			if !exists {
				t.Fatalf("iter %d: learner found an invariant brute force says cannot exist", iter)
			}
			if err := Audit(sys, inv); err != nil {
				t.Fatalf("iter %d: audit: %v", iter, err)
			}
			for _, s := range reachable(t, sys.Circuit) {
				ok, err := target.Eval(sys.Circuit, s)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("iter %d: property violated on reachable state %v despite invariant", iter, s)
				}
			}
		} else {
			none++
			if exists {
				t.Fatalf("iter %d: learner returned None but an invariant exists in the universe", iter)
			}
		}
	}
	if found == 0 || none == 0 {
		t.Fatalf("test corpus unbalanced: found=%d none=%d", found, none)
	}
	t.Logf("random systems: %d invariants found, %d correct Nones", found, none)
}

// TestQuickRecursiveAgreesOnRandomSystems cross-checks the worklist and
// recursive learners on the same random corpus.
func TestQuickRecursiveAgreesOnRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 40; iter++ {
		sys, universe := randomSystem(t, rng)
		target := universe[rng.Intn(len(universe))].(regEq)
		init := circuit.InitSnapshot(sys.Circuit)
		if ok, _ := target.Eval(sys.Circuit, init); !ok {
			continue
		}
		lw := NewLearner(sys, minerOf(universe...), DefaultOptions())
		invW, err := lw.Learn([]Pred{target})
		if err != nil {
			t.Fatal(err)
		}
		lr := NewLearner(sys, minerOf(universe...), DefaultOptions())
		invR, err := lr.LearnRecursive([]Pred{target})
		if err != nil {
			t.Fatal(err)
		}
		if (invW == nil) != (invR == nil) {
			t.Fatalf("iter %d: learners disagree (worklist=%v recursive=%v)", iter, invW != nil, invR != nil)
		}
		if invR != nil {
			if err := Audit(sys, invR); err != nil {
				t.Fatalf("iter %d: recursive invariant audit: %v", iter, err)
			}
		}
	}
}

// TestQuickParallelAgreesOnRandomSystems checks worker counts do not change
// the verdict.
func TestQuickParallelAgreesOnRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	for iter := 0; iter < 25; iter++ {
		sys, universe := randomSystem(t, rng)
		target := universe[rng.Intn(len(universe))].(regEq)
		init := circuit.InitSnapshot(sys.Circuit)
		if ok, _ := target.Eval(sys.Circuit, init); !ok {
			continue
		}
		var verdicts []bool
		for _, w := range []int{1, 3} {
			l := NewLearner(sys, minerOf(universe...), Options{Workers: w, MinimizeCores: true})
			inv, err := l.Learn([]Pred{target})
			if err != nil {
				t.Fatal(err)
			}
			verdicts = append(verdicts, inv != nil)
			if inv != nil {
				if err := Audit(sys, inv); err != nil {
					t.Fatalf("iter %d workers=%d: %v", iter, w, err)
				}
			}
		}
		if verdicts[0] != verdicts[1] {
			t.Fatalf("iter %d: parallel verdict differs", iter)
		}
	}
}
