package hhoudini

// Persistence wiring: binds VerifyCaches to an on-disk proof store
// (internal/proofdb) so separate process invocations share warm starts.
// The soundness argument is unchanged from the in-memory cache: records
// are keyed by (circuit fingerprint, EnvKey), so a restored clause or
// verdict is only ever consulted for a system with the identical structural
// and environmental identity it was derived under.

import (
	"context"
	"path/filepath"
	"sync"
	"time"

	"hhoudini/internal/proofdb"
)

// ProofDBConfig configures a persistent proof-store binding.
type ProofDBConfig struct {
	// Store tunes the on-disk side (staleness bound, byte budget, clock).
	Store proofdb.Options
	// FlushInterval, when positive, starts a background flusher goroutine
	// that periodically persists every attached cache; Close stops it
	// cleanly (context cancellation, final flush included). Zero leaves
	// flushing to Learn shutdown and explicit Flush/Close calls.
	FlushInterval time.Duration
}

// ProofDB binds an open proof store to one or more VerifyCaches: opening
// restores the store's contents into the cache, and every Flush merges the
// caches' current durable state back and atomically rewrites the file.
type ProofDB struct {
	db *proofdb.DB

	mu       sync.Mutex
	attached []*VerifyCache
	seen     map[*VerifyCache]bool
	closed   bool
	// flushErr is the most recent background-flusher failure (hhlint's
	// flusherr pass rejects silently dropped flush errors; the background
	// loop cannot propagate, so it records here and LastFlushErr exposes
	// it). A later successful flush clears it.
	flushErr error
	// unhooks removes the delta sinks this binding registered on attached
	// caches. Caches can outlive the binding (the shared in-process cache is
	// process-global), so a closed ProofDB must stop receiving their deltas.
	unhooks []func()

	cancel context.CancelFunc
	done   chan struct{}
}

// OpenProofDB opens (creating if needed) the proof store in dir, restores
// its contents into vc (when non-nil), and returns the binding. Data-level
// corruption — torn records, bit flips, a version-mismatched file — is
// never an error; the store just loads colder (see proofdb.Stats). Errors
// are environmental (unwritable directory).
func OpenProofDB(dir string, vc *VerifyCache, cfg ProofDBConfig) (*ProofDB, error) {
	db, err := proofdb.Open(dir, cfg.Store)
	if err != nil {
		return nil, err
	}
	p := &ProofDB{db: db, seen: make(map[*VerifyCache]bool)}
	if vc != nil {
		p.Attach(vc)
	}
	if cfg.FlushInterval > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		p.cancel = cancel
		p.done = make(chan struct{})
		go p.flushLoop(ctx, cfg.FlushInterval)
	}
	return p, nil
}

// Attach restores the store's contents into vc, registers it as a flush
// source, and subscribes to its durable deltas: every new verdict, abduct,
// or harvested clause is appended to the store's write-ahead journal as it
// lands, so the crash-loss window is the journal sync policy's, not the
// flush interval's. Idempotent per cache.
func (p *ProofDB) Attach(vc *VerifyCache) {
	if vc == nil {
		return
	}
	p.mu.Lock()
	if p.closed || p.seen[vc] {
		p.mu.Unlock()
		return
	}
	p.seen[vc] = true
	p.attached = append(p.attached, vc)
	p.unhooks = append(p.unhooks, vc.addDeltaSink(p.appendDelta))
	p.mu.Unlock()
	// Restore outside p.mu: Snapshot and Restore take their own locks.
	// Restores never re-emit into sinks, so this cannot echo the store's
	// own contents back into the journal.
	vc.Restore(p.db.Snapshot())
}

// appendDelta is the registered delta sink: it merges the delta into the
// store's memory image and journals it. proofdb.Append never errors — on
// persistent journal I/O failure the store degrades to snapshot-only mode
// and the delta still lands in memory for the next Flush.
func (p *ProofDB) appendDelta(s *proofdb.Snapshot) { p.db.Append(s) }

// Flush merges the durable state of every attached cache into the store and
// atomically rewrites the file (crash-safe: temp file + fsync + rename).
// The outcome is also recorded for LastFlushErr, so callers that cannot
// propagate (Learn's shutdown path, the background loop) still leave the
// failure observable.
func (p *ProofDB) Flush() error {
	p.mu.Lock()
	caches := append([]*VerifyCache(nil), p.attached...)
	p.mu.Unlock()
	for _, vc := range caches {
		p.db.Merge(vc.SnapshotData())
		vc.noteDiskFlush()
	}
	err := p.db.Flush()
	p.mu.Lock()
	p.flushErr = err
	p.mu.Unlock()
	return err
}

// Persist is the cheap durability point: it fsyncs the store's journal tail
// instead of rewriting the snapshot. Because attached caches stream their
// deltas into the journal as they land (see Attach), everything derived so
// far is already in the store's memory image and journal — Persist only has
// to make the bytes durable. When the journal is disabled, degraded, or
// oversized, the store escalates to a full Flush on its own. The outcome is
// recorded for LastFlushErr like any flush.
func (p *ProofDB) Persist() error {
	p.mu.Lock()
	caches := append([]*VerifyCache(nil), p.attached...)
	p.mu.Unlock()
	err := p.db.Persist()
	if err == nil {
		for _, vc := range caches {
			vc.noteDiskFlush()
		}
	}
	p.mu.Lock()
	p.flushErr = err
	p.mu.Unlock()
	return err
}

// flushLoop is the optional background flusher: interval flushes until the
// context is cancelled, then one final flush before signalling done. A
// failed interval flush cannot propagate to any caller, so it is recorded
// (LastFlushErr) instead of dropped; Close still performs the last durable
// flush and returns its error.
func (p *ProofDB) flushLoop(ctx context.Context, interval time.Duration) {
	defer close(p.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			err := p.Flush()
			p.mu.Lock()
			p.flushErr = err
			p.mu.Unlock()
		case <-ctx.Done():
			return
		}
	}
}

// LastFlushErr reports the outcome of the most recent Flush — foreground
// (Learn shutdown, explicit calls) or background — nil when no flush has
// failed since the last success. Close remains the authoritative
// durability point.
func (p *ProofDB) LastFlushErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushErr
}

// Stats returns the underlying store's counters.
func (p *ProofDB) Stats() proofdb.Stats { return p.db.Stats() }

// Path returns the store file path.
func (p *ProofDB) Path() string { return p.db.Path() }

// Close stops the background flusher (if any), performs a final flush, and
// marks the binding closed. Safe to call more than once.
func (p *ProofDB) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	cancel, done := p.cancel, p.done
	unhooks := p.unhooks
	p.unhooks = nil
	p.mu.Unlock()
	for _, unhook := range unhooks {
		unhook()
	}
	if cancel != nil {
		cancel()
		//hhlint:ignore ctxflow flusher observes the ctx cancelled on the line above and exits; this join is bounded
		<-done
	}
	err := p.Flush()
	if cerr := p.db.Close(); err == nil {
		err = cerr
	}
	return err
}

// abandon drops the binding without flushing anything: sinks are unhooked,
// the flusher is stopped, and the store is abandoned (journal tail handle
// closed without a final sync). Crash-simulation only — recovery then sees
// exactly what a kill -9 would have left.
func (p *ProofDB) abandon() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	cancel, done := p.cancel, p.done
	unhooks := p.unhooks
	p.unhooks = nil
	p.mu.Unlock()
	for _, unhook := range unhooks {
		unhook()
	}
	if cancel != nil {
		cancel()
		//hhlint:ignore ctxflow flusher observes the ctx cancelled on the line above and exits; this join is bounded
		<-done
	}
	p.db.Abandon()
}

// --- Options.CacheDir registry ----------------------------------------------
//
// Learners configured with Options.CacheDir share one ProofDB per directory
// for the life of the process: the first learner to name a directory opens
// (and loads) the store; every learner's cache is attached on construction;
// Learn flushes at shutdown. CloseProofDBs is the process-exit hook.

var proofDBReg = struct {
	sync.Mutex
	open map[string]*ProofDB
}{open: make(map[string]*ProofDB)}

// defaultJournal is the journal configuration CacheDir-bound stores open
// with. The journal is on by default (SyncOnFlush: bounded loss, no fsync
// per record); SetDefaultJournal lets an embedding daemon pick the policy
// before the first learner binds a store.
var defaultJournal = struct {
	sync.Mutex
	opts proofdb.JournalOptions
}{opts: proofdb.JournalOptions{Enable: true}}

// SetDefaultJournal sets the journal options used by stores bound through
// Options.CacheDir. It affects stores opened after the call; already-open
// bindings keep their policy.
func SetDefaultJournal(opts proofdb.JournalOptions) {
	defaultJournal.Lock()
	defaultJournal.opts = opts
	defaultJournal.Unlock()
}

// boundProofDB returns the process-wide ProofDB for dir (opening it on
// first use) with vc attached. Failures degrade to nil — the learner then
// runs with a purely in-memory cache, which is the documented cold-start
// behaviour for unusable stores.
func boundProofDB(dir string, vc *VerifyCache) *ProofDB {
	key := dir
	if abs, err := filepath.Abs(dir); err == nil {
		key = abs
	}
	proofDBReg.Lock()
	p := proofDBReg.open[key]
	if p == nil {
		defaultJournal.Lock()
		cfg := ProofDBConfig{Store: proofdb.Options{Journal: defaultJournal.opts}}
		defaultJournal.Unlock()
		var err error
		p, err = OpenProofDB(dir, nil, cfg)
		if err != nil {
			proofDBReg.Unlock()
			return nil
		}
		proofDBReg.open[key] = p
	}
	proofDBReg.Unlock()
	p.Attach(vc)
	return p
}

// ProofDBStatsFor reports the live store counters for the CacheDir-bound
// ProofDB at dir, if one is open in this process. Serving daemons use it to
// surface journal health without holding their own store reference.
func ProofDBStatsFor(dir string) (proofdb.Stats, bool) {
	key := dir
	if abs, err := filepath.Abs(dir); err == nil {
		key = abs
	}
	proofDBReg.Lock()
	p := proofDBReg.open[key]
	proofDBReg.Unlock()
	if p == nil {
		return proofdb.Stats{}, false
	}
	return p.Stats(), true
}

// CloseProofDBs flushes and closes every proof store opened through
// Options.CacheDir and empties the registry (so a later Learner re-opens —
// and re-reads — the file). It returns the first error encountered.
// Explicitly opened ProofDBs (OpenProofDB) are not affected.
func CloseProofDBs() error {
	proofDBReg.Lock()
	open := proofDBReg.open
	proofDBReg.open = make(map[string]*ProofDB)
	proofDBReg.Unlock()
	var first error
	for _, p := range open {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CrashProofDBs simulates a process kill for every CacheDir-bound store:
// the registry is emptied and each binding is abandoned WITHOUT a final
// flush or journal sync — on-disk state is left exactly as a kill -9 would
// have left it. Test harnesses use this to measure the journal's real loss
// window end-to-end (a clean Close would flush and hide it).
func CrashProofDBs() {
	proofDBReg.Lock()
	open := proofDBReg.open
	proofDBReg.open = make(map[string]*ProofDB)
	proofDBReg.Unlock()
	for _, p := range open {
		p.abandon()
	}
}
