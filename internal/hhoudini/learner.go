package hhoudini

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hhoudini/internal/circuit"
	"hhoudini/internal/faultinject"
	"hhoudini/internal/sat"
)

// Options tune the learner.
type Options struct {
	// Workers is the number of parallel abduction workers (§3.2.4). 1
	// runs the algorithm sequentially and deterministically. 0 defaults
	// to GOMAXPROCS.
	Workers int
	// MinimizeCores shrinks every UNSAT core to a locally minimal one
	// before using it as an abduct (the paper's cvc5 minimal-unsat-cores
	// setting). Disabling it is the core-minimization ablation.
	MinimizeCores bool
	// StagedMining feeds the abduction oracle increasingly large candidate
	// subsets (tier by tier) instead of everything at once — the
	// incremental mining variant of §3.2.3 footnote 4.
	StagedMining bool
	// IncrementalSolver enables the pooled abduction backend: each worker
	// keeps solver/encoder pairs keyed by target-cone signature, scopes
	// the query-specific facts (p_target, ¬p'_target, candidate
	// attachment) with assumption literals, and memoizes every cone and
	// predicate encoding across queries. Disabling it restores the
	// fresh-solver-per-query path — the ablation baseline exercised by
	// BenchmarkAblationIncrementalSolver.
	IncrementalSolver bool
	// CrossRunCache extends memoization across Learner instances: worker
	// pools check retired solver/encoder pairs out of (and back into) a
	// shared VerifyCache keyed by System.CacheKey, base-system learnt
	// clauses are replayed between solvers of the same identity, and whole
	// abduction verdicts are memoized. It only engages for cacheable
	// systems (see System.CacheKey) and composes with IncrementalSolver;
	// disabling it is the cross-run ablation and restores fully isolated
	// Learn calls.
	CrossRunCache bool
	// ConeLevelCache rekeys every cross-run cache artifact — pooled
	// solver/encoder pairs, stored learnt clauses, verdict and abduct memos
	// — at predicate-cone granularity: the key is the canonical fingerprint
	// of the target's slice cone (System.ConeCacheKey) instead of the
	// whole-circuit fingerprint, and pooled encoders name cone-internal
	// nodes canonically so their learnt clauses translate across designs.
	// Two designs sharing a subsystem (e.g. a register file in front of
	// differently-sized back-ends) then share all verification state for
	// the predicates whose cones lie inside it. Only meaningful with
	// CrossRunCache; disabling it is the whole-circuit-key ablation.
	ConeLevelCache bool
	// Cache overrides the process-global shared cache (SharedCache) when
	// CrossRunCache is on. Useful for tests and for isolating workloads.
	Cache *VerifyCache
	// CacheDir, when non-empty (and CrossRunCache is on for a cacheable
	// system), binds the verification cache to a persistent proof store in
	// that directory: the first Learner to name the directory restores the
	// store's learnt clauses and verdict memos into the cache, and every
	// Learn flushes the cache back at shutdown — so separate process
	// invocations over the same design share warm starts. Unusable stores
	// (corrupt, version-mismatched, unwritable) degrade to a cold start;
	// they never fail the learner. See OpenProofDB for explicit lifecycle
	// control and CloseProofDBs for the process-exit hook.
	CacheDir string
	// ShareClauses enables lock-free mid-run clause exchange between
	// workers: each worker's solver publishes its hottest learnt clauses
	// (low LBD, short, over canonically named variables) into a bounded
	// per-worker ring and drains its siblings' rings at restart boundaries.
	// It only engages with Workers > 1 — with one worker there is no
	// sibling to share with — and composes with both abduction backends.
	// Disabling it is the clause-sharing ablation
	// (BenchmarkAblationClauseShare) and restores per-worker solver
	// determinism (the -deterministic flag of the CLIs).
	ShareClauses bool
	// ShareRingSize is the per-worker ring capacity in clauses; 0 selects
	// the default (256). The ring overwrites oldest, so the size bounds
	// memory, not throughput.
	ShareRingSize int
	// InitialSolverConflicts seeds the budget-escalation ladder: every
	// abduction query's first attempt runs under this many solver conflicts
	// and each sat.Unknown verdict escalates the budget ×4 (counted by
	// Stats.QueryRetries) until the query resolves or the ladder tops out
	// at MaxSolverConflicts. 0 selects the default (2048 conflicts); a
	// negative value disables the ladder entirely — each query gets a
	// single attempt bounded only by MaxSolverConflicts — which is the
	// budget-escalation ablation.
	InitialSolverConflicts int64
	// MaxSolverConflicts caps the ladder's per-query budget. 0 means
	// uncapped: once the next escalation step would exceed ~2M conflicts
	// the final attempt runs unbounded. With a positive cap, a query still
	// Unknown at the cap is abandoned with ErrBudgetExceeded (counted by
	// Stats.QueryBudgetAbandons) — the learner degrades with a typed error
	// instead of hanging.
	MaxSolverConflicts int64
}

// DefaultOptions mirror the paper's configuration (incremental,
// assumption-scoped abduction queries; verification state shared across
// runs over the same system).
func DefaultOptions() Options {
	return Options{Workers: 1, MinimizeCores: true, IncrementalSolver: true, CrossRunCache: true,
		ConeLevelCache: true, ShareClauses: true}
}

// Tiered is an optional interface predicates may implement to support
// staged mining; lower tiers are offered to the abduction oracle first.
type Tiered interface {
	Tier() int
}

func tierOf(p Pred) int {
	if t, ok := p.(Tiered); ok {
		return t.Tier()
	}
	return 0
}

// Stats aggregates the instrumentation behind the paper's Figures 4 and 5.
//
// The counter fields are updated with atomic operations on the hot path
// (no lock); read them only after Learn returns, or via atomic loads.
//
// hhlint:atomic-counters — every plain-int64 field below is a hot-path
// counter; hhlint's atomicstats pass rejects non-atomic access (plain
// reads are permitted in package main, the post-Learn accessor set).
type Stats struct {
	Tasks      int64 // H-Houdini task bodies executed (Fig. 5 x-axis)
	Backtracks int64 // re-syntheses caused by failed predicates (Fig. 5)
	Queries    int64 // SMT (SAT) queries issued

	// Encode-work counters behind the incremental-solver ablation.
	EncodedGates   int64 // Tseitin gate variables introduced across all queries
	EncodedClauses int64 // clauses pushed into solvers across all queries
	SolverAllocs   int64 // solver/encoder pairs constructed
	PoolReuses     int64 // abduction queries served by an already-warm pooled solver

	// Cross-run cache counters (Options.CrossRunCache), as seen by this
	// learner: hits/misses on pooled-encoder checkout, whole abduction
	// queries answered by the verdict memo, learnt clauses replayed into /
	// exported out of this learner's solvers, and encoders this learner's
	// check-ins evicted from the shared cache.
	CacheEncoderHits     int64
	CacheEncoderMisses   int64
	CacheVerdictHits     int64
	CacheClausesReplayed int64
	CacheClausesExported int64
	CacheEvictions       int64
	// CacheAbductHits counts abduction queries answered by the subset-abduct
	// memo (Options.ConeLevelCache): a previously proven abduct whose members
	// are all present in the current candidate set is returned without any
	// solver work, even when the candidate sets differ.
	CacheAbductHits int64

	// Persistent-proof-store counters (Options.CacheDir / OpenProofDB).
	// CacheDiskHits counts abduction queries answered by a verdict memo
	// restored from disk (the warm-process acceptance metric); the others
	// snapshot the store/cache state at Learn shutdown: records restored
	// at open, flushes of this learner's cache, and the cache's durable
	// footprint (VerifyCache.Len / Bytes).
	CacheDiskHits    int64
	CacheDiskLoads   int64
	CacheDiskFlushes int64
	CacheEntries     int64
	CacheBytes       int64

	// Mid-run clause-exchange counters (Options.ShareClauses): clauses
	// published into this learner's rings and clauses drained out of
	// sibling rings into a solver. SolverConflicts totals CDCL conflicts
	// across every solver the learner owned — the effort metric the
	// clause-sharing ablation compares.
	ShareExported   int64
	ShareImported   int64
	SolverConflicts int64

	// Budget-escalation counters (Options.InitialSolverConflicts /
	// MaxSolverConflicts): attempts re-issued with an escalated conflict
	// budget after a sat.Unknown, and queries abandoned with
	// ErrBudgetExceeded once the ladder reached its cap.
	QueryRetries        int64
	QueryBudgetAbandons int64

	// WallTime accumulates Learn wall-clock time. It is written under the
	// Stats mutex (addWall) so Snapshot can observe it race-free while a
	// Learn is still running; plain reads remain fine once Learn returns.
	WallTime time.Duration

	mu         sync.Mutex
	queryTimes []time.Duration
	taskTimes  []time.Duration
	// span is the critical-path length through the task dependency graph:
	// the wall time an execution with unbounded workers could not go below
	// (the paper's "parallel span", Fig. 2/3).
	span time.Duration
}

// StatsSnapshot is an atomic, copy-out view of a Stats instrument set. It
// exists for readers that observe a *live* learner — the service layer
// reports per-job and global counters while Learn is still running — where
// plain reads of the counter fields would race the workers' atomic.Adds.
// Every counter is captured with an atomic load and the lock-guarded
// aggregates (wall time, span, query/task totals) under the Stats mutex, so
// a snapshot is internally consistent enough for reporting: each field is a
// value the learner really published, though fields may be skewed by the
// work that happened between loads.
type StatsSnapshot struct {
	Tasks      int64
	Backtracks int64
	Queries    int64

	EncodedGates   int64
	EncodedClauses int64
	SolverAllocs   int64
	PoolReuses     int64

	CacheEncoderHits     int64
	CacheEncoderMisses   int64
	CacheVerdictHits     int64
	CacheClausesReplayed int64
	CacheClausesExported int64
	CacheEvictions       int64
	CacheAbductHits      int64

	CacheDiskHits    int64
	CacheDiskLoads   int64
	CacheDiskFlushes int64
	CacheEntries     int64
	CacheBytes       int64

	ShareExported   int64
	ShareImported   int64
	SolverConflicts int64

	QueryRetries        int64
	QueryBudgetAbandons int64

	WallTime time.Duration
	Span     time.Duration
	// TotalQueryTime / TotalTaskTime are the summed per-query and per-task
	// durations at snapshot time (the Stats accessor methods, frozen).
	TotalQueryTime time.Duration
	TotalTaskTime  time.Duration
}

// Snapshot captures every counter with atomic loads and the lock-guarded
// aggregates under the mutex. Safe to call at any time, including while
// Learn is running on other goroutines.
func (s *Stats) Snapshot() StatsSnapshot {
	snap := StatsSnapshot{
		Tasks:      atomic.LoadInt64(&s.Tasks),
		Backtracks: atomic.LoadInt64(&s.Backtracks),
		Queries:    atomic.LoadInt64(&s.Queries),

		EncodedGates:   atomic.LoadInt64(&s.EncodedGates),
		EncodedClauses: atomic.LoadInt64(&s.EncodedClauses),
		SolverAllocs:   atomic.LoadInt64(&s.SolverAllocs),
		PoolReuses:     atomic.LoadInt64(&s.PoolReuses),

		CacheEncoderHits:     atomic.LoadInt64(&s.CacheEncoderHits),
		CacheEncoderMisses:   atomic.LoadInt64(&s.CacheEncoderMisses),
		CacheVerdictHits:     atomic.LoadInt64(&s.CacheVerdictHits),
		CacheClausesReplayed: atomic.LoadInt64(&s.CacheClausesReplayed),
		CacheClausesExported: atomic.LoadInt64(&s.CacheClausesExported),
		CacheEvictions:       atomic.LoadInt64(&s.CacheEvictions),
		CacheAbductHits:      atomic.LoadInt64(&s.CacheAbductHits),

		CacheDiskHits:    atomic.LoadInt64(&s.CacheDiskHits),
		CacheDiskLoads:   atomic.LoadInt64(&s.CacheDiskLoads),
		CacheDiskFlushes: atomic.LoadInt64(&s.CacheDiskFlushes),
		CacheEntries:     atomic.LoadInt64(&s.CacheEntries),
		CacheBytes:       atomic.LoadInt64(&s.CacheBytes),

		ShareExported:   atomic.LoadInt64(&s.ShareExported),
		ShareImported:   atomic.LoadInt64(&s.ShareImported),
		SolverConflicts: atomic.LoadInt64(&s.SolverConflicts),

		QueryRetries:        atomic.LoadInt64(&s.QueryRetries),
		QueryBudgetAbandons: atomic.LoadInt64(&s.QueryBudgetAbandons),
	}
	s.mu.Lock()
	snap.WallTime = s.WallTime
	snap.Span = s.span
	for _, d := range s.queryTimes {
		snap.TotalQueryTime += d
	}
	for _, d := range s.taskTimes {
		snap.TotalTaskTime += d
	}
	s.mu.Unlock()
	return snap
}

// statsPrealloc is the initial capacity of the per-query/per-task time
// slices; learning runs on the evaluated designs issue hundreds to a few
// thousand queries, so this avoids repeated growth under the lock.
const statsPrealloc = 1024

func newStats() *Stats {
	return &Stats{
		queryTimes: make([]time.Duration, 0, statsPrealloc),
		taskTimes:  make([]time.Duration, 0, statsPrealloc),
	}
}

// Span returns the critical-path estimate accumulated during Learn.
func (s *Stats) Span() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.span
}

// TotalTaskTime sums all task durations (the total parallelizable work).
func (s *Stats) TotalTaskTime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total time.Duration
	for _, d := range s.taskTimes {
		total += d
	}
	return total
}

// addWall folds one Learn's wall time into WallTime under the mutex, so a
// concurrent Snapshot never races the write.
func (s *Stats) addWall(d time.Duration) {
	s.mu.Lock()
	s.WallTime += d
	s.mu.Unlock()
}

func (s *Stats) recordQuery(d time.Duration) {
	atomic.AddInt64(&s.Queries, 1)
	s.mu.Lock()
	s.queryTimes = append(s.queryTimes, d)
	s.mu.Unlock()
}

// recordTask records one task body duration and folds its dependency-chain
// completion time into the span estimate under a single lock acquisition.
func (s *Stats) recordTask(d, chainOut time.Duration) {
	s.mu.Lock()
	s.taskTimes = append(s.taskTimes, d)
	if chainOut > s.span {
		s.span = chainOut
	}
	s.mu.Unlock()
}

// addEncodeWork charges encode-work deltas from one query.
func (s *Stats) addEncodeWork(gates, clauses int64) {
	atomic.AddInt64(&s.EncodedGates, gates)
	atomic.AddInt64(&s.EncodedClauses, clauses)
}

// TaskTimePercentile returns the p-quantile (0..1) of per-task times (all
// time spent in a task body: slicing, mining and solving — Fig. 4's "task
// time").
func (s *Stats) TaskTimePercentile(p float64) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.taskTimes) == 0 {
		return 0
	}
	ts := append([]time.Duration(nil), s.taskTimes...)
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	idx := int(p * float64(len(ts)-1))
	return ts[idx]
}

// MedianTaskTime is the Fig. 4 companion metric to MedianQueryTime.
func (s *Stats) MedianTaskTime() time.Duration { return s.TaskTimePercentile(0.5) }

// QueryTimePercentile returns the p-quantile (0..1) of per-query times.
func (s *Stats) QueryTimePercentile(p float64) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queryTimes) == 0 {
		return 0
	}
	ts := append([]time.Duration(nil), s.queryTimes...)
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	idx := int(p * float64(len(ts)-1))
	return ts[idx]
}

// MedianQueryTime is the Fig. 4 metric.
func (s *Stats) MedianQueryTime() time.Duration { return s.QueryTimePercentile(0.5) }

// TotalQueryTime sums all query durations (CPU time spent in the solver).
func (s *Stats) TotalQueryTime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total time.Duration
	for _, d := range s.queryTimes {
		total += d
	}
	return total
}

// Invariant is a learned inductive invariant: the conjunction of Preds. It
// proves each predicate in Targets (which are members of Preds).
type Invariant struct {
	Preds   []Pred
	Targets []Pred
}

// Size is the number of predicates (the paper's "invariant size", Table 1).
func (inv *Invariant) Size() int { return len(inv.Preds) }

// Contains reports whether the invariant includes a predicate by ID.
func (inv *Invariant) Contains(id string) bool {
	for _, p := range inv.Preds {
		if p.ID() == id {
			return true
		}
	}
	return false
}

// Learner runs the H-Houdini algorithm over a system with pluggable
// slicing and mining oracles.
type Learner struct {
	sys   *System
	slice SliceOracle
	mine  MineOracle
	opts  Options
	stats *Stats

	// cache/cacheKey enable cross-run memoization (Options.CrossRunCache).
	// Both stay zero when the option is off or the system is not cacheable
	// (System.CacheKey), in which case every path below behaves exactly as
	// the isolated PR 1 learner.
	cache    *VerifyCache
	cacheKey string
	// coneIdents memoizes per-target cone cache identities (coneIdent) by
	// predicate ID when Options.ConeLevelCache is on. Cone membership is a
	// pure function of the predicate and the circuit, so the memo is sound
	// for the learner's lifetime.
	coneIdents sync.Map // pred ID → coneIdent
	// pdb is the persistent proof store bound via Options.CacheDir (nil
	// when persistence is off or the store is unusable). Learn flushes the
	// cache into it at shutdown.
	pdb *ProofDB

	// init is the reset-state snapshot, computed once per learner;
	// initEval memoizes per-predicate init-state evaluation by pred ID
	// (s0 is a fixed positive example, so the verdict never changes).
	init     circuit.Snapshot
	initEval sync.Map // pred ID → bool

	// stop is the cancellation flag: set once (by LearnCtx's watcher when
	// the context fires), read on every worker iteration and between
	// escalation-ladder attempts. It is never cleared — a Learner runs one
	// Learn, so a stale stop can only make cancellation more prompt.
	stop atomic.Bool

	mu      sync.Mutex
	cond    *sync.Cond
	entries map[string]*entry
	failed  map[string]bool
	queue   []string
	active  int
	err     error
	// solvers is the registry of live solver instances currently owned by
	// this learner's workers (pooled or fresh), mapped to their cumulative
	// conflict count at registration. A cancellation interrupts every
	// member so in-flight CDCL searches return Unknown within one
	// interrupt-check interval instead of running to completion; on
	// deregistration the conflict delta since registration is folded into
	// Stats.SolverConflicts.
	solvers map[*sat.Solver]int64

	// exchange is the mid-run clause-sharing fabric (Options.ShareClauses);
	// nil when sharing is off or the learner runs a single worker.
	exchange *clauseExchange
}

type entry struct {
	pred   Pred
	solved bool
	queued bool
	abduct []Pred
	deps   map[string]bool // IDs of entries whose abduct references this one
	// chainIn is the longest dependency chain (in task time) leading to
	// this obligation; chainIn + own task time feeds the span estimate.
	chainIn time.Duration
}

// NewLearner builds a learner with the default COI slicing oracle.
func NewLearner(sys *System, mine MineOracle, opts Options) *Learner {
	l := &Learner{
		sys:     sys,
		slice:   NewCOISlicer(sys.Circuit),
		mine:    mine,
		opts:    opts,
		stats:   newStats(),
		init:    circuit.InitSnapshot(sys.Circuit),
		entries: make(map[string]*entry),
		failed:  make(map[string]bool),
		solvers: make(map[*sat.Solver]int64),
	}
	if l.opts.Workers == 0 {
		l.opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.ShareClauses && l.opts.Workers > 1 {
		l.exchange = newClauseExchange(l.opts.Workers, opts.ShareRingSize, l.stats)
	}
	if opts.CrossRunCache {
		if key, ok := sys.CacheKey(); ok {
			l.cacheKey = key
			l.cache = opts.Cache
			if l.cache == nil {
				l.cache = sharedCache
			}
			if opts.CacheDir != "" {
				// Best-effort: an unusable store leaves pdb nil and the
				// learner runs with the in-memory cache alone.
				l.pdb = boundProofDB(opts.CacheDir, l.cache)
			}
		}
	}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// coneIdent is one target's cone-level cache identity: the cache key
// (System.ConeCacheKey over the support) plus the support itself, which
// encoder construction needs to install cone-canonical node names.
type coneIdent struct {
	key     string
	support []string
}

// coneIdentFor derives (and memoizes) the cone-level cache identity of a
// target predicate. The support is the target's slice — the candidate
// universe of its abduction queries — unioned with its own variables, so an
// equal cone key pins the structure every artifact under the key can
// reference: the target's next-state cone, every candidate's registers
// (names, widths, resets) and the input interface. When slicing fails the
// identity degrades to the whole-circuit key, which is always sound.
func (l *Learner) coneIdentFor(target Pred) coneIdent {
	if v, ok := l.coneIdents.Load(target.ID()); ok {
		return v.(coneIdent)
	}
	ident := coneIdent{key: l.cacheKey}
	if slice, err := l.slice.Slice(target); err == nil {
		support := append(append([]string(nil), slice...), target.Vars()...)
		if key, ok := l.sys.ConeCacheKey(support); ok {
			ident = coneIdent{key: key, support: support}
		}
	}
	l.coneIdents.Store(target.ID(), ident)
	return ident
}

// cacheKeyFor returns the cache key under which target's query artifacts
// live: the per-cone key in cone-level mode, the whole-circuit key
// otherwise. Empty when the learner is uncached.
func (l *Learner) cacheKeyFor(target Pred) string {
	if l.cache == nil || !l.opts.ConeLevelCache {
		return l.cacheKey
	}
	return l.coneIdentFor(target).key
}

// Stats exposes the instrumentation collected during Learn.
func (l *Learner) Stats() *Stats { return l.stats }

// FailedPreds returns the IDs in P_fail after learning — predicates proven
// unable to appear in any invariant. Useful for diagnosing backtracking.
func (l *Learner) FailedPreds() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.failed))
	for id := range l.failed {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Learn runs H-Houdini for the given target predicates (the property P,
// possibly a conjunction) and returns the inductive invariant proving all
// of them, or nil if none exists within the predicate language. It is
// LearnCtx under a background (never-cancelled) context.
func (l *Learner) Learn(targets []Pred) (*Invariant, error) {
	return l.LearnCtx(context.Background(), targets)
}

// LearnCtx is Learn under a context: when ctx is cancelled (or its
// deadline passes), every in-flight solver query is interrupted, the
// workers drain, pooled solvers are checked back into the cross-run cache,
// the proof store is flushed — partial progress survives into the next run
// — and LearnCtx returns ctx.Err() promptly. A learner is single-shot:
// once cancelled it cannot be reused.
func (l *Learner) LearnCtx(ctx context.Context, targets []Pred) (*Invariant, error) {
	start := time.Now()
	defer func() { l.stats.addWall(time.Since(start)) }()
	defer l.finishPersist()

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// The property must at least hold initially.
	for _, t := range targets {
		ok, err := l.holdsAtInit(t)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil // property violated in the initial state
		}
	}

	l.mu.Lock()
	for _, t := range targets {
		l.getOrCreateLocked(t)
		l.enqueueLocked(t.ID())
	}
	l.mu.Unlock()

	// The watcher translates a context fire into the learner's stop
	// protocol; the done channel retires it as soon as the workers drain so
	// no goroutine outlives LearnCtx.
	done := make(chan struct{})
	var watcher sync.WaitGroup
	if ctx.Done() != nil {
		watcher.Add(1)
		go func() {
			defer watcher.Done()
			select {
			case <-ctx.Done():
				l.interrupt()
			case <-done:
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < l.opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l.worker(w)
		}(w)
	}
	wg.Wait()
	close(done)
	watcher.Wait()

	l.mu.Lock()
	defer l.mu.Unlock()
	if cerr := ctx.Err(); cerr != nil && (l.err == nil || errors.Is(l.err, errLearnInterrupted)) {
		// A worker may report the internal interrupt marker before the
		// watcher records anything (it polls the stop flag directly), or
		// the run may have finished in the same instant the context fired;
		// either way the caller sees the context's own error.
		return nil, cerr
	}
	if l.err != nil {
		return nil, l.err
	}
	for _, t := range targets {
		if l.failed[t.ID()] {
			return nil, nil // None: no invariant proves the property
		}
	}
	return l.assembleLocked(targets)
}

// interrupt initiates the cancellation protocol: flag the stop bit (polled
// by workers and the escalation ladder), record the interrupt marker so
// cond-waiting workers exit, and interrupt every live solver so in-flight
// CDCL searches abort at their next interrupt check. Solver interruption
// happens outside l.mu — Interrupt is a plain atomic store, but keeping
// foreign calls out of the critical section is this package's lock
// discipline (hhlint lockscope).
func (l *Learner) interrupt() {
	l.stop.Store(true)
	l.mu.Lock()
	if l.err == nil {
		l.err = errLearnInterrupted
	}
	live := make([]*sat.Solver, 0, len(l.solvers))
	for sv := range l.solvers {
		live = append(live, sv)
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	for _, s := range live {
		s.Interrupt()
	}
}

// trackSolver registers a solver entering a worker's ownership (fresh
// construction or cross-run cache checkout) with the cancellation
// registry. Any stale interrupt left over from a previous learner's
// cancellation is cleared first — cached solvers carry their sticky flag
// across Learn instances — and if this learner has already stopped, the
// solver is interrupted immediately to close the register/interrupt race.
func (l *Learner) trackSolver(s *sat.Solver) {
	s.ClearInterrupt()
	base := s.Stats.Conflicts // solver is idle between owners; plain read is safe
	l.mu.Lock()
	l.solvers[s] = base
	l.mu.Unlock()
	if l.stop.Load() {
		s.Interrupt()
	}
}

// untrackSolver removes a solver leaving the worker's ownership (query
// teardown or pool retirement) from the cancellation registry, charging
// the conflicts it burned while owned to Stats.SolverConflicts.
func (l *Learner) untrackSolver(s *sat.Solver) {
	conflicts := s.Stats.Conflicts // idle again: the owning query has returned
	l.mu.Lock()
	base, ok := l.solvers[s]
	delete(l.solvers, s)
	l.mu.Unlock()
	if ok {
		atomic.AddInt64(&l.stats.SolverConflicts, conflicts-base)
	}
}

// finishPersist runs at Learn shutdown: it snapshots the cache's durable
// footprint into Stats and, when a proof store is bound, persists the run's
// deltas. With a journal the deltas were appended as they landed, so this is
// a cheap fsync; the store escalates to a full snapshot rewrite on its own
// when the journal is disabled, degraded, or oversized.
func (l *Learner) finishPersist() {
	if l.cache == nil {
		return
	}
	atomic.StoreInt64(&l.stats.CacheEntries, int64(l.cache.Len()))
	atomic.StoreInt64(&l.stats.CacheBytes, l.cache.Bytes())
	if l.pdb == nil {
		return
	}
	if err := l.pdb.Persist(); err == nil {
		atomic.AddInt64(&l.stats.CacheDiskFlushes, 1)
	}
	st := l.pdb.Stats()
	atomic.StoreInt64(&l.stats.CacheDiskLoads, st.ClausesLoaded+st.VerdictsLoaded+st.AbductsLoaded)
}

func (l *Learner) getOrCreateLocked(p Pred) *entry {
	e, ok := l.entries[p.ID()]
	if !ok {
		e = &entry{pred: p, deps: make(map[string]bool)}
		l.entries[p.ID()] = e
	}
	return e
}

func (l *Learner) enqueueLocked(id string) {
	e := l.entries[id]
	if e == nil || e.queued || e.solved || l.failed[id] {
		return
	}
	e.queued = true
	l.queue = append(l.queue, id)
	l.cond.Broadcast()
}

// holdsAtInit evaluates a predicate on the cached reset snapshot,
// memoizing the verdict by predicate ID.
func (l *Learner) holdsAtInit(p Pred) (bool, error) {
	id := p.ID()
	if v, ok := l.initEval.Load(id); ok {
		return v.(bool), nil
	}
	ok, err := p.Eval(l.sys.Circuit, l.init)
	if err != nil {
		return false, err
	}
	l.initEval.Store(id, ok)
	return ok, nil
}

// worker pulls obligations until the global fixpoint is reached. Each
// worker owns a private solver/encoder pool for the incremental abduction
// backend (solvers are single-threaded; pooling per worker keeps the hot
// path lock-free). w is the worker's index — its producer slot in the
// mid-run clause exchange.
func (l *Learner) worker(w int) {
	pool := newEncoderPool(l.sys, l.stats)
	pool.attachCache(l.cache, l.cacheKey)
	if l.cache != nil && l.opts.ConeLevelCache {
		pool.attachConeIdents(func(p Pred) (string, []string) {
			id := l.coneIdentFor(p)
			return id.key, id.support
		})
	}
	pool.attachExchange(l.exchange, w)
	pool.observeSolvers(l.trackSolver, l.untrackSolver)
	defer pool.retire()
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && l.active > 0 && l.err == nil && !l.stop.Load() {
			l.cond.Wait()
		}
		if (len(l.queue) == 0 && l.active == 0) || l.err != nil || l.stop.Load() {
			l.cond.Broadcast()
			l.mu.Unlock()
			return
		}
		id := l.queue[0]
		l.queue = l.queue[1:]
		e := l.entries[id]
		e.queued = false
		if e.solved || l.failed[id] {
			l.mu.Unlock()
			continue
		}
		l.active++
		pred := e.pred
		l.mu.Unlock()

		err := l.runTask(pred, pool)

		l.mu.Lock()
		l.active--
		if err != nil && l.err == nil {
			l.err = err
		}
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// runTask executes one task body under the worker's recover boundary
// (hhlint:panic-boundary): a panic anywhere inside — oracle code,
// predicate encodings, the solver — becomes a *PanicError carrying the
// stack, which fails this Learn through the ordinary error path while
// sibling workers drain cleanly and the process survives. This is the only
// recover site in the learner; the panicscope lint pass enforces that it
// stays that way.
func (l *Learner) runTask(pred Pred, pool *encoderPool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{PredID: pred.ID(), Value: r, Stack: debug.Stack()}
		}
	}()
	if faultinject.Enabled() && faultinject.Fire(faultinject.WorkerPanic) {
		panic("faultinject: scheduled worker panic")
	}
	return l.solveOne(pred, pool)
}

// solveOne runs one H-Houdini task body: slice, mine, abduct, record.
func (l *Learner) solveOne(pred Pred, pool *encoderPool) error {
	if l.stop.Load() {
		return errLearnInterrupted
	}
	taskStart := time.Now()
	l.mu.Lock()
	chainIn := l.entries[pred.ID()].chainIn
	l.mu.Unlock()
	defer func() {
		d := time.Since(taskStart)
		l.stats.recordTask(d, chainIn+d)
	}()
	atomic.AddInt64(&l.stats.Tasks, 1)

	slice, err := l.slice.Slice(pred)
	if err != nil {
		return err
	}
	cands, err := l.mine.Mine(pred, slice)
	if err != nil {
		return err
	}
	l.mu.Lock()
	live := make([]Pred, 0, len(cands))
	for _, c := range cands {
		if !l.failed[c.ID()] {
			live = append(live, c)
		}
	}
	l.mu.Unlock()

	res, err := l.runAbduct(pred, live, pool)
	if err != nil {
		return err
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	id := pred.ID()
	e := l.entries[id]
	if !res.ok {
		l.failLocked(id)
		return nil
	}
	// A member may have failed while we were solving; retry if so
	// (the soln ∩ P_fail check of Algorithm 1, line 3).
	for _, m := range res.preds {
		if l.failed[m.ID()] {
			atomic.AddInt64(&l.stats.Backtracks, 1)
			l.enqueueLocked(id)
			return nil
		}
	}
	e.solved = true
	e.abduct = res.preds
	chainOut := e.chainIn + time.Since(taskStart)
	for _, m := range res.preds {
		c := l.getOrCreateLocked(m)
		c.deps[id] = true
		if chainOut > c.chainIn {
			c.chainIn = chainOut
		}
		if !c.solved {
			l.enqueueLocked(m.ID())
		}
	}
	return nil
}

// runAbduct dispatches to the single-shot or staged abduction strategy.
// Candidates violated by the initial state are dropped first: s0 is always
// a positive example (Definition 4.8), so such predicates can never appear
// in an invariant — this keeps the learner sound even against mining
// oracles that do not fully honor Contract 2. The init-state verdicts are
// memoized per predicate ID (holdsAtInit), and the filter builds a fresh
// slice: the caller retains ownership of cands (mining oracles may hand
// out shared or cached slices, so filtering in place would corrupt them).
func (l *Learner) runAbduct(pred Pred, cands []Pred, pool *encoderPool) (abductResult, error) {
	kept := make([]Pred, 0, len(cands))
	for _, c := range cands {
		ok, err := l.holdsAtInit(c)
		if err != nil {
			return abductResult{}, err
		}
		if ok {
			kept = append(kept, c)
		}
	}
	cands = kept
	if !l.opts.StagedMining {
		return l.abduct(pred, cands, pool)
	}
	maxTier := 0
	for _, c := range cands {
		if t := tierOf(c); t > maxTier {
			maxTier = t
		}
	}
	for tier := 0; tier <= maxTier; tier++ {
		subset := make([]Pred, 0, len(cands))
		for _, c := range cands {
			if tierOf(c) <= tier {
				subset = append(subset, c)
			}
		}
		res, err := l.abduct(pred, subset, pool)
		if err != nil {
			return abductResult{}, err
		}
		if res.ok {
			return res, nil
		}
	}
	return abductResult{ok: false}, nil
}

// failLocked marks a predicate unusable and partially backtracks: every
// memoized solution referencing it is invalidated and re-enqueued (§3.2.1
// — only the failure path is squashed; all other solutions are reused).
func (l *Learner) failLocked(id string) {
	if l.failed[id] {
		return
	}
	l.failed[id] = true
	e := l.entries[id]
	if e == nil {
		return
	}
	for depID := range e.deps {
		d := l.entries[depID]
		if d == nil || !d.solved {
			continue
		}
		uses := false
		for _, m := range d.abduct {
			if m.ID() == id {
				uses = true
				break
			}
		}
		if uses {
			d.solved = false
			d.abduct = nil
			atomic.AddInt64(&l.stats.Backtracks, 1)
			l.enqueueLocked(depID)
		}
	}
}

// assembleLocked composes the hierarchy of abducts into the monolithic
// invariant (the correct-by-construction composition of §3.1): the closure
// of the targets under abduct membership.
func (l *Learner) assembleLocked(targets []Pred) (*Invariant, error) {
	seen := make(map[string]bool)
	var preds []Pred
	var stack []Pred
	for _, t := range targets {
		if !seen[t.ID()] {
			seen[t.ID()] = true
			stack = append(stack, t)
		}
	}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		preds = append(preds, p)
		e := l.entries[p.ID()]
		if e == nil || !e.solved {
			return nil, fmt.Errorf("hhoudini: internal: %s in closure but unsolved", p)
		}
		for _, m := range e.abduct {
			if !seen[m.ID()] {
				seen[m.ID()] = true
				stack = append(stack, m)
			}
		}
	}
	sort.Slice(preds, func(i, j int) bool { return preds[i].ID() < preds[j].ID() })
	return &Invariant{Preds: preds, Targets: targets}, nil
}
