package hhoudini

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"hhoudini/internal/faultinject"
)

// multisession_test.go: the service-layer concurrency contract at the
// learner level — many simultaneous LearnCtx sessions multiplexed over ONE
// shared VerifyCache and ONE proofdb directory, with mid-flight
// cancellations mixed in. Runs under `make race-proofdb` (the
// 'TestConcurrent' tier regex) so every assertion here is race-checked.

// sessionOptions: shared-cache options with persistence bound to dir.
func sessionOptions(c *VerifyCache, dir string) Options {
	o := warmOptions(c)
	o.CacheDir = dir
	o.Workers = 2
	return o
}

// TestConcurrentMultiSessionSharedCacheAndStore runs 6 concurrent LearnCtx
// sessions (2 of them cancelled mid-flight by tight deadlines) over one
// cache + store, then asserts: completed sessions found auditing
// invariants, cancelled ones returned typed errors, nothing leaked, and
// the store reloads consistent — a fresh "process" warm-starts from it.
func TestConcurrentMultiSessionSharedCacheAndStore(t *testing.T) {
	before := runtime.NumGoroutine()
	dir := t.TempDir()
	cache := NewVerifyCache()

	// Stretch the first queries so the tight-deadline sessions are
	// genuinely cancelled mid-learn, not before their first task.
	faultinject.Arm(faultinject.QueryDelay, faultinject.Spec{Count: 40, Delay: 5 * time.Millisecond})

	const sessions = 6
	type outcome struct {
		inv *Invariant
		err error
	}
	results := make([]outcome, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sys, universe, target := backtrackSystem(t)
			l := NewLearner(sys, minerOf(universe...), sessionOptions(cache, dir))
			ctx := context.Background()
			if i >= sessions-2 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, 20*time.Millisecond)
				defer cancel()
			}
			inv, err := l.LearnCtx(ctx, []Pred{target})
			results[i] = outcome{inv: inv, err: err}
		}(i)
	}
	wg.Wait()
	faultinject.Reset()

	var completed int
	for i, r := range results {
		switch {
		case r.err == nil:
			if r.inv == nil {
				t.Fatalf("session %d: no error but no invariant", i)
			}
			sys, _, _ := backtrackSystem(t)
			if err := Audit(sys, r.inv); err != nil {
				t.Fatalf("session %d: invariant fails audit: %v", i, err)
			}
			completed++
		case errors.Is(r.err, context.DeadlineExceeded) || errors.Is(r.err, context.Canceled):
			// Typed cancellation — the contract for the deadline sessions.
		default:
			t.Fatalf("session %d: unexpected error %v", i, r.err)
		}
	}
	if completed == 0 {
		t.Fatal("every session cancelled; the test exercised nothing")
	}

	// All sessions share one store binding; flush and close it.
	if err := CloseProofDBs(); err != nil {
		t.Fatalf("close after concurrent sessions: %v", err)
	}

	// Fresh process image: new cache, same dir. The store must load clean
	// and warm-start a completing run.
	sys, universe, target := backtrackSystem(t)
	l := NewLearner(sys, minerOf(universe...), sessionOptions(NewVerifyCache(), dir))
	inv, err := l.Learn([]Pred{target})
	if err != nil || inv == nil {
		t.Fatalf("post-reload Learn: inv=%v err=%v", inv, err)
	}
	if l.pdb == nil {
		t.Fatal("reloaded learner did not bind the proof store")
	}
	if err := Audit(sys, inv); err != nil {
		t.Fatalf("post-reload invariant fails audit: %v", err)
	}
	if err := CloseProofDBs(); err != nil {
		t.Fatalf("final close: %v", err)
	}
	checkNoGoroutineLeak(t, before)
}

// TestConcurrentMultiSessionNamespaces is the tenant-isolation argument at
// the cache layer: concurrent sessions in namespace "a" populate the shared
// cache; afterwards a warm "a" session answers from the memo while a first
// "b" session over the byte-identical circuit gets nothing — the namespace
// prefix partitions every key.
func TestConcurrentMultiSessionNamespaces(t *testing.T) {
	cache := NewVerifyCache()
	run := func(ns string) *Learner {
		t.Helper()
		sys, universe, target := backtrackSystem(t)
		sys.Namespace = ns
		l := NewLearner(sys, minerOf(universe...), warmOptions(cache))
		inv, err := l.Learn([]Pred{target})
		if err != nil || inv == nil {
			t.Fatalf("ns %q: inv=%v err=%v", ns, inv, err)
		}
		return l
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run("a")
		}()
	}
	wg.Wait()

	warm := run("a")
	if hits := warm.Stats().CacheVerdictHits; hits == 0 {
		t.Fatal("same-namespace repeat must hit the verdict memo")
	}
	cold := run("b")
	if hits := cold.Stats().CacheVerdictHits; hits != 0 {
		t.Fatalf("namespace b answered %d queries from namespace a's memo — isolation leaked", hits)
	}
}
