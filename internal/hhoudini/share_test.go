package hhoudini

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"hhoudini/internal/circuit"
	"hhoudini/internal/faultinject"
)

// share_test.go: correctness of mid-run clause exchange. Sharing must be
// invisible in verdicts (imported clauses are learnt — logically implied —
// so any difference is a soundness bug), robust to tiny rings that force
// overwrite laps, and cancellation-clean while drains are in flight.

// shareOptions returns a multi-worker configuration with the exchange on
// and a deliberately tiny ring so producers lap consumers.
func shareOptions(on bool) Options {
	return Options{
		Workers:           4,
		MinimizeCores:     true,
		IncrementalSolver: true,
		ShareClauses:      on,
		ShareRingSize:     4,
	}
}

// TestQuickShareClausesAgreesOnRandomSystems cross-checks sharing-on
// against sharing-off on the random corpus: same verdict, and every found
// invariant passes the semantic audit.
func TestQuickShareClausesAgreesOnRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	for iter := 0; iter < 25; iter++ {
		sys, universe := randomSystem(t, rng)
		target := universe[rng.Intn(len(universe))].(regEq)
		init := circuit.InitSnapshot(sys.Circuit)
		if ok, _ := target.Eval(sys.Circuit, init); !ok {
			continue
		}
		var verdicts []bool
		for _, on := range []bool{false, true} {
			l := NewLearner(sys, minerOf(universe...), shareOptions(on))
			inv, err := l.Learn([]Pred{target})
			if err != nil {
				t.Fatal(err)
			}
			verdicts = append(verdicts, inv != nil)
			if inv != nil {
				if err := Audit(sys, inv); err != nil {
					t.Fatalf("iter %d share=%v: %v", iter, on, err)
				}
			}
			st := l.Stats()
			if st.ShareExported < 0 || st.ShareImported < 0 {
				t.Fatalf("iter %d share=%v: negative share counters %+v", iter, on, st)
			}
			if !on && (st.ShareExported != 0 || st.ShareImported != 0) {
				t.Fatalf("iter %d: sharing off but counters moved: %+v", iter, st)
			}
		}
		if verdicts[0] != verdicts[1] {
			t.Fatalf("iter %d: sharing changed the verdict (off=%v on=%v)", iter, verdicts[0], verdicts[1])
		}
	}
}

// TestShareClausesSingleWorkerNoExchange: sharing requested at Workers=1
// must not build rings or move counters (there is no sibling to share
// with) and must still solve.
func TestShareClausesSingleWorkerNoExchange(t *testing.T) {
	sys, universe, target := backtrackSystem(t)
	o := shareOptions(true)
	o.Workers = 1
	l := NewLearner(sys, minerOf(universe...), o)
	inv, err := l.Learn([]Pred{target})
	if err != nil {
		t.Fatal(err)
	}
	if inv == nil {
		t.Fatal("backtrack system must have an invariant")
	}
	if st := l.Stats(); st.ShareExported != 0 || st.ShareImported != 0 {
		t.Fatalf("single worker moved share counters: %+v", st)
	}
}

// TestCancelMidDrainSharing sweeps cancellation points across multi-worker
// runs with the exchange on and injected latency widening the windows: a
// cancel that lands while a worker is draining sibling rings must surface
// as exactly ctx.Err() (context.Canceled), never a partial result and
// never a hang, and all goroutines must drain.
func TestCancelMidDrainSharing(t *testing.T) {
	before := runtime.NumGoroutine()
	sys, universe, target := backtrackSystem(t)

	faultinject.Arm(faultinject.QueryDelay, faultinject.Spec{Count: -1, Delay: time.Millisecond})
	defer faultinject.Reset()

	const iters = 20
	var cancelled, completed int
	for i := 0; i < iters; i++ {
		l := NewLearner(sys, minerOf(universe...), shareOptions(true))
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(time.Duration(i%8)*time.Millisecond/2, cancel)
		inv, err := l.LearnCtx(ctx, []Pred{target})
		timer.Stop()
		cancel()
		switch {
		case err == nil:
			completed++
			if inv == nil {
				t.Fatalf("iter %d: uncancelled run found no invariant", i)
			}
		case err == context.Canceled:
			// Exactly ctx.Err(): the sentinel itself, not a wrapped variant.
			cancelled++
		default:
			t.Fatalf("iter %d: err = %v, want nil or context.Canceled", i, err)
		}
	}
	t.Logf("iterations: %d cancelled, %d completed", cancelled, completed)
	checkNoGoroutineLeak(t, before)
}
