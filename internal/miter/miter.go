// Package miter builds product (miter) circuits for relational 2-safety
// verification.
//
// A miter contains two renamed copies of a base circuit — the "left" and
// "right" executions of Definition 4.5 — driven by the same primary inputs
// (both traces execute the same instruction sequence; only internal state,
// e.g. register-file secrets, may differ). Relational predicates such as
// Eq(v) relate the l:: and r:: copies of a base register.
package miter

import (
	"fmt"
	"strings"

	"hhoudini/internal/circuit"
)

// Prefixes for the two execution copies inside the product circuit.
const (
	LeftPrefix  = "l::"
	RightPrefix = "r::"
)

// Left returns the product-circuit name of the left copy of a base signal.
func Left(name string) string { return LeftPrefix + name }

// Right returns the product-circuit name of the right copy of a base signal.
func Right(name string) string { return RightPrefix + name }

// BaseName strips the copy prefix from a product-circuit name.
// The second result reports whether the name carried a prefix.
func BaseName(name string) (string, bool) {
	if strings.HasPrefix(name, LeftPrefix) {
		return name[len(LeftPrefix):], true
	}
	if strings.HasPrefix(name, RightPrefix) {
		return name[len(RightPrefix):], true
	}
	return name, false
}

// Product is a built miter.
type Product struct {
	// Circuit is the product circuit containing l:: and r:: copies of every
	// register and wire of the base circuit, sharing the base's inputs.
	Circuit *circuit.Circuit
	// Base is the original circuit.
	Base *circuit.Circuit
}

// Build constructs the product of a circuit with itself.
func Build(base *circuit.Circuit) (*Product, error) {
	b := circuit.NewBuilder()
	shared := make(map[string]circuit.Word, len(base.Inputs()))
	for _, in := range base.Inputs() {
		shared[in.Name] = b.Input(in.Name, in.Width)
	}
	if err := circuit.DuplicateInto(b, base, LeftPrefix, shared); err != nil {
		return nil, err
	}
	if err := circuit.DuplicateInto(b, base, RightPrefix, shared); err != nil {
		return nil, err
	}
	c, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Product{Circuit: c, Base: base}, nil
}

// RegPair returns the product-circuit register indices of the left and
// right copies of a base register.
func (p *Product) RegPair(base string) (left, right int, err error) {
	left = p.Circuit.RegIndex(Left(base))
	right = p.Circuit.RegIndex(Right(base))
	if left < 0 || right < 0 {
		return 0, 0, fmt.Errorf("miter: base register %q not present in product", base)
	}
	return left, right, nil
}

// BaseRegs returns the names of the base circuit's registers (the variable
// universe V over which relational predicates range).
func (p *Product) BaseRegs() []string {
	regs := p.Base.Regs()
	out := make([]string, len(regs))
	for i, r := range regs {
		out[i] = r.Name
	}
	return out
}

// PairedSnapshot assembles a product snapshot from separate left and right
// base-circuit snapshots.
func (p *Product) PairedSnapshot(l, r circuit.Snapshot) (circuit.Snapshot, error) {
	baseRegs := p.Base.Regs()
	if len(l) != len(baseRegs) || len(r) != len(baseRegs) {
		return nil, fmt.Errorf("miter: snapshot sizes %d/%d, want %d", len(l), len(r), len(baseRegs))
	}
	out := make(circuit.Snapshot, len(p.Circuit.Regs()))
	for i, br := range baseRegs {
		li, ri, err := p.RegPair(br.Name)
		if err != nil {
			return nil, err
		}
		out[li] = l[i]
		out[ri] = r[i]
	}
	return out, nil
}

// SplitSnapshot decomposes a product snapshot into left and right base
// snapshots.
func (p *Product) SplitSnapshot(s circuit.Snapshot) (l, r circuit.Snapshot, err error) {
	if len(s) != len(p.Circuit.Regs()) {
		return nil, nil, fmt.Errorf("miter: snapshot size %d, want %d", len(s), len(p.Circuit.Regs()))
	}
	baseRegs := p.Base.Regs()
	l = make(circuit.Snapshot, len(baseRegs))
	r = make(circuit.Snapshot, len(baseRegs))
	for i, br := range baseRegs {
		li, ri, err := p.RegPair(br.Name)
		if err != nil {
			return nil, nil, err
		}
		l[i] = s[li]
		r[i] = s[ri]
	}
	return l, r, nil
}
