package miter

import (
	"math/rand"
	"testing"

	"hhoudini/internal/circuit"
)

func buildBase(t *testing.T) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder()
	in := b.Input("in", 8)
	x := b.Register("x", 8, 1)
	y := b.Register("y", 8, 0)
	b.SetNext("x", b.Add(x, in))
	b.SetNext("y", b.XorW(y, x))
	b.Name("sum", b.Add(x, y))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildProduct(t *testing.T) {
	base := buildBase(t)
	p, err := Build(base)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.Circuit.NumStateBits(), 2*base.NumStateBits(); got != want {
		t.Fatalf("product state bits = %d, want %d", got, want)
	}
	if got, want := p.Circuit.NumInputBits(), base.NumInputBits(); got != want {
		t.Fatalf("product input bits = %d, want %d (shared)", got, want)
	}
	for _, n := range []string{"l::x", "r::x", "l::y", "r::y"} {
		if _, ok := p.Circuit.Reg(n); !ok {
			t.Fatalf("missing product register %q", n)
		}
	}
	for _, n := range []string{"l::sum", "r::sum"} {
		if _, ok := p.Circuit.Wire(n); !ok {
			t.Fatalf("missing product wire %q", n)
		}
	}
}

// TestProductCopiesRunIndependently: the two copies stepped together with
// shared inputs must match two separate base simulations.
func TestProductCopiesRunIndependently(t *testing.T) {
	base := buildBase(t)
	p, err := Build(base)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))

	lSnap := circuit.Snapshot{rng.Uint64() & 255, rng.Uint64() & 255}
	rSnap := circuit.Snapshot{rng.Uint64() & 255, rng.Uint64() & 255}

	simL := circuit.NewSim(base)
	simR := circuit.NewSim(base)
	simL.LoadSnapshot(lSnap)
	simR.LoadSnapshot(rSnap)

	simP := circuit.NewSim(p.Circuit)
	paired, err := p.PairedSnapshot(lSnap, rSnap)
	if err != nil {
		t.Fatal(err)
	}
	simP.LoadSnapshot(paired)

	for cycle := 0; cycle < 30; cycle++ {
		iv := rng.Uint64() & 255
		in := circuit.Inputs{"in": iv}
		simL.Step(in)
		simR.Step(in)
		simP.Step(in)

		gotL, gotR, err := p.SplitSnapshot(simP.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if !gotL.Equal(simL.Snapshot()) {
			t.Fatalf("cycle %d: left copy diverged: %v vs %v", cycle, gotL, simL.Snapshot())
		}
		if !gotR.Equal(simR.Snapshot()) {
			t.Fatalf("cycle %d: right copy diverged: %v vs %v", cycle, gotR, simR.Snapshot())
		}
	}
}

func TestNameHelpers(t *testing.T) {
	if Left("x") != "l::x" || Right("x") != "r::x" {
		t.Fatal("prefix helpers wrong")
	}
	if n, ok := BaseName("l::x"); n != "x" || !ok {
		t.Fatal("BaseName(l::x)")
	}
	if n, ok := BaseName("r::abc"); n != "abc" || !ok {
		t.Fatal("BaseName(r::abc)")
	}
	if n, ok := BaseName("plain"); n != "plain" || ok {
		t.Fatal("BaseName(plain)")
	}
}

func TestRegPairAndErrors(t *testing.T) {
	base := buildBase(t)
	p, err := Build(base)
	if err != nil {
		t.Fatal(err)
	}
	l, r, err := p.RegPair("x")
	if err != nil {
		t.Fatal(err)
	}
	if l == r {
		t.Fatal("pair indices must differ")
	}
	if _, _, err := p.RegPair("ghost"); err == nil {
		t.Fatal("expected error for unknown base register")
	}
	if _, err := p.PairedSnapshot(circuit.Snapshot{1}, circuit.Snapshot{1, 2}); err == nil {
		t.Fatal("expected size error")
	}
	if _, _, err := p.SplitSnapshot(circuit.Snapshot{1}); err == nil {
		t.Fatal("expected size error")
	}
	regs := p.BaseRegs()
	if len(regs) != 2 || regs[0] != "x" || regs[1] != "y" {
		t.Fatalf("BaseRegs = %v", regs)
	}
}

// TestSharedInputsAreShared: a predicate true in the left copy whenever the
// input is mirrored must hold because inputs are literally the same nodes.
func TestSharedInputsAreShared(t *testing.T) {
	b := circuit.NewBuilder()
	in := b.Input("i", 4)
	r := b.Register("r", 4, 0)
	b.SetNext("r", in)
	_ = r
	base, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(base)
	if err != nil {
		t.Fatal(err)
	}
	sim := circuit.NewSim(p.Circuit)
	for i := 0; i < 10; i++ {
		sim.Step(circuit.Inputs{"i": uint64(i * 3)})
		l, _ := sim.PeekReg("l::r")
		rr, _ := sim.PeekReg("r::r")
		if l != rr {
			t.Fatalf("shared input produced different register values %d vs %d", l, rr)
		}
	}
}
