// Package crashsim is the hard-kill half of the robustness harness. Where
// internal/faultinject returns injected *errors* from named points (the
// code under test sees the failure and must degrade), crashsim terminates
// the whole process with SIGKILL at a named point — the code under test
// sees nothing at all, which is exactly the contract a write-ahead journal
// has to survive: no deferred functions, no flushes, no atexit hooks, the
// same observable effect as `kill -9` or a power cut mid-instruction.
//
// Arming is environment-driven so a torture harness can re-exec its own
// test binary as a child, point HHCRASH_POINT at one compiled-in site, and
// assert recovery invariants on whatever the dead child left on disk:
//
//	HHCRASH_POINT=journal.append.torn HHCRASH_HIT=5 ./pkg.test -run TestCrashChild
//
// kills the child the fifth time execution reaches that point. A process
// with HHCRASH_POINT unset pays one string comparison per visited point
// (Enabled() is a read of an init-time immutable), so the hooks are safe
// to leave compiled into production paths, mirroring faultinject.
package crashsim

import (
	"os"
	"strconv"
	"sync/atomic"
	"syscall"
)

// Environment variables the harness sets on the child process.
const (
	// EnvPoint names the single armed crash point; empty disarms the
	// whole package.
	EnvPoint = "HHCRASH_POINT"
	// EnvHit is the 1-based visit number that crashes (default 1): the
	// Nth time execution reaches the armed point, the process dies.
	EnvHit = "HHCRASH_HIT"
)

var (
	armedPoint = os.Getenv(EnvPoint)
	armedHit   = envHit()
	visits     atomic.Int64
)

func envHit() int64 {
	n, err := strconv.Atoi(os.Getenv(EnvHit))
	if err != nil || n < 1 {
		return 1
	}
	return int64(n)
}

// Enabled reports whether any crash point is armed. Hot paths check it
// first; it is an immutable read, false for the whole life of any process
// the torture harness did not spawn.
func Enabled() bool { return armedPoint != "" }

// WouldCrash consumes one visit to point and reports whether this visit is
// the armed one. Callers that need to do something *between* the decision
// and death (write half a record, for instance) use this plus Crash;
// everyone else uses Maybe.
func WouldCrash(point string) bool {
	if armedPoint != point {
		return false
	}
	return visits.Add(1) == armedHit
}

// Crash terminates the process with SIGKILL. Nothing downstream runs: no
// deferred functions, no finalizers, no buffered-writer flushes — the
// on-disk state is frozen exactly as the last completed syscall left it.
func Crash() {
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	// SIGKILL cannot be caught; block until the kernel reaps us rather
	// than returning into code that believes it survived.
	//hhlint:ignore ctxflow the process is already dead (SIGKILL sent above); this select never actually blocks a live caller
	select {}
}

// Maybe crashes the process if this visit to point is the armed one.
func Maybe(point string) {
	if WouldCrash(point) {
		Crash()
	}
}
