package veloct

import (
	"bytes"
	"strings"
	"testing"

	"hhoudini/internal/btor2"
	"hhoudini/internal/design"
	"hhoudini/internal/hhoudini"
	"hhoudini/internal/mc"
)

func TestCertificateRoundTrip(t *testing.T) {
	a := execAnalysis(t, DefaultOptions())
	res, err := a.Verify([]string{"add"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Invariant == nil {
		t.Fatal(res.Reason)
	}

	// The independent k-induction engine must re-establish the claim.
	if err := a.CheckCertificate(res); err != nil {
		t.Fatal(err)
	}

	// The exported btor2 must re-parse and still be provable.
	var buf bytes.Buffer
	if err := a.ExportCertificate(&buf, res); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "constraint") || !strings.Contains(text, "bad") {
		t.Fatal("certificate lacks constraint/bad lines")
	}
	d, err := btor2.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Bads) != 1 || len(d.Constraints) != 1 {
		t.Fatalf("bads=%v constraints=%v", d.Bads, d.Constraints)
	}
	proved, cex, err := mc.KInductionUnder(d.Circuit, d.Bads[0], 1, d.Constraints)
	if err != nil {
		t.Fatal(err)
	}
	if cex != nil || !proved {
		t.Fatalf("re-parsed certificate not provable: proved=%v cex=%v", proved, cex)
	}
}

func TestCertificateInOrder(t *testing.T) {
	a := inOrderAnalysis(t, DefaultOptions())
	res, err := a.Verify(inOrderSafeSet)
	if err != nil {
		t.Fatal(err)
	}
	if res.Invariant == nil {
		t.Fatal(res.Reason)
	}
	if err := a.CheckCertificate(res); err != nil {
		t.Fatal(err)
	}
}

func TestCertificateOoO(t *testing.T) {
	a := oooAnalysis(t, design.SmallOoO, DefaultOptions())
	res, err := a.Verify(oooSafeSet)
	if err != nil {
		t.Fatal(err)
	}
	if res.Invariant == nil {
		t.Fatal(res.Reason)
	}
	if err := a.CheckCertificate(res); err != nil {
		t.Fatal(err)
	}
}

func TestCertificateRejectsBogusInvariant(t *testing.T) {
	a := execAnalysis(t, DefaultOptions())
	res, err := a.Verify([]string{"add"})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the invariant: claim valid_mul is always 1 (false at reset
	// and not inductive).
	bogus := *res
	inv := *res.Invariant
	inv.Preds = append(append([]hhoudini.Pred{}, inv.Preds...), EqConstPred{Reg: "valid_mul", Val: 1})
	bogus.Invariant = &inv
	if err := a.CheckCertificate(&bogus); err == nil {
		t.Fatal("corrupted certificate must be rejected")
	}
	if _, err := a.Certificate(&Result{}); err == nil {
		t.Fatal("certificate without invariant must error")
	}
}
