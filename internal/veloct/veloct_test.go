package veloct

import (
	"testing"

	"hhoudini/internal/design"
)

func execAnalysis(t *testing.T, opts Options) *Analysis {
	t.Helper()
	tgt, err := design.NewExecStage(design.ExecStageConfig{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestExecStageVerifyAdd(t *testing.T) {
	a := execAnalysis(t, DefaultOptions())
	res, err := a.Verify([]string{"add"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Invariant == nil {
		t.Fatalf("expected invariant for {add}; reason: %s", res.Reason)
	}
	t.Logf("invariant size %d, tasks %d, queries %d, backtracks %d",
		res.Invariant.Size(), res.Stats.Tasks, res.Stats.Queries, res.Stats.Backtracks)
	if !res.Invariant.Contains("Eq(valid)") {
		t.Fatal("invariant must contain the property Eq(valid)")
	}
	if err := a.Audit(res); err != nil {
		t.Fatalf("monolithic audit failed: %v", err)
	}
}

func TestExecStageMulUnsafe(t *testing.T) {
	a := execAnalysis(t, DefaultOptions())
	res, err := a.Verify([]string{"add", "mul"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Invariant != nil {
		t.Fatal("zero-skip mul must not verify")
	}
	if res.Reason == "" {
		t.Fatal("expected a reason")
	}
	bad, err := a.SimUnsafe("mul", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bad {
		t.Fatal("SimUnsafe should witness the mul timing leak")
	}
}

func TestExecStageSynthesize(t *testing.T) {
	a := execAnalysis(t, DefaultOptions())
	syn, err := a.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if len(syn.Safe) != 1 || syn.Safe[0] != "add" {
		t.Fatalf("safe = %v, want [add]", syn.Safe)
	}
	if len(syn.Unsafe) != 1 || syn.Unsafe[0] != "mul" {
		t.Fatalf("unsafe = %v, want [mul]", syn.Unsafe)
	}
	if syn.Result == nil || syn.Result.Invariant == nil {
		t.Fatal("synthesis must carry the proving invariant")
	}
}

func inOrderAnalysis(t *testing.T, opts Options) *Analysis {
	t.Helper()
	tgt, err := design.NewInOrder()
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// inOrderSafeSet is the expected Table 2 row for the rocket-class core:
// all single-cycle integer ops including lui and auipc; mul-family is
// unsafe (zero-skip), div/mem/control-flow unsafe.
var inOrderSafeSet = []string{
	"add", "addi", "sub", "xor", "xori", "and", "andi", "or", "ori",
	"sll", "slli", "srl", "srli", "sra", "srai",
	"lui", "auipc", "slt", "slti", "sltu", "sltiu",
}

func TestInOrderVerifySafeSet(t *testing.T) {
	a := inOrderAnalysis(t, DefaultOptions())
	res, err := a.Verify(inOrderSafeSet)
	if err != nil {
		t.Fatal(err)
	}
	if res.Invariant == nil {
		t.Fatalf("expected invariant; reason: %s", res.Reason)
	}
	t.Logf("InOrder invariant size %d, tasks %d, queries %d, backtracks %d, median query %v",
		res.Invariant.Size(), res.Stats.Tasks, res.Stats.Queries,
		res.Stats.Backtracks, res.Stats.MedianQueryTime())
	if err := a.Audit(res); err != nil {
		t.Fatalf("monolithic audit failed: %v", err)
	}
}

func TestInOrderMulUnsafe(t *testing.T) {
	a := inOrderAnalysis(t, DefaultOptions())
	for _, mn := range []string{"mul", "mulh", "div", "remu"} {
		bad, err := a.SimUnsafe(mn, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !bad {
			t.Errorf("%s should be witnessed unsafe on the in-order core", mn)
		}
	}
	for _, mn := range []string{"add", "auipc", "lui", "srai"} {
		bad, err := a.SimUnsafe(mn, 4)
		if err != nil {
			t.Fatal(err)
		}
		if bad {
			t.Errorf("%s should not be witnessed unsafe on the in-order core", mn)
		}
	}
}

// oooSafeSet is the expected Table 2 row for the boom-class core: the
// integer ops plus the mul family (pipelined, constant latency); auipc is
// NOT verifiable (the rs1-quirk), matching the paper.
var oooSafeSet = []string{
	"add", "addi", "sub", "xor", "xori", "and", "andi", "or", "ori",
	"sll", "slli", "srl", "srli", "sra", "srai",
	"lui", "slt", "slti", "sltu", "sltiu",
	"mul", "mulh", "mulhu", "mulhsu",
}

func oooAnalysis(t *testing.T, v design.OoOVariant, opts Options) *Analysis {
	t.Helper()
	tgt, err := design.NewOoO(v)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestOoOSmallVerifySafeSet(t *testing.T) {
	a := oooAnalysis(t, design.SmallOoO, DefaultOptions())
	res, err := a.Verify(oooSafeSet)
	if err != nil {
		t.Fatal(err)
	}
	if res.Invariant == nil {
		t.Fatalf("expected invariant; reason: %s", res.Reason)
	}
	t.Logf("SmallOoO invariant size %d, tasks %d, queries %d, backtracks %d, median query %v, wall %v",
		res.Invariant.Size(), res.Stats.Tasks, res.Stats.Queries,
		res.Stats.Backtracks, res.Stats.MedianQueryTime(), res.Stats.WallTime)
	if err := a.Audit(res); err != nil {
		t.Fatalf("monolithic audit failed: %v", err)
	}
}

func TestOoOAuipcUnsafe(t *testing.T) {
	a := oooAnalysis(t, design.SmallOoO, DefaultOptions())
	bad, err := a.SimUnsafe("auipc", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bad {
		t.Fatal("auipc should be witnessed unsafe on the OoO core")
	}
	good, err := a.SimUnsafe("mul", 4)
	if err != nil {
		t.Fatal(err)
	}
	if good {
		t.Fatal("mul should be constant-time on the OoO core")
	}
}

func TestOoOAllVariantsVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, v := range design.OoOVariants() {
		a := oooAnalysis(t, v, DefaultOptions())
		res, err := a.Verify(oooSafeSet)
		if err != nil {
			t.Fatal(err)
		}
		if res.Invariant == nil {
			t.Fatalf("%s: expected invariant; reason: %s; failed: %v", v.Name, res.Reason, res.Failed)
		}
		t.Logf("%s: bits=%d inv=%d tasks=%d backtracks=%d wall=%v",
			v.Name, a.Target.Circuit.NumStateBits(), res.Invariant.Size(),
			res.Stats.Tasks, res.Stats.Backtracks, res.Stats.WallTime)
		if err := a.Audit(res); err != nil {
			t.Fatalf("%s: audit: %v", v.Name, err)
		}
	}
}

// TestOoOMaskingAblation: with example masking disabled, the dirty
// preamble's stale unsafe uops invalidate the InSafeUop annotations and
// the proof must fail (§5.2.1's motivation).
func TestOoOMaskingAblation(t *testing.T) {
	opts := DefaultOptions()
	opts.Examples.DisableMasking = true
	a := oooAnalysis(t, design.SmallOoO, opts)
	res, err := a.Verify(oooSafeSet)
	if err != nil {
		t.Fatal(err)
	}
	if res.Invariant != nil {
		t.Fatal("verification should fail without example masking")
	}
}

// TestOoOAnnotationAblation: without the expert InSafeUop annotations the
// OoO proof must fail (§6.2), while the in-order core needs none.
func TestOoOAnnotationAblation(t *testing.T) {
	opts := DefaultOptions()
	opts.DisableAnnotations = true
	a := oooAnalysis(t, design.SmallOoO, opts)
	res, err := a.Verify(oooSafeSet)
	if err != nil {
		t.Fatal(err)
	}
	if res.Invariant != nil {
		t.Fatal("OoO verification should fail without expert annotations")
	}

	inA := inOrderAnalysis(t, Options{Learner: DefaultOptions().Learner, Examples: DefaultExampleConfig(), DisableAnnotations: true})
	res2, err := inA.Verify(inOrderSafeSet)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Invariant == nil {
		t.Fatal("in-order core must verify with zero annotations")
	}
}

func TestParallelMatchesSequentialOoO(t *testing.T) {
	seq := DefaultOptions()
	par := DefaultOptions()
	par.Learner.Workers = 8
	aSeq := oooAnalysis(t, design.SmallOoO, seq)
	aPar := oooAnalysis(t, design.SmallOoO, par)
	rSeq, err := aSeq.Verify(oooSafeSet)
	if err != nil {
		t.Fatal(err)
	}
	rPar, err := aPar.Verify(oooSafeSet)
	if err != nil {
		t.Fatal(err)
	}
	if (rSeq.Invariant == nil) != (rPar.Invariant == nil) {
		t.Fatal("sequential and parallel learners disagree")
	}
	if err := aPar.Audit(rPar); err != nil {
		t.Fatal(err)
	}
}

// TestInOrderSynthesizeMatchesTable2: the synthesized safe set for the
// rocket-class core must be exactly the paper's Table 2 row shape: all
// single-cycle integer ops including auipc, with the mul/div families
// excluded.
func TestInOrderSynthesizeMatchesTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	a := inOrderAnalysis(t, DefaultOptions())
	syn, err := a.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, mn := range syn.Safe {
		got[mn] = true
	}
	for _, want := range inOrderSafeSet {
		if !got[want] {
			t.Errorf("missing %s from safe set", want)
		}
	}
	if len(syn.Safe) != len(inOrderSafeSet) {
		t.Errorf("safe set size %d, want %d (%v)", len(syn.Safe), len(inOrderSafeSet), syn.Safe)
	}
	for _, mn := range []string{"mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu"} {
		if got[mn] {
			t.Errorf("%s must be unsafe on the in-order core", mn)
		}
	}
	if err := a.Audit(syn.Result); err != nil {
		t.Fatal(err)
	}
}

// TestOoOSynthesizeMatchesTable2: the boom-class row — mul family safe,
// auipc unsafe.
func TestOoOSynthesizeMatchesTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	a := oooAnalysis(t, design.SmallOoO, DefaultOptions())
	syn, err := a.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, mn := range syn.Safe {
		got[mn] = true
	}
	for _, want := range oooSafeSet {
		if !got[want] {
			t.Errorf("missing %s from safe set", want)
		}
	}
	if got["auipc"] {
		t.Error("auipc must be unverifiable on the OoO core")
	}
	for _, mn := range []string{"div", "divu", "rem", "remu"} {
		if got[mn] {
			t.Errorf("%s must be unsafe on the OoO core", mn)
		}
	}
}

// TestOoOStagedMiningAgrees: the incremental-mining variant must reach the
// same verdict.
func TestOoOStagedMiningAgrees(t *testing.T) {
	opts := DefaultOptions()
	opts.Learner.StagedMining = true
	a := oooAnalysis(t, design.SmallOoO, opts)
	res, err := a.Verify(oooSafeSet)
	if err != nil {
		t.Fatal(err)
	}
	if res.Invariant == nil {
		t.Fatalf("staged mining failed: %s", res.Reason)
	}
	if err := a.Audit(res); err != nil {
		t.Fatal(err)
	}
}
