package veloct

import (
	"context"
	"fmt"
	"math/rand"

	"hhoudini/internal/circuit"
	"hhoudini/internal/design"
	"hhoudini/internal/miter"
)

// ExampleConfig controls positive example generation (§5.2).
type ExampleConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// RunsPerInstr is the number of paired executions per safe
	// instruction, each with fresh differing secrets.
	RunsPerInstr int
	// CompositionRuns adds runs that issue a back-to-back burst of random
	// safe instructions (with incidental register dependencies), filling
	// the backend structures. Richer examples invalidate spurious
	// constant predicates early, which is what keeps backtracking low
	// (§3.2.1: "with a robust set of examples, a majority of the
	// backtracking can be eliminated").
	CompositionRuns int
	// CompositionLen is the burst length (default 8).
	CompositionLen int
	// DirtyPreamble executes the target's unsafe start-up code before the
	// instruction under analysis (the situation §5.2.1's masking cleans
	// up). Only meaningful for targets that define one.
	DirtyPreamble bool
	// DisableMasking skips example masking even when the target declares
	// masking annotations — the masking ablation.
	DisableMasking bool
}

// DefaultExampleConfig mirrors the paper's setup.
func DefaultExampleConfig() ExampleConfig {
	return ExampleConfig{
		Seed:            1,
		RunsPerInstr:    3,
		CompositionRuns: 8,
		CompositionLen:  32,
		DirtyPreamble:   true,
	}
}

// ErrUnsafe reports that example generation itself witnessed a property
// violation: the instruction under analysis produced distinguishable
// traces, so the proposed set cannot be safe.
type ErrUnsafe struct {
	Instr string
	Cycle int
}

func (e ErrUnsafe) Error() string {
	return fmt.Sprintf("veloct: instruction %q produced distinguishable traces at cycle %d", e.Instr, e.Cycle)
}

// exampleGen drives paired concrete executions on the product circuit.
type exampleGen struct {
	tgt  *design.Target
	prod *miter.Product
	cfg  ExampleConfig
	rng  *rand.Rand

	obsL, obsR []int // product register indices of observables
	secretsL   []int // product indices of left-copy secrets
	secretsR   []int
	maskRules  []maskRule
}

type maskRule struct {
	valid  int // product register index of the valid bit
	fields []int
	inits  []uint64
}

func newExampleGen(tgt *design.Target, prod *miter.Product, cfg ExampleConfig) (*exampleGen, error) {
	g := &exampleGen{
		tgt:  tgt,
		prod: prod,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	for _, obs := range tgt.Observable {
		l, r, err := prod.RegPair(obs)
		if err != nil {
			return nil, err
		}
		g.obsL = append(g.obsL, l)
		g.obsR = append(g.obsR, r)
	}
	for _, sec := range tgt.SecretRegs {
		l, r, err := prod.RegPair(sec)
		if err != nil {
			return nil, err
		}
		g.secretsL = append(g.secretsL, l)
		g.secretsR = append(g.secretsR, r)
	}
	if !cfg.DisableMasking {
		for _, rule := range tgt.Masks {
			// Masking applies independently per copy.
			for _, side := range []func(string) string{miter.Left, miter.Right} {
				mr := maskRule{valid: prod.Circuit.RegIndex(side(rule.ValidReg))}
				if mr.valid < 0 {
					return nil, fmt.Errorf("veloct: mask rule valid register %q missing", rule.ValidReg)
				}
				for _, f := range rule.Fields {
					idx := prod.Circuit.RegIndex(side(f))
					if idx < 0 {
						return nil, fmt.Errorf("veloct: mask rule field %q missing", f)
					}
					mr.fields = append(mr.fields, idx)
					mr.inits = append(mr.inits, prod.Circuit.Regs()[idx].Init)
				}
				g.maskRules = append(g.maskRules, mr)
			}
		}
	}
	return g, nil
}

// secretPair returns differing left/right secret values.
func (g *exampleGen) secretPair() (uint64, uint64) {
	l := g.rng.Uint64() & 0xffff
	r := g.rng.Uint64() & 0xffff
	if l == r {
		r ^= 1 + g.rng.Uint64()&0xff
	}
	return l, r
}

// freshSim builds a product simulator in an equal-modulo-secret state.
func (g *exampleGen) freshSim() *circuit.Sim {
	sim := circuit.NewSim(g.prod.Circuit)
	snap := sim.Snapshot()
	for i := range g.secretsL {
		l, r := g.secretPair()
		snap[g.secretsL[i]] = l
		snap[g.secretsR[i]] = r
	}
	sim.LoadSnapshot(snap)
	return sim
}

// checkObs verifies the trace-indistinguishability of the observables in
// the current state.
func (g *exampleGen) checkObs(snap circuit.Snapshot) bool {
	for i := range g.obsL {
		if snap[g.obsL[i]] != snap[g.obsR[i]] {
			return false
		}
	}
	return true
}

// mask applies the example-masking annotations (§5.2.1): fields guarded by
// a cleared valid bit are reset to their declared reset values.
func (g *exampleGen) mask(snap circuit.Snapshot) circuit.Snapshot {
	if len(g.maskRules) == 0 {
		return snap
	}
	out := snap.Clone()
	for _, mr := range g.maskRules {
		if out[mr.valid] != 0 {
			continue
		}
		for i, f := range mr.fields {
			out[f] = mr.inits[i]
		}
	}
	return out
}

// step feeds one instruction word and returns the post-edge snapshot.
func (g *exampleGen) step(sim *circuit.Sim, word uint64) (circuit.Snapshot, error) {
	if err := sim.Step(circuit.Inputs{g.tgt.InstrPort: word}); err != nil {
		return nil, err
	}
	return sim.Snapshot(), nil
}

// Generate produces the positive example set for a proposed safe set: the
// initial product state, a pure-NOP run, and RunsPerInstr paired runs per
// safe instruction. Each run optionally executes the dirty preamble, then
// the instruction under analysis, NOP-padded; product states from the
// instruction's in-flight window become (masked) examples. A property
// violation during any run aborts with ErrUnsafe. It is GenerateCtx under
// a background (never-cancelled) context.
func (g *exampleGen) Generate(safe []string) ([]circuit.Snapshot, error) {
	return g.GenerateCtx(context.Background(), safe)
}

// GenerateCtx is Generate under a context: cancellation is observed
// between simulation runs (each run is short — one instruction window plus
// padding — so a fired context aborts generation promptly) and surfaces as
// ctx.Err().
func (g *exampleGen) GenerateCtx(ctx context.Context, safe []string) ([]circuit.Snapshot, error) {
	pad := g.tgt.MaxLatency
	var out []circuit.Snapshot

	// The initial state is always a positive example (it anchors
	// initiation, Definition 4.8 / P-S).
	out = append(out, g.mask(circuit.InitSnapshot(g.prod.Circuit)))

	type runSpec struct {
		mns     []string
		chained bool
	}
	runs := []runSpec{{mns: []string{""}}} // pure-NOP run (ε-composition)
	for _, mn := range safe {
		for k := 0; k < g.cfg.RunsPerInstr; k++ {
			runs = append(runs, runSpec{mns: []string{mn}})
		}
	}
	// Back-to-back compositions of safe instructions (Definition 4.4
	// quantifies over sequences; these runs exercise deep structural
	// occupancy — multiple issue-queue/ROB entries live at once). Half of
	// the bursts are dependency-chained through a single register (when
	// the target supports pinned operands), which serializes completion
	// and fills the issue queue and reorder buffer to their capacity.
	if len(safe) > 0 {
		burstLen := g.cfg.CompositionLen
		if burstLen == 0 {
			burstLen = 8
		}
		for k := 0; k < g.cfg.CompositionRuns; k++ {
			burst := make([]string, burstLen)
			for i := range burst {
				burst[i] = safe[g.rng.Intn(len(safe))]
			}
			runs = append(runs, runSpec{mns: burst, chained: k%2 == 1 && g.tgt.EncodeDep != nil})
		}
	}

	for _, run := range runs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		runName := run.mns[0]
		if runName == "" {
			runName = "<nop>"
		}
		if len(run.mns) > 1 {
			runName = "<burst:" + run.mns[0] + ",...>"
		}
		sim := g.freshSim()
		cycle := 0
		feed := func(word uint64, collect bool) error {
			snap, err := g.step(sim, word)
			if err != nil {
				return err
			}
			cycle++
			if !g.checkObs(snap) {
				return ErrUnsafe{Instr: runName, Cycle: cycle}
			}
			if collect {
				out = append(out, g.mask(snap))
			}
			return nil
		}

		// Start-up: optional dirty preamble, fully padded so it drains.
		if g.cfg.DirtyPreamble && g.tgt.DirtyPreamble != nil {
			for _, w := range g.tgt.DirtyPreamble(g.rng) {
				if err := g.stepPreamble(sim, w, pad); err != nil {
					return nil, err
				}
			}
		}
		// Leading NOPs (quiesce). These states are positive examples too —
		// they witness ε-compositions from an equal-modulo-secret state
		// and enrich E, which is what keeps backtracking low (§3.2.1).
		for i := 0; i < 2; i++ {
			if err := feed(g.tgt.Nop, true); err != nil {
				return nil, err
			}
		}
		// The instruction(s) under analysis (a NOP for the ε run; a
		// back-to-back burst for composition runs), followed by padding;
		// collect the whole in-flight window.
		for _, mn := range run.mns {
			word := g.tgt.Nop
			if mn != "" {
				var w uint64
				var err error
				if run.chained {
					w, err = g.tgt.EncodeDep(mn, 1, 1, 1, g.rng)
				} else {
					w, err = g.tgt.Encode(mn, g.rng)
				}
				if err != nil {
					return nil, err
				}
				word = w
			}
			if err := feed(word, true); err != nil {
				return nil, err
			}
		}
		for i := 0; i < pad+2+2*len(run.mns); i++ {
			if err := feed(g.tgt.Nop, true); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// stepPreamble runs one unsafe start-up instruction plus its padding
// without collecting examples (the paper's start-up code; §5.2). The
// property is not checked during the preamble — preamble instructions use
// public operands, so both copies behave identically by construction.
func (g *exampleGen) stepPreamble(sim *circuit.Sim, word uint64, pad int) error {
	if _, err := g.step(sim, word); err != nil {
		return err
	}
	for i := 0; i < pad; i++ {
		if _, err := g.step(sim, g.tgt.Nop); err != nil {
			return err
		}
	}
	return nil
}
