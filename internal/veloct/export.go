package veloct

import (
	"fmt"
	"io"

	"hhoudini/internal/btor2"
	"hhoudini/internal/circuit"
	"hhoudini/internal/hhoudini"
	"hhoudini/internal/mc"
	"hhoudini/internal/miter"
)

// Certificate compiles a verification result into a self-contained circuit
// that external tools can check: a copy of the product circuit with three
// named wires —
//
//	invariant    the conjunction of every learned predicate,
//	safe_inputs  the environment assumption (instruction ∈ safe set ∪ ε),
//	bad          ¬invariant.
//
// Because the invariant is 1-step inductive under the assumption and holds
// at reset, "bad is unreachable under constraint safe_inputs" is provable
// by plain 1-induction; any btor2 model checker — or this repository's own
// mc engine (see CheckCertificate) — can re-establish the security claim
// without trusting the learner.
func (a *Analysis) Certificate(res *Result) (*circuit.Circuit, error) {
	if res.Invariant == nil {
		return nil, fmt.Errorf("veloct: no invariant to certify")
	}
	b := circuit.NewBuilder()
	if err := circuit.DuplicateInto(b, a.Product.Circuit, "", nil); err != nil {
		return nil, err
	}

	var preds []circuit.Signal
	for _, p := range res.Invariant.Preds {
		sig, err := buildPredSignal(b, p)
		if err != nil {
			return nil, err
		}
		preds = append(preds, sig)
	}
	inv := b.AndN(preds...)

	in, ok := b.InputWord(a.Target.InstrPort)
	if !ok {
		return nil, fmt.Errorf("veloct: instruction port %q missing from certificate", a.Target.InstrPort)
	}
	safeIn := circuit.False
	for _, mm := range a.Target.SafePatterns(res.Safe) {
		safeIn = b.Or2(safeIn, matchSignal(b, in, mm.Mask, mm.Match))
	}

	b.Name("invariant", circuit.Word{inv})
	b.Name("safe_inputs", circuit.Word{safeIn})
	b.Name("bad", circuit.Word{b.Not(inv)})
	return b.Build()
}

// ExportCertificate writes the certificate as a btor2 model with the
// environment assumption as a constraint and ¬invariant as the bad
// property.
func (a *Analysis) ExportCertificate(w io.Writer, res *Result) error {
	cert, err := a.Certificate(res)
	if err != nil {
		return err
	}
	return btor2.Write(w, cert, []string{"bad"}, []string{"safe_inputs"})
}

// CheckCertificate re-verifies a result with the independent k-induction
// engine: the certificate's bad wire must be provably unreachable under
// the safe-input constraint with k = 1 (the invariant is 1-step
// inductive). This closes the loop without trusting the learner's
// bookkeeping: only the SAT solver and CNF encoder are shared.
func (a *Analysis) CheckCertificate(res *Result) error {
	cert, err := a.Certificate(res)
	if err != nil {
		return err
	}
	proved, cex, err := mc.KInductionUnder(cert, "bad", 1, []string{"safe_inputs"})
	if err != nil {
		return err
	}
	if cex != nil {
		return fmt.Errorf("veloct: certificate refuted — invariant violated after %d steps", cex.Len())
	}
	if !proved {
		return fmt.Errorf("veloct: certificate not 1-inductive")
	}
	return nil
}

// buildPredSignal compiles a relational predicate into combinational logic
// over the (duplicated) product circuit's registers.
func buildPredSignal(b *circuit.Builder, p hhoudini.Pred) (circuit.Signal, error) {
	pair := func(reg string) (circuit.Word, circuit.Word, error) {
		l, ok1 := b.RegWord(miter.Left(reg))
		r, ok2 := b.RegWord(miter.Right(reg))
		if !ok1 || !ok2 {
			return nil, nil, fmt.Errorf("veloct: register %q missing from certificate", reg)
		}
		return l, r, nil
	}
	switch q := p.(type) {
	case EqPred:
		l, r, err := pair(q.Reg)
		if err != nil {
			return circuit.False, err
		}
		return b.Eq(l, r), nil
	case EqConstPred:
		l, r, err := pair(q.Reg)
		if err != nil {
			return circuit.False, err
		}
		return b.And2(b.EqConst(l, q.Val), b.EqConst(r, q.Val)), nil
	case EqConstSetPred:
		l, r, err := pair(q.Reg)
		if err != nil {
			return circuit.False, err
		}
		member := circuit.False
		for _, v := range q.Vals {
			member = b.Or2(member, b.EqConst(l, v))
		}
		return b.And2(b.Eq(l, r), member), nil
	case InSafeSetPred:
		l, r, err := pair(q.Reg)
		if err != nil {
			return circuit.False, err
		}
		member := circuit.False
		for _, mm := range q.Pats {
			member = b.Or2(member, matchSignal(b, l, mm.Mask, mm.Match))
		}
		return b.And2(b.Eq(l, r), member), nil
	default:
		return circuit.False, fmt.Errorf("veloct: cannot compile predicate %T into a certificate", p)
	}
}

// matchSignal builds (word & mask) == match over the masked bits.
func matchSignal(b *circuit.Builder, w circuit.Word, mask, match uint32) circuit.Signal {
	acc := circuit.True
	for i, sig := range w {
		if i >= 32 || mask&(1<<uint(i)) == 0 {
			continue
		}
		if match&(1<<uint(i)) != 0 {
			acc = b.And2(acc, sig)
		} else {
			acc = b.And2(acc, sig.Not())
		}
	}
	return acc
}
