package veloct

import (
	"sort"
	"sync"

	"hhoudini/internal/circuit"
	"hhoudini/internal/design"
	"hhoudini/internal/hhoudini"
	"hhoudini/internal/isa"
	"hhoudini/internal/miter"
)

// Miner implements O_mine (Algorithm 2): it translates a slice of
// product-circuit registers into the candidate predicates consistent with
// every positive example. Expert annotations (UopRules) are validated
// against the examples before use, so incorrect annotations cannot cause
// unsoundness (§5.1.2).
//
// Results are memoized per base register, which is what makes overlapping
// cones cheap to re-mine. The Miner is safe for concurrent use by the
// parallel learner.
type Miner struct {
	prod     *miter.Product
	examples []circuit.Snapshot
	patterns []isa.MaskMatch
	rules    map[string][]design.UopRule // base reg → expert rules

	mu    sync.Mutex
	cache map[string][]hhoudini.Pred
}

// NewMiner builds the mining oracle for a product circuit, a set of
// (masked) positive examples, the InSafeSet patterns of the proposed safe
// set, and optional expert annotations.
func NewMiner(prod *miter.Product, examples []circuit.Snapshot, patterns []isa.MaskMatch, rules []design.UopRule) *Miner {
	byReg := make(map[string][]design.UopRule)
	for _, r := range rules {
		byReg[r.Reg] = append(byReg[r.Reg], r)
	}
	return &Miner{
		prod:     prod,
		examples: examples,
		patterns: patterns,
		rules:    byReg,
		cache:    make(map[string][]hhoudini.Pred),
	}
}

// Mine implements hhoudini.MineOracle. The slice contains product-circuit
// register names (both copies); predicates are generated per base
// register.
func (m *Miner) Mine(target hhoudini.Pred, slice []string) ([]hhoudini.Pred, error) {
	bases := make(map[string]bool)
	for _, r := range slice {
		base, _ := miter.BaseName(r)
		bases[base] = true
	}
	names := make([]string, 0, len(bases))
	for b := range bases {
		names = append(names, b)
	}
	sort.Strings(names)

	var out []hhoudini.Pred
	for _, base := range names {
		preds, err := m.predsFor(base)
		if err != nil {
			return nil, err
		}
		out = append(out, preds...)
	}
	return out, nil
}

// predsFor runs the per-register body of Algorithm 2.
func (m *Miner) predsFor(base string) ([]hhoudini.Pred, error) {
	m.mu.Lock()
	if cached, ok := m.cache[base]; ok {
		m.mu.Unlock()
		return cached, nil
	}
	m.mu.Unlock()

	li, ri, err := m.prod.RegPair(base)
	if err != nil {
		return nil, err
	}
	width := m.prod.Circuit.Regs()[li].Width

	var preds []hhoudini.Pred
	if width <= 64 {
		// Rule (i): only registers equal across copies in every example
		// are candidates (line 2).
		inVEq := true
		for _, e := range m.examples {
			if e[li] != e[ri] {
				inVEq = false
				break
			}
		}
		if inVEq {
			preds = append(preds, EqPred{Reg: base}) // line 5

			// EqConst when a single constant fits all examples (line 7).
			if len(m.examples) > 0 {
				c := m.examples[0][li]
				allSame := true
				for _, e := range m.examples {
					if e[li] != c {
						allSame = false
						break
					}
				}
				if allSame {
					preds = append(preds, EqConstPred{Reg: base, Val: c})
				}
			}

			// InSafeSet when consistent with every example (line 11).
			safe := InSafeSetPred{Reg: base, Pats: m.patterns}
			ok := true
			for _, e := range m.examples {
				holds, err := safe.Eval(m.prod.Circuit, e)
				if err != nil {
					return nil, err
				}
				if !holds {
					ok = false
					break
				}
			}
			if ok {
				preds = append(preds, safe)
			}

			// Expert predicates, validated against the examples (line 15).
			for _, rule := range m.rules[base] {
				p := NewEqConstSet("InSafeUop", base, rule.Values)
				ok := true
				for _, e := range m.examples {
					holds, err := p.Eval(m.prod.Circuit, e)
					if err != nil {
						return nil, err
					}
					if !holds {
						ok = false
						break
					}
				}
				if ok {
					preds = append(preds, p)
				}
			}
		}
	}

	m.mu.Lock()
	m.cache[base] = preds
	m.mu.Unlock()
	return preds, nil
}

// Universe mines predicates for every register of the base design — the
// full predicate set P* the monolithic baselines start from (§2.2.1's
// positive-example sifting, applied globally rather than per-slice).
func (m *Miner) Universe() ([]hhoudini.Pred, error) {
	var out []hhoudini.Pred
	for _, name := range m.prod.BaseRegs() {
		preds, err := m.predsFor(name)
		if err != nil {
			return nil, err
		}
		out = append(out, preds...)
	}
	return out, nil
}
