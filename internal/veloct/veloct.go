package veloct

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"hhoudini/internal/circuit"
	"hhoudini/internal/design"
	"hhoudini/internal/hhoudini"
	"hhoudini/internal/isa"
	"hhoudini/internal/miter"
	"hhoudini/internal/sat"
)

// Options configure a VeloCT analysis.
type Options struct {
	// Learner configures H-Houdini (workers, core minimization, staged
	// mining, and the pooled incremental SAT backend vs. a fresh solver
	// per abduction query).
	Learner hhoudini.Options
	// Examples configures positive example generation.
	Examples ExampleConfig
	// DisableAnnotations drops the target's expert UopRules — the
	// "no expert annotations" configuration the paper uses for Rocketchip.
	DisableAnnotations bool
	// CacheNamespace partitions every cross-run cache identity this
	// analysis produces (see hhoudini.System.Namespace). The multi-tenant
	// service sets it to the tenant id so no cached artifact crosses a
	// tenant boundary; empty means the default shared namespace.
	CacheNamespace string
}

// DefaultOptions mirror the paper's configuration: sequential learner,
// minimal cores, pooled incremental solving, masking and annotations
// enabled.
func DefaultOptions() Options {
	return Options{
		Learner:  hhoudini.DefaultOptions(),
		Examples: DefaultExampleConfig(),
	}
}

// Analysis is a VeloCT run bound to one design. The product circuit is
// built once and shared across safe-set proposals.
type Analysis struct {
	Target  *design.Target
	Product *miter.Product
	Opts    Options
}

// New builds an analysis for a target design.
func New(tgt *design.Target, opts Options) (*Analysis, error) {
	prod, err := miter.Build(tgt.Circuit)
	if err != nil {
		return nil, err
	}
	prod.Circuit.WarmSupports()
	return &Analysis{Target: tgt, Product: prod, Opts: opts}, nil
}

// Result is the outcome of verifying one proposed safe set.
type Result struct {
	Safe      []string
	Invariant *hhoudini.Invariant // nil = None (set is not provably safe)
	Stats     *hhoudini.Stats
	Examples  int
	// Failed lists the P_fail predicate IDs accumulated during learning
	// (diagnostic: each entry triggered backtracking).
	Failed []string
	// Reason explains a nil invariant when known (e.g. a simulation
	// witness of unsafety).
	Reason string
}

// System builds the transition system for a proposed safe set: the product
// circuit under the environment assumption that every instruction input is
// drawn from the safe set's patterns (Σ ∪ {ε} of Definition 4.4).
//
// The assumption is installed with an explicit EnvKey so the cross-run
// verification cache can identify it: the patterns are put in a canonical
// order first, making the encoded clause stream a deterministic function of
// (circuit, EnvKey) as System.EnvKey's contract requires — two Verify calls
// over the same safe set produce byte-identical assumption encodings, and
// any change to the safe set changes the key and misses the cache.
func (a *Analysis) System(safe []string) *hhoudini.System {
	// Copy before sorting: pattern generators may hand out shared slices.
	pats := append([]isa.MaskMatch(nil), a.Target.SafePatterns(safe)...)
	sort.Slice(pats, func(i, j int) bool {
		if pats[i].Mask != pats[j].Mask {
			return pats[i].Mask < pats[j].Mask
		}
		return pats[i].Match < pats[j].Match
	})
	port := a.Target.InstrPort
	envKey := fmt.Sprintf("safeset:%s", port)
	for _, mm := range pats {
		envKey += fmt.Sprintf(";%x/%x", uint64(mm.Mask), uint64(mm.Match))
	}
	return &hhoudini.System{
		Circuit: a.Product.Circuit,
		Constrain: func(enc *circuit.Encoder) error {
			lits, err := enc.InputLits(port)
			if err != nil {
				return err
			}
			opts := make([]sat.Lit, len(pats))
			for i, mm := range pats {
				opts[i] = enc.MatchLits(lits, uint64(mm.Mask), uint64(mm.Match))
			}
			enc.AssertLit(enc.OrLits(opts...))
			return nil
		},
		EnvKey:    envKey,
		Namespace: a.Opts.CacheNamespace,
	}
}

// Targets returns the property predicates: Eq over each attacker
// observable (§5, "Eq(v_o^l, v_o^r)").
func (a *Analysis) Targets() []hhoudini.Pred {
	out := make([]hhoudini.Pred, len(a.Target.Observable))
	for i, obs := range a.Target.Observable {
		out[i] = EqPred{Reg: obs}
	}
	return out
}

// BuildMiner generates examples and constructs the mining oracle for a
// proposed safe set. Exposed separately for the baseline comparison, which
// wants the same predicate universe. It is BuildMinerCtx under a
// background (never-cancelled) context.
func (a *Analysis) BuildMiner(safe []string) (*Miner, []circuit.Snapshot, error) {
	return a.BuildMinerCtx(context.Background(), safe)
}

// BuildMinerCtx is BuildMiner under a context: example generation observes
// cancellation between simulation runs, so an analysis cancelled during
// its (potentially long) setup phase aborts promptly with ctx.Err()
// instead of only noticing once learning starts.
func (a *Analysis) BuildMinerCtx(ctx context.Context, safe []string) (*Miner, []circuit.Snapshot, error) {
	gen, err := newExampleGen(a.Target, a.Product, a.Opts.Examples)
	if err != nil {
		return nil, nil, err
	}
	examples, err := gen.GenerateCtx(ctx, safe)
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	var rules []design.UopRule
	if a.Target.UopRules != nil && !a.Opts.DisableAnnotations {
		rules = a.Target.UopRules(safe)
	}
	return NewMiner(a.Product, examples, a.Target.SafePatterns(safe), rules), examples, nil
}

// Verify attempts to prove the proposed safe set: it generates examples,
// mines predicates, and runs H-Houdini for Eq over every observable. A nil
// Invariant in the result means None. It is VerifyCtx under a background
// (never-cancelled) context.
func (a *Analysis) Verify(safe []string) (*Result, error) {
	return a.VerifyCtx(context.Background(), safe)
}

// VerifyCtx is Verify under a context: cancellation interrupts the
// in-flight learning run (in-progress solver queries abort at their next
// interrupt check, pooled solvers are checked back into the cross-run
// cache, and any bound proof store is flushed) and returns ctx.Err().
func (a *Analysis) VerifyCtx(ctx context.Context, safe []string) (*Result, error) {
	res := &Result{Safe: append([]string(nil), safe...)}
	miner, examples, err := a.BuildMinerCtx(ctx, safe)
	if err != nil {
		if unsafe, ok := err.(ErrUnsafe); ok {
			res.Reason = unsafe.Error()
			return res, nil
		}
		return nil, err
	}
	res.Examples = len(examples)

	sys := a.System(safe)
	learner := hhoudini.NewLearner(sys, miner, a.Opts.Learner)
	inv, err := learner.LearnCtx(ctx, a.Targets())
	if err != nil {
		return nil, err
	}
	res.Invariant = inv
	res.Stats = learner.Stats()
	res.Failed = learner.FailedPreds()
	if inv == nil {
		res.Reason = "no inductive invariant exists in the predicate abstraction"
	}
	return res, nil
}

// Audit monolithically re-verifies a learned invariant (initiation,
// consecution, property), plus the P-S premise against the example set —
// the paper's independent check of the Rocketchip invariant (§6.4).
func (a *Analysis) Audit(res *Result) error {
	if res.Invariant == nil {
		return fmt.Errorf("veloct: nothing to audit (no invariant)")
	}
	sys := a.System(res.Safe)
	return hhoudini.Audit(sys, res.Invariant)
}

// --- Safe-set synthesis (the SISP) ------------------------------------------

// trialPair is an adversarial secret assignment for differential testing.
type trialPair struct{ l, r uint64 }

var trials = []trialPair{
	{0, 3},      // zero vs non-zero: catches zero-skip fast paths
	{2, 3},      // even vs odd: catches parity-based quirks
	{1, 2},      // small values, differing low bits: divisor latencies
	{0xffff, 1}, // extreme vs small
}

// SimUnsafe checks by paired concrete simulation whether an instruction
// exhibits secret-dependent timing: it runs the instruction from
// equal-modulo-secret states with adversarial and random secret pairs and
// compares the observable traces. A true result is a concrete
// counterexample (the instruction is definitely unsafe); false means no
// violation was found.
func (a *Analysis) SimUnsafe(mn string, extraRandom int) (bool, error) {
	rng := rand.New(rand.NewSource(a.Opts.Examples.Seed + 7))
	pairs := append([]trialPair(nil), trials...)
	for i := 0; i < extraRandom; i++ {
		l, r := rng.Uint64()&0xffff, rng.Uint64()&0xffff
		if l == r {
			r ^= 1
		}
		pairs = append(pairs, trialPair{l, r})
	}
	pad := a.Target.MaxLatency
	for _, pair := range pairs {
		word, err := a.Target.Encode(mn, rng)
		if err != nil {
			return false, err
		}
		sim := circuit.NewSim(a.Product.Circuit)
		snap := sim.Snapshot()
		for _, sec := range a.Target.SecretRegs {
			li, ri, err := a.Product.RegPair(sec)
			if err != nil {
				return false, err
			}
			snap[li], snap[ri] = pair.l, pair.r
		}
		sim.LoadSnapshot(snap)

		words := []uint64{a.Target.Nop, a.Target.Nop, word}
		for i := 0; i < pad+2; i++ {
			words = append(words, a.Target.Nop)
		}
		for _, w := range words {
			if err := sim.Step(circuit.Inputs{a.Target.InstrPort: w}); err != nil {
				return false, err
			}
			cur := sim.Snapshot()
			for _, obs := range a.Target.Observable {
				li, ri, err := a.Product.RegPair(obs)
				if err != nil {
					return false, err
				}
				if cur[li] != cur[ri] {
					return true, nil
				}
			}
		}
	}
	return false, nil
}

// Synthesis is the outcome of safe instruction set synthesis.
type Synthesis struct {
	Safe   []string
	Unsafe []string
	// UnsafeByCategory lists instructions excluded a priori (memory and
	// control flow), as the paper categorizes them manually.
	UnsafeByCategory []string
	Result           *Result // verification of the final safe set
}

// Synthesize solves the SISP for the target: it filters the candidate
// instructions by differential simulation (concrete unsafety witnesses),
// verifies the surviving set with H-Houdini, and shrinks further if
// verification fails to attribute the failure. The returned synthesis
// carries the proving invariant. It is SynthesizeCtx under a background
// (never-cancelled) context.
func (a *Analysis) Synthesize() (*Synthesis, error) {
	return a.SynthesizeCtx(context.Background())
}

// SynthesizeCtx is Synthesize under a context: each verification round
// runs under ctx, so cancellation interrupts the in-flight learning run
// and returns ctx.Err() between (or inside) rounds.
func (a *Analysis) SynthesizeCtx(ctx context.Context) (*Synthesis, error) {
	syn := &Synthesis{}
	inCand := make(map[string]bool)
	for _, mn := range a.Target.CandidateSafe {
		inCand[mn] = true
	}
	for _, mn := range a.Target.Ops {
		if !inCand[mn] && mn != "nop" {
			syn.UnsafeByCategory = append(syn.UnsafeByCategory, mn)
		}
	}

	var safe []string
	for _, mn := range a.Target.CandidateSafe {
		bad, err := a.SimUnsafe(mn, 4)
		if err != nil {
			return nil, err
		}
		if bad {
			syn.Unsafe = append(syn.Unsafe, mn)
		} else {
			safe = append(safe, mn)
		}
	}

	// Verify the surviving set; on failure, attribute by dropping one
	// instruction at a time (bounded — in practice simulation catches the
	// unsafe instructions first).
	for attempts := 0; ; attempts++ {
		if attempts > len(a.Target.CandidateSafe) {
			return nil, fmt.Errorf("veloct: synthesis failed to converge")
		}
		res, err := a.VerifyCtx(ctx, safe)
		if err != nil {
			return nil, err
		}
		if res.Invariant != nil {
			syn.Safe = safe
			syn.Result = res
			sort.Strings(syn.Unsafe)
			return syn, nil
		}
		if len(safe) == 0 {
			syn.Safe = nil
			syn.Result = res
			return syn, nil
		}
		victim, rest, err := a.attribute(ctx, safe)
		if err != nil {
			return nil, err
		}
		syn.Unsafe = append(syn.Unsafe, victim)
		safe = rest
	}
}

// attribute picks the instruction to drop when a set fails verification:
// the first instruction whose singleton set also fails, or failing that
// the last instruction.
func (a *Analysis) attribute(ctx context.Context, safe []string) (victim string, rest []string, err error) {
	for i, mn := range safe {
		res, err := a.VerifyCtx(ctx, []string{mn})
		if err != nil {
			return "", nil, err
		}
		if res.Invariant == nil {
			rest = append(append([]string(nil), safe[:i]...), safe[i+1:]...)
			return mn, rest, nil
		}
	}
	victim = safe[len(safe)-1]
	return victim, safe[:len(safe)-1], nil
}

// PatternsFor exposes the InSafeSet patterns of a safe set (used by tools
// and examples).
func (a *Analysis) PatternsFor(safe []string) []isa.MaskMatch {
	return a.Target.SafePatterns(safe)
}
