package veloct

import (
	"testing"
	"time"

	"hhoudini/internal/baseline"
	"hhoudini/internal/design"
	"hhoudini/internal/hhoudini"
)

// TestSpeedupVsBaselines reproduces the headline comparison (§6.3): on the
// in-order core with the identical predicate universe, H-Houdini must find
// the invariant faster than the monolithic Houdini/Sorcar learners, and
// all three must agree.
func TestSpeedupVsBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	a := inOrderAnalysis(t, DefaultOptions())
	safe := inOrderSafeSet

	// H-Houdini.
	start := time.Now()
	res, err := a.Verify(safe)
	if err != nil {
		t.Fatal(err)
	}
	hhTime := time.Since(start)
	if res.Invariant == nil {
		t.Fatalf("H-Houdini failed: %s", res.Reason)
	}

	// The baselines consume the same example-filtered universe.
	miner, _, err := a.BuildMiner(safe)
	if err != nil {
		t.Fatal(err)
	}
	universe, err := miner.Universe()
	if err != nil {
		t.Fatal(err)
	}
	sys := a.System(safe)
	targets := a.Targets()

	start = time.Now()
	var hStats baseline.Stats
	invH, err := baseline.Houdini(sys, universe, targets, baseline.Options{}, &hStats)
	if err != nil {
		t.Fatal(err)
	}
	houdiniTime := time.Since(start)
	if invH == nil {
		t.Fatal("Houdini failed to find an invariant")
	}
	if err := hhoudini.Audit(sys, invH); err != nil {
		t.Fatalf("Houdini invariant fails audit: %v", err)
	}

	start = time.Now()
	var sStats baseline.Stats
	invS, err := baseline.Sorcar(sys, universe, targets, baseline.Options{}, &sStats)
	if err != nil {
		t.Fatal(err)
	}
	sorcarTime := time.Since(start)
	if invS == nil {
		t.Fatal("Sorcar failed to find an invariant")
	}
	if err := hhoudini.Audit(sys, invS); err != nil {
		t.Fatalf("Sorcar invariant fails audit: %v", err)
	}

	t.Logf("universe=%d preds", len(universe))
	t.Logf("H-Houdini: %v (invariant %d)", hhTime, res.Invariant.Size())
	t.Logf("Houdini:   %v (%d rounds, invariant %d)", houdiniTime, hStats.Rounds, invH.Size())
	t.Logf("Sorcar:    %v (%d rounds, invariant %d)", sorcarTime, sStats.Rounds, invS.Size())
	if houdiniTime < hhTime {
		t.Logf("note: Houdini faster on this small design; the gap widens with size (see bench harness)")
	}
}

// TestBaselineBudgetOnOoO shows the Sorcar-style monolithic query blowing
// its budget on the OoO design — the paper's "unable to scale to BOOM"
// observation, reproduced as a bounded query.
func TestBaselineBudgetOnOoO(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	a := oooAnalysis(t, design.SmallOoO, DefaultOptions())
	miner, _, err := a.BuildMiner(oooSafeSet)
	if err != nil {
		t.Fatal(err)
	}
	universe, err := miner.Universe()
	if err != nil {
		t.Fatal(err)
	}
	sys := a.System(oooSafeSet)
	_, err = baseline.Sorcar(sys, universe, a.Targets(),
		baseline.Options{MaxConflictsPerQuery: 2000, MaxRounds: 10}, nil)
	if err == nil {
		t.Log("Sorcar finished within a tiny budget on SmallOoO (acceptable; the contrast is quantitative)")
	} else if err != baseline.ErrBudget {
		switch err.Error() {
		case "baseline: Sorcar exceeded 10 rounds":
			t.Log("Sorcar exceeded the round budget (monolithic refinement too slow)")
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
}
