package veloct

import (
	"math/rand"
	"testing"

	"hhoudini/internal/circuit"
	"hhoudini/internal/design"
	"hhoudini/internal/hhoudini"
	"hhoudini/internal/isa"
	"hhoudini/internal/miter"
	"hhoudini/internal/sat"
)

// tinyProduct builds a miter over a 2-register toy circuit.
func tinyProduct(t *testing.T) *miter.Product {
	t.Helper()
	b := circuit.NewBuilder()
	in := b.Input("in", 4)
	x := b.Register("x", 4, 5)
	y := b.Register("y", 4, 0)
	b.SetNext("x", b.Add(x, in))
	b.SetNext("y", b.XorW(y, x))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := miter.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// snapWith builds a product snapshot with given left/right values for x, y.
func snapWith(t *testing.T, p *miter.Product, lx, rx, ly, ry uint64) circuit.Snapshot {
	t.Helper()
	l := circuit.Snapshot{lx, ly}
	r := circuit.Snapshot{rx, ry}
	s, err := p.PairedSnapshot(l, r)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPredEvalSemantics(t *testing.T) {
	p := tinyProduct(t)
	c := p.Circuit

	eq := EqPred{Reg: "x"}
	eqc := EqConstPred{Reg: "x", Val: 5}
	ecs := NewEqConstSet("InSafeUop", "x", []uint64{3, 5, 5, 3})
	iss := InSafeSetPred{Reg: "x", Pats: []isa.MaskMatch{{Mask: 0b11, Match: 0b01}}}

	cases := []struct {
		snap circuit.Snapshot
		eq   bool
		eqc  bool
		ecs  bool
		iss  bool
	}{
		{snapWith(t, p, 5, 5, 0, 0), true, true, true, true},   // x=5: 5&3==1 ✓
		{snapWith(t, p, 3, 3, 0, 0), true, false, true, false}, // 3&3==3 ✗
		{snapWith(t, p, 5, 4, 0, 0), false, false, false, false},
		{snapWith(t, p, 9, 9, 0, 0), true, false, false, true}, // 9&3==1 ✓
	}
	for i, tc := range cases {
		check := func(name string, pred hhoudini.Pred, want bool) {
			got, err := pred.Eval(c, tc.snap)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("case %d: %s = %v, want %v", i, name, got, want)
			}
		}
		check("Eq", eq, tc.eq)
		check("EqConst", eqc, tc.eqc)
		check("EqConstSet", ecs, tc.ecs)
		check("InSafeSet", iss, tc.iss)
	}

	if len(ecs.Vals) != 2 {
		t.Fatalf("EqConstSet values not deduped: %v", ecs.Vals)
	}
	for _, pred := range []hhoudini.Pred{eq, eqc, ecs, iss} {
		if pred.ID() == "" || pred.String() == "" || len(pred.Vars()) != 2 {
			t.Fatalf("metadata broken for %T", pred)
		}
	}
}

// TestPredEncodeMatchesEval: for random states, the CNF encoding of each
// predicate (current frame) must agree with its concrete evaluation.
func TestPredEncodeMatchesEval(t *testing.T) {
	p := tinyProduct(t)
	c := p.Circuit
	preds := []hhoudini.Pred{
		EqPred{Reg: "x"},
		EqPred{Reg: "y"},
		EqConstPred{Reg: "x", Val: 7},
		NewEqConstSet("InSafeUop", "y", []uint64{0, 2, 9}),
		InSafeSetPred{Reg: "x", Pats: []isa.MaskMatch{{Mask: 0b101, Match: 0b100}, {Mask: 0b1111, Match: 0}}},
	}
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 40; iter++ {
		snap := snapWith(t, p,
			rng.Uint64()&15, rng.Uint64()&15, rng.Uint64()&15, rng.Uint64()&15)

		solver := sat.New()
		enc := circuit.NewEncoder(c, solver)
		var lits []sat.Lit
		for _, pred := range preds {
			l, err := pred.Encode(enc, false)
			if err != nil {
				t.Fatal(err)
			}
			lits = append(lits, l)
		}
		// Pin the state via assumptions.
		var as []sat.Lit
		for ri, reg := range c.Regs() {
			rl, err := enc.RegLits(reg.Name)
			if err != nil {
				t.Fatal(err)
			}
			for bit, l := range rl {
				if snap[ri]&(1<<uint(bit)) != 0 {
					as = append(as, l)
				} else {
					as = append(as, l.Not())
				}
			}
		}
		if st := solver.Solve(as...); st != sat.Sat {
			t.Fatalf("iter %d: pinned state unsat", iter)
		}
		for i, pred := range preds {
			want, err := pred.Eval(c, snap)
			if err != nil {
				t.Fatal(err)
			}
			if got := solver.ModelValue(lits[i]); got != want {
				t.Fatalf("iter %d: %s encode=%v eval=%v (snap %v)", iter, pred, got, want, snap)
			}
		}
	}
}

func TestPredUnknownRegister(t *testing.T) {
	p := tinyProduct(t)
	bad := EqPred{Reg: "ghost"}
	if _, err := bad.Eval(p.Circuit, make(circuit.Snapshot, len(p.Circuit.Regs()))); err == nil {
		t.Fatal("expected error")
	}
	enc := circuit.NewEncoder(p.Circuit, sat.New())
	if _, err := bad.Encode(enc, false); err == nil {
		t.Fatal("expected error")
	}
}

func TestMinerAlgorithm2(t *testing.T) {
	p := tinyProduct(t)
	// Examples: x equal and constant 5; y equal but varying.
	examples := []circuit.Snapshot{
		snapWith(t, p, 5, 5, 1, 1),
		snapWith(t, p, 5, 5, 2, 2),
	}
	pats := []isa.MaskMatch{{Mask: 0b11, Match: 0b01}} // 5&3==1 ✓; 1&3,2&3 ✗ for y
	rules := []design.UopRule{{Reg: "y", Values: []uint64{1, 2}}}
	m := NewMiner(p, examples, pats, rules)

	preds, err := m.Mine(EqPred{Reg: "x"}, []string{"l::x", "r::x", "l::y", "r::y"})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, pr := range preds {
		got[pr.ID()] = true
	}
	for _, want := range []string{"Eq(x)", "EqConst(x,0x5)", "InSafeSet(x)", "Eq(y)"} {
		if !got[want] {
			t.Errorf("missing %s in %v", want, got)
		}
	}
	if got["EqConst(y,0x1)"] || got["EqConst(y,0x2)"] {
		t.Error("EqConst(y) must not be mined: y varies")
	}
	if got["InSafeSet(y)"] {
		t.Error("InSafeSet(y) must not be mined: y fails the patterns")
	}
	// The expert rule on y IS consistent ({1,2}).
	if !got["InSafeUop(y,{0x1,0x2})"] {
		t.Errorf("expert rule should be mined: %v", got)
	}

	// Universe covers every register.
	uni, err := m.Universe()
	if err != nil {
		t.Fatal(err)
	}
	if len(uni) < len(preds) {
		t.Fatalf("universe %d smaller than slice mining %d", len(uni), len(preds))
	}

	// A differing register yields no predicates.
	examples2 := []circuit.Snapshot{snapWith(t, p, 1, 2, 0, 0)}
	m2 := NewMiner(p, examples2, nil, nil)
	preds2, err := m2.Mine(EqPred{Reg: "x"}, []string{"l::x"})
	if err != nil {
		t.Fatal(err)
	}
	if len(preds2) != 0 {
		t.Fatalf("expected no predicates for differing register, got %v", preds2)
	}
}
