// Package veloct instantiates H-Houdini for the safe instruction set
// synthesis problem (SISP), as §4–§5 of the paper describe: it builds the
// product (miter) transition system of a processor design, defines the
// relational predicate language (Eq, EqConst, EqConstSet, InSafeSet and
// the expert InSafeUop flavor), generates and cleans positive examples by
// paired concrete simulation, mines predicates with Algorithm 2, and
// drives the learner to either an inductive invariant proving a proposed
// safe set or None.
package veloct

import (
	"fmt"
	"sort"
	"strings"

	"hhoudini/internal/circuit"
	"hhoudini/internal/isa"
	"hhoudini/internal/miter"
	"hhoudini/internal/sat"
)

// Predicate tiers, ordered weakest-first: EqConst(v,c) implies Eq(v), so
// Eq is the weakest form and EqConst the strongest. Staged mining offers
// weaker tiers first, and core minimization drops stronger predicates
// first — both implement the paper's weakest-abduct bias (§3.2.3).
const (
	tierEq = iota
	tierInSafeSet
	tierExpert
	tierEqConst
)

// EqPred is the Eq(v) predicate: v holds the same value in the left and
// right executions (§5.1.1). Its variables are the two product-circuit
// copies of the base register.
type EqPred struct {
	Reg string // base register name
}

// ID implements hhoudini.Pred.
func (p EqPred) ID() string { return "Eq(" + p.Reg + ")" }

// Vars implements hhoudini.Pred.
func (p EqPred) Vars() []string { return []string{miter.Left(p.Reg), miter.Right(p.Reg)} }

// Tier implements hhoudini.Tiered.
func (p EqPred) Tier() int { return tierEq }

func (p EqPred) String() string { return p.ID() }

// Encode implements hhoudini.Pred.
func (p EqPred) Encode(enc *circuit.Encoder, next bool) (sat.Lit, error) {
	l, r, err := pairLits(enc, p.Reg, next)
	if err != nil {
		return 0, err
	}
	return enc.EqLits(l, r), nil
}

// Eval implements hhoudini.Pred.
func (p EqPred) Eval(c *circuit.Circuit, s circuit.Snapshot) (bool, error) {
	lv, rv, err := pairVals(c, s, p.Reg)
	if err != nil {
		return false, err
	}
	return lv == rv, nil
}

// EqConstPred is EqConst(v, val): v holds the constant val in both
// executions (implicitly an Eq, §5.1.1).
type EqConstPred struct {
	Reg string
	Val uint64
}

// ID implements hhoudini.Pred.
func (p EqConstPred) ID() string { return fmt.Sprintf("EqConst(%s,%#x)", p.Reg, p.Val) }

// Vars implements hhoudini.Pred.
func (p EqConstPred) Vars() []string { return []string{miter.Left(p.Reg), miter.Right(p.Reg)} }

// Tier implements hhoudini.Tiered.
func (p EqConstPred) Tier() int { return tierEqConst }

func (p EqConstPred) String() string { return p.ID() }

// Encode implements hhoudini.Pred.
func (p EqConstPred) Encode(enc *circuit.Encoder, next bool) (sat.Lit, error) {
	l, r, err := pairLits(enc, p.Reg, next)
	if err != nil {
		return 0, err
	}
	return enc.AndLits(enc.EqConstLits(l, p.Val), enc.EqConstLits(r, p.Val)), nil
}

// Eval implements hhoudini.Pred.
func (p EqConstPred) Eval(c *circuit.Circuit, s circuit.Snapshot) (bool, error) {
	lv, rv, err := pairVals(c, s, p.Reg)
	if err != nil {
		return false, err
	}
	return lv == p.Val && rv == p.Val, nil
}

// EqConstSetPred is EqConstSet(v, [vals...]): v is equal across executions
// and takes one of the listed constants. The expert InSafeUop annotation
// of §6.2 is this predicate instantiated with the safe uop codes.
type EqConstSetPred struct {
	Label string // e.g. "InSafeUop"
	Reg   string
	Vals  []uint64 // sorted, deduped
}

// NewEqConstSet normalizes the value list.
func NewEqConstSet(label, reg string, vals []uint64) EqConstSetPred {
	vs := append([]uint64(nil), vals...)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	out := vs[:0]
	var prev uint64
	for i, v := range vs {
		if i == 0 || v != prev {
			out = append(out, v)
		}
		prev = v
	}
	return EqConstSetPred{Label: label, Reg: reg, Vals: out}
}

// ID implements hhoudini.Pred.
func (p EqConstSetPred) ID() string {
	parts := make([]string, len(p.Vals))
	for i, v := range p.Vals {
		parts[i] = fmt.Sprintf("%#x", v)
	}
	return fmt.Sprintf("%s(%s,{%s})", p.Label, p.Reg, strings.Join(parts, ","))
}

// Vars implements hhoudini.Pred.
func (p EqConstSetPred) Vars() []string { return []string{miter.Left(p.Reg), miter.Right(p.Reg)} }

// Tier implements hhoudini.Tiered.
func (p EqConstSetPred) Tier() int { return tierExpert }

func (p EqConstSetPred) String() string { return p.ID() }

// Encode implements hhoudini.Pred.
func (p EqConstSetPred) Encode(enc *circuit.Encoder, next bool) (sat.Lit, error) {
	l, r, err := pairLits(enc, p.Reg, next)
	if err != nil {
		return 0, err
	}
	opts := make([]sat.Lit, len(p.Vals))
	for i, v := range p.Vals {
		opts[i] = enc.EqConstLits(l, v)
	}
	return enc.AndLits(enc.OrLits(opts...), enc.EqLits(l, r)), nil
}

// Eval implements hhoudini.Pred.
func (p EqConstSetPred) Eval(c *circuit.Circuit, s circuit.Snapshot) (bool, error) {
	lv, rv, err := pairVals(c, s, p.Reg)
	if err != nil {
		return false, err
	}
	if lv != rv {
		return false, nil
	}
	for _, v := range p.Vals {
		if lv == v {
			return true, nil
		}
	}
	return false, nil
}

// InSafeSetPred constrains a register holding a raw instruction word to
// bit patterns consistent with the proposed safe set (§5.1.1); the
// patterns are generated from the ISA specification. Implicitly Eq-typed.
type InSafeSetPred struct {
	Reg  string
	Pats []isa.MaskMatch
}

// ID implements hhoudini.Pred. The pattern list is fixed per analysis, so
// the register name identifies the predicate.
func (p InSafeSetPred) ID() string { return "InSafeSet(" + p.Reg + ")" }

// Vars implements hhoudini.Pred.
func (p InSafeSetPred) Vars() []string { return []string{miter.Left(p.Reg), miter.Right(p.Reg)} }

// Tier implements hhoudini.Tiered.
func (p InSafeSetPred) Tier() int { return tierInSafeSet }

func (p InSafeSetPred) String() string { return p.ID() }

// Encode implements hhoudini.Pred.
func (p InSafeSetPred) Encode(enc *circuit.Encoder, next bool) (sat.Lit, error) {
	l, r, err := pairLits(enc, p.Reg, next)
	if err != nil {
		return 0, err
	}
	opts := make([]sat.Lit, len(p.Pats))
	for i, mm := range p.Pats {
		opts[i] = enc.MatchLits(l, uint64(mm.Mask), uint64(mm.Match))
	}
	return enc.AndLits(enc.OrLits(opts...), enc.EqLits(l, r)), nil
}

// Eval implements hhoudini.Pred.
func (p InSafeSetPred) Eval(c *circuit.Circuit, s circuit.Snapshot) (bool, error) {
	lv, rv, err := pairVals(c, s, p.Reg)
	if err != nil {
		return false, err
	}
	if lv != rv || lv > 0xffffffff {
		return false, nil
	}
	return isa.Matches(uint32(lv), p.Pats), nil
}

// pairLits encodes the left/right copies of a base register in the chosen
// frame.
func pairLits(enc *circuit.Encoder, baseReg string, next bool) (l, r []sat.Lit, err error) {
	get := enc.RegLits
	if next {
		get = enc.RegNextLits
	}
	if l, err = get(miter.Left(baseReg)); err != nil {
		return nil, nil, err
	}
	if r, err = get(miter.Right(baseReg)); err != nil {
		return nil, nil, err
	}
	return l, r, nil
}

// pairVals reads the left/right copies of a base register from a product
// snapshot.
func pairVals(c *circuit.Circuit, s circuit.Snapshot, baseReg string) (lv, rv uint64, err error) {
	li := c.RegIndex(miter.Left(baseReg))
	ri := c.RegIndex(miter.Right(baseReg))
	if li < 0 || ri < 0 {
		return 0, 0, fmt.Errorf("veloct: base register %q not in product circuit", baseReg)
	}
	return s[li], s[ri], nil
}
