package veloct

import (
	"math/rand"
	"testing"

	"hhoudini/internal/circuit"
	"hhoudini/internal/design"
	"hhoudini/internal/miter"
)

func TestExampleGenDeterministic(t *testing.T) {
	tgt, err := design.NewExecStage(design.ExecStageConfig{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	prod, err := miter.Build(tgt.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultExampleConfig()
	g1, err := newExampleGen(tgt, prod, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := newExampleGen(tgt, prod, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := g1.Generate([]string{"add"})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := g2.Generate([]string{"add"})
	if err != nil {
		t.Fatal(err)
	}
	if len(e1) != len(e2) {
		t.Fatalf("lengths differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if !e1[i].Equal(e2[i]) {
			t.Fatalf("example %d differs across identical seeds", i)
		}
	}
}

func TestExampleGenPropertyHoldsOnAllExamples(t *testing.T) {
	tgt, err := design.NewInOrder()
	if err != nil {
		t.Fatal(err)
	}
	prod, err := miter.Build(tgt.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	g, err := newExampleGen(tgt, prod, DefaultExampleConfig())
	if err != nil {
		t.Fatal(err)
	}
	examples, err := g.Generate([]string{"add", "xor", "lui"})
	if err != nil {
		t.Fatal(err)
	}
	if len(examples) < 50 {
		t.Fatalf("too few examples: %d", len(examples))
	}
	target := EqPred{Reg: tgt.Observable[0]}
	for i, e := range examples {
		ok, err := target.Eval(prod.Circuit, e)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("example %d violates the property", i)
		}
	}
}

func TestExampleGenUnsafeDetected(t *testing.T) {
	tgt, err := design.NewExecStage(design.ExecStageConfig{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	prod, err := miter.Build(tgt.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	// Force a zero-skip divergence: one copy's operand is zero. Secrets
	// are random per run, so try seeds until one produces a zero/non-zero
	// split — seed 1 with several runs per instr reliably includes one
	// since 8-bit operands are drawn from 16-bit randoms masked to width.
	cfg := DefaultExampleConfig()
	cfg.RunsPerInstr = 50
	g, err := newExampleGen(tgt, prod, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Directly poke a zero operand to make the witness deterministic.
	sim := circuit.NewSim(prod.Circuit)
	snap := sim.Snapshot()
	l1, r1, _ := prod.RegPair("op1")
	l2, r2, _ := prod.RegPair("op2")
	snap[l1], snap[r1] = 0, 3 // zero-skip fires only on the left
	snap[l2], snap[r2] = 7, 7 // second operand non-zero on both sides
	sim.LoadSnapshot(snap)
	sim.Step(circuit.Inputs{"opcode_in": design.ExecMul})
	diverged := false
	for i := 0; i < 15; i++ {
		sim.Step(circuit.Inputs{"opcode_in": 0})
		cur := sim.Snapshot()
		lv, rv, _ := prod.RegPair("valid")
		if cur[lv] != cur[rv] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("zero-skip divergence not observable in product simulation")
	}
	// And the generator itself flags mul unsafe (over many random runs the
	// 8-bit operands hit zero or the generator-independent SimUnsafe path
	// covers it; accept either signal).
	if _, err := g.Generate([]string{"mul"}); err == nil {
		a, err2 := New(tgt, DefaultOptions())
		if err2 != nil {
			t.Fatal(err2)
		}
		bad, err2 := a.SimUnsafe("mul", 0)
		if err2 != nil {
			t.Fatal(err2)
		}
		if !bad {
			t.Fatal("neither example generation nor SimUnsafe witnessed mul's leak")
		}
	} else if _, ok := err.(ErrUnsafe); !ok {
		t.Fatalf("unexpected error type: %v", err)
	}
}

func TestExampleMaskingCleansResidue(t *testing.T) {
	tgt, err := design.NewOoO(design.SmallOoO)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := miter.Build(tgt.Circuit)
	if err != nil {
		t.Fatal(err)
	}

	gen := func(maskOff bool) []circuit.Snapshot {
		cfg := DefaultExampleConfig()
		cfg.DisableMasking = maskOff
		g, err := newExampleGen(tgt, prod, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := g.Generate([]string{"add"})
		if err != nil {
			t.Fatal(err)
		}
		return ex
	}
	masked := gen(false)
	unmasked := gen(true)

	// Unmasked examples must contain unsafe residue in some invalid IQ/ROB
	// entry (from the dirty preamble); masked examples must not.
	residue := func(examples []circuit.Snapshot) bool {
		rules := tgt.Masks
		for _, e := range examples {
			for _, rule := range rules {
				for _, side := range []func(string) string{miter.Left, miter.Right} {
					vIdx := prod.Circuit.RegIndex(side(rule.ValidReg))
					if e[vIdx] != 0 {
						continue
					}
					for _, f := range rule.Fields {
						fi := prod.Circuit.RegIndex(side(f))
						if e[fi] != prod.Circuit.Regs()[fi].Init {
							return true
						}
					}
				}
			}
		}
		return false
	}
	if residue(masked) {
		t.Fatal("masked examples still contain invalid-entry residue")
	}
	if !residue(unmasked) {
		t.Fatal("unmasked examples contain no residue; the masking ablation is vacuous")
	}
}

// TestSoundnessDifferential is DESIGN.md's randomized soundness property:
// programs composed of verified-safe instructions, run from random
// equal-modulo-secret states, must produce indistinguishable observable
// traces.
func TestSoundnessDifferential(t *testing.T) {
	for _, mk := range []func() (*design.Target, []string, error){
		func() (*design.Target, []string, error) {
			tgt, err := design.NewInOrder()
			return tgt, inOrderSafeSet, err
		},
		func() (*design.Target, []string, error) {
			tgt, err := design.NewOoO(design.SmallOoO)
			return tgt, oooSafeSet, err
		},
	} {
		tgt, safe, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		prod, err := miter.Build(tgt.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(777))
		for trial := 0; trial < 20; trial++ {
			sim := circuit.NewSim(prod.Circuit)
			snap := sim.Snapshot()
			for _, sec := range tgt.SecretRegs {
				li, ri, err := prod.RegPair(sec)
				if err != nil {
					t.Fatal(err)
				}
				snap[li] = rng.Uint64() & 0xffff
				snap[ri] = rng.Uint64() & 0xffff
			}
			sim.LoadSnapshot(snap)

			// A random program over the safe set with random NOP spacing.
			prog := make([]uint64, 0, 60)
			for len(prog) < 50 {
				if rng.Intn(2) == 0 {
					prog = append(prog, tgt.Nop)
					continue
				}
				mn := safe[rng.Intn(len(safe))]
				w, err := tgt.Encode(mn, rng)
				if err != nil {
					t.Fatal(err)
				}
				prog = append(prog, w)
			}
			for i := 0; i < tgt.MaxLatency+4; i++ {
				prog = append(prog, tgt.Nop)
			}
			for cyc, w := range prog {
				if err := sim.Step(circuit.Inputs{tgt.InstrPort: w}); err != nil {
					t.Fatal(err)
				}
				cur := sim.Snapshot()
				for _, obs := range tgt.Observable {
					li, ri, err := prod.RegPair(obs)
					if err != nil {
						t.Fatal(err)
					}
					if cur[li] != cur[ri] {
						t.Fatalf("%s trial %d: observable %q diverged at cycle %d",
							tgt.Name, trial, obs, cyc)
					}
				}
			}
		}
	}
}
