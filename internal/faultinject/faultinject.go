// Package faultinject is the chaos-injection harness: a process-global set
// of named, test-only hook points compiled into the engine's hot paths at
// (almost) zero cost. Production code asks Enabled() — one atomic load,
// false for the whole life of a normal process — before consulting any
// specific point, so the disarmed overhead is a single predictable branch.
//
// The harness exists to *prove* the robustness story rather than assert it:
// the chaos test tier (TestChaos* across the repository, `make chaos`) arms
// these points to force solver Unknowns, fail proof-store writes, panic
// worker goroutines and stretch query latencies, then checks that the
// engine degrades — never corrupts, never deadlocks, never leaks
// goroutines. This mirrors how data-driven invariant learners treat solver
// timeouts and restarts as first-class events (Miltner et al.; Horn-ICE)
// instead of unreachable error paths.
//
// Concurrency: all state is guarded by one mutex; Fire/FireErr/Sleep are
// safe to call from any goroutine. Points are identified by the Point
// constants below; arming an unknown name is allowed (the engine simply
// never fires it), which keeps the package decoupled from its callers.
//
// The package is intended for tests only. Nothing enforces that, but every
// armed point should be paired with a deferred Reset.
package faultinject

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Point names compiled into the engine. Each constant documents the exact
// hook site so chaos tests and production code cannot drift apart silently.
const (
	// SolverUnknown makes sat.Solver.Solve return Unknown without
	// searching — the "solver gave up" event that drives the learner's
	// budget-escalation ladder.
	SolverUnknown = "sat.solve.unknown"
	// ProofDBWrite fails the crash-safe atomic rewrite in
	// internal/proofdb (temp-file write/fsync/rename path) with the armed
	// error: the store must degrade to its previous on-disk contents.
	ProofDBWrite = "proofdb.atomic-write"
	// JournalAppend fails one write-ahead journal record append in
	// internal/proofdb with the armed error: the delta is lost from the
	// journal (not the in-memory model), and a persistent streak of
	// failures must degrade the store to snapshot-only mode — the learner
	// never observes the fault.
	JournalAppend = "proofdb.journal.append"
	// JournalSync fails one journal fsync: the affected records stay
	// readable (page cache) but are not yet durable; Persist must fall
	// back to a full snapshot flush.
	JournalSync = "proofdb.journal.sync"
	// JournalRotate fails one size-triggered journal segment rotation:
	// appends must keep landing in the old segment (oversized but
	// consistent) or degrade, never be dropped silently.
	JournalRotate = "proofdb.journal.rotate"
	// WorkerPanic panics inside a learner worker's task body (under the
	// designated recover boundary): the Learn must fail with a
	// stack-carrying error while the process survives.
	WorkerPanic = "hhoudini.worker.panic"
	// QueryDelay stretches each abduction query by the armed Delay,
	// widening the cancellation races the chaos tier exercises.
	QueryDelay = "hhoudini.query.delay"
	// JobDelay stretches one accepted service job by the armed Delay
	// before it starts executing — the HTTP-level slow-job fault. It
	// widens drain/cancellation races: a job can sit admitted-but-unrun
	// while SIGTERM or its own deadline arrives.
	JobDelay = "serve.job.delay"
	// JobFail fails one accepted service job with the armed error at the
	// execution boundary (after dequeue, before the learner runs): the
	// job must resolve as failed — never wedge the worker or leak its
	// slot — and the daemon must keep serving.
	JobFail = "serve.job.fail"
)

// ErrInjected is the default error delivered by error-type points armed
// without an explicit Spec.Err.
var ErrInjected = errors.New("faultinject: injected fault")

// Spec arms one hook point.
type Spec struct {
	// Skip lets this many matching events pass through before firing.
	Skip int
	// Count is the number of events that fire after Skip; 0 arms a single
	// fire, negative fires forever (until Reset).
	Count int
	// Delay is the injected latency for delay points (Sleep).
	Delay time.Duration
	// Err is the injected error for error points (FireErr); nil means
	// ErrInjected.
	Err error
}

type point struct {
	skip  int
	count int // remaining fires; negative = unlimited
	delay time.Duration
	err   error
	fired int64
}

// enabled is the fast-path gate: non-zero iff at least one point has been
// armed since the last Reset. Hot paths load it once and skip the mutex
// entirely in the (universal, outside chaos tests) disarmed case.
var enabled atomic.Int32

var reg = struct {
	sync.Mutex
	points map[string]*point
}{points: make(map[string]*point)}

// Enabled reports whether any point is armed. It is the only call
// production code makes on its hot paths when the harness is idle.
func Enabled() bool { return enabled.Load() != 0 }

// Arm configures a hook point. Re-arming an already-armed point replaces
// its spec but preserves its fired counter.
func Arm(name string, spec Spec) {
	count := spec.Count
	if count == 0 {
		count = 1
	}
	reg.Lock()
	defer reg.Unlock()
	prev := reg.points[name]
	p := &point{skip: spec.Skip, count: count, delay: spec.Delay, err: spec.Err}
	if prev != nil {
		p.fired = prev.fired
	}
	reg.points[name] = p
	enabled.Store(1)
}

// Reset disarms every point and clears all counters. Chaos tests defer it.
func Reset() {
	reg.Lock()
	defer reg.Unlock()
	reg.points = make(map[string]*point)
	enabled.Store(0)
}

// Fired returns how many times the named point has fired since it was
// first armed (surviving re-Arms, cleared by Reset).
func Fired(name string) int64 {
	reg.Lock()
	defer reg.Unlock()
	if p := reg.points[name]; p != nil {
		return p.fired
	}
	return 0
}

// fire consumes one event at the point and reports whether it fires,
// returning the point for access to its payload. Callers hold no lock.
func fire(name string) (*point, bool) {
	reg.Lock()
	defer reg.Unlock()
	p := reg.points[name]
	if p == nil {
		return nil, false
	}
	if p.skip > 0 {
		p.skip--
		return nil, false
	}
	if p.count == 0 {
		return nil, false // exhausted; stays registered for Fired()
	}
	if p.count > 0 {
		p.count--
	}
	p.fired++
	return p, true
}

// Fire consumes one event at the named point and reports whether the fault
// fires. Callers must check Enabled() first (cheaply) on hot paths.
func Fire(name string) bool {
	_, ok := fire(name)
	return ok
}

// FireErr consumes one event and returns the injected error when the point
// fires, nil otherwise.
func FireErr(name string) error {
	p, ok := fire(name)
	if !ok {
		return nil
	}
	if p.err != nil {
		return p.err
	}
	return ErrInjected
}

// Sleep consumes one event and blocks for the armed delay when the point
// fires (no-op otherwise).
func Sleep(name string) {
	p, ok := fire(name)
	if !ok || p.delay <= 0 {
		return
	}
	time.Sleep(p.delay)
}
