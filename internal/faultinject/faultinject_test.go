package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisarmedIsInert(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("fresh registry must be disabled")
	}
	if Fire(SolverUnknown) {
		t.Fatal("unarmed point fired")
	}
	if err := FireErr(ProofDBWrite); err != nil {
		t.Fatalf("unarmed FireErr = %v", err)
	}
	Sleep(QueryDelay) // must not block
}

func TestSkipAndCount(t *testing.T) {
	Reset()
	defer Reset()
	Arm(SolverUnknown, Spec{Skip: 2, Count: 3})
	if !Enabled() {
		t.Fatal("armed registry must be enabled")
	}
	got := make([]bool, 0, 7)
	for i := 0; i < 7; i++ {
		got = append(got, Fire(SolverUnknown))
	}
	want := []bool{false, false, true, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: fired=%v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
	if Fired(SolverUnknown) != 3 {
		t.Fatalf("Fired = %d, want 3", Fired(SolverUnknown))
	}
}

func TestDefaultCountIsOne(t *testing.T) {
	Reset()
	defer Reset()
	Arm(WorkerPanic, Spec{})
	if !Fire(WorkerPanic) || Fire(WorkerPanic) {
		t.Fatal("Count=0 must arm exactly one fire")
	}
}

func TestUnlimitedCount(t *testing.T) {
	Reset()
	defer Reset()
	Arm(SolverUnknown, Spec{Count: -1})
	for i := 0; i < 100; i++ {
		if !Fire(SolverUnknown) {
			t.Fatalf("event %d: unlimited point stopped firing", i)
		}
	}
}

func TestFireErr(t *testing.T) {
	Reset()
	defer Reset()
	Arm(ProofDBWrite, Spec{Count: 1})
	if err := FireErr(ProofDBWrite); !errors.Is(err, ErrInjected) {
		t.Fatalf("default error = %v, want ErrInjected", err)
	}
	sentinel := errors.New("disk on fire")
	Arm(ProofDBWrite, Spec{Count: 1, Err: sentinel})
	if err := FireErr(ProofDBWrite); !errors.Is(err, sentinel) {
		t.Fatalf("custom error = %v, want sentinel", err)
	}
	if Fired(ProofDBWrite) != 2 {
		t.Fatalf("Fired survives re-Arm: got %d, want 2", Fired(ProofDBWrite))
	}
}

func TestSleepDelays(t *testing.T) {
	Reset()
	defer Reset()
	Arm(QueryDelay, Spec{Count: 1, Delay: 20 * time.Millisecond})
	start := time.Now()
	Sleep(QueryDelay)
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("armed Sleep returned after %v", d)
	}
	start = time.Now()
	Sleep(QueryDelay) // exhausted: no delay
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("exhausted Sleep blocked for %v", d)
	}
}

// TestChaosConcurrentFire exercises the registry from many goroutines under
// the race detector: the total fire count must match the armed budget
// exactly (no double-fires, no lost fires).
func TestChaosConcurrentFire(t *testing.T) {
	Reset()
	defer Reset()
	const budget = 1000
	Arm(SolverUnknown, Spec{Count: budget})
	var fired int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for i := 0; i < 10*budget; i++ {
				if Enabled() && Fire(SolverUnknown) {
					local++
				}
			}
			mu.Lock()
			fired += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if fired != budget {
		t.Fatalf("total fires = %d, want exactly %d", fired, budget)
	}
	if Fired(SolverUnknown) != budget {
		t.Fatalf("Fired = %d, want %d", Fired(SolverUnknown), budget)
	}
}
