package btor2

import (
	"bytes"
	"strings"
	"testing"

	"hhoudini/internal/circuit"
)

// FuzzParse exercises the parser on arbitrary input: it must never panic,
// and any model it accepts must build a simulable circuit that survives a
// write/parse round trip.
func FuzzParse(f *testing.F) {
	f.Add(counterModel)
	f.Add("1 sort bitvec 1\n2 input 1 x\n3 not 1 2\n4 output 3\n")
	f.Add("1 sort bitvec 4\n2 state 1 s\n3 next 1 2 2\n")
	f.Add("; comment only\n")
	f.Add("1 sort bitvec 64\n2 ones 1\n3 state 1 w\n4 init 1 3 2\n5 next 1 3 3\n")
	f.Add("garbage input\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := Parse(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		sim := circuit.NewSim(d.Circuit)
		for i := 0; i < 3; i++ {
			if err := sim.Step(nil); err != nil {
				t.Fatalf("accepted model fails to simulate: %v", err)
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, d.Circuit, d.Bads, d.Constraints); err != nil {
			t.Fatalf("accepted model fails to export: %v", err)
		}
		if _, err := Parse(&buf); err != nil {
			t.Fatalf("exported model fails to re-parse: %v\n%s", err, buf.String())
		}
	})
}
