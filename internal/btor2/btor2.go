// Package btor2 reads and writes the btor2 word-level model-checking format
// (Niemetz et al., CAV'18) for the sequential bit-vector fragment.
//
// The paper's toolchain compiles Chisel designs through yosys into btor2,
// which VeloCT consumes. This package provides the same entry point: a
// btor2 file parses into a circuit.Circuit (bit-blasted through the
// word-level builder), and any circuit can be exported back to btor2.
//
// Supported fragment: bitvec sorts up to 64 bits; input, state, init (with
// constant values), next, constraint, bad, output; constants (const,
// constd, consth, zero, one, ones); unary not/inc/dec/neg/redor/redand/
// redxor/uext/sext/slice; binary and/nand/or/nor/xor/xnor/implies/iff/
// eq/neq/ult/ulte/ugt/ugte/slt/slte/sgt/sgte/add/sub/mul/sll/srl/sra/
// concat; ternary ite. Arrays and uninterpreted sorts are rejected.
// States without an init line reset to zero (documented deviation:
// btor2 leaves them unconstrained).
package btor2

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hhoudini/internal/circuit"
)

// Design is a parsed btor2 model: the circuit plus the names of the wires
// holding properties and constraints.
type Design struct {
	Circuit *circuit.Circuit
	// Bads lists wire names of bad-state properties (each 1 bit wide).
	Bads []string
	// Constraints lists wire names of environment constraints.
	Constraints []string
	// Outputs lists named output wires.
	Outputs []string
}

type rawLine struct {
	num    int
	id     int64
	op     string
	fields []string // full token list including id and op
}

// Parse reads a btor2 model.
func Parse(r io.Reader) (*Design, error) {
	var lines []rawLine
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := sc.Text()
		if i := strings.IndexByte(text, ';'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		id, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("btor2 line %d: bad id %q", lineNo, fields[0])
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("btor2 line %d: missing operator", lineNo)
		}
		lines = append(lines, rawLine{num: lineNo, id: id, op: fields[1], fields: fields})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	p := newParser()
	// Pass 1: sorts and constants (so state init values are resolvable when
	// the state line is processed in pass 2), and init bindings.
	for _, ln := range lines {
		if err := p.prescan(ln); err != nil {
			return nil, fmt.Errorf("btor2 line %d: %w", ln.num, err)
		}
	}
	// Pass 2: build the circuit.
	for _, ln := range lines {
		if err := p.process(ln); err != nil {
			return nil, fmt.Errorf("btor2 line %d: %w", ln.num, err)
		}
	}
	return p.finish()
}

// ParseString is a convenience wrapper over Parse.
func ParseString(s string) (*Design, error) { return Parse(strings.NewReader(s)) }

type parser struct {
	b      *circuit.Builder
	sorts  map[int64]int          // sort id → bit width
	words  map[int64]circuit.Word // node id → word
	widths map[int64]int          // node id → width
	consts map[int64]uint64       // const node id → value
	inits  map[int64]int64        // state id → init value node id
	states map[int64]string       // state id → register name
	design Design
	nBad   int
	nCon   int
}

func newParser() *parser {
	return &parser{
		b:      circuit.NewBuilder(),
		sorts:  make(map[int64]int),
		words:  make(map[int64]circuit.Word),
		widths: make(map[int64]int),
		consts: make(map[int64]uint64),
		inits:  make(map[int64]int64),
		states: make(map[int64]string),
	}
}

func (p *parser) prescan(ln rawLine) error {
	f := ln.fields
	switch ln.op {
	case "sort":
		if len(f) < 3 {
			return fmt.Errorf("sort: missing kind")
		}
		switch f[2] {
		case "bitvec":
			if len(f) < 4 {
				return fmt.Errorf("sort bitvec: missing width")
			}
			w, err := strconv.Atoi(f[3])
			if err != nil || w <= 0 || w > 64 {
				return fmt.Errorf("sort bitvec: unsupported width %q (1..64)", f[3])
			}
			p.sorts[ln.id] = w
		case "array":
			return fmt.Errorf("array sorts are not supported in this fragment")
		default:
			return fmt.Errorf("unknown sort kind %q", f[2])
		}
	case "const", "constd", "consth", "zero", "one", "ones":
		w, err := p.sortOf(f, 2)
		if err != nil {
			return err
		}
		v, err := constValue(ln.op, f, w)
		if err != nil {
			return err
		}
		p.consts[ln.id] = v
	case "init":
		if len(f) < 5 {
			return fmt.Errorf("init: want <sort> <state> <value>")
		}
		st, err1 := strconv.ParseInt(f[3], 10, 64)
		val, err2 := strconv.ParseInt(f[4], 10, 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("init: bad arguments")
		}
		p.inits[st] = val
	}
	return nil
}

func constValue(op string, f []string, width int) (uint64, error) {
	mask := uint64(1)<<uint(width) - 1
	if width == 64 {
		mask = ^uint64(0)
	}
	switch op {
	case "zero":
		return 0, nil
	case "one":
		return 1 & mask, nil
	case "ones":
		return mask, nil
	}
	if len(f) < 4 {
		return 0, fmt.Errorf("%s: missing value", op)
	}
	base := 2
	switch op {
	case "constd":
		base = 10
	case "consth":
		base = 16
	}
	neg := false
	s := f[3]
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(s, base, 64)
	if err != nil {
		return 0, fmt.Errorf("%s: bad value %q", op, f[3])
	}
	if neg {
		v = -v
	}
	return v & mask, nil
}

func (p *parser) sortOf(f []string, i int) (int, error) {
	if i >= len(f) {
		return 0, fmt.Errorf("missing sort argument")
	}
	sid, err := strconv.ParseInt(f[i], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sort id %q", f[i])
	}
	w, ok := p.sorts[sid]
	if !ok {
		return 0, fmt.Errorf("undefined sort %d", sid)
	}
	return w, nil
}

// operand resolves a possibly-negated node id to a word.
func (p *parser) operand(f []string, i int) (circuit.Word, error) {
	if i >= len(f) {
		return nil, fmt.Errorf("missing operand %d", i)
	}
	id, err := strconv.ParseInt(f[i], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad operand %q", f[i])
	}
	neg := id < 0
	if neg {
		id = -id
	}
	w, ok := p.words[id]
	if !ok {
		return nil, fmt.Errorf("undefined node %d", id)
	}
	if neg {
		return p.b.NotW(w), nil
	}
	return w, nil
}

func (p *parser) define(id int64, w circuit.Word) {
	p.words[id] = w
	p.widths[id] = len(w)
}

func (p *parser) process(ln rawLine) error {
	b := p.b
	f := ln.fields
	switch ln.op {
	case "sort", "init":
		return nil // handled in prescan / at state creation

	case "const", "constd", "consth", "zero", "one", "ones":
		w, err := p.sortOf(f, 2)
		if err != nil {
			return err
		}
		p.define(ln.id, b.Const(p.consts[ln.id], w))
		return nil

	case "input":
		w, err := p.sortOf(f, 2)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("i%d", ln.id)
		if len(f) > 3 {
			name = f[3]
		}
		p.define(ln.id, b.Input(name, w))
		return nil

	case "state":
		w, err := p.sortOf(f, 2)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("s%d", ln.id)
		if len(f) > 3 {
			name = f[3]
		}
		var init uint64
		if vid, ok := p.inits[ln.id]; ok {
			cv, isConst := p.consts[vid]
			if !isConst {
				return fmt.Errorf("state %s: init value node %d is not a constant", name, vid)
			}
			init = cv
		}
		p.states[ln.id] = name
		p.define(ln.id, b.Register(name, w, init))
		return nil

	case "next":
		if len(f) < 5 {
			return fmt.Errorf("next: want <sort> <state> <value>")
		}
		st, err := strconv.ParseInt(f[3], 10, 64)
		if err != nil {
			return fmt.Errorf("next: bad state id")
		}
		name, ok := p.states[st]
		if !ok {
			return fmt.Errorf("next: node %d is not a state", st)
		}
		val, err := p.operand(f, 4)
		if err != nil {
			return err
		}
		b.SetNext(name, val)
		return nil

	case "bad":
		w, err := p.operand(f, 2)
		if err != nil {
			return err
		}
		if len(w) != 1 {
			return fmt.Errorf("bad: property node must be 1 bit wide, got %d", len(w))
		}
		name := fmt.Sprintf("bad%d", p.nBad)
		if len(f) > 3 {
			name = f[3]
		}
		p.nBad++
		b.Name(name, w)
		p.design.Bads = append(p.design.Bads, name)
		return nil

	case "constraint":
		w, err := p.operand(f, 2)
		if err != nil {
			return err
		}
		if len(w) != 1 {
			return fmt.Errorf("constraint: node must be 1 bit wide, got %d", len(w))
		}
		name := fmt.Sprintf("constraint%d", p.nCon)
		p.nCon++
		b.Name(name, w)
		p.design.Constraints = append(p.design.Constraints, name)
		return nil

	case "output":
		w, err := p.operand(f, 2)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("o%d", ln.id)
		if len(f) > 3 {
			name = f[3]
		}
		b.Name(name, w)
		p.design.Outputs = append(p.design.Outputs, name)
		return nil
	}

	// Operator expressions all start with a result sort.
	width, err := p.sortOf(f, 2)
	if err != nil {
		return err
	}

	unary := func(fn func(circuit.Word) circuit.Word) error {
		a, err := p.operand(f, 3)
		if err != nil {
			return err
		}
		w := fn(a)
		if len(w) != width {
			w = p.b.ZeroExt(w, width)
		}
		p.define(ln.id, w)
		return nil
	}
	unaryBit := func(fn func(circuit.Word) circuit.Signal) error {
		return unary(func(a circuit.Word) circuit.Word { return circuit.Word{fn(a)} })
	}
	binary := func(fn func(a, c circuit.Word) circuit.Word) error {
		a, err := p.operand(f, 3)
		if err != nil {
			return err
		}
		c, err := p.operand(f, 4)
		if err != nil {
			return err
		}
		w := fn(a, c)
		if len(w) != width {
			w = p.b.ZeroExt(w, width)
		}
		p.define(ln.id, w)
		return nil
	}
	binaryBit := func(fn func(a, c circuit.Word) circuit.Signal) error {
		return binary(func(a, c circuit.Word) circuit.Word { return circuit.Word{fn(a, c)} })
	}

	switch ln.op {
	case "not":
		return unary(b.NotW)
	case "inc":
		return unary(b.Inc)
	case "dec":
		return unary(func(a circuit.Word) circuit.Word { return b.Sub(a, b.Const(1, len(a))) })
	case "neg":
		return unary(func(a circuit.Word) circuit.Word { return b.Sub(b.Const(0, len(a)), a) })
	case "redor":
		return unaryBit(b.RedOr)
	case "redand":
		return unaryBit(b.RedAnd)
	case "redxor":
		return unaryBit(b.RedXor)
	case "uext":
		return unary(func(a circuit.Word) circuit.Word { return b.ZeroExt(a, width) })
	case "sext":
		return unary(func(a circuit.Word) circuit.Word { return b.SignExt(a, width) })
	case "slice":
		if len(f) < 6 {
			return fmt.Errorf("slice: want <sort> <id> <hi> <lo>")
		}
		hi, err1 := strconv.Atoi(f[4])
		lo, err2 := strconv.Atoi(f[5])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("slice: bad bounds")
		}
		return unary(func(a circuit.Word) circuit.Word { return b.Extract(a, hi, lo) })
	case "and":
		return binary(b.AndW)
	case "nand":
		return binary(func(a, c circuit.Word) circuit.Word { return b.NotW(b.AndW(a, c)) })
	case "or":
		return binary(b.OrW)
	case "nor":
		return binary(func(a, c circuit.Word) circuit.Word { return b.NotW(b.OrW(a, c)) })
	case "xor":
		return binary(b.XorW)
	case "xnor":
		return binary(func(a, c circuit.Word) circuit.Word { return b.NotW(b.XorW(a, c)) })
	case "implies":
		return binaryBit(func(a, c circuit.Word) circuit.Signal {
			return b.Or2(b.Not(a[0]), c[0])
		})
	case "iff":
		return binaryBit(func(a, c circuit.Word) circuit.Signal { return b.Xnor2(a[0], c[0]) })
	case "eq":
		return binaryBit(b.Eq)
	case "neq":
		return binaryBit(b.Ne)
	case "ult":
		return binaryBit(b.Ult)
	case "ulte":
		return binaryBit(b.Ule)
	case "ugt":
		return binaryBit(func(a, c circuit.Word) circuit.Signal { return b.Ult(c, a) })
	case "ugte":
		return binaryBit(func(a, c circuit.Word) circuit.Signal { return b.Ule(c, a) })
	case "slt":
		return binaryBit(b.Slt)
	case "slte":
		return binaryBit(func(a, c circuit.Word) circuit.Signal { return b.Not(b.Slt(c, a)) })
	case "sgt":
		return binaryBit(func(a, c circuit.Word) circuit.Signal { return b.Slt(c, a) })
	case "sgte":
		return binaryBit(func(a, c circuit.Word) circuit.Signal { return b.Not(b.Slt(a, c)) })
	case "add":
		return binary(b.Add)
	case "sub":
		return binary(b.Sub)
	case "mul":
		return binary(b.Mul)
	case "sll":
		return binary(b.Shl)
	case "srl":
		return binary(b.Lshr)
	case "sra":
		return binary(b.Ashr)
	case "concat":
		// btor2 concat puts the FIRST operand in the high bits.
		return binary(func(a, c circuit.Word) circuit.Word { return b.Concat(c, a) })
	case "ite":
		cond, err := p.operand(f, 3)
		if err != nil {
			return err
		}
		tv, err := p.operand(f, 4)
		if err != nil {
			return err
		}
		fv, err := p.operand(f, 5)
		if err != nil {
			return err
		}
		p.define(ln.id, b.MuxW(cond[0], tv, fv))
		return nil
	}
	return fmt.Errorf("unsupported operator %q", ln.op)
}

func (p *parser) finish() (*Design, error) {
	c, err := p.b.Build()
	if err != nil {
		return nil, err
	}
	p.design.Circuit = c
	return &p.design, nil
}

// Write exports a circuit to btor2, bit-blasted to 1-bit sorts. Named
// wires listed in bads are emitted as bad properties and wires listed in
// constraints as environment constraints; all other wires become outputs.
// The result parses back (see tests) and is accepted by standard btor2
// tools.
func Write(w io.Writer, c *circuit.Circuit, bads, constraints []string) error {
	bw := bufio.NewWriter(w)
	next := int64(1)
	emit := func(format string, args ...any) int64 {
		id := next
		next++
		fmt.Fprintf(bw, "%d "+format+"\n", append([]any{id}, args...)...)
		return id
	}
	bit := emit("sort bitvec 1")
	zero := emit("zero %d", bit)

	// Map from circuit node signal value to btor2 id of the *positive* node.
	ids := make(map[int32]int64)
	litOf := func(s circuit.Signal) int64 {
		id, ok := ids[s.Node()]
		if !ok {
			panic(fmt.Sprintf("btor2: node %d not yet emitted", s.Node()))
		}
		if s.Inverted() {
			return -id
		}
		return id
	}
	ids[0] = zero // constant-false node

	// Inputs.
	for _, in := range c.Inputs() {
		for b2, sig := range in.Bits {
			ids[sig.Node()] = emit("input %d %s[%d]", bit, in.Name, b2)
		}
	}
	// States.
	type pendingNext struct {
		stateID int64
		sig     circuit.Signal
	}
	var nexts []pendingNext
	one := int64(0)
	for _, r := range c.Regs() {
		for b2, sig := range r.Bits {
			sid := emit("state %d %s[%d]", bit, r.Name, b2)
			ids[sig.Node()] = sid
			initVal := b2 < 64 && r.Init&(1<<uint(b2)) != 0
			if initVal {
				if one == 0 {
					one = emit("one %d", bit)
				}
				emit("init %d %d %d", bit, sid, one)
			} else {
				emit("init %d %d %d", bit, sid, zero)
			}
			nexts = append(nexts, pendingNext{sid, r.Next[b2]})
		}
	}
	// Gates in topological (node id) order.
	c.VisitAnds(func(node int32, a, b circuit.Signal) {
		ids[node] = emit("and %d %d %d", bit, litOf(a), litOf(b))
	})
	// Next-state bindings.
	for _, pn := range nexts {
		emit("next %d %d %d", bit, pn.stateID, litOf(pn.sig))
	}
	// Properties, constraints and outputs.
	badSet := make(map[string]bool, len(bads))
	for _, b2 := range bads {
		badSet[b2] = true
	}
	conSet := make(map[string]bool, len(constraints))
	for _, c2 := range constraints {
		conSet[c2] = true
	}
	for _, name := range c.WireNames() {
		word, _ := c.Wire(name)
		for b2, sig := range word {
			switch {
			case badSet[name] && len(word) == 1:
				emit("bad %d %s", litOf(sig), name)
			case badSet[name]:
				emit("bad %d %s[%d]", litOf(sig), name, b2)
			case conSet[name]:
				emit("constraint %d", litOf(sig))
			default:
				emit("output %d %s[%d]", litOf(sig), name, b2)
			}
		}
	}
	return bw.Flush()
}
