package btor2

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"hhoudini/internal/circuit"
)

const counterModel = `
; two-bit counter with overflow bad state
1 sort bitvec 2
2 sort bitvec 1
3 zero 1
4 state 1 cnt
5 init 1 4 3
6 one 1
7 add 1 4 6
8 next 1 4 7
9 constd 1 3
10 eq 2 4 9
11 bad 10 overflowed
`

func TestParseCounter(t *testing.T) {
	d, err := ParseString(counterModel)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Bads) != 1 || d.Bads[0] != "overflowed" {
		t.Fatalf("bads = %v", d.Bads)
	}
	sim := circuit.NewSim(d.Circuit)
	for i := 0; i < 3; i++ {
		if v, _ := sim.PeekWire("overflowed"); v != 0 {
			t.Fatalf("cycle %d: premature bad", i)
		}
		sim.Step(nil)
	}
	if v, _ := sim.PeekWire("overflowed"); v != 1 {
		t.Fatal("bad state not reached at cnt==3")
	}
	if v, _ := sim.PeekReg("cnt"); v != 3 {
		t.Fatalf("cnt = %d, want 3", v)
	}
}

func TestParseAllOperators(t *testing.T) {
	model := `
1 sort bitvec 4
2 sort bitvec 1
3 input 1 a
4 input 1 b
5 input 2 c
6 not 1 3
7 inc 1 3
8 dec 1 3
9 neg 1 3
10 redor 2 3
11 redand 2 3
12 redxor 2 3
13 uext 1 10 3
14 sext 1 10 3
15 slice 2 3 2 2
16 and 1 3 4
17 nand 1 3 4
18 or 1 3 4
19 nor 1 3 4
20 xor 1 3 4
21 xnor 1 3 4
22 implies 2 10 11
23 iff 2 10 11
24 eq 2 3 4
25 neq 2 3 4
26 ult 2 3 4
27 ulte 2 3 4
28 ugt 2 3 4
29 ugte 2 3 4
30 slt 2 3 4
31 slte 2 3 4
32 sgt 2 3 4
33 sgte 2 3 4
34 add 1 3 4
35 sub 1 3 4
36 mul 1 3 4
37 sll 1 3 4
38 srl 1 3 4
39 sra 1 3 4
40 concat 1 15 15
41 ite 1 5 3 4
42 output 34 sum
43 output 41 sel
44 output -3 nota
45 consth 1 f
46 constd 1 -1
47 const 1 1010
48 output 45 allones
`
	d, err := ParseString(model)
	if err != nil {
		t.Fatal(err)
	}
	sim := circuit.NewSim(d.Circuit)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		a, b, c := rng.Uint64()&15, rng.Uint64()&15, rng.Uint64()&1
		sim.SetInputs(circuit.Inputs{"a": a, "b": b, "c": c})
		if v, _ := sim.PeekWire("sum"); v != (a+b)&15 {
			t.Fatalf("sum(%d,%d) = %d", a, b, v)
		}
		want := b
		if c == 1 {
			want = a
		}
		if v, _ := sim.PeekWire("sel"); v != want {
			t.Fatalf("ite = %d, want %d", v, want)
		}
		if v, _ := sim.PeekWire("nota"); v != ^a&15 {
			t.Fatalf("not = %d", v)
		}
		if v, _ := sim.PeekWire("allones"); v != 15 {
			t.Fatalf("consth f = %d", v)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"bad id":            "x sort bitvec 1\n",
		"missing op":        "1\n",
		"array sort":        "1 sort array 2 2\n",
		"bad width":         "1 sort bitvec 99\n",
		"unknown sort kind": "1 sort foo\n",
		"undefined sort":    "1 input 7\n",
		"undefined operand": "1 sort bitvec 1\n2 not 1 9\n",
		"unsupported op":    "1 sort bitvec 4\n2 input 1\n3 udiv 1 2 2\n",
		"next non-state":    "1 sort bitvec 1\n2 input 1\n3 next 1 2 2\n",
		"nonconst init":     "1 sort bitvec 1\n2 input 1\n3 state 1 s\n4 init 1 3 2\n5 next 1 3 3\n",
		"missing next":      "1 sort bitvec 1\n2 state 1 s\n",
		"bad slice":         "1 sort bitvec 2\n2 input 1\n3 slice 1 2 9 0\n",
	}
	for name, model := range cases {
		if _, err := ParseString(model); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestParseUninitializedStateDefaultsZero(t *testing.T) {
	d, err := ParseString("1 sort bitvec 3\n2 state 1 s\n3 next 1 2 2\n")
	if err != nil {
		t.Fatal(err)
	}
	sim := circuit.NewSim(d.Circuit)
	if v, _ := sim.PeekReg("s"); v != 0 {
		t.Fatalf("uninitialized state = %d, want 0", v)
	}
}

// TestWriteParseRoundTrip builds a circuit, exports it to btor2, re-parses
// it, and checks both circuits simulate identically on random stimulus.
func TestWriteParseRoundTrip(t *testing.T) {
	b := circuit.NewBuilder()
	in := b.Input("in", 6)
	x := b.Register("x", 6, 5)
	y := b.Register("y", 6, 0)
	b.SetNext("x", b.Add(x, in))
	b.SetNext("y", b.MuxW(b.Ult(y, x), x, b.XorW(y, in)))
	b.Name("prop", circuit.Word{b.Eq(x, y)})
	b.Name("out", b.OrW(x, y))
	c1, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := Write(&buf, c1, []string{"prop"}, nil); err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, buf.String())
	}
	if len(d2.Bads) != 1 {
		t.Fatalf("bads = %v", d2.Bads)
	}

	sim1 := circuit.NewSim(c1)
	sim2 := circuit.NewSim(d2.Circuit)
	rng := rand.New(rand.NewSource(11))
	for cycle := 0; cycle < 50; cycle++ {
		iv := rng.Uint64() & 63
		v1, _ := sim1.PeekReg("x")
		// Bit-blasted registers are named x[i] in the round-tripped design.
		var v2 uint64
		for bit := 0; bit < 6; bit++ {
			bv, err := sim2.PeekReg("x[" + string(rune('0'+bit)) + "]")
			if err != nil {
				t.Fatal(err)
			}
			v2 |= bv << uint(bit)
		}
		if v1 != v2 {
			t.Fatalf("cycle %d: x diverged %d vs %d", cycle, v1, v2)
		}
		p1, _ := sim1.PeekWire("prop")
		sim2.SetInputs(nil)
		p2, _ := sim2.PeekWire("prop")
		_ = p2
		if p1 != p2 {
			t.Fatalf("cycle %d: prop diverged", cycle)
		}
		// Drive the bit-blasted input.
		in2 := circuit.Inputs{}
		for bit := 0; bit < 6; bit++ {
			in2["in["+string(rune('0'+bit))+"]"] = (iv >> uint(bit)) & 1
		}
		sim1.Step(circuit.Inputs{"in": iv})
		sim2.Step(in2)
	}
}

func TestParseComments(t *testing.T) {
	model := "; leading comment\n1 sort bitvec 1 ; trailing\n\n2 input 1 x\n"
	if _, err := ParseString(model); err != nil {
		t.Fatal(err)
	}
}

func TestParseFromReaderError(t *testing.T) {
	if _, err := Parse(strings.NewReader("1 sort bitvec 1\n2 state 1\n")); err == nil {
		t.Fatal("state without next must fail Build")
	}
}
