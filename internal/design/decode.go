package design

import (
	"hhoudini/internal/circuit"
	"hhoudini/internal/isa"
)

// XLEN is the datapath width of the cores in this package. The ISA
// encodings remain the standard 32-bit RV32 formats; architectural values
// are truncated to XLEN bits (a narrow datapath keeps decision-procedure
// queries small without changing any of the timing structure the analysis
// reasons about).
const XLEN = 16

// NRegs is the number of architectural registers implemented by the cores
// (register indices are the low bits of the standard 5-bit fields; the
// cores implement x0..x7).
const NRegs = 8

const regW = 3 // log2(NRegs)

// decoded carries the combinational decode of a 32-bit instruction word.
type decoded struct {
	instr circuit.Word // the raw 32-bit word

	match map[isa.Op]circuit.Signal // per-op match signal
	known circuit.Signal            // any op matched

	rd, rs1, rs2 circuit.Word // 3-bit register indices
	imm          circuit.Word // XLEN-bit immediate (format-selected)

	isALU    circuit.Signal // single-cycle integer ops incl. lui
	isAuipc  circuit.Signal
	isMul    circuit.Signal
	isDiv    circuit.Signal
	isLoad   circuit.Signal
	isStore  circuit.Signal
	isBranch circuit.Signal
	isJump   circuit.Signal
	writesRd circuit.Signal
	usesRs1  circuit.Signal
	usesRs2  circuit.Signal

	uop circuit.Word // dense uop code (the isa.Op value), uopW bits
}

// uopW is the width of the dense uop encoding used by the OoO core.
const uopW = 6

// UopCode returns the dense uop encoding of an op (its isa.Op value).
func UopCode(op isa.Op) uint64 { return uint64(op) }

// decode builds the combinational decoder for a 32-bit instruction word.
func decode(b *circuit.Builder, instr circuit.Word) *decoded {
	d := &decoded{instr: instr, match: make(map[isa.Op]circuit.Signal)}

	matchPat := func(mask, match uint32) circuit.Signal {
		var bits []circuit.Signal
		acc := circuit.True
		for i := 0; i < 32; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			bit := instr[i]
			if match&(1<<uint(i)) == 0 {
				bit = bit.Not()
			}
			bits = append(bits, bit)
		}
		for _, s := range bits {
			acc = b.And2(acc, s)
		}
		return acc
	}

	known := circuit.False
	for _, op := range isa.AllOps() {
		m, v := isa.Pattern(op)
		sig := matchPat(m, v)
		d.match[op] = sig
		known = b.Or2(known, sig)
	}
	d.known = known

	anyOf := func(ops ...isa.Op) circuit.Signal {
		acc := circuit.False
		for _, op := range ops {
			acc = b.Or2(acc, d.match[op])
		}
		return acc
	}

	d.isAuipc = d.match[isa.OpAuipc]
	d.isALU = anyOf(isa.OpAdd, isa.OpSub, isa.OpSll, isa.OpSlt, isa.OpSltu,
		isa.OpXor, isa.OpSrl, isa.OpSra, isa.OpOr, isa.OpAnd,
		isa.OpAddi, isa.OpSlti, isa.OpSltiu, isa.OpXori, isa.OpOri, isa.OpAndi,
		isa.OpSlli, isa.OpSrli, isa.OpSrai, isa.OpLui, isa.OpAuipc)
	d.isMul = anyOf(isa.OpMul, isa.OpMulh, isa.OpMulhsu, isa.OpMulhu)
	d.isDiv = anyOf(isa.OpDiv, isa.OpDivu, isa.OpRem, isa.OpRemu)
	d.isLoad = anyOf(isa.OpLb, isa.OpLh, isa.OpLw, isa.OpLbu, isa.OpLhu)
	d.isStore = anyOf(isa.OpSb, isa.OpSh, isa.OpSw)
	d.isBranch = anyOf(isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltu, isa.OpBgeu)
	d.isJump = anyOf(isa.OpJal, isa.OpJalr)

	d.writesRd = b.OrN(d.isALU, d.isMul, d.isDiv, d.isLoad, d.isJump)
	// U- and J-formats carry no rs1; everything else reads it (stores,
	// branches, loads, ALU reg/imm forms, jalr).
	noRs1 := anyOf(isa.OpLui, isa.OpAuipc, isa.OpJal)
	d.usesRs1 = b.And2(d.known, noRs1.Not())
	rs2Ops := anyOf(isa.OpAdd, isa.OpSub, isa.OpSll, isa.OpSlt, isa.OpSltu,
		isa.OpXor, isa.OpSrl, isa.OpSra, isa.OpOr, isa.OpAnd,
		isa.OpMul, isa.OpMulh, isa.OpMulhsu, isa.OpMulhu,
		isa.OpDiv, isa.OpDivu, isa.OpRem, isa.OpRemu,
		isa.OpSb, isa.OpSh, isa.OpSw,
		isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltu, isa.OpBgeu)
	d.usesRs2 = rs2Ops

	d.rd = b.Extract(instr, 7+regW-1, 7)
	d.rs1 = b.Extract(instr, 15+regW-1, 15)
	d.rs2 = b.Extract(instr, 20+regW-1, 20)

	// Immediates, truncated/sign-extended to XLEN bits.
	immI := b.SignExt(b.Extract(instr, 31, 20), XLEN)
	immS := b.SignExt(b.Concat(b.Extract(instr, 11, 7), b.Extract(instr, 31, 25)), XLEN)
	immB := b.SignExt(b.Concat(
		circuit.Word{circuit.False},
		b.Extract(instr, 11, 8),
		b.Extract(instr, 30, 25),
		b.Extract(instr, 7, 7),
		b.Extract(instr, 31, 31)), XLEN)
	// U-type: imm[31:12] << 12, truncated to XLEN.
	immU := b.Concat(b.Const(0, 12), b.Extract(instr, 12+XLEN-12-1, 12))
	immJ := b.SignExt(b.Concat(
		circuit.Word{circuit.False},
		b.Extract(instr, 30, 21),
		b.Extract(instr, 20, 20),
		b.Extract(instr, 16, 12), // truncated J imm high bits within XLEN
	), XLEN)

	isU := anyOf(isa.OpLui, isa.OpAuipc)
	isS := d.isStore
	isB := d.isBranch
	isJ := d.match[isa.OpJal]
	imm := immI
	imm = b.MuxW(isS, immS, imm)
	imm = b.MuxW(isB, immB, imm)
	imm = b.MuxW(isU, immU, imm)
	imm = b.MuxW(isJ, immJ, imm)
	d.imm = imm

	// Dense uop code: OR of one-hot-masked constants.
	uop := b.Const(0, uopW)
	for _, op := range isa.AllOps() {
		uop = b.OrW(uop, b.MaskW(d.match[op], b.Const(UopCode(op), uopW)))
	}
	d.uop = uop

	return d
}

// aluResult computes the single-cycle integer result for the decoded
// instruction: op1 (rs1 value), opb (rs2 value or immediate), pc.
func aluResult(b *circuit.Builder, d *decoded, op1, op2, pc circuit.Word) circuit.Word {
	useImm := b.OrN(d.match[isa.OpAddi], d.match[isa.OpSlti], d.match[isa.OpSltiu],
		d.match[isa.OpXori], d.match[isa.OpOri], d.match[isa.OpAndi],
		d.match[isa.OpSlli], d.match[isa.OpSrli], d.match[isa.OpSrai])
	opb := b.MuxW(useImm, d.imm, op2)

	shamt := b.ZeroExt(b.Extract(opb, 3, 0), XLEN) // XLEN=16 → 4-bit shifts

	res := b.Const(0, XLEN)
	add := func(sel circuit.Signal, val circuit.Word) {
		res = b.OrW(res, b.MaskW(sel, val))
	}
	add(b.Or2(d.match[isa.OpAdd], d.match[isa.OpAddi]), b.Add(op1, opb))
	add(d.match[isa.OpSub], b.Sub(op1, opb))
	add(b.Or2(d.match[isa.OpAnd], d.match[isa.OpAndi]), b.AndW(op1, opb))
	add(b.Or2(d.match[isa.OpOr], d.match[isa.OpOri]), b.OrW(op1, opb))
	add(b.Or2(d.match[isa.OpXor], d.match[isa.OpXori]), b.XorW(op1, opb))
	add(b.Or2(d.match[isa.OpSll], d.match[isa.OpSlli]), b.Shl(op1, shamt))
	add(b.Or2(d.match[isa.OpSrl], d.match[isa.OpSrli]), b.Lshr(op1, shamt))
	add(b.Or2(d.match[isa.OpSra], d.match[isa.OpSrai]), b.Ashr(op1, shamt))
	add(b.Or2(d.match[isa.OpSlt], d.match[isa.OpSlti]),
		b.ZeroExt(circuit.Word{b.Slt(op1, opb)}, XLEN))
	add(b.Or2(d.match[isa.OpSltu], d.match[isa.OpSltiu]),
		b.ZeroExt(circuit.Word{b.Ult(op1, opb)}, XLEN))
	add(d.match[isa.OpLui], d.imm)
	add(d.isAuipc, b.Add(pc, d.imm))
	add(d.isJump, b.Add(pc, b.Const(4, XLEN))) // link address
	return res
}

// branchTaken computes the branch condition for the decoded instruction.
func branchTaken(b *circuit.Builder, d *decoded, op1, op2 circuit.Word) circuit.Signal {
	eq := b.Eq(op1, op2)
	lt := b.Slt(op1, op2)
	ltu := b.Ult(op1, op2)
	taken := circuit.False
	or := func(sel, cond circuit.Signal) { taken = b.Or2(taken, b.And2(sel, cond)) }
	or(d.match[isa.OpBeq], eq)
	or(d.match[isa.OpBne], eq.Not())
	or(d.match[isa.OpBlt], lt)
	or(d.match[isa.OpBge], lt.Not())
	or(d.match[isa.OpBltu], ltu)
	or(d.match[isa.OpBgeu], ltu.Not())
	return b.And2(d.isBranch, taken)
}

// regRead builds an NRegs-way read port over the architectural register
// file words (index 0 reads as zero).
func regRead(b *circuit.Builder, rf []circuit.Word, idx circuit.Word) circuit.Word {
	out := b.Const(0, XLEN)
	for r := 1; r < NRegs; r++ {
		sel := b.EqConst(idx, uint64(r))
		out = b.MuxW(sel, rf[r], out)
	}
	return out
}
