// Package design contains the processor designs evaluated in the paper's
// experiments, rebuilt from scratch on the circuit substrate:
//
//   - ExecStage: the worked example of Appendix C (an ADD functional unit
//     next to a zero-skip iterative multiplier).
//   - InOrder ("rocket-class"): a scalar in-order pipeline standing in for
//     Rocketchip — zero-skip multiplier, variable-latency memory unit,
//     branches; verifiable with no expert annotations.
//   - OoO ("boom-class"): an out-of-order core standing in for BOOM —
//     issue queue and ROB tables with valid bits and stale entries
//     (requiring example masking), decoded uops (requiring InSafeUop
//     annotations), a constant-latency pipelined multiplier (making mul
//     safe), and an auipc issue quirk that makes auipc unverifiable, in
//     four size variants Small/Medium/Large/Mega.
//
// Each design is packaged as a Target: the circuit plus the metadata the
// VeloCT analysis needs (observable signals, instruction encoding, secret
// registers, safe-set patterns, expert annotations).
package design

import (
	"fmt"
	"math/rand"

	"hhoudini/internal/circuit"
	"hhoudini/internal/isa"
)

// MaskRule is an example-masking annotation (§5.2.1): when ValidReg holds 0
// in a positive example, the listed field registers are reset to their
// declared reset values before the example is used for mining.
type MaskRule struct {
	ValidReg string
	Fields   []string
}

// UopRule is an expert predicate annotation (§6.2): the named register may
// only hold one of the listed constant values (an EqConstSet / InSafeUop
// style predicate). Rules are validated against positive examples before
// use, so incorrect annotations cannot cause unsoundness.
type UopRule struct {
	Reg    string
	Values []uint64
}

// Target couples a circuit with the analysis-facing metadata of a design
// under SISP verification.
type Target struct {
	// Name identifies the design ("ExecStage", "InOrder", "SmallOoO", ...).
	Name string
	// Circuit is the single-copy design (the analysis builds the miter).
	Circuit *circuit.Circuit
	// Observable lists base register names visible to the attacker
	// (Definition 4.2); the property is Eq over each.
	Observable []string
	// InstrPort is the input port receiving one instruction word per cycle.
	InstrPort string
	// Nop is the word meaning "no instruction" (ε).
	Nop uint64
	// Ops lists the mnemonics the design implements.
	Ops []string
	// CandidateSafe lists the mnemonics worth testing for safety;
	// memory and control-flow instructions are categorized unsafe a
	// priori, as the paper does (§6.4).
	CandidateSafe []string
	// Encode produces an instruction word for a mnemonic with randomized
	// operand registers/immediates.
	Encode func(mn string, rng *rand.Rand) (uint64, error)
	// EncodeDep is Encode with pinned operand registers; example
	// generation uses it to build dependency-chained bursts that fill the
	// deep backend structures of large designs. Optional.
	EncodeDep func(mn string, rd, rs1, rs2 int, rng *rand.Rand) (uint64, error)
	// SecretRegs are the registers holding secret data (V_sec); example
	// generation gives them differing values in the two copies.
	SecretRegs []string
	// SafePatterns generates the InSafeSet mask/match patterns for a
	// proposed safe set (always including the Nop word).
	SafePatterns func(safe []string) []isa.MaskMatch
	// MaxLatency bounds the cycles an instruction may stay in flight; used
	// for NOP padding in example generation.
	MaxLatency int
	// Masks are the example-masking annotations (empty = none needed).
	Masks []MaskRule
	// UopRules generates the expert uop-constraint annotations for a
	// proposed safe set (nil = none needed).
	UopRules func(safe []string) []UopRule
	// DirtyPreamble returns unsafe instruction words executed (fully
	// padded) before the instruction under analysis, mimicking the
	// paper's start-up code that leaves residue in pipeline tables.
	// May be nil.
	DirtyPreamble func(rng *rand.Rand) []uint64
}

// HasOp reports whether the target implements the mnemonic.
func (t *Target) HasOp(mn string) bool {
	for _, o := range t.Ops {
		if o == mn {
			return true
		}
	}
	return false
}

// EncodeOrDie wraps Encode for tests and examples with known-good inputs.
func (t *Target) EncodeOrDie(mn string, rng *rand.Rand) uint64 {
	w, err := t.Encode(mn, rng)
	if err != nil {
		panic(fmt.Sprintf("design %s: %v", t.Name, err))
	}
	return w
}
