package design

import (
	"fmt"
	"math/rand"

	"hhoudini/internal/circuit"
	"hhoudini/internal/isa"
)

// OoOVariant selects one of the four "boom-class" size configurations,
// mirroring the paper's SmallBOOM..MegaBOOM sweep.
type OoOVariant struct {
	Name       string
	FetchQueue int // fetch-buffer depth
	IQ         int // issue-queue entries
	ROB        int // reorder-buffer entries
	// DebugCounter adds a free-running cycle counter register that nothing
	// reads — the archetypal "instrumentation-only" RTL edit. It perturbs
	// the whole-circuit fingerprint while leaving every verification
	// target's fan-in cone untouched, so it is the clean demonstrator for
	// cone-level cache transfer (a whole-circuit-keyed cache restarts cold,
	// a cone-keyed one stays fully warm).
	DebugCounter bool
}

// The four evaluated variants (Table 1's design-size axis).
var (
	SmallOoO  = OoOVariant{Name: "SmallOoO", FetchQueue: 2, IQ: 4, ROB: 8}
	MediumOoO = OoOVariant{Name: "MediumOoO", FetchQueue: 3, IQ: 6, ROB: 12}
	LargeOoO  = OoOVariant{Name: "LargeOoO", FetchQueue: 4, IQ: 8, ROB: 16}
	MegaOoO   = OoOVariant{Name: "MegaOoO", FetchQueue: 6, IQ: 12, ROB: 24}
)

// OoOVariants lists the variants smallest-first.
func OoOVariants() []OoOVariant {
	return []OoOVariant{SmallOoO, MediumOoO, LargeOoO, MegaOoO}
}

func log2ceil(n int) int {
	w := 1
	for 1<<uint(w) < n {
		w++
	}
	return w
}

// uop class membership helpers (over the dense uop encoding).
var (
	aluClassOps = []isa.Op{isa.OpAdd, isa.OpSub, isa.OpSll, isa.OpSlt, isa.OpSltu,
		isa.OpXor, isa.OpSrl, isa.OpSra, isa.OpOr, isa.OpAnd,
		isa.OpAddi, isa.OpSlti, isa.OpSltiu, isa.OpXori, isa.OpOri, isa.OpAndi,
		isa.OpSlli, isa.OpSrli, isa.OpSrai, isa.OpLui,
		isa.OpDiv, isa.OpDivu, isa.OpRem, isa.OpRemu} // divider shares the ALU
	mulClassOps = []isa.Op{isa.OpMul, isa.OpMulh, isa.OpMulhsu, isa.OpMulhu}
	memClassOps = []isa.Op{isa.OpLb, isa.OpLh, isa.OpLw, isa.OpLbu, isa.OpLhu,
		isa.OpSb, isa.OpSh, isa.OpSw}
	jmpClassOps = []isa.Op{isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge,
		isa.OpBltu, isa.OpBgeu, isa.OpJal, isa.OpJalr, isa.OpAuipc}
	divClassOps = []isa.Op{isa.OpDiv, isa.OpDivu, isa.OpRem, isa.OpRemu}
	brClassOps  = []isa.Op{isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltu, isa.OpBgeu}
)

func uopIs(b *circuit.Builder, uop circuit.Word, ops ...isa.Op) circuit.Signal {
	acc := circuit.False
	for _, op := range ops {
		acc = b.Or2(acc, b.EqConst(uop, UopCode(op)))
	}
	return acc
}

// aluResultFromUop computes the ALU/div result from a uop code and operand
// values (the OoO core has discarded the raw instruction word by FU time).
func aluResultFromUop(b *circuit.Builder, uop circuit.Word, a, c, imm circuit.Word) circuit.Word {
	useImm := uopIs(b, uop, isa.OpAddi, isa.OpSlti, isa.OpSltiu, isa.OpXori,
		isa.OpOri, isa.OpAndi, isa.OpSlli, isa.OpSrli, isa.OpSrai)
	opb := b.MuxW(useImm, imm, c)
	shamt := b.ZeroExt(b.Extract(opb, 3, 0), XLEN)
	res := b.Const(0, XLEN)
	add := func(sel circuit.Signal, val circuit.Word) { res = b.OrW(res, b.MaskW(sel, val)) }
	add(uopIs(b, uop, isa.OpAdd, isa.OpAddi), b.Add(a, opb))
	add(uopIs(b, uop, isa.OpSub), b.Sub(a, opb))
	add(uopIs(b, uop, isa.OpAnd, isa.OpAndi), b.AndW(a, opb))
	add(uopIs(b, uop, isa.OpOr, isa.OpOri), b.OrW(a, opb))
	add(uopIs(b, uop, isa.OpXor, isa.OpXori), b.XorW(a, opb))
	add(uopIs(b, uop, isa.OpSll, isa.OpSlli), b.Shl(a, shamt))
	add(uopIs(b, uop, isa.OpSrl, isa.OpSrli), b.Lshr(a, shamt))
	add(uopIs(b, uop, isa.OpSra, isa.OpSrai), b.Ashr(a, shamt))
	add(uopIs(b, uop, isa.OpSlt, isa.OpSlti), b.ZeroExt(circuit.Word{b.Slt(a, opb)}, XLEN))
	add(uopIs(b, uop, isa.OpSltu, isa.OpSltiu), b.ZeroExt(circuit.Word{b.Ult(a, opb)}, XLEN))
	add(uopIs(b, uop, isa.OpLui), imm)
	add(uopIs(b, uop, divClassOps...), b.XorW(a, c)) // placeholder quotient
	return res
}

func branchTakenFromUop(b *circuit.Builder, uop circuit.Word, a, c circuit.Word) circuit.Signal {
	eq := b.Eq(a, c)
	lt := b.Slt(a, c)
	ltu := b.Ult(a, c)
	taken := circuit.False
	or := func(op isa.Op, cond circuit.Signal) {
		taken = b.Or2(taken, b.And2(b.EqConst(uop, UopCode(op)), cond))
	}
	or(isa.OpBeq, eq)
	or(isa.OpBne, eq.Not())
	or(isa.OpBlt, lt)
	or(isa.OpBge, lt.Not())
	or(isa.OpBltu, ltu)
	or(isa.OpBgeu, ltu.Not())
	return taken
}

// NewOoO builds the "boom-class" out-of-order core:
//
//   - a fetch queue feeding in-order dispatch into an issue queue and a
//     reorder buffer (in-order retire, out-of-order issue via a
//     register-file scoreboard);
//   - a unified ALU that also executes divides with divisor-dependent
//     latency (this is why the ALU-opcode register needs the paper's
//     expert EqConstSet annotation);
//   - a fully pipelined 3-cycle multiplier with constant latency — the
//     reason mul-family instructions are safe on this core (Table 2);
//   - a memory unit with address-dependent latency;
//   - a jump/branch/auipc unit whose auipc path reads the register file
//     through the rs1 field bits (a decode-sharing quirk) and stalls one
//     extra cycle when that — secret — value is odd: auipc is therefore
//     unverifiable, matching the paper's BOOM finding;
//   - issue-queue and ROB entries whose payload fields persist after the
//     valid bit clears, which is what makes example masking (§5.2.1)
//     necessary.
//
// The attacker observes the retirement strobe.
func NewOoO(v OoOVariant) (*Target, error) {
	if v.FetchQueue < 1 || v.IQ < 1 || v.ROB < 2 {
		return nil, fmt.Errorf("design: bad OoO variant %+v", v)
	}
	robW := log2ceil(v.ROB)

	b := circuit.NewBuilder()
	instrIn := b.Input("instr", 32)

	if v.DebugCounter {
		// Declared before any architectural state so it also shifts every
		// global node id — the strongest version of the "unrelated edit"
		// the cone-keyed cache must be invariant to.
		dbg := b.Register("dbg_cycles", 8, 0)
		b.SetNext("dbg_cycles", b.Inc(dbg))
	}

	// Architectural state.
	rf := make([]circuit.Word, NRegs)
	busy := make([]circuit.Word, NRegs)
	for r := 1; r < NRegs; r++ {
		rf[r] = b.Register(fmt.Sprintf("rf%d", r), XLEN, 0)
		busy[r] = b.Register(fmt.Sprintf("busy%d", r), 1, 0)
	}
	rf[0] = b.Const(0, XLEN)
	busy[0] = circuit.Word{circuit.False}
	pc := b.Register("pc", XLEN, 0)

	// Fetch queue.
	fq := make([]circuit.Word, v.FetchQueue)
	fqv := make([]circuit.Word, v.FetchQueue)
	for i := range fq {
		fq[i] = b.Register(fmt.Sprintf("fq%d", i), 32, uint64(isa.NOP()))
		fqv[i] = b.Register(fmt.Sprintf("fqv%d", i), 1, 0)
	}

	// Issue queue.
	type iqEntry struct {
		v, w1, w2           circuit.Word // 1-bit each: valid, waiting-on-rs1/rs2
		op                  circuit.Word // uopW
		rd, rs1, rs2        circuit.Word // regW
		imm, pc             circuit.Word // XLEN
		rob                 circuit.Word // robW
		vN, opN, rdN        string
		rs1N, rs2N, immN    string
		pcN, robN, w1N, w2N string
	}
	iq := make([]iqEntry, v.IQ)
	for i := range iq {
		e := &iq[i]
		e.vN = fmt.Sprintf("iqv%d", i)
		e.opN = fmt.Sprintf("iqop%d", i)
		e.rdN = fmt.Sprintf("iqrd%d", i)
		e.rs1N = fmt.Sprintf("iqrs1%d", i)
		e.rs2N = fmt.Sprintf("iqrs2%d", i)
		e.immN = fmt.Sprintf("iqimm%d", i)
		e.pcN = fmt.Sprintf("iqpc%d", i)
		e.robN = fmt.Sprintf("iqrob%d", i)
		e.w1N = fmt.Sprintf("iqw1_%d", i)
		e.w2N = fmt.Sprintf("iqw2_%d", i)
		e.v = b.Register(e.vN, 1, 0)
		e.op = b.Register(e.opN, uopW, 0)
		e.rd = b.Register(e.rdN, regW, 0)
		e.rs1 = b.Register(e.rs1N, regW, 0)
		e.rs2 = b.Register(e.rs2N, regW, 0)
		e.imm = b.Register(e.immN, XLEN, 0)
		e.pc = b.Register(e.pcN, XLEN, 0)
		e.rob = b.Register(e.robN, robW, 0)
		e.w1 = b.Register(e.w1N, 1, 0)
		e.w2 = b.Register(e.w2N, 1, 0)
	}

	// Reorder buffer.
	robv := make([]circuit.Word, v.ROB)
	robd := make([]circuit.Word, v.ROB)
	robop := make([]circuit.Word, v.ROB)
	for i := 0; i < v.ROB; i++ {
		robv[i] = b.Register(fmt.Sprintf("robv%d", i), 1, 0)
		robd[i] = b.Register(fmt.Sprintf("robd%d", i), 1, 0)
		robop[i] = b.Register(fmt.Sprintf("robop%d", i), uopW, 0)
	}
	head := b.Register("rob_head", robW, 0)
	tail := b.Register("rob_tail", robW, 0)

	// ALU/div unit.
	aluBusy := b.Register("alu_busy", 1, 0)
	aluCnt := b.Register("alu_cnt", 2, 0)
	aluLat := b.Register("alu_lat", 2, 0)
	aluOp := b.Register("alu_op", uopW, 0)
	aluRd := b.Register("alu_rd", regW, 0)
	aluRob := b.Register("alu_rob", robW, 0)
	aluRes := b.Register("alu_res", XLEN, 0)

	// Pipelined multiplier (3 constant-latency stages).
	const mulDepth = 3
	mv := make([]circuit.Word, mulDepth)
	mrd := make([]circuit.Word, mulDepth)
	mrob := make([]circuit.Word, mulDepth)
	mres := make([]circuit.Word, mulDepth)
	for k := 0; k < mulDepth; k++ {
		mv[k] = b.Register(fmt.Sprintf("mulv%d", k), 1, 0)
		mrd[k] = b.Register(fmt.Sprintf("mulrd%d", k), regW, 0)
		mrob[k] = b.Register(fmt.Sprintf("mulrob%d", k), robW, 0)
		mres[k] = b.Register(fmt.Sprintf("mulres%d", k), XLEN, 0)
	}

	// Memory unit.
	memBusy := b.Register("mem_busy", 1, 0)
	memCnt := b.Register("mem_cnt", 2, 0)
	memLat := b.Register("mem_lat", 2, 0)
	memRd := b.Register("mem_rd", regW, 0)
	memRob := b.Register("mem_rob", robW, 0)
	memRes := b.Register("mem_res", XLEN, 0)
	memWen := b.Register("mem_wen", 1, 0)

	// Jump/branch/auipc unit.
	jmpBusy := b.Register("jmp_busy", 1, 0)
	jmpCnt := b.Register("jmp_cnt", 1, 0)
	jmpLat := b.Register("jmp_lat", 1, 0)
	jmpRd := b.Register("jmp_rd", regW, 0)
	jmpRob := b.Register("jmp_rob", robW, 0)
	jmpRes := b.Register("jmp_res", XLEN, 0)
	jmpWen := b.Register("jmp_wen", 1, 0)
	jmpTaken := b.Register("jmp_taken", 1, 0)
	jmpTgt := b.Register("jmp_tgt", XLEN, 0)

	retire := b.Register("retire_valid", 1, 0)
	_ = retire

	// --- Completion strobes --------------------------------------------
	aluDone := b.And2(aluBusy[0], b.Eq(aluCnt, aluLat))
	memDone := b.And2(memBusy[0], b.Eq(memCnt, memLat))
	jmpDone := b.And2(jmpBusy[0], b.Eq(jmpCnt, jmpLat))
	mulDone := mv[mulDepth-1][0]
	flush := b.And2(jmpDone, jmpTaken[0])

	// --- Dispatch -------------------------------------------------------
	dd := decode(b, fq[0])
	iqFreeAny := circuit.False
	for i := range iq {
		iqFreeAny = b.Or2(iqFreeAny, iq[i].v[0].Not())
	}
	robAt := func(regs []circuit.Word, idx circuit.Word) circuit.Signal {
		out := circuit.False
		for i := 0; i < v.ROB; i++ {
			out = b.Or2(out, b.And2(b.EqConst(idx, uint64(i)), regs[i][0]))
		}
		return out
	}
	robFree := robAt(robv, tail).Not()
	// Canonical NOPs (addi with rd == x0) take a fast path: they allocate a
	// ROB entry born "done" and skip the issue queue, so a NOP-padded
	// instruction stream does not congest the backend.
	nopLike := b.And2(b.EqConst(dd.uop, UopCode(isa.OpAddi)), b.IsZero(dd.rd))
	dispatch := b.AndN(fqv[0][0], robFree, flush.Not(),
		b.Or2(nopLike, iqFreeAny))
	dispatchIQ := b.And2(dispatch, nopLike.Not())

	// --- Issue selection -------------------------------------------------
	busyOf := func(idx circuit.Word) circuit.Signal {
		out := circuit.False
		for r := 1; r < NRegs; r++ {
			out = b.Or2(out, b.And2(b.EqConst(idx, uint64(r)), busy[r][0]))
		}
		return out
	}
	ready := make([]circuit.Signal, v.IQ)
	isALUc := make([]circuit.Signal, v.IQ)
	isMULc := make([]circuit.Signal, v.IQ)
	isMEMc := make([]circuit.Signal, v.IQ)
	isJMPc := make([]circuit.Signal, v.IQ)
	for i := range iq {
		e := &iq[i]
		// Sticky wakeup: the waiting bits were captured from the busy
		// scoreboard at dispatch (before the entry's own rd was marked
		// busy, so self-dependent instructions cannot deadlock) and clear
		// once the producer's busy bit drops.
		srcOK := b.And2(e.w1[0].Not(), e.w2[0].Not())
		ready[i] = b.And2(e.v[0], srcOK)
		isALUc[i] = uopIs(b, e.op, aluClassOps...)
		isMULc[i] = uopIs(b, e.op, mulClassOps...)
		isMEMc[i] = uopIs(b, e.op, memClassOps...)
		isJMPc[i] = uopIs(b, e.op, jmpClassOps...)
	}
	grantClass := func(class []circuit.Signal, unitFree circuit.Signal) []circuit.Signal {
		grants := make([]circuit.Signal, v.IQ)
		taken := circuit.False
		for i := 0; i < v.IQ; i++ {
			want := b.And2(ready[i], class[i])
			grants[i] = b.AndN(unitFree, want, taken.Not())
			taken = b.Or2(taken, want)
		}
		return grants
	}
	// The ALU accepts a new op on the same cycle its previous op completes
	// (back-to-back single-cycle throughput).
	aluDoneEarly := aluDone
	aluG := grantClass(isALUc, b.Or2(aluBusy[0].Not(), aluDoneEarly))
	mulG := grantClass(isMULc, circuit.True) // fully pipelined
	memG := grantClass(isMEMc, memBusy[0].Not())
	jmpG := grantClass(isJMPc, jmpBusy[0].Not())

	anyG := func(gs []circuit.Signal) circuit.Signal { return b.OrN(gs...) }
	selField := func(gs []circuit.Signal, field func(*iqEntry) circuit.Word, width int) circuit.Word {
		out := b.Const(0, width)
		for i := range iq {
			out = b.OrW(out, b.MaskW(gs[i], field(&iq[i])))
		}
		return out
	}
	type granted struct {
		fire              circuit.Signal
		uop, rd, rs1, rs2 circuit.Word
		imm, pcw, rob     circuit.Word
		op1, op2          circuit.Word
	}
	sel := func(gs []circuit.Signal) granted {
		g := granted{
			fire: anyG(gs),
			uop:  selField(gs, func(e *iqEntry) circuit.Word { return e.op }, uopW),
			rd:   selField(gs, func(e *iqEntry) circuit.Word { return e.rd }, regW),
			rs1:  selField(gs, func(e *iqEntry) circuit.Word { return e.rs1 }, regW),
			rs2:  selField(gs, func(e *iqEntry) circuit.Word { return e.rs2 }, regW),
			imm:  selField(gs, func(e *iqEntry) circuit.Word { return e.imm }, XLEN),
			pcw:  selField(gs, func(e *iqEntry) circuit.Word { return e.pc }, XLEN),
			rob:  selField(gs, func(e *iqEntry) circuit.Word { return e.rob }, robW),
		}
		g.op1 = regRead(b, rf, g.rs1)
		g.op2 = regRead(b, rf, g.rs2)
		return g
	}
	gALU := sel(aluG)
	gMUL := sel(mulG)
	gMEM := sel(memG)
	gJMP := sel(jmpG)

	// --- ALU/div unit next state ----------------------------------------
	aluIsDiv := uopIs(b, gALU.uop, divClassOps...)
	b.SetNext("alu_busy", circuit.Word{b.Or2(gALU.fire, b.And2(aluBusy[0], aluDone.Not()))})
	b.SetNext("alu_cnt", b.MuxW(gALU.fire, b.Const(0, 2),
		b.MuxW(aluBusy[0], b.Inc(aluCnt), b.Const(0, 2))))
	b.SetNext("alu_lat", b.MuxW(gALU.fire,
		b.MuxW(aluIsDiv, b.Extract(gALU.op2, 1, 0), b.Const(0, 2)), aluLat))
	b.SetNext("alu_op", b.MuxW(gALU.fire, gALU.uop, aluOp))
	b.SetNext("alu_rd", b.MuxW(gALU.fire, gALU.rd, aluRd))
	b.SetNext("alu_rob", b.MuxW(gALU.fire, gALU.rob, aluRob))
	b.SetNext("alu_res", b.MuxW(gALU.fire,
		aluResultFromUop(b, gALU.uop, gALU.op1, gALU.op2, gALU.imm), aluRes))
	aluWen := b.And2(uopIs(b, aluOp, aluClassOps...), b.IsZero(aluRd).Not())

	// --- Multiplier pipe --------------------------------------------------
	b.SetNext("mulv0", circuit.Word{gMUL.fire})
	b.SetNext("mulrd0", b.MuxW(gMUL.fire, gMUL.rd, mrd[0]))
	b.SetNext("mulrob0", b.MuxW(gMUL.fire, gMUL.rob, mrob[0]))
	b.SetNext("mulres0", b.MuxW(gMUL.fire, b.Mul(gMUL.op1, gMUL.op2), mres[0]))
	for k := 1; k < mulDepth; k++ {
		b.SetNext(fmt.Sprintf("mulv%d", k), mv[k-1])
		b.SetNext(fmt.Sprintf("mulrd%d", k), mrd[k-1])
		b.SetNext(fmt.Sprintf("mulrob%d", k), mrob[k-1])
		b.SetNext(fmt.Sprintf("mulres%d", k), mres[k-1])
	}
	mulWen := b.And2(mulDone, b.IsZero(mrd[mulDepth-1]).Not())

	// --- Memory unit -------------------------------------------------------
	memAddr := b.Add(gMEM.op1, gMEM.imm)
	memIsLoad := uopIs(b, gMEM.uop, isa.OpLb, isa.OpLh, isa.OpLw, isa.OpLbu, isa.OpLhu)
	b.SetNext("mem_busy", circuit.Word{b.Or2(gMEM.fire, b.And2(memBusy[0], memDone.Not()))})
	b.SetNext("mem_cnt", b.MuxW(memBusy[0], b.Inc(memCnt), b.Const(0, 2)))
	b.SetNext("mem_lat", b.MuxW(gMEM.fire, b.Extract(memAddr, 1, 0), memLat))
	b.SetNext("mem_rd", b.MuxW(gMEM.fire, gMEM.rd, memRd))
	b.SetNext("mem_rob", b.MuxW(gMEM.fire, gMEM.rob, memRob))
	b.SetNext("mem_res", b.MuxW(gMEM.fire, b.XorW(memAddr, b.Const(0xBEEF, XLEN)), memRes))
	b.SetNext("mem_wen", b.MuxW(gMEM.fire, circuit.Word{memIsLoad}, memWen))
	memWenOK := b.And2(memWen[0], b.IsZero(memRd).Not())

	// --- Jump/branch/auipc unit -------------------------------------------
	jmpIsAuipc := b.EqConst(gJMP.uop, UopCode(isa.OpAuipc))
	jmpIsBr := uopIs(b, gJMP.uop, brClassOps...)
	jmpIsJump := uopIs(b, gJMP.uop, isa.OpJal, isa.OpJalr)
	// The auipc quirk: the unit reads the register file through the rs1
	// field bits (which alias immediate bits for U-type instructions) and
	// takes an extra cycle when the — secret — value read is odd.
	quirkBit := b.Bit(gJMP.op1, 0)
	b.SetNext("jmp_busy", circuit.Word{b.Or2(gJMP.fire, b.And2(jmpBusy[0], jmpDone.Not()))})
	b.SetNext("jmp_cnt", b.MuxW(jmpBusy[0], b.Inc(jmpCnt), b.Const(0, 1)))
	b.SetNext("jmp_lat", b.MuxW(gJMP.fire,
		circuit.Word{b.And2(jmpIsAuipc, quirkBit)}, jmpLat))
	b.SetNext("jmp_rd", b.MuxW(gJMP.fire, gJMP.rd, jmpRd))
	b.SetNext("jmp_rob", b.MuxW(gJMP.fire, gJMP.rob, jmpRob))
	linkOrAuipc := b.MuxW(jmpIsAuipc, b.Add(gJMP.pcw, gJMP.imm), b.Add(gJMP.pcw, b.Const(4, XLEN)))
	b.SetNext("jmp_res", b.MuxW(gJMP.fire, linkOrAuipc, jmpRes))
	b.SetNext("jmp_wen", b.MuxW(gJMP.fire,
		circuit.Word{b.And2(b.Or2(jmpIsJump, jmpIsAuipc), b.IsZero(gJMP.rd).Not())}, jmpWen))
	takenNow := b.Or2(b.And2(jmpIsBr, branchTakenFromUop(b, gJMP.uop, gJMP.op1, gJMP.op2)), jmpIsJump)
	b.SetNext("jmp_taken", b.MuxW(gJMP.fire, circuit.Word{takenNow}, jmpTaken))
	jalrTgt := b.Add(gJMP.op1, gJMP.imm)
	brTgt := b.Add(gJMP.pcw, gJMP.imm)
	b.SetNext("jmp_tgt", b.MuxW(gJMP.fire,
		b.MuxW(b.EqConst(gJMP.uop, UopCode(isa.OpJalr)), jalrTgt, brTgt), jmpTgt))

	// --- Writeback ---------------------------------------------------------
	type writer struct {
		valid, wen circuit.Signal
		rd         circuit.Word
		res        circuit.Word
		rob        circuit.Word
	}
	writers := []writer{
		{aluDone, b.And2(aluDone, aluWen), aluRd, aluRes, aluRob},
		{mulDone, b.And2(mulDone, mulWen), mrd[mulDepth-1], mres[mulDepth-1], mrob[mulDepth-1]},
		{memDone, b.And2(memDone, memWenOK), memRd, memRes, memRob},
		{jmpDone, b.And2(jmpDone, b.And2(jmpWen[0], b.IsZero(jmpRd).Not())), jmpRd, jmpRes, jmpRob},
	}
	for r := 1; r < NRegs; r++ {
		cur := rf[r]
		curBusy := busy[r][0]
		for _, w := range writers {
			hit := b.And2(w.wen, b.EqConst(w.rd, uint64(r)))
			cur = b.MuxW(hit, w.res, cur)
			curBusy = b.Mux2(hit, circuit.False, curBusy)
		}
		setBusy := b.AndN(dispatch, dd.writesRd, b.EqConst(dd.rd, uint64(r)))
		curBusy = b.Mux2(setBusy, circuit.True, curBusy)
		b.SetNext(fmt.Sprintf("rf%d", r), cur)
		b.SetNext(fmt.Sprintf("busy%d", r), circuit.Word{curBusy})
	}

	// --- Retire --------------------------------------------------------------
	retireNow := b.And2(robAt(robv, head), robAt(robd, head))
	b.SetNext("retire_valid", circuit.Word{retireNow})
	incMod := func(x circuit.Word, n int) circuit.Word {
		wrap := b.EqConst(x, uint64(n-1))
		return b.MuxW(wrap, b.Const(0, len(x)), b.Inc(x))
	}
	b.SetNext("rob_head", b.MuxW(retireNow, incMod(head, v.ROB), head))
	b.SetNext("rob_tail", b.MuxW(dispatch, incMod(tail, v.ROB), tail))

	// --- ROB next state -------------------------------------------------------
	for i := 0; i < v.ROB; i++ {
		isHead := b.EqConst(head, uint64(i))
		isTail := b.EqConst(tail, uint64(i))
		vNext := robv[i][0]
		vNext = b.Mux2(b.And2(retireNow, isHead), circuit.False, vNext)
		vNext = b.Mux2(b.And2(dispatch, isTail), circuit.True, vNext)
		b.SetNext(fmt.Sprintf("robv%d", i), circuit.Word{vNext})

		dNext := robd[i][0]
		for _, w := range writers {
			dNext = b.Mux2(b.And2(w.valid, b.EqConst(w.rob, uint64(i))), circuit.True, dNext)
		}
		dNext = b.Mux2(b.And2(flush, robv[i][0]), circuit.True, dNext)
		dNext = b.Mux2(b.And2(dispatch, isTail), nopLike, dNext)
		b.SetNext(fmt.Sprintf("robd%d", i), circuit.Word{dNext})

		b.SetNext(fmt.Sprintf("robop%d", i),
			b.MuxW(b.And2(dispatch, isTail), dd.uop, robop[i]))
	}

	// --- Issue-queue next state ------------------------------------------------
	allocTaken := circuit.False
	for i := range iq {
		e := &iq[i]
		grantedI := b.OrN(aluG[i], mulG[i], memG[i], jmpG[i])
		free := e.v[0].Not()
		alloc := b.AndN(dispatchIQ, free, allocTaken.Not())
		allocTaken = b.Or2(allocTaken, free)

		vNext := b.And2(e.v[0], grantedI.Not())
		vNext = b.Or2(vNext, alloc)
		vNext = b.And2(vNext, flush.Not())
		b.SetNext(e.vN, circuit.Word{vNext})
		b.SetNext(e.opN, b.MuxW(alloc, dd.uop, e.op))
		b.SetNext(e.rdN, b.MuxW(alloc, dd.rd, e.rd))
		b.SetNext(e.rs1N, b.MuxW(alloc, dd.rs1, e.rs1))
		b.SetNext(e.rs2N, b.MuxW(alloc, dd.rs2, e.rs2))
		b.SetNext(e.immN, b.MuxW(alloc, dd.imm, e.imm))
		b.SetNext(e.pcN, b.MuxW(alloc, pc, e.pc))
		b.SetNext(e.robN, b.MuxW(alloc, tail, e.rob))
		w1Alloc := b.And2(dd.usesRs1, busyOf(dd.rs1))
		w2Alloc := b.And2(dd.usesRs2, busyOf(dd.rs2))
		b.SetNext(e.w1N, circuit.Word{b.Mux2(alloc, w1Alloc, b.And2(e.w1[0], busyOf(e.rs1)))})
		b.SetNext(e.w2N, circuit.Word{b.Mux2(alloc, w2Alloc, b.And2(e.w2[0], busyOf(e.rs2)))})
	}

	// --- Fetch queue next state --------------------------------------------------
	ind := decode(b, instrIn)
	enq := ind.known
	afterVal := make([]circuit.Word, v.FetchQueue)
	afterV := make([]circuit.Signal, v.FetchQueue)
	for i := 0; i < v.FetchQueue; i++ {
		if i+1 < v.FetchQueue {
			afterVal[i] = b.MuxW(dispatch, fq[i+1], fq[i])
			afterV[i] = b.Mux2(dispatch, fqv[i+1][0], fqv[i][0])
		} else {
			afterVal[i] = fq[i]
			afterV[i] = b.And2(dispatch.Not(), fqv[i][0])
		}
	}
	prefixValid := circuit.True
	for i := 0; i < v.FetchQueue; i++ {
		put := b.AndN(enq, afterV[i].Not(), prefixValid)
		prefixValid = b.And2(prefixValid, afterV[i])
		b.SetNext(fmt.Sprintf("fq%d", i), b.MuxW(put, instrIn, afterVal[i]))
		vNext := b.Or2(put, afterV[i])
		vNext = b.And2(vNext, flush.Not())
		b.SetNext(fmt.Sprintf("fqv%d", i), circuit.Word{vNext})
	}

	// --- PC ------------------------------------------------------------------------
	pcNext := b.MuxW(dispatch, b.Add(pc, b.Const(4, XLEN)), pc)
	b.SetNext("pc", b.MuxW(flush, jmpTgt, pcNext))

	c, err := b.Build()
	if err != nil {
		return nil, err
	}

	// --- Target metadata --------------------------------------------------------
	ops := make([]string, 0, len(isa.AllOps()))
	var candidates []string
	for _, op := range isa.AllOps() {
		ops = append(ops, op.String())
		if !op.IsMem() && !op.IsControlFlow() {
			candidates = append(candidates, op.String())
		}
	}
	secrets := make([]string, 0, NRegs-1)
	for r := 1; r < NRegs; r++ {
		secrets = append(secrets, fmt.Sprintf("rf%d", r))
	}

	var masks []MaskRule
	for i := range iq {
		e := &iq[i]
		masks = append(masks, MaskRule{
			ValidReg: e.vN,
			Fields:   []string{e.opN, e.rdN, e.rs1N, e.rs2N, e.immN, e.pcN, e.robN, e.w1N, e.w2N},
		})
	}
	for i := 0; i < v.ROB; i++ {
		masks = append(masks, MaskRule{
			ValidReg: fmt.Sprintf("robv%d", i),
			Fields:   []string{fmt.Sprintf("robd%d", i), fmt.Sprintf("robop%d", i)},
		})
	}
	for i := 0; i < v.FetchQueue; i++ {
		masks = append(masks, MaskRule{
			ValidReg: fmt.Sprintf("fqv%d", i),
			Fields:   []string{fmt.Sprintf("fq%d", i)},
		})
	}
	// Counters (alu_cnt etc.) are deliberately NOT masked: they are not
	// instruction residue, and masking them would hide live values from
	// the miner, over-generating constant predicates that only fail later
	// (wasted backtracking).
	masks = append(masks,
		MaskRule{ValidReg: "alu_busy", Fields: []string{"alu_op", "alu_rd", "alu_rob", "alu_lat"}},
		MaskRule{ValidReg: "mem_busy", Fields: []string{"mem_rd", "mem_rob", "mem_lat", "mem_wen"}},
		MaskRule{ValidReg: "jmp_busy", Fields: []string{"jmp_rd", "jmp_rob", "jmp_lat", "jmp_wen", "jmp_taken"}},
	)
	for k := 0; k < mulDepth; k++ {
		masks = append(masks, MaskRule{
			ValidReg: fmt.Sprintf("mulv%d", k),
			Fields:   []string{fmt.Sprintf("mulrd%d", k), fmt.Sprintf("mulrob%d", k)},
		})
	}

	uopRegs := []string{"alu_op"}
	for i := range iq {
		uopRegs = append(uopRegs, iq[i].opN)
	}
	for i := 0; i < v.ROB; i++ {
		uopRegs = append(uopRegs, fmt.Sprintf("robop%d", i))
	}

	return &Target{
		Name:          v.Name,
		Circuit:       c,
		Observable:    []string{"retire_valid"},
		InstrPort:     "instr",
		Nop:           uint64(isa.NOP()),
		Ops:           ops,
		CandidateSafe: candidates,
		Encode:        encodeRV32,
		EncodeDep:     encodeRV32Regs,
		SecretRegs:    secrets,
		SafePatterns:  rv32SafePatterns,
		MaxLatency:    20,
		Masks:         masks,
		UopRules: func(safe []string) []UopRule {
			allowed := []uint64{0, UopCode(isa.OpAddi)} // bubble/reset + NOP
			seen := map[uint64]bool{0: true, UopCode(isa.OpAddi): true}
			for _, mn := range safe {
				if op, ok := isa.ParseOp(mn); ok && !seen[UopCode(op)] {
					seen[UopCode(op)] = true
					allowed = append(allowed, UopCode(op))
				}
			}
			rules := make([]UopRule, 0, len(uopRegs))
			for _, reg := range uopRegs {
				rules = append(rules, UopRule{Reg: reg, Values: allowed})
			}
			return rules
		},
		DirtyPreamble: func(rng *rand.Rand) []uint64 {
			// Unsafe instructions with public-only operands (x0), so the
			// preamble behaves identically in both copies while leaving
			// unsafe uop residue in the issue queue, ROB and FUs.
			sw := isa.S(isa.OpSw, 0, 0, int32(8+rng.Intn(4)*4)).Encode()
			div := isa.R(isa.OpDiv, 0, 0, 0).Encode()
			return []uint64{uint64(sw), uint64(div)}
		},
	}, nil
}
