package design

import (
	"fmt"
	"math/rand"

	"hhoudini/internal/circuit"
	"hhoudini/internal/isa"
)

// NewInOrder builds the "rocket-class" scalar in-order core: a
// fetch-buffer → execute → writeback pipeline over an 8-entry register
// file, with
//
//   - a single-cycle integer ALU (including lui/auipc and jump link),
//   - an iterative 16-cycle multiplier with a zero-skip fast path
//     (operand-dependent timing → mul-family is unsafe, matching the
//     paper's RV64 Rocketchip finding),
//   - a divider whose latency depends on the divisor value (unsafe),
//   - a memory unit whose latency depends on the address (unsafe),
//   - branches/jumps that squash the fetch buffer when taken (unsafe).
//
// The attacker observes the retirement strobe. Like Rocketchip in the
// paper, the core carries raw instruction words down the pipeline, so the
// automatically mined InSafeSet predicates suffice: no expert annotations
// and no example masking are required.
func NewInOrder() (*Target, error) {
	b := circuit.NewBuilder()
	instrIn := b.Input("instr", 32)

	// Architectural state.
	rf := make([]circuit.Word, NRegs)
	for r := 1; r < NRegs; r++ {
		rf[r] = b.Register(fmt.Sprintf("rf%d", r), XLEN, 0)
	}
	rf[0] = b.Const(0, XLEN)
	pc := b.Register("pc", XLEN, 0)

	// Fetch buffer (decode stage).
	dInstr := b.Register("d_instr", 32, uint64(isa.NOP()))
	dValid := b.Register("d_valid", 1, 0)
	dPC := b.Register("d_pc", XLEN, 0)

	// Execute stage.
	xInstr := b.Register("x_instr", 32, uint64(isa.NOP()))
	xValid := b.Register("x_valid", 1, 0)
	xNew := b.Register("x_new", 1, 0)
	xOp1 := b.Register("x_op1", XLEN, 0)
	xOp2 := b.Register("x_op2", XLEN, 0)
	xPC := b.Register("x_pc", XLEN, 0)

	// Iterative multiplier (zero-skip).
	mBusy := b.Register("m_busy", 1, 0)
	mCnt := b.Register("m_cnt", 4, 0)
	mAcc := b.Register("m_acc", XLEN, 0)
	mMcand := b.Register("m_mcand", XLEN, 0)
	mMplier := b.Register("m_mplier", XLEN, 0)

	// Divider (latency 2 + (divisor & 7) cycles).
	dvBusy := b.Register("dv_busy", 1, 0)
	dvCnt := b.Register("dv_cnt", 3, 0)
	dvLat := b.Register("dv_lat", 3, 0)
	dvRes := b.Register("dv_res", XLEN, 0)

	// Memory unit (latency 1 + (address & 3) cycles).
	meBusy := b.Register("me_busy", 1, 0)
	meCnt := b.Register("me_cnt", 2, 0)
	meLat := b.Register("me_lat", 2, 0)
	meRes := b.Register("me_res", XLEN, 0)
	meWen := b.Register("me_wen", 1, 0)

	// Writeback / retire.
	wValid := b.Register("w_valid", 1, 0)
	wWen := b.Register("w_wen", 1, 0)
	wRd := b.Register("w_rd", regW, 0)
	wRes := b.Register("w_res", XLEN, 0)
	retire := b.Register("retire_valid", 1, 0)
	_ = retire

	// --- Execute-stage combinational logic -----------------------------
	xd := decode(b, xInstr)
	zeroSkip := b.Or2(b.IsZero(xOp1), b.IsZero(xOp2))

	fire := b.And2(xValid[0], xNew[0]) // instruction entered X this cycle

	mulStart := b.AndN(fire, xd.isMul, zeroSkip.Not())
	mulSkip := b.AndN(fire, xd.isMul, zeroSkip)
	divStart := b.And2(fire, xd.isDiv)
	memStart := b.And2(fire, b.Or2(xd.isLoad, xd.isStore))

	mulDone := b.And2(mBusy[0], b.EqConst(mCnt, 15))
	divDone := b.And2(dvBusy[0], b.Eq(dvCnt, dvLat))
	memDone := b.And2(meBusy[0], b.Eq(meCnt, meLat))

	// Multiplier datapath.
	addend := b.MuxW(mMplier[0], mMcand, b.Const(0, XLEN))
	mAccNext := b.MuxW(mulStart, b.Const(0, XLEN), b.MuxW(mBusy[0], b.Add(mAcc, addend), mAcc))
	b.SetNext("m_acc", mAccNext)
	b.SetNext("m_mcand", b.MuxW(mulStart, xOp1, b.MuxW(mBusy[0], b.ShlC(mMcand, 1), mMcand)))
	b.SetNext("m_mplier", b.MuxW(mulStart, xOp2, b.MuxW(mBusy[0], b.LshrC(mMplier, 1), mMplier)))
	b.SetNext("m_cnt", b.MuxW(mBusy[0], b.Inc(mCnt), b.Const(0, 4)))
	b.SetNext("m_busy", circuit.Word{b.Or2(mulStart, b.And2(mBusy[0], mulDone.Not()))})

	// Divider datapath (functional result is a placeholder; only the
	// operand-dependent latency matters for the analysis).
	b.SetNext("dv_lat", b.MuxW(divStart, b.Extract(xOp2, 2, 0), dvLat))
	b.SetNext("dv_res", b.MuxW(divStart, b.XorW(xOp1, xOp2), dvRes))
	b.SetNext("dv_cnt", b.MuxW(dvBusy[0], b.Inc(dvCnt), b.Const(0, 3)))
	b.SetNext("dv_busy", circuit.Word{b.Or2(divStart, b.And2(dvBusy[0], divDone.Not()))})

	// Memory unit: the "memory" returns a fixed function of the address.
	addr := b.Add(xOp1, xd.imm)
	b.SetNext("me_lat", b.MuxW(memStart, b.Extract(addr, 1, 0), meLat))
	b.SetNext("me_res", b.MuxW(memStart, b.XorW(addr, b.Const(0xBEEF, XLEN)), meRes))
	b.SetNext("me_wen", b.MuxW(memStart, circuit.Word{xd.isLoad}, meWen))
	b.SetNext("me_cnt", b.MuxW(meBusy[0], b.Inc(meCnt), b.Const(0, 2)))
	b.SetNext("me_busy", circuit.Word{b.Or2(memStart, b.And2(meBusy[0], memDone.Not()))})

	// Control flow.
	brTaken := b.And2(fire, branchTaken(b, xd, xOp1, xOp2))
	jmpTaken := b.And2(fire, xd.isJump)
	redirect := b.Or2(brTaken, jmpTaken)
	brTarget := b.Add(xPC, xd.imm)
	jalrTarget := b.Add(xOp1, xd.imm)
	target := b.MuxW(xd.match[isa.OpJalr], jalrTarget, brTarget)

	// Pipeline advance.
	stall := b.OrN(
		b.And2(mBusy[0], mulDone.Not()), mulStart,
		b.And2(dvBusy[0], divDone.Not()), divStart,
		b.And2(meBusy[0], memDone.Not()), memStart,
	)
	accept := stall.Not()

	// Single-cycle completion.
	oneCycle := b.AndN(fire, b.OrN(xd.isALU, mulSkip, xd.isBranch, xd.isJump))
	complete := b.OrN(oneCycle, mulDone, divDone, memDone)

	// Result selection.
	res := aluResult(b, xd, xOp1, xOp2, xPC) // zero for non-ALU classes
	res = b.MuxW(mulDone, mAccNext, res)
	res = b.MuxW(divDone, dvRes, res)
	res = b.MuxW(memDone, meRes, res)

	// Stores have writesRd == 0 from decode, so they retire without a
	// register write; meWen additionally gates the memory-unit path.
	wen := b.AndN(complete, xd.writesRd, b.IsZero(xd.rd).Not(),
		b.Or2(memDone.Not(), meWen[0]))

	b.SetNext("w_valid", circuit.Word{complete})
	b.SetNext("w_wen", circuit.Word{wen})
	b.SetNext("w_rd", xd.rd)
	b.SetNext("w_res", res)
	b.SetNext("retire_valid", wValid)

	// Register file write.
	for r := 1; r < NRegs; r++ {
		doWrite := b.AndN(wValid[0], wWen[0], b.EqConst(wRd, uint64(r)))
		b.SetNext(fmt.Sprintf("rf%d", r), b.MuxW(doWrite, wRes, rf[r]))
	}

	// Fetch buffer / PC.
	ind := decode(b, instrIn)
	b.SetNext("d_instr", b.MuxW(accept, instrIn, dInstr))
	dNextIfAccept := b.And2(ind.known, redirect.Not())
	dNextIfHold := b.And2(dValid[0], redirect.Not())
	b.SetNext("d_valid", circuit.Word{b.Mux2(accept, dNextIfAccept, dNextIfHold)})
	b.SetNext("d_pc", b.MuxW(accept, pc, dPC))
	pcPlus := b.Add(pc, b.Const(4, XLEN))
	pcNext := b.MuxW(b.And2(accept, ind.known), pcPlus, pc)
	b.SetNext("pc", b.MuxW(redirect, target, pcNext))

	// Execute-stage capture.
	b.SetNext("x_instr", b.MuxW(accept, dInstr, xInstr))
	b.SetNext("x_valid", circuit.Word{b.Mux2(accept, b.And2(dValid[0], redirect.Not()), xValid[0])})
	b.SetNext("x_new", circuit.Word{b.And2(accept, b.And2(dValid[0], redirect.Not()))})
	dd := decode(b, dInstr)
	b.SetNext("x_op1", b.MuxW(accept, regRead(b, rf, dd.rs1), xOp1))
	b.SetNext("x_op2", b.MuxW(accept, regRead(b, rf, dd.rs2), xOp2))
	b.SetNext("x_pc", b.MuxW(accept, dPC, xPC))

	c, err := b.Build()
	if err != nil {
		return nil, err
	}

	ops := make([]string, 0, len(isa.AllOps()))
	var candidates []string
	for _, op := range isa.AllOps() {
		ops = append(ops, op.String())
		if !op.IsMem() && !op.IsControlFlow() {
			candidates = append(candidates, op.String())
		}
	}
	secrets := make([]string, 0, NRegs-1)
	for r := 1; r < NRegs; r++ {
		secrets = append(secrets, fmt.Sprintf("rf%d", r))
	}

	return &Target{
		Name:          "InOrder",
		Circuit:       c,
		Observable:    []string{"retire_valid"},
		InstrPort:     "instr",
		Nop:           uint64(isa.NOP()),
		Ops:           ops,
		CandidateSafe: candidates,
		Encode:        encodeRV32,
		EncodeDep:     encodeRV32Regs,
		SecretRegs:    secrets,
		SafePatterns:  rv32SafePatterns,
		MaxLatency:    24,
	}, nil
}

// encodeRV32 produces a random-operand encoding of a mnemonic for the
// RV32-based cores. Source/destination registers are drawn from x1..x7 so
// operands read secret state.
func encodeRV32(mn string, rng *rand.Rand) (uint64, error) {
	reg := func() int { return 1 + rng.Intn(NRegs-1) }
	return encodeRV32Regs(mn, reg(), reg(), reg(), rng)
}

// encodeRV32Regs encodes a mnemonic with pinned operand registers.
func encodeRV32Regs(mn string, rd, rs1, rs2 int, rng *rand.Rand) (uint64, error) {
	op, ok := isa.ParseOp(mn)
	if !ok {
		return 0, fmt.Errorf("design: unknown mnemonic %q", mn)
	}
	in := isa.Instr{Op: op, Rd: uint8(rd), Rs1: uint8(rs1), Rs2: uint8(rs2)}
	switch {
	case op == isa.OpSlli || op == isa.OpSrli || op == isa.OpSrai:
		in.Imm = int32(rng.Intn(XLEN))
	case op == isa.OpLui || op == isa.OpAuipc:
		in.Imm = int32(rng.Uint32()) &^ 0xfff
	case op.IsBranch():
		in.Imm = 8
	case op == isa.OpJal || op == isa.OpJalr:
		in.Imm = 8
	case op.IsMem():
		in.Imm = int32(rng.Intn(64))
	default:
		in.Imm = int32(rng.Intn(1 << 11))
	}
	return uint64(in.Encode()), nil
}

// rv32SafePatterns builds the InSafeSet patterns for a proposed safe set
// over RV32 instruction words, always admitting the canonical NOP (the ε
// input of the paper's Σ ∪ {ε}).
func rv32SafePatterns(safe []string) []isa.MaskMatch {
	pats := []isa.MaskMatch{{Mask: 0xffffffff, Match: isa.NOP()}}
	ops := make([]isa.Op, 0, len(safe))
	for _, mn := range safe {
		if op, ok := isa.ParseOp(mn); ok {
			ops = append(ops, op)
		}
	}
	return append(pats, isa.SafePatterns(ops)...)
}
