package design

import (
	"fmt"
	"math/rand"
	"testing"

	"hhoudini/internal/circuit"
	"hhoudini/internal/isa"
)

// run feeds a program (one word per cycle, NOP-padded between and after)
// and returns the observable trace and the final simulator.
func run(t *testing.T, tgt *Target, secrets map[string]uint64, words []uint64, pad int) ([]uint64, *circuit.Sim) {
	t.Helper()
	sim := circuit.NewSim(tgt.Circuit)
	for reg, val := range secrets {
		if err := sim.PokeReg(reg, val); err != nil {
			t.Fatal(err)
		}
	}
	var trace []uint64
	step := func(w uint64) {
		if err := sim.Step(circuit.Inputs{tgt.InstrPort: w}); err != nil {
			t.Fatal(err)
		}
		v, err := sim.PeekReg(tgt.Observable[0])
		if err != nil {
			t.Fatal(err)
		}
		trace = append(trace, v)
	}
	for _, w := range words {
		step(w)
		for i := 0; i < pad; i++ {
			step(tgt.Nop)
		}
	}
	for i := 0; i < pad+4; i++ {
		step(tgt.Nop)
	}
	return trace, sim
}

// firstDiff returns the first index where two traces differ, or -1.
func firstDiff(a, b []uint64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}

func TestExecStageTiming(t *testing.T) {
	tgt, err := NewExecStage(ExecStageConfig{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	// ADD: valid timing independent of operands.
	t1, _ := run(t, tgt, map[string]uint64{"op1": 5, "op2": 7}, []uint64{ExecAdd}, 12)
	t2, _ := run(t, tgt, map[string]uint64{"op1": 200, "op2": 13}, []uint64{ExecAdd}, 12)
	if d := firstDiff(t1, t2); d >= 0 {
		t.Fatalf("ADD timing depends on operands (first diff at %d)\n%v\n%v", d, t1, t2)
	}
	// MUL: zero-skip makes timing operand-dependent.
	t3, _ := run(t, tgt, map[string]uint64{"op1": 0, "op2": 7}, []uint64{ExecMul}, 12)
	t4, _ := run(t, tgt, map[string]uint64{"op1": 3, "op2": 7}, []uint64{ExecMul}, 12)
	if firstDiff(t3, t4) < 0 {
		t.Fatal("MUL zero-skip timing leak not observable")
	}
}

func TestExecStageMulResult(t *testing.T) {
	tgt, err := NewExecStage(ExecStageConfig{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, sim := run(t, tgt, map[string]uint64{"op1": 6, "op2": 7}, []uint64{ExecMul}, 12)
	res, _ := sim.PeekReg("res_mul")
	if res != 42 {
		t.Fatalf("res_mul = %d, want 42", res)
	}
	_, sim0 := run(t, tgt, map[string]uint64{"op1": 0, "op2": 9}, []uint64{ExecMul}, 12)
	res0, _ := sim0.PeekReg("res_mul")
	if res0 != 0 {
		t.Fatalf("zero-skip res_mul = %d, want 0", res0)
	}
}

func enc(t *testing.T, in isa.Instr) uint64 { t.Helper(); return uint64(in.Encode()) }

func TestInOrderBasicALU(t *testing.T) {
	tgt, err := NewInOrder()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("InOrder: %s", tgt.Circuit)
	// addi x3, x0, 9 ; add x4, x3, x3 → x4 = 18
	prog := []uint64{
		enc(t, isa.I(isa.OpAddi, 3, 0, 9)),
		enc(t, isa.R(isa.OpAdd, 4, 3, 3)),
	}
	_, sim := run(t, tgt, nil, prog, 6)
	if v, _ := sim.PeekReg("rf4"); v != 18 {
		t.Fatalf("rf4 = %d, want 18", v)
	}
	if v, _ := sim.PeekReg("rf3"); v != 9 {
		t.Fatalf("rf3 = %d, want 9", v)
	}
}

func TestInOrderALUOpsSemantics(t *testing.T) {
	tgt, err := NewInOrder()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		in   isa.Instr
		rf   map[string]uint64
		reg  string
		want uint64
	}{
		{isa.R(isa.OpSub, 4, 1, 2), map[string]uint64{"rf1": 10, "rf2": 3}, "rf4", 7},
		{isa.R(isa.OpXor, 4, 1, 2), map[string]uint64{"rf1": 0xff, "rf2": 0x0f}, "rf4", 0xf0},
		{isa.R(isa.OpAnd, 4, 1, 2), map[string]uint64{"rf1": 0xfc, "rf2": 0x3f}, "rf4", 0x3c},
		{isa.R(isa.OpOr, 4, 1, 2), map[string]uint64{"rf1": 0xc0, "rf2": 0x03}, "rf4", 0xc3},
		{isa.R(isa.OpSll, 4, 1, 2), map[string]uint64{"rf1": 3, "rf2": 4}, "rf4", 48},
		{isa.R(isa.OpSrl, 4, 1, 2), map[string]uint64{"rf1": 48, "rf2": 4}, "rf4", 3},
		{isa.R(isa.OpSlt, 4, 1, 2), map[string]uint64{"rf1": 0xffff, "rf2": 1}, "rf4", 1}, // -1 < 1
		{isa.R(isa.OpSltu, 4, 1, 2), map[string]uint64{"rf1": 0xffff, "rf2": 1}, "rf4", 0},
		{isa.I(isa.OpAndi, 4, 1, 0x0f), map[string]uint64{"rf1": 0x3c}, "rf4", 0x0c},
		{isa.I(isa.OpSlli, 4, 1, 3), map[string]uint64{"rf1": 5}, "rf4", 40},
		{isa.U(isa.OpLui, 4, 0x5000), nil, "rf4", 0x5000},
	}
	for _, c := range cases {
		_, sim := run(t, tgt, c.rf, []uint64{enc(t, c.in)}, 6)
		if v, _ := sim.PeekReg(c.reg); v != c.want {
			t.Errorf("%v: %s = %#x, want %#x", c.in, c.reg, v, c.want)
		}
	}
}

func TestInOrderMulTimingLeak(t *testing.T) {
	tgt, err := NewInOrder()
	if err != nil {
		t.Fatal(err)
	}
	mul := enc(t, isa.R(isa.OpMul, 4, 1, 2))
	tz, simZ := run(t, tgt, map[string]uint64{"rf1": 0, "rf2": 7}, []uint64{mul}, 24)
	tn, simN := run(t, tgt, map[string]uint64{"rf1": 3, "rf2": 7}, []uint64{mul}, 24)
	if firstDiff(tz, tn) < 0 {
		t.Fatal("zero-skip multiplier should leak timing")
	}
	if v, _ := simZ.PeekReg("rf4"); v != 0 {
		t.Fatalf("mul result (zero) = %d", v)
	}
	if v, _ := simN.PeekReg("rf4"); v != 21 {
		t.Fatalf("mul result = %d, want 21", v)
	}
	// Equal operands → identical timing.
	ta, _ := run(t, tgt, map[string]uint64{"rf1": 5, "rf2": 6}, []uint64{mul}, 24)
	tb, _ := run(t, tgt, map[string]uint64{"rf1": 5, "rf2": 6}, []uint64{mul}, 24)
	if firstDiff(ta, tb) >= 0 {
		t.Fatal("identical runs must match")
	}
}

func TestInOrderSafeOpsAreConstantTime(t *testing.T) {
	tgt, err := NewInOrder()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	safe := []string{"add", "sub", "xor", "and", "or", "sll", "srl", "sra",
		"slt", "sltu", "addi", "xori", "lui", "auipc", "slli"}
	for _, mn := range safe {
		word := tgt.EncodeOrDie(mn, rng)
		s1 := map[string]uint64{}
		s2 := map[string]uint64{}
		for _, r := range tgt.SecretRegs {
			s1[r] = rng.Uint64() & 0xffff
			s2[r] = rng.Uint64() & 0xffff
		}
		t1, _ := run(t, tgt, s1, []uint64{word}, 8)
		t2, _ := run(t, tgt, s2, []uint64{word}, 8)
		if d := firstDiff(t1, t2); d >= 0 {
			t.Errorf("%s: timing depends on secrets (diff at %d)", mn, d)
		}
	}
}

func TestInOrderUnsafeOpsLeak(t *testing.T) {
	tgt, err := NewInOrder()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][2]map[string]uint64{
		"mul":  {{"rf1": 0, "rf2": 5}, {"rf1": 9, "rf2": 5}},
		"div":  {{"rf1": 4, "rf2": 1}, {"rf1": 4, "rf2": 7}},
		"lw":   {{"rf1": 0}, {"rf1": 3}},
		"beq":  {{"rf1": 5, "rf2": 5}, {"rf1": 5, "rf2": 6}},
		"bltu": {{"rf1": 1, "rf2": 9}, {"rf1": 9, "rf2": 1}},
	}
	for mn, secrets := range cases {
		op, _ := isa.ParseOp(mn)
		in := isa.Instr{Op: op, Rd: 4, Rs1: 1, Rs2: 2}
		if op.IsMem() {
			in = isa.I(op, 4, 1, 8)
		}
		word := enc(t, in)
		t1, _ := run(t, tgt, secrets[0], []uint64{word}, 24)
		t2, _ := run(t, tgt, secrets[1], []uint64{word}, 24)
		if firstDiff(t1, t2) < 0 {
			t.Errorf("%s: expected a secret-dependent timing difference", mn)
		}
	}
}

func TestOoOBasicALU(t *testing.T) {
	for _, v := range OoOVariants() {
		tgt, err := NewOoO(v)
		if err != nil {
			t.Fatal(err)
		}
		prog := []uint64{
			enc(t, isa.I(isa.OpAddi, 3, 0, 9)),
			enc(t, isa.R(isa.OpAdd, 4, 3, 3)),
			enc(t, isa.R(isa.OpMul, 5, 3, 4)), // 9*18 = 162
		}
		_, sim := run(t, tgt, nil, prog, 10)
		if val, _ := sim.PeekReg("rf3"); val != 9 {
			t.Fatalf("%s: rf3 = %d, want 9", v.Name, val)
		}
		if val, _ := sim.PeekReg("rf4"); val != 18 {
			t.Fatalf("%s: rf4 = %d, want 18", v.Name, val)
		}
		if val, _ := sim.PeekReg("rf5"); val != 162 {
			t.Fatalf("%s: rf5 = %d, want 162", v.Name, val)
		}
	}
}

func TestOoOSizesIncrease(t *testing.T) {
	prev := 0
	for _, v := range OoOVariants() {
		tgt, err := NewOoO(v)
		if err != nil {
			t.Fatal(err)
		}
		bits := tgt.Circuit.NumStateBits()
		t.Logf("%s: %d state bits, %d nodes", v.Name, bits, tgt.Circuit.NumNodes())
		if bits <= prev {
			t.Fatalf("%s: state bits %d not larger than previous %d", v.Name, bits, prev)
		}
		prev = bits
	}
}

func TestOoOMulConstantTime(t *testing.T) {
	tgt, err := NewOoO(SmallOoO)
	if err != nil {
		t.Fatal(err)
	}
	mul := enc(t, isa.R(isa.OpMul, 4, 1, 2))
	tz, _ := run(t, tgt, map[string]uint64{"rf1": 0, "rf2": 7}, []uint64{mul}, 12)
	tn, _ := run(t, tgt, map[string]uint64{"rf1": 3, "rf2": 7}, []uint64{mul}, 12)
	if d := firstDiff(tz, tn); d >= 0 {
		t.Fatalf("pipelined multiplier must be constant time (diff at %d)", d)
	}
}

func TestOoOAuipcQuirkLeaks(t *testing.T) {
	tgt, err := NewOoO(SmallOoO)
	if err != nil {
		t.Fatal(err)
	}
	// auipc's rs1 field bits alias imm[19:15]; choose an imm whose rs1
	// alias is register 1, then make rf1 parity differ.
	word := enc(t, isa.U(isa.OpAuipc, 4, 1<<15))
	in, ok := isa.Decode(uint32(word))
	if !ok || in.Op != isa.OpAuipc {
		t.Fatal("bad auipc encoding")
	}
	t1, _ := run(t, tgt, map[string]uint64{"rf1": 2}, []uint64{word}, 12)
	t2, _ := run(t, tgt, map[string]uint64{"rf1": 3}, []uint64{word}, 12)
	if firstDiff(t1, t2) < 0 {
		t.Fatal("auipc quirk should leak the parity of the aliased register")
	}
}

func TestOoODivTimingLeaks(t *testing.T) {
	tgt, err := NewOoO(SmallOoO)
	if err != nil {
		t.Fatal(err)
	}
	div := enc(t, isa.R(isa.OpDiv, 4, 1, 2))
	t1, _ := run(t, tgt, map[string]uint64{"rf1": 8, "rf2": 0}, []uint64{div}, 12)
	t2, _ := run(t, tgt, map[string]uint64{"rf1": 8, "rf2": 3}, []uint64{div}, 12)
	if firstDiff(t1, t2) < 0 {
		t.Fatal("divider latency should depend on the divisor")
	}
}

func TestOoOSafeOpsConstantTime(t *testing.T) {
	tgt, err := NewOoO(MediumOoO)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for _, mn := range []string{"add", "sub", "xor", "sll", "sltu", "addi", "lui", "mul", "mulhu"} {
		word := tgt.EncodeOrDie(mn, rng)
		s1, s2 := map[string]uint64{}, map[string]uint64{}
		for _, r := range tgt.SecretRegs {
			s1[r] = rng.Uint64() & 0xffff
			s2[r] = rng.Uint64() & 0xffff
		}
		t1, _ := run(t, tgt, s1, []uint64{word}, 10)
		t2, _ := run(t, tgt, s2, []uint64{word}, 10)
		if d := firstDiff(t1, t2); d >= 0 {
			t.Errorf("%s: timing depends on secrets (diff at %d)", mn, d)
		}
	}
}

// TestOoODirtyPreambleLeavesResidue: after the dirty preamble drains, some
// invalid IQ or ROB entry must still hold an unsafe uop — the situation
// example masking exists to clean up (§5.2.1).
func TestOoODirtyPreambleLeavesResidue(t *testing.T) {
	tgt, err := NewOoO(SmallOoO)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	words := tgt.DirtyPreamble(rng)
	_, sim := run(t, tgt, nil, words, 12)

	unsafeUops := map[uint64]bool{}
	for _, op := range isa.AllOps() {
		if op.IsMem() || op.IsMulDiv() {
			unsafeUops[UopCode(op)] = true
		}
	}
	found := false
	for i := 0; i < SmallOoO.IQ && !found; i++ {
		v, _ := sim.PeekReg(fmtReg("iqv", i))
		uop, _ := sim.PeekReg(fmtReg("iqop", i))
		if v == 0 && unsafeUops[uop] {
			found = true
		}
	}
	for i := 0; i < SmallOoO.ROB && !found; i++ {
		v, _ := sim.PeekReg(fmtReg("robv", i))
		uop, _ := sim.PeekReg(fmtReg("robop", i))
		if v == 0 && unsafeUops[uop] {
			found = true
		}
	}
	if aluop, _ := sim.PeekReg("alu_op"); unsafeUops[aluop] {
		if bv, _ := sim.PeekReg("alu_busy"); bv == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("dirty preamble left no unsafe uop residue; masking ablation would be vacuous")
	}
}

func fmtReg(prefix string, i int) string { return fmt.Sprintf("%s%d", prefix, i) }

func TestTargetHelpers(t *testing.T) {
	tgt, err := NewExecStage(ExecStageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !tgt.HasOp("add") || tgt.HasOp("bogus") {
		t.Fatal("HasOp")
	}
	if _, err := tgt.Encode("bogus", rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("Encode(bogus) should fail")
	}
	pats := tgt.SafePatterns([]string{"add"})
	if !isa.Matches(uint32(ExecNop), pats) || !isa.Matches(uint32(ExecAdd), pats) {
		t.Fatal("safe patterns must admit nop and add")
	}
	if isa.Matches(uint32(ExecMul), pats) {
		t.Fatal("safe patterns must exclude mul")
	}
	if _, err := NewExecStage(ExecStageConfig{Width: 1}); err == nil {
		t.Fatal("width 1 should be rejected")
	}
}
