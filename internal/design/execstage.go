package design

import (
	"fmt"
	"math/rand"

	"hhoudini/internal/circuit"
	"hhoudini/internal/isa"
)

// ExecStage opcode values (the 2-bit "instruction set" of Appendix C).
const (
	ExecNop uint64 = 0
	ExecAdd uint64 = 1
	ExecMul uint64 = 2
)

// ExecStageConfig parameterizes the Appendix C execute stage.
type ExecStageConfig struct {
	// Width is the operand width in bits (the paper's figure uses 32; the
	// default here is 8, which preserves the timing behaviour — 1 cycle
	// for zero-skip vs. Width cycles otherwise — at lower query cost).
	Width int
}

// NewExecStage builds the worked example of Appendix C: an execute stage
// with an ADD functional unit and an iterative multiplier featuring a
// zero-skip optimization, whose outputs are selected by the current opcode.
//
// The operands op1/op2 are secret state (they model values read from a
// register file); the opcode register latches the shared instruction input.
// The attacker observes the Valid output register — exactly the Eq(Valid)
// property the appendix proves.
func NewExecStage(cfg ExecStageConfig) (*Target, error) {
	w := cfg.Width
	if w == 0 {
		w = 8
	}
	if w < 2 || w > 32 {
		return nil, fmt.Errorf("design: ExecStage width %d out of range [2,32]", w)
	}
	cntW := 1
	for 1<<uint(cntW) < w {
		cntW++
	}

	b := circuit.NewBuilder()
	opIn := b.Input("opcode_in", 2)

	op1 := b.Register("op1", w, 0)
	op2 := b.Register("op2", w, 0)
	b.KeepNext("op1") // secrets: loaded at init, held
	b.KeepNext("op2")

	// The stage holds its current opcode until a new instruction arrives
	// (the ε input — encoded 0 — means "no instruction"), so the output
	// mux keeps selecting the in-flight FU while it computes.
	opcode := b.Register("opcode", 2, ExecNop)
	newInstr := b.EqConst(opIn, ExecNop).Not()
	b.SetNext("opcode", b.MuxW(newInstr, opIn, opcode))

	isAdd := b.EqConst(opcode, ExecAdd)
	isMul := b.EqConst(opcode, ExecMul)

	// --- ADD FU (single cycle) ---------------------------------------
	resAdd := b.Register("res_add", w, 0)
	validAdd := b.Register("valid_add", 1, 0)
	b.SetNext("res_add", b.MuxW(isAdd, b.Add(op1, op2), resAdd))
	b.SetNext("valid_add", circuit.Word{isAdd})

	// --- MUL FU (iterative, zero-skip) --------------------------------
	mcand := b.Register("mcand", w, 0)
	mplier := b.Register("mplier", w, 0)
	cnt := b.Register("cnt", cntW, 0)
	inUse := b.Register("in_use", 1, 0)
	resMul := b.Register("res_mul", w, 0)
	validMul := b.Register("valid_mul", 1, 0)

	// The sticky valid bit doubles as a "result already produced" flag so a
	// held MUL opcode does not restart the engine; it clears when a new
	// instruction arrives.
	start := b.AndN(isMul, b.Not(inUse[0]), b.Not(validMul[0]))
	zeroSkip := b.Or2(b.IsZero(op1), b.IsZero(op2))
	done := b.EqConst(cnt, uint64(w-1))
	validHeld := b.And2(validMul[0], newInstr.Not())

	// in_use branch of the case statement.
	addend := b.MuxW(mplier[0], mcand, b.Const(0, w))
	busyRes := b.Add(resMul, addend)
	busyMcand := b.ShlC(mcand, 1)
	busyMplier := b.LshrC(mplier, 1)
	busyCnt := b.Inc(cnt)
	busyInUse := b.Not(done)
	busyValid := b.Or2(validHeld, done) // hold, set when done

	// default (reset/start) branch.
	startSkip := b.And2(start, zeroSkip)
	idleRes := b.MuxW(start, b.Const(0, w), resMul) // clear only on start
	idleValid := b.Or2(validHeld, startSkip)        // hold, set on zero-skip
	idleInUse := b.And2(start, b.Not(zeroSkip))

	b.SetNext("res_mul", b.MuxW(inUse[0], busyRes, idleRes))
	b.SetNext("mcand", b.MuxW(inUse[0], busyMcand, op1))
	b.SetNext("mplier", b.MuxW(inUse[0], busyMplier, op2))
	b.SetNext("cnt", b.MuxW(inUse[0], busyCnt, b.Const(0, cntW)))
	b.SetNext("in_use", circuit.Word{b.Mux2(inUse[0], busyInUse, idleInUse)})
	b.SetNext("valid_mul", circuit.Word{b.Mux2(inUse[0], busyValid, idleValid)})

	// --- Output mux ----------------------------------------------------
	res := b.Register("res", w, 0)
	b.Register("valid", 1, 0)
	b.SetNext("res", b.MuxW(isMul, resMul, b.MuxW(isAdd, resAdd, res)))
	b.SetNext("valid", circuit.Word{b.Mux2(isMul, validMul[0], validAdd[0])})

	c, err := b.Build()
	if err != nil {
		return nil, err
	}

	codes := map[string]uint64{"nop": ExecNop, "add": ExecAdd, "mul": ExecMul}
	return &Target{
		Name:          fmt.Sprintf("ExecStage%d", w),
		Circuit:       c,
		Observable:    []string{"valid"},
		InstrPort:     "opcode_in",
		Nop:           ExecNop,
		Ops:           []string{"nop", "add", "mul"},
		CandidateSafe: []string{"add", "mul"},
		Encode: func(mn string, rng *rand.Rand) (uint64, error) {
			code, ok := codes[mn]
			if !ok {
				return 0, fmt.Errorf("design: ExecStage has no op %q", mn)
			}
			return code, nil
		},
		SecretRegs: []string{"op1", "op2"},
		SafePatterns: func(safe []string) []isa.MaskMatch {
			pats := []isa.MaskMatch{{Mask: 3, Match: uint32(ExecNop)}}
			for _, mn := range safe {
				if code, ok := codes[mn]; ok && code != ExecNop {
					pats = append(pats, isa.MaskMatch{Mask: 3, Match: uint32(code)})
				}
			}
			return pats
		},
		MaxLatency: w + 3,
	}, nil
}
