package sat

import (
	"math/rand"
	"testing"
)

// The inprocessing pass only fires on its own every inprocessInterval
// conflicts, which the small workloads in this package never reach; these
// tests call s.inprocess() directly at level 0.

// TestInprocessBackwardSubsumption: (a ∨ b) subsumes (a ∨ b ∨ c); the
// superset clause must be deleted and the verdicts preserved.
func TestInprocessBackwardSubsumption(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	s.AddClause(PosLit(a), PosLit(b), PosLit(c))
	s.inprocess()
	if s.Stats.Subsumed < 1 {
		t.Fatalf("Subsumed = %d, want >= 1", s.Stats.Subsumed)
	}
	// ¬a ∧ ¬b must still be excluded through the surviving clause.
	if st := s.Solve(NegLit(a), NegLit(b)); st != Unsat {
		t.Fatalf("after subsumption: got %v under ¬a∧¬b, want Unsat", st)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("after subsumption: got %v, want Sat", st)
	}
}

// TestInprocessSelfSubsumingResolution: resolving (a ∨ b) with
// (¬a ∨ b ∨ c) on a gives (b ∨ c), which subsumes the latter — it must be
// strengthened to (b ∨ c), i.e. ¬b ∧ ¬c becomes Unsat without touching a.
func TestInprocessSelfSubsumingResolution(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	s.AddClause(NegLit(a), PosLit(b), PosLit(c))
	s.inprocess()
	if s.Stats.Strengthened < 1 {
		t.Fatalf("Strengthened = %d, want >= 1", s.Stats.Strengthened)
	}
	if st := s.Solve(NegLit(b), NegLit(c)); st != Unsat {
		t.Fatalf("after SSR: got %v under ¬b∧¬c, want Unsat", st)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("after SSR: got %v, want Sat", st)
	}
}

// TestInprocessStrengthenToUnit: SSR that collapses a binary clause to a
// unit must land the unit on the level-0 trail.
func TestInprocessStrengthenToUnit(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	s.AddClause(NegLit(a), PosLit(b))
	s.inprocess()
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v, want Sat", st)
	}
	if !s.ModelValue(PosLit(b)) {
		t.Fatal("b must be forced true by the strengthened unit")
	}
	if st := s.Solve(NegLit(b)); st != Unsat {
		t.Fatalf("got %v under ¬b, want Unsat", st)
	}
}

// TestInprocessPreservesModels is the differential check: random CNFs,
// one solver inprocessed mid-stream and one left alone, must agree with
// brute-force enumeration on the verdict.
func TestInprocessPreservesModels(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	for iter := 0; iter < 200; iter++ {
		nVars := 3 + rng.Intn(7)
		clauses := randomClauses(rng, nVars, 2+rng.Intn(3*nVars), 4)
		s := New()
		addVars(s, nVars)
		for _, c := range clauses {
			s.AddClause(c...)
		}
		s.inprocess()
		// A second pass over the already-reduced database must also be a
		// no-op semantically (and exercises stale occurrence lists).
		s.inprocess()
		want, _ := bruteForce(nVars, clauses)
		st := s.Solve()
		if want && st != Sat {
			t.Fatalf("iter %d: brute force Sat, inprocessed solver %v (clauses %v)", iter, st, clauses)
		}
		if !want && st != Unsat {
			t.Fatalf("iter %d: brute force Unsat, inprocessed solver %v (clauses %v)", iter, st, clauses)
		}
		if st == Sat {
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					if s.ModelValue(l) {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("iter %d: model violates original clause %v", iter, c)
				}
			}
		}
	}
}

// TestInprocessAfterSolveWithLearnts runs a pigeonhole refutation to build
// a learnt database, inprocesses it, and re-solves: the verdict must stay
// Unsat and learnt-vs-problem deletion rules must not lose constraints.
func TestInprocessAfterSolveWithLearnts(t *testing.T) {
	s := New()
	php(s, 6, 5)
	if st := s.Solve(); st != Unsat {
		t.Fatal("PHP(6,5) must be Unsat")
	}
	s.inprocess()
	if s.Okay() {
		// The level-0 database may or may not already be contradictory;
		// either way a fresh Solve must still refute.
		if st := s.Solve(); st != Unsat {
			t.Fatalf("after inprocess: got %v, want Unsat", st)
		}
	}
}
