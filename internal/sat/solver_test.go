package sat

import (
	"testing"
)

func lit(n int) Lit {
	if n == 0 {
		panic("lit(0)")
	}
	if n < 0 {
		return NegLit(Var(-n - 1))
	}
	return PosLit(Var(n - 1))
}

// addVars allocates n variables on s.
func addVars(s *Solver, n int) {
	for i := 0; i < n; i++ {
		s.NewVar()
	}
}

func TestLitEncoding(t *testing.T) {
	v := Var(7)
	p, n := PosLit(v), NegLit(v)
	if p.Var() != v || n.Var() != v {
		t.Fatalf("Var() mismatch: %v %v", p.Var(), n.Var())
	}
	if p.Neg() || !n.Neg() {
		t.Fatalf("Neg() mismatch")
	}
	if p.Not() != n || n.Not() != p {
		t.Fatalf("Not() mismatch")
	}
	if MkLit(v, false) != p || MkLit(v, true) != n {
		t.Fatalf("MkLit mismatch")
	}
	if p.XorSign(true) != n || p.XorSign(false) != p {
		t.Fatalf("XorSign mismatch")
	}
	if p.String() != "8" || n.String() != "-8" {
		t.Fatalf("String mismatch: %s %s", p, n)
	}
}

func TestEmptyFormulaIsSat(t *testing.T) {
	s := New()
	if st := s.Solve(); st != Sat {
		t.Fatalf("empty formula: got %v, want Sat", st)
	}
}

func TestSingleUnit(t *testing.T) {
	s := New()
	addVars(s, 1)
	if !s.AddClause(lit(1)) {
		t.Fatal("AddClause failed")
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	if !s.ModelValue(lit(1)) {
		t.Fatal("model should set x1 true")
	}
	if s.ModelValue(lit(-1)) {
		t.Fatal("negated literal should be false")
	}
}

func TestContradictoryUnits(t *testing.T) {
	s := New()
	addVars(s, 1)
	s.AddClause(lit(1))
	ok := s.AddClause(lit(-1))
	if ok {
		t.Fatal("expected AddClause to report contradiction")
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v", st)
	}
	if s.Okay() {
		t.Fatal("Okay should be false")
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New()
	addVars(s, 2)
	s.AddClause(lit(1), lit(-1))
	s.AddClause(lit(2))
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
}

func TestDuplicateLiterals(t *testing.T) {
	s := New()
	addVars(s, 2)
	s.AddClause(lit(1), lit(1), lit(1))
	s.AddClause(lit(-1), lit(2), lit(2))
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	if !s.ModelValue(lit(1)) || !s.ModelValue(lit(2)) {
		t.Fatal("propagation through deduped clauses failed")
	}
}

func TestSimpleChain(t *testing.T) {
	// x1 ∧ (x1→x2) ∧ (x2→x3) ∧ ... ∧ (x9→x10)
	s := New()
	addVars(s, 10)
	s.AddClause(lit(1))
	for i := 1; i < 10; i++ {
		s.AddClause(lit(-i), lit(i+1))
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	for i := 1; i <= 10; i++ {
		if !s.ModelValue(lit(i)) {
			t.Fatalf("x%d should be true", i)
		}
	}
}

func TestUnsatTriangle(t *testing.T) {
	// (a∨b) ∧ (¬a∨b) ∧ (a∨¬b) ∧ (¬a∨¬b) is UNSAT.
	s := New()
	addVars(s, 2)
	s.AddClause(lit(1), lit(2))
	s.AddClause(lit(-1), lit(2))
	s.AddClause(lit(1), lit(-2))
	ok := s.AddClause(lit(-1), lit(-2))
	if st := s.Solve(); st != Unsat || (ok && s.Okay() && false) {
		t.Fatalf("got %v", st)
	}
}

// pigeonhole encodes PHP(n+1, n): n+1 pigeons, n holes — UNSAT.
func pigeonhole(s *Solver, pigeons, holes int) {
	varOf := func(p, h int) Lit { return lit(p*holes + h + 1) }
	addVars(s, pigeons*holes)
	for p := 0; p < pigeons; p++ {
		cl := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			cl[h] = varOf(p, h)
		}
		s.AddClause(cl...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(varOf(p1, h).Not(), varOf(p2, h).Not())
			}
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := New()
		pigeonhole(s, n+1, n)
		if st := s.Solve(); st != Unsat {
			t.Fatalf("PHP(%d,%d): got %v, want Unsat", n+1, n, st)
		}
	}
}

func TestPigeonholeSatWhenEnoughHoles(t *testing.T) {
	s := New()
	pigeonhole(s, 4, 4)
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v, want Sat", st)
	}
}

func TestAssumptionsBasic(t *testing.T) {
	s := New()
	addVars(s, 3)
	s.AddClause(lit(-1), lit(2))
	s.AddClause(lit(-2), lit(3))
	if st := s.Solve(lit(1), lit(-3)); st != Unsat {
		t.Fatalf("got %v, want Unsat", st)
	}
	core := s.Core()
	if len(core) == 0 {
		t.Fatal("empty core")
	}
	for _, l := range core {
		if l != lit(1) && l != lit(-3) {
			t.Fatalf("core literal %v is not an assumption", l)
		}
	}
	// Without the conflicting assumption, SAT again (incremental reuse).
	if st := s.Solve(lit(1)); st != Sat {
		t.Fatalf("got %v, want Sat", st)
	}
	if !s.ModelValue(lit(3)) {
		t.Fatal("x3 must be true under x1")
	}
}

func TestAssumptionContradictsItself(t *testing.T) {
	s := New()
	addVars(s, 1)
	if st := s.Solve(lit(1), lit(-1)); st != Unsat {
		t.Fatalf("got %v", st)
	}
	core := s.Core()
	if len(core) != 2 {
		t.Fatalf("core should contain both conflicting assumptions, got %v", core)
	}
}

func TestAssumptionAgainstLevelZeroUnit(t *testing.T) {
	s := New()
	addVars(s, 1)
	s.AddClause(lit(-1))
	if st := s.Solve(lit(1)); st != Unsat {
		t.Fatalf("got %v", st)
	}
	core := s.Core()
	if len(core) != 1 || core[0] != lit(1) {
		t.Fatalf("core should be {x1}, got %v", core)
	}
}

func TestCoreIsUnsatSubset(t *testing.T) {
	// x1..x5 selectors gate clauses; only s2,s4 jointly conflict.
	s := New()
	addVars(s, 7) // x1=a x2=b, selectors s1..s5 are vars 3..7
	a, b := lit(1), lit(2)
	sel := []Lit{lit(3), lit(4), lit(5), lit(6), lit(7)}
	s.AddClause(sel[0].Not(), a)          // s1 → a
	s.AddClause(sel[1].Not(), b)          // s2 → b
	s.AddClause(sel[2].Not(), a, b)       // s3 → a∨b
	s.AddClause(sel[3].Not(), b.Not())    // s4 → ¬b
	s.AddClause(sel[4].Not(), a, b.Not()) // s5 → a∨¬b
	st, core := s.SolveWithCore(sel)
	if st != Unsat {
		t.Fatalf("got %v", st)
	}
	// Core must include s2 and s4; must re-verify Unsat.
	if st2 := s.Solve(core...); st2 != Unsat {
		t.Fatalf("core does not reproduce Unsat: %v", core)
	}
	min := s.MinimizeCore(core)
	if len(min) != 2 {
		t.Fatalf("minimal core should have 2 selectors, got %v", min)
	}
	seen := map[Lit]bool{}
	for _, l := range min {
		seen[l] = true
	}
	if !seen[sel[1]] || !seen[sel[3]] {
		t.Fatalf("minimal core should be {s2,s4}, got %v", min)
	}
}

func TestMinimizeCoreLocallyMinimal(t *testing.T) {
	s := New()
	addVars(s, 6)
	// Three selectors each forcing a distinct variable; a clause makes all
	// three together impossible only when combined.
	x, y, z := lit(1), lit(2), lit(3)
	s1, s2, s3 := lit(4), lit(5), lit(6)
	s.AddClause(s1.Not(), x)
	s.AddClause(s2.Not(), y)
	s.AddClause(s3.Not(), z)
	s.AddClause(x.Not(), y.Not(), z.Not())
	st, core := s.SolveWithCore([]Lit{s1, s2, s3})
	if st != Unsat {
		t.Fatalf("got %v", st)
	}
	min := s.MinimizeCore(core)
	if len(min) != 3 {
		t.Fatalf("all three selectors are needed, got %v", min)
	}
	// Local minimality: dropping any single literal must become Sat.
	for i := range min {
		trial := append(append([]Lit{}, min[:i]...), min[i+1:]...)
		if st := s.Solve(trial...); st != Sat {
			t.Fatalf("core not locally minimal at %d: %v", i, min)
		}
	}
}

func TestIncrementalGrowth(t *testing.T) {
	s := New()
	addVars(s, 2)
	s.AddClause(lit(1), lit(2))
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	s.AddClause(lit(-1))
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	if !s.ModelValue(lit(2)) {
		t.Fatal("x2 must hold after adding ¬x1")
	}
	s.AddClause(lit(-2))
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v", st)
	}
}

func TestModelSatisfiesAllClauses(t *testing.T) {
	s := New()
	addVars(s, 8)
	clauses := [][]Lit{
		{lit(1), lit(2), lit(-3)},
		{lit(-1), lit(4)},
		{lit(3), lit(-4), lit(5)},
		{lit(-5), lit(6), lit(7)},
		{lit(-6), lit(-7)},
		{lit(8), lit(-2)},
		{lit(-8), lit(1), lit(3)},
	}
	for _, c := range clauses {
		s.AddClause(c...)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	for _, c := range clauses {
		ok := false
		for _, l := range c {
			if s.ModelValue(l) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("model violates clause %v", c)
		}
	}
}

func TestMaxConflictsBudget(t *testing.T) {
	s := New()
	pigeonhole(s, 9, 8) // hard enough to need > 1 conflict
	s.MaxConflicts = 1
	st := s.Solve()
	if st == Sat {
		t.Fatal("PHP(9,8) cannot be Sat")
	}
	// Either proved quickly or gave up; both acceptable, but must not hang.
	if st == Unsat {
		t.Log("solved within budget")
	}
}

func TestSetDecisionVar(t *testing.T) {
	s := New()
	addVars(s, 2)
	s.AddClause(lit(1), lit(2))
	s.SetDecisionVar(Var(0), false)
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	// x2 must carry the clause since x1 can't be decided (it may still be
	// propagated, but with a single clause only a decision can set it).
	if !s.ModelValue(lit(2)) && !s.ModelValue(lit(1)) {
		t.Fatal("clause unsatisfied")
	}
}

func TestManySolveCallsReuseLearnts(t *testing.T) {
	s := New()
	pigeonhole(s, 6, 5)
	for i := 0; i < 5; i++ {
		if st := s.Solve(); st != Unsat {
			t.Fatalf("iteration %d: got %v", i, st)
		}
	}
	if s.Stats.Solves != 5 {
		t.Fatalf("expected 5 solve calls, got %d", s.Stats.Solves)
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Fatal("Status.String mismatch")
	}
}
