package sat

// Incremental-use primitives: activation (selector) literals, retractable
// clause groups, and level-0 garbage collection. Together they let one
// Solver instance survive across many queries — the substrate behind the
// pooled abduction backend in internal/hhoudini.
//
// The protocol is the standard MiniSat one: a clause (¬s ∨ C) guarded by a
// selector s is active only in Solve calls that pass s as an assumption.
// When the clause group is dead for good, Release(s) pins s false, which
// permanently satisfies every guarded clause; Simplify() then physically
// deletes the satisfied clauses from the database and the watch lists.

// releaseGCThreshold is the number of released selectors after which
// Release triggers an automatic Simplify pass.
const releaseGCThreshold = 32

// NewSelector allocates a fresh activation (selector) variable and returns
// its positive literal. The saved phase of a fresh variable prefers false,
// so selectors that are not assumed in a given Solve call fall away without
// search effort, deactivating the clauses they guard. Selectors are marked
// local: learnt clauses mentioning them are never exported across solvers.
func (s *Solver) NewSelector() Lit {
	l := PosLit(s.NewVar())
	s.MarkLocal(l.Var())
	return l
}

// MarkLocal flags a variable as scoped to this solver instance: its meaning
// is not stable across solvers over the same base system (selectors are the
// canonical case). Learnt clauses containing local variables are excluded
// from ExportLearnts.
func (s *Solver) MarkLocal(v Var) {
	s.ensureVar(v)
	s.local[v] = true
}

// IsLocal reports whether v was marked local.
func (s *Solver) IsLocal(v Var) bool { return int(v) < len(s.local) && s.local[v] }

// ExportLearnts returns copies of the live learnt clauses that are sound to
// replay into another solver over the same base clause database: clauses
// tagged base at learn time (no local variables in the clause; see
// hdrBase in arena.go) and no longer than maxLen literals (long clauses rarely pay
// for their replay cost). Level-0 unit facts — learnt units never enter the
// learnt index, they are enqueued directly on the root trail — are exported
// as single-literal clauses under the same locality filter. Must be called
// at decision level 0 (between Solve calls).
func (s *Solver) ExportLearnts(maxLen int) [][]Lit {
	var out [][]Lit
	if s.decisionLevel() != 0 {
		return nil
	}
	for _, l := range s.trail {
		if !s.local[l.Var()] {
			out = append(out, []Lit{l})
		}
	}
	for _, cr := range s.learnts {
		if s.isDeleted(cr) || !s.isBase(cr) || s.clauseSize(cr) > maxLen {
			continue
		}
		lits := s.clauseLits(cr)
		cl := make([]Lit, len(lits))
		for i, w := range lits {
			cl[i] = Lit(w)
		}
		out = append(out, cl)
	}
	s.Stats.Exported += int64(len(out))
	return out
}

// ImportClause replays a clause exported from another solver over the same
// base system. It is AddClause plus import accounting; the caller is
// responsible for having translated the literals into this solver's
// variable space.
func (s *Solver) ImportClause(lits ...Lit) bool {
	s.Stats.Imported++
	return s.AddClause(lits...)
}

// Release permanently retracts a selector: sel is fixed false at level 0,
// so every clause guarded by it (of the form ¬sel ∨ C, active under the
// assumption sel) is satisfied forever. After releaseGCThreshold releases
// the dead clauses are garbage-collected via Simplify. Must be called at
// decision level 0 (i.e. between Solve calls).
func (s *Solver) Release(sel Lit) {
	s.AddClause(sel.Not())
	s.Stats.Released++
	s.releasedSinceGC++
	if s.releasedSinceGC >= releaseGCThreshold {
		s.Simplify()
	}
}

// Simplify removes every clause satisfied at decision level 0 from the
// clause database and the watch lists — the clause-deletion half of
// selector release. It is safe to call between Solve calls; it is a no-op
// above level 0 or once the database is known Unsat.
func (s *Solver) Simplify() {
	if !s.ok || s.decisionLevel() != 0 {
		return
	}
	if s.propagate() != crUndef {
		s.ok = false
		return
	}
	s.releasedSinceGC = 0
	s.Stats.Simplifies++
	// Level-0 assignments are permanent and never re-examined by conflict
	// analysis, so their reason clauses can be dropped: clear the reasons
	// before deleting clauses that may currently be "locked".
	for _, l := range s.trail {
		s.reason[l.Var()] = crUndef
	}
	// Collect the satisfied clauses into the reusable scratch buffer first
	// (detaching while forEachClause walks the slab would be fine — deletion
	// only flips a header bit — but keeping mutation out of the walk keeps
	// the invariant simple), then detach and delete.
	s.scratchRefs = s.scratchRefs[:0]
	s.forEachClause(func(cr clauseRef) {
		for _, w := range s.clauseLits(cr) {
			if s.valueLit(Lit(w)) == lTrue {
				s.scratchRefs = append(s.scratchRefs, cr)
				return
			}
		}
	})
	for _, cr := range s.scratchRefs {
		s.detachClause(cr)
		s.markDeleted(cr)
	}
	// Compact the learnt index, then reclaim the slab if enough died.
	j := 0
	for _, cr := range s.learnts {
		if !s.isDeleted(cr) {
			s.learnts[j] = cr
			j++
		}
	}
	s.learnts = s.learnts[:j]
	s.maybeCollect()
}
