package sat

// Flat clause arena. Clause storage is a single []uint32 slab: a clauseRef
// is an offset into the slab, so propagate() walks contiguous memory with
// no pointer chasing and clause allocation is an append with near-zero GC
// pressure (the slab is one object regardless of clause count).
//
// Layout of one clause at offset cr:
//
//	word cr+0          header: size / flags / LBD (see bit layout below)
//	word cr+1          [learnt only] activity slot: index into claAct
//	words cr+1+x ...   the literals (x = 1 for learnt, 0 for problem)
//
// Header bit layout:
//
//	bit  0      learnt
//	bit  1      base (exportable: no local/selector variables; see solver.go)
//	bit  2      deleted (lazily reclaimed by garbageCollect)
//	bits 3..12  LBD (literal block distance, saturated at lbdMax)
//	bits 13..30 size (number of literals)
//	bit 31      forwarding flag, used only inside garbageCollect
//
// Learnt-clause activities live in the claAct side-array (indexed by the
// clause's activity slot, recycled through claFree) so the header stays one
// word and the reduceDB sort touches a dense float array.
//
// Deleted clauses keep their header and body in place (walkable; see
// forEachClause) until garbageCollect compacts the slab, rewriting every
// clauseRef held by the watch lists, the learnt index and the reason array
// via forwarding pointers stored in the old headers. Strengthened clauses
// (inprocess.go) shrink in place and leave a zero filler word, which the
// walk skips.

type clauseRef uint32

// crUndef is the null clause reference; offset 0 of the arena holds a
// sentinel word so no real clause lives there.
const crUndef clauseRef = 0

const (
	hdrLearnt    = uint32(1) << 0
	hdrBase      = uint32(1) << 1
	hdrDeleted   = uint32(1) << 2
	hdrLBDShift  = 3
	hdrLBDMask   = uint32(1)<<10 - 1
	hdrSizeShift = 13
	hdrForward   = uint32(1) << 31

	// lbdMax saturates stored LBD values at 10 bits.
	lbdMax = int(hdrLBDMask)
	// maxClauseSize is the largest representable clause (18 size bits; bit
	// 31 is reserved for GC forwarding).
	maxClauseSize = 1<<18 - 1
)

func mkHeader(size int, learnt, base bool, lbd int) uint32 {
	if size > maxClauseSize {
		panic("sat: clause exceeds maximum arena clause size")
	}
	if lbd > lbdMax {
		lbd = lbdMax
	}
	h := uint32(size) << hdrSizeShift
	h |= uint32(lbd) << hdrLBDShift
	if learnt {
		h |= hdrLearnt
	}
	if base {
		h |= hdrBase
	}
	return h
}

func (s *Solver) clauseSize(cr clauseRef) int {
	return int((s.arena[cr] &^ hdrForward) >> hdrSizeShift)
}

// clauseLits returns the literal body of a clause as a view into the arena.
// The slice aliases solver memory: it is invalidated by any clause
// allocation or compaction.
func (s *Solver) clauseLits(cr clauseRef) []uint32 {
	h := s.arena[cr]
	start := int(cr) + 1 + int(h&hdrLearnt)
	return s.arena[start : start+int(h>>hdrSizeShift)]
}

func (s *Solver) isLearnt(cr clauseRef) bool  { return s.arena[cr]&hdrLearnt != 0 }
func (s *Solver) isBase(cr clauseRef) bool    { return s.arena[cr]&hdrBase != 0 }
func (s *Solver) isDeleted(cr clauseRef) bool { return s.arena[cr]&hdrDeleted != 0 }

func (s *Solver) clauseLBD(cr clauseRef) int {
	return int((s.arena[cr] >> hdrLBDShift) & hdrLBDMask)
}

func (s *Solver) setClauseLBD(cr clauseRef, lbd int) {
	if lbd > lbdMax {
		lbd = lbdMax
	}
	s.arena[cr] = s.arena[cr]&^(hdrLBDMask<<hdrLBDShift) | uint32(lbd)<<hdrLBDShift
}

// clauseWords is the total slab footprint of the clause at cr.
func (s *Solver) clauseWords(cr clauseRef) int {
	h := s.arena[cr]
	return 1 + int(h&hdrLearnt) + int(h>>hdrSizeShift)
}

// actSlot returns the activity side-array index of a learnt clause.
func (s *Solver) actSlot(cr clauseRef) uint32 { return s.arena[cr+1] }

func (s *Solver) clauseAct(cr clauseRef) float32 { return s.claAct[s.arena[cr+1]] }

// allocActSlot hands out a free activity slot, recycling retired ones.
func (s *Solver) allocActSlot() uint32 {
	if n := len(s.claFree); n > 0 {
		slot := s.claFree[n-1]
		s.claFree = s.claFree[:n-1]
		s.claAct[slot] = 0
		return slot
	}
	s.claAct = append(s.claAct, 0)
	return uint32(len(s.claAct) - 1)
}

// markDeleted flags a clause dead (its slab words become reclaimable waste)
// and recycles its activity slot. The caller must already have detached it
// from the watch lists; learnt-index compaction is the caller's business.
func (s *Solver) markDeleted(cr clauseRef) {
	if s.arena[cr]&hdrDeleted != 0 {
		return
	}
	if s.arena[cr]&hdrLearnt != 0 {
		s.claFree = append(s.claFree, s.arena[cr+1])
	} else {
		s.liveProblem--
	}
	s.arena[cr] |= hdrDeleted
	s.wasted += s.clauseWords(cr)
	s.Stats.Deleted++
}

// forEachClause walks the slab and calls fn for every live clause, in
// allocation order. fn must not allocate or delete clauses.
func (s *Solver) forEachClause(fn func(cr clauseRef)) {
	for off := 1; off < len(s.arena); {
		h := s.arena[off]
		if h == 0 { // filler word left by in-place strengthening
			off++
			continue
		}
		if h&hdrDeleted == 0 {
			fn(clauseRef(off))
		}
		off += 1 + int(h&hdrLearnt) + int(h>>hdrSizeShift)
	}
}

// maybeCollect compacts the slab when at least a quarter of it is dead
// weight. Must run at decision level 0 with consistent watch lists.
func (s *Solver) maybeCollect() {
	if len(s.arena) > 4096 && s.wasted*4 >= len(s.arena) {
		s.garbageCollect()
	}
}

// garbageCollect rebuilds the arena with only the live clauses (arena
// compaction — the Release/Simplify reclamation path). Every live clause is
// reachable from the watch lists (all stored clauses have >= 2 literals),
// so the watch sweep both relocates clauses and rewrites watcher refs; the
// learnt index and reason array are then remapped through the forwarding
// pointers left in the old headers. Watch lists that grew far beyond their
// live population are reallocated at size, returning the slack to the Go
// heap. The retired slab is kept as scratch for the next compaction.
func (s *Solver) garbageCollect() {
	old := s.arena
	neu := s.gcArena
	if cap(neu) < len(old)-s.wasted {
		neu = make([]uint32, 0, len(old)-s.wasted)
	}
	neu = append(neu[:0], 0) // sentinel at offset 0

	move := func(cr clauseRef) clauseRef {
		h := old[cr]
		if h&hdrForward != 0 {
			return clauseRef(h &^ hdrForward)
		}
		total := 1 + int(h&hdrLearnt) + int(h>>hdrSizeShift)
		ncr := clauseRef(len(neu))
		neu = append(neu, old[int(cr):int(cr)+total]...)
		old[cr] = hdrForward | uint32(ncr)
		return ncr
	}

	for p := range s.watches {
		ws := s.watches[p]
		for i := range ws {
			tag := ws[i].cref & watchBinary
			ws[i].cref = move(ws[i].cref&^watchBinary) | tag
		}
		// Shrink over-capacity watch lists: removeWatch and the propagate
		// sweep only ever truncate, so capacity grown in a hot phase was
		// previously pinned forever.
		if cap(ws) >= 16 && cap(ws) >= 2*len(ws) {
			s.watches[p] = append(make([]watcher, 0, len(ws)), ws...)
		}
	}
	for i, cr := range s.learnts {
		s.learnts[i] = move(cr)
	}
	for v := range s.reason {
		if s.reason[v] != crUndef {
			s.reason[v] = move(s.reason[v])
		}
	}

	s.gcArena = old[:0]
	s.arena = neu
	s.wasted = 0
	s.Stats.Compactions++
}
