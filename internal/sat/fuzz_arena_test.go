package sat

import (
	"math/rand"
	"testing"
)

// FuzzArenaVsBruteForce is the differential fuzz target for the flat-arena
// solver: the fuzzer picks a seed and interleaving shape, the test derives
// a random incremental session from it (clause batches, assumption solves,
// a forced mid-stream inprocessing pass) and cross-checks every verdict
// against brute-force enumeration. Mutating the two integers explores
// different clause densities and solve cadences.
func FuzzArenaVsBruteForce(f *testing.F) {
	f.Add(int64(1), uint8(3))
	f.Add(int64(31337), uint8(7))
	f.Add(int64(-9), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, shape uint8) {
		rng := rand.New(rand.NewSource(seed))
		nVars := 3 + int(shape)%8
		rounds := 2 + int(shape>>3)%4
		s := New()
		addVars(s, nVars)
		var acc [][]Lit
		for r := 0; r < rounds; r++ {
			for _, c := range randomClauses(rng, nVars, 1+rng.Intn(2*nVars), 3) {
				acc = append(acc, c)
				s.AddClause(c...)
			}
			if r == rounds/2 {
				s.inprocess() // exercise subsumption/SSR mid-session
			}
			var assum []Lit
			if rng.Intn(2) == 1 {
				assum = append(assum, MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 1))
			}
			all := append([][]Lit{}, acc...)
			for _, a := range assum {
				all = append(all, []Lit{a})
			}
			want, _ := bruteForce(nVars, all)
			st := s.Solve(assum...)
			if want && st != Sat {
				t.Fatalf("round %d: brute force Sat, solver %v (assum %v, clauses %v)", r, st, assum, acc)
			}
			if !want && st != Unsat {
				t.Fatalf("round %d: brute force Unsat, solver %v (assum %v, clauses %v)", r, st, assum, acc)
			}
			if st == Sat {
				for _, c := range acc {
					ok := false
					for _, l := range c {
						if s.ModelValue(l) {
							ok = true
							break
						}
					}
					if !ok {
						t.Fatalf("round %d: model violates %v", r, c)
					}
				}
			}
		}
	})
}
