package sat

// SolveWithCore solves under the given assumptions and, when Unsat, returns
// a copy of the failing core.
func (s *Solver) SolveWithCore(assumptions []Lit) (Status, []Lit) {
	st := s.Solve(assumptions...)
	if st != Unsat {
		return st, nil
	}
	return st, append([]Lit(nil), s.core...)
}

// MinimizeCore shrinks an UNSAT core to a locally minimal one by
// deletion-based minimization: each literal is tentatively dropped and the
// remainder re-solved; literals whose removal keeps the formula Unsat are
// discarded. The result mirrors cvc5's minimal-unsat-cores option used by
// the paper's abduction oracle (§3.2.3): no single literal can be removed
// while staying Unsat, though the core is not guaranteed globally minimum.
//
// The input core must be an Unsat core for the solver's current clause
// database. The solver's clause database is reused incrementally, so learnt
// clauses from earlier calls accelerate later ones.
func (s *Solver) MinimizeCore(core []Lit) []Lit {
	cur := append([]Lit(nil), core...)
	for i := 0; i < len(cur); {
		trial := make([]Lit, 0, len(cur)-1)
		trial = append(trial, cur[:i]...)
		trial = append(trial, cur[i+1:]...)
		st := s.Solve(trial...)
		if st == Unsat {
			// The dropped literal is unnecessary. Prefer the (possibly much
			// smaller) core reported by the solver for the trial set.
			next := append([]Lit(nil), s.core...)
			if len(next) > 0 && len(next) <= len(trial) && subsetOf(next, trial) {
				cur = next
				i = 0
				continue
			}
			cur = trial
			// Stay at index i: a new literal shifted into this slot.
			continue
		}
		// Removal made it Sat (or Unknown): the literal is required.
		i++
	}
	return cur
}

func subsetOf(sub, super []Lit) bool {
	set := make(map[Lit]bool, len(super))
	for _, l := range super {
		set[l] = true
	}
	for _, l := range sub {
		if !set[l] {
			return false
		}
	}
	return true
}
