package sat

import "testing"

// php is shorthand for AddPigeonhole (benchwork.go) in this package's
// tests.
func php(s *Solver, pigeons, holes int) { AddPigeonhole(s, pigeons, holes) }

// TestExportLearntsRootUnitsHonorLocality checks the unit-fact half of the
// export path: level-0 trail literals are exported as unit clauses unless
// their variable was marked local.
func TestExportLearntsRootUnitsHonorLocality(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.MarkLocal(b)
	if !s.IsLocal(b) || s.IsLocal(a) {
		t.Fatal("locality flags wrong")
	}
	s.AddClause(PosLit(a))
	s.AddClause(PosLit(b))

	got := s.ExportLearnts(8)
	var sawA, sawB bool
	for _, cl := range got {
		if len(cl) != 1 {
			t.Fatalf("expected only units, got %v", cl)
		}
		switch cl[0].Var() {
		case a:
			sawA = true
		case b:
			sawB = true
		}
	}
	if !sawA {
		t.Fatal("non-local root unit was not exported")
	}
	if sawB {
		t.Fatal("local root unit leaked into the export")
	}
}

// TestExportImportLearntsRoundTrip solves an UNSAT pigeonhole instance,
// exports the learnt clauses and replays them into a second solver over the
// same base clauses: the import must be accepted, counted, and leave the
// second solver's verdict unchanged.
func TestExportImportLearntsRoundTrip(t *testing.T) {
	const pigeons, holes = 6, 5
	src := New()
	php(src, pigeons, holes)
	if st := src.Solve(); st != Unsat {
		t.Fatalf("PHP(%d,%d) = %v, want Unsat", pigeons, holes, st)
	}
	exported := src.ExportLearnts(64)
	if len(exported) == 0 {
		t.Fatal("pigeonhole search must learn exportable clauses")
	}
	if src.Stats.Exported != int64(len(exported)) {
		t.Fatalf("Exported stat = %d, want %d", src.Stats.Exported, len(exported))
	}
	for _, cl := range exported {
		if len(cl) == 0 {
			t.Fatal("empty clause exported")
		}
	}

	dst := New()
	php(dst, pigeons, holes)
	for _, cl := range exported {
		dst.ImportClause(cl...)
	}
	if dst.Stats.Imported != int64(len(exported)) {
		t.Fatalf("Imported stat = %d, want %d", dst.Stats.Imported, len(exported))
	}
	if st := dst.Solve(); st != Unsat {
		t.Fatalf("after import: %v, want Unsat", st)
	}
	// The replayed clauses must prune search: the importer's conflict count
	// must not exceed the cold solver's.
	if dst.Stats.Conflicts > src.Stats.Conflicts {
		t.Fatalf("import did not help: dst conflicts %d > src %d",
			dst.Stats.Conflicts, src.Stats.Conflicts)
	}
}

// TestExportLearntsExcludesSelectorClauses checks that clauses whose
// derivation pinned a selector are never exported: selectors are
// solver-local, so any clause mentioning one is meaningless elsewhere.
func TestExportLearntsExcludesSelectorClauses(t *testing.T) {
	s := New()
	x := s.NewVar()
	sel := s.NewSelector()
	// sel → x and sel → ¬x: assuming sel is contradictory.
	s.AddClause(sel.Not(), PosLit(x))
	s.AddClause(sel.Not(), NegLit(x))
	if st := s.Solve(sel); st != Unsat {
		t.Fatalf("got %v, want Unsat under sel", st)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v, want Sat without sel", st)
	}
	for _, cl := range s.ExportLearnts(8) {
		for _, l := range cl {
			if l.Var() == sel.Var() {
				t.Fatalf("selector leaked into exported clause %v", cl)
			}
		}
	}
}

// TestExportLearntsLengthCap checks maxLen filtering.
func TestExportLearntsLengthCap(t *testing.T) {
	s := New()
	php(s, 6, 5)
	if st := s.Solve(); st != Unsat {
		t.Fatal("want Unsat")
	}
	for _, cl := range s.ExportLearnts(2) {
		if len(cl) > 2 {
			t.Fatalf("clause %v exceeds maxLen", cl)
		}
	}
}
