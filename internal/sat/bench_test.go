package sat

import (
	"testing"
)

// Propagate-heavy benchmark family (BenchmarkSat*). These are the rows
// behind BENCH_sat.json: the chain workload isolates the two-watched-literal
// propagation loop (zero conflicts, tens of thousands of implications per
// Solve), the PHP and random-3SAT workloads add conflict analysis,
// learnt-clause allocation and DB reduction on top. The workload
// definitions live in benchwork.go (BenchWorkloads), shared with
// cmd/benchjson -sat and cmd/experiments so all three harnesses measure
// byte-identical instances.

// benchWorkload runs one named BenchWorkloads entry under the benchmark
// harness.
func benchWorkload(b *testing.B, name string) {
	for _, w := range BenchWorkloads() {
		if w.Name != name {
			continue
		}
		op := w.New()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := op(); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	b.Fatalf("unknown workload %q", name)
}

// BenchmarkSatPropagateChains keeps its own harness so it can report the
// props/op metric; the instance is built by the same constructor shape as
// the shared propagate_chains workload (200 chains of length 100).
func BenchmarkSatPropagateChains(b *testing.B) {
	const k, l = 200, 100
	s := New()
	heads := make([]Lit, k)
	for i := 0; i < k; i++ {
		prev := PosLit(s.NewVar())
		heads[i] = prev
		for j := 0; j < l; j++ {
			next := PosLit(s.NewVar())
			s.AddClause(prev.Not(), next)
			prev = next
		}
	}
	if st := s.Solve(heads...); st != Sat {
		b.Fatalf("chain workload: %v, want Sat", st)
	}
	start := s.Stats.Propagations
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st := s.Solve(heads...); st != Sat {
			b.Fatalf("chain workload: %v, want Sat", st)
		}
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(s.Stats.Propagations-start)/float64(b.N), "props/op")
	}
}

func BenchmarkSatPropagateWide(b *testing.B)   { benchWorkload(b, "propagate_wide") }
func BenchmarkSatSolvePHP(b *testing.B)        { benchWorkload(b, "solve_php") }
func BenchmarkSatSolveRandom3SAT(b *testing.B) { benchWorkload(b, "solve_random3sat") }
