package sat

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"hhoudini/internal/faultinject"
)

// Stats aggregates solver counters across Solve calls.
type Stats struct {
	Solves       int64
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
	Learnt       int64
	Deleted      int64
	// ClausesAdded counts AddClause calls accepted into the database
	// (including units and clauses later simplified away) — the raw
	// encode-work measure behind the incremental-backend ablation.
	ClausesAdded int64
	// VarsAdded counts allocated variables (monotone; equals NumVars).
	VarsAdded int64
	// Released counts selectors retracted via Release; Simplifies counts
	// level-0 garbage-collection passes over the clause database.
	Released   int64
	Simplifies int64
	// Exported counts learnt clauses handed out via ExportLearnts; Imported
	// counts clauses replayed in via AddClause from a cross-run cache (the
	// caller increments it through ImportClause).
	Exported int64
	Imported int64
	// Compactions counts arena garbage collections (see arena.go); Subsumed
	// and Strengthened count clauses removed / shrunk by the inprocessing
	// pass (backward subsumption and self-subsuming resolution; see
	// inprocess.go). Inprocessings counts the passes themselves.
	Compactions   int64
	Subsumed      int64
	Strengthened  int64
	Inprocessings int64
	// SharedOut counts learnt clauses handed to the mid-run export hook
	// (lock-free clause exchange; see SetExchangeHooks).
	SharedOut int64
}

// watcher is one two-watched-literal entry. cref carries the watchBinary
// tag for binary clauses: their other literal is always the blocker, so
// propagation resolves them from the watch list alone, never touching the
// arena.
type watcher struct {
	cref    clauseRef
	blocker Lit
}

// watchBinary tags a watcher whose clause has exactly two literals.
const watchBinary = clauseRef(1) << 31

// Solver is an incremental CDCL SAT solver. The zero value is not usable;
// construct with New. A Solver is not safe for concurrent use; parallel
// callers each build their own Solver (queries in this repository are
// independent, mirroring the paper's per-task solver processes).
type Solver struct {
	// arena is the flat clause slab (see arena.go); wasted counts its dead
	// words, liveProblem its live problem clauses. claAct is the learnt
	// activity side-array (claFree recycles its slots); gcArena is the
	// scratch slab the compactor double-buffers into.
	arena       []uint32
	wasted      int
	liveProblem int
	claAct      []float32
	claFree     []uint32
	gcArena     []uint32

	learnts  []clauseRef
	watches  [][]watcher // indexed by Lit
	assigns  []lbool     // indexed by Var
	polarity []bool      // saved phase per Var; true = assign false next time
	decision []bool      // per Var: eligible as a decision variable
	local    []bool      // per Var: scoped to this solver (selectors); see MarkLocal
	level    []int32
	reason   []clauseRef
	trail    []Lit
	trailLim []int32
	qhead    int

	activity []float64
	varInc   float64
	claInc   float64
	order    *varHeap

	seen         []byte
	litSeen      []byte // indexed by Lit; inprocessing subset checks
	stampLevel   []int64
	stampCtr     int64
	analyzeStack []Lit
	learntBuf    []Lit // reusable conflict-clause buffer (see analyze)
	toClear      []Lit

	ok          bool // false once the clause DB is UNSAT at level 0
	model       []lbool
	core        []Lit
	assumptions []Lit

	maxLearnts      float64
	learntAdjustCt  int64
	learntAdjustIvl float64 // current adjustment interval, grows by adjustInc

	// lastInprocess remembers Stats.Conflicts at the previous inprocessing
	// pass; scratchRefs is Simplify's reusable satisfied-clause buffer.
	lastInprocess int64
	scratchRefs   []clauseRef

	// exportHook/drainHook are the mid-run clause-exchange callbacks
	// (SetExchangeHooks): exportHook fires inside the search loop for each
	// freshly learnt low-LBD base clause, drainHook fires at restart
	// boundaries with the solver backtracked to level 0 so foreign clauses
	// can be imported via AddClause.
	exportHook func(lits []Lit, lbd int)
	drainHook  func()

	// MaxConflicts bounds the search effort per Solve call; <0 means
	// unlimited. When the budget is exhausted Solve returns Unknown.
	// Note the comparison is against the cumulative Stats.Conflicts
	// counter: long-lived (pooled) solvers should use SetConflictBudget,
	// which expresses a budget relative to the work already done.
	MaxConflicts int64

	// ActivityOnlyReduce restores the pre-arena learnt-DB reduction policy
	// (sort by activity alone, ignore LBD) for the SAT-core ablation in
	// cmd/experiments. Leave false for the LBD-guided default.
	ActivityOnlyReduce bool

	// interrupted is the cooperative cancellation flag: Interrupt (callable
	// from any goroutine — the only concurrency-safe entry point on a
	// Solver) sets it, and the CDCL search loop polls it once per
	// decision/conflict iteration, abandoning the Solve call with Unknown.
	// The flag is sticky across Solve calls until ClearInterrupt, so a
	// cancellation that lands between two queries still stops the next one.
	interrupted atomic.Bool

	// releasedSinceGC counts Release calls since the last Simplify; when
	// it crosses releaseGCThreshold the dead clauses are collected.
	releasedSinceGC int

	Stats Stats
}

// New returns an empty solver with no variables and no clauses.
func New() *Solver {
	s := &Solver{
		arena:        make([]uint32, 1, 1024), // offset 0 is the crUndef sentinel
		ok:           true,
		varInc:       1.0,
		claInc:       1.0,
		MaxConflicts: -1,
	}
	s.order = newVarHeap(&s.activity)
	return s
}

const (
	varDecay        = 0.95
	claDecay        = 0.999
	restartFirst    = 100
	learntFactor    = 1.0 / 3.0
	learntIncFactor = 1.1
	adjustStart     = 100
	adjustInc       = 1.5

	// glueLBD: learnt clauses at or below this LBD are never deleted by
	// reduceDB ("glue" clauses in Glucose terminology).
	glueLBD = 2
	// shareMaxLBD/shareMaxLen bound what the mid-run export hook is offered:
	// only short, low-glue clauses are worth a sibling's import cost.
	shareMaxLBD = 4
	shareMaxLen = 12
)

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NewVar allocates a fresh variable.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	s.Stats.VarsAdded++
	s.assigns = append(s.assigns, lUndef)
	s.polarity = append(s.polarity, true)
	s.decision = append(s.decision, true)
	s.local = append(s.local, false)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, crUndef)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, 0)
	s.litSeen = append(s.litSeen, 0, 0)
	s.watches = append(s.watches, nil, nil)
	s.order.insert(v)
	return v
}

// ensureVar allocates variables up to and including v.
func (s *Solver) ensureVar(v Var) {
	for Var(len(s.assigns)) <= v {
		s.NewVar()
	}
}

func (s *Solver) valueVar(v Var) lbool { return s.assigns[v] }

func (s *Solver) valueLit(l Lit) lbool { return s.assigns[l>>1].xorSignBit(lbool(l & 1)) }

func (s *Solver) decisionLevel() int32 { return int32(len(s.trailLim)) }

// AddClause adds a clause to the solver. It returns false if the clause
// database became trivially unsatisfiable (at decision level 0). Literals
// over unallocated variables allocate them implicitly. Must be called at
// decision level 0 (i.e. not from within a Solve callback).
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause called above decision level 0")
	}
	s.Stats.ClausesAdded++
	// Normalize: sort, remove duplicates, detect tautologies, drop literals
	// already false at level 0, and succeed early if already satisfied.
	ls := make([]Lit, len(lits))
	copy(ls, lits)
	for _, l := range ls {
		if l < 0 {
			panic("sat: undefined literal in clause")
		}
		s.ensureVar(l.Var())
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:0]
	var prev Lit = LitUndef
	for _, l := range ls {
		switch {
		case s.valueLit(l) == lTrue || l == prev.Not():
			return true // satisfied or tautology
		case s.valueLit(l) == lFalse || l == prev:
			continue // falsified at level 0 or duplicate
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], crUndef)
		s.ok = s.propagate() == crUndef
		return s.ok
	}
	cr := s.allocClause(out, false, 0)
	s.attachClause(cr)
	return true
}

// allocClause appends a clause to the arena. For learnt clauses lbd is the
// literal block distance computed at learn time; problem clauses pass 0.
func (s *Solver) allocClause(lits []Lit, learnt bool, lbd int) clauseRef {
	base := false
	if learnt {
		// Tag base-system clauses during CDCL: a learnt clause mentioning
		// no local (selector) variable is exportable across solvers over
		// the same base system — guarded clauses (¬s ∨ C) can never
		// contribute to a derivation without leaving a ¬s literal behind
		// (no clause contains a positive selector), and level-0 release
		// units (¬s) only deactivate guarded clauses — so it is sound to
		// replay into any solver over the same base system. Exported via
		// ExportLearnts and the mid-run exchange hook.
		base = true
		for _, l := range lits {
			if s.local[l.Var()] {
				base = false
				break
			}
		}
	}
	cr := clauseRef(len(s.arena))
	s.arena = append(s.arena, mkHeader(len(lits), learnt, base, lbd))
	if learnt {
		s.arena = append(s.arena, s.allocActSlot())
	}
	for _, l := range lits {
		s.arena = append(s.arena, uint32(l))
	}
	if learnt {
		s.learnts = append(s.learnts, cr)
		s.Stats.Learnt++
	} else {
		s.liveProblem++
	}
	return cr
}

func (s *Solver) attachClause(cr clauseRef) {
	lits := s.clauseLits(cr)
	tag := clauseRef(0)
	if len(lits) == 2 {
		tag = watchBinary
	}
	l0, l1 := Lit(lits[0]), Lit(lits[1])
	s.watches[l0.Not()] = append(s.watches[l0.Not()], watcher{cr | tag, l1})
	s.watches[l1.Not()] = append(s.watches[l1.Not()], watcher{cr | tag, l0})
}

func (s *Solver) detachClause(cr clauseRef) {
	lits := s.clauseLits(cr)
	s.removeWatch(Lit(lits[0]).Not(), cr)
	s.removeWatch(Lit(lits[1]).Not(), cr)
}

func (s *Solver) removeWatch(l Lit, cr clauseRef) {
	ws := s.watches[l]
	for i := range ws {
		if ws[i].cref&^watchBinary == cr {
			ws[i] = ws[len(ws)-1]
			s.watches[l] = ws[:len(ws)-1]
			return
		}
	}
}

func (s *Solver) uncheckedEnqueue(l Lit, from clauseRef) {
	v := l.Var()
	s.assigns[v] = boolToLbool(!l.Neg())
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation over the two-watched-literal scheme.
// It returns the conflicting clause reference, or crUndef.
//
// Binary clauses resolve entirely from the watcher (the blocker is the
// other literal); longer clauses are walked in place in the arena.
func (s *Solver) propagate() clauseRef {
	confl := crUndef
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++
		ws := s.watches[p]
		i, j := 0, 0
	nextWatcher:
		for i < len(ws) {
			w := ws[i]
			// Blocker check: clause already satisfied. The value is loaded
			// once and shared with the binary fast path below.
			bv := s.valueLit(w.blocker)
			if bv == lTrue {
				ws[j] = w
				i++
				j++
				continue
			}
			if w.cref&watchBinary != 0 {
				// Binary clause: the blocker is the only other literal.
				i++
				ws[j] = w
				j++
				if bv == lFalse {
					confl = w.cref &^ watchBinary
					s.qhead = len(s.trail)
					for i < len(ws) {
						ws[j] = ws[i]
						i++
						j++
					}
					break
				}
				s.uncheckedEnqueue(w.blocker, w.cref&^watchBinary)
				continue
			}
			cr := w.cref
			h := s.arena[cr]
			start := int(cr) + 1 + int(h&hdrLearnt)
			lits := s.arena[start : start+int(h>>hdrSizeShift)]
			// Make sure the false literal is lits[1].
			if Lit(lits[0]) == p.Not() {
				lits[0], lits[1] = lits[1], lits[0]
			}
			i++
			first := Lit(lits[0])
			if first != w.blocker && s.valueLit(first) == lTrue {
				ws[j] = watcher{cr, first}
				j++
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(lits); k++ {
				if s.valueLit(Lit(lits[k])) != lFalse {
					lits[1], lits[k] = lits[k], lits[1]
					nl := Lit(lits[1]).Not()
					s.watches[nl] = append(s.watches[nl], watcher{cr, first})
					continue nextWatcher
				}
			}
			// Clause is unit or conflicting.
			ws[j] = watcher{cr, first}
			j++
			if s.valueLit(first) == lFalse {
				confl = cr
				s.qhead = len(s.trail)
				// Copy remaining watchers back.
				for i < len(ws) {
					ws[j] = ws[i]
					i++
					j++
				}
				break
			}
			s.uncheckedEnqueue(first, cr)
		}
		s.watches[p] = ws[:j]
		if confl != crUndef {
			break
		}
	}
	return confl
}

// cancelUntil backtracks to the given decision level.
func (s *Solver) cancelUntil(lvl int32) {
	if s.decisionLevel() <= lvl {
		return
	}
	end := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= int(end); i-- {
		l := s.trail[i]
		v := l.Var()
		s.assigns[v] = lUndef
		s.polarity[v] = l.Neg()
		s.reason[v] = crUndef
		if !s.order.inHeap(v) && s.decision[v] {
			s.order.insert(v)
		}
	}
	s.trail = s.trail[:end]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) newDecisionLevel() { s.trailLim = append(s.trailLim, int32(len(s.trail))) }

func (s *Solver) varBumpActivity(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.decreased(v)
}

func (s *Solver) claBumpActivity(cr clauseRef) {
	slot := s.arena[cr+1]
	s.claAct[slot] += float32(s.claInc)
	if s.claAct[slot] > 1e20 {
		// Rescaling the whole side-array touches retired slots too; they
		// hold stale values nobody reads, so that is harmless.
		for i := range s.claAct {
			s.claAct[i] *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

// computeLBD returns the literal block distance of a clause: the number of
// distinct decision levels among its literals (Glucose's glue metric). Low
// LBD predicts reuse — such clauses chain propagations across few decision
// boundaries — so it drives both learnt-DB reduction and mid-run export.
func (s *Solver) computeLBD(lits []Lit) int {
	s.stampCtr++
	n := 0
	for _, l := range lits {
		lv := s.level[l.Var()]
		if lv == 0 {
			continue
		}
		for int(lv) >= len(s.stampLevel) {
			s.stampLevel = append(s.stampLevel, 0)
		}
		if s.stampLevel[lv] != s.stampCtr {
			s.stampLevel[lv] = s.stampCtr
			n++
		}
	}
	return n
}

// reasonLits returns the body of p's reason clause with the invariant
// lits[0] == p restored. The long-clause propagation path always enqueues
// lits[0], but the binary fast path enqueues the blocker without touching
// the arena, so a binary reason may have p at position 1 — swapping the two
// watched positions is always safe.
func (s *Solver) reasonLits(p Lit, cr clauseRef) []uint32 {
	lits := s.clauseLits(cr)
	if Lit(lits[0]) != p {
		lits[0], lits[1] = lits[1], lits[0]
	}
	return lits
}

// analyze performs first-UIP conflict analysis, returning the learnt clause
// (asserting literal first) and the backjump level.
func (s *Solver) analyze(confl clauseRef) ([]Lit, int32) {
	// The learnt clause is assembled in a reusable buffer: every caller
	// copies the literals out (into the arena, or through the export hook)
	// before the next conflict. Slot 0 is reserved for the asserting literal.
	learnt := append(s.learntBuf[:0], LitUndef)
	pathC := 0
	p := LitUndef
	idx := len(s.trail) - 1

	for {
		if s.isLearnt(confl) {
			s.claBumpActivity(confl)
		}
		var lits []uint32
		start := 0
		if p != LitUndef {
			lits = s.reasonLits(p, confl)
			start = 1
		} else {
			lits = s.clauseLits(confl)
		}
		for _, qw := range lits[start:] {
			q := Lit(qw)
			v := q.Var()
			if s.seen[v] == 0 && s.level[v] > 0 {
				s.varBumpActivity(v)
				s.seen[v] = 1
				if s.level[v] >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Next literal to resolve on.
		for s.seen[s.trail[idx].Var()] == 0 {
			idx--
		}
		p = s.trail[idx]
		idx--
		confl = s.reason[p.Var()]
		s.seen[p.Var()] = 0
		pathC--
		if pathC == 0 {
			break
		}
	}
	learnt[0] = p.Not()

	// Conflict-clause minimization: drop literals implied by the rest.
	s.toClear = s.toClear[:0]
	for _, l := range learnt {
		s.toClear = append(s.toClear, l)
		s.seen[l.Var()] = 1
	}
	j := 1
	for i := 1; i < len(learnt); i++ {
		l := learnt[i]
		if s.reason[l.Var()] == crUndef || !s.litRedundant(l) {
			learnt[j] = l
			j++
		}
	}
	learnt = learnt[:j]
	for _, l := range s.toClear {
		s.seen[l.Var()] = 0
	}

	// Find the backjump level: the second-highest level in the clause.
	btLevel := int32(0)
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].Var()]
	}
	s.learntBuf = learnt
	return learnt, btLevel
}

// litRedundant checks whether l is implied by the other literals currently
// marked in seen (standard recursive minimization, iterative form).
func (s *Solver) litRedundant(l Lit) bool {
	s.analyzeStack = s.analyzeStack[:0]
	s.analyzeStack = append(s.analyzeStack, l)
	top := len(s.toClear)
	for len(s.analyzeStack) > 0 {
		p := s.analyzeStack[len(s.analyzeStack)-1]
		s.analyzeStack = s.analyzeStack[:len(s.analyzeStack)-1]
		cr := s.reason[p.Var()]
		if cr == crUndef {
			// Shouldn't happen for stack entries, defensive.
			return false
		}
		// Stack entries are the falsified occurrences (as they appear in
		// learnt/reason bodies), so the literal the reason clause implied
		// is p.Not() — that is what belongs at position 0.
		lits := s.reasonLits(p.Not(), cr)
		for _, qw := range lits[1:] {
			q := Lit(qw)
			v := q.Var()
			if s.seen[v] != 0 || s.level[v] == 0 {
				continue
			}
			if s.reason[v] == crUndef {
				// Decision var not in the learnt set: l is not redundant.
				for len(s.toClear) > top {
					s.seen[s.toClear[len(s.toClear)-1].Var()] = 0
					s.toClear = s.toClear[:len(s.toClear)-1]
				}
				return false
			}
			s.seen[v] = 1
			s.toClear = append(s.toClear, q)
			s.analyzeStack = append(s.analyzeStack, q)
		}
	}
	return true
}

// analyzeFinal computes the subset of assumptions that imply the failure of
// assumption p (whose complement is currently implied). The result is stored
// in s.core, expressed as the failing assumption literals themselves.
func (s *Solver) analyzeFinal(p Lit) {
	s.core = s.core[:0]
	s.core = append(s.core, p)
	if s.decisionLevel() == 0 {
		return
	}
	s.seen[p.Var()] = 1
	for i := len(s.trail) - 1; i >= int(s.trailLim[0]); i-- {
		v := s.trail[i].Var()
		if s.seen[v] == 0 {
			continue
		}
		if s.reason[v] == crUndef {
			// A decision above level 0 during the assumption phase is an
			// assumption literal; it participates in the core as-is.
			s.core = append(s.core, s.trail[i])
		} else {
			lits := s.reasonLits(s.trail[i], s.reason[v])
			for _, qw := range lits[1:] {
				q := Lit(qw)
				if s.level[q.Var()] > 0 {
					s.seen[q.Var()] = 1
				}
			}
		}
		s.seen[v] = 0
	}
	s.seen[p.Var()] = 0
}

func (s *Solver) pickBranchLit() Lit {
	for !s.order.empty() {
		v := s.order.removeMin()
		if s.assigns[v] == lUndef && s.decision[v] {
			return MkLit(v, s.polarity[v])
		}
	}
	return LitUndef
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(y float64, i int) float64 {
	size, seq := 1, 0
	for size < i+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != i {
		size = (size - 1) >> 1
		seq--
		i = i % size
	}
	return math.Pow(y, float64(seq))
}

// reduceDB halves the learnt database, deleting the clauses least likely to
// be useful again: sorted by LBD (high glue first) with activity as the
// tiebreak, sparing binary clauses, glue clauses (LBD <= glueLBD) and
// clauses locked as reasons. This replaces the seed's activity-only policy;
// ActivityOnlyReduce restores that policy so the SAT-core ablation in
// cmd/experiments can measure the difference.
func (s *Solver) reduceDB() {
	sort.Slice(s.learnts, func(i, j int) bool {
		ci, cj := s.learnts[i], s.learnts[j]
		if !s.ActivityOnlyReduce {
			li, lj := s.clauseLBD(ci), s.clauseLBD(cj)
			if li != lj {
				return li > lj
			}
		}
		return s.clauseAct(ci) < s.clauseAct(cj)
	})
	j := 0
	for i, cr := range s.learnts {
		if i < len(s.learnts)/2 && s.clauseSize(cr) > 2 && !s.locked(cr) &&
			(s.ActivityOnlyReduce || s.clauseLBD(cr) > glueLBD) {
			s.detachClause(cr)
			s.markDeleted(cr)
		} else {
			s.learnts[j] = cr
			j++
		}
	}
	s.learnts = s.learnts[:j]
}

func (s *Solver) locked(cr clauseRef) bool {
	l0 := Lit(s.clauseLits(cr)[0])
	return s.valueLit(l0) == lTrue && s.reason[l0.Var()] == cr
}

// Interrupt asks the solver to abandon the current (or next) Solve call at
// the next interrupt check: the search loop polls the flag once per
// decision/conflict iteration, so an in-flight query returns Unknown within
// one such interval. Interrupt is safe to call from any goroutine — it is
// the one concurrency-safe entry point on a Solver — which is what lets a
// cancelled Learn stop workers' queries without owning their solvers.
func (s *Solver) Interrupt() { s.interrupted.Store(true) }

// ClearInterrupt re-arms an interrupted solver for further queries. Pool
// and cache owners call it when a solver changes hands, so a stale
// cancellation from a previous owner cannot starve the next one.
func (s *Solver) ClearInterrupt() { s.interrupted.Store(false) }

// Interrupted reports whether Interrupt has been called since the last
// ClearInterrupt.
func (s *Solver) Interrupted() bool { return s.interrupted.Load() }

// SetExchangeHooks installs the mid-run clause-exchange callbacks (both may
// be nil to detach). export fires inside the search loop for every freshly
// learnt base clause with LBD <= shareMaxLBD and at most shareMaxLen
// literals; the slice is borrowed — the hook must copy or translate it
// before returning. drain fires at restart boundaries with the solver
// backtracked to decision level 0, so the hook may add foreign clauses via
// AddClause/ImportClause; a long drain should poll Interrupted and bail.
// Hooks run on the Solve caller's goroutine and must be cleared before a
// solver changes owners (pool retirement / cache check-in).
func (s *Solver) SetExchangeHooks(export func(lits []Lit, lbd int), drain func()) {
	s.exportHook = export
	s.drainHook = drain
}

// SetConflictBudget bounds the *next* search effort to n more conflicts,
// independent of how many conflicts this solver has already spent: it
// rebases MaxConflicts on the cumulative Stats.Conflicts counter. n < 0
// removes the bound. This is the per-query budget primitive behind the
// learner's Unknown-escalation ladder; pooled solvers must use it instead
// of assigning MaxConflicts directly.
func (s *Solver) SetConflictBudget(n int64) {
	if n < 0 {
		s.MaxConflicts = -1
		return
	}
	s.MaxConflicts = s.Stats.Conflicts + n
}

// maybeExport offers a freshly learnt clause to the mid-run exchange hook
// when it is worth a sibling's time: base (no local variables), short, and
// low-LBD.
func (s *Solver) maybeExport(lits []Lit, lbd int) {
	if s.exportHook == nil || lbd > shareMaxLBD || len(lits) > shareMaxLen {
		return
	}
	for _, l := range lits {
		if s.local[l.Var()] {
			return
		}
	}
	s.Stats.SharedOut++
	s.exportHook(lits, lbd)
}

// search runs CDCL until a model is found, the formula is refuted, the
// restart budget (nofConflicts) is exhausted, the global conflict budget
// runs out, or the solver is interrupted.
func (s *Solver) search(nofConflicts int64) Status {
	conflictC := int64(0)
	for {
		if s.interrupted.Load() {
			return Unknown
		}
		confl := s.propagate()
		if confl != crUndef {
			s.Stats.Conflicts++
			conflictC++
			if s.decisionLevel() == 0 {
				s.ok = false
				s.core = s.core[:0]
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			lbd := s.computeLBD(learnt)
			s.maybeExport(learnt, lbd)
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], crUndef)
			} else {
				cr := s.allocClause(learnt, true, lbd)
				s.attachClause(cr)
				s.claBumpActivity(cr)
				s.uncheckedEnqueue(learnt[0], cr)
			}
			s.varInc /= varDecay
			s.claInc /= claDecay

			s.learntAdjustCt--
			if s.learntAdjustCt <= 0 {
				// Each adjustment period is adjustInc times longer than the
				// last (MiniSat's learntsize_adjust schedule). The interval
				// must grow geometrically: a constant period would raise
				// maxLearnts faster than one-learnt-per-conflict can fill
				// the DB, and reduceDB would never trigger.
				s.learntAdjustIvl *= adjustInc
				s.learntAdjustCt = int64(s.learntAdjustIvl)
				s.maxLearnts *= learntIncFactor
			}
			continue
		}

		// No conflict.
		if nofConflicts >= 0 && conflictC >= nofConflicts {
			s.cancelUntil(int32(len(s.assumptions)))
			return Unknown
		}
		if s.MaxConflicts >= 0 && s.Stats.Conflicts >= s.MaxConflicts {
			return Unknown
		}
		if float64(len(s.learnts)) >= s.maxLearnts+float64(len(s.trail)) {
			s.reduceDB()
		}

		// Assumption handling: decide pending assumptions first.
		next := LitUndef
		for int(s.decisionLevel()) < len(s.assumptions) {
			p := s.assumptions[s.decisionLevel()]
			switch s.valueLit(p) {
			case lTrue:
				s.newDecisionLevel() // already satisfied; dummy level
			case lFalse:
				s.analyzeFinal(p)
				return Unsat
			default:
				next = p
			}
			if next != LitUndef {
				break
			}
		}
		if next == LitUndef {
			if len(s.trail) == len(s.assigns) {
				// Every variable is assigned and propagation is at fixpoint:
				// the assignment is a model. Returning here (instead of
				// letting pickBranchLit discover it) keeps the order heap
				// intact — on propagation-dominated workloads the heap would
				// otherwise be drained of every assigned variable and rebuilt
				// one insert at a time by the final cancelUntil.
				return Sat
			}
			next = s.pickBranchLit()
			if next == LitUndef {
				// All decision variables assigned: model found.
				return Sat
			}
			s.Stats.Decisions++
		}
		s.newDecisionLevel()
		s.uncheckedEnqueue(next, crUndef)
	}
}

// Solve determines satisfiability of the clause database under the given
// assumption literals. On Sat, Model/ModelValue are valid; on Unsat, Core
// returns the failing subset of assumptions.
func (s *Solver) Solve(assumptions ...Lit) Status {
	s.Stats.Solves++
	s.model = nil
	s.core = s.core[:0]
	if !s.ok {
		return Unsat
	}
	// Chaos hook: a forced Unknown models "the solver gave up" without
	// burning search effort. One atomic load when the harness is disarmed.
	if faultinject.Enabled() && faultinject.Fire(faultinject.SolverUnknown) {
		return Unknown
	}
	for _, a := range assumptions {
		s.ensureVar(a.Var())
	}
	s.assumptions = append(s.assumptions[:0], assumptions...)
	s.maxLearnts = float64(s.numProblemClauses()) * learntFactor
	if s.maxLearnts < 1000 {
		s.maxLearnts = 1000
	}
	s.learntAdjustIvl = adjustStart
	s.learntAdjustCt = adjustStart

	status := Unknown
	for restart := 0; status == Unknown; restart++ {
		budget := int64(luby(2.0, restart) * restartFirst)
		status = s.search(budget)
		s.Stats.Restarts++
		if status == Unknown && s.interrupted.Load() {
			// A cancelled query stays Unknown: do not restart. A Sat/Unsat
			// verdict that raced the interrupt is still valid and kept.
			break
		}
		if s.MaxConflicts >= 0 && s.Stats.Conflicts >= s.MaxConflicts && status == Unknown {
			break
		}
		if status == Unknown {
			// Restart boundary: drain sibling rings (mid-run clause
			// exchange) and, periodically, run the inprocessing pass. Both
			// need the solver at level 0; assumptions are re-decided by the
			// next search call.
			if s.drainHook != nil {
				s.cancelUntil(0)
				s.drainHook()
			}
			if s.Stats.Conflicts-s.lastInprocess >= inprocessInterval {
				s.cancelUntil(0)
				s.inprocess()
			}
			if !s.ok {
				// A level-0 contradiction from imported or strengthened
				// clauses refutes the database independent of assumptions.
				s.core = s.core[:0]
				status = Unsat
			}
		}
	}
	if status == Sat {
		s.model = make([]lbool, len(s.assigns))
		copy(s.model, s.assigns)
	}
	s.cancelUntil(0)
	s.assumptions = s.assumptions[:0]
	return status
}

func (s *Solver) numProblemClauses() int {
	return s.liveProblem
}

// ModelValue returns the value of l in the most recent satisfying model.
// It panics if the last Solve did not return Sat.
func (s *Solver) ModelValue(l Lit) bool {
	if s.model == nil {
		panic("sat: ModelValue without a model")
	}
	v := s.model[l.Var()].xorSign(l.Neg())
	return v == lTrue // unassigned defaults to false
}

// Core returns the subset of the assumption literals under which the last
// Solve call was Unsat. The returned literals are assumption literals
// (not negated). An empty core means the clause database is Unsat on its
// own. The slice is owned by the solver; callers must copy to retain it.
func (s *Solver) Core() []Lit {
	return s.core
}

// SetDecisionVar includes or excludes v from branching decisions.
// Non-decision variables can still be assigned by propagation.
func (s *Solver) SetDecisionVar(v Var, b bool) {
	s.ensureVar(v)
	s.decision[v] = b
	if b && !s.order.inHeap(v) {
		s.order.insert(v)
	}
}

// Okay reports whether the clause database is still possibly satisfiable
// (false once an unconditional contradiction was derived).
func (s *Solver) Okay() bool { return s.ok }

// NumClauses returns the number of live problem clauses plus learnt clauses.
func (s *Solver) NumClauses() int {
	return s.liveProblem + len(s.learnts)
}

func (s *Solver) String() string {
	return fmt.Sprintf("sat.Solver{vars: %d, clauses: %d, conflicts: %d}",
		s.NumVars(), s.NumClauses(), s.Stats.Conflicts)
}
