package sat

import (
	"math/rand"
	"testing"
)

// Differential test for the arena solver on *interleaved* incremental use:
// random rounds of AddClause / Solve-with-assumptions against brute-force
// enumeration. The single-shot quick tests never add clauses after a Solve,
// which is exactly what BMC/PDR/the learner do all day.
func TestArenaVsBruteForceInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	for iter := 0; iter < 300; iter++ {
		nVars := 3 + rng.Intn(8)
		s := New()
		addVars(s, nVars)
		var acc [][]Lit // clauses added so far
		rounds := 2 + rng.Intn(5)
		for r := 0; r < rounds; r++ {
			for _, c := range randomClauses(rng, nVars, 1+rng.Intn(2*nVars), 3) {
				acc = append(acc, c)
				s.AddClause(c...)
			}
			nAssum := rng.Intn(3)
			var assum []Lit
			used := map[Var]bool{}
			for len(assum) < nAssum {
				v := Var(rng.Intn(nVars))
				if used[v] {
					break
				}
				used[v] = true
				assum = append(assum, MkLit(v, rng.Intn(2) == 1))
			}
			all := append([][]Lit{}, acc...)
			for _, a := range assum {
				all = append(all, []Lit{a})
			}
			want, _ := bruteForce(nVars, all)
			st := s.Solve(assum...)
			if want && st != Sat {
				t.Fatalf("iter %d round %d: brute force Sat, solver %v (assum %v, clauses %v)",
					iter, r, st, assum, acc)
			}
			if !want && st != Unsat {
				t.Fatalf("iter %d round %d: brute force Unsat, solver %v (assum %v, clauses %v)",
					iter, r, st, assum, acc)
			}
			if st == Sat {
				for _, c := range acc {
					ok := false
					for _, l := range c {
						if s.ModelValue(l) {
							ok = true
							break
						}
					}
					if !ok {
						t.Fatalf("iter %d round %d: model violates %v", iter, r, c)
					}
				}
			}
		}
	}
}
