// Package sat implements a CDCL (conflict-driven clause learning) SAT solver
// with assumption-based incremental solving and UNSAT-core extraction.
//
// The solver is the decision-procedure substrate of this repository: the
// paper performs its abduction queries with cvc5 over bit-level hardware;
// here circuits are bit-blasted (package circuit) and every inductivity or
// abduction query becomes a SAT call. Cores over assumption literals play
// the role of cvc5's (locally minimal) unsat cores.
//
// The design follows MiniSat: two-watched-literal propagation, first-UIP
// clause learning with recursive minimization, VSIDS variable activity,
// phase saving, Luby restarts and activity-based learnt-clause deletion.
package sat

import "fmt"

// Var is a propositional variable. Variables are dense, 0-based integers
// allocated with Solver.NewVar.
type Var int32

// Lit is a literal: a variable together with a sign. The encoding is
// 2*v for the positive literal and 2*v+1 for the negated literal.
type Lit int32

// LitUndef is the sentinel "no literal" value.
const LitUndef Lit = -1

// MkLit builds a literal from a variable. neg selects the negated literal.
func MkLit(v Var, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return Lit(v << 1) }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return Lit(v<<1) | 1 }

// Var returns the variable underlying l.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg reports whether l is a negated literal.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complement of l.
func (l Lit) Not() Lit { return l ^ 1 }

// XorSign flips the sign of l when b is true.
func (l Lit) XorSign(b bool) Lit {
	if b {
		return l ^ 1
	}
	return l
}

// String renders the literal in DIMACS style (1-based, '-' for negation).
func (l Lit) String() string {
	if l == LitUndef {
		return "undef"
	}
	if l.Neg() {
		return fmt.Sprintf("-%d", int(l.Var())+1)
	}
	return fmt.Sprintf("%d", int(l.Var())+1)
}

// lbool is a three-valued boolean: true, false or undefined.
type lbool int8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = -1
)

func boolToLbool(b bool) lbool {
	if b {
		return lTrue
	}
	return lFalse
}

// xorSign flips a defined lbool when sign is true.
func (b lbool) xorSign(sign bool) lbool {
	if sign {
		return -b
	}
	return b
}

// xorSignBit is the branch-free form of xorSign for a 0/1 sign bit:
// (b ^ -1) + 1 is two's-complement negation, (b ^ 0) + 0 is identity.
// lUndef (0) is a fixed point either way. valueLit sits in the propagation
// hot loop, where the literal's sign is data-dependent and the branchy form
// costs a misprediction per lookup.
func (b lbool) xorSignBit(sign lbool) lbool {
	return (b ^ -sign) + sign
}

// Status is the result of a Solve call.
type Status int8

const (
	// Unknown means the solver gave up (budget exhausted or interrupted).
	Unknown Status = iota
	// Sat means a satisfying assignment was found; see Solver.Model.
	Sat
	// Unsat means the formula is unsatisfiable under the given assumptions;
	// see Solver.Core.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}
