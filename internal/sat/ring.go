package sat

import "sync/atomic"

// Lock-free mid-run clause exchange. Each worker's solver owns one
// ShareRing as its producer and drains its siblings' rings at restart
// boundaries, so hot lemmas cross the predicate fan-out while a Learn is
// still running instead of only at solver retirement (ExportLearnts).
//
// Protocol (single producer, any number of consumers, overwrite-oldest):
//
//   - A slot holds an immutable, position-tagged entry behind an
//     atomic.Pointer. Publish builds a fresh entry — nothing reachable from
//     a published entry is ever written again — stores it into
//     slots[pos%len], then advances head. Only the producer goroutine may
//     call Publish.
//   - Consumers keep a private RingCursor. Drain reads head once, jumps the
//     cursor forward if the producer lapped it (overwritten entries are
//     silently lost: the ring is a best-effort hint channel, not a queue),
//     then loads each slot and delivers entries whose position tag matches
//     the cursor. A mismatched tag means the slot was overwritten between
//     the head read and the slot read — skipped, never torn.
//
// Memory-ordering argument: Go's sync/atomic operations are sequentially
// consistent. On the producer, the slot Store precedes the head Store in
// program order, so any consumer that observes head > pos also observes the
// slot write for pos (or a later one — detected by the position tag). The
// entry itself is safely published because the Store of its pointer
// happens-before any Load that returns it, and the entry is never mutated
// afterwards. Consumers must treat delivered values as read-only: a payload
// slice is shared by every consumer that drains it (the clausering hhlint
// pass enforces this discipline at the call sites).
//
// hhlint:clause-ring
type ShareRing[T any] struct {
	slots []atomic.Pointer[ringSlot[T]]
	head  atomic.Uint64 // next position to publish; monotone
}

// ringSlot is one published entry. pos tags which logical position the
// entry was published at, so a consumer can detect overwrites.
type ringSlot[T any] struct {
	pos uint64
	val T
}

// NewShareRing returns a ring with the given slot count (minimum 1). The
// capacity bounds memory, not throughput: a producer never blocks, it
// overwrites the oldest entry.
func NewShareRing[T any](size int) *ShareRing[T] {
	if size < 1 {
		size = 1
	}
	return &ShareRing[T]{slots: make([]atomic.Pointer[ringSlot[T]], size)}
}

// Publish appends v to the ring, overwriting the oldest entry when full.
// Single-producer: only the owning goroutine may call Publish; the entry
// (including everything reachable from v) must not be mutated afterwards.
func (r *ShareRing[T]) Publish(v T) {
	pos := r.head.Load()
	r.slots[pos%uint64(len(r.slots))].Store(&ringSlot[T]{pos: pos, val: v})
	r.head.Store(pos + 1)
}

// Published returns the number of Publish calls so far (monotone; entries
// may already be overwritten).
func (r *ShareRing[T]) Published() uint64 { return r.head.Load() }

// RingCursor is one consumer's private drain position. The zero value
// starts at the beginning of the stream. Not safe for concurrent use —
// each consumer owns its cursor.
type RingCursor struct {
	next uint64
}

// Drain delivers, in publish order, every entry published since the
// cursor's previous visit and still live in the ring. Overwritten entries
// are skipped (overwrite-oldest). fn must not retain or mutate v beyond
// the call unless it copies; returning false stops the drain early (the
// remaining entries stay pending for the next Drain) — the cancellation
// path for interrupt-aware consumers.
func (r *ShareRing[T]) Drain(cur *RingCursor, fn func(v T) bool) {
	h := r.head.Load()
	n := uint64(len(r.slots))
	if cur.next+n < h {
		cur.next = h - n // producer lapped this consumer: jump to the oldest live entry
	}
	for ; cur.next < h; cur.next++ {
		e := r.slots[cur.next%n].Load()
		if e == nil || e.pos != cur.next {
			continue // overwritten between the head read and the slot read
		}
		if !fn(e.val) {
			cur.next++
			return
		}
	}
}
