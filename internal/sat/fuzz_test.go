package sat

import (
	"strings"
	"testing"
)

// FuzzParseDIMACS exercises the DIMACS reader on arbitrary input: no
// panics, and accepted formulas must solve without hanging (tiny conflict
// budget) and round-trip through WriteDIMACS.
func FuzzParseDIMACS(f *testing.F) {
	f.Add("p cnf 2 2\n1 -2 0\n2 0\n")
	f.Add("1 0\n-1 0\n")
	f.Add("c comment\n\n1 2 3\n")
	f.Add("junk")
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		s, err := ParseDIMACSLimit(strings.NewReader(input), 256)
		if err != nil {
			return
		}
		s.MaxConflicts = 200
		st := s.Solve()
		if st == Sat {
			// The model must satisfy every problem clause.
			var sb strings.Builder
			if err := s.WriteDIMACS(&sb); err != nil {
				t.Fatalf("write failed: %v", err)
			}
			s2, err := ParseDIMACS(strings.NewReader(sb.String()))
			if err != nil {
				t.Fatalf("round trip failed: %v", err)
			}
			s2.MaxConflicts = 200
			if st2 := s2.Solve(); st2 == Unsat {
				t.Fatal("round trip flipped SAT to UNSAT")
			}
		}
	})
}
