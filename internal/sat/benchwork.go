package sat

import (
	"fmt"
	"math/rand"
)

// Shared definitions of the propagate-heavy workload family behind
// BENCH_sat.json. Three harnesses run these: the in-package BenchmarkSat*
// benchmarks (bench_test.go), cmd/benchjson -sat, and the SAT-core ablation
// table in cmd/experiments. Keeping the constructors here — not in a test
// file — is what lets the two commands run byte-identical workloads without
// copy-drift.

// BenchWorkload is one named solver workload. New builds the instance and
// returns a closure running exactly one measured operation; the closure
// reports an error on an unexpected verdict.
type BenchWorkload struct {
	Name string
	// PropagateHeavy marks the rows the arena's >=20% acceptance bound
	// applies to (pure propagation, no conflict analysis in the loop).
	PropagateHeavy bool
	// SeedNsOp is the ns/op recorded on the pre-arena seed solver for this
	// workload on the reference hardware class — the baseline improvement
	// percentages are computed against.
	SeedNsOp float64
	New      func() func() error
}

// BenchWorkloads returns the BENCH_sat.json workload family.
func BenchWorkloads() []BenchWorkload {
	return []BenchWorkload{
		{
			// 200 disjoint implication chains of length 100, solved under
			// all heads as assumptions: 20k propagations, zero conflicts.
			Name: "propagate_chains", PropagateHeavy: true, SeedNsOp: 729514,
			New: func() func() error {
				const k, l = 200, 100
				s := New()
				heads := make([]Lit, k)
				for i := 0; i < k; i++ {
					prev := PosLit(s.NewVar())
					heads[i] = prev
					for j := 0; j < l; j++ {
						next := PosLit(s.NewVar())
						s.AddClause(prev.Not(), next)
						prev = next
					}
				}
				return func() error {
					if st := s.Solve(heads...); st != Sat {
						return fmt.Errorf("chain workload: %v, want Sat", st)
					}
					return nil
				}
			},
		},
		{
			// One assumption fanning out through 60 layers of width 60 via
			// long clauses padded with false distractors: the watcher scan,
			// not binary implication walking, dominates.
			Name: "propagate_wide", PropagateHeavy: true, SeedNsOp: 144079,
			New: func() func() error {
				const layers, width = 60, 60
				s := New()
				root := PosLit(s.NewVar())
				prev := []Lit{root}
				for i := 0; i < layers; i++ {
					cur := make([]Lit, width)
					for j := range cur {
						cur[j] = PosLit(s.NewVar())
						cl := []Lit{prev[j%len(prev)].Not(), cur[j]}
						for d := 0; d < 6; d++ {
							cl = append(cl, prev[(j+d+1)%len(prev)].Not())
						}
						s.AddClause(cl...)
					}
					prev = cur
				}
				return func() error {
					if st := s.Solve(root); st != Sat {
						return fmt.Errorf("wide workload: %v, want Sat", st)
					}
					return nil
				}
			},
		},
		{
			// Fresh PHP(7,6) refutation per op: conflict analysis, learnt
			// allocation and DB reduction on top of propagation.
			Name: "solve_php", PropagateHeavy: false, SeedNsOp: 5460765,
			New: func() func() error {
				return func() error {
					s := New()
					AddPigeonhole(s, 7, 6)
					if st := s.Solve(); st != Unsat {
						return fmt.Errorf("PHP(7,6): %v, want Unsat", st)
					}
					return nil
				}
			},
		},
		{
			// Fresh random 3SAT (120 vars, 500 clauses, fixed seed) per op.
			Name: "solve_random3sat", PropagateHeavy: false, SeedNsOp: 22016,
			New: func() func() error {
				const nVars, nClauses = 120, 500
				rng := rand.New(rand.NewSource(7))
				clauses := make([][]Lit, nClauses)
				for i := range clauses {
					n := 1 + rng.Intn(3)
					c := make([]Lit, n)
					for j := range c {
						c[j] = MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 1)
					}
					clauses[i] = c
				}
				return func() error {
					s := New()
					for s.NumVars() < nVars {
						s.NewVar()
					}
					for _, c := range clauses {
						s.AddClause(c...)
					}
					if st := s.Solve(); st == Unknown {
						return fmt.Errorf("random 3SAT: Unknown")
					}
					return nil
				}
			},
		},
	}
}

// AddPigeonhole adds a PHP(pigeons, holes) instance: Unsat whenever
// pigeons > holes, and small instances already force real CDCL learning.
func AddPigeonhole(s *Solver, pigeons, holes int) {
	lit := func(p, h int) Lit {
		v := Var(p*holes + h)
		for s.NumVars() <= int(v) {
			s.NewVar()
		}
		return PosLit(v)
	}
	for p := 0; p < pigeons; p++ {
		cl := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			cl[h] = lit(p, h)
		}
		s.AddClause(cl...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(lit(p1, h).Not(), lit(p2, h).Not())
			}
		}
	}
}
