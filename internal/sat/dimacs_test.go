package sat

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestParseDIMACS(t *testing.T) {
	in := `c a comment
p cnf 3 3
1 -2 0
2 3 0
-1 0
`
	s, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	if s.ModelValue(lit(1)) {
		t.Fatal("x1 must be false")
	}
	if s.ModelValue(lit(2)) && !s.ModelValue(lit(3)) {
		t.Fatal("model inconsistent")
	}
}

func TestParseDIMACSMultilineClause(t *testing.T) {
	in := "1 2\n3 0\n"
	s, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
}

func TestParseDIMACSBadToken(t *testing.T) {
	_, err := ParseDIMACS(strings.NewReader("1 x 0\n"))
	if err == nil {
		t.Fatal("expected parse error")
	}
}

func TestParseDIMACSTrailingClauseWithoutZero(t *testing.T) {
	s, err := ParseDIMACS(strings.NewReader("1 2"))
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	if !s.ModelValue(lit(1)) && !s.ModelValue(lit(2)) {
		t.Fatal("clause not enforced")
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 30; iter++ {
		nVars := 3 + rng.Intn(6)
		clauses := randomClauses(rng, nVars, 2+rng.Intn(10), 3)
		s1 := New()
		addVars(s1, nVars)
		for _, c := range clauses {
			s1.AddClause(c...)
		}
		var buf bytes.Buffer
		if err := s1.WriteDIMACS(&buf); err != nil {
			t.Fatal(err)
		}
		s2, err := ParseDIMACS(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if st1, st2 := s1.Solve(), s2.Solve(); st1 != st2 {
			t.Fatalf("iter %d: round-trip changed status %v → %v", iter, st1, st2)
		}
	}
}

func TestVarHeapOrdering(t *testing.T) {
	act := make([]float64, 10)
	h := newVarHeap(&act)
	for i := range act {
		act[i] = float64(i)
		h.insert(Var(i))
	}
	// Highest activity first.
	prev := 1e18
	for !h.empty() {
		v := h.removeMin()
		if act[v] > prev {
			t.Fatalf("heap order violated: %f after %f", act[v], prev)
		}
		prev = act[v]
	}
}

func TestVarHeapDecreased(t *testing.T) {
	act := make([]float64, 5)
	h := newVarHeap(&act)
	for i := range act {
		h.insert(Var(i))
	}
	act[3] = 100
	h.decreased(Var(3))
	if got := h.removeMin(); got != Var(3) {
		t.Fatalf("expected var 3 first, got %d", got)
	}
}
