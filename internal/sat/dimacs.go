package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a CNF formula in DIMACS format into a fresh solver.
// Comments and the problem line are tolerated but not required.
func ParseDIMACS(r io.Reader) (*Solver, error) {
	return ParseDIMACSLimit(r, 0)
}

// ParseDIMACSLimit is ParseDIMACS with an upper bound on the variable
// count (0 = unlimited); formulas mentioning larger variables are rejected
// rather than allocated. Useful when reading untrusted input.
func ParseDIMACSLimit(r io.Reader, maxVars int) (*Solver, error) {
	s := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var clause []Lit
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") || strings.HasPrefix(text, "p") {
			continue
		}
		for _, f := range strings.Fields(text) {
			n, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("dimacs line %d: bad token %q", line, f)
			}
			if n == 0 {
				s.AddClause(clause...)
				clause = clause[:0]
				continue
			}
			if maxVars > 0 && abs(n) > maxVars {
				return nil, fmt.Errorf("dimacs line %d: variable %d exceeds limit %d", line, abs(n), maxVars)
			}
			v := Var(abs(n) - 1)
			clause = append(clause, MkLit(v, n < 0))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(clause) > 0 {
		s.AddClause(clause...)
	}
	return s, nil
}

// WriteDIMACS writes the solver's problem clauses (not learnt clauses) in
// DIMACS format.
func (s *Solver) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	n := s.liveProblem
	// Level-0 facts live on the trail rather than in the clause DB; emit
	// them as unit clauses so the formula round-trips faithfully.
	units := 0
	if s.decisionLevel() == 0 {
		units = len(s.trail)
	} else {
		units = int(s.trailLim[0])
	}
	if !s.ok {
		// Represent a known-contradictory database as (x1) ∧ (¬x1).
		fmt.Fprintf(bw, "p cnf %d 2\n1 0\n-1 0\n", max(1, s.NumVars()))
		return bw.Flush()
	}
	fmt.Fprintf(bw, "p cnf %d %d\n", s.NumVars(), n+units)
	for i := 0; i < units; i++ {
		l := s.trail[i]
		v := int(l.Var()) + 1
		if l.Neg() {
			v = -v
		}
		fmt.Fprintf(bw, "%d 0\n", v)
	}
	s.forEachClause(func(cr clauseRef) {
		if s.isLearnt(cr) {
			return
		}
		for _, w := range s.clauseLits(cr) {
			l := Lit(w)
			v := int(l.Var()) + 1
			if l.Neg() {
				v = -v
			}
			fmt.Fprintf(bw, "%d ", v)
		}
		fmt.Fprintln(bw, 0)
	})
	return bw.Flush()
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}
