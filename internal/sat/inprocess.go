package sat

// Inprocessing: backward subsumption and self-subsuming resolution (SSR)
// over the arena, run at restart boundaries every inprocessInterval
// conflicts (see Solve). The pass walks every live clause C of bounded
// length and, through occurrence lists, finds clauses D ⊇ C (delete D —
// it is implied by C) and clauses D with C ⊆ (D ∖ {¬x}) ∪ {x} for exactly
// one literal x ∈ C (strengthen D by removing ¬x: the resolvent of C and D
// on x subsumes D).
//
// Soundness notes:
//
//   - Strengthening is always sound: the resolvent is implied by C ∧ D,
//     both of which are implied by the problem clauses, and it subsumes D,
//     so swapping D for it preserves the model set exactly.
//   - Deletion is restricted: a learnt clause may delete learnt clauses
//     (learnts are redundant by construction, so losing the subsumer later
//     to reduceDB costs nothing), and a problem clause may delete anything,
//     but a learnt subsumer never deletes a problem clause — if reduceDB
//     later dropped the learnt subsumer, the problem clause's constraint
//     would be silently lost.
//   - The pass runs at decision level 0 with the trail propagated to
//     fixpoint and level-0 reasons cleared (level-0 assignments are
//     permanent and never re-examined by conflict analysis), so no clause
//     is locked as a reason while it is deleted or strengthened.

const (
	// inprocessInterval is the number of conflicts between inprocessing
	// passes; small queries never reach it (the pass is for the long
	// refutations behind escalated abduction budgets).
	inprocessInterval = 10000
	// subsumeMaxLen bounds the clauses considered: long clauses almost
	// never subsume anything and make the occurrence lists quadratic.
	subsumeMaxLen = 30
)

// inprocess runs one backward-subsumption + SSR pass. Caller must be at
// decision level 0.
func (s *Solver) inprocess() {
	if !s.ok || s.decisionLevel() != 0 {
		return
	}
	if s.propagate() != crUndef {
		s.ok = false
		return
	}
	s.Stats.Inprocessings++
	s.lastInprocess = s.Stats.Conflicts
	for _, l := range s.trail {
		s.reason[l.Var()] = crUndef
	}

	// Candidate set and occurrence lists (literal → clauses containing it).
	s.scratchRefs = s.scratchRefs[:0]
	s.forEachClause(func(cr clauseRef) {
		if s.clauseSize(cr) <= subsumeMaxLen {
			s.scratchRefs = append(s.scratchRefs, cr)
		}
	})
	cands := s.scratchRefs
	occ := make([][]clauseRef, 2*s.NumVars())
	for _, cr := range cands {
		for _, w := range s.clauseLits(cr) {
			occ[w] = append(occ[w], cr)
		}
	}

	for _, cr := range cands {
		if s.isDeleted(cr) {
			continue
		}
		s.subsumeWith(cr, occ)
	}

	// Compact the learnt index and reclaim the slab if the pass freed
	// enough of it; units enqueued by strengthening propagate here.
	j := 0
	for _, lr := range s.learnts {
		if !s.isDeleted(lr) {
			s.learnts[j] = lr
			j++
		}
	}
	s.learnts = s.learnts[:j]
	if s.propagate() != crUndef {
		s.ok = false
		return
	}
	s.maybeCollect()
}

// subsumeWith checks C (= cr) against every clause sharing C's rarest
// literal, deleting the subsumed and strengthening the almost-subsumed.
func (s *Solver) subsumeWith(cr clauseRef, occ [][]clauseRef) {
	lits := s.clauseLits(cr)
	// Pick the literal with the shortest occurrence list: every D ⊇ C must
	// contain it. An SSR partner contains every literal of C except the
	// resolved one x, which it holds negated — so when min = x the partner
	// only shows up in occ[¬min]. Scanning both lists is a complete
	// candidate set for subsumption and SSR alike.
	min := Lit(lits[0])
	for _, w := range lits[1:] {
		if len(occ[w]) < len(occ[min]) {
			min = Lit(w)
		}
	}
	for _, w := range lits {
		s.litSeen[w] = 1
	}
	size := len(lits)
	learnt := s.isLearnt(cr)

	cands := occ[min]
	if neg := occ[min.Not()]; len(neg) > 0 {
		cands = append(append(make([]clauseRef, 0, len(cands)+len(neg)), cands...), neg...)
	}
	for _, dr := range cands {
		if dr == cr || s.isDeleted(dr) || s.isDeleted(cr) {
			continue
		}
		dl := s.clauseLits(dr)
		if len(dl) < size {
			continue
		}
		// hits = |C ∩ D|, comp = |{x ∈ C : ¬x ∈ D}| with the flipped
		// literal remembered. Occurrence lists go stale as clauses shrink,
		// so D may no longer contain min — the counts stay correct because
		// they are computed from D's current body.
		hits, comp := 0, 0
		var flipped Lit
		for _, dw := range dl {
			if s.litSeen[dw] != 0 {
				hits++
			} else if s.litSeen[Lit(dw).Not()] != 0 {
				comp++
				flipped = Lit(dw)
			}
		}
		switch {
		case hits == size:
			// C ⊆ D: D is implied by C.
			if learnt && !s.isLearnt(dr) {
				continue // learnt subsumer may not delete a problem clause
			}
			s.detachClause(dr)
			s.markDeleted(dr)
			s.Stats.Subsumed++
		case hits == size-1 && comp == 1:
			// Self-subsuming resolution: resolving C and D on the flipped
			// literal yields D ∖ {flipped}.
			s.strengthenClause(dr, flipped)
			if s.isDeleted(cr) {
				// Strengthening rebuilt D; if it collapsed onto C's own
				// literals C may now be the subsumed one — recheck next
				// pass rather than reasoning about it here. cr itself is
				// never touched by strengthenClause, but bail out if a
				// future refactor changes that.
				break
			}
		}
	}

	for _, w := range lits {
		s.litSeen[w] = 0
	}
}

// strengthenClause removes x from the clause in place, additionally
// dropping literals false at level 0 (sound: they contribute nothing) and
// deleting the clause outright if some literal is true at level 0 (it is
// permanently satisfied). The freed tail words are zeroed — forEachClause
// skips zero headers — and counted as waste for the next compaction. A
// clause strengthened to a unit moves to the level-0 trail; to empty,
// the database is unsatisfiable.
func (s *Solver) strengthenClause(cr clauseRef, x Lit) {
	s.detachClause(cr)
	lits := s.clauseLits(cr)
	old := len(lits)
	j := 0
	for _, w := range lits {
		l := Lit(w)
		if l == x {
			continue
		}
		switch s.valueLit(l) {
		case lTrue:
			// Satisfied at level 0: delete rather than strengthen. Watches
			// are already off; re-attach is skipped by marking deleted.
			s.markDeleted(cr)
			return
		case lFalse:
			continue
		}
		lits[j] = w
		j++
	}
	s.Stats.Strengthened++
	for k := j; k < old; k++ {
		lits[k] = 0
	}
	s.wasted += old - j
	h := s.arena[cr]
	s.arena[cr] = h&^(uint32(maxClauseSize)<<hdrSizeShift) | uint32(j)<<hdrSizeShift
	switch j {
	case 0:
		s.markDeleted(cr)
		s.ok = false
	case 1:
		l := Lit(lits[0])
		s.markDeleted(cr)
		if s.valueLit(l) == lUndef {
			s.uncheckedEnqueue(l, crUndef)
		}
	default:
		s.attachClause(cr)
	}
}
