package sat

import (
	"testing"
	"time"

	"hhoudini/internal/faultinject"
)

// hardFormula builds a formula that takes real search effort: pigeonhole
// PHP(n+1 → n), unsatisfiable and exponentially hard for resolution-based
// CDCL, so an unbounded Solve on a largish instance runs long enough to be
// interrupted from another goroutine.
func hardFormula(s *Solver, pigeons, holes int) {
	vars := make([][]Var, pigeons)
	for p := 0; p < pigeons; p++ {
		vars[p] = make([]Var, holes)
		for h := 0; h < holes; h++ {
			vars[p][h] = s.NewVar()
		}
	}
	// Every pigeon sits somewhere.
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = PosLit(vars[p][h])
		}
		s.AddClause(lits...)
	}
	// No two pigeons share a hole.
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(NegLit(vars[p1][h]), NegLit(vars[p2][h]))
			}
		}
	}
}

func TestInterruptStopsSolve(t *testing.T) {
	s := New()
	hardFormula(s, 12, 11)
	done := make(chan Status, 1)
	go func() {
		time.Sleep(10 * time.Millisecond)
		s.Interrupt()
	}()
	start := time.Now()
	go func() { done <- s.Solve() }()
	select {
	case st := <-done:
		// Sat/Unsat is allowed if the solver won the race, but a verdict
		// long after the interrupt means the check never fired.
		if st == Unknown {
			if d := time.Since(start); d > 2*time.Second {
				t.Fatalf("interrupted Solve took %v", d)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Solve did not return after Interrupt")
	}
	if !s.Interrupted() {
		t.Fatal("Interrupted() must report the sticky flag")
	}
}

func TestInterruptIsStickyAndClearable(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	s.Interrupt()
	if st := s.Solve(); st != Unknown {
		t.Fatalf("pre-interrupted Solve = %v, want Unknown", st)
	}
	if st := s.Solve(); st != Unknown {
		t.Fatalf("interrupt must be sticky: Solve = %v, want Unknown", st)
	}
	s.ClearInterrupt()
	if st := s.Solve(); st != Sat {
		t.Fatalf("cleared solver Solve = %v, want Sat", st)
	}
}

func TestSetConflictBudgetIsRelative(t *testing.T) {
	s := New()
	hardFormula(s, 7, 6)
	s.SetConflictBudget(10)
	if st := s.Solve(); st != Unknown {
		t.Fatalf("10-conflict budget on PHP(7,6) = %v, want Unknown", st)
	}
	spent := s.Stats.Conflicts
	if spent == 0 {
		t.Fatal("no conflicts recorded")
	}
	// A fresh relative budget must grant new effort even though the
	// cumulative counter already exceeds the old absolute bound.
	s.SetConflictBudget(10)
	if s.MaxConflicts <= spent {
		t.Fatalf("budget not rebased: MaxConflicts=%d, spent=%d", s.MaxConflicts, spent)
	}
	if st := s.Solve(); st != Unknown {
		t.Fatalf("second bounded attempt = %v, want Unknown", st)
	}
	s.SetConflictBudget(-1)
	if s.MaxConflicts != -1 {
		t.Fatalf("negative budget must mean unbounded, got %d", s.MaxConflicts)
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("unbounded PHP(7,6) = %v, want Unsat", st)
	}
}

// TestChaosForcedUnknown pins the faultinject hook in Solve: armed, the
// solver gives up without touching the search state; disarmed, the same
// instance solves normally.
func TestChaosForcedUnknown(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	s := New()
	a := s.NewVar()
	s.AddClause(PosLit(a))
	faultinject.Arm(faultinject.SolverUnknown, faultinject.Spec{Count: 2})
	if st := s.Solve(); st != Unknown {
		t.Fatalf("forced Solve = %v, want Unknown", st)
	}
	if st := s.Solve(); st != Unknown {
		t.Fatalf("second forced Solve = %v, want Unknown", st)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("exhausted injection: Solve = %v, want Sat", st)
	}
	if got := faultinject.Fired(faultinject.SolverUnknown); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
}
