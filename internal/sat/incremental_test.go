package sat

import (
	"math/rand"
	"testing"
)

// TestSelectorGuardedClause checks the MiniSat activation protocol: a
// guarded clause constrains the formula only in Solve calls that assume
// its selector.
func TestSelectorGuardedClause(t *testing.T) {
	s := New()
	addVars(s, 2)
	sel := s.NewSelector()
	// sel → (x1), sel → (¬x2)
	s.AddClause(sel.Not(), lit(1))
	s.AddClause(sel.Not(), lit(-2))
	// Unguarded query: both polarities of x1 are free.
	if st := s.Solve(lit(-1)); st != Sat {
		t.Fatalf("unguarded: got %v, want Sat", st)
	}
	// Guarded query: sel forces x1 true, so assuming ¬x1 is Unsat.
	if st := s.Solve(sel, lit(-1)); st != Unsat {
		t.Fatalf("guarded: got %v, want Unsat", st)
	}
	// The guard stays retractable: dropping the assumption re-frees x1.
	if st := s.Solve(lit(-1)); st != Sat {
		t.Fatalf("after guarded query: got %v, want Sat", st)
	}
}

// TestReleasePinsSelectorFalse checks that Release permanently deactivates
// a selector's clause group and that the solver stays usable.
func TestReleasePinsSelectorFalse(t *testing.T) {
	s := New()
	addVars(s, 1)
	sel := s.NewSelector()
	s.AddClause(sel.Not(), lit(1))
	s.Release(sel)
	if s.Stats.Released != 1 {
		t.Fatalf("Released = %d, want 1", s.Stats.Released)
	}
	// The released group no longer constrains anything...
	if st := s.Solve(lit(-1)); st != Sat {
		t.Fatalf("after release: got %v, want Sat", st)
	}
	// ...and the selector itself is pinned false.
	if st := s.Solve(sel); st != Unsat {
		t.Fatalf("assuming released selector: got %v, want Unsat", st)
	}
}

// TestSimplifyDeletesSatisfiedClauses checks the level-0 GC: released
// groups are physically removed from the clause database.
func TestSimplifyDeletesSatisfiedClauses(t *testing.T) {
	s := New()
	addVars(s, 4)
	sel := s.NewSelector()
	s.AddClause(sel.Not(), lit(1), lit(2))
	s.AddClause(sel.Not(), lit(3), lit(4))
	s.AddClause(lit(1), lit(-2)) // unguarded, must survive
	s.Release(sel)
	s.Simplify()
	if s.Stats.Deleted != 2 {
		t.Fatalf("Deleted = %d, want 2 (the guarded clauses)", s.Stats.Deleted)
	}
	if s.Stats.Simplifies == 0 {
		t.Fatal("Simplify did not run")
	}
	// The surviving clause still constrains the formula.
	if st := s.Solve(lit(-1), lit(2)); st != Unsat {
		t.Fatalf("surviving clause lost: got %v, want Unsat", st)
	}
	if st := s.Solve(lit(1)); st != Sat {
		t.Fatalf("solver unusable after Simplify: got %v", st)
	}
}

// TestReleaseAutoGC checks that crossing releaseGCThreshold triggers an
// automatic Simplify pass.
func TestReleaseAutoGC(t *testing.T) {
	s := New()
	addVars(s, 1)
	for i := 0; i < releaseGCThreshold; i++ {
		sel := s.NewSelector()
		s.AddClause(sel.Not(), lit(1))
		s.Release(sel)
	}
	if s.Stats.Simplifies == 0 {
		t.Fatalf("expected an automatic Simplify after %d releases", releaseGCThreshold)
	}
	if s.Stats.Deleted == 0 {
		t.Fatal("expected released clauses to be garbage-collected")
	}
}

// TestSimplifyPreservesVerdicts cross-checks a long-lived solver with
// interleaved guarded clauses, releases and Simplify calls against a fresh
// solver re-encoding the live clauses per query.
func TestSimplifyPreservesVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(20250806))
	const nVars = 8
	type group struct {
		sel     Lit
		clauses [][]Lit
	}
	for round := 0; round < 30; round++ {
		live := New()
		addVars(live, nVars)
		var groups []group
		var hard [][]Lit

		randClause := func() []Lit {
			n := 1 + rng.Intn(3)
			c := make([]Lit, 0, n)
			for i := 0; i < n; i++ {
				v := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					v = -v
				}
				c = append(c, lit(v))
			}
			return c
		}

		for step := 0; step < 40; step++ {
			switch rng.Intn(5) {
			case 0: // add a hard clause
				c := randClause()
				hard = append(hard, c)
				live.AddClause(c...)
			case 1: // add a guarded group
				g := group{sel: live.NewSelector()}
				for i := 0; i < 1+rng.Intn(2); i++ {
					c := randClause()
					g.clauses = append(g.clauses, c)
					live.AddClause(append([]Lit{g.sel.Not()}, c...)...)
				}
				groups = append(groups, g)
			case 2: // release a random group
				if len(groups) > 0 {
					i := rng.Intn(len(groups))
					live.Release(groups[i].sel)
					groups = append(groups[:i], groups[i+1:]...)
				}
			case 3:
				live.Simplify()
			default: // differential query over a random subset of groups
				var assumps []Lit
				ref := New()
				addVars(ref, nVars)
				refOK := true
				for _, c := range hard {
					refOK = ref.AddClause(c...) && refOK
				}
				for _, g := range groups {
					if rng.Intn(2) == 0 {
						continue
					}
					assumps = append(assumps, g.sel)
					for _, c := range g.clauses {
						refOK = ref.AddClause(c...) && refOK
					}
				}
				want := Unsat
				if refOK {
					want = ref.Solve()
				}
				if got := live.Solve(assumps...); got != want {
					t.Fatalf("round %d step %d: pooled solver %v, fresh solver %v",
						round, step, got, want)
				}
			}
		}
	}
}
