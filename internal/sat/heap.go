package sat

// varHeap is a binary max-heap of variables ordered by activity, with an
// index map for decrease/increase-key. It backs the VSIDS decision order.
type varHeap struct {
	heap    []Var   // heap of variables
	indices []int32 // variable -> position in heap, or -1
	act     *[]float64
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{act: act}
}

func (h *varHeap) less(x, y Var) bool { return (*h.act)[x] > (*h.act)[y] }

func (h *varHeap) grow(n int) {
	for len(h.indices) < n {
		h.indices = append(h.indices, -1)
	}
}

func (h *varHeap) inHeap(v Var) bool {
	return int(v) < len(h.indices) && h.indices[v] >= 0
}

func (h *varHeap) percolateUp(i int32) {
	x := h.heap[i]
	p := (i - 1) >> 1
	for i != 0 && h.less(x, h.heap[p]) {
		h.heap[i] = h.heap[p]
		h.indices[h.heap[p]] = i
		i = p
		p = (i - 1) >> 1
	}
	h.heap[i] = x
	h.indices[x] = i
}

func (h *varHeap) percolateDown(i int32) {
	x := h.heap[i]
	n := int32(len(h.heap))
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		child := l
		if r := l + 1; r < n && h.less(h.heap[r], h.heap[l]) {
			child = r
		}
		if !h.less(h.heap[child], x) {
			break
		}
		h.heap[i] = h.heap[child]
		h.indices[h.heap[i]] = i
		i = child
	}
	h.heap[i] = x
	h.indices[x] = i
}

func (h *varHeap) insert(v Var) {
	h.grow(int(v) + 1)
	if h.inHeap(v) {
		return
	}
	h.indices[v] = int32(len(h.heap))
	h.heap = append(h.heap, v)
	h.percolateUp(h.indices[v])
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) removeMin() Var {
	x := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap[0] = last
	h.indices[last] = 0
	h.indices[x] = -1
	h.heap = h.heap[:len(h.heap)-1]
	if len(h.heap) > 1 {
		h.percolateDown(0)
	}
	return x
}

// decreased restores heap order after v's activity increased
// (a higher activity means v should move toward the root).
func (h *varHeap) decreased(v Var) {
	if h.inHeap(v) {
		h.percolateUp(h.indices[v])
	}
}
