package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForce decides satisfiability of a clause set over nVars variables by
// enumeration and returns (sat, someModel).
func bruteForce(nVars int, clauses [][]Lit) (bool, []bool) {
	if nVars > 20 {
		panic("bruteForce: too many variables")
	}
	assign := make([]bool, nVars)
	for m := 0; m < 1<<nVars; m++ {
		for v := 0; v < nVars; v++ {
			assign[v] = m&(1<<v) != 0
		}
		ok := true
		for _, c := range clauses {
			cs := false
			for _, l := range c {
				val := assign[l.Var()]
				if l.Neg() {
					val = !val
				}
				if val {
					cs = true
					break
				}
			}
			if !cs {
				ok = false
				break
			}
		}
		if ok {
			out := make([]bool, nVars)
			copy(out, assign)
			return true, out
		}
	}
	return false, nil
}

func randomClauses(rng *rand.Rand, nVars, nClauses, maxLen int) [][]Lit {
	clauses := make([][]Lit, nClauses)
	for i := range clauses {
		n := 1 + rng.Intn(maxLen)
		c := make([]Lit, n)
		for j := range c {
			c[j] = MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 1)
		}
		clauses[i] = c
	}
	return clauses
}

// TestQuickAgainstBruteForce cross-checks the CDCL solver against exhaustive
// enumeration on random small formulas, checking both the verdict and that
// returned models actually satisfy the formula.
func TestQuickAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for iter := 0; iter < 400; iter++ {
		nVars := 2 + rng.Intn(9)
		nClauses := 1 + rng.Intn(4*nVars)
		clauses := randomClauses(rng, nVars, nClauses, 3)

		want, _ := bruteForce(nVars, clauses)
		s := New()
		addVars(s, nVars)
		for _, c := range clauses {
			s.AddClause(c...)
		}
		st := s.Solve()
		if want && st != Sat {
			t.Fatalf("iter %d: brute force Sat, solver %v (clauses %v)", iter, st, clauses)
		}
		if !want && st != Unsat {
			t.Fatalf("iter %d: brute force Unsat, solver %v (clauses %v)", iter, st, clauses)
		}
		if st == Sat {
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					if s.ModelValue(l) {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("iter %d: model violates clause %v", iter, c)
				}
			}
		}
	}
}

// TestQuickAssumptionCores checks on random formulas that (i) Unsat cores
// are subsets of the assumptions, (ii) re-solving under just the core stays
// Unsat, and (iii) minimized cores are locally minimal.
func TestQuickAssumptionCores(t *testing.T) {
	rng := rand.New(rand.NewSource(999))
	for iter := 0; iter < 200; iter++ {
		nVars := 3 + rng.Intn(7)
		clauses := randomClauses(rng, nVars, 2+rng.Intn(3*nVars), 3)
		nAssum := 1 + rng.Intn(nVars)
		assumptions := make([]Lit, 0, nAssum)
		used := map[Var]bool{}
		for len(assumptions) < nAssum {
			v := Var(rng.Intn(nVars))
			if used[v] {
				break
			}
			used[v] = true
			assumptions = append(assumptions, MkLit(v, rng.Intn(2) == 1))
		}

		s := New()
		addVars(s, nVars)
		for _, c := range clauses {
			s.AddClause(c...)
		}
		// Brute force with assumptions as unit clauses.
		all := append([][]Lit{}, clauses...)
		for _, a := range assumptions {
			all = append(all, []Lit{a})
		}
		want, _ := bruteForce(nVars, all)

		st, core := s.SolveWithCore(assumptions)
		if want && st != Sat {
			t.Fatalf("iter %d: want Sat got %v", iter, st)
		}
		if !want && st != Unsat {
			t.Fatalf("iter %d: want Unsat got %v", iter, st)
		}
		if st != Unsat {
			continue
		}
		if !subsetOf(core, assumptions) {
			t.Fatalf("iter %d: core %v not a subset of assumptions %v", iter, core, assumptions)
		}
		if st2 := s.Solve(core...); st2 != Unsat {
			t.Fatalf("iter %d: core %v does not reproduce Unsat", iter, core)
		}
		min := s.MinimizeCore(core)
		if !subsetOf(min, core) {
			t.Fatalf("iter %d: minimized core %v not subset of %v", iter, min, core)
		}
		if st3 := s.Solve(min...); st3 != Unsat {
			t.Fatalf("iter %d: minimized core %v not Unsat", iter, min)
		}
		for i := range min {
			trial := append(append([]Lit{}, min[:i]...), min[i+1:]...)
			if s.Solve(trial...) == Unsat {
				t.Fatalf("iter %d: core %v not locally minimal (drop %v)", iter, min, min[i])
			}
		}
	}
}

// TestQuickXorChains builds parity constraints (hard for resolution in the
// worst case, easy at this size) and verifies against direct computation.
func TestQuickXorChains(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for iter := 0; iter < 50; iter++ {
		n := 3 + rng.Intn(6)
		parity := rng.Intn(2) == 1
		s := New()
		addVars(s, n)
		// Encode x1 ⊕ x2 ⊕ ... ⊕ xn = parity via chained XOR with aux vars.
		prev := lit(1)
		for i := 2; i <= n; i++ {
			aux := s.NewVar()
			a := PosLit(aux)
			xi := lit(i)
			// a = prev ⊕ xi
			s.AddClause(a.Not(), prev, xi)
			s.AddClause(a.Not(), prev.Not(), xi.Not())
			s.AddClause(a, prev.Not(), xi)
			s.AddClause(a, prev, xi.Not())
			prev = a
		}
		if parity {
			s.AddClause(prev)
		} else {
			s.AddClause(prev.Not())
		}
		if st := s.Solve(); st != Sat {
			t.Fatalf("parity constraint always satisfiable, got %v", st)
		}
		got := false
		for i := 1; i <= n; i++ {
			if s.ModelValue(lit(i)) {
				got = !got
			}
		}
		if got != parity {
			t.Fatalf("model parity %v, want %v", got, parity)
		}
	}
}

// TestQuickPropertyIdempotentSolve uses testing/quick to check that solving
// twice returns the same status and that adding a satisfied model as units
// keeps the formula satisfiable.
func TestQuickPropertyIdempotentSolve(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 2 + rng.Intn(6)
		clauses := randomClauses(rng, nVars, 1+rng.Intn(2*nVars), 3)
		s := New()
		addVars(s, nVars)
		for _, c := range clauses {
			s.AddClause(c...)
		}
		st1 := s.Solve()
		st2 := s.Solve()
		if st1 != st2 {
			return false
		}
		if st1 == Sat {
			// Fix the model as assumptions; must stay Sat.
			as := make([]Lit, nVars)
			for v := 0; v < nVars; v++ {
				as[v] = MkLit(Var(v), !s.ModelValue(PosLit(Var(v))))
			}
			if s.Solve(as...) != Sat {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
