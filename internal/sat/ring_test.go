package sat

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// checkGoroutineLeak fails the test if the goroutine count has not returned
// to the baseline shortly after the test body finished. Call with the count
// taken before spawning anything.
func checkGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
}

// TestConcurrentRingProduceDrain runs one producer against several
// concurrent consumers under the race detector. Each consumer checks the
// SPMC delivery contract: values arrive in publish order, each at most
// once, and a consumer that is never lapped sees every value.
func TestConcurrentRingProduceDrain(t *testing.T) {
	const (
		total     = 5000
		consumers = 4
	)
	before := runtime.NumGoroutine()
	// Ring large enough that consumers polling in a tight loop are never
	// lapped: delivery must then be exactly 0..total-1 for everyone.
	r := NewShareRing[int](total)

	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cur RingCursor
			got := make([]int, 0, total)
			for len(got) < total {
				r.Drain(&cur, func(v int) bool {
					got = append(got, v)
					return true
				})
			}
			for i, v := range got {
				if v != i {
					t.Errorf("consumer delivery out of order: got[%d] = %d", i, v)
					return
				}
			}
		}()
	}
	for i := 0; i < total; i++ {
		r.Publish(i)
	}
	if r.Published() != total {
		t.Errorf("Published() = %d, want %d", r.Published(), total)
	}
	wg.Wait()
	checkGoroutineLeak(t, before)
}

// TestConcurrentRingOverwrite drives a tiny ring with a fast producer and
// slow consumers: laps are expected, and the contract degrades to "values
// strictly increasing, never older than capacity-behind-head, never torn".
func TestConcurrentRingOverwrite(t *testing.T) {
	const (
		total     = 50000
		capacity  = 8
		consumers = 3
	)
	before := runtime.NumGoroutine()
	r := NewShareRing[[2]int](capacity)

	var wg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cur RingCursor
			last := -1
			drain := func() {
				r.Drain(&cur, func(v [2]int) bool {
					// Entries are immutable pairs (i, i): a torn read would
					// surface as a mismatched pair.
					if v[0] != v[1] {
						t.Errorf("torn entry: %v", v)
						return false
					}
					if v[0] <= last {
						t.Errorf("stale or duplicate delivery: %d after %d", v[0], last)
						return false
					}
					last = v[0]
					return true
				})
			}
			for {
				drain()
				select {
				case <-done:
					// The producer is finished (close happens after the last
					// Publish), so a final drain sees the settled ring and
					// must reach the newest entry.
					drain()
					if last != total-1 {
						t.Errorf("final drain stopped at %d, want %d", last, total-1)
					}
					return
				default:
				}
			}
		}()
	}
	for i := 0; i < total; i++ {
		r.Publish([2]int{i, i})
	}
	close(done)
	wg.Wait()
	checkGoroutineLeak(t, before)
}

// TestConcurrentRingEarlyExit checks the fn-returns-false path: the drain
// stops, the refused entries stay pending, and a later Drain resumes after
// the consumed prefix without loss (single-threaded protocol check plus a
// racing producer to keep the detector honest).
func TestConcurrentRingEarlyExit(t *testing.T) {
	before := runtime.NumGoroutine()
	r := NewShareRing[int](64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				r.Publish(i)
			}
		}
	}()

	var cur RingCursor
	last := -1
	for seen := 0; seen < 1000; {
		budget := 3 // simulate an interrupt after a few imports
		r.Drain(&cur, func(v int) bool {
			if v <= last {
				t.Errorf("resume lost position: %d after %d", v, last)
				return false
			}
			last = v
			seen++
			budget--
			return budget > 0
		})
	}
	close(stop)
	wg.Wait()
	checkGoroutineLeak(t, before)
}
