package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hhoudini/internal/faultinject"
	core "hhoudini/internal/hhoudini"
)

// bareServer builds a Server with no executor pool: submissions stay queued,
// so admission and queue-order behavior can be observed deterministically.
func bareServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   cfg.Cache,
		start:   time.Now(),
		jobs:    make(map[string]*Job),
		queues:  make(map[string][]*Job),
		cancels: make(map[string]context.CancelFunc),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func TestJobSpecValidation(t *testing.T) {
	cfg := Config{}.withDefaults()
	cases := []struct {
		name string
		spec JobSpec
		want string
	}{
		{"unknown kind", JobSpec{Kind: "prove", Design: "execstage", Safe: []string{"add"}}, "unknown kind"},
		{"missing design", JobSpec{Kind: KindVerify, Safe: []string{"add"}}, "design is required"},
		{"unknown design", JobSpec{Kind: KindVerify, Design: "huge", Safe: []string{"add"}}, "unknown design"},
		{"dbg on execstage", JobSpec{Kind: KindVerify, Design: "execstage+dbg", Safe: []string{"add"}}, "+dbg"},
		{"empty safe", JobSpec{Kind: KindVerify, Design: "execstage"}, "non-empty safe"},
		{"bad tenant char", JobSpec{Kind: KindVerify, Design: "execstage", Safe: []string{"add"}, Tenant: "a/b"}, "invalid tenant"},
		{"tenant too long", JobSpec{Kind: KindVerify, Design: "execstage", Safe: []string{"add"}, Tenant: strings.Repeat("x", 65)}, "invalid tenant"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := newJob(tc.spec, cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}

	j, err := newJob(JobSpec{Kind: KindSynthesize, Design: "Small+DBG"}, cfg)
	if err != nil {
		t.Fatalf("synthesize without safe set must be valid: %v", err)
	}
	if j.tenant != "default" {
		t.Fatalf("tenant = %q, want default", j.tenant)
	}
	if j.timeout != cfg.DefaultTimeout {
		t.Fatalf("timeout = %v, want %v", j.timeout, cfg.DefaultTimeout)
	}

	j, err = newJob(JobSpec{Kind: KindVerify, Design: "execstage", Safe: []string{"add"},
		TimeoutMS: (20 * time.Minute).Milliseconds()}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if j.timeout != cfg.MaxTimeout {
		t.Fatalf("timeout = %v, want cap %v", j.timeout, cfg.MaxTimeout)
	}
}

func TestRoundRobinFairShare(t *testing.T) {
	s := bareServer(Config{MaxQueued: 64, MaxQueuedPerTenant: 8})
	submit := func(tenant string) string {
		t.Helper()
		j, admErr := s.submit(JobSpec{Kind: KindVerify, Design: "execstage", Safe: []string{"add"}, Tenant: tenant})
		if admErr != nil {
			t.Fatalf("submit(%s): %v", tenant, admErr)
		}
		return j.id
	}
	// Tenant a floods first; b and c each queue one job afterwards.
	a1, a2, a3 := submit("a"), submit("a"), submit("a")
	b1 := submit("b")
	c1 := submit("c")

	var got []string
	s.mu.Lock()
	for {
		j := s.popLocked()
		if j == nil {
			break
		}
		got = append(got, j.id)
	}
	s.mu.Unlock()

	// Round-robin interleaves tenants: a1 b1 c1 a2 a3 — the flood cannot
	// starve b and c even though it queued first.
	want := []string{a1, b1, c1, a2, a3}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("pop order = %v, want %v", got, want)
	}
}

func TestAdmissionCaps(t *testing.T) {
	s := bareServer(Config{MaxQueued: 5, MaxQueuedPerTenant: 2, RetryAfter: 3 * time.Second})
	spec := func(tenant string) JobSpec {
		return JobSpec{Kind: KindVerify, Design: "execstage", Safe: []string{"add"}, Tenant: tenant}
	}
	for i := 0; i < 2; i++ {
		if _, admErr := s.submit(spec("flood")); admErr != nil {
			t.Fatalf("submit %d: %v", i, admErr)
		}
	}
	// Per-tenant cap: flood's third submission is a 429 with Retry-After,
	// but a different tenant is still admitted.
	_, admErr := s.submit(spec("flood"))
	if admErr == nil || admErr.status != 429 {
		t.Fatalf("per-tenant overflow: got %+v, want 429", admErr)
	}
	if admErr.retryAfter != 3*time.Second {
		t.Fatalf("retryAfter = %v, want 3s", admErr.retryAfter)
	}
	if _, admErr := s.submit(spec("other")); admErr != nil {
		t.Fatalf("fair share: other tenant rejected during flood: %v", admErr)
	}

	// Global cap: 3 queued now; two more tenants fill to 5, then anyone is 429.
	for _, tenant := range []string{"t3", "t4"} {
		if _, admErr := s.submit(spec(tenant)); admErr != nil {
			t.Fatal(admErr)
		}
	}
	_, admErr = s.submit(spec("t5"))
	if admErr == nil || admErr.status != 429 {
		t.Fatalf("global overflow: got %+v, want 429", admErr)
	}

	// Draining: everything is a 503 regardless of capacity.
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	_, admErr = s.submit(spec("other"))
	if admErr == nil || admErr.status != 503 {
		t.Fatalf("draining: got %+v, want 503", admErr)
	}

	st := s.StatsPayload()
	if st.RejectedBusy != 2 || st.RejectedGone != 1 || st.Accepted != 5 {
		t.Fatalf("counters = busy %d gone %d accepted %d, want 2/1/5",
			st.RejectedBusy, st.RejectedGone, st.Accepted)
	}
}

// postJob submits a spec over HTTP and returns the decoded view + response.
func postJob(t *testing.T, ts *httptest.Server, spec JobSpec) (JobView, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp
}

// awaitJob polls until the job reaches a terminal state.
func awaitJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch v.State {
		case StateDone, StateFailed, StateCanceled:
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobView{}
}

func TestHTTPEndToEnd(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close() //nolint:errcheck
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s = %d, want 200", path, resp.StatusCode)
		}
	}

	v, resp := postJob(t, ts, JobSpec{Kind: KindLearn, Design: "execstage", Safe: []string{"add"}, Tenant: "t1"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit = %d, want 201", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+v.ID {
		t.Fatalf("Location = %q", loc)
	}
	final := awaitJob(t, ts, v.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (error %q), want done", final.State, final.Error)
	}
	if final.Result == nil || !final.Result.Proved {
		t.Fatalf("result = %+v, want proved", final.Result)
	}
	if len(final.Result.Predicates) == 0 || final.Result.InvariantSize != len(final.Result.Predicates) {
		t.Fatalf("learn job must list its invariant: size %d, %d predicates",
			final.Result.InvariantSize, len(final.Result.Predicates))
	}
	if final.Stats == nil || final.Stats.Queries == 0 {
		t.Fatalf("stats = %+v, want non-zero queries", final.Stats)
	}

	// A repeat of the same job (same tenant) answers from the memo layers.
	v2, _ := postJob(t, ts, JobSpec{Kind: KindVerify, Design: "execstage", Safe: []string{"add"}, Tenant: "t1"})
	warm := awaitJob(t, ts, v2.ID)
	if warm.State != StateDone {
		t.Fatalf("warm state = %s (error %q)", warm.State, warm.Error)
	}
	if warm.Result.Proved != true {
		t.Fatal("warm repeat must still prove")
	}
	if warm.Stats.WarmFraction < 0.9 {
		t.Fatalf("warm fraction = %.3f, want ≥0.9", warm.Stats.WarmFraction)
	}
	// verify (unlike learn) reports the verdict only, not the invariant.
	if len(warm.Result.Predicates) != 0 {
		t.Fatal("verify job must not list predicates")
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st ServerStats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.JobsDone != 2 || st.Accepted != 2 || st.Workers != 2 {
		t.Fatalf("stats = done %d accepted %d workers %d", st.JobsDone, st.Accepted, st.Workers)
	}
	if st.Cache.VerdictHits == 0 {
		t.Fatal("stats must surface shared-cache hit counters")
	}

	// Error surfaces.
	resp, err = http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"kind":"verify","bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field = %d, want 400", resp.StatusCode)
	}
}

func TestTenantCacheIsolationOverHTTP(t *testing.T) {
	cache := core.NewVerifyCache()
	s := New(Config{Workers: 2, Cache: cache})
	defer s.Close() //nolint:errcheck
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	run := func(tenant string) JobView {
		v, resp := postJob(t, ts, JobSpec{Kind: KindVerify, Design: "execstage", Safe: []string{"add"}, Tenant: tenant})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit(%s) = %d", tenant, resp.StatusCode)
		}
		return awaitJob(t, ts, v.ID)
	}
	if v := run("alpha"); v.State != StateDone {
		t.Fatalf("alpha: %s (%s)", v.State, v.Error)
	}
	// A different tenant's first run over the same design must NOT be warm:
	// its keys live in a different namespace, so nothing transfers.
	cold := run("beta")
	if cold.State != StateDone {
		t.Fatalf("beta: %s (%s)", cold.State, cold.Error)
	}
	if cold.Stats.WarmFraction > 0.5 {
		t.Fatalf("cross-tenant warm fraction = %.3f — tenant isolation leaked", cold.Stats.WarmFraction)
	}
	// Whereas the same tenant repeating IS warm.
	warm := run("beta")
	if warm.Stats.WarmFraction < 0.9 {
		t.Fatalf("same-tenant warm fraction = %.3f, want ≥0.9", warm.Stats.WarmFraction)
	}
}

func TestChaosJobFailDoesNotWedgeWorker(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close() //nolint:errcheck
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	injected := errors.New("injected job failure")
	faultinject.Arm(faultinject.JobFail, faultinject.Spec{Count: 1, Err: injected})
	defer faultinject.Reset()

	v, _ := postJob(t, ts, JobSpec{Kind: KindVerify, Design: "execstage", Safe: []string{"add"}})
	failed := awaitJob(t, ts, v.ID)
	if failed.State != StateFailed || !strings.Contains(failed.Error, "injected") {
		t.Fatalf("state = %s error = %q, want injected failure", failed.State, failed.Error)
	}

	// The single worker must survive the failure and serve the next job.
	v2, _ := postJob(t, ts, JobSpec{Kind: KindVerify, Design: "execstage", Safe: []string{"add"}})
	ok := awaitJob(t, ts, v2.ID)
	if ok.State != StateDone {
		t.Fatalf("post-failure job = %s (%s), want done", ok.State, ok.Error)
	}

	st := s.StatsPayload()
	if st.JobsFailed != 1 || st.JobsDone != 1 {
		t.Fatalf("counters = failed %d done %d, want 1/1", st.JobsFailed, st.JobsDone)
	}
}

func TestChaosDrainCancelsDelayedJobs(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	faultinject.Arm(faultinject.JobDelay, faultinject.Spec{Count: -1, Delay: 300 * time.Millisecond})
	defer faultinject.Reset()

	// One job occupies the worker (sleeping in the injected delay); a second
	// stays queued behind it.
	running, _ := postJob(t, ts, JobSpec{Kind: KindVerify, Design: "execstage", Safe: []string{"add"}})
	queued, _ := postJob(t, ts, JobSpec{Kind: KindVerify, Design: "execstage", Safe: []string{"add"}})

	// Drain with a grace far shorter than the injected delay: the queued job
	// is canceled outright; the in-flight one gets its context canceled and
	// must resolve with a typed cancellation.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	for _, id := range []string{running.ID, queued.ID} {
		j, ok := s.job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		v := j.view()
		if v.State != StateCanceled && v.State != StateDone {
			t.Fatalf("job %s = %s (error %q), want canceled (or done)", id, v.State, v.Error)
		}
	}

	// Post-drain: admission refuses, readiness reports down.
	_, resp := postJob(t, ts, JobSpec{Kind: KindVerify, Design: "execstage", Safe: []string{"add"}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit = %d, want 503", resp.StatusCode)
	}
	rr, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain readyz = %d, want 503", rr.StatusCode)
	}

	// Drain is idempotent.
	if err := s.Close(); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

func TestCancelPerJobDeadline(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close() //nolint:errcheck
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A 1ms deadline cannot complete any real verification: the job must
	// resolve as a typed cancellation, not a failure or a wedged worker.
	v, resp := postJob(t, ts, JobSpec{Kind: KindVerify, Design: "small", Safe: []string{"add", "sub"}, TimeoutMS: 1})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	final := awaitJob(t, ts, v.ID)
	if final.State != StateCanceled {
		t.Fatalf("state = %s (error %q), want canceled", final.State, final.Error)
	}

	// The worker slot is free again.
	v2, _ := postJob(t, ts, JobSpec{Kind: KindVerify, Design: "execstage", Safe: []string{"add"}})
	if ok := awaitJob(t, ts, v2.ID); ok.State != StateDone {
		t.Fatalf("post-deadline job = %s (%s)", ok.State, ok.Error)
	}
}

// TestKill9RestartWarmFromJournal is the write-ahead journal's end-to-end
// proof at the service level: run a learn job with a persistent CacheDir,
// then kill the "process" with NO drain — core.CrashProofDBs abandons the
// stores without a flush or final sync, leaving on disk exactly what a
// kill -9 would. Every job ends in a journal durability point (the
// learner's shutdown Persist), so a restarted server over the same
// directory must answer >=90% of the repeat job's queries warm, from the
// journal alone: no proof.db snapshot ever existed.
func TestKill9RestartWarmFromJournal(t *testing.T) {
	dir := t.TempDir()

	s1 := New(Config{Workers: 1, CacheDir: dir})
	ts1 := httptest.NewServer(s1.Handler())
	v, resp := postJob(t, ts1, JobSpec{Kind: KindLearn, Design: "execstage", Safe: []string{"add"}, Tenant: "t1"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit = %d, want 201", resp.StatusCode)
	}
	if final := awaitJob(t, ts1, v.ID); final.State != StateDone {
		t.Fatalf("learn job = %s (%s)", final.State, final.Error)
	}
	st1 := s1.StatsPayload()
	if st1.ProofDB == nil {
		t.Fatal("/v1/stats surfaces no proofdb section for a CacheDir server")
	}
	if st1.ProofDB.JournalAppends == 0 || st1.ProofDB.JournalSyncs == 0 {
		t.Fatalf("journal idle during the job: appends=%d syncs=%d",
			st1.ProofDB.JournalAppends, st1.ProofDB.JournalSyncs)
	}
	ts1.Close()
	core.CrashProofDBs() // kill -9: no drain, no flush, no close
	if err := s1.Close(); err != nil {
		// The registry is already empty; Close just stops the worker pool.
		t.Fatalf("post-crash teardown: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "proof.db")); !os.IsNotExist(err) {
		t.Fatalf("no flush ever ran, yet a snapshot exists (stat err=%v)", err)
	}

	// Restart: fresh server, fresh cache, same directory.
	s2 := New(Config{Workers: 1, CacheDir: dir})
	defer s2.Close() //nolint:errcheck
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	v2, _ := postJob(t, ts2, JobSpec{Kind: KindVerify, Design: "execstage", Safe: []string{"add"}, Tenant: "t1"})
	warm := awaitJob(t, ts2, v2.ID)
	if warm.State != StateDone {
		t.Fatalf("restart job = %s (%s)", warm.State, warm.Error)
	}
	if warm.Stats.WarmFraction < 0.9 {
		t.Fatalf("restart warm fraction = %.3f, want >=0.9 from the journal alone", warm.Stats.WarmFraction)
	}
	st2 := s2.StatsPayload()
	if st2.ProofDB == nil || st2.ProofDB.JournalReplayed == 0 {
		t.Fatalf("restart replayed no journal records: %+v", st2.ProofDB)
	}
}

// TestReadyzNotesDegradedJournal: persistent journal I/O failure degrades
// the store to snapshot-only persistence; /readyz must stay 200 (the
// daemon is fully functional) while noting the downgrade, and /v1/stats
// must flag it.
func TestReadyzNotesDegradedJournal(t *testing.T) {
	dir := t.TempDir()
	faultinject.Arm(faultinject.JournalAppend, faultinject.Spec{Count: -1, Err: errors.New("chaos: journal disk gone")})
	defer faultinject.Reset()

	s := New(Config{Workers: 1, CacheDir: dir})
	defer s.Close() //nolint:errcheck
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v, _ := postJob(t, ts, JobSpec{Kind: KindLearn, Design: "execstage", Safe: []string{"add"}})
	if final := awaitJob(t, ts, v.ID); final.State != StateDone {
		t.Fatalf("job must succeed despite journal failure: %s (%s)", final.State, final.Error)
	}

	st := s.StatsPayload()
	if st.ProofDB == nil || !st.ProofDB.JournalDegraded {
		t.Fatalf("stats do not flag the degraded journal: %+v", st.ProofDB)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d on a degraded journal, want 200 (snapshot-only is not an outage)", resp.StatusCode)
	}
	if !strings.Contains(string(body), "degraded") {
		t.Fatalf("readyz body does not note the degradation: %q", body)
	}
}
