// Package serve is the multi-tenant invariant-learning service: a
// long-running daemon core that multiplexes many concurrent learning
// sessions over the shared cross-run verification machinery (VerifyCache,
// proofdb, solver pools) that PRs 1–7 built for one-shot CLI processes.
//
// The architecture is a bounded job queue in front of a worker-pool
// executor:
//
//   - POST /v1/jobs admits a learn / verify / synthesize job, subject to
//     admission control: a global queue-depth cap plus a per-tenant cap,
//     each rejection a 429 with Retry-After. Per-tenant sub-queues drained
//     round-robin give fair-share scheduling — a tenant flooding the queue
//     fills only its own sub-queue and cannot starve the others.
//   - Each accepted job runs under its own deadline-bearing context
//     threaded into LearnCtx (the PR 5 budget/cancellation machinery), so
//     a wedged or oversized job degrades into a typed cancellation, never
//     a stuck worker.
//   - Tenant isolation in the cache layer is by key construction, not by
//     separate caches: the tenant id is folded into every cache identity
//     (System.Namespace → CacheKey/ConeCacheKey), so no pooled solver,
//     learnt clause, verdict or abduct can cross a tenant boundary, while
//     within one tenant the full warm-transfer story (including
//     cross-design cone transfer) applies unchanged.
//   - Graceful drain (SIGTERM in cmd/veloctd): stop admitting, let
//     in-flight and queued jobs finish within the drain grace, cancel
//     whatever remains (each resolves with a typed cancellation), flush
//     the proof stores, exit.
//
// Everything is stdlib: net/http for transport, sync.Cond for the queue.
package serve

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"hhoudini/internal/design"
	core "hhoudini/internal/hhoudini"
	"hhoudini/internal/veloct"
)

// Config tunes one Server. The zero value is usable: every field below
// documents its default.
type Config struct {
	// Workers is the executor pool size — the in-flight job cap. Default 2.
	Workers int
	// JobWorkers is the default per-job learner parallelism
	// (LearnerOptions.Workers) when a job spec does not choose its own.
	// Default 1.
	JobWorkers int
	// MaxQueued is the global queued-job cap; admission beyond it is a 429.
	// Default 64.
	MaxQueued int
	// MaxQueuedPerTenant caps one tenant's sub-queue — the fair-share
	// backstop that keeps a flooding tenant from occupying the whole global
	// queue. Default 8.
	MaxQueuedPerTenant int
	// DefaultTimeout is the per-job deadline when the spec omits one.
	// Default 2m.
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-job deadline a spec may request. Default 10m.
	MaxTimeout time.Duration
	// RetryAfter is the Retry-After hint attached to 429 responses.
	// Default 1s.
	RetryAfter time.Duration
	// CacheDir, when non-empty, binds the verification cache to a
	// persistent proof store (LearnerOptions.CacheDir semantics); Drain
	// flushes it via CloseProofDBs.
	CacheDir string
	// Cache overrides the server-private verification cache (tests).
	Cache *core.VerifyCache
	// Seed is the default example-generation seed when the spec omits one.
	// Default 1.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 1
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 64
	}
	if c.MaxQueuedPerTenant <= 0 {
		c.MaxQueuedPerTenant = 8
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Cache == nil {
		c.Cache = core.NewVerifyCache()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Server is the service core: job registry, fair-share queue, executor
// pool, and the shared per-process verification cache all jobs run over.
// Construct with New, expose over HTTP with Handler, stop with Drain (or
// Close for tests).
type Server struct {
	cfg   Config
	cache *core.VerifyCache
	start time.Time

	mu   sync.Mutex
	cond *sync.Cond // signals queue activity and lifecycle changes

	jobs    map[string]*Job
	queues  map[string][]*Job // tenant → FIFO sub-queue
	ring    []string          // round-robin order over tenants with queued work
	rrNext  int
	queued  int
	running int
	seq     int64

	// cancels holds the CancelFunc of every in-flight job so drain can
	// cut the grace period short. (The contexts themselves are never
	// stored — they live on worker stacks, per the panicscope rule.)
	cancels map[string]context.CancelFunc

	draining bool
	closed   bool

	// Admission / lifecycle counters (under mu; read via StatsPayload).
	accepted     int64
	rejectedBusy int64 // 429
	rejectedGone int64 // 503 (draining/closed)
	done         int64
	failed       int64
	canceled     int64

	// analyses caches one base Analysis per design name: the miter product
	// is read-only at learning time, so tenant-specific copies (differing
	// only in Options) all share it.
	analysisMu sync.Mutex
	analyses   map[string]*veloct.Analysis

	wg sync.WaitGroup
}

// New builds a Server and starts its executor pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		cache:    cfg.Cache,
		start:    time.Now(),
		jobs:     make(map[string]*Job),
		queues:   make(map[string][]*Job),
		cancels:  make(map[string]context.CancelFunc),
		analyses: make(map[string]*veloct.Analysis),
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Cache returns the verification cache all of this server's jobs share.
func (s *Server) Cache() *core.VerifyCache { return s.cache }

// --- Admission + fair-share queue -------------------------------------------

// submit validates a spec and either enqueues a job or rejects it.
// Rejections carry the HTTP status the transport should speak: 429 when
// full (retry later), 503 when draining (this instance is going away).
func (s *Server) submit(spec JobSpec) (*Job, *admissionError) {
	j, err := newJob(spec, s.cfg)
	if err != nil {
		return nil, &admissionError{status: 400, msg: err.Error()}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		s.rejectedGone++
		return nil, &admissionError{status: 503, msg: "server is draining"}
	}
	if s.queued >= s.cfg.MaxQueued {
		s.rejectedBusy++
		return nil, &admissionError{status: 429, msg: "job queue is full", retryAfter: s.cfg.RetryAfter}
	}
	if len(s.queues[j.tenant]) >= s.cfg.MaxQueuedPerTenant {
		s.rejectedBusy++
		return nil, &admissionError{
			status:     429,
			msg:        fmt.Sprintf("tenant %q queue is full", j.tenant),
			retryAfter: s.cfg.RetryAfter,
		}
	}
	s.seq++
	j.id = fmt.Sprintf("j%08d", s.seq)
	j.state = StateQueued
	j.queuedAt = time.Now()
	s.jobs[j.id] = j
	if len(s.queues[j.tenant]) == 0 {
		s.ring = append(s.ring, j.tenant)
	}
	s.queues[j.tenant] = append(s.queues[j.tenant], j)
	s.queued++
	s.accepted++
	s.cond.Signal()
	return j, nil
}

// popLocked removes the next job under round-robin tenant order. Caller
// holds s.mu. Returns nil when every sub-queue is empty.
func (s *Server) popLocked() *Job {
	for len(s.ring) > 0 {
		if s.rrNext >= len(s.ring) {
			s.rrNext = 0
		}
		tenant := s.ring[s.rrNext]
		q := s.queues[tenant]
		if len(q) == 0 {
			// Tenant drained; drop it from the ring without advancing, so
			// the next tenant shifts into this slot.
			s.ring = append(s.ring[:s.rrNext], s.ring[s.rrNext+1:]...)
			delete(s.queues, tenant)
			continue
		}
		j := q[0]
		s.queues[tenant] = q[1:]
		if len(s.queues[tenant]) == 0 {
			s.ring = append(s.ring[:s.rrNext], s.ring[s.rrNext+1:]...)
			delete(s.queues, tenant)
		} else {
			s.rrNext++
		}
		s.queued--
		return j
	}
	return nil
}

// job looks a job up by id.
func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// --- Executor ----------------------------------------------------------------

// worker is one executor goroutine: it pulls jobs off the fair-share queue
// until the server closes (or drains dry) and runs each under its own
// deadline context.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.next()
		if j == nil {
			return
		}
		s.execute(j)
	}
}

// next blocks until a job is available, the server closes, or a drain
// leaves the queue empty; nil means the worker should exit.
func (s *Server) next() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil
		}
		if j := s.popLocked(); j != nil {
			j.mu.Lock()
			j.state = StateRunning
			j.startedAt = time.Now()
			j.mu.Unlock()
			s.running++
			return j
		}
		if s.draining {
			return nil
		}
		s.cond.Wait()
	}
}

// finish resolves a job and releases its executor slot.
func (s *Server) finish(j *Job, outcome jobOutcome) {
	j.resolve(outcome)
	s.mu.Lock()
	s.running--
	switch outcome.state {
	case StateDone:
		s.done++
	case StateCanceled:
		s.canceled++
	default:
		s.failed++
	}
	s.cond.Broadcast() // wake Drain waiters and idle workers
	s.mu.Unlock()
}

// --- Analysis resolution -----------------------------------------------------

// designBuilder resolves a design name to a deferred constructor without
// building anything — admission validates names cheaply; the (expensive)
// build happens once, in baseAnalysis. OoO sizes accept a "+dbg" suffix
// selecting the DebugCounter variant (the cross-edit cone-transfer pair
// from the cone-cache work: same verification cones, different whole-
// circuit fingerprint).
func designBuilder(name string) (func() (*design.Target, error), error) {
	base := strings.ToLower(strings.TrimSpace(name))
	dbg := strings.HasSuffix(base, "+dbg")
	base = strings.TrimSuffix(base, "+dbg")
	var v design.OoOVariant
	switch base {
	case "execstage":
		if dbg {
			return nil, fmt.Errorf("design %q: +dbg applies to OoO variants only", name)
		}
		return func() (*design.Target, error) { return design.NewExecStage(design.ExecStageConfig{}) }, nil
	case "inorder", "rocket":
		if dbg {
			return nil, fmt.Errorf("design %q: +dbg applies to OoO variants only", name)
		}
		return design.NewInOrder, nil
	case "small":
		v = design.SmallOoO
	case "medium":
		v = design.MediumOoO
	case "large":
		v = design.LargeOoO
	case "mega":
		v = design.MegaOoO
	default:
		return nil, fmt.Errorf("unknown design %q (want execstage|inorder|small|medium|large|mega, OoO sizes optionally +dbg)", name)
	}
	if dbg {
		v.Name += "+dbg"
		v.DebugCounter = true
	}
	return func() (*design.Target, error) { return design.NewOoO(v) }, nil
}

// baseAnalysis returns the design's shared Analysis, building it on first
// use. The product circuit inside is immutable during learning, so one
// instance serves every tenant and every concurrent job.
func (s *Server) baseAnalysis(designName string) (*veloct.Analysis, error) {
	key := strings.ToLower(strings.TrimSpace(designName))
	s.analysisMu.Lock()
	defer s.analysisMu.Unlock()
	if a, ok := s.analyses[key]; ok {
		return a, nil
	}
	build, err := designBuilder(key)
	if err != nil {
		return nil, err
	}
	tgt, err := build()
	if err != nil {
		return nil, err
	}
	a, err := veloct.New(tgt, veloct.DefaultOptions())
	if err != nil {
		return nil, err
	}
	s.analyses[key] = a
	return a, nil
}

// analysisFor derives the per-job Analysis: a value copy of the design's
// base analysis (sharing the product circuit) with the job's tenant
// namespace, seed and learner options applied. The tenant id lands in
// System.Namespace, which prefixes every cache key this job produces —
// the whole tenant-isolation argument lives in that key discipline.
func (s *Server) analysisFor(j *Job) (*veloct.Analysis, error) {
	base, err := s.baseAnalysis(j.design)
	if err != nil {
		return nil, err
	}
	a := *base // shallow copy: shares Target and Product, owns Opts
	a.Opts.CacheNamespace = j.tenant
	a.Opts.Examples.Seed = j.seed
	a.Opts.Learner.Workers = j.workers
	a.Opts.Learner.Cache = s.cache
	a.Opts.Learner.CacheDir = s.cfg.CacheDir
	return &a, nil
}

// --- Lifecycle ---------------------------------------------------------------

// Drain performs the graceful-shutdown protocol: stop admitting (POST and
// readyz turn 503), let queued and in-flight jobs finish until ctx
// expires, then cancel the stragglers (each resolves with a typed
// cancellation), wait for the executor pool to exit, and flush the
// persistent proof stores. Idempotent; concurrent calls all block until
// the drain completes.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()

	// Phase 1: grace. Wait for the backlog to resolve on its own.
	for {
		s.mu.Lock()
		idle := s.queued == 0 && s.running == 0
		s.mu.Unlock()
		if idle {
			break
		}
		select {
		case <-ctx.Done():
			s.cancelBacklog()
			// Phase 2: cancellation is reliable (LearnCtx interrupts its
			// solvers), so this wait terminates; poll until the pool is idle.
			for {
				s.mu.Lock()
				idle := s.queued == 0 && s.running == 0
				s.mu.Unlock()
				if idle {
					break
				}
				//hhlint:ignore ctxflow ctx is already cancelled in this branch; solver cancellation is reliable, so the poll is bounded
				time.Sleep(5 * time.Millisecond)
			}
		case <-time.After(5 * time.Millisecond):
			continue
		}
		break
	}

	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()

	if s.cfg.CacheDir != "" {
		return core.CloseProofDBs()
	}
	return nil
}

// cancelBacklog fails every still-queued job with a typed cancellation and
// fires the CancelFunc of every in-flight one.
func (s *Server) cancelBacklog() {
	s.mu.Lock()
	var stranded []*Job
	for {
		j := s.popLocked()
		if j == nil {
			break
		}
		stranded = append(stranded, j)
	}
	cancels := make([]context.CancelFunc, 0, len(s.cancels))
	for _, c := range s.cancels {
		cancels = append(cancels, c)
	}
	s.canceled += int64(len(stranded))
	s.mu.Unlock()

	for _, j := range stranded {
		j.resolve(jobOutcome{state: StateCanceled, err: context.Canceled})
	}
	for _, c := range cancels {
		c()
	}
}

// Close force-stops the server: a Drain with no grace. Tests use it.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return s.Drain(ctx)
}

// admissionError is a rejection with its HTTP shape attached.
type admissionError struct {
	status     int
	msg        string
	retryAfter time.Duration
}

func (e *admissionError) Error() string { return e.msg }
