package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	core "hhoudini/internal/hhoudini"
)

// maxBodyBytes bounds a job-spec body; specs are small JSON objects and an
// unbounded read is a trivial memory DoS.
const maxBodyBytes = 1 << 20

// Handler returns the service's HTTP surface:
//
//	POST /v1/jobs        submit a job (201, or 429/503 under admission control)
//	GET  /v1/jobs/{id}   job status + result + per-job stats
//	GET  /v1/stats       cache / pool / queue gauges
//	GET  /healthz        liveness (200 while the process runs)
//	GET  /readyz         readiness (503 once draining)
//
// Handlers never store a request context: each request's ctx stays on the
// handler stack, and job execution derives its own deadline context in the
// executor (the submitting request returns immediately at admission).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad job spec: %v", err))
		return
	}
	j, admErr := s.submit(spec)
	if admErr != nil {
		if admErr.retryAfter > 0 {
			secs := int(admErr.retryAfter.Round(time.Second) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		writeError(w, admErr.status, admErr.msg)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusCreated, j.view())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// ServerStats is the GET /v1/stats response body: queue, pool, cache and
// runtime gauges for dashboards and the loadgen assertions.
type ServerStats struct {
	UptimeMS   int64 `json:"uptime_ms"`
	Goroutines int   `json:"goroutines"`

	Draining bool `json:"draining"`

	JobsQueued   int   `json:"jobs_queued"`
	JobsRunning  int   `json:"jobs_running"`
	JobsDone     int64 `json:"jobs_done"`
	JobsFailed   int64 `json:"jobs_failed"`
	JobsCanceled int64 `json:"jobs_canceled"`

	Accepted     int64 `json:"accepted"`
	RejectedBusy int64 `json:"rejected_busy"` // 429s
	RejectedGone int64 `json:"rejected_gone"` // 503s while draining

	Workers int `json:"workers"`

	// QueueDepth maps each tenant with queued work to its sub-queue depth.
	QueueDepth map[string]int `json:"queue_depth,omitempty"`

	// Cache is the shared verification cache's counter snapshot (hits,
	// evictions, durable footprint, bytes high-water).
	Cache core.CacheCounters `json:"cache"`

	// ProofDB surfaces the bound persistent store's snapshot and
	// write-ahead-journal health; nil when the server runs without a
	// CacheDir (or the store failed to open and the cache degraded to
	// memory-only).
	ProofDB *ProofDBStats `json:"proofdb,omitempty"`
}

// ProofDBStats is the /v1/stats projection of proofdb.Stats: durability
// gauges for dashboards (is the journal keeping up? has it degraded?) and
// the crash-restart assertions in the tests.
type ProofDBStats struct {
	Flushes     int64 `json:"flushes"`
	BytesOnDisk int64 `json:"bytes_on_disk"`

	JournalAppends     int64 `json:"journal_appends"`
	JournalSyncs       int64 `json:"journal_syncs"`
	JournalRotations   int64 `json:"journal_rotations"`
	JournalCompactions int64 `json:"journal_compactions"`
	JournalReplayed    int64 `json:"journal_replayed"`
	JournalTornTails   int64 `json:"journal_torn_tails"`
	JournalSegments    int64 `json:"journal_segments"`
	JournalDegraded    bool  `json:"journal_degraded"`
}

// StatsPayload assembles the gauge snapshot (also used by tests directly).
func (s *Server) StatsPayload() ServerStats {
	s.mu.Lock()
	st := ServerStats{
		UptimeMS:     time.Since(s.start).Milliseconds(),
		Draining:     s.draining,
		JobsQueued:   s.queued,
		JobsRunning:  s.running,
		JobsDone:     s.done,
		JobsFailed:   s.failed,
		JobsCanceled: s.canceled,
		Accepted:     s.accepted,
		RejectedBusy: s.rejectedBusy,
		RejectedGone: s.rejectedGone,
		Workers:      s.cfg.Workers,
	}
	if len(s.queues) > 0 {
		st.QueueDepth = make(map[string]int, len(s.queues))
		for tenant, q := range s.queues {
			st.QueueDepth[tenant] = len(q)
		}
	}
	s.mu.Unlock()
	st.Goroutines = runtime.NumGoroutine()
	st.Cache = s.cache.Counters()
	if s.cfg.CacheDir != "" {
		if db, ok := core.ProofDBStatsFor(s.cfg.CacheDir); ok {
			st.ProofDB = &ProofDBStats{
				Flushes:            db.Flushes,
				BytesOnDisk:        db.BytesOnDisk,
				JournalAppends:     db.JournalAppends,
				JournalSyncs:       db.JournalSyncs,
				JournalRotations:   db.JournalRotations,
				JournalCompactions: db.JournalCompactions,
				JournalReplayed:    db.JournalReplayed,
				JournalTornTails:   db.JournalTornTails,
				JournalSegments:    db.JournalSegments,
				JournalDegraded:    db.JournalDegraded,
			}
		}
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsPayload())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ready := !s.draining && !s.closed
	s.mu.Unlock()
	if !ready {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	// A degraded journal is noted but never fails readiness: the store has
	// already fallen back to snapshot-only persistence and learning is
	// unaffected — the daemon must not get restart-looped over a durability
	// downgrade.
	if s.cfg.CacheDir != "" {
		if db, ok := core.ProofDBStatsFor(s.cfg.CacheDir); ok && db.JournalDegraded {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ready (journal degraded: snapshot-only persistence)")
			return
		}
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort: the client may be gone
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}
