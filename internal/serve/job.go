package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"hhoudini/internal/faultinject"
	core "hhoudini/internal/hhoudini"
	"hhoudini/internal/veloct"
)

// Job kinds.
const (
	KindLearn      = "learn"      // verify a safe set, returning the full invariant
	KindVerify     = "verify"     // verify a safe set (result summary only)
	KindSynthesize = "synthesize" // solve the SISP from scratch
)

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// JobSpec is the POST /v1/jobs request body.
type JobSpec struct {
	// Kind is learn, verify or synthesize.
	Kind string `json:"kind"`
	// Design names the target: execstage|inorder|small|medium|large|mega,
	// OoO sizes optionally suffixed +dbg (the debug-counter variant).
	Design string `json:"design"`
	// Safe is the proposed safe set for learn/verify jobs.
	Safe []string `json:"safe,omitempty"`
	// Tenant namespaces every cache artifact the job produces; empty means
	// the shared "default" tenant.
	Tenant string `json:"tenant,omitempty"`
	// Workers overrides the per-job learner parallelism (0 = server default).
	Workers int `json:"workers,omitempty"`
	// TimeoutMS overrides the per-job deadline (0 = server default; capped
	// by the server's MaxTimeout).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Seed overrides the example-generation seed (0 = server default).
	Seed int64 `json:"seed,omitempty"`
}

// maxTenantLen bounds tenant ids; validation keeps them printable so the
// cache-key namespace prefix ("ns:<tenant>\x02...") stays unambiguous.
const maxTenantLen = 64

// validTenant enforces the tenant-id alphabet: ASCII letters, digits,
// dot, dash, underscore.
func validTenant(t string) bool {
	if len(t) > maxTenantLen {
		return false
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '-' || c == '_':
		default:
			return false
		}
	}
	return true
}

// Job is one admitted unit of work. Identity fields are immutable after
// newJob; the mutable lifecycle state lives behind j.mu so HTTP reads
// never race the executor.
type Job struct {
	id      string
	kind    string
	design  string
	tenant  string
	safe    []string
	workers int
	timeout time.Duration
	seed    int64

	mu        sync.Mutex
	state     string
	queuedAt  time.Time
	startedAt time.Time
	doneAt    time.Time
	err       error
	result    *JobResult
	stats     *core.StatsSnapshot
}

// newJob validates a spec into a Job (not yet admitted: the server assigns
// id/state under its own lock).
func newJob(spec JobSpec, cfg Config) (*Job, error) {
	switch spec.Kind {
	case KindLearn, KindVerify, KindSynthesize:
	default:
		return nil, fmt.Errorf("unknown kind %q (want learn|verify|synthesize)", spec.Kind)
	}
	if spec.Design == "" {
		return nil, errors.New("design is required")
	}
	if _, err := designBuilder(spec.Design); err != nil {
		return nil, err
	}
	if spec.Kind != KindSynthesize && len(spec.Safe) == 0 {
		return nil, fmt.Errorf("%s jobs require a non-empty safe set", spec.Kind)
	}
	tenant := spec.Tenant
	if tenant == "" {
		tenant = "default"
	}
	if !validTenant(tenant) {
		return nil, fmt.Errorf("invalid tenant %q (≤%d chars of [A-Za-z0-9._-])", spec.Tenant, maxTenantLen)
	}
	timeout := cfg.DefaultTimeout
	if spec.TimeoutMS > 0 {
		timeout = time.Duration(spec.TimeoutMS) * time.Millisecond
	}
	if timeout > cfg.MaxTimeout {
		timeout = cfg.MaxTimeout
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = cfg.JobWorkers
	}
	seed := spec.Seed
	if seed == 0 {
		seed = cfg.Seed
	}
	safe := make([]string, 0, len(spec.Safe))
	for _, mn := range spec.Safe {
		if mn != "" {
			safe = append(safe, mn)
		}
	}
	return &Job{
		kind:    spec.Kind,
		design:  spec.Design,
		tenant:  tenant,
		safe:    safe,
		workers: workers,
		timeout: timeout,
		seed:    seed,
	}, nil
}

// jobOutcome is what the executor hands to finish().
type jobOutcome struct {
	state  string
	err    error
	result *JobResult
	stats  *core.StatsSnapshot
}

// resolve publishes a terminal state. First writer wins: a job the drain
// path canceled while an executor was still unwinding stays canceled.
func (j *Job) resolve(o jobOutcome) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone || j.state == StateFailed || j.state == StateCanceled {
		return
	}
	j.state = o.state
	j.err = o.err
	j.result = o.result
	j.stats = o.stats
	j.doneAt = time.Now()
}

// execute runs one job to a terminal state. The deadline context is
// created here, on the worker's stack, and threaded into LearnCtx via
// VerifyCtx/SynthesizeCtx — it is never stored (panicscope's rule, load-
// bearing for the drain protocol: cancellation must reach live solvers).
func (s *Server) execute(j *Job) {
	ctx, cancel := context.WithTimeout(context.Background(), j.timeout)
	defer cancel()
	s.mu.Lock()
	s.cancels[j.id] = cancel
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.cancels, j.id)
		s.mu.Unlock()
	}()

	if faultinject.Enabled() {
		// Chaos tier: a slow job widens the drain/deadline races; a failed
		// job must resolve cleanly without wedging its worker slot.
		faultinject.Sleep(faultinject.JobDelay)
		if err := faultinject.FireErr(faultinject.JobFail); err != nil {
			s.finish(j, jobOutcome{state: StateFailed, err: err})
			return
		}
	}

	a, err := s.analysisFor(j)
	if err != nil {
		s.finish(j, jobOutcome{state: StateFailed, err: err})
		return
	}
	switch j.kind {
	case KindLearn, KindVerify:
		res, err := a.VerifyCtx(ctx, j.safe)
		if err != nil {
			s.finish(j, outcomeForError(ctx, err))
			return
		}
		s.finish(j, jobOutcome{
			state:  StateDone,
			result: resultView(j.kind, res, nil),
			stats:  snapshotOf(res.Stats),
		})
	case KindSynthesize:
		syn, err := a.SynthesizeCtx(ctx)
		if err != nil {
			s.finish(j, outcomeForError(ctx, err))
			return
		}
		var stats *core.StatsSnapshot
		var res *veloct.Result
		if syn.Result != nil {
			res = syn.Result
			stats = snapshotOf(syn.Result.Stats)
		}
		s.finish(j, jobOutcome{
			state:  StateDone,
			result: resultView(j.kind, res, syn),
			stats:  stats,
		})
	default:
		s.finish(j, jobOutcome{state: StateFailed, err: fmt.Errorf("unknown kind %q", j.kind)})
	}
}

// outcomeForError classifies a learner error: context cancellation and
// deadline expiry are typed cancellations (the drain/deadline contract —
// every accepted job resolves), everything else is a failure.
func outcomeForError(ctx context.Context, err error) jobOutcome {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil {
		return jobOutcome{state: StateCanceled, err: err}
	}
	return jobOutcome{state: StateFailed, err: err}
}

func snapshotOf(st *core.Stats) *core.StatsSnapshot {
	if st == nil {
		return nil
	}
	snap := st.Snapshot()
	return &snap
}

// --- Wire views --------------------------------------------------------------

// JobResult is the kind-specific payload of a finished job.
type JobResult struct {
	// Proved reports whether an invariant was found (learn/verify) or the
	// synthesized set verified (synthesize).
	Proved bool `json:"proved"`
	// Reason explains a false Proved when known.
	Reason string `json:"reason,omitempty"`
	// InvariantSize is the predicate count of the learned invariant.
	InvariantSize int `json:"invariant_size,omitempty"`
	// Predicates lists the invariant's predicate IDs (learn jobs only —
	// the full invariant is the point of a learn job; verify only reports
	// the verdict).
	Predicates []string `json:"predicates,omitempty"`
	// Examples is the positive-example count backing the run.
	Examples int `json:"examples,omitempty"`
	// Safe is the verified (learn/verify) or synthesized safe set.
	Safe []string `json:"safe,omitempty"`
	// Unsafe lists instructions excluded by synthesis.
	Unsafe []string `json:"unsafe,omitempty"`
}

func resultView(kind string, res *veloct.Result, syn *veloct.Synthesis) *JobResult {
	out := &JobResult{}
	if res != nil {
		out.Proved = res.Invariant != nil
		out.Reason = res.Reason
		out.Examples = res.Examples
		out.Safe = append([]string(nil), res.Safe...)
		if res.Invariant != nil {
			out.InvariantSize = res.Invariant.Size()
			if kind == KindLearn {
				for _, p := range res.Invariant.Preds {
					out.Predicates = append(out.Predicates, p.ID())
				}
				sort.Strings(out.Predicates)
			}
		}
	}
	if syn != nil {
		out.Safe = append([]string(nil), syn.Safe...)
		out.Unsafe = append([]string(nil), syn.Unsafe...)
		sort.Strings(out.Safe)
		sort.Strings(out.Unsafe)
	}
	return out
}

// StatsView is the per-job learner instrumentation on the wire, derived
// from an atomic StatsSnapshot (never from plain Stats reads — the job may
// still be running when a client polls).
type StatsView struct {
	Tasks      int64 `json:"tasks"`
	Backtracks int64 `json:"backtracks"`
	Queries    int64 `json:"queries"`

	SolverAllocs int64 `json:"solver_allocs"`
	PoolReuses   int64 `json:"pool_reuses"`

	EncodedClauses int64 `json:"encoded_clauses"`

	CacheEncoderHits int64 `json:"cache_encoder_hits"`
	CacheVerdictHits int64 `json:"cache_verdict_hits"`
	CacheAbductHits  int64 `json:"cache_abduct_hits"`
	CacheDiskHits    int64 `json:"cache_disk_hits"`

	QueryRetries        int64 `json:"query_retries"`
	QueryBudgetAbandons int64 `json:"query_budget_abandons"`

	WallTimeMS int64 `json:"wall_time_ms"`

	// WarmFraction is the fraction of abduction queries answered from the
	// memo layers without solver work: (verdict hits + abduct hits) /
	// queries. The loadgen repeat-pass acceptance asserts it ≥0.9.
	WarmFraction float64 `json:"warm_fraction"`
}

func statsView(s *core.StatsSnapshot) *StatsView {
	if s == nil {
		return nil
	}
	v := &StatsView{
		Tasks:      s.Tasks,
		Backtracks: s.Backtracks,
		Queries:    s.Queries,

		SolverAllocs: s.SolverAllocs,
		PoolReuses:   s.PoolReuses,

		EncodedClauses: s.EncodedClauses,

		CacheEncoderHits: s.CacheEncoderHits,
		CacheVerdictHits: s.CacheVerdictHits,
		CacheAbductHits:  s.CacheAbductHits,
		CacheDiskHits:    s.CacheDiskHits,

		QueryRetries:        s.QueryRetries,
		QueryBudgetAbandons: s.QueryBudgetAbandons,

		WallTimeMS: s.WallTime.Milliseconds(),
	}
	if s.Queries > 0 {
		v.WarmFraction = float64(s.CacheVerdictHits+s.CacheAbductHits) / float64(s.Queries)
	}
	return v
}

// JobView is the GET /v1/jobs/{id} response body.
type JobView struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Design string `json:"design"`
	Tenant string `json:"tenant"`
	State  string `json:"state"`

	QueuedAt  string `json:"queued_at"`
	StartedAt string `json:"started_at,omitempty"`
	DoneAt    string `json:"done_at,omitempty"`

	Error  string     `json:"error,omitempty"`
	Result *JobResult `json:"result,omitempty"`
	Stats  *StatsView `json:"stats,omitempty"`
}

// view snapshots the job for the wire.
func (j *Job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:       j.id,
		Kind:     j.kind,
		Design:   j.design,
		Tenant:   j.tenant,
		State:    j.state,
		QueuedAt: j.queuedAt.UTC().Format(time.RFC3339Nano),
		Result:   j.result,
		Stats:    statsView(j.stats),
	}
	if !j.startedAt.IsZero() {
		v.StartedAt = j.startedAt.UTC().Format(time.RFC3339Nano)
	}
	if !j.doneAt.IsZero() {
		v.DoneAt = j.doneAt.UTC().Format(time.RFC3339Nano)
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	return v
}
