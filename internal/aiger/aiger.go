// Package aiger reads and writes the ASCII AIGER 1.9 format ("aag"), the
// standard interchange format for and-inverter graphs with latches used by
// hardware model checkers. It complements the btor2 bridge: this
// repository's circuits are AIGs internally, so the mapping is exact.
package aiger

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hhoudini/internal/circuit"
)

// Design is a parsed AIGER model.
type Design struct {
	Circuit *circuit.Circuit
	// Outputs lists the named output wires in declaration order.
	Outputs []string
	// Bads lists the named bad-state wires (AIGER 1.9 B section).
	Bads []string
}

// Write exports a circuit as ASCII AIGER. Registers and inputs are
// bit-blasted to AIGER's 1-bit latches/inputs with names name[i] in the
// symbol table; every named wire becomes an output (or a bad-state
// property when listed in bads).
func Write(w io.Writer, c *circuit.Circuit, bads []string) error {
	bw := bufio.NewWriter(w)

	type latchInfo struct {
		lit  uint
		next circuit.Signal
		init bool
		name string
	}
	var (
		nextVar uint = 1
		inLits  []uint
		inNames []string
		latches []latchInfo
	)
	litOfNode := map[int32]uint{0: 0} // node → positive literal; const-false = 0

	for _, p := range c.Inputs() {
		for bit, sig := range p.Bits {
			lit := 2 * nextVar
			nextVar++
			litOfNode[sig.Node()] = lit
			inLits = append(inLits, lit)
			inNames = append(inNames, fmt.Sprintf("%s[%d]", p.Name, bit))
		}
	}
	for _, r := range c.Regs() {
		for bit, sig := range r.Bits {
			lit := 2 * nextVar
			nextVar++
			litOfNode[sig.Node()] = lit
			latches = append(latches, latchInfo{
				lit:  lit,
				next: r.Next[bit],
				init: bit < 64 && r.Init&(1<<uint(bit)) != 0,
				name: fmt.Sprintf("%s[%d]", r.Name, bit),
			})
		}
	}
	litOf := func(s circuit.Signal) uint {
		base, ok := litOfNode[s.Node()]
		if !ok {
			panic(fmt.Sprintf("aiger: node %d not yet assigned", s.Node()))
		}
		if s.Inverted() {
			return base ^ 1
		}
		return base
	}
	type andGate struct{ lhs, r0, r1 uint }
	var ands []andGate
	c.VisitAnds(func(node int32, a, b circuit.Signal) {
		lhs := 2 * nextVar
		nextVar++
		litOfNode[node] = lhs
		r0, r1 := litOf(a), litOf(b)
		if r0 < r1 {
			r0, r1 = r1, r0 // AIGER wants rhs0 >= rhs1
		}
		ands = append(ands, andGate{lhs, r0, r1})
	})

	badSet := make(map[string]bool, len(bads))
	for _, b := range bads {
		badSet[b] = true
	}
	type outInfo struct {
		lit  uint
		name string
		bad  bool
	}
	var outs []outInfo
	nBad := 0
	for _, name := range c.WireNames() {
		word, _ := c.Wire(name)
		for bit, sig := range word {
			if badSet[name] {
				outs = append(outs, outInfo{litOf(sig), name, true})
				nBad++
			} else {
				outs = append(outs, outInfo{litOf(sig), fmt.Sprintf("%s[%d]", name, bit), false})
			}
		}
	}

	maxVar := nextVar - 1
	nOut := len(outs) - nBad
	fmt.Fprintf(bw, "aag %d %d %d %d %d", maxVar, len(inLits), len(latches), nOut, len(ands))
	if nBad > 0 {
		fmt.Fprintf(bw, " %d", nBad)
	}
	fmt.Fprintln(bw)
	for _, lit := range inLits {
		fmt.Fprintln(bw, lit)
	}
	for _, l := range latches {
		init := 0
		if l.init {
			init = 1
		}
		fmt.Fprintf(bw, "%d %d %d\n", l.lit, litOf(l.next), init)
	}
	for _, o := range outs {
		if !o.bad {
			fmt.Fprintln(bw, o.lit)
		}
	}
	for _, o := range outs {
		if o.bad {
			fmt.Fprintln(bw, o.lit)
		}
	}
	for _, a := range ands {
		fmt.Fprintf(bw, "%d %d %d\n", a.lhs, a.r0, a.r1)
	}
	// Symbol table.
	for i, name := range inNames {
		fmt.Fprintf(bw, "i%d %s\n", i, name)
	}
	for i, l := range latches {
		fmt.Fprintf(bw, "l%d %s\n", i, l.name)
	}
	oIdx, bIdx := 0, 0
	for _, o := range outs {
		if o.bad {
			fmt.Fprintf(bw, "b%d %s\n", bIdx, o.name)
			bIdx++
		} else {
			fmt.Fprintf(bw, "o%d %s\n", oIdx, o.name)
			oIdx++
		}
	}
	return bw.Flush()
}

// Parse reads an ASCII AIGER ("aag") model into a circuit. Inputs and
// latches become 1-bit ports named from the symbol table (i<n>/l<n>
// otherwise); outputs and bad-state properties become named wires.
func Parse(r io.Reader) (*Design, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("aiger: empty input")
	}
	hdr := strings.Fields(sc.Text())
	if len(hdr) < 6 || hdr[0] != "aag" {
		return nil, fmt.Errorf("aiger: bad header %q (only ASCII aag supported)", sc.Text())
	}
	nums := make([]int, 0, 6)
	for _, f := range hdr[1:] {
		n, err := strconv.Atoi(f)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("aiger: bad header field %q", f)
		}
		nums = append(nums, n)
	}
	maxVar, nIn, nLatch, nOut, nAnd := nums[0], nums[1], nums[2], nums[3], nums[4]
	nBad := 0
	if len(nums) > 5 {
		nBad = nums[5]
	}
	// Sanity: every input/latch/and needs its own variable, and nothing in
	// this repository approaches 2^26 variables — reject absurd headers
	// before allocating for them.
	const maxSane = 1 << 22
	if maxVar > maxSane || nOut > maxSane || nBad > maxSane {
		return nil, fmt.Errorf("aiger: header sizes exceed sanity limit")
	}
	if nIn+nLatch+nAnd > maxVar {
		return nil, fmt.Errorf("aiger: header declares %d definitions for %d variables",
			nIn+nLatch+nAnd, maxVar)
	}

	readLine := func() ([]int, error) {
		if !sc.Scan() {
			return nil, fmt.Errorf("aiger: unexpected end of input")
		}
		fields := strings.Fields(sc.Text())
		out := make([]int, len(fields))
		for i, f := range fields {
			n, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("aiger: bad literal %q", f)
			}
			out[i] = n
		}
		return out, nil
	}

	checkDefLit := func(lit int) error {
		if lit < 2 || lit%2 != 0 || lit/2 > maxVar {
			return fmt.Errorf("aiger: definition literal %d out of range (maxvar %d)", lit, maxVar)
		}
		return nil
	}
	inLits := make([]int, nIn)
	for i := range inLits {
		ls, err := readLine()
		if err != nil {
			return nil, err
		}
		if len(ls) != 1 {
			return nil, fmt.Errorf("aiger: bad input line %v", ls)
		}
		if err := checkDefLit(ls[0]); err != nil {
			return nil, err
		}
		inLits[i] = ls[0]
	}
	type latchLine struct{ lit, next, init int }
	latchLines := make([]latchLine, nLatch)
	for i := range latchLines {
		ls, err := readLine()
		if err != nil {
			return nil, err
		}
		if len(ls) < 2 {
			return nil, fmt.Errorf("aiger: bad latch line %v", ls)
		}
		if err := checkDefLit(ls[0]); err != nil {
			return nil, err
		}
		ll := latchLine{lit: ls[0], next: ls[1]}
		if len(ls) > 2 {
			if ls[2] != 0 && ls[2] != 1 {
				return nil, fmt.Errorf("aiger: unsupported latch reset %d (0/1 only)", ls[2])
			}
			ll.init = ls[2]
		}
		latchLines[i] = ll
	}
	readLits := func(n int, what string) ([]int, error) {
		out := make([]int, 0, min(n, 4096))
		for i := 0; i < n; i++ {
			ls, err := readLine()
			if err != nil {
				return nil, err
			}
			if len(ls) != 1 {
				return nil, fmt.Errorf("aiger: bad %s line %v", what, ls)
			}
			out = append(out, ls[0])
		}
		return out, nil
	}
	outLits, err := readLits(nOut, "output")
	if err != nil {
		return nil, err
	}
	badLits, err := readLits(nBad, "bad-property")
	if err != nil {
		return nil, err
	}
	type andLine struct{ lhs, r0, r1 int }
	andLines := make([]andLine, nAnd)
	for i := range andLines {
		ls, err := readLine()
		if err != nil {
			return nil, err
		}
		if len(ls) != 3 {
			return nil, fmt.Errorf("aiger: bad and line %v", ls)
		}
		if err := checkDefLit(ls[0]); err != nil {
			return nil, err
		}
		andLines[i] = andLine{ls[0], ls[1], ls[2]}
	}
	// Symbol table + comments.
	inNames := make(map[int]string)
	latchNames := make(map[int]string)
	outNames := make(map[int]string)
	badNames := make(map[int]string)
	for sc.Scan() {
		line := sc.Text()
		if line == "c" {
			break
		}
		sp := strings.IndexByte(line, ' ')
		if sp <= 1 {
			continue
		}
		kind, idxStr, name := line[0], line[1:sp], line[sp+1:]
		idx, err := strconv.Atoi(idxStr)
		if err != nil {
			continue
		}
		switch kind {
		case 'i':
			inNames[idx] = name
		case 'l':
			latchNames[idx] = name
		case 'o':
			outNames[idx] = name
		case 'b':
			badNames[idx] = name
		}
	}

	// Build the circuit.
	b := circuit.NewBuilder()
	sigOfVar := make([]circuit.Signal, maxVar+1)
	assigned := make([]bool, maxVar+1)
	sigOfVar[0] = circuit.False
	assigned[0] = true
	nameOr := func(m map[int]string, i int, def string) string {
		if n, ok := m[i]; ok {
			return n
		}
		return def
	}
	define := func(lit int, sig circuit.Signal) error {
		if assigned[lit/2] {
			return fmt.Errorf("aiger: variable %d defined twice", lit/2)
		}
		sigOfVar[lit/2] = sig
		assigned[lit/2] = true
		return nil
	}
	for i, lit := range inLits {
		w := b.Input(nameOr(inNames, i, fmt.Sprintf("i%d", i)), 1)
		if err := define(lit, w[0]); err != nil {
			return nil, err
		}
	}
	for i, ll := range latchLines {
		w := b.Register(nameOr(latchNames, i, fmt.Sprintf("l%d", i)), 1, uint64(ll.init))
		if err := define(ll.lit, w[0]); err != nil {
			return nil, err
		}
	}
	sigOf := func(lit int) (circuit.Signal, error) {
		v := lit / 2
		if v < 0 || v > maxVar {
			return circuit.False, fmt.Errorf("aiger: literal %d out of range", lit)
		}
		if !assigned[v] {
			return circuit.False, fmt.Errorf("aiger: literal %d references undefined variable", lit)
		}
		s := sigOfVar[v]
		if lit%2 == 1 {
			return s.Not(), nil
		}
		return s, nil
	}
	for _, al := range andLines {
		r0, err := sigOf(al.r0)
		if err != nil {
			return nil, err
		}
		r1, err := sigOf(al.r1)
		if err != nil {
			return nil, err
		}
		if err := define(al.lhs, b.And2(r0, r1)); err != nil {
			return nil, err
		}
	}
	d := &Design{}
	for i, ll := range latchLines {
		next, err := sigOf(ll.next)
		if err != nil {
			return nil, err
		}
		b.SetNext(nameOr(latchNames, i, fmt.Sprintf("l%d", i)), circuit.Word{next})
	}
	for i, lit := range outLits {
		sig, err := sigOf(lit)
		if err != nil {
			return nil, err
		}
		name := nameOr(outNames, i, fmt.Sprintf("o%d", i))
		b.Name(name, circuit.Word{sig})
		d.Outputs = append(d.Outputs, name)
	}
	for i, lit := range badLits {
		sig, err := sigOf(lit)
		if err != nil {
			return nil, err
		}
		name := nameOr(badNames, i, fmt.Sprintf("b%d", i))
		b.Name(name, circuit.Word{sig})
		d.Bads = append(d.Bads, name)
	}
	c, err := b.Build()
	if err != nil {
		return nil, err
	}
	d.Circuit = c
	return d, nil
}
