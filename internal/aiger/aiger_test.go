package aiger

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hhoudini/internal/circuit"
	"hhoudini/internal/mc"
)

func buildToggle(t *testing.T) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder()
	en := b.Input("en", 1)
	q := b.Register("q", 1, 0)
	b.SetNext("q", circuit.Word{b.Xor2(q[0], en[0])})
	b.Name("out", q)
	b.Name("bad", circuit.Word{q[0]})
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestWriteParseRoundTripToggle(t *testing.T) {
	c1 := buildToggle(t)
	var buf bytes.Buffer
	if err := Write(&buf, c1, []string{"bad"}); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.HasPrefix(text, "aag ") {
		t.Fatalf("bad header: %q", text[:10])
	}
	d, err := Parse(&buf)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if len(d.Bads) != 1 || d.Bads[0] != "bad" {
		t.Fatalf("bads = %v", d.Bads)
	}
	if got, want := d.Circuit.NumStateBits(), c1.NumStateBits(); got != want {
		t.Fatalf("state bits %d, want %d", got, want)
	}
	// The bad state (q==1) is reachable in 1 step with en=1 in both.
	tr, err := mc.BMC(d.Circuit, "bad", 4)
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil || tr.Len() != 1 {
		t.Fatalf("cex = %+v", tr)
	}
}

func TestParseHandAuthored(t *testing.T) {
	// A latch that toggles unconditionally, output = latch.
	model := `aag 1 0 1 1 0
2 3 0
2
l0 tick
o0 tickout
`
	d, err := Parse(strings.NewReader(model))
	if err != nil {
		t.Fatal(err)
	}
	sim := circuit.NewSim(d.Circuit)
	want := []uint64{0, 1, 0, 1}
	for i, w := range want {
		if v, _ := sim.PeekReg("tick"); v != w {
			t.Fatalf("cycle %d: tick = %d, want %d", i, v, w)
		}
		sim.Step(nil)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"binary header":   "aig 1 0 0 0 0\n",
		"short header":    "aag 1 0\n",
		"negative":        "aag -1 0 0 0 0\n",
		"odd input":       "aag 1 1 0 0 0\n3\n",
		"truncated":       "aag 2 2 0 0 0\n2\n",
		"bad latch reset": "aag 1 0 1 0 0\n2 2 5\n",
		"undefined var":   "aag 2 0 0 1 0\n4\n",
		"bad and lhs":     "aag 2 1 0 0 1\n2\n3 2 2\n",
	}
	for name, model := range cases {
		if _, err := Parse(strings.NewReader(model)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestRandomRoundTripCrossSim: random circuits must survive the AIGER
// round trip with identical cycle-by-cycle behavior.
func TestRandomRoundTripCrossSim(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 20; iter++ {
		b := circuit.NewBuilder()
		in := b.Input("in", 4)
		x := b.Register("x", 4, uint64(rng.Intn(16)))
		y := b.Register("y", 4, uint64(rng.Intn(16)))
		b.SetNext("x", b.Add(x, in))
		b.SetNext("y", b.MuxW(b.Ult(x, y), b.XorW(y, in), y))
		b.Name("o", b.OrW(x, y))
		c1, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, c1, nil); err != nil {
			t.Fatal(err)
		}
		d, err := Parse(&buf)
		if err != nil {
			t.Fatal(err)
		}
		sim1 := circuit.NewSim(c1)
		sim2 := circuit.NewSim(d.Circuit)
		for cyc := 0; cyc < 30; cyc++ {
			iv := rng.Uint64() & 15
			in2 := circuit.Inputs{}
			for bit := 0; bit < 4; bit++ {
				in2[fmt.Sprintf("in[%d]", bit)] = (iv >> uint(bit)) & 1
			}
			sim1.SetInputs(circuit.Inputs{"in": iv})
			sim2.SetInputs(in2)
			v1, _ := sim1.PeekWire("o")
			var v2 uint64
			for bit := 0; bit < 4; bit++ {
				bv, err := sim2.PeekWire(fmt.Sprintf("o[%d]", bit))
				if err != nil {
					t.Fatal(err)
				}
				v2 |= bv << uint(bit)
			}
			if v1 != v2 {
				t.Fatalf("iter %d cycle %d: output diverged %d vs %d", iter, cyc, v1, v2)
			}
			sim1.Step(circuit.Inputs{"in": iv})
			sim2.Step(in2)
		}
	}
}

func TestWriteConstantAndFoldedGates(t *testing.T) {
	// A circuit whose logic folds to constants must still export/import.
	b := circuit.NewBuilder()
	x := b.Input("x", 1)
	q := b.Register("q", 1, 1)
	b.SetNext("q", circuit.Word{b.And2(x[0], x[0].Not())}) // folds to False
	b.Name("alwayszero", circuit.Word{b.And2(q[0], q[0].Not())})
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, c, nil); err != nil {
		t.Fatal(err)
	}
	d, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sim := circuit.NewSim(d.Circuit)
	sim.Step(circuit.Inputs{"x[0]": 1})
	if v, _ := sim.PeekReg("q[0]"); v != 0 {
		t.Fatalf("q = %d, want 0", v)
	}
}
