package aiger

import (
	"bytes"
	"strings"
	"testing"

	"hhoudini/internal/circuit"
)

// FuzzParse exercises the AIGER parser on arbitrary input: no panics, and
// accepted models must simulate and round-trip.
func FuzzParse(f *testing.F) {
	f.Add("aag 1 0 1 1 0\n2 3 0\n2\nl0 tick\no0 out\n")
	f.Add("aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n")
	f.Add("aag 0 0 0 0 0\n")
	f.Add("not an aiger file")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		sim := circuit.NewSim(d.Circuit)
		for i := 0; i < 3; i++ {
			if err := sim.Step(nil); err != nil {
				t.Fatalf("accepted model fails to simulate: %v", err)
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, d.Circuit, d.Bads); err != nil {
			t.Fatalf("accepted model fails to export: %v", err)
		}
		if _, err := Parse(&buf); err != nil {
			t.Fatalf("exported model fails to re-parse: %v\n%s", err, buf.String())
		}
	})
}
