package proofdb

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// testSnapshot is a small fixed snapshot exercised by most tests. It mixes
// v1 record types (clauses, verdicts) with v2 cone-abduct records — under a
// cone-level key, as the engine writes them — so every corruption, eviction
// and round-trip test below runs against a mixed-version store.
func testSnapshot() *Snapshot {
	return &Snapshot{Keys: []KeyRecord{
		{
			Key: "cone:00c0ffee|env0",
			Abducts: []Abduct{
				{Target: "t0", Preds: []string{"p1", "p2"}},
				{Target: "t1"}, // empty abduct: inductive relative to nothing
			},
		},
		{
			Key: "fp0|env0",
			Clauses: []Clause{
				{Lits: []Lit{{Name: "a"}, {Name: "b", Neg: true}}},
				{Lits: []Lit{{Name: "c", Neg: true}}},
			},
			Verdicts: []Verdict{
				{A: 1, B: 2, OK: true, Preds: []string{"p1", "p2"}},
				{A: 3, B: 4, OK: false},
			},
		},
		{
			Key:     "fp1|env1",
			Clauses: []Clause{{Lits: []Lit{{Name: "x"}}}},
			Verdicts: []Verdict{
				{A: 9, B: 9, OK: true, Preds: []string{"q"}},
			},
		},
	}}
}

func mustOpen(t *testing.T, dir string, opts Options) *DB {
	t.Helper()
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return db
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, dir, Options{})
	db.Merge(testSnapshot())
	want := db.Snapshot() // canonical (fingerprint-sorted) form
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db2 := mustOpen(t, dir, Options{})
	got := db2.Snapshot()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	st := db2.Stats()
	if st.ClausesLoaded != 3 || st.VerdictsLoaded != 3 || st.AbductsLoaded != 2 {
		t.Fatalf("loaded clauses=%d verdicts=%d abducts=%d, want 3/3/2",
			st.ClausesLoaded, st.VerdictsLoaded, st.AbductsLoaded)
	}
	if st.CorruptSkipped != 0 || st.HeaderRejected {
		t.Fatalf("clean store reported corruption: %+v", st)
	}
}

func TestMissingFileIsColdStart(t *testing.T) {
	db := mustOpen(t, t.TempDir(), Options{})
	if n := db.Snapshot().Len(); n != 0 {
		t.Fatalf("fresh store has %d records", n)
	}
	st := db.Stats()
	if st.HeaderRejected || st.CorruptSkipped != 0 {
		t.Fatalf("fresh store reported corruption: %+v", st)
	}
}

func TestClausePermutationDedups(t *testing.T) {
	db := mustOpen(t, t.TempDir(), Options{})
	db.Merge(&Snapshot{Keys: []KeyRecord{{
		Key: "k",
		Clauses: []Clause{
			{Lits: []Lit{{Name: "a"}, {Name: "b", Neg: true}}},
			{Lits: []Lit{{Name: "b", Neg: true}, {Name: "a"}}}, // permutation
		},
	}}})
	if c, _ := db.Len(); c != 1 {
		t.Fatalf("permuted clause not deduped: %d clauses", c)
	}
}

// storeFile returns the store path and its current contents.
func storeFile(t *testing.T, dir string) (string, []byte) {
	t.Helper()
	path := filepath.Join(dir, FileName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read store: %v", err)
	}
	return path, raw
}

// populate writes the fixed snapshot and closes the store.
func populate(t *testing.T, dir string) {
	t.Helper()
	db := mustOpen(t, dir, Options{})
	db.Merge(testSnapshot())
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestTruncatedFileSkipsTornRecord(t *testing.T) {
	dir := t.TempDir()
	populate(t, dir)
	path, raw := storeFile(t, dir)
	// Cut the file mid-way through the final record.
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	db := mustOpen(t, dir, Options{})
	st := db.Stats()
	if st.CorruptSkipped != 1 {
		t.Fatalf("CorruptSkipped = %d, want 1 (the torn tail record)", st.CorruptSkipped)
	}
	if got, want := int64(db.Snapshot().Len()), st.ClausesLoaded+st.VerdictsLoaded+st.AbductsLoaded; got != want {
		t.Fatalf("model has %d records, stats say %d", got, want)
	}
	if db.Snapshot().Len() != testSnapshot().Len()-1 {
		t.Fatalf("loaded %d records, want %d", db.Snapshot().Len(), testSnapshot().Len()-1)
	}
}

func TestFlippedByteFailsCRCAndIsSkipped(t *testing.T) {
	dir := t.TempDir()
	populate(t, dir)
	path, raw := storeFile(t, dir)
	lines := bytes.Split(raw, []byte("\n"))
	// Flip one byte inside the JSON payload of the second record.
	target := lines[2]
	target[len(target)/2] ^= 0x20
	if err := os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	db := mustOpen(t, dir, Options{})
	st := db.Stats()
	if st.CorruptSkipped != 1 {
		t.Fatalf("CorruptSkipped = %d, want 1 (the flipped record)", st.CorruptSkipped)
	}
	if db.Snapshot().Len() != testSnapshot().Len()-1 {
		t.Fatalf("loaded %d records, want %d", db.Snapshot().Len(), testSnapshot().Len()-1)
	}
}

func TestWrongVersionHeaderRejectsWholeFile(t *testing.T) {
	dir := t.TempDir()
	populate(t, dir)
	path, raw := storeFile(t, dir)
	mutated := bytes.Replace(raw, []byte(header()), []byte("HHPDB v999"), 1)
	if err := os.WriteFile(path, mutated, 0o644); err != nil {
		t.Fatal(err)
	}

	db := mustOpen(t, dir, Options{})
	st := db.Stats()
	if !st.HeaderRejected {
		t.Fatal("HeaderRejected not set for a version-mismatched file")
	}
	if n := db.Snapshot().Len(); n != 0 {
		t.Fatalf("version-mismatched file still loaded %d records", n)
	}
	// The next flush rewrites the file under the current version.
	db.Merge(testSnapshot())
	if err := db.Close(); err != nil {
		t.Fatalf("Close after header rejection: %v", err)
	}
	db2 := mustOpen(t, dir, Options{})
	if db2.Snapshot().Len() != testSnapshot().Len() {
		t.Fatal("store not rewritten after header rejection")
	}
}

func TestGarbageFileIsColdStart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, FileName)
	if err := os.WriteFile(path, []byte("\x00\x01garbage\xffnot a store\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	db := mustOpen(t, dir, Options{})
	if !db.Stats().HeaderRejected {
		t.Fatal("garbage header not rejected")
	}
	if n := db.Snapshot().Len(); n != 0 {
		t.Fatalf("garbage file loaded %d records", n)
	}
}

func TestUnknownRecordTypeIsSkippedNotFatal(t *testing.T) {
	dir := t.TempDir()
	populate(t, dir)
	path, raw := storeFile(t, dir)
	// Append a well-formed line of an unknown (future) record type.
	future, err := encodeLine(&record{T: "lemma", Key: "k", At: time.Now().Unix()})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(raw, future...), 0o644); err != nil {
		t.Fatal(err)
	}
	db := mustOpen(t, dir, Options{})
	if db.Snapshot().Len() != testSnapshot().Len() {
		t.Fatalf("unknown record type perturbed the load: %d records", db.Snapshot().Len())
	}
	if db.Stats().CorruptSkipped != 1 {
		t.Fatalf("CorruptSkipped = %d, want 1 (the future record)", db.Stats().CorruptSkipped)
	}
}

func TestAgeEvictionAtLoadAndFlush(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	db := mustOpen(t, dir, Options{Now: clock})
	db.Merge(testSnapshot())
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Re-open beyond MaxAge: everything is expired at load.
	later := now.Add(DefaultMaxAge + time.Hour)
	db2 := mustOpen(t, dir, Options{Now: func() time.Time { return later }})
	if n := db2.Snapshot().Len(); n != 0 {
		t.Fatalf("expired store still loaded %d records", n)
	}
	if got := db2.Stats().ExpiredSkipped; got != int64(testSnapshot().Len()) {
		t.Fatalf("ExpiredSkipped = %d, want %d", got, testSnapshot().Len())
	}

	// Flush-side eviction: records go stale while the DB is open.
	db3 := mustOpen(t, dir, Options{Now: func() time.Time { return later }})
	db3.Merge(testSnapshot())
	db3.opts.Now = func() time.Time { return later.Add(DefaultMaxAge + time.Hour) }
	if err := db3.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := db3.Stats().AgeEvicted; got != int64(testSnapshot().Len()) {
		t.Fatalf("AgeEvicted = %d, want %d", got, testSnapshot().Len())
	}
	if n := db3.Snapshot().Len(); n != 0 {
		t.Fatalf("flush left %d stale records in the model", n)
	}
}

func TestNegativeMaxAgeDisablesEviction(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1_700_000_000, 0)
	db := mustOpen(t, dir, Options{MaxAge: -1, Now: func() time.Time { return now }})
	db.Merge(testSnapshot())
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	far := now.Add(100 * DefaultMaxAge)
	db2 := mustOpen(t, dir, Options{MaxAge: -1, Now: func() time.Time { return far }})
	if db2.Snapshot().Len() != testSnapshot().Len() {
		t.Fatal("records evicted despite MaxAge < 0")
	}
}

func TestByteBudgetLRUCompaction(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1_700_000_000, 0)
	db := mustOpen(t, dir, Options{Now: func() time.Time { return now }})

	// Old generation of clauses, then a newer generation; the budget only
	// fits roughly the newer half, so the older half must be LRU-dropped.
	old := &Snapshot{Keys: []KeyRecord{{Key: "k"}}}
	for _, n := range []string{"o1", "o2", "o3", "o4"} {
		old.Keys[0].Clauses = append(old.Keys[0].Clauses, Clause{Lits: []Lit{{Name: n}}})
	}
	db.Merge(old)

	db.opts.Now = func() time.Time { return now.Add(time.Hour) }
	fresh := &Snapshot{Keys: []KeyRecord{{Key: "k"}}}
	for _, n := range []string{"n1", "n2", "n3", "n4"} {
		fresh.Keys[0].Clauses = append(fresh.Keys[0].Clauses, Clause{Lits: []Lit{{Name: n}}})
	}
	db.Merge(fresh)

	// Budget: header + 4 record lines (every record line here has the same
	// length by construction).
	probe, err := encodeLine(&record{T: recClause, Key: "k", At: now.Unix(), Lits: []Lit{{Name: "o1"}}})
	if err != nil {
		t.Fatal(err)
	}
	db.opts.MaxBytes = int64(len(header()) + 1 + 4*len(probe))
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.BudgetEvicted != 4 {
		t.Fatalf("BudgetEvicted = %d, want 4", st.BudgetEvicted)
	}
	if st.BytesOnDisk > db.opts.MaxBytes {
		t.Fatalf("BytesOnDisk %d over budget %d", st.BytesOnDisk, db.opts.MaxBytes)
	}

	// The survivors must be exactly the newer generation, in the model and
	// on disk.
	check := func(s *Snapshot, where string) {
		t.Helper()
		var names []string
		for _, kr := range s.Keys {
			for _, cl := range kr.Clauses {
				names = append(names, cl.Lits[0].Name)
			}
		}
		if len(names) != 4 {
			t.Fatalf("%s: %d survivors, want 4 (%v)", where, len(names), names)
		}
		for _, n := range names {
			if !strings.HasPrefix(n, "n") {
				t.Fatalf("%s: old record %q survived LRU compaction over %v", where, n, names)
			}
		}
	}
	check(db.Snapshot(), "model")
	db2 := mustOpen(t, dir, Options{Now: func() time.Time { return now.Add(time.Hour) }})
	check(db2.Snapshot(), "disk")
}

func TestFlushLeavesNoTempFile(t *testing.T) {
	dir := t.TempDir()
	populate(t, dir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("flush left temp file %s", e.Name())
		}
	}
	if len(entries) != 1 || entries[0].Name() != FileName {
		t.Fatalf("unexpected cache dir contents: %v", entries)
	}
}

func TestDecodeLineRejectsMalformedFraming(t *testing.T) {
	good, err := encodeLine(&record{T: recVerdict, Key: "k", At: 1, A: 7, B: 8, OK: true})
	if err != nil {
		t.Fatal(err)
	}
	good = bytes.TrimSuffix(good, []byte("\n"))
	if _, ok := decodeLine(good); !ok {
		t.Fatal("well-formed line rejected")
	}
	for name, line := range map[string][]byte{
		"empty":        nil,
		"no tab":       []byte("deadbeef{}"),
		"short crc":    []byte("dead\t{}"),
		"bad hex":      []byte("zzzzzzzz\t{}"),
		"crc mismatch": []byte("00000000\t" + `{"t":"clause","k":"k","at":1,"l":[{"n":"a"}]}`),
		"empty key":    mustLine(t, &record{T: recClause, At: 1, Lits: []Lit{{Name: "a"}}}),
		"empty clause": mustLine(t, &record{T: recClause, Key: "k", At: 1}),
		"nameless lit": mustLine(t, &record{T: recClause, Key: "k", At: 1, Lits: []Lit{{}}}),
	} {
		if _, ok := decodeLine(line); ok {
			t.Errorf("%s: malformed line accepted", name)
		}
	}
}

func mustLine(t *testing.T, r *record) []byte {
	t.Helper()
	line, err := encodeLine(r)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.TrimSuffix(line, []byte("\n"))
}

func TestConcurrentMergeFlushSnapshot(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, dir, Options{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			db.Merge(testSnapshot())
			db.Snapshot()
		}
	}()
	for i := 0; i < 20; i++ {
		if err := db.Flush(); err != nil {
			t.Errorf("Flush: %v", err)
		}
	}
	<-done
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
