package proofdb

import (
	"bytes"
	"os"
	"testing"
	"time"
)

// The tests in this file pin the version-compatibility contract of the v2
// cone-abduct record (recConeAbduct):
//
//   - the header version stays at 1, so a v1-era reader opens a cone-aware
//     store normally and skips the cone records through its unknown-type
//     path — record-locally, never an error (cold-start for the cone layer,
//     warm for everything it understands);
//   - the cone-aware reader loads mixed v1+v2 stores and round-trips them;
//   - malformed cone records are corruption, handled like any other torn
//     record.

// TestConeRecordsKeepV1Header is the backward-compatibility anchor: a store
// containing cone-abduct records still declares "HHPDB v1", which is the
// precondition for a v1-era reader to open it at all (a header bump would
// cold-start it wholesale instead of record-locally).
func TestConeRecordsKeepV1Header(t *testing.T) {
	dir := t.TempDir()
	populate(t, dir) // testSnapshot carries cone-abduct records
	_, raw := storeFile(t, dir)
	if !bytes.HasPrefix(raw, []byte("HHPDB v1\n")) {
		t.Fatalf("cone-aware store header = %q, want HHPDB v1", bytes.SplitN(raw, []byte("\n"), 2)[0])
	}
	if !bytes.Contains(raw, []byte(`"t":"coneabd"`)) {
		t.Fatal("store contains no cone-abduct record lines")
	}
}

// TestV1ReaderSkipsConeRecordsRecordLocally simulates the v1-era reader: to
// a reader that predates recConeAbduct, a cone record is exactly an
// unknown-type line (valid() returns false), so we rewrite every coneabd
// type tag to a tag no reader knows — same payload shape, same framing,
// recomputed CRC — and assert the load keeps every v1 record, skips each
// cone record individually, and never errors.
func TestV1ReaderSkipsConeRecordsRecordLocally(t *testing.T) {
	dir := t.TempDir()
	populate(t, dir)
	path, raw := storeFile(t, dir)

	var out []byte
	lines := bytes.Split(raw, []byte("\n"))
	rewritten := 0
	for i, line := range lines {
		if i == 0 || len(line) == 0 { // header / trailing newline
			out = append(out, line...)
			out = append(out, '\n')
			continue
		}
		r, ok := decodeLine(line)
		if ok && r.T == recConeAbduct {
			// Re-encode under a future tag: byte-for-byte what this record
			// looks like to a reader that does not know its type.
			r.T = "coneab2"
			enc, err := encodeLine(&r)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, enc...)
			rewritten++
			continue
		}
		out = append(out, line...)
		out = append(out, '\n')
	}
	out = out[:len(out)-1] // drop the duplicated final newline
	if rewritten == 0 {
		t.Fatal("no cone-abduct records found to rewrite")
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}

	db := mustOpen(t, dir, Options{})
	st := db.Stats()
	if st.HeaderRejected {
		t.Fatal("unknown record types must not reject the whole file")
	}
	if st.CorruptSkipped != int64(rewritten) {
		t.Fatalf("CorruptSkipped = %d, want %d (one per cone record)", st.CorruptSkipped, rewritten)
	}
	want := testSnapshot().Len() - rewritten
	if got := db.Snapshot().Len(); got != want {
		t.Fatalf("v1-visible records loaded = %d, want %d", got, want)
	}
	if st.ClausesLoaded != 3 || st.VerdictsLoaded != 3 || st.AbductsLoaded != 0 {
		t.Fatalf("loaded clauses=%d verdicts=%d abducts=%d, want 3/3/0",
			st.ClausesLoaded, st.VerdictsLoaded, st.AbductsLoaded)
	}
}

// TestConeAbductPermutationDedups mirrors TestClausePermutationDedups for
// the v2 record: the same (target, member set) under permuted member order
// is one record.
func TestConeAbductPermutationDedups(t *testing.T) {
	db := mustOpen(t, t.TempDir(), Options{})
	db.Merge(&Snapshot{Keys: []KeyRecord{{
		Key: "cone:k|",
		Abducts: []Abduct{
			{Target: "t", Preds: []string{"a", "b"}},
			{Target: "t", Preds: []string{"b", "a"}}, // permutation
			{Target: "u", Preds: []string{"a", "b"}}, // different target: kept
		},
	}}})
	if _, v := db.Len(); v != 2 {
		t.Fatalf("permuted abduct not deduped: %d verdict-class records, want 2", v)
	}
}

// TestMalformedConeRecordsAreCorruption: cone records that violate the
// schema (no target, an empty member ID) are skipped and counted exactly
// like torn lines, without disturbing their neighbors.
func TestMalformedConeRecordsAreCorruption(t *testing.T) {
	dir := t.TempDir()
	populate(t, dir)
	path, raw := storeFile(t, dir)
	at := time.Now().Unix()
	bad := []*record{
		{T: recConeAbduct, Key: "cone:k|", At: at},                           // no target
		{T: recConeAbduct, Key: "cone:k|", At: at, Preds: []string{"t", ""}}, // empty member
		{T: recConeAbduct, Key: "", At: at, Preds: []string{"t"}},            // no key
	}
	for _, r := range bad {
		enc, err := encodeLine(r)
		if err != nil {
			t.Fatal(err)
		}
		raw = append(raw, enc...)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	db := mustOpen(t, dir, Options{})
	if got := db.Stats().CorruptSkipped; got != int64(len(bad)) {
		t.Fatalf("CorruptSkipped = %d, want %d", got, len(bad))
	}
	if got, want := db.Snapshot().Len(), testSnapshot().Len(); got != want {
		t.Fatalf("malformed cone records perturbed the load: %d records, want %d", got, want)
	}
}

// TestMixedStoreAgingEvictsConeRecords: the staleness policy applies to v2
// records identically (they age out and empty keys are dropped).
func TestMixedStoreAgingEvictsConeRecords(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1_700_000_000, 0)
	db := mustOpen(t, dir, Options{Now: func() time.Time { return now }})
	db.Merge(testSnapshot())
	db.opts.Now = func() time.Time { return now.Add(DefaultMaxAge + time.Hour) }
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().AgeEvicted; got != int64(testSnapshot().Len()) {
		t.Fatalf("AgeEvicted = %d, want %d (cone records must age too)", got, testSnapshot().Len())
	}
	if n := db.Snapshot().Len(); n != 0 {
		t.Fatalf("%d records survived aging", n)
	}
}
