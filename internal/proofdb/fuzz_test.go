package proofdb

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// FuzzProofDBRoundTrip drives the store through its full life cycle under
// fuzzer-chosen record contents AND fuzzer-chosen file corruption:
//
//  1. a snapshot derived from the fuzz input is merged and flushed;
//  2. the store file is reopened and must reproduce the snapshot exactly;
//  3. the file is then mutilated at a fuzzer-chosen position and reopening
//     must still succeed (cold or partial — never an error, never a panic).
func FuzzProofDBRoundTrip(f *testing.F) {
	f.Add("key|env", "litA", "litB", true, uint64(1), uint64(2), "pred", uint8(3))
	f.Add("", "", "", false, uint64(0), uint64(0), "", uint8(0))
	f.Add("k\t\n\x00", "n\xff", "g\tz", true, ^uint64(0), uint64(7), "p\n1", uint8(255))

	f.Fuzz(func(t *testing.T, key, lit1, lit2 string, neg bool, a, b uint64, pred string, corrupt uint8) {
		// The payload is JSON, which cannot represent invalid UTF-8 (it is
		// replaced by U+FFFD on marshal); real cache keys and literal names
		// are valid UTF-8 by construction, so sanitize the fuzz strings the
		// same way rather than rejecting the inputs.
		key = strings.ToValidUTF8(key, "�")
		lit1 = strings.ToValidUTF8(lit1, "�")
		lit2 = strings.ToValidUTF8(lit2, "�")
		pred = strings.ToValidUTF8(pred, "�")
		if key == "" {
			key = "k"
		}
		if lit1 == "" {
			lit1 = "x"
		}
		want := &Snapshot{Keys: []KeyRecord{{
			Key:     key,
			Clauses: []Clause{{Lits: []Lit{{Name: lit1, Neg: neg}}}},
			Verdicts: []Verdict{
				{A: a, B: b, OK: true, Preds: []string{pred}},
			},
		}}}
		if lit2 != "" && lit2 != lit1 {
			want.Keys[0].Clauses = append(want.Keys[0].Clauses,
				Clause{Lits: []Lit{{Name: lit1, Neg: neg}, {Name: lit2}}})
		}
		// v2 cone-abduct records ride along under a cone-level key, so the
		// corruption phase below exercises mixed-version stores. An empty
		// pred yields the empty-abduct edge case (target only).
		abd := Abduct{Target: "t|" + pred}
		if pred != "" {
			abd.Preds = []string{pred}
		}
		want.Keys = append(want.Keys, KeyRecord{
			Key:     "cone:" + key,
			Abducts: []Abduct{abd},
		})

		dir := t.TempDir()
		now := time.Unix(1_700_000_000, 0)
		opts := Options{Now: func() time.Time { return now }}
		db, err := Open(dir, opts)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		db.Merge(want)
		// Merge must be idempotent.
		db.Merge(want)
		if err := db.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		db2, err := Open(dir, opts)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		got := db2.Snapshot()
		// Canonicalize the expectation the same way the store does: clauses
		// sorted by fingerprint, verdicts by (a, b).
		db3, err := Open(t.TempDir(), opts)
		if err != nil {
			t.Fatal(err)
		}
		db3.Merge(want)
		if canon := db3.Snapshot(); !reflect.DeepEqual(got, canon) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, canon)
		}

		// Corruption phase: damage one byte (or truncate) and reopen.
		path := filepath.Join(dir, FileName)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) > 0 {
			pos := int(corrupt) % len(raw)
			if corrupt%3 == 0 {
				raw = raw[:pos] // truncation
			} else {
				raw[pos] ^= 1 << (corrupt % 8)
			}
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		db4, err := Open(dir, opts)
		if err != nil {
			t.Fatalf("reopen of corrupted store errored (must degrade instead): %v", err)
		}
		if n, w := db4.Snapshot().Len(), db3.Snapshot().Len(); n > w {
			t.Fatalf("corrupted store loaded %d records, more than the %d written", n, w)
		}
		// And the damaged store must still be flushable.
		if err := db4.Close(); err != nil {
			t.Fatalf("Close of recovered store: %v", err)
		}
	})
}
