package proofdb

import (
	"os"
	"strings"
	"testing"

	"hhoudini/internal/faultinject"
)

// verdictDelta builds a one-record snapshot: verdict #i under key "k".
func verdictDelta(i uint64) *Snapshot {
	return &Snapshot{Keys: []KeyRecord{{
		Key:      "k",
		Verdicts: []Verdict{{A: i, B: i, OK: true, Preds: []string{"p"}}},
	}}}
}

// verdictSet reopens dir (snapshot-only reader) and returns the set of
// verdict A-values stored under key "k".
func verdictSet(t *testing.T, dir string) map[uint64]bool {
	t.Helper()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery Open must never fail: %v", err)
	}
	got := map[uint64]bool{}
	for _, kr := range db.Snapshot().Keys {
		if kr.Key != "k" {
			continue
		}
		for _, v := range kr.Verdicts {
			got[v.A] = true
		}
	}
	return got
}

// assertPrefix checks that got is exactly {1..k} for some k, and returns k.
func assertPrefix(t *testing.T, got map[uint64]bool) uint64 {
	t.Helper()
	k := uint64(len(got))
	for i := uint64(1); i <= k; i++ {
		if !got[i] {
			t.Fatalf("recovered state is not a prefix: %d records but #%d missing", len(got), i)
		}
	}
	return k
}

func TestJournalAppendSurvivesAbandon(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Journal: JournalOptions{Enable: true, Sync: SyncEveryRecord}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 25
	for i := uint64(1); i <= n; i++ {
		db.Append(verdictDelta(i))
	}
	st := db.Stats()
	if st.JournalAppends != n {
		t.Fatalf("JournalAppends = %d, want %d", st.JournalAppends, n)
	}
	if st.JournalSyncs != n {
		t.Fatalf("JournalSyncs = %d under SyncEveryRecord, want %d", st.JournalSyncs, n)
	}
	if st.Flushes != 0 {
		t.Fatalf("appends triggered %d snapshot flushes; journal writes must not rewrite the store", st.Flushes)
	}
	// Simulated kill -9: no Flush, no Close, no sync.
	db.Abandon()

	got := verdictSet(t, dir)
	if k := assertPrefix(t, got); k != n {
		t.Fatalf("recovered %d/%d records under every-record sync; loss must be zero", k, n)
	}
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := db2.Stats(); st.JournalReplayed != n {
		t.Fatalf("JournalReplayed = %d, want %d", st.JournalReplayed, n)
	}
}

func TestJournalTornTailTruncatedRecordLocally(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Journal: JournalOptions{Enable: true, Sync: SyncEveryRecord}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := uint64(1); i <= n; i++ {
		db.Append(verdictDelta(i))
	}
	db.Abandon()

	segs := listSegments(dir)
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %d", len(segs))
	}
	fi, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record mid-line.
	if err := os.Truncate(segs[0], fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery Open must never fail: %v", err)
	}
	st := db2.Stats()
	if st.JournalTornTails == 0 {
		t.Fatal("torn tail not counted")
	}
	if st.JournalReplayed != n-1 {
		t.Fatalf("JournalReplayed = %d, want %d", st.JournalReplayed, n-1)
	}
	got := verdictSet(t, dir)
	if k := assertPrefix(t, got); k != n-1 {
		t.Fatalf("recovered %d records after tearing the last; want exactly %d", k, n-1)
	}
	// Recovery physically truncated the tail back to the last good record,
	// so the next Open sees a clean segment: no new torn tail.
	db3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := db3.Stats(); st.JournalTornTails != 0 {
		t.Fatalf("tail not physically truncated: second recovery counted %d torn tails", st.JournalTornTails)
	}
}

func TestJournalReorderedLinesReplayPrefix(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Journal: JournalOptions{Enable: true, Sync: SyncEveryRecord}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	for i := uint64(1); i <= n; i++ {
		db.Append(verdictDelta(i))
	}
	db.Abandon()

	seg := listSegments(dir)[0]
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	// lines[0] is the header; swap records 4 and 5 (indices 4 and 5).
	lines[4], lines[5] = lines[5], lines[4]
	if err := os.WriteFile(seg, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	// Replay must stop at the first out-of-sequence record: prefix {1..3}.
	got := verdictSet(t, dir)
	if k := assertPrefix(t, got); k != 3 {
		t.Fatalf("recovered %d records after swapping #4/#5; want the prefix 1..3", k)
	}
}

func TestJournalRotationAndCrossSegmentReplay(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Journal: JournalOptions{
		Enable: true, Sync: SyncEveryRecord, SegmentBytes: 256,
	}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := uint64(1); i <= n; i++ {
		db.Append(verdictDelta(i))
	}
	st := db.Stats()
	if st.JournalRotations == 0 {
		t.Fatal("no rotations despite a 256-byte segment threshold")
	}
	if st.JournalSegments < 2 {
		t.Fatalf("JournalSegments = %d, want >= 2", st.JournalSegments)
	}
	db.Abandon()

	if segs := listSegments(dir); len(segs) < 2 {
		t.Fatalf("want >= 2 segment files on disk, got %d", len(segs))
	}
	got := verdictSet(t, dir)
	if k := assertPrefix(t, got); k != n {
		t.Fatalf("cross-segment replay recovered %d/%d records", k, n)
	}
}

func TestJournalCompactionRidesFlushAndCloseIsClean(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Journal: JournalOptions{Enable: true}})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 5; i++ {
		db.Append(verdictDelta(i))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.JournalCompactions == 0 {
		t.Fatal("flush did not compact the journal")
	}
	// Post-flush: the snapshot holds everything; exactly one fresh tail.
	if segs := listSegments(dir); len(segs) != 1 {
		t.Fatalf("want 1 fresh tail segment after flush, got %d", len(segs))
	}
	for i := uint64(6); i <= 8; i++ {
		db.Append(verdictDelta(i))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Clean close: snapshot-only layout (plus nothing else).
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != FileName {
			t.Fatalf("unexpected file after clean Close: %s", e.Name())
		}
	}
	got := verdictSet(t, dir)
	if k := assertPrefix(t, got); k != 8 {
		t.Fatalf("recovered %d/8 records after flush+append+close", k)
	}
}

func TestJournalPersistIsCheapDurabilityPoint(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Journal: JournalOptions{Enable: true}}) // SyncOnFlush
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 12; i++ {
		db.Append(verdictDelta(i))
	}
	if err := db.Persist(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Flushes != 0 {
		t.Fatalf("Persist rewrote the snapshot (%d flushes); want journal sync only", st.Flushes)
	}
	if st.JournalSyncs == 0 {
		t.Fatal("Persist did not sync the journal")
	}
	db.Abandon()
	got := verdictSet(t, dir)
	if k := assertPrefix(t, got); k != 12 {
		t.Fatalf("recovered %d/12 records committed by Persist", k)
	}
}

func TestJournalPersistEscalatesWhenOversized(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Journal: JournalOptions{
		Enable: true, SegmentBytes: 128, CompactSegments: 2,
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 30; i++ {
		db.Append(verdictDelta(i))
	}
	if err := db.Persist(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Flushes == 0 {
		t.Fatal("Persist did not escalate to a compacting flush past the segment bound")
	}
	if st.JournalCompactions == 0 {
		t.Fatal("escalated Persist did not compact")
	}
}

// TestChaosJournalDegradesToSnapshotOnly joins the chaos tier: persistent
// injected append failures must flip the store to snapshot-only mode
// without ever surfacing an error to the caller, and the records must
// still reach disk via the next Flush.
func TestChaosJournalDegradesToSnapshotOnly(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	db, err := Open(dir, Options{Journal: JournalOptions{Enable: true, Sync: SyncEveryRecord}})
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.JournalAppend, faultinject.Spec{Count: -1})
	for i := uint64(1); i <= 10; i++ {
		db.Append(verdictDelta(i)) // must not panic, must not error
	}
	st := db.Stats()
	if !st.JournalDegraded {
		t.Fatalf("journal not degraded after persistent append failures: %+v", st)
	}
	if db.JournalActive() {
		t.Fatal("JournalActive still true after degradation")
	}
	faultinject.Reset()
	// Snapshot-only mode still persists everything through Flush.
	if err := db.Persist(); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Flushes == 0 {
		t.Fatal("degraded Persist did not fall back to a snapshot flush")
	}
	got := verdictSet(t, dir)
	if k := assertPrefix(t, got); k != 10 {
		t.Fatalf("recovered %d/10 records in degraded mode", k)
	}
}

// TestChaosJournalSyncFailureFallsBack: a failed Persist-time fsync must
// escalate to the snapshot path, so the durability point still holds.
func TestChaosJournalSyncFailureFallsBack(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	db, err := Open(dir, Options{Journal: JournalOptions{Enable: true}})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 4; i++ {
		db.Append(verdictDelta(i))
	}
	faultinject.Arm(faultinject.JournalSync, faultinject.Spec{})
	if err := db.Persist(); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Flushes == 0 {
		t.Fatal("Persist with a failed journal sync did not fall back to Flush")
	}
	db.Abandon()
	got := verdictSet(t, dir)
	if k := assertPrefix(t, got); k != 4 {
		t.Fatalf("recovered %d/4 records after sync-failure fallback", k)
	}
}

// TestJournalReplayIntoJournalingStore: a journaling store that recovers
// segments continues appending after the replayed tail without colliding
// sequence numbers.
func TestJournalReplayIntoJournalingStore(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Journal: JournalOptions{Enable: true, Sync: SyncEveryRecord}})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 6; i++ {
		db.Append(verdictDelta(i))
	}
	db.Abandon()

	db2, err := Open(dir, Options{Journal: JournalOptions{Enable: true, Sync: SyncEveryRecord}})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(7); i <= 12; i++ {
		db2.Append(verdictDelta(i))
	}
	db2.Abandon()

	got := verdictSet(t, dir)
	if k := assertPrefix(t, got); k != 12 {
		t.Fatalf("recovered %d/12 records across two journaling generations", k)
	}
}

func TestJournalDisabledReaderStillRecovers(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Journal: JournalOptions{Enable: true, Sync: SyncEveryRecord}})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 5; i++ {
		db.Append(verdictDelta(i))
	}
	db.Abandon()

	// A journaling-disabled reader replays the segments, and its Flush
	// folds them into the snapshot and compacts them away.
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.Snapshot().Len(); got != 5 {
		t.Fatalf("disabled reader replayed %d records, want 5", got)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	if segs := listSegments(dir); len(segs) != 0 {
		t.Fatalf("disabled reader's Close left %d segments", len(segs))
	}
	got := verdictSet(t, dir)
	if k := assertPrefix(t, got); k != 5 {
		t.Fatalf("post-compaction state lost records: %d/5", k)
	}
}

func TestJournalHeaderMismatchDropsSegment(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Journal: JournalOptions{Enable: true, Sync: SyncEveryRecord}})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		db.Append(verdictDelta(i))
	}
	db.Abandon()

	seg := listSegments(dir)[0]
	raw, _ := os.ReadFile(seg)
	mangled := append([]byte("HHWAL v999\n"), raw[len(journalHeader())+1:]...)
	if err := os.WriteFile(seg, mangled, 0o644); err != nil {
		t.Fatal(err)
	}

	got := verdictSet(t, dir)
	if len(got) != 0 {
		t.Fatalf("version-mismatched segment replayed %d records; want 0 (cold)", len(got))
	}
	// The unusable segment is removed so it cannot shadow future appends.
	if segs := listSegments(dir); len(segs) != 0 {
		t.Fatalf("mismatched segment not removed: %d left", len(segs))
	}
}
