// On-disk format of the persistent proof store.
//
// A store is a single file (proof.db) in the cache directory:
//
//	line 0:  "HHPDB v<version>"            — magic + format version
//	line N:  "<crc32-hex8>\t<json-record>" — one record per line
//
// Each record line carries the IEEE CRC32 of its JSON payload in fixed
// 8-hex-digit form. The hybrid shape is deliberate: the framing (newline
// per record, checksum prefix) is binary-simple so partial writes and bit
// flips are detected line-locally, while the payload is JSON so the store
// is greppable, diffable, and forward-extensible (unknown record types are
// skipped, not fatal).
//
// Loads are tolerant by construction: a record that is truncated, fails
// its CRC, fails to parse, or is semantically invalid is skipped and
// counted — never an error, never a panic. Only the header is strict: a
// missing or mismatched "HHPDB v1" header rejects the whole file (the
// format owner changed; replaying records under the wrong schema could be
// unsound), which degrades to a cold start.
package proofdb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"strconv"
)

const (
	magic = "HHPDB"
	// Version is the on-disk format version. Bump it on any change to the
	// record schema or its semantics; loaders reject mismatched versions
	// wholesale (cold start) rather than guessing.
	Version = 1

	// journalMagic heads every write-ahead journal segment. The journal
	// shares the snapshot's record schema and version — a segment is the
	// same records, framed with a sequence number — so the version suffix
	// tracks Version.
	journalMagic = "HHWAL"
)

// header is the exact first line of a store file (without the newline).
func header() string { return fmt.Sprintf("%s v%d", magic, Version) }

// journalHeader is the exact first line of a journal segment (without the
// newline).
func journalHeader() string { return fmt.Sprintf("%s v%d", journalMagic, Version) }

// Record type tags.
//
// recConeAbduct is the v2 cone record: a proven abduct stored under a
// cone-level cache key (Preds[0] is the target predicate ID, Preds[1:] the
// abduct members). The header version deliberately stays at 1 — v1-era
// readers skip the unknown type record-locally (valid() returns false for
// types they do not know), so a store written by a cone-aware engine still
// warm-starts an older one from its clause and verdict records, and vice
// versa. Version is only for changes that alter the meaning of *existing*
// record types.
const (
	recClause     = "clause"
	recVerdict    = "verdict"
	recConeAbduct = "coneabd"
)

// Lit is one literal of a stored clause, in canonical named form (the
// portable representation of circuit.NamedLit).
type Lit struct {
	Name string `json:"n"`
	Neg  bool   `json:"g,omitempty"`
}

// record is the wire form of one store line. Clause and verdict records
// share the struct; omitempty keeps each line minimal (all omitted fields
// decode to their zero value, which is exactly what was encoded).
type record struct {
	T   string `json:"t"`  // recClause | recVerdict
	Key string `json:"k"`  // cache key: circuit fingerprint | EnvKey
	At  int64  `json:"at"` // unix seconds of last use (staleness policy)

	// Clause fields.
	Lits []Lit `json:"l,omitempty"`

	// Verdict fields. A/B are the two independent 64-bit hashes of the
	// abduction-query identity; OK false means "no abduct exists".
	// Cone-abduct records reuse Preds: Preds[0] is the target predicate ID,
	// Preds[1:] are the abduct member IDs (possibly none — an empty abduct
	// means the target is inductive relative to nothing but itself).
	A     uint64   `json:"a,omitempty"`
	B     uint64   `json:"b,omitempty"`
	OK    bool     `json:"ok,omitempty"`
	Preds []string `json:"p,omitempty"`
}

// valid reports whether a decoded record is semantically well-formed.
func (r *record) valid() bool {
	if r.Key == "" {
		return false
	}
	switch r.T {
	case recClause:
		if len(r.Lits) == 0 {
			return false
		}
		for _, l := range r.Lits {
			if l.Name == "" {
				return false
			}
		}
		return true
	case recVerdict:
		return true
	case recConeAbduct:
		if len(r.Preds) == 0 {
			return false
		}
		for _, p := range r.Preds {
			if p == "" {
				return false
			}
		}
		return true
	default:
		return false // unknown type: skip (forward compatibility)
	}
}

// encodeLine renders one record as a checksummed store line (with trailing
// newline).
func encodeLine(r *record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(payload)+10)
	line = fmt.Appendf(line, "%08x\t", crc32.ChecksumIEEE(payload))
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// encodeJournalLine renders one record as a sequence-numbered journal line
// (with trailing newline):
//
//	"<crc32-hex8>\t<seq-hex16>\t<json-record>\n"
//
// The CRC covers the sequence number and the payload together, so a line
// whose body was transplanted from another position (or another segment)
// fails its checksum instead of replaying out of order.
func encodeJournalLine(seq uint64, r *record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	body := make([]byte, 0, len(payload)+17)
	body = fmt.Appendf(body, "%016x\t", seq)
	body = append(body, payload...)
	line := make([]byte, 0, len(body)+10)
	line = fmt.Appendf(line, "%08x\t", crc32.ChecksumIEEE(body))
	line = append(line, body...)
	line = append(line, '\n')
	return line, nil
}

// decodeJournalLine parses one journal line (without trailing newline). Any
// malformed line — bad framing, CRC mismatch, JSON error, semantic
// invalidity — returns ok=false; replay treats every such line as the torn
// tail of its segment.
func decodeJournalLine(line []byte) (uint64, record, bool) {
	var r record
	tab := bytes.IndexByte(line, '\t')
	if tab != 8 {
		return 0, r, false
	}
	want, err := strconv.ParseUint(string(line[:tab]), 16, 32)
	if err != nil {
		return 0, r, false
	}
	body := line[tab+1:]
	if crc32.ChecksumIEEE(body) != uint32(want) {
		return 0, r, false
	}
	tab2 := bytes.IndexByte(body, '\t')
	if tab2 != 16 {
		return 0, r, false
	}
	seq, err := strconv.ParseUint(string(body[:tab2]), 16, 64)
	if err != nil {
		return 0, r, false
	}
	if err := json.Unmarshal(body[tab2+1:], &r); err != nil {
		return 0, r, false
	}
	if !r.valid() {
		return 0, r, false
	}
	return seq, r, true
}

// decodeLine parses one store line (without trailing newline). It returns
// ok=false for any malformed line — bad framing, CRC mismatch, JSON error,
// or semantic invalidity — without distinguishing the failure mode: the
// caller treats every one as "skip this record".
func decodeLine(line []byte) (record, bool) {
	var r record
	tab := bytes.IndexByte(line, '\t')
	if tab != 8 {
		return r, false
	}
	want, err := strconv.ParseUint(string(line[:tab]), 16, 32)
	if err != nil {
		return r, false
	}
	payload := line[tab+1:]
	if crc32.ChecksumIEEE(payload) != uint32(want) {
		return r, false
	}
	if err := json.Unmarshal(payload, &r); err != nil {
		return r, false
	}
	if !r.valid() {
		return r, false
	}
	return r, true
}
