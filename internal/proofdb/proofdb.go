// Package proofdb is the persistent proof store: a versioned on-disk cache
// of the facts the verification engine has already proved — base-system
// learnt clauses (in canonical named form) and whole abduction verdicts —
// keyed by system identity (circuit fingerprint + environment key).
//
// H-Houdini's relative-induction checks are pure functions of the system
// identity (§3.2 of the paper), which is what makes them memoizable at all;
// this package extends the in-memory cross-run VerifyCache one level
// further, across *process* invocations: a CLI run, an experiment sweep and
// a CI job over the same design restore each other's warm starts instead of
// re-deriving every clause cold.
//
// Durability contract:
//   - writes are crash-safe: the whole store is rewritten to a temp file,
//     fsynced, and atomically renamed over the old one (a crash leaves
//     either the old store or the new one, never a torn file);
//   - loads never fail on data corruption: torn/flipped/truncated records
//     are skipped record-locally and counted, a mismatched format version
//     rejects the file wholesale — both degrade to a cold start;
//   - staleness is bounded two ways: records unused for longer than MaxAge
//     are evicted, and the file is LRU-compacted to a byte budget on every
//     flush (least-recently-used records are dropped first).
//
// The package is deliberately self-contained (no dependency on the solver
// or learner packages) so the persistence layer can be reasoned about — and
// fuzzed — in isolation.
package proofdb

import (
	"bufio"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"hhoudini/internal/crashsim"
	"hhoudini/internal/faultinject"
)

// Defaults for Options.
const (
	// FileName is the store file inside the cache directory.
	FileName = "proof.db"
	// DefaultDir is the conventional cache directory name tools use when
	// persistence is requested without an explicit path. It is listed in
	// the repository .gitignore.
	DefaultDir = ".hhcache"
	// DefaultMaxAge evicts records not used for two weeks: long enough to
	// span CI cadences, short enough that abandoned designs age out.
	DefaultMaxAge = 14 * 24 * time.Hour
	// DefaultMaxBytes bounds the on-disk footprint of one store.
	DefaultMaxBytes = 64 << 20
)

// Options tune a store.
type Options struct {
	// MaxAge is the staleness bound: records whose last use is older are
	// evicted at load and flush time. 0 means DefaultMaxAge; negative
	// disables age eviction.
	MaxAge time.Duration
	// MaxBytes is the on-disk byte budget enforced by LRU compaction at
	// flush time. 0 means DefaultMaxBytes; negative disables the budget.
	MaxBytes int64
	// Now overrides the clock (tests). Nil means time.Now.
	Now func() time.Time
	// Journal configures the write-ahead journal (journal.go). Disabled by
	// default: the bare store keeps its single-file snapshot layout, and
	// recovery still replays any segments an earlier journaling writer
	// left behind.
	Journal JournalOptions
}

func (o *Options) maxAge() time.Duration {
	if o.MaxAge == 0 {
		return DefaultMaxAge
	}
	return o.MaxAge
}

func (o *Options) maxBytes() int64 {
	if o.MaxBytes == 0 {
		return DefaultMaxBytes
	}
	return o.MaxBytes
}

func (o *Options) now() time.Time {
	if o.Now != nil {
		return o.Now()
	}
	return time.Now()
}

// Stats are cumulative store counters (snapshot under the DB lock).
type Stats struct {
	ClausesLoaded  int64 // clause records restored from disk at Open
	VerdictsLoaded int64 // verdict records restored from disk at Open
	AbductsLoaded  int64 // cone-abduct records restored from disk at Open
	CorruptSkipped int64 // records dropped for framing/CRC/JSON/validity
	ExpiredSkipped int64 // records dropped at load for exceeding MaxAge
	HeaderRejected bool  // whole file rejected: missing/mismatched version
	Flushes        int64 // successful atomic rewrites
	AgeEvicted     int64 // records evicted at flush for exceeding MaxAge
	BudgetEvicted  int64 // records LRU-evicted at flush for the byte budget
	BytesOnDisk    int64 // size of the store after the last flush (or load)

	// Write-ahead journal counters (journal.go).
	JournalAppends     int64 // records appended to the journal
	JournalSyncs       int64 // journal fsyncs (durability points)
	JournalRotations   int64 // size-triggered segment rotations
	JournalCompactions int64 // segment truncations riding a snapshot rewrite
	JournalReplayed    int64 // records replayed from segments at Open
	JournalTornTails   int64 // torn tails truncated record-locally at Open
	JournalSegments    int64 // live segment files after the last operation
	JournalDegraded    bool  // journal abandoned after persistent I/O errors
}

// Snapshot is the portable in-memory image of a store (also the exchange
// type with the verification cache: the cache exports/imports Snapshots
// without knowing anything about files).
type Snapshot struct {
	Keys []KeyRecord
}

// KeyRecord holds every persisted fact for one system identity (a
// whole-circuit key, or — for Abducts especially — a cone-level key).
type KeyRecord struct {
	Key      string
	Clauses  []Clause
	Verdicts []Verdict
	Abducts  []Abduct
}

// Clause is one base-system learnt clause over canonical variable names.
type Clause struct {
	Lits []Lit
}

// Verdict is one memoized abduction verdict. A/B are the two independent
// 64-bit hashes identifying the query; OK false records "no abduct exists";
// Preds are the abduct member predicate IDs when OK.
type Verdict struct {
	A, B  uint64
	OK    bool
	Preds []string
}

// Abduct is one proven abduct for a target predicate — the v2 cone record.
// Unlike a Verdict it names the target directly instead of hashing the full
// query, because it answers every query whose candidate set contains Preds.
type Abduct struct {
	Target string
	Preds  []string
}

// Len returns the total number of records in the snapshot.
func (s *Snapshot) Len() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, kr := range s.Keys {
		n += len(kr.Clauses) + len(kr.Verdicts) + len(kr.Abducts)
	}
	return n
}

// DB is an open store: an in-memory model of the on-disk records plus the
// machinery to merge, evict and atomically persist them. All methods are
// safe for concurrent use.
type DB struct {
	mu    sync.Mutex
	path  string // the store file (dir/FileName)
	opts  Options
	keys  map[string]*keyState
	stats Stats

	// Write-ahead journal state (journal.go). journalNextSeq is the first
	// unused sequence number discovered by Open-time replay; jn is nil when
	// journaling is disabled.
	jn             *journal
	journalNextSeq uint64
}

type keyState struct {
	clauses  map[string]*clauseRec // canonical clause fingerprint → record
	verdicts map[verdictID]*verdictRec
	abducts  map[string]*abductDBRec // abduct signature → record
}

type verdictID struct{ a, b uint64 }

type clauseRec struct {
	lits []Lit
	at   int64 // unix seconds of last use
}

type verdictRec struct {
	ok    bool
	preds []string
	at    int64
}

type abductDBRec struct {
	target string
	preds  []string
	at     int64
}

// abductSignature canonicalizes one abduct's identity: the target plus the
// member set (order-independent), so permutations dedup.
func abductSignature(target string, preds []string) string {
	sorted := append([]string(nil), preds...)
	sort.Strings(sorted)
	b := append([]byte(target), 0)
	for _, p := range sorted {
		b = append(b, p...)
		b = append(b, 0)
	}
	return string(b)
}

// Open opens (creating if needed) the store in dir and loads its current
// contents. Data-level corruption is never an error: torn or bit-flipped
// records are skipped, a version-mismatched file is rejected wholesale, and
// both are reported through Stats — the returned DB simply starts colder.
// Errors are reserved for environmental failures (unreadable directory).
func Open(dir string, opts Options) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	db := &DB{
		path: filepath.Join(dir, FileName),
		opts: opts,
		keys: make(map[string]*keyState),
	}
	if err := db.load(); err != nil {
		return nil, err
	}
	// Recovery: replay whatever journal segments the previous process left,
	// whether or not this store journals its own writes — the segments are
	// committed deltas the snapshot does not yet hold. Never an error.
	db.replayJournal()
	if opts.Journal.Enable {
		db.openJournal()
	}
	return db, nil
}

// Path returns the store file path.
func (db *DB) Path() string { return db.path }

// Stats returns a point-in-time snapshot of the store counters.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.stats
}

// Len returns the number of (clause, verdict) records in the model; the
// verdict count includes cone-abduct records (they are verdict-class memos).
func (db *DB) Len() (clauses, verdicts int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, ks := range db.keys {
		clauses += len(ks.clauses)
		verdicts += len(ks.verdicts) + len(ks.abducts)
	}
	return
}

// load reads the store file into the model. Only I/O errors propagate.
func (db *DB) load() error {
	f, err := os.Open(db.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	//hhlint:ignore flusherr read-only file: a Close error after reading cannot lose data
	defer f.Close()
	if fi, err := f.Stat(); err == nil {
		db.stats.BytesOnDisk = fi.Size()
	}

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	if !sc.Scan() || sc.Text() != header() {
		// Missing, truncated-to-nothing, or version-mismatched header:
		// reject the whole file. It will be rewritten at the next flush.
		db.stats.HeaderRejected = true
		return nil
	}

	cutoff := int64(0)
	if age := db.opts.maxAge(); age > 0 {
		cutoff = db.opts.now().Add(-age).Unix()
	}
	for sc.Scan() {
		r, ok := decodeLine(sc.Bytes())
		if !ok {
			db.stats.CorruptSkipped++
			continue
		}
		if cutoff > 0 && r.At < cutoff {
			db.stats.ExpiredSkipped++
			continue
		}
		ks := db.keyLocked(r.Key)
		switch r.T {
		case recClause:
			fp := clauseFingerprint(r.Lits)
			if prev, dup := ks.clauses[fp]; !dup || r.At > prev.at {
				ks.clauses[fp] = &clauseRec{lits: r.Lits, at: r.At}
			}
			db.stats.ClausesLoaded++
		case recVerdict:
			id := verdictID{r.A, r.B}
			if prev, dup := ks.verdicts[id]; !dup || r.At > prev.at {
				ks.verdicts[id] = &verdictRec{ok: r.OK, preds: r.Preds, at: r.At}
			}
			db.stats.VerdictsLoaded++
		case recConeAbduct:
			target, preds := r.Preds[0], r.Preds[1:]
			if len(preds) == 0 {
				preds = nil // canonical empty form (Merge stores nil too)
			}
			sig := abductSignature(target, preds)
			if prev, dup := ks.abducts[sig]; !dup || r.At > prev.at {
				ks.abducts[sig] = &abductDBRec{target: target, preds: preds, at: r.At}
			}
			db.stats.AbductsLoaded++
		}
	}
	if err := sc.Err(); err != nil {
		// A scanner error (e.g. an over-long torn line) loses the tail of
		// the file, not the records already decoded. Treat it as corruption.
		db.stats.CorruptSkipped++
	}
	return nil
}

func (db *DB) keyLocked(key string) *keyState {
	ks, ok := db.keys[key]
	if !ok {
		ks = &keyState{
			clauses:  make(map[string]*clauseRec),
			verdicts: make(map[verdictID]*verdictRec),
			abducts:  make(map[string]*abductDBRec),
		}
		db.keys[key] = ks
	}
	return ks
}

// clauseFingerprint canonicalizes a clause (sorted by name, then sign) so
// permutations dedup — the same canonical form the verification cache uses.
func clauseFingerprint(lits []Lit) string {
	sorted := append([]Lit(nil), lits...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Name != sorted[j].Name {
			return sorted[i].Name < sorted[j].Name
		}
		return !sorted[i].Neg && sorted[j].Neg
	})
	var b []byte
	for _, l := range sorted {
		if l.Neg {
			b = append(b, '-')
		}
		b = append(b, l.Name...)
		b = append(b, 0)
	}
	return string(b)
}

// Merge folds a snapshot into the model, refreshing the last-use time of
// every record it carries: a record present in a live cache snapshot was
// (re)derived or retained this run, which is exactly the LRU signal.
func (db *DB) Merge(s *Snapshot) {
	if s == nil {
		return
	}
	// Read the clock before taking db.mu (user-supplied callback; see Flush).
	now := db.opts.now().Unix()
	db.mu.Lock()
	defer db.mu.Unlock()
	db.mergeLocked(s, now)
}

// Append is the write-ahead delta path: it folds s into the model exactly
// like Merge and additionally journals every record it carries, so the
// delta survives a crash without waiting for the next snapshot rewrite.
// It never returns an error — journal I/O failures feed the degradation
// ladder (Stats.JournalDegraded) and the caller's data stays safe in the
// model for the next Flush.
func (db *DB) Append(s *Snapshot) {
	if s == nil || s.Len() == 0 {
		return
	}
	now := db.opts.now()
	db.mu.Lock()
	defer db.mu.Unlock()
	db.mergeLocked(s, now.Unix())
	if db.jn == nil || db.jn.degraded {
		return
	}
	var recs []*record
	for i := range s.Keys {
		kr := &s.Keys[i]
		for _, cl := range kr.Clauses {
			if len(cl.Lits) == 0 {
				continue
			}
			recs = append(recs, &record{T: recClause, Key: kr.Key, At: now.Unix(), Lits: cl.Lits})
		}
		for _, v := range kr.Verdicts {
			recs = append(recs, &record{
				T: recVerdict, Key: kr.Key, At: now.Unix(),
				A: v.A, B: v.B, OK: v.OK, Preds: v.Preds,
			})
		}
		for _, a := range kr.Abducts {
			if a.Target == "" {
				continue
			}
			recs = append(recs, &record{
				T: recConeAbduct, Key: kr.Key, At: now.Unix(),
				Preds: append([]string{a.Target}, a.Preds...),
			})
		}
	}
	db.appendLocked(recs, now)
}

func (db *DB) mergeLocked(s *Snapshot, now int64) {
	for _, kr := range s.Keys {
		ks := db.keyLocked(kr.Key)
		for _, cl := range kr.Clauses {
			if len(cl.Lits) == 0 {
				continue
			}
			fp := clauseFingerprint(cl.Lits)
			if rec, ok := ks.clauses[fp]; ok {
				rec.at = now
			} else {
				ks.clauses[fp] = &clauseRec{lits: cl.Lits, at: now}
			}
		}
		for _, v := range kr.Verdicts {
			id := verdictID{v.A, v.B}
			if rec, ok := ks.verdicts[id]; ok {
				rec.at = now
			} else {
				ks.verdicts[id] = &verdictRec{ok: v.OK, preds: v.Preds, at: now}
			}
		}
		for _, a := range kr.Abducts {
			if a.Target == "" {
				continue
			}
			preds := a.Preds
			if len(preds) == 0 {
				preds = nil
			}
			sig := abductSignature(a.Target, preds)
			if rec, ok := ks.abducts[sig]; ok {
				rec.at = now
			} else {
				ks.abducts[sig] = &abductDBRec{target: a.Target, preds: preds, at: now}
			}
		}
	}
}

// Snapshot exports the current model in deterministic (key-sorted) order.
func (db *DB) Snapshot() *Snapshot {
	db.mu.Lock()
	defer db.mu.Unlock()
	keys := make([]string, 0, len(db.keys))
	for k := range db.keys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := &Snapshot{}
	for _, k := range keys {
		ks := db.keys[k]
		kr := KeyRecord{Key: k}
		fps := make([]string, 0, len(ks.clauses))
		for fp := range ks.clauses {
			fps = append(fps, fp)
		}
		sort.Strings(fps)
		for _, fp := range fps {
			kr.Clauses = append(kr.Clauses, Clause{Lits: ks.clauses[fp].lits})
		}
		ids := make([]verdictID, 0, len(ks.verdicts))
		for id := range ks.verdicts {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			if ids[i].a != ids[j].a {
				return ids[i].a < ids[j].a
			}
			return ids[i].b < ids[j].b
		})
		for _, id := range ids {
			rec := ks.verdicts[id]
			kr.Verdicts = append(kr.Verdicts, Verdict{A: id.a, B: id.b, OK: rec.ok, Preds: rec.preds})
		}
		sigs := make([]string, 0, len(ks.abducts))
		for sig := range ks.abducts {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			rec := ks.abducts[sig]
			kr.Abducts = append(kr.Abducts, Abduct{Target: rec.target, Preds: rec.preds})
		}
		if len(kr.Clauses)+len(kr.Verdicts)+len(kr.Abducts) > 0 {
			out.Keys = append(out.Keys, kr)
		}
	}
	return out
}

// flushLine pairs an encoded store line with its LRU key for compaction.
type flushLine struct {
	at   int64
	data []byte
	drop func() // removes the record from the model (budget eviction)
}

// Flush atomically rewrites the store file from the model, applying the
// staleness policy: age-expired records are evicted first, then the
// least-recently-used records beyond the byte budget. The write is
// crash-safe — temp file, fsync, rename, directory fsync.
func (db *DB) Flush() error {
	// Read the clock before taking db.mu: Options.Now is a user-supplied
	// callback and must not run under the store lock (lockscope invariant —
	// a re-entrant clock could deadlock against Flush).
	now := db.opts.now()
	db.mu.Lock()
	defer db.mu.Unlock()
	db.evictExpiredLocked(now)
	lines, err := db.encodeLocked()
	if err != nil {
		return err
	}
	// LRU compaction: newest-used first; everything past the byte budget
	// is dropped from both the file and the model.
	sort.SliceStable(lines, func(i, j int) bool { return lines[i].at > lines[j].at })
	hdr := header() + "\n"
	total := int64(len(hdr))
	budget := db.opts.maxBytes()
	kept := lines[:0]
	for _, ln := range lines {
		if budget > 0 && total+int64(len(ln.data)) > budget {
			//hhlint:ignore lockscope drop closures are module-internal (built in encodeLocked) and only touch db.keys, which db.mu — held here — guards
			ln.drop()
			db.stats.BudgetEvicted++
			continue
		}
		total += int64(len(ln.data))
		kept = append(kept, ln)
	}

	buf := make([]byte, 0, total)
	buf = append(buf, hdr...)
	for _, ln := range kept {
		buf = append(buf, ln.data...)
	}
	if err := atomicWrite(db.path, buf); err != nil {
		return err
	}
	db.stats.Flushes++
	db.stats.BytesOnDisk = int64(len(buf))
	// The snapshot now holds everything the journal held: compaction rides
	// the rewrite (journal.go), removing applied segments and starting a
	// fresh tail when journaling is active.
	db.compactLocked()
	return nil
}

// Persist is the cheap durability point: when the journal is active and
// healthy, one fsync of the tail segment commits everything appended so
// far — cost proportional to new work, not store size. It escalates to a
// full (compacting) snapshot Flush when the journal is disabled, degraded,
// just failed to sync, or has accumulated enough segments to be worth
// folding in.
func (db *DB) Persist() error {
	now := db.opts.now()
	db.mu.Lock()
	jn := db.jn
	if jn == nil || jn.degraded {
		db.mu.Unlock()
		return db.Flush()
	}
	err := db.syncLocked(now)
	oversized := jn.segments > jn.opts.compactSegments()
	db.mu.Unlock()
	if err != nil || oversized {
		return db.Flush()
	}
	return nil
}

// JournalActive reports whether the write-ahead journal is enabled and has
// not degraded to snapshot-only mode.
func (db *DB) JournalActive() bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.jn != nil && !db.jn.degraded
}

// Abandon drops the store without flushing or syncing anything — the
// simulated `kill -9` for in-process crash tests. On-disk state is left
// exactly as the last completed write left it; the DB must not be used
// afterwards.
func (db *DB) Abandon() {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.jn != nil && db.jn.f != nil {
		//hhlint:ignore flusherr simulated process death: deliberately no sync, and a Close error on the abandoned handle is part of the simulation
		db.jn.f.Close()
		db.jn.f = nil
		db.jn.degraded = true
	}
}

// Close flushes the store (which compacts the journal) and closes the
// journal tail. It is the final durability point; a clean Close leaves the
// single-file snapshot layout behind.
func (db *DB) Close() error {
	err := db.Flush()
	db.mu.Lock()
	if cerr := db.closeJournalLocked(); err == nil {
		err = cerr
	}
	db.mu.Unlock()
	return err
}

// evictExpiredLocked drops records older than MaxAge from the model. The
// caller supplies the current time: reading the (user-overridable) clock
// under db.mu would run a callback inside the lock.
func (db *DB) evictExpiredLocked(now time.Time) {
	age := db.opts.maxAge()
	if age <= 0 {
		return
	}
	cutoff := now.Add(-age).Unix()
	for key, ks := range db.keys {
		for fp, rec := range ks.clauses {
			if rec.at < cutoff {
				delete(ks.clauses, fp)
				db.stats.AgeEvicted++
			}
		}
		for id, rec := range ks.verdicts {
			if rec.at < cutoff {
				delete(ks.verdicts, id)
				db.stats.AgeEvicted++
			}
		}
		for sig, rec := range ks.abducts {
			if rec.at < cutoff {
				delete(ks.abducts, sig)
				db.stats.AgeEvicted++
			}
		}
		if len(ks.clauses)+len(ks.verdicts)+len(ks.abducts) == 0 {
			delete(db.keys, key)
		}
	}
}

// encodeLocked renders every model record as a store line (deterministic
// order before the LRU sort: sorted keys, then clause/verdict identity).
func (db *DB) encodeLocked() ([]flushLine, error) {
	keys := make([]string, 0, len(db.keys))
	for k := range db.keys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var lines []flushLine
	for _, key := range keys {
		key := key
		ks := db.keys[key]
		fps := make([]string, 0, len(ks.clauses))
		for fp := range ks.clauses {
			fps = append(fps, fp)
		}
		sort.Strings(fps)
		for _, fp := range fps {
			fp, rec := fp, ks.clauses[fp]
			data, err := encodeLine(&record{T: recClause, Key: key, At: rec.at, Lits: rec.lits})
			if err != nil {
				return nil, err
			}
			lines = append(lines, flushLine{at: rec.at, data: data,
				drop: func() { delete(ks.clauses, fp) }})
		}
		ids := make([]verdictID, 0, len(ks.verdicts))
		for id := range ks.verdicts {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			if ids[i].a != ids[j].a {
				return ids[i].a < ids[j].a
			}
			return ids[i].b < ids[j].b
		})
		for _, id := range ids {
			id, rec := id, ks.verdicts[id]
			data, err := encodeLine(&record{
				T: recVerdict, Key: key, At: rec.at,
				A: id.a, B: id.b, OK: rec.ok, Preds: rec.preds,
			})
			if err != nil {
				return nil, err
			}
			lines = append(lines, flushLine{at: rec.at, data: data,
				drop: func() { delete(ks.verdicts, id) }})
		}
		sigs := make([]string, 0, len(ks.abducts))
		for sig := range ks.abducts {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			sig, rec := sig, ks.abducts[sig]
			data, err := encodeLine(&record{
				T: recConeAbduct, Key: key, At: rec.at,
				Preds: append([]string{rec.target}, rec.preds...),
			})
			if err != nil {
				return nil, err
			}
			lines = append(lines, flushLine{at: rec.at, data: data,
				drop: func() { delete(ks.abducts, sig) }})
		}
	}
	return lines, nil
}

// atomicWrite performs the crash-safe rewrite: write to <path>.tmp, fsync,
// rename over path, fsync the directory (best-effort — some filesystems
// reject directory fsync; the rename itself is still atomic).
func atomicWrite(path string, data []byte) error {
	if faultinject.Enabled() {
		// Chaos tier: a failed rewrite must leave the previous on-disk
		// store byte-identical (the injected error fires before the temp
		// file exists, mirroring an out-of-space or permission failure).
		if err := faultinject.FireErr(faultinject.ProofDBWrite); err != nil {
			return err
		}
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		//hhlint:ignore flusherr cleanup on an already-failed write; the write error is the one propagated
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		//hhlint:ignore flusherr cleanup on an already-failed fsync; the fsync error is the one propagated
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if crashsim.Enabled() {
		crashsim.Maybe(crashRenameBefore)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if crashsim.Enabled() {
		crashsim.Maybe(crashRenameAfter)
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		//hhlint:ignore flusherr directory fsync is best-effort: some filesystems reject it and the rename above is already atomic
		dir.Sync()
		//hhlint:ignore flusherr read-only directory handle; nothing to lose on Close
		dir.Close()
	}
	return nil
}
