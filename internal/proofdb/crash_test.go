package proofdb

// The crash-point torture harness: the proof that the journal's recovery
// contract holds under real process death, not just simulated errors.
//
// The parent test re-execs its own test binary as a child
// (TestCrashChild), arms exactly one internal/crashsim point via the
// environment, and lets the child SIGKILL itself mid-append, mid-fsync,
// mid-rotation, or mid-snapshot-rename. The child records its committed
// progress in a side file as it goes; the parent then recovers the store
// and asserts, for every (point, hit, sync policy) cell of the matrix:
//
//   - recovery never errors (Open is total on crash wreckage);
//   - the recovered state is a prefix 1..k of the append order;
//   - k >= the committed watermark: loss <= records since the last sync,
//     and exactly zero committed loss under SyncEveryRecord.
//
// A truncate-at-every-byte-offset sweep covers the byte-granular torn-tail
// space the kill matrix samples only pointwise.

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
)

// Child-protocol environment variables.
const (
	envCrashChild  = "HH_CRASH_CHILD"  // selects the child role
	envCrashDir    = "HH_CRASH_DIR"    // store directory
	envCrashPolicy = "HH_CRASH_POLICY" // "every" | "flush"
	envCrashDo     = "HH_CRASH_DO"     // "append" | "rotate" | "snapshot"
)

const crashChildRecords = 40

// TestCrashChild is the re-exec target, not a test: it runs only when the
// torture harness spawned it, performs the scripted append workload, and —
// if an armed crash point is reached — dies by SIGKILL somewhere in the
// middle of it.
func TestCrashChild(t *testing.T) {
	if os.Getenv(envCrashChild) == "" {
		t.Skip("torture-harness child entry point")
	}
	dir := os.Getenv(envCrashDir)
	opts := Options{Journal: JournalOptions{Enable: true}}
	syncEvery := os.Getenv(envCrashPolicy) == "every"
	if syncEvery {
		opts.Journal.Sync = SyncEveryRecord
	}
	if os.Getenv(envCrashDo) == "rotate" {
		opts.Journal.SegmentBytes = 256
	}
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("child open: %v", err)
	}
	progress, err := os.OpenFile(filepath.Join(dir, "progress.txt"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("child progress file: %v", err)
	}
	mark := func(kind string, n uint64) {
		fmt.Fprintf(progress, "%s %d\n", kind, n)
	}
	snapshotMode := os.Getenv(envCrashDo) == "snapshot"
	for i := uint64(1); i <= crashChildRecords; i++ {
		db.Append(verdictDelta(i))
		if syncEvery {
			// SyncEveryRecord: a returned Append is a committed record.
			mark("C", i)
		}
		if i%10 == 0 {
			if snapshotMode {
				// Crash points live inside the rewrite/compaction; the
				// journal records up to i were synced by Persist below
				// or by the flush itself.
				if err := db.Flush(); err != nil {
					t.Fatalf("child flush: %v", err)
				}
				mark("C", i)
			} else if !syncEvery {
				if err := db.Persist(); err != nil {
					t.Fatalf("child persist: %v", err)
				}
				mark("C", i)
			}
		}
	}
	// Reaching here means the armed point was never hit (or none was
	// armed): finish cleanly so the parent can tell the two outcomes apart.
	if err := db.Close(); err != nil {
		t.Fatalf("child close: %v", err)
	}
	mark("DONE", crashChildRecords)
}

// committedWatermark parses the child's progress file: the highest record
// number the child observed as committed, and whether it finished.
func committedWatermark(t *testing.T, dir string) (committed uint64, done bool) {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, "progress.txt"))
	if os.IsNotExist(err) {
		return 0, false // killed before any commit
	}
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			continue // torn progress line: the write raced the kill
		}
		n, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			continue
		}
		if fields[0] == "DONE" {
			done = true
		}
		if n > committed {
			committed = n
		}
	}
	return committed, done
}

// runCrashChild re-execs the test binary against dir with one armed crash
// point and reports whether the child died by SIGKILL.
func runCrashChild(t *testing.T, dir, point string, hit int, policy, do string) (killed bool) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashChild$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		envCrashChild+"=1",
		envCrashDir+"="+dir,
		envCrashPolicy+"="+policy,
		envCrashDo+"="+do,
		"HHCRASH_POINT="+point,
		"HHCRASH_HIT="+strconv.Itoa(hit),
	)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return false // point not reached; child completed
	}
	if ee, ok := err.(*exec.ExitError); ok {
		if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() && ws.Signal() == syscall.SIGKILL {
			return true
		}
	}
	t.Fatalf("child %s hit=%d policy=%s do=%s failed for a reason other than SIGKILL: %v\n%s",
		point, hit, policy, do, err, out)
	return false
}

// checkRecovery asserts the core recovery invariants for one crash cell.
func checkRecovery(t *testing.T, dir string, cell string) {
	t.Helper()
	committed, done := committedWatermark(t, dir)
	got := verdictSet(t, dir) // fatals if recovery Open errors
	k := assertPrefix(t, got)
	if k < committed {
		t.Errorf("%s: recovered prefix 1..%d but child committed %d — committed-record loss", cell, k, committed)
	}
	if k > crashChildRecords {
		t.Errorf("%s: recovered %d records, more than the child ever appended", cell, k)
	}
	if done && k != crashChildRecords {
		t.Errorf("%s: child completed cleanly but recovery found %d/%d records", cell, k, crashChildRecords)
	}
}

// TestCrashTortureMatrix kills a child at every injected crash point, under
// both the zero-loss and the bounded-loss sync policy, at an early and a
// late visit, and asserts recovery after each kill.
func TestCrashTortureMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary ~20 times")
	}
	appendPoints := []string{crashAppendBefore, crashAppendTorn, crashAppendAfter, crashSyncAfter}
	for _, policy := range []string{"every", "flush"} {
		for _, point := range appendPoints {
			for _, hit := range []int{1, 7} {
				if policy == "flush" && point == crashSyncAfter && hit == 7 {
					// Only Persist syncs under this policy; the 7th sync
					// never happens. Covered by hit=1.
					continue
				}
				cell := fmt.Sprintf("%s/hit=%d/%s", point, hit, policy)
				dir := t.TempDir()
				if !runCrashChild(t, dir, point, hit, policy, "append") {
					t.Fatalf("%s: crash point never fired", cell)
				}
				checkRecovery(t, dir, cell)
			}
		}
		// Rotation: a small segment threshold forces mid-run rotations.
		cell := "rotate/" + policy
		dir := t.TempDir()
		if !runCrashChild(t, dir, crashRotateMid, 1, policy, "rotate") {
			t.Fatalf("%s: crash point never fired", cell)
		}
		checkRecovery(t, dir, cell)
	}
	// Snapshot rewrite + compaction: a kill around the rename or between
	// segment removals must never lose journal-committed records.
	for _, point := range []string{crashRenameBefore, crashRenameAfter, crashCompactMid} {
		cell := point + "/snapshot"
		dir := t.TempDir()
		if !runCrashChild(t, dir, point, 1, "every", "snapshot") {
			t.Fatalf("%s: crash point never fired", cell)
		}
		checkRecovery(t, dir, cell)
	}
}

// TestCrashTruncateEveryOffset sweeps the whole byte space of a journal
// segment: truncating the tail at every offset must recover without error
// to exactly the records whose final newline survived.
func TestCrashTruncateEveryOffset(t *testing.T) {
	pristine := t.TempDir()
	db, err := Open(pristine, Options{Journal: JournalOptions{Enable: true, Sync: SyncEveryRecord}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := uint64(1); i <= n; i++ {
		db.Append(verdictDelta(i))
	}
	db.Abandon()
	segs := listSegments(pristine)
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %d", len(segs))
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Record boundaries: offset just past each line's newline, and how many
	// records are complete at that point (the header is line 0).
	completeAt := func(off int) uint64 {
		var records uint64
		headerDone := false
		for i, b := range raw {
			if b != '\n' {
				continue
			}
			if i+1 > off {
				break // this line is torn by the truncation
			}
			if !headerDone {
				headerDone = true // line 0 is the segment header
			} else {
				records++
			}
		}
		if !headerDone {
			return 0
		}
		return records
	}
	segName := filepath.Base(segs[0])
	for off := 0; off <= len(raw); off++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), raw[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		got := verdictSet(t, dir) // fatals if Open errors
		k := assertPrefix(t, got)
		want := completeAt(off)
		if k != want {
			t.Fatalf("truncate at %d/%d: recovered %d records, want %d", off, len(raw), k, want)
		}
	}
}
