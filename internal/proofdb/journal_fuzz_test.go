package proofdb

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// pinnedJournalSegment is a byte-exact journal segment written by the
// current encoder (3 verdict records, seqs 1..3, clock pinned to
// 1_700_000_000) — the fuzz seed corpus anchor, pinned the same way
// compat_test.go pins the snapshot format. TestPinnedJournalSegmentCurrent
// keeps it honest: if the wire format drifts, the pin fails loudly instead
// of the fuzzer quietly seeding stale bytes.
const pinnedJournalSegment = "HHWAL v1\n" +
	"bcbfec05\t0000000000000001\t{\"t\":\"verdict\",\"k\":\"k\",\"at\":1700000000,\"a\":1,\"b\":1,\"ok\":true,\"p\":[\"p\"]}\n" +
	"443ca431\t0000000000000002\t{\"t\":\"verdict\",\"k\":\"k\",\"at\":1700000000,\"a\":2,\"b\":2,\"ok\":true,\"p\":[\"p\"]}\n" +
	"a56d61e2\t0000000000000003\t{\"t\":\"verdict\",\"k\":\"k\",\"at\":1700000000,\"a\":3,\"b\":3,\"ok\":true,\"p\":[\"p\"]}\n"

// writePinnedStyleSegment reproduces the pinned segment through the live
// write path (journaling store, pinned clock, seqs 1..3).
func writePinnedStyleSegment(t testing.TB, dir string) {
	t.Helper()
	now := time.Unix(1_700_000_000, 0)
	db, err := Open(dir, Options{
		Now:     func() time.Time { return now },
		Journal: JournalOptions{Enable: true, Sync: SyncEveryRecord},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		db.Append(verdictDelta(i))
	}
	db.Abandon()
}

func TestPinnedJournalSegmentCurrent(t *testing.T) {
	dir := t.TempDir()
	writePinnedStyleSegment(t, dir)
	segs := listSegments(dir)
	if len(segs) != 1 || filepath.Base(segs[0]) != segmentName(1) {
		t.Fatalf("unexpected segment layout: %v", segs)
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != pinnedJournalSegment {
		t.Fatalf("journal wire format drifted from the pinned segment:\n got %q\nwant %q", raw, pinnedJournalSegment)
	}
}

// FuzzJournalReplay feeds recovery both arbitrary segment bytes and a
// well-formed segment mutilated in fuzzer-chosen ways (truncation, bit
// flip, line swap). The invariants under every input:
//
//   - Open never errors and never panics;
//   - the recovered state is a prefix 1..k of the append order;
//   - recovery is stable: Open truncated the wreckage back to its good
//     prefix, so a second Open replays exactly the same records and finds
//     no new torn tail.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte(pinnedJournalSegment), uint8(6), uint16(40), uint16(90), false)
	f.Add([]byte(pinnedJournalSegment), uint8(1), uint16(0), uint16(0), true)
	f.Add([]byte("HHWAL v1\n"), uint8(12), uint16(9999), uint16(3), false)
	f.Add([]byte("HHWAL v999\nnot a record"), uint8(3), uint16(1), uint16(120), true)
	f.Add([]byte{}, uint8(20), uint16(500), uint16(500), false)
	f.Add([]byte("\x00\xff\xfe torn garbage \t\t\n\n"), uint8(5), uint16(77), uint16(33), true)

	f.Fuzz(func(t *testing.T, raw []byte, n uint8, trunc, flip uint16, swap bool) {
		// Phase 1: arbitrary bytes as a segment file. No structural
		// expectation survives, but recovery must stay total and stable.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("recovery Open errored on arbitrary segment bytes: %v", err)
		}
		first := db.Stats().JournalReplayed
		db2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("second recovery Open errored: %v", err)
		}
		st := db2.Stats()
		if st.JournalReplayed != first {
			t.Fatalf("recovery not stable: first replayed %d, second %d", first, st.JournalReplayed)
		}
		if st.JournalTornTails != 0 {
			t.Fatalf("first recovery left a torn tail behind (second counted %d)", st.JournalTornTails)
		}

		// Phase 2: a well-formed journal of n records, mutilated.
		nRecs := uint64(n%20) + 1
		dir2 := t.TempDir()
		// SyncOnFlush: no fsyncs — the bytes only need to reach the page
		// cache for the corruption phase, and skipping ~20 fsyncs per exec
		// keeps the fuzzer fast.
		jdb, err := Open(dir2, Options{Journal: JournalOptions{Enable: true}})
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(1); i <= nRecs; i++ {
			jdb.Append(verdictDelta(i))
		}
		jdb.Abandon()
		seg := listSegments(dir2)[0]
		body, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if len(body) > 0 {
			if swap {
				// Swap two whole record lines (reordered writes). The
				// header (line 0) is never a swap target.
				var starts []int
				for i := 0; i < len(body); {
					starts = append(starts, i)
					j := i
					for j < len(body) && body[j] != '\n' {
						j++
					}
					i = j + 1
				}
				if len(starts) >= 3 {
					a := 1 + int(trunc)%(len(starts)-1)
					b := 1 + int(flip)%(len(starts)-1)
					if a > b {
						a, b = b, a
					}
					if a != b {
						lineAt := func(s int) []byte {
							e := s
							for e < len(body) && body[e] != '\n' {
								e++
							}
							if e < len(body) {
								e++
							}
							return body[s:e]
						}
						la, lb := lineAt(starts[a]), lineAt(starts[b])
						var out []byte
						out = append(out, body[:starts[a]]...)
						out = append(out, lb...)
						out = append(out, body[starts[a]+len(la):starts[b]]...)
						out = append(out, la...)
						out = append(out, body[starts[b]+len(lb):]...)
						body = out
					}
				}
			}
			if int(flip) < len(body) {
				body[flip] ^= 1 << (n % 8)
			}
			if int(trunc) < len(body) {
				body = body[:trunc]
			}
		}
		if err := os.WriteFile(seg, body, 0o644); err != nil {
			t.Fatal(err)
		}
		got := verdictSet(t, dir2) // fatals if Open errors
		k := assertPrefix(t, got)
		if k > nRecs {
			t.Fatalf("recovered %d records from a %d-record journal", k, nRecs)
		}
	})
}
